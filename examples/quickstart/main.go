// Quickstart: generate one random deterministic OpenCL kernel with CLsmith
// (ALL mode: vectors, barriers, atomic sections and atomic reductions),
// compile it with the defect-free reference configuration at both
// optimization levels, execute it over its randomized NDRange, and verify
// the two runs agree — the determinism property differential testing
// relies on (paper §3.2, §4.2).
package main

import (
	"fmt"
	"log"

	"clfuzz/internal/device"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
)

func main() {
	log.SetFlags(0)
	k := generator.Generate(generator.Options{
		Mode:            generator.ModeAll,
		Seed:            2024,
		MaxTotalThreads: 64,
	})
	fmt.Printf("generated a %s-mode kernel: NDRange %v / %v, %d bytes of OpenCL C\n",
		k.Mode, k.ND.Global, k.ND.Local, len(k.Src))

	ref := device.Reference()
	var outputs [][]uint64
	for _, optimize := range []bool{false, true} {
		cr := ref.Compile(k.Src, optimize)
		if cr.Outcome != device.OK {
			log.Fatalf("compile (opt=%v): %s", optimize, cr.Msg)
		}
		args, result := k.Buffers()
		rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{CheckRaces: true})
		if rr.Outcome != device.OK {
			log.Fatalf("run (opt=%v): %s: %s", optimize, rr.Outcome, rr.Msg)
		}
		outputs = append(outputs, rr.Output)
		fmt.Printf("opt=%-5v first thread checksums: %#x %#x %#x ...\n",
			optimize, rr.Output[0], rr.Output[1], rr.Output[2])
	}
	if !oracle.Equal(outputs[0], outputs[1]) {
		log.Fatal("optimization levels disagree: the reference must be deterministic")
	}
	fmt.Println("both optimization levels agree; the kernel is deterministic by construction")
}
