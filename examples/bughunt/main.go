// Bughunt: the end-to-end random differential testing pipeline of the
// paper. Generate kernels, run each across the above-threshold
// configurations at both optimization levels, apply the majority-vote
// oracle, and when a configuration produces a wrong-code result, shrink
// the kernel with the concurrency-aware reducer (§8) and print the
// minimized bug exhibit.
package main

import (
	"fmt"
	"log"

	"clfuzz/internal/device"
	"clfuzz/internal/generator"
	"clfuzz/internal/harness"
	"clfuzz/internal/oracle"
	"clfuzz/internal/reduce"
)

func main() {
	log.SetFlags(0)
	cfgs := harness.AboveThresholdConfigs()
	ref := device.Reference()
	for seed := int64(0); seed < 400; seed++ {
		k := generator.Generate(generator.Options{
			Mode: generator.ModeAll, Seed: seed, MaxTotalThreads: 48,
		})
		c := harness.CaseFromKernel(k, fmt.Sprintf("seed-%d", seed))
		results := harness.RunEverywhere(cfgs, c, 0)
		wrong := oracle.WrongCode(results)
		if len(wrong) == 0 {
			continue
		}
		fmt.Printf("seed %d: wrong code on %v\n", seed, wrong)

		// Reduce against the first culprit, preserving its disagreement
		// with the defect-free reference.
		culpritKey := wrong[0]
		var culprit *device.Config
		optimize := culpritKey[len(culpritKey)-1] == '+'
		for _, cfg := range cfgs {
			if harness.Key(cfg, optimize) == culpritKey {
				culprit = cfg
			}
		}
		interesting := func(cand string) bool {
			cc := harness.Case{Src: cand, ND: k.ND, Buffers: k.Buffers}
			a := harness.RunOn(culprit, optimize, cc, 0)
			b := harness.RunOn(ref, true, cc, 0)
			return a.Outcome == device.OK && b.Outcome == device.OK && !oracle.Equal(a.Output, b.Output)
		}
		res, err := reduce.Reduce(k.Src, reduce.Options{
			Interesting: interesting, ND: k.ND, MakeArgs: k.Buffers, MaxRounds: 5,
		})
		if err != nil {
			log.Printf("reduction failed: %v", err)
			fmt.Println(k.Src)
			return
		}
		fmt.Printf("reduced %d -> %d bytes; minimized exhibit for %s:\n%s\n",
			len(k.Src), len(res.Src), culpritKey, res.Src)
		return
	}
	fmt.Println("no wrong-code result in this seed window")
}
