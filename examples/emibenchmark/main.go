// Emibenchmark: EMI testing over a real benchmark, the §7.2 workflow.
// Take the Rodinia hotspot port, inject dead-by-construction EMI blocks
// (with free-variable substitution, so the compiler can optimize across
// the block boundary), derive pruned variants, run them on a buggy
// configuration, and compare every output against the empty-block
// expected output.
package main

import (
	"fmt"
	"log"

	"clfuzz/internal/ast"
	"clfuzz/internal/benchmarks"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/emi"
	"clfuzz/internal/exec"
	"clfuzz/internal/oracle"
	"clfuzz/internal/parser"
)

func main() {
	log.SetFlags(0)
	bench := benchmarks.ByName("hotspot")
	cfg := device.ByID(16) // AMD CPU: struct and residual miscompilation defects

	// Expected output: the unmodified kernel on the defect-free reference.
	expected := mustRun(device.Reference(), true, bench, bench.Src)
	fmt.Printf("hotspot expected output: %v ...\n", expected[:4])

	mismatches, failures := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		prog, err := parser.Parse(bench.Src)
		if err != nil {
			log.Fatal(err)
		}
		subs, err := emi.Inject(prog, emi.InjectOptions{Seed: seed, Blocks: 2, Substitute: true})
		if err != nil {
			log.Fatal(err)
		}
		variant, err := emi.Prune(prog, emi.PruneOpts{PLeaf: 0.3, PCompound: 0.3, PLift: 0.3, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		src := ast.Print(variant)
		out, ok := run(cfg, seed%2 == 0, bench, src)
		switch {
		case !ok:
			failures++
		case !oracle.Equal(out, expected):
			mismatches++
			fmt.Printf("seed %d (%d substitutions): EMI variant output deviates -> miscompilation evidence\n", seed, subs)
		}
	}
	fmt.Printf("40 EMI variants on config 16: %d deviating results, %d build/run failures\n",
		mismatches, failures)
	fmt.Println("every variant is equivalent modulo the input dead[] array; any deviation is a compiler defect (§5)")
}

func mustRun(cfg *device.Config, optimize bool, bench *benchmarks.Benchmark, src string) []uint64 {
	out, ok := run(cfg, optimize, bench, src)
	if !ok {
		log.Fatal("reference run failed")
	}
	return out
}

func run(cfg *device.Config, optimize bool, bench *benchmarks.Benchmark, src string) ([]uint64, bool) {
	cr := cfg.Compile(src, optimize)
	if cr.Outcome != device.OK {
		return nil, false
	}
	args, result := bench.MakeArgs()
	for _, p := range cr.Kernel.Prog.Kernel().Params {
		if p.Name == "dead" {
			dead := exec.NewBuffer(cltypes.TInt, 16)
			for i := 0; i < 16; i++ {
				dead.SetScalar(i, uint64(i))
			}
			args["dead"] = exec.Arg{Buf: dead}
		}
	}
	rr := cr.Kernel.Run(bench.ND, args, result, device.RunOptions{})
	if rr.Outcome != device.OK {
		return nil, false
	}
	return rr.Output, true
}
