// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§7). Each benchmark runs its campaign at a laptop scale —
// set -clfuzz.scale to enlarge — and logs the rendered table so that
// `go test -bench=. -benchmem` reproduces the full evaluation.
// ARCHITECTURE.md maps each artifact to its campaign runner.
package clfuzz_test

import (
	"flag"
	"fmt"
	"runtime"
	"testing"

	"clfuzz/internal/benchmarks"
	"clfuzz/internal/device"
	"clfuzz/internal/exhibits"
	"clfuzz/internal/generator"
	"clfuzz/internal/harness"
	"clfuzz/internal/oracle"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

var benchScale = flag.Int("clfuzz.scale", 6, "campaign scale for the table benchmarks (kernels per mode / EMI bases)")

// BenchmarkTable1 regenerates the Table 1 configuration classification:
// 21 configurations against the 25% reliability threshold (§7.1).
func BenchmarkTable1(b *testing.B) {
	if testing.Short() {
		b.Skip("campaign-scale benchmark; run without -short")
	}
	for i := 0; i < b.N; i++ {
		rows := harness.ClassifyConfigurations(*benchScale, 7, 48, 0)
		if i == 0 {
			b.Log("\n" + harness.RenderTable1(rows))
			matches := 0
			for _, r := range rows {
				if r.MatchesPaper {
					matches++
				}
			}
			b.ReportMetric(float64(matches), "paper-matches/21")
		}
	}
}

// BenchmarkTable2 regenerates the Table 2 benchmark inventory.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0
		for _, bench := range benchmarks.All() {
			total += bench.LoC()
		}
		if i == 0 {
			var s string
			s = fmt.Sprintf("%-9s %-11s %8s %6s %4s\n", "Suite", "Benchmark", "Kernels", "LoC", "FP?")
			for _, bench := range benchmarks.All() {
				fp := "x"
				if bench.PaperUsesFP {
					fp = "X"
				}
				s += fmt.Sprintf("%-9s %-11s %8d %6d %4s\n", bench.Suite, bench.Name, bench.PaperKernels, bench.LoC(), fp)
			}
			b.Log("\nTable 2:\n" + s)
			b.ReportMetric(float64(total), "kernel-loc")
		}
	}
}

// BenchmarkTable3 regenerates the EMI-over-benchmarks campaign (§7.2):
// per (benchmark, configuration), the worst outcome over EMI variants with
// substitutions on and off.
func BenchmarkTable3(b *testing.B) {
	if testing.Short() {
		b.Skip("campaign-scale benchmark; run without -short")
	}
	for i := 0; i < b.N; i++ {
		t3 := harness.EMIBenchmarkCampaign(2, 11, 0)
		if i == 0 {
			b.Log("\n" + harness.RenderTable3(t3))
			if len(t3.RacyExcluded) != 2 {
				b.Errorf("expected spmv and myocyte excluded for races, got %v", t3.RacyExcluded)
			}
		}
	}
}

// BenchmarkTable4 regenerates the intensive CLsmith campaign (§7.3): per
// mode and configuration-level, the w/bf/c/to/ok counts and the wrong-code
// percentage.
func BenchmarkTable4(b *testing.B) {
	if testing.Short() {
		b.Skip("campaign-scale benchmark; run without -short")
	}
	for i := 0; i < b.N; i++ {
		t4 := harness.CLsmithCampaign(*benchScale, 13, 48, 0)
		if i == 0 {
			b.Log("\n" + harness.RenderTable4(t4))
		}
	}
}

// BenchmarkTable5 regenerates the CLsmith+EMI campaign (§7.4): per
// configuration-level, base programs inducing wrong code, build failures,
// crashes, timeouts, and stable bases, over the 40-variant pruning grid.
func BenchmarkTable5(b *testing.B) {
	if testing.Short() {
		b.Skip("campaign-scale benchmark; run without -short")
	}
	for i := 0; i < b.N; i++ {
		t5 := harness.EMICampaign(*benchScale/2+1, 17, 48, 0)
		if i == 0 {
			b.Log("\n" + harness.RenderTable5(t5))
		}
	}
}

// BenchmarkPruningStrategies regenerates the §7.4 strategy comparison:
// defect-inducing variant counts attributed to the leaf, compound and lift
// pruning probabilities (the paper found lift slightly less effective).
func BenchmarkPruningStrategies(b *testing.B) {
	if testing.Short() {
		b.Skip("campaign-scale benchmark; run without -short")
	}
	for i := 0; i < b.N; i++ {
		t5 := harness.EMICampaign(*benchScale/2+1, 19, 48, 0)
		if i == 0 {
			b.Log("\n" + harness.RenderPruningComparison(t5))
		}
	}
}

// BenchmarkFigure1 verifies and renders the six Figure 1 bug exhibits
// (below-threshold configurations).
func BenchmarkFigure1(b *testing.B) {
	benchFigure(b, 1)
}

// BenchmarkFigure2 verifies and renders the six Figure 2 bug exhibits
// (above-threshold configurations).
func BenchmarkFigure2(b *testing.B) {
	benchFigure(b, 2)
}

func benchFigure(b *testing.B, fig int) {
	for i := 0; i < b.N; i++ {
		verified := 0
		for _, e := range exhibits.All() {
			if e.Figure != fig {
				continue
			}
			if err := exhibits.Verify(e); err != nil {
				b.Fatalf("exhibit %s: %v", e.ID, err)
			}
			verified++
		}
		if i == 0 {
			b.ReportMetric(float64(verified), "exhibits-verified")
		}
	}
}

// ---- micro-benchmarks of the substrates ----

// BenchmarkGenerate measures kernel generation throughput per mode.
func BenchmarkGenerate(b *testing.B) {
	for _, mode := range generator.Modes {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := generator.Generate(generator.Options{Mode: mode, Seed: int64(i), MaxTotalThreads: 64})
				if len(k.Src) == 0 {
					b.Fatal("empty kernel")
				}
			}
		})
	}
}

// BenchmarkCompile measures compilation through the two-level compile
// cache (the campaign configuration). Steady state for one configuration
// is two cache hits per call: the front cache serves the parse, the back
// cache serves the finished immutable kernel.
func BenchmarkCompile(b *testing.B) {
	k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 5, MaxTotalThreads: 64})
	ref := device.Reference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr := ref.Compile(k.Src, true)
		if cr.Outcome != device.OK {
			b.Fatal(cr.Msg)
		}
	}
}

// BenchmarkCompileUncached measures the cache-bypassing path, which
// re-lexes, re-parses, re-checks and re-optimizes on every call — the
// per-compile cost the seed harness paid 42 times per differential test.
func BenchmarkCompileUncached(b *testing.B) {
	k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 5, MaxTotalThreads: 64})
	ref := device.Reference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr := ref.CompileUncached(k.Src, true)
		if cr.Outcome != device.OK {
			b.Fatal(cr.Msg)
		}
	}
}

// BenchmarkExecute measures NDRange execution of a compiled kernel on the
// fully serial executor.
func BenchmarkExecute(b *testing.B) {
	k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 5, MaxTotalThreads: 64})
	ref := device.Reference()
	cr := ref.Compile(k.Src, true)
	if cr.Outcome != device.OK {
		b.Fatal(cr.Msg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		args, result := k.Buffers()
		rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{})
		if rr.Outcome != device.OK {
			b.Fatal(rr.Msg)
		}
	}
}

// BenchmarkExecuteSteadyState measures the campaign's hot path: the
// same launch as BenchmarkExecute after one warm-up run has stocked the
// launch-state pool, so every measured iteration recycles its machine,
// group executors, threads and VM stacks instead of allocating them.
// The allocs/op delta against BenchmarkExecute is the pool's yield;
// TestSteadyStateAllocs pins it against regression.
func BenchmarkExecuteSteadyState(b *testing.B) {
	k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 5, MaxTotalThreads: 64})
	ref := device.Reference()
	cr := ref.Compile(k.Src, true)
	if cr.Outcome != device.OK {
		b.Fatal(cr.Msg)
	}
	args, result := k.Buffers()
	if rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{}); rr.Outcome != device.OK {
		b.Fatal(rr.Msg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		args, result := k.Buffers()
		rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{})
		if rr.Outcome != device.OK {
			b.Fatal(rr.Msg)
		}
	}
}

// TestSteadyStateAllocs pins the launch-state pool's yield: a warm
// launch of the BenchmarkExecute kernel (argument buffers included)
// must stay under a fixed allocation ceiling. The pre-pool executor
// allocated ~1100 objects per launch; the pooled steady state measures
// ~210, and the ceiling of 220 keeps the full 5x reduction locked in.
func TestSteadyStateAllocs(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation skews allocation counts")
	}
	k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 5, MaxTotalThreads: 64})
	ref := device.Reference()
	cr := ref.Compile(k.Src, true)
	if cr.Outcome != device.OK {
		t.Fatal(cr.Msg)
	}
	launch := func() {
		args, result := k.Buffers()
		if rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{}); rr.Outcome != device.OK {
			t.Fatal(rr.Msg)
		}
	}
	launch() // warm the pool: the first launch pays the misses
	const ceiling = 220
	if avg := testing.AllocsPerRun(10, launch); avg > ceiling {
		t.Fatalf("steady-state launch allocates %.0f objects, ceiling %d", avg, ceiling)
	}
}

// BenchmarkExecuteParallel measures the same launch with the work-group
// fan-out budget set to the whole machine (RunOptions.Workers), the
// configuration the single-shot hosts (clrun, cldiff, the reducer) use.
// Output is byte-identical to BenchmarkExecute's; only the schedule
// differs, so the ratio of the two is the group-parallel speedup.
func BenchmarkExecuteParallel(b *testing.B) {
	k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 5, MaxTotalThreads: 64})
	ref := device.Reference()
	cr := ref.Compile(k.Src, true)
	if cr.Outcome != device.OK {
		b.Fatal(cr.Msg)
	}
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		args, result := k.Buffers()
		rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{Workers: workers})
		if rr.Outcome != device.OK {
			b.Fatal(rr.Msg)
		}
	}
}

// BenchmarkParse measures the parser on generated source.
func BenchmarkParse(b *testing.B) {
	k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 5, MaxTotalThreads: 64})
	b.SetBytes(int64(len(k.Src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(k.Src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSema measures the type checker.
func BenchmarkSema(b *testing.B) {
	k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 5, MaxTotalThreads: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := parser.Parse(k.Src)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sema.Check(prog, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDifferentialTest measures one full differential test: one
// kernel across the above-threshold configurations at both levels with
// majority voting, through the compile-once campaign engine (shared
// front end, shared immutable back-end kernels, defect-model run
// deduplication).
func BenchmarkDifferentialTest(b *testing.B) {
	cfgs := harness.AboveThresholdConfigs()
	for i := 0; i < b.N; i++ {
		k := generator.Generate(generator.Options{Mode: generator.ModeBasic, Seed: int64(1000 + i), MaxTotalThreads: 32})
		c := harness.CaseFromKernel(k, "bench")
		rs := harness.RunEverywhere(cfgs, c, 0)
		_ = oracle.WrongCode(rs)
	}
}

// BenchmarkDifferentialTestUncached is the same differential test on the
// cache-bypassing reference path (one parse and one execution per
// (configuration, level) pair), the determinism baseline the engine is
// compared against.
func BenchmarkDifferentialTestUncached(b *testing.B) {
	cfgs := harness.AboveThresholdConfigs()
	for i := 0; i < b.N; i++ {
		k := generator.Generate(generator.Options{Mode: generator.ModeBasic, Seed: int64(1000 + i), MaxTotalThreads: 32})
		c := harness.CaseFromKernel(k, "bench")
		rs := harness.RunEverywhereUncached(cfgs, c, 0)
		_ = oracle.WrongCode(rs)
	}
}
