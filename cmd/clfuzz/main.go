// Clfuzz is the open-ended coverage-guided fuzzing loop: the same
// feedback engine as cltables -fuzz (VM edge bitmaps, ranked corpus,
// swarm feature subsets, EMI/constant/operator/splice mutations), but
// run round after round until interrupted instead of to a fixed budget.
// Each round advances every chain one step through campaign.Stream;
// wrong-code mismatches are reported as they appear, and a coverage
// progress line prints every -report rounds. SIGINT stops the loop
// cleanly and prints the final summary. The loop is deterministic for a
// given -seed: stopping after N rounds observes a prefix of the
// infinite run, identical to cltables -fuzz -scale N.
//
// Usage:
//
//	clfuzz -chains 4 -seed 1
//	clfuzz -rounds 200 -report 20
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"clfuzz/internal/campaign"
	"clfuzz/internal/corpus"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clfuzz: ")
	chainsN := flag.Int("chains", 0, "independent fuzzing chains (default 4)")
	seed := flag.Int64("seed", 1, "campaign seed")
	threads := flag.Int("threads", 64, "maximum thread count for generated kernels")
	rounds := flag.Int("rounds", 0, "stop after this many rounds (0 = run until interrupted)")
	report := flag.Int("report", 10, "print a coverage progress line every N rounds")
	engineFlag := flag.String("engine", "auto",
		"evaluation engine: vm, tree, or auto (the tree engine collects no coverage, degrading the loop to pure swarm-random generation)")
	fuelFlag := flag.String("fuel", "auto",
		"fuel model: v1 (per-instruction), v2 (per-superinstruction on the fused VM program), or auto (CLFUZZ_FUEL or v1)")
	dispatchFlag := flag.String("dispatch", "auto",
		"VM dispatch mode: switch, threaded (pre-resolved handler closures), or auto (CLFUZZ_DISPATCH or switch); outputs are byte-identical either way")
	storeDir := flag.String("store", "",
		"disk-backed result store directory shared across processes (default $CLFUZZ_STORE; empty disables)")
	flag.Parse()
	engine, err := exec.ParseEngine(*engineFlag)
	if err != nil {
		log.Fatal(err)
	}
	device.DefaultEngine = engine
	fuel, err := exec.ParseFuelModel(*fuelFlag)
	if err != nil {
		log.Fatal(err)
	}
	if fuel != exec.FuelAuto {
		device.DefaultFuelModel = fuel
	}
	dispatch, err := exec.ParseDispatch(*dispatchFlag)
	if err != nil {
		log.Fatal(err)
	}
	if dispatch != exec.DispatchAuto {
		device.DefaultDispatch = dispatch
	}
	if _, err := campaign.EnableStore(*storeDir); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	p := harness.Params{Table: harness.FuzzTable, Seed: *seed, Threads: *threads, Chains: *chainsN, Fuel: harness.DefaultFuelParam()}
	chains := harness.FuzzChains(campaign.Default, p)
	cover := new(exec.CoverMap)
	cases, mismatches := 0, 0
	corpusTotal := func() int {
		n := 0
		for _, c := range chains {
			n += c.CorpusLen()
		}
		return n
	}
	progress := func(round int) {
		fmt.Printf("round %d: cases=%d edges=%d corpus=%d mismatches=%d\n",
			round, cases, cover.Count(), corpusTotal(), mismatches)
	}

	round, lastReport := 0, -1
	for ; ctx.Err() == nil && (*rounds == 0 || round < *rounds); round++ {
		campaign.Stream(ctx, len(chains), func(i, _ int) corpus.StepRecord {
			return chains[i].Step(ctx, round)
		}, func(_ int, rec corpus.StepRecord) {
			if rec.Outcome == device.Canceled.String() {
				return
			}
			cases++
			cover.AddEdges(rec.Edges)
			if rec.Mismatch {
				mismatches++
				fmt.Printf("MISMATCH chain=%d step=%d origin=%s features=%s src_hash=%#x\n",
					rec.Chain, rec.Step, rec.Origin, rec.Features, rec.SrcHash)
			}
		})
		if *report > 0 && (round+1)%*report == 0 {
			progress(round + 1)
			lastReport = round + 1
		}
	}
	if round != lastReport {
		progress(round)
	}
	sites := make([][exec.CoverNumSites]uint64, 0, len(chains))
	var total [exec.CoverNumSites]uint64
	for _, c := range chains {
		sites = append(sites, c.Cover().SiteHits())
	}
	for _, s := range sites {
		for i, v := range s {
			total[i] += v
		}
	}
	fmt.Printf("defect sites: deref-store=%d arrow-store=%d dead-loop=%d\n",
		total[exec.CoverSiteDerefStore], total[exec.CoverSiteArrowStore], total[exec.CoverSiteDeadLoop])
	if ctx.Err() != nil {
		log.Printf("interrupted after %d rounds", round)
	}
}
