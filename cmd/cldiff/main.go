// Cldiff runs a kernel across the simulated configurations at both
// optimization levels, applies the majority-vote oracle (§3.2), and
// reports wrong-code verdicts — one shot of random differential testing.
//
// Usage:
//
//	cldiff -nd 64x1x1/16x1x1 kernel.cl
//	cldiff -all -nd 64x1x1/16x1x1 kernel.cl   # include below-threshold configs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/harness"
	"clfuzz/internal/oracle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cldiff: ")
	ndFlag := flag.String("nd", "16x1x1/16x1x1", "NDRange as GXxGYxGZ/LXxLYxLZ")
	all := flag.Bool("all", false, "test all 21 configurations (default: above-threshold only)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: cldiff [flags] kernel.cl")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	var nd exec.NDRange
	if _, err := fmt.Sscanf(*ndFlag, "%dx%dx%d/%dx%dx%d",
		&nd.Global[0], &nd.Global[1], &nd.Global[2],
		&nd.Local[0], &nd.Local[1], &nd.Local[2]); err != nil {
		log.Fatalf("bad -nd: %v", err)
	}
	cfgs := harness.AboveThresholdConfigs()
	if *all {
		cfgs = device.All()
	}
	c, err := harness.AutoCase(flag.Arg(0), string(src), nd)
	if err != nil {
		log.Fatal(err)
	}
	results := harness.RunEverywhere(cfgs, c, 0)
	wrong := map[string]bool{}
	for _, k := range oracle.WrongCode(results) {
		wrong[k] = true
	}
	maj, haveMaj := oracle.Majority(results)
	fmt.Printf("%-6s %-8s %s\n", "conf", "outcome", "verdict")
	for _, r := range results {
		verdict := ""
		switch {
		case wrong[r.Key]:
			verdict = "WRONG CODE"
		case r.Outcome == device.OK:
			verdict = "agrees"
		}
		fmt.Printf("%-6s %-8s %s\n", r.Key, r.Outcome, verdict)
	}
	if !haveMaj {
		fmt.Println("no majority of at least 3 among computed results")
	} else {
		fmt.Printf("majority fingerprint: %s\n", maj)
	}
}
