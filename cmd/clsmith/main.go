// Clsmith generates random deterministic OpenCL kernels in the paper's six
// modes (§4) and writes them as .cl files alongside a .nd file recording
// the randomized launch geometry.
//
// Usage:
//
//	clsmith -mode ALL -n 10 -seed 1 -o /tmp/kernels
//	clsmith -mode BARRIER -emi 3 -n 5 -o /tmp/emi
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clfuzz/internal/generator"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clsmith: ")
	mode := flag.String("mode", "ALL", "generation mode: BASIC, VECTOR, BARRIER, ATOMIC SECTION, ATOMIC REDUCTION, ALL")
	n := flag.Int("n", 1, "number of kernels to generate")
	seed := flag.Int64("seed", 1, "starting seed (kernel i uses seed+i)")
	outDir := flag.String("o", ".", "output directory")
	emi := flag.Int("emi", 0, "number of dead-by-construction EMI blocks to inject (§5)")
	threads := flag.Int("threads", 256, "maximum total thread count for the randomized grid")
	flag.Parse()

	m, err := generator.ParseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *n; i++ {
		k := generator.Generate(generator.Options{
			Mode: m, Seed: *seed + int64(i), MaxTotalThreads: *threads, EMIBlocks: *emi,
		})
		base := filepath.Join(*outDir, fmt.Sprintf("clsmith_%s_%d", sanitize(m.String()), *seed+int64(i)))
		if err := os.WriteFile(base+".cl", []byte(k.Src), 0o644); err != nil {
			log.Fatal(err)
		}
		nd := fmt.Sprintf("global %d %d %d\nlocal %d %d %d\n",
			k.ND.Global[0], k.ND.Global[1], k.ND.Global[2],
			k.ND.Local[0], k.ND.Local[1], k.ND.Local[2])
		if err := os.WriteFile(base+".nd", []byte(nd), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s.cl  (mode %s, NDRange %v / %v)\n", base, m, k.ND.Global, k.ND.Local)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}
