// Cltables regenerates every table and figure of the paper's evaluation:
// Table 1 (configuration classification), Table 2 (benchmark inventory),
// Table 3 (EMI over benchmarks), Table 4 (intensive CLsmith testing),
// Table 5 (CLsmith+EMI) and the Figure 1/2 bug exhibits. The campaign
// sizes scale with -scale; ARCHITECTURE.md maps each table to its runner.
//
// Campaigns shard across processes or machines: -shard i/n runs the i-th
// of n interleaved campaign slices and emits a machine-readable
// partial-results file, and -merge recombines the shard files into
// output byte-identical to the unsharded run.
//
// Usage:
//
//	cltables -table 4 -scale 25
//	cltables -figure 2
//	cltables -all -scale 10
//	cltables -table 4 -scale 25 -shard 0/2 -out t4.shard0.json
//	cltables -table 4 -scale 25 -shard 1/2 -out t4.shard1.json
//	cltables -merge t4.shard0.json t4.shard1.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"clfuzz/internal/benchmarks"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/exhibits"
	"clfuzz/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cltables: ")
	table := flag.Int("table", 0, "regenerate table 1-5")
	figure := flag.Int("figure", 0, "regenerate figure 1 or 2 (bug exhibits)")
	all := flag.Bool("all", false, "regenerate everything")
	scale := flag.Int("scale", 10, "campaign size per unit (kernels per mode, EMI bases, ...)")
	seed := flag.Int64("seed", 1, "campaign seed")
	threads := flag.Int("threads", 64, "maximum thread count for generated kernels")
	shard := flag.String("shard", "",
		"run one campaign slice i/n (e.g. 0/2) and emit a partial-results file instead of the table")
	out := flag.String("out", "", "partial-results output path for -shard (default stdout)")
	merge := flag.Bool("merge", false,
		"merge the shard files given as arguments into the rendered table (byte-identical to the unsharded run)")
	engineFlag := flag.String("engine", "auto",
		"evaluation engine for every campaign launch: vm, tree, or auto (campaign output is byte-identical either way)")
	flag.Parse()
	engine, err := exec.ParseEngine(*engineFlag)
	if err != nil {
		log.Fatal(err)
	}
	device.DefaultEngine = engine

	if *merge {
		if flag.NArg() == 0 {
			log.Fatal("usage: cltables -merge shard0.json shard1.json ...")
		}
		files := make([]*harness.ShardFile, flag.NArg())
		for i, path := range flag.Args() {
			raw, err := os.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			files[i] = &harness.ShardFile{}
			if err := json.Unmarshal(raw, files[i]); err != nil {
				log.Fatalf("%s: %v", path, err)
			}
		}
		rendered, err := harness.MergeShards(files)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rendered)
		return
	}

	params := func(t int) harness.Params {
		return harness.Params{Table: t, Scale: *scale, Seed: *seed, Threads: *threads}
	}

	if *shard != "" {
		if *table == 0 {
			log.Fatal("-shard requires -table")
		}
		var si, sn int
		if _, err := fmt.Sscanf(*shard, "%d/%d", &si, &sn); err != nil {
			log.Fatalf("bad -shard %q: want i/n", *shard)
		}
		sf, err := harness.RunShard(params(*table), si, sn)
		if err != nil {
			log.Fatal(err)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		if err := enc.Encode(sf); err != nil {
			log.Fatal(err)
		}
		return
	}

	run := func(t int) {
		if t == 2 {
			fmt.Println(renderTable2())
			return
		}
		rendered, err := harness.RenderCampaign(params(t))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rendered)
	}
	switch {
	case *all:
		for t := 1; t <= 5; t++ {
			run(t)
		}
		fmt.Println(exhibits.Render(1))
		fmt.Println(exhibits.Render(2))
	case *table != 0:
		run(*table)
	case *figure != 0:
		fmt.Println(exhibits.Render(*figure))
	default:
		log.Fatal("specify -table N, -figure N or -all")
	}
}

func renderTable2() string {
	out := "Table 2. OpenCL benchmarks studied using EMI testing\n"
	out += fmt.Sprintf("%-9s %-11s %-34s %8s %6s %4s %6s\n",
		"Suite", "Benchmark", "Description", "Kernels", "LoC", "FP?", "race?")
	for _, b := range benchmarks.All() {
		fp := "x"
		if b.PaperUsesFP {
			fp = "X"
		}
		race := ""
		if b.HasRace {
			race = "RACE"
		}
		out += fmt.Sprintf("%-9s %-11s %-34s %8d %6d %4s %6s\n",
			b.Suite, b.Name, b.Description, b.PaperKernels, b.LoC(), fp, race)
	}
	return out
}
