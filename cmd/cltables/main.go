// Cltables regenerates every table and figure of the paper's evaluation:
// Table 1 (configuration classification), Table 2 (benchmark inventory),
// Table 3 (EMI over benchmarks), Table 4 (intensive CLsmith testing),
// Table 5 (CLsmith+EMI) and the Figure 1/2 bug exhibits. The campaign
// sizes scale with -scale; ARCHITECTURE.md maps each table to its runner.
//
// -fuzz runs the coverage-guided fuzzing campaign instead: -chains
// independent feedback chains of -scale steps each, ranked corpus, swarm
// feature subsets and EMI/constant/operator/splice mutations, reporting
// coverage-over-time alongside wrong-code mismatches (see ARCHITECTURE.md,
// "Feedback loop"). It rides the same shard-record schema as the tables,
// so -shard/-merge/-fleet compose with it unchanged.
//
// Campaigns shard across processes or machines: -shard i/n runs the i-th
// of n interleaved campaign slices and emits a machine-readable
// partial-results file, and -merge recombines the shard files into
// output byte-identical to the unsharded run. -fleet N supervises the
// whole partition itself: it re-execs N shard workers as isolated child
// processes with per-shard timeouts, retry with backoff, straggler
// re-dispatch and checkpoint/resume, so a crashing or hanging worker
// costs one attempt, never the campaign. SIGINT makes a worker flush a
// valid partial shard file before exiting; re-running over the same
// -out (or -checkpoint directory) resumes from it, executing only the
// missing cases. The CLFUZZ_FAULT environment variable injects
// deterministic worker failures for supervision testing (see
// internal/fault).
//
// Usage:
//
//	cltables -table 4 -scale 25
//	cltables -fuzz -chains 4 -scale 50
//	cltables -figure 2
//	cltables -all -scale 10
//	cltables -table 4 -scale 25 -shard 0/2 -out t4.shard0.json
//	cltables -table 4 -scale 25 -shard 1/2 -out t4.shard1.json
//	cltables -merge t4.shard0.json t4.shard1.json
//	cltables -table 4 -scale 25 -fleet 4 -shard-timeout 10m -checkpoint ckpt/
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	osexec "os/exec"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"clfuzz/internal/benchmarks"
	"clfuzz/internal/campaign"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/exhibits"
	"clfuzz/internal/fault"
	"clfuzz/internal/fleet"
	"clfuzz/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cltables: ")
	table := flag.Int("table", 0, "regenerate table 1-5")
	figure := flag.Int("figure", 0, "regenerate figure 1 or 2 (bug exhibits)")
	all := flag.Bool("all", false, "regenerate everything")
	fuzz := flag.Bool("fuzz", false,
		"run the coverage-guided fuzzing campaign instead of a paper table (-scale steps per chain); composes with -shard/-merge/-fleet")
	chains := flag.Int("chains", 0, "independent fuzzing chains for -fuzz (default 4)")
	fresh := flag.Bool("fresh", false,
		"disable the -fuzz feedback loop: every step generates fresh (the equal-budget pure-random baseline)")
	scale := flag.Int("scale", 10, "campaign size per unit (kernels per mode, EMI bases, fuzz steps per chain, ...)")
	seed := flag.Int64("seed", 1, "campaign seed")
	threads := flag.Int("threads", 64, "maximum thread count for generated kernels")
	shard := flag.String("shard", "",
		"run one campaign slice i/n (e.g. 0/2) and emit a partial-results file instead of the table")
	out := flag.String("out", "", "partial-results output path for -shard (default stdout); an existing valid partial file there is resumed")
	merge := flag.Bool("merge", false,
		"merge the shard files given as arguments into the rendered table (byte-identical to the unsharded run)")
	fleetN := flag.Int("fleet", 0,
		"supervise the campaign across N isolated worker processes (re-execs this binary per shard)")
	shardTimeout := flag.Duration("shard-timeout", 0,
		"per-shard wall-clock budget under -fleet; a worker still running when it expires is killed and retried (0 = none)")
	retries := flag.Int("retries", 2,
		"re-dispatches a failing shard gets under -fleet before it is quarantined")
	checkpoint := flag.String("checkpoint", "",
		"checkpoint directory for -fleet shard files; re-running over it resumes, re-executing only missing shards (default: a temporary directory)")
	noSpeculate := flag.Bool("no-speculate", false,
		"disable straggler re-dispatch under -fleet (the speculative duplicate of the last running shard)")
	engineFlag := flag.String("engine", "auto",
		"evaluation engine for every campaign launch: vm, tree, or auto (campaign output is byte-identical either way)")
	fuelFlag := flag.String("fuel", "auto",
		"fuel model for every campaign launch: v1 (per-instruction, tree-exact), v2 (per-superinstruction on the fused VM program), or auto (CLFUZZ_FUEL or v1); campaign output is byte-identical unless a kernel times out")
	dispatchFlag := flag.String("dispatch", "auto",
		"VM dispatch mode for every campaign launch: switch, threaded (pre-resolved handler closures), or auto (CLFUZZ_DISPATCH or switch); campaign output is byte-identical either way")
	storeDir := flag.String("store", "",
		"disk-backed result store directory shared by shard workers, fleet runs and reruns (default $CLFUZZ_STORE; empty disables); campaign output is byte-identical with or without it")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()
	engine, err := exec.ParseEngine(*engineFlag)
	if err != nil {
		log.Fatal(err)
	}
	device.DefaultEngine = engine
	fuel, err := exec.ParseFuelModel(*fuelFlag)
	if err != nil {
		log.Fatal(err)
	}
	if fuel != exec.FuelAuto {
		device.DefaultFuelModel = fuel
	}
	dispatch, err := exec.ParseDispatch(*dispatchFlag)
	if err != nil {
		log.Fatal(err)
	}
	if dispatch != exec.DispatchAuto {
		device.DefaultDispatch = dispatch
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}()
	}
	diskStore, err := campaign.EnableStore(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	if diskStore != nil {
		defer func() {
			dh, dm := campaign.Default.Results.DiskStats()
			st := diskStore.Stats()
			log.Printf("store summary: dir=%s disk-hits=%d disk-misses=%d corrupt=%d writes=%d write-errs=%d",
				diskStore.Dir(), dh, dm, st.Corrupt, st.Writes, st.WriteErrs)
		}()
	}

	// SIGINT/SIGTERM cancel cooperatively: campaigns stop dispatching,
	// in-flight cases finish, and shard workers flush a resumable partial
	// file before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *merge {
		if flag.NArg() == 0 {
			log.Fatal("usage: cltables -merge shard0.json shard1.json ...")
		}
		rendered, err := harness.MergeShardPaths(flag.Args())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rendered)
		return
	}

	if *fuzz {
		if *table != 0 {
			log.Fatal("-fuzz and -table are mutually exclusive")
		}
		*table = harness.FuzzTable
	}

	params := func(t int) harness.Params {
		// Params.Fuel records the non-default model only: v1 campaigns
		// leave it empty so their shard files stay byte-identical to ones
		// written before fuel models existed.
		return harness.Params{Table: t, Scale: *scale, Seed: *seed, Threads: *threads, Chains: *chains, Fresh: *fresh, Fuel: harness.DefaultFuelParam()}
	}

	if *shard != "" {
		if *table == 0 {
			log.Fatal("-shard requires -table or -fuzz")
		}
		runWorker(ctx, params(*table), *shard, *out)
		return
	}

	if *fleetN > 0 {
		if *table == 0 || *table == 2 {
			log.Fatal("-fleet requires -table 1, 3, 4 or 5, or -fuzz (table 2 has no campaign)")
		}
		if err := runFleet(ctx, params(*table), fleetOptions{
			shards:      *fleetN,
			timeout:     *shardTimeout,
			retries:     *retries,
			checkpoint:  *checkpoint,
			noSpeculate: *noSpeculate,
			engine:      *engineFlag,
			fuel:        *fuelFlag,
			dispatch:    *dispatchFlag,
			store:       *storeDir,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	run := func(t int) {
		if t == 2 {
			fmt.Println(renderTable2())
			return
		}
		rendered, err := harness.RenderCampaign(ctx, params(t))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rendered)
	}
	switch {
	case *all:
		for t := 1; t <= 5; t++ {
			run(t)
		}
		fmt.Println(exhibits.Render(1))
		fmt.Println(exhibits.Render(2))
	case *table != 0:
		run(*table)
	case *figure != 0:
		fmt.Println(exhibits.Render(*figure))
	default:
		log.Fatal("specify -table N, -figure N or -all")
	}
}

// runWorker is the -shard mode: execute one campaign slice and emit its
// partial-results file. An existing valid file at the out path resumes —
// only the missing cases run — and a cancellation mid-run still flushes
// the valid partial file (then exits nonzero so a supervisor counts the
// attempt as failed). CLFUZZ_FAULT faults fire from the per-case hook.
func runWorker(ctx context.Context, p harness.Params, shardSpec, out string) {
	var si, sn int
	if _, err := fmt.Sscanf(shardSpec, "%d/%d", &si, &sn); err != nil {
		log.Fatalf("bad -shard %q: want i/n", shardSpec)
	}
	opts := harness.ShardRunOptions{}
	if out != "" {
		if prior, err := harness.LoadShardFile(out); err == nil &&
			prior.Params == p && prior.Shard == si && prior.Of == sn {
			opts.Prior = prior
			log.Printf("resuming shard %d/%d from %s (%d cases already done)", si, sn, out, len(prior.Records))
		}
	}
	plan, err := fault.FromEnv()
	if err != nil {
		log.Fatal(err)
	}
	if plan.Active() {
		opts.OnCase = func(done, total int) {
			if plan.Point(si, done) {
				plan.Fire()
			}
		}
	}
	sf, runErr := harness.RunShardOpts(ctx, p, si, sn, opts)
	if sf == nil {
		log.Fatal(runErr)
	}
	if out == "" {
		if err := json.NewEncoder(os.Stdout).Encode(sf); err != nil {
			log.Fatal(err)
		}
	} else if betterFileExists(out, p, si, sn, len(sf.Records)) {
		// Never regress the checkpoint: a speculation loser canceled
		// mid-run must not flush its partial file over the winner's
		// complete one.
		log.Printf("leaving %s in place: it already has >= %d records", out, len(sf.Records))
	} else if err := writeShardFile(out, sf); err != nil {
		log.Fatal(err)
	}
	if runErr != nil {
		log.Printf("shard %d/%d canceled after %d records; partial file is resumable", si, sn, len(sf.Records))
		os.Exit(1)
	}
}

// betterFileExists reports whether the out path already holds a valid
// file for the same slice with at least n records, in which case writing
// ours would at best be a no-op and at worst lose completed cases.
func betterFileExists(out string, p harness.Params, shard, of, n int) bool {
	cur, err := harness.LoadShardFile(out)
	return err == nil && cur.Params == p && cur.Shard == shard && cur.Of == of &&
		len(cur.Records) >= n
}

// writeShardFile installs the shard file atomically (temp file + rename),
// so a supervisor — or a racing speculative duplicate — never observes a
// torn write under the final path.
func writeShardFile(path string, sf *harness.ShardFile) error {
	b, err := json.Marshal(sf)
	if err != nil {
		return err
	}
	tmp := fmt.Sprintf("%s.tmp.%d", path, os.Getpid())
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

type fleetOptions struct {
	shards      int
	timeout     time.Duration
	retries     int
	checkpoint  string
	noSpeculate bool
	engine      string
	fuel        string
	dispatch    string
	store       string
}

// runFleet is the -fleet mode: supervise the campaign across shard
// worker processes (this binary re-exec'd with -shard i/n -out), print
// the merged table to stdout and a greppable supervision summary to
// stderr.
func runFleet(ctx context.Context, p harness.Params, o fleetOptions) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	ckpt := o.checkpoint
	if ckpt == "" {
		dir, err := os.MkdirTemp("", "clfuzz-fleet-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		ckpt = dir
	}
	worker := func(wctx context.Context, shard, of int, outPath string) *osexec.Cmd {
		cmd := osexec.CommandContext(wctx, exe,
			"-table", fmt.Sprint(p.Table),
			"-scale", fmt.Sprint(p.Scale),
			"-seed", fmt.Sprint(p.Seed),
			"-threads", fmt.Sprint(p.Threads),
			"-chains", fmt.Sprint(p.Chains),
			"-fresh="+fmt.Sprint(p.Fresh),
			"-engine", o.engine,
			"-fuel", o.fuel,
			"-dispatch", o.dispatch,
			"-store", o.store,
			"-shard", fmt.Sprintf("%d/%d", shard, of),
			"-out", outPath)
		cmd.Stderr = os.Stderr
		// A canceled attempt first gets SIGINT so the worker can flush its
		// resumable partial file; the kill follows after the grace window.
		cmd.Cancel = func() error { return cmd.Process.Signal(os.Interrupt) }
		cmd.WaitDelay = 5 * time.Second
		return cmd
	}
	rep, err := fleet.Run(ctx, p, fleet.Config{
		Shards:        o.shards,
		ShardTimeout:  o.timeout,
		Retries:       o.retries,
		NoSpeculate:   o.noSpeculate,
		CheckpointDir: ckpt,
		Worker:        worker,
		Log:           func(format string, args ...any) { log.Printf(format, args...) },
	})
	if err != nil {
		return err
	}
	fmt.Println(rep.Output)
	log.Printf("fleet summary: launches=%d resumed=%d quarantined=%d failed-cases=%d",
		rep.Launches, rep.Resumed, len(rep.Quarantined), rep.FailedCases)
	return nil
}

func renderTable2() string {
	out := "Table 2. OpenCL benchmarks studied using EMI testing\n"
	out += fmt.Sprintf("%-9s %-11s %-34s %8s %6s %4s %6s\n",
		"Suite", "Benchmark", "Description", "Kernels", "LoC", "FP?", "race?")
	for _, b := range benchmarks.All() {
		fp := "x"
		if b.PaperUsesFP {
			fp = "X"
		}
		race := ""
		if b.HasRace {
			race = "RACE"
		}
		out += fmt.Sprintf("%-9s %-11s %-34s %8d %6d %4s %6s\n",
			b.Suite, b.Name, b.Description, b.PaperKernels, b.LoC(), fp, race)
	}
	return out
}
