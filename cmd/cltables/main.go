// Cltables regenerates every table and figure of the paper's evaluation:
// Table 1 (configuration classification), Table 2 (benchmark inventory),
// Table 3 (EMI over benchmarks), Table 4 (intensive CLsmith testing),
// Table 5 (CLsmith+EMI) and the Figure 1/2 bug exhibits. The campaign
// sizes scale with -scale; ARCHITECTURE.md maps each table to its runner.
//
// Usage:
//
//	cltables -table 4 -scale 25
//	cltables -figure 2
//	cltables -all -scale 10
package main

import (
	"flag"
	"fmt"
	"log"

	"clfuzz/internal/benchmarks"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/exhibits"
	"clfuzz/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cltables: ")
	table := flag.Int("table", 0, "regenerate table 1-5")
	figure := flag.Int("figure", 0, "regenerate figure 1 or 2 (bug exhibits)")
	all := flag.Bool("all", false, "regenerate everything")
	scale := flag.Int("scale", 10, "campaign size per unit (kernels per mode, EMI bases, ...)")
	seed := flag.Int64("seed", 1, "campaign seed")
	threads := flag.Int("threads", 64, "maximum thread count for generated kernels")
	engineFlag := flag.String("engine", "auto",
		"evaluation engine for every campaign launch: vm, tree, or auto (campaign output is byte-identical either way)")
	flag.Parse()
	engine, err := exec.ParseEngine(*engineFlag)
	if err != nil {
		log.Fatal(err)
	}
	device.DefaultEngine = engine

	run := func(t int) {
		switch t {
		case 1:
			rows := harness.ClassifyConfigurations(*scale, *seed, *threads, 0)
			fmt.Println(harness.RenderTable1(rows))
		case 2:
			fmt.Println(renderTable2())
		case 3:
			t3 := harness.EMIBenchmarkCampaign(*scale/2+1, *seed, 0)
			fmt.Println(harness.RenderTable3(t3))
		case 4:
			t4 := harness.CLsmithCampaign(*scale, *seed, *threads, 0)
			fmt.Println(harness.RenderTable4(t4))
		case 5:
			t5 := harness.EMICampaign(*scale, *seed, *threads, 0)
			fmt.Println(harness.RenderTable5(t5))
			fmt.Println(harness.RenderPruningComparison(t5))
		default:
			log.Fatalf("no table %d", t)
		}
	}
	switch {
	case *all:
		for t := 1; t <= 5; t++ {
			run(t)
		}
		fmt.Println(exhibits.Render(1))
		fmt.Println(exhibits.Render(2))
	case *table != 0:
		run(*table)
	case *figure != 0:
		fmt.Println(exhibits.Render(*figure))
	default:
		log.Fatal("specify -table N, -figure N or -all")
	}
}

func renderTable2() string {
	out := "Table 2. OpenCL benchmarks studied using EMI testing\n"
	out += fmt.Sprintf("%-9s %-11s %-34s %8s %6s %4s %6s\n",
		"Suite", "Benchmark", "Description", "Kernels", "LoC", "FP?", "race?")
	for _, b := range benchmarks.All() {
		fp := "x"
		if b.PaperUsesFP {
			fp = "X"
		}
		race := ""
		if b.HasRace {
			race = "RACE"
		}
		out += fmt.Sprintf("%-9s %-11s %-34s %8d %6d %4s %6s\n",
			b.Suite, b.Name, b.Description, b.PaperKernels, b.LoC(), fp, race)
	}
	return out
}
