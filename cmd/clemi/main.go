// Clemi performs the EMI operations of §5: injecting dead-by-construction
// blocks into an existing kernel, and deriving pruned variants of a kernel
// that already contains EMI blocks (leaf / compound / lift strategies).
//
// Usage:
//
//	clemi -inject -subs -seed 3 kernel.cl          # print injected kernel
//	clemi -variants 8 -o /tmp/vars kernel.cl        # write pruned variants
//	clemi -grid kernel.cl                           # all 40 grid variants
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clfuzz/internal/ast"
	"clfuzz/internal/emi"
	"clfuzz/internal/parser"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clemi: ")
	inject := flag.Bool("inject", false, "inject EMI blocks into the kernel")
	subs := flag.Bool("subs", false, "with -inject: alias free variables to host-kernel variables")
	blocks := flag.Int("blocks", 2, "with -inject: number of EMI blocks")
	variants := flag.Int("variants", 0, "derive N pruned variants (random strategies)")
	grid := flag.Bool("grid", false, "derive the full 40-combination §7.4 pruning grid")
	seed := flag.Int64("seed", 1, "random seed")
	outDir := flag.String("o", "", "output directory for variants (default: stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: clemi [flags] kernel.cl")
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := parser.Parse(string(srcBytes))
	if err != nil {
		log.Fatal(err)
	}

	if *inject {
		nsubs, err := emi.Inject(prog, emi.InjectOptions{Seed: *seed, Blocks: *blocks, Substitute: *subs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "injected %d block(s), %d substitution(s)\n", *blocks, nsubs)
		fmt.Print(ast.Print(prog))
		return
	}

	found := emi.FindBlocks(prog)
	if len(found) == 0 {
		log.Fatal("kernel contains no EMI blocks (use -inject first, or clsmith -emi)")
	}
	fmt.Fprintf(os.Stderr, "found %d EMI block(s)\n", len(found))

	var opts []emi.PruneOpts
	switch {
	case *grid:
		opts = emi.Grid()
	case *variants > 0:
		g := emi.Grid()
		for i := 0; i < *variants; i++ {
			po := g[(int(*seed)+i*7)%len(g)]
			po.Seed = *seed + int64(i)
			opts = append(opts, po)
		}
	default:
		log.Fatal("specify -variants N or -grid (or -inject)")
	}
	for i, po := range opts {
		po.Seed = *seed + int64(i)
		v, err := emi.Prune(prog, po)
		if err != nil {
			log.Fatal(err)
		}
		out := ast.Print(v)
		if *outDir == "" {
			fmt.Printf("// variant %d: pleaf=%.1f pcompound=%.1f plift=%.1f\n%s\n", i, po.PLeaf, po.PCompound, po.PLift, out)
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		name := filepath.Join(*outDir, fmt.Sprintf("variant_%03d.cl", i))
		if err := os.WriteFile(name, []byte(out), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println(name)
	}
}
