// Clbench measures the repository's benchmark suite and emits a JSON
// snapshot in the BENCH_baseline.json schema, so successive PRs have a
// perf trajectory to compare against.
//
// Usage:
//
//	clbench                 # micro + differential benchmarks
//	clbench -tables         # additionally regenerate the Table 1/3/4/5 campaigns
//	clbench -baseline BENCH_baseline.json   # print speedups vs a snapshot
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"clfuzz/internal/campaign"
	"clfuzz/internal/code"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/exhibits"
	"clfuzz/internal/generator"
	"clfuzz/internal/harness"
	"clfuzz/internal/oracle"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

type metrics struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// cacheStats snapshots one compile-cache level after the benchmark run,
// so cross-machine comparisons can see whether a perf difference is cache
// effectiveness or raw speed (a cold or thrashing cache shows up as a
// miss-heavy snapshot, not as an unexplained slowdown).
type cacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Size   int    `json:"size"`
}

type snapshot struct {
	Schema     string `json:"schema"`
	CapturedAt string `json:"captured_at,omitempty"`
	Commit     string `json:"commit,omitempty"`
	Go         string `json:"go"`
	CPU        string `json:"cpu,omitempty"`
	// CPUs is GOMAXPROCS at capture time: the parallel benchmarks
	// (BenchmarkExecuteParallel, the campaign tables) scale with it, so
	// snapshots from different machines are only comparable through it.
	CPUs int `json:"cpus,omitempty"`
	// GroupWorkers is the work-group fan-out budget the parallel execute
	// benchmark ran with (RunOptions.Workers).
	GroupWorkers int    `json:"group_workers,omitempty"`
	Notes        string `json:"notes,omitempty"`
	// Engine is the evaluation engine the run used (vm, tree, or auto),
	// with the engine counters accumulated over the whole run: launches
	// per engine, VM instructions dispatched, and how many distinct
	// back-end programs lowered to bytecode vs fell back to the tree
	// walker. Cross-machine comparisons must match on Engine first.
	Engine         string `json:"engine,omitempty"`
	VMLaunches     int64  `json:"vm_launches,omitempty"`
	TreeLaunches   int64  `json:"tree_launches,omitempty"`
	VMInstructions int64  `json:"vm_instructions,omitempty"`
	LoweredKernels uint64 `json:"lowered_kernels,omitempty"`
	LowerFallbacks uint64 `json:"lower_fallbacks,omitempty"`
	// FuelModel is the fuel accounting model launches resolved to (v1 =
	// per-instruction tree-exact, v2 = per-superinstruction on the fused
	// program), with per-model launch/dispatch counters and the fusion
	// pass's cumulative instruction reduction. Comparisons must match on
	// FuelModel as well as Engine: v2 dispatches fewer, fatter
	// instructions, so raw instruction counts are not comparable across
	// models.
	FuelModel         string `json:"fuel_model,omitempty"`
	FuelV1Launches    int64  `json:"fuel_v1_launches,omitempty"`
	FuelV1Instrs      int64  `json:"fuel_v1_instructions,omitempty"`
	FuelV2Launches    int64  `json:"fuel_v2_launches,omitempty"`
	FuelV2Instrs      int64  `json:"fuel_v2_superinstructions,omitempty"`
	FusedPrograms     int64  `json:"fused_programs,omitempty"`
	FusedInstrsBefore int64  `json:"fused_instrs_before,omitempty"`
	FusedInstrsAfter  int64  `json:"fused_instrs_after,omitempty"`
	// Dispatch is the VM dispatch mode launches resolved to (switch =
	// the vmLoop switch, threaded = pre-resolved handler closures), with
	// per-mode launch counters. Outputs are byte-identical across modes,
	// so unlike Engine/FuelModel a mismatch here only affects speed.
	Dispatch         string `json:"dispatch,omitempty"`
	SwitchLaunches   int64  `json:"switch_launches,omitempty"`
	ThreadedLaunches int64  `json:"threaded_launches,omitempty"`
	// PoolHits and PoolMisses are the executor's launch-state pool
	// counters over the run: acquisitions served from the freelist vs by
	// constructing a fresh state. A steady-state run is almost all hits.
	PoolHits   uint64 `json:"pool_hits,omitempty"`
	PoolMisses uint64 `json:"pool_misses,omitempty"`
	// GC/allocator telemetry over the whole run (runtime.ReadMemStats):
	// cumulative allocated bytes and object count, completed GC cycles,
	// and total stop-the-world pause. The launch-state pool's effect
	// shows up here as a lower mallocs/NumGC slope at equal work.
	TotalAllocBytes uint64 `json:"total_alloc_bytes,omitempty"`
	Mallocs         uint64 `json:"mallocs,omitempty"`
	NumGC           uint32 `json:"num_gc,omitempty"`
	GCPauseTotalNs  uint64 `json:"gc_pause_total_ns,omitempty"`
	// OpStats is the -opstats section: opcode and adjacent-opcode-pair
	// dispatch histograms collected from the Execute benchmarks, sorted
	// by descending count (capped to the top entries). The pair table is
	// the data the fusion pass's pattern list was chosen from.
	OpStats *opStatsSection `json:"op_stats,omitempty"`
	// FrontCache and BackCache are the process-wide compile-cache
	// counters accumulated over the whole benchmark run: front-end
	// parses and finished back-end kernels reused vs compiled.
	FrontCache *cacheStats `json:"front_cache,omitempty"`
	BackCache  *cacheStats `json:"back_cache,omitempty"`
	// ResultCache is the campaign engine's cross-base result memo —
	// finished launch results keyed by (source hash, defect model,
	// argument digest) and reused across cases and campaigns.
	ResultCache *cacheStats `json:"result_cache,omitempty"`
	// ResultStore is the disk tier beneath the result cache (-store):
	// campaign-verified disk hits/misses plus the store's own write and
	// corruption counters. Absent when no store directory is configured.
	ResultStore *storeStats `json:"result_store,omitempty"`
	// CacheSkipNonFlat/Race/CoverMismatch are the campaign engine's
	// per-reason result-cache skip counters: launches a wired cache could
	// not serve because of cell-backed buffers, the race checker, or a
	// result memoized under the opposite coverage population.
	CacheSkipNonFlat       int64 `json:"cache_skip_non_flat,omitempty"`
	CacheSkipRace          int64 `json:"cache_skip_race,omitempty"`
	CacheSkipCoverMismatch int64 `json:"cache_skip_cover_mismatch,omitempty"`
	// CampaignCases and CampaignLaunches are the campaign engine's
	// cumulative throughput counters over the run: cases (matrices or
	// single launches) started, and representative launches actually
	// executed (model-dedup followers and result-cache hits are free).
	CampaignCases    int64 `json:"campaign_cases,omitempty"`
	CampaignLaunches int64 `json:"campaign_launches,omitempty"`
	// CasesPerSec is campaign throughput over the whole run: cases
	// completed per wall-clock second (compare only at equal CPUs,
	// Engine and scale).
	CasesPerSec float64 `json:"cases_per_sec,omitempty"`
	// Fuzz is the -fuzz section: the coverage-guided campaign's
	// coverage-over-time series against the equal-budget pure-random
	// baseline at the same seed (both deterministic, so the series are
	// machine-independent facts, not measurements).
	Fuzz       *fuzzStats         `json:"fuzz,omitempty"`
	Benchmarks map[string]metrics `json:"benchmarks"`
}

// storeStats is the -store snapshot section.
type storeStats struct {
	Dir       string `json:"dir"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Corrupt   uint64 `json:"corrupt,omitempty"`
	Writes    uint64 `json:"writes"`
	WriteErrs uint64 `json:"write_errs,omitempty"`
}

// opStatsSection is the -opstats snapshot section.
type opStatsSection struct {
	Ops   []exec.OpCount   `json:"ops"`
	Pairs []exec.PairCount `json:"pairs"`
}

// fuzzStats summarizes one guided-vs-random fuzz comparison.
type fuzzStats struct {
	Chains        int   `json:"chains"`
	StepsPerChain int   `json:"steps_per_chain"`
	Seed          int64 `json:"seed"`
	// Edges and RandomEdges are the distinct VM edges reached by the
	// coverage-guided campaign and the equal-budget pure-random baseline.
	Edges       int `json:"edges"`
	RandomEdges int `json:"random_edges"`
	Corpus      int `json:"corpus"`
	Mismatches  int `json:"mismatches"`
	// Curve and RandomCurve are the cumulative distinct-edge counts after
	// each case, in case order — the coverage-over-time series.
	Curve       []int `json:"curve"`
	RandomCurve []int `json:"random_curve"`
	// Defect-trigger-site hit totals over the guided campaign.
	DerefStoreHits uint64 `json:"deref_store_hits"`
	ArrowStoreHits uint64 `json:"arrow_store_hits"`
	DeadLoopHits   uint64 `json:"dead_loop_hits"`
}

func measure(name string, out map[string]metrics, fn func(b *testing.B)) {
	r := testing.Benchmark(fn)
	out[name] = metrics{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	fmt.Fprintf(os.Stderr, "%-28s %14d ns/op %12d B/op %10d allocs/op\n",
		name, r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
}

func main() {
	tables := flag.Bool("tables", false, "also regenerate the Table 1/3/4/5 campaign benchmarks (slow)")
	fuzzFlag := flag.Bool("fuzz", false,
		"also run the coverage-guided fuzz campaign and its equal-budget pure-random baseline, recording the coverage-over-time series")
	fuzzScale := flag.Int("fuzzscale", 15, "fuzz steps per chain for -fuzz")
	scale := flag.Int("scale", 6, "campaign scale for the table benchmarks")
	baselinePath := flag.String("baseline", "", "optional snapshot to compare against (prints speedups to stderr)")
	engineFlag := flag.String("engine", "auto", "evaluation engine for every launch: vm, tree, or auto")
	fuelFlag := flag.String("fuel", "auto",
		"fuel model for every launch: v1 (per-instruction), v2 (per-superinstruction on the fused program), or auto (CLFUZZ_FUEL or v1)")
	storeDirFlag := flag.String("store", "",
		"disk-backed result store directory (default $CLFUZZ_STORE; empty disables); the snapshot records its hit/miss/write counters")
	opStatsFlag := flag.Bool("opstats", false,
		"collect opcode and opcode-pair dispatch histograms from the Execute benchmarks and record them in the snapshot (forces the switch dispatch loop)")
	dispatchFlag := flag.String("dispatch", "auto",
		"VM dispatch mode for every launch: switch, threaded (pre-resolved handler closures), or auto (CLFUZZ_DISPATCH or switch); outputs are byte-identical either way")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()
	engine, err := exec.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	device.DefaultEngine = engine
	fuel, err := exec.ParseFuelModel(*fuelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if fuel != exec.FuelAuto {
		device.DefaultFuelModel = fuel
	}
	dispatch, err := exec.ParseDispatch(*dispatchFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if dispatch != exec.DispatchAuto {
		device.DefaultDispatch = dispatch
	}
	diskStore, err := campaign.EnableStore(*storeDirFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	var ops *exec.OpStats
	if *opStatsFlag {
		ops = new(exec.OpStats)
	}

	bm := map[string]metrics{}
	started := time.Now()

	k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 5, MaxTotalThreads: 64})
	ref := device.Reference()

	measure("BenchmarkParse", bm, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := parser.Parse(k.Src); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("BenchmarkSema", bm, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prog, err := parser.Parse(k.Src)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := sema.Check(prog, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("BenchmarkCompile", bm, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cr := ref.Compile(k.Src, true)
			if cr.Outcome != device.OK {
				b.Fatal(cr.Msg)
			}
		}
	})
	measure("BenchmarkExecute", bm, func(b *testing.B) {
		cr := ref.Compile(k.Src, true)
		if cr.Outcome != device.OK {
			b.Fatal(cr.Msg)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			args, result := k.Buffers()
			rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{OpStats: ops})
			if rr.Outcome != device.OK {
				b.Fatal(rr.Msg)
			}
		}
	})
	measure("BenchmarkExecuteSteadyState", bm, func(b *testing.B) {
		// Steady state: the launch-state pool is warmed before the timer
		// starts, so every measured iteration recycles a pooled state —
		// the regime a long campaign runs in. Compare against
		// BenchmarkExecute (which includes pool warm-up in its first
		// iteration) to see the recycling win in isolation.
		cr := ref.Compile(k.Src, true)
		if cr.Outcome != device.OK {
			b.Fatal(cr.Msg)
		}
		args, result := k.Buffers()
		if rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{OpStats: ops}); rr.Outcome != device.OK {
			b.Fatal(rr.Msg)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			args, result := k.Buffers()
			rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{OpStats: ops})
			if rr.Outcome != device.OK {
				b.Fatal(rr.Msg)
			}
		}
	})
	groupWorkers := runtime.GOMAXPROCS(0)
	measure("BenchmarkExecuteParallel", bm, func(b *testing.B) {
		cr := ref.Compile(k.Src, true)
		if cr.Outcome != device.OK {
			b.Fatal(cr.Msg)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			args, result := k.Buffers()
			rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{Workers: groupWorkers, OpStats: ops})
			if rr.Outcome != device.OK {
				b.Fatal(rr.Msg)
			}
		}
	})
	measure("BenchmarkDifferentialTest", bm, func(b *testing.B) {
		cfgs := harness.AboveThresholdConfigs()
		for i := 0; i < b.N; i++ {
			dk := generator.Generate(generator.Options{Mode: generator.ModeBasic, Seed: int64(1000 + i), MaxTotalThreads: 32})
			c := harness.CaseFromKernel(dk, "bench")
			rs := harness.RunEverywhere(cfgs, c, 0)
			_ = oracle.WrongCode(rs)
		}
	})
	measure("BenchmarkFigure1", bm, func(b *testing.B) { benchFigure(b, 1) })
	measure("BenchmarkFigure2", bm, func(b *testing.B) { benchFigure(b, 2) })

	if *tables {
		// The table benchmarks drive harness.RenderCampaign — the same
		// ctx-first path the cltables CLI and the fleet supervisor render
		// through — so the perf trajectory tracks what production runs.
		benchTable := func(p harness.Params) func(b *testing.B) {
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := harness.RenderCampaign(context.Background(), p); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		measure("BenchmarkTable1", bm, benchTable(harness.Params{Table: 1, Scale: *scale, Seed: 7, Threads: 48, Fuel: harness.DefaultFuelParam()}))
		measure("BenchmarkTable3", bm, benchTable(harness.Params{Table: 3, Scale: 2, Seed: 11, Threads: 48, Fuel: harness.DefaultFuelParam()}))
		measure("BenchmarkTable4", bm, benchTable(harness.Params{Table: 4, Scale: *scale, Seed: 13, Threads: 48, Fuel: harness.DefaultFuelParam()}))
		measure("BenchmarkTable5", bm, benchTable(harness.Params{Table: 5, Scale: *scale/2 + 1, Seed: 17, Threads: 48, Fuel: harness.DefaultFuelParam()}))
	}

	var fuzz *fuzzStats
	if *fuzzFlag {
		fp := harness.Params{Table: harness.FuzzTable, Scale: *fuzzScale, Seed: 23, Threads: 48, Chains: 4, Fuel: harness.DefaultFuelParam()}
		guided, err := harness.RunFuzzFold(context.Background(), fp)
		if err == nil {
			rp := fp
			rp.Fresh = true
			var random *harness.FuzzFold
			random, err = harness.RunFuzzFold(context.Background(), rp)
			if err == nil {
				sites := guided.Cover.SiteHits()
				fuzz = &fuzzStats{
					Chains:         4,
					StepsPerChain:  *fuzzScale,
					Seed:           fp.Seed,
					Edges:          guided.Cover.Count(),
					RandomEdges:    random.Cover.Count(),
					Corpus:         guided.CorpusTotal(),
					Mismatches:     guided.Mismatches,
					Curve:          guided.Curve,
					RandomCurve:    random.Curve,
					DerefStoreHits: sites[exec.CoverSiteDerefStore],
					ArrowStoreHits: sites[exec.CoverSiteArrowStore],
					DeadLoopHits:   sites[exec.CoverSiteDeadLoop],
				}
				fmt.Fprintf(os.Stderr, "%-28s %14d edges %12d random-edges %10d corpus\n",
					"Fuzz", fuzz.Edges, fuzz.RandomEdges, fuzz.Corpus)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuzz:", err)
			os.Exit(1)
		}
	}

	elapsed := time.Since(started).Seconds()
	fcHits, fcMisses, fcSize := device.DefaultFrontCache.Stats()
	bcHits, bcMisses, bcSize := device.DefaultBackCache.Stats()
	rcHits, rcMisses, rcSize := campaign.Default.Results.Stats()
	skipNonFlat, skipRace, skipCover := campaign.Default.CacheSkips()
	var storeSection *storeStats
	if diskStore != nil {
		dh, dm := campaign.Default.Results.DiskStats()
		st := diskStore.Stats()
		storeSection = &storeStats{Dir: diskStore.Dir(), Hits: dh, Misses: dm,
			Corrupt: st.Corrupt, Writes: st.Writes, WriteErrs: st.WriteErrs}
		fmt.Fprintf(os.Stderr, "%-28s %14d hits %12d misses %10d writes\n", "ResultStore", dh, dm, st.Writes)
	}
	cases, launches := campaign.Default.Counters()
	casesPerSec := 0.0
	if elapsed > 0 {
		casesPerSec = float64(cases) / elapsed
	}
	lowered, fallbacks := device.LowerStats()
	vmRuns, treeRuns, vmInstrs := exec.EngineCounters()
	v1Runs, v1Instrs, v2Runs, v2Instrs := exec.FuelCounters()
	fusedProgs, fusedBefore, fusedAfter := code.FuseStats()
	swRuns, thRuns := exec.DispatchCounters()
	poolHits, poolMisses := exec.DefaultPool().Counters()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	effFuel := fuel
	if effFuel == exec.FuelAuto {
		effFuel = device.DefaultFuelModel
	}
	effDispatch := dispatch
	if effDispatch == exec.DispatchAuto {
		effDispatch = device.DefaultDispatch
	}
	fmt.Fprintf(os.Stderr, "%-28s %14d hits %12d misses %10d entries\n", "FrontCache", fcHits, fcMisses, fcSize)
	fmt.Fprintf(os.Stderr, "%-28s %14d hits %12d misses %10d entries\n", "BackCache", bcHits, bcMisses, bcSize)
	fmt.Fprintf(os.Stderr, "%-28s %14d hits %12d misses %10d entries\n", "ResultCache", rcHits, rcMisses, rcSize)
	fmt.Fprintf(os.Stderr, "%-28s %14d cases %12d launches %10.1f cases/s\n", "Campaign", cases, launches, casesPerSec)
	fmt.Fprintf(os.Stderr, "%-28s %14d lowered %12d fallbacks\n", "Lowering", lowered, fallbacks)
	fmt.Fprintf(os.Stderr, "%-28s %14d vm %12d tree %10d vm-instrs\n", "Engine", vmRuns, treeRuns, vmInstrs)
	fmt.Fprintf(os.Stderr, "%-28s %14d v1-runs %12d v2-runs %10d v2-instrs\n", "Fuel", v1Runs, v2Runs, v2Instrs)
	fmt.Fprintf(os.Stderr, "%-28s %14d fused %12d before %10d after\n", "Fusion", fusedProgs, fusedBefore, fusedAfter)
	fmt.Fprintf(os.Stderr, "%-28s %14d switch %12d threaded\n", "Dispatch", swRuns, thRuns)
	fmt.Fprintf(os.Stderr, "%-28s %14d hits %12d misses\n", "LaunchPool", poolHits, poolMisses)
	fmt.Fprintf(os.Stderr, "%-28s %14d mallocs %12d gc-cycles %10d pause-ns\n", "GC", ms.Mallocs, ms.NumGC, ms.PauseTotalNs)
	var opSection *opStatsSection
	if ops != nil {
		const topN = 32
		oc, pc := ops.Ops(), ops.Pairs()
		if len(oc) > topN {
			oc = oc[:topN]
		}
		if len(pc) > topN {
			pc = pc[:topN]
		}
		opSection = &opStatsSection{Ops: oc, Pairs: pc}
		for i, o := range oc {
			if i >= 8 {
				break
			}
			fmt.Fprintf(os.Stderr, "%-28s %14d dispatches\n", "Op:"+o.Op, o.Count)
		}
	}
	snap := snapshot{
		Schema:                 "clfuzz-bench/v1",
		Go:                     runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		CPUs:                   runtime.GOMAXPROCS(0),
		GroupWorkers:           groupWorkers,
		Engine:                 engine.String(),
		VMLaunches:             vmRuns,
		TreeLaunches:           treeRuns,
		VMInstructions:         vmInstrs,
		LoweredKernels:         lowered,
		LowerFallbacks:         fallbacks,
		FuelModel:              effFuel.String(),
		FuelV1Launches:         v1Runs,
		FuelV1Instrs:           v1Instrs,
		FuelV2Launches:         v2Runs,
		FuelV2Instrs:           v2Instrs,
		FusedPrograms:          fusedProgs,
		FusedInstrsBefore:      fusedBefore,
		FusedInstrsAfter:       fusedAfter,
		Dispatch:               effDispatch.String(),
		SwitchLaunches:         swRuns,
		ThreadedLaunches:       thRuns,
		PoolHits:               poolHits,
		PoolMisses:             poolMisses,
		TotalAllocBytes:        ms.TotalAlloc,
		Mallocs:                ms.Mallocs,
		NumGC:                  ms.NumGC,
		GCPauseTotalNs:         ms.PauseTotalNs,
		OpStats:                opSection,
		FrontCache:             &cacheStats{Hits: fcHits, Misses: fcMisses, Size: fcSize},
		BackCache:              &cacheStats{Hits: bcHits, Misses: bcMisses, Size: bcSize},
		ResultCache:            &cacheStats{Hits: rcHits, Misses: rcMisses, Size: rcSize},
		ResultStore:            storeSection,
		CacheSkipNonFlat:       skipNonFlat,
		CacheSkipRace:          skipRace,
		CacheSkipCoverMismatch: skipCover,
		CampaignCases:          cases,
		CampaignLaunches:       launches,
		CasesPerSec:            casesPerSec,
		Fuzz:                   fuzz,
		Benchmarks:             bm,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(1)
	}

	if *baselinePath != "" {
		compare(*baselinePath, bm)
	}
}

func benchFigure(b *testing.B, fig int) {
	for i := 0; i < b.N; i++ {
		for _, e := range exhibits.All() {
			if e.Figure != fig {
				continue
			}
			if err := exhibits.Verify(e); err != nil {
				b.Fatalf("exhibit %s: %v", e.ID, err)
			}
		}
	}
}

func compare(path string, now map[string]metrics) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "baseline:", err)
		os.Exit(1)
	}
	var base snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "baseline:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "\nvs %s:\n", path)
	for name, cur := range now {
		old, ok := base.Benchmarks[name]
		if !ok || cur.NsPerOp == 0 || cur.AllocsPerOp == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "%-28s %6.2fx ns/op  %6.2fx allocs/op\n",
			name,
			float64(old.NsPerOp)/float64(cur.NsPerOp),
			float64(old.AllocsPerOp)/float64(cur.AllocsPerOp))
	}
}
