// Clrun compiles and executes a kernel file on one simulated OpenCL
// configuration (Table 1), at either optimization level, printing the
// outcome and the result values — the per-test step of the paper's
// campaigns.
//
// Usage:
//
//	clrun -config 12 -noopt -nd 64x1x1/16x1x1 kernel.cl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clrun: ")
	cfgID := flag.Int("config", 0, "Table 1 configuration id (0 = defect-free reference)")
	noopt := flag.Bool("noopt", false, "disable optimizations (-cl-opt-disable)")
	ndFlag := flag.String("nd", "16x1x1/16x1x1", "NDRange as GXxGYxGZ/LXxLYxLZ")
	races := flag.Bool("races", false, "enable the data race and barrier divergence checker")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"work-group fan-out budget (1 = fully serial executor; results are identical either way)")
	engineFlag := flag.String("engine", "auto",
		"evaluation engine: vm (register bytecode), tree (reference walker), or auto")
	cacheStats := flag.Bool("cachestats", false,
		"print compile-cache hit/miss counters (front-end parses, shared back-end kernels, bytecode lowering) and engine counters after the run")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: clrun [flags] kernel.cl")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	nd, err := parseND(*ndFlag)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := exec.ParseEngine(*engineFlag)
	if err != nil {
		log.Fatal(err)
	}
	cfg := device.Reference()
	if *cfgID != 0 {
		cfg = device.ByID(*cfgID)
		if cfg == nil {
			log.Fatalf("unknown configuration %d", *cfgID)
		}
	}
	c, err := harness.AutoCase(flag.Arg(0), string(src), nd)
	if err != nil {
		log.Fatal(err)
	}
	printCacheStats := func() {
		if !*cacheStats {
			return
		}
		fh, fm, fs := device.DefaultFrontCache.Stats()
		bh, bm, bs := device.DefaultBackCache.Stats()
		lo, lf := device.LowerStats()
		vmRuns, treeRuns, instrs := exec.EngineCounters()
		fmt.Fprintf(os.Stderr, "front cache: %d hits, %d misses, %d entries\n", fh, fm, fs)
		fmt.Fprintf(os.Stderr, "back cache:  %d hits, %d misses, %d entries\n", bh, bm, bs)
		fmt.Fprintf(os.Stderr, "lowering:    %d programs lowered, %d tree fallbacks\n", lo, lf)
		fmt.Fprintf(os.Stderr, "engine:      %d vm launches (%d instructions), %d tree launches\n", vmRuns, instrs, treeRuns)
	}
	cr := cfg.Compile(c.Src, !*noopt)
	if cr.Outcome != device.OK {
		fmt.Printf("outcome: %s\n%s\n", cr.Outcome, cr.Msg)
		printCacheStats()
		os.Exit(1)
	}
	defer printCacheStats()
	args, result := c.Buffers()
	rr := cr.Kernel.Run(nd, args, result, device.RunOptions{CheckRaces: *races, Workers: *workers, Engine: engine})
	fmt.Printf("outcome: %s\n", rr.Outcome)
	if rr.Msg != "" {
		fmt.Println(rr.Msg)
	}
	if rr.Outcome == device.OK {
		strs := make([]string, len(rr.Output))
		for i, v := range rr.Output {
			strs[i] = fmt.Sprintf("%#x", v)
		}
		fmt.Println(strings.Join(strs, ","))
	}
}

func parseND(s string) (exec.NDRange, error) {
	var nd exec.NDRange
	if _, err := fmt.Sscanf(s, "%dx%dx%d/%dx%dx%d",
		&nd.Global[0], &nd.Global[1], &nd.Global[2],
		&nd.Local[0], &nd.Local[1], &nd.Local[2]); err != nil {
		return nd, fmt.Errorf("bad -nd %q: %v", s, err)
	}
	return nd, nd.Validate()
}
