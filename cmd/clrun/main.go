// Clrun compiles and executes a kernel file on one simulated OpenCL
// configuration (Table 1), at either optimization level, printing the
// outcome and the result values — the per-test step of the paper's
// campaigns.
//
// Usage:
//
//	clrun -config 12 -noopt -nd 64x1x1/16x1x1 kernel.cl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"clfuzz/internal/campaign"
	"clfuzz/internal/code"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clrun: ")
	cfgID := flag.Int("config", 0, "Table 1 configuration id (0 = defect-free reference)")
	noopt := flag.Bool("noopt", false, "disable optimizations (-cl-opt-disable)")
	ndFlag := flag.String("nd", "16x1x1/16x1x1", "NDRange as GXxGYxGZ/LXxLYxLZ")
	races := flag.Bool("races", false, "enable the data race and barrier divergence checker")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"work-group fan-out budget (1 = fully serial executor; results are identical either way)")
	engineFlag := flag.String("engine", "auto",
		"evaluation engine: vm (register bytecode), tree (reference walker), or auto")
	fuelFlag := flag.String("fuel", "auto",
		"fuel model: v1 (per-instruction, tree-exact), v2 (per-superinstruction on the fused VM program), or auto (CLFUZZ_FUEL or v1)")
	dispatchFlag := flag.String("dispatch", "auto",
		"VM dispatch mode: switch, threaded (pre-resolved handler closures), or auto (CLFUZZ_DISPATCH or switch); outputs are byte-identical either way")
	storeDir := flag.String("store", "",
		"disk-backed result store directory shared across processes (default $CLFUZZ_STORE; empty disables)")
	cacheStats := flag.Bool("cachestats", false,
		"print compile-cache hit/miss counters (front-end parses, shared back-end kernels, bytecode lowering) and engine counters after the run")
	cover := flag.Bool("cover", false,
		"collect VM edge coverage and defect-site counters for the run and print them (outcome and outputs are unaffected; requires the vm engine path)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: clrun [flags] kernel.cl")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	nd, err := parseND(*ndFlag)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := exec.ParseEngine(*engineFlag)
	if err != nil {
		log.Fatal(err)
	}
	fuel, err := exec.ParseFuelModel(*fuelFlag)
	if err != nil {
		log.Fatal(err)
	}
	if fuel != exec.FuelAuto {
		device.DefaultFuelModel = fuel
	}
	dispatch, err := exec.ParseDispatch(*dispatchFlag)
	if err != nil {
		log.Fatal(err)
	}
	if dispatch != exec.DispatchAuto {
		device.DefaultDispatch = dispatch
	}
	if _, err := campaign.EnableStore(*storeDir); err != nil {
		log.Fatal(err)
	}
	cfg := device.Reference()
	if *cfgID != 0 {
		cfg = device.ByID(*cfgID)
		if cfg == nil {
			log.Fatalf("unknown configuration %d", *cfgID)
		}
	}
	c, err := harness.AutoCase(flag.Arg(0), string(src), nd)
	if err != nil {
		log.Fatal(err)
	}
	printCacheStats := func() {
		if !*cacheStats {
			return
		}
		fh, fm, fs := device.DefaultFrontCache.Stats()
		bh, bm, bs := device.DefaultBackCache.Stats()
		rh, rm, rs := campaign.Default.Results.Stats()
		cases, launches := campaign.Default.Counters()
		lo, lf := device.LowerStats()
		vmRuns, treeRuns, instrs := exec.EngineCounters()
		fp, fb, fa := code.FuseStats()
		v1Runs, v1Instrs, v2Runs, v2Instrs := exec.FuelCounters()
		fmt.Fprintf(os.Stderr, "front cache:  %d hits, %d misses, %d entries\n", fh, fm, fs)
		fmt.Fprintf(os.Stderr, "back cache:   %d hits, %d misses, %d entries\n", bh, bm, bs)
		fmt.Fprintf(os.Stderr, "result cache: %d hits, %d misses, %d entries\n", rh, rm, rs)
		skipNonFlat, skipRace, skipCover := campaign.Default.CacheSkips()
		fmt.Fprintf(os.Stderr, "cache skips:  %d non-flat buffers, %d race-checked, %d coverage mismatches\n",
			skipNonFlat, skipRace, skipCover)
		if disk := campaign.Default.Results.Disk(); disk != nil {
			dh, dm := campaign.Default.Results.DiskStats()
			st := disk.Stats()
			fmt.Fprintf(os.Stderr, "disk store:   %d hits, %d misses (%d corrupt), %d writes (%d failed) at %s\n",
				dh, dm, st.Corrupt, st.Writes, st.WriteErrs, disk.Dir())
		}
		fmt.Fprintf(os.Stderr, "campaign:     %d cases, %d launches executed\n", cases, launches)
		fmt.Fprintf(os.Stderr, "lowering:     %d programs lowered, %d tree fallbacks\n", lo, lf)
		fmt.Fprintf(os.Stderr, "engine:       %d vm launches (%d instructions), %d tree launches\n", vmRuns, instrs, treeRuns)
		swRuns, thRuns := exec.DispatchCounters()
		fmt.Fprintf(os.Stderr, "dispatch:     %d switch launches, %d threaded launches\n", swRuns, thRuns)
		fmt.Fprintf(os.Stderr, "fusion:       %d programs fused, %d instructions -> %d\n", fp, fb, fa)
		fmt.Fprintf(os.Stderr, "fuel:         v1 %d launches (%d instructions), v2 %d launches (%d superinstructions)\n",
			v1Runs, v1Instrs, v2Runs, v2Instrs)
	}
	var cov *exec.CoverMap
	if *cover {
		cov = new(exec.CoverMap)
	}
	printCover := func() {
		if cov == nil {
			return
		}
		sites := cov.SiteHits()
		fmt.Fprintf(os.Stderr, "coverage:     %d distinct VM edges\n", cov.Count())
		fmt.Fprintf(os.Stderr, "defect sites: deref-store=%d arrow-store=%d dead-loop=%d\n",
			sites[exec.CoverSiteDerefStore], sites[exec.CoverSiteArrowStore], sites[exec.CoverSiteDeadLoop])
	}
	// The run goes through the shared campaign engine — the same
	// front/back compile caches and cross-base result cache the table
	// campaigns use, so -cachestats reports live counters.
	rr := campaign.Default.RunCase(cfg, !*noopt, c, campaign.LaunchOptions{
		CheckRaces: *races, Workers: *workers, Engine: engine, FuelModel: fuel, Dispatch: dispatch, Cover: cov,
	})
	if rr.Compile {
		fmt.Printf("outcome: %s\n%s\n", rr.Outcome, rr.Msg)
		printCacheStats()
		os.Exit(1)
	}
	defer printCacheStats()
	defer printCover()
	fmt.Printf("outcome: %s\n", rr.Outcome)
	if rr.Msg != "" {
		fmt.Println(rr.Msg)
	}
	if rr.Outcome == device.OK {
		strs := make([]string, len(rr.Output))
		for i, v := range rr.Output {
			strs[i] = fmt.Sprintf("%#x", v)
		}
		fmt.Println(strings.Join(strs, ","))
	}
}

func parseND(s string) (exec.NDRange, error) {
	var nd exec.NDRange
	if _, err := fmt.Sscanf(s, "%dx%dx%d/%dx%dx%d",
		&nd.Global[0], &nd.Global[1], &nd.Global[2],
		&nd.Local[0], &nd.Local[1], &nd.Local[2]); err != nil {
		return nd, fmt.Errorf("bad -nd %q: %v", s, err)
	}
	return nd, nd.Validate()
}
