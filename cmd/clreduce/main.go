// Clreduce shrinks a kernel while a target configuration keeps disagreeing
// with the defect-free reference — the concurrency-aware test-case reducer
// the paper calls for in §8. Every candidate is validated on the reference
// with the race and divergence checker, so reductions never introduce the
// undefined behaviours that plagued manual reduction (§2.4).
//
// Usage:
//
//	clreduce -config 19 -noopt -nd 1x1x1/1x1x1 kernel.cl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/harness"
	"clfuzz/internal/oracle"
	"clfuzz/internal/reduce"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clreduce: ")
	cfgID := flag.Int("config", 0, "configuration whose misbehaviour to preserve")
	noopt := flag.Bool("noopt", false, "test the configuration with optimizations disabled")
	ndFlag := flag.String("nd", "16x1x1/16x1x1", "NDRange as GXxGYxGZ/LXxLYxLZ")
	rounds := flag.Int("rounds", 8, "maximum reduction rounds")
	flag.Parse()
	if flag.NArg() != 1 || *cfgID == 0 {
		log.Fatal("usage: clreduce -config N [flags] kernel.cl")
	}
	cfg := device.ByID(*cfgID)
	if cfg == nil {
		log.Fatalf("unknown configuration %d", *cfgID)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	var nd exec.NDRange
	if _, err := fmt.Sscanf(*ndFlag, "%dx%dx%d/%dx%dx%d",
		&nd.Global[0], &nd.Global[1], &nd.Global[2],
		&nd.Local[0], &nd.Local[1], &nd.Local[2]); err != nil {
		log.Fatalf("bad -nd: %v", err)
	}
	ref := device.Reference()
	interesting := func(cand string) bool {
		c, err := harness.AutoCase("cand", cand, nd)
		if err != nil {
			return false
		}
		a := harness.RunOn(cfg, !*noopt, c, 0)
		b := harness.RunOn(ref, true, c, 0)
		return a.Outcome == device.OK && b.Outcome == device.OK && !oracle.Equal(a.Output, b.Output)
	}
	res, err := reduce.Reduce(string(srcBytes), reduce.Options{
		Interesting: interesting,
		ND:          nd,
		MaxRounds:   *rounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "reduced %d -> %d bytes (%d rounds, %d candidates, %d accepted)\n",
		len(srcBytes), len(res.Src), res.Rounds, res.Candidates, res.Accepted)
	fmt.Print(res.Src)
}
