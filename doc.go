// Package clfuzz is a from-scratch Go reproduction of "Many-Core Compiler
// Fuzzing" (Lidbury, Lascu, Chong, Donaldson; PLDI 2015): the CLsmith
// random kernel generator with its six modes, dead-by-construction EMI
// testing with the leaf/compound/lift pruning strategies, a majority-vote
// differential testing oracle, and a full testing campaign against 21
// simulated OpenCL configurations carrying the paper's documented bug
// classes.
//
// The public surface of the repository is its commands (cmd/clsmith,
// cmd/clrun, cmd/cldiff, cmd/clemi, cmd/cltables, cmd/clreduce), its
// examples (examples/quickstart, examples/bughunt, examples/emibenchmark)
// and the benchmark harness in bench_test.go, which regenerates every
// table and figure of the paper's evaluation. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package clfuzz
