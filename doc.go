// Package clfuzz is a from-scratch Go reproduction of "Many-Core Compiler
// Fuzzing" (Lidbury, Lascu, Chong, Donaldson; PLDI 2015): the CLsmith
// random kernel generator with its six modes, dead-by-construction EMI
// testing with the leaf/compound/lift pruning strategies, a majority-vote
// differential testing oracle, and a full testing campaign against 21
// simulated OpenCL configurations carrying the paper's documented bug
// classes.
//
// The public surface of the repository is its commands (cmd/clsmith,
// cmd/clrun, cmd/cldiff, cmd/clemi, cmd/cltables, cmd/clreduce,
// cmd/clbench), its examples (examples/quickstart, examples/bughunt,
// examples/emibenchmark) and the benchmark harness in bench_test.go,
// which regenerates every table and figure of the paper's evaluation.
// README.md documents the commands; ARCHITECTURE.md walks the pipeline.
//
// The implementation lives under internal/, one package per pipeline
// stage, each with its own package documentation (go doc
// clfuzz/internal/<name>):
//
//   - lexer, parser, ast: OpenCL C subset front end and tree
//   - cltypes: the type system and wrapping integer semantics
//   - sema: type checking and the program feature summary
//   - opt: the simulated optimizer passes
//   - bugs: the injected compiler-defect model (§6, Figures 1-2)
//   - device: the 21 Table 1 configurations and the compile-once cache
//   - exec: the NDRange interpreter (flat scalar buffers, sequential
//     fast path, parallel work-groups, race checker)
//   - generator: CLsmith (§4)
//   - emi: EMI injection and pruning (§5)
//   - oracle: the majority-vote oracle (§3.2)
//   - benchmarks: the Parboil/Rodinia integer ports (Table 2)
//   - harness: the Table 1/3/4/5 campaign runners and renderers (§7)
//   - exhibits: the Figure 1/2 bug kernels
//   - reduce: the concurrency-aware test-case reducer (§8)
package clfuzz
