// Package reduce implements an automatic test-case reducer for OpenCL
// kernels, the tool the paper identifies as missing for the many-core
// setting (§8: "A reducer for OpenCL would require a concurrency-aware
// static analysis to avoid introducing data races").
//
// The reducer is a delta debugger over the statement structure of a
// kernel: it repeatedly removes statements, simplifies expressions to
// literals and drops functions while an interestingness predicate (e.g.
// "configuration 9+ still disagrees with the reference") keeps holding.
// Concurrency-awareness comes from the executor rather than a static
// analysis: every candidate is re-validated on the reference
// configuration with the race and divergence checker enabled, so a
// reduction step that introduces a data race or barrier divergence — the
// failure mode the paper warns about — is rejected.
//
// Reduce is the entry point; Options carries the launch geometry, the
// interestingness predicate and the step budget. cmd/clreduce wraps it
// for the command line.
package reduce
