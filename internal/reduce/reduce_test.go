package reduce_test

import (
	"strings"
	"testing"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
	"clfuzz/internal/harness"
	"clfuzz/internal/oracle"
	"clfuzz/internal/reduce"
)

// TestReduceCommaBug reduces a kernel containing unrelated computation
// plus the Figure 2(f) comma pattern, chasing the Oclgrind wrong-code
// result; the reduced kernel must still reproduce the bug and be smaller.
func TestReduceCommaBug(t *testing.T) {
	src := `
kernel void entry(global ulong *result) {
    int a = 5;
    int b = 7;
    int c = safe_add(a, b);
    c = safe_mul(c, 3);
    a = safe_sub(c, b);
    short x = 1;
    uint y;
    for (y = 4294967295u; y >= 1u; ++y) {
        if ((x , 1)) { break; }
    }
    b = safe_add(b, a);
    result[get_linear_global_id()] = (ulong)y;
}
`
	nd := exec.NDRange{Global: [3]int{1, 1, 1}, Local: [3]int{1, 1, 1}}
	oclgrind := device.ByID(19)
	ref := device.Reference()
	// Differential predicate: Oclgrind disagrees with the reference — the
	// robust form of interestingness (a predicate like "output != K" would
	// let the reducer wander to a different program that trivially
	// satisfies it).
	interesting := func(cand string) bool {
		run := func(cfg *device.Config) ([]uint64, bool) {
			cr := cfg.Compile(cand, false)
			if cr.Outcome != device.OK {
				return nil, false
			}
			args, result := buffersFor(nd)
			rr := cr.Kernel.Run(nd, args, result, device.RunOptions{})
			return rr.Output, rr.Outcome == device.OK
		}
		a, okA := run(oclgrind)
		b, okB := run(ref)
		return okA && okB && !oracle.Equal(a, b)
	}
	res, err := reduce.Reduce(src, reduce.Options{
		Interesting: interesting,
		ND:          nd,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Src) >= len(src) {
		t.Errorf("reduction did not shrink the kernel (%d -> %d bytes)", len(src), len(res.Src))
	}
	if !interesting(res.Src) {
		t.Error("reduced kernel no longer reproduces the bug")
	}
	if !strings.Contains(res.Src, ",") {
		t.Error("reduction removed the comma operator the bug needs")
	}
	if res.Accepted == 0 {
		t.Error("no reduction step was accepted")
	}
}

// TestReduceGeneratedWrongCode reduces a CLsmith-generated kernel that a
// buggy configuration miscompiles, with the differential verdict as the
// interestingness predicate — the end-to-end bug-hunting pipeline of the
// paper, plus the reducer of §8.
func TestReduceGeneratedWrongCode(t *testing.T) {
	if testing.Short() {
		t.Skip("reduction campaign")
	}
	ref := device.Reference()
	amd := device.ByID(16) // AMD CPU: deterministic char-first struct defect
	// Find a generated kernel the AMD configuration miscompiles.
	var found *generator.Kernel
	for seed := int64(0); seed < 150 && found == nil; seed++ {
		k := generator.Generate(generator.Options{Mode: generator.ModeBasic, Seed: 40000 + seed, MaxTotalThreads: 16})
		c := harness.CaseFromKernel(k, "hunt")
		rRef := harness.RunOn(ref, true, c, 0)
		rAmd := harness.RunOn(amd, true, c, 0)
		if rRef.Outcome == device.OK && rAmd.Outcome == device.OK && !oracle.Equal(rRef.Output, rAmd.Output) {
			found = k
		}
	}
	if found == nil {
		t.Skip("no miscompiled kernel in this seed window (rates are probabilistic)")
	}
	interesting := func(cand string) bool {
		c := harness.Case{Src: cand, ND: found.ND, Buffers: found.Buffers}
		rRef := harness.RunOn(ref, true, c, 0)
		rAmd := harness.RunOn(amd, true, c, 0)
		return rRef.Outcome == device.OK && rAmd.Outcome == device.OK && !oracle.Equal(rRef.Output, rAmd.Output)
	}
	res, err := reduce.Reduce(found.Src, reduce.Options{
		Interesting: interesting,
		ND:          found.ND,
		MakeArgs:    found.Buffers,
		MaxRounds:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Src) >= len(found.Src) {
		t.Errorf("no shrink: %d -> %d bytes", len(found.Src), len(res.Src))
	}
	t.Logf("reduced %d -> %d bytes in %d rounds (%d candidates, %d accepted)",
		len(found.Src), len(res.Src), res.Rounds, res.Candidates, res.Accepted)
}

func buffersFor(nd exec.NDRange) (exec.Args, *exec.Buffer) {
	out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
	return exec.Args{"result": {Buf: out}}, out
}
