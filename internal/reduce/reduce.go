package reduce

import (
	"fmt"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/parser"
)

// Options configures a reduction.
type Options struct {
	// Interesting reports whether a candidate kernel source still
	// reproduces the behaviour being chased. It must be deterministic.
	Interesting func(src string) bool
	// ND and MakeArgs describe how to launch candidates for validity
	// checking on the reference configuration.
	ND       exec.NDRange
	MakeArgs func() (exec.Args, *exec.Buffer)
	// MaxRounds bounds fixpoint iterations (default 8).
	MaxRounds int
	// BaseFuel for validity runs (device.DefaultFuel when 0).
	BaseFuel int64
}

// Result reports a reduction.
type Result struct {
	Src        string
	Rounds     int
	Candidates int // candidate variants tried
	Accepted   int // candidates that stayed interesting and valid
}

// Reduce shrinks src while opts.Interesting holds and the candidate stays
// a well-defined deterministic kernel.
func Reduce(src string, opts Options) (*Result, error) {
	if opts.Interesting == nil {
		return nil, fmt.Errorf("reduce: Interesting predicate is required")
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 8
	}
	if !opts.Interesting(src) {
		return nil, fmt.Errorf("reduce: initial test case is not interesting")
	}
	// Normalize to the printer's canonical form so size comparisons
	// between the current best and printed candidates are meaningful.
	if prog, err := parser.Parse(src); err == nil {
		canon := ast.Print(prog)
		if opts.Interesting(canon) {
			src = canon
		}
	}
	r := &Result{Src: src}
	for round := 0; round < opts.MaxRounds; round++ {
		r.Rounds = round + 1
		improved := false
		prog, err := parser.Parse(r.Src)
		if err != nil {
			return nil, fmt.Errorf("reduce: current source does not parse: %v", err)
		}
		// Pass 1: try dropping whole non-kernel functions (with their
		// call sites replaced by nothing — only functions never called).
		for _, cand := range dropFunctionCandidates(prog) {
			if r.try(cand, opts) {
				improved = true
			}
		}
		// Pass 2: statement deletion, coarse to fine.
		prog, _ = parser.Parse(r.Src)
		for _, cand := range dropStatementCandidates(prog) {
			if r.try(cand, opts) {
				improved = true
			}
		}
		// Pass 3: expression simplification (replace subtrees by 0/1).
		prog, _ = parser.Parse(r.Src)
		for _, cand := range simplifyExprCandidates(prog) {
			if r.try(cand, opts) {
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return r, nil
}

// try validates and tests one candidate; on success it becomes the current
// best and try reports true.
func (r *Result) try(cand *ast.Program, opts Options) bool {
	r.Candidates++
	src := ast.Print(cand)
	if len(src) >= len(r.Src) {
		return false
	}
	if !valid(src, opts) {
		return false
	}
	if !opts.Interesting(src) {
		return false
	}
	r.Src = src
	r.Accepted++
	return true
}

// valid checks the candidate on the reference configuration with the
// undefined-behaviour checker on: it must build and run cleanly (no race,
// no divergence, no crash) at both optimization levels with equal results.
// This is the concurrency-aware validity check of §8.
func valid(src string, opts Options) bool {
	ref := device.Reference()
	var first []uint64
	for _, optimize := range []bool{false, true} {
		cr := ref.Compile(src, optimize)
		if cr.Outcome != device.OK {
			return false
		}
		var args exec.Args
		var result *exec.Buffer
		if opts.MakeArgs != nil {
			args, result = opts.MakeArgs()
		} else {
			result = exec.NewBuffer(cltypes.TULong, opts.ND.GlobalLinear())
			args = exec.Args{"result": {Buf: result}}
		}
		rr := cr.Kernel.Run(opts.ND, args, result, device.RunOptions{
			BaseFuel: opts.BaseFuel, CheckRaces: true,
		})
		if rr.Outcome != device.OK {
			return false
		}
		if first == nil {
			first = rr.Output
		} else if !equalU64(first, rr.Output) {
			return false
		}
	}
	return true
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dropFunctionCandidates yields one candidate per droppable function: the
// program without that function definition (and without its forward
// declaration), provided nothing calls it.
func dropFunctionCandidates(prog *ast.Program) []*ast.Program {
	var out []*ast.Program
	for _, f := range prog.Funcs {
		if f.IsKernel || f.Body == nil {
			continue
		}
		if functionCalled(prog, f.Name) {
			continue
		}
		cp := ast.CloneProgram(prog)
		var kept []*ast.FuncDecl
		for _, g := range cp.Funcs {
			if g.Name != f.Name {
				kept = append(kept, g)
			}
		}
		cp.Funcs = kept
		out = append(out, cp)
	}
	return out
}

func functionCalled(prog *ast.Program, name string) bool {
	called := false
	for _, f := range prog.Funcs {
		if f.Body == nil || f.Name == name {
			continue
		}
		walkBlockExprs(f.Body, func(e ast.Expr) {
			if c, ok := e.(*ast.Call); ok && c.Name == name {
				called = true
			}
		})
	}
	return called
}

// dropStatementCandidates yields candidates with one statement (or one
// contiguous chunk) removed from some block of some function. Statements
// are addressed positionally over a fresh clone per candidate.
func dropStatementCandidates(prog *ast.Program) []*ast.Program {
	var out []*ast.Program
	// Address blocks by (function index, path); enumerate on the original,
	// then re-resolve on a clone.
	type target struct {
		fn    int
		path  []int // child block path, see blockAt
		idx   int
		count int
	}
	var targets []target
	for fi, f := range prog.Funcs {
		if f.Body == nil {
			continue
		}
		enumerateBlocks(f.Body, nil, func(path []int, b *ast.Block) {
			n := len(b.Stmts)
			// Halves first (delta debugging), then single statements.
			if n >= 4 {
				targets = append(targets, target{fi, append([]int(nil), path...), 0, n / 2})
				targets = append(targets, target{fi, append([]int(nil), path...), n / 2, n - n/2})
			}
			for i := 0; i < n; i++ {
				targets = append(targets, target{fi, append([]int(nil), path...), i, 1})
			}
		})
	}
	for _, tg := range targets {
		cp := ast.CloneProgram(prog)
		b := blockAt(cp.Funcs[tg.fn].Body, tg.path)
		if b == nil || tg.idx+tg.count > len(b.Stmts) {
			continue
		}
		b.Stmts = append(b.Stmts[:tg.idx], b.Stmts[tg.idx+tg.count:]...)
		out = append(out, cp)
	}
	return out
}

// enumerateBlocks visits every block in a body with a structural path.
func enumerateBlocks(b *ast.Block, path []int, fn func(path []int, b *ast.Block)) {
	fn(path, b)
	for i, s := range b.Stmts {
		childPath := append(append([]int(nil), path...), i)
		switch st := s.(type) {
		case *ast.Block:
			enumerateBlocks(st, childPath, fn)
		case *ast.If:
			enumerateBlocks(st.Then, append(childPath, 0), fn)
			if eb, ok := st.Else.(*ast.Block); ok {
				enumerateBlocks(eb, append(childPath, 1), fn)
			}
		case *ast.For:
			enumerateBlocks(st.Body, append(childPath, 0), fn)
		case *ast.While:
			enumerateBlocks(st.Body, append(childPath, 0), fn)
		case *ast.DoWhile:
			enumerateBlocks(st.Body, append(childPath, 0), fn)
		}
	}
}

// blockAt resolves a structural path produced by enumerateBlocks.
func blockAt(b *ast.Block, path []int) *ast.Block {
	if len(path) == 0 {
		return b
	}
	if path[0] >= len(b.Stmts) {
		return nil
	}
	s := b.Stmts[path[0]]
	rest := path[1:]
	switch st := s.(type) {
	case *ast.Block:
		return blockAt(st, rest)
	case *ast.If:
		if len(rest) == 0 {
			return nil
		}
		if rest[0] == 0 {
			return blockAt(st.Then, rest[1:])
		}
		if eb, ok := st.Else.(*ast.Block); ok {
			return blockAt(eb, rest[1:])
		}
		return nil
	case *ast.For:
		if len(rest) == 0 || rest[0] != 0 {
			return nil
		}
		return blockAt(st.Body, rest[1:])
	case *ast.While:
		if len(rest) == 0 || rest[0] != 0 {
			return nil
		}
		return blockAt(st.Body, rest[1:])
	case *ast.DoWhile:
		if len(rest) == 0 || rest[0] != 0 {
			return nil
		}
		return blockAt(st.Body, rest[1:])
	}
	return nil
}

// simplifyExprCandidates yields candidates where one interesting
// expression site (an if condition or an assignment right-hand side) is
// replaced by a literal.
func simplifyExprCandidates(prog *ast.Program) []*ast.Program {
	// Count the sites on the original, then produce one clone per site.
	count := 0
	for _, f := range prog.Funcs {
		if f.Body != nil {
			walkBlockStmts(f.Body, func(s ast.Stmt) { count += sitesIn(s) })
		}
	}
	var out []*ast.Program
	for site := 0; site < count && site < 64; site++ {
		cp := ast.CloneProgram(prog)
		idx := 0
		for _, f := range cp.Funcs {
			if f.Body == nil {
				continue
			}
			walkBlockStmts(f.Body, func(s ast.Stmt) {
				idx += replaceSite(s, site, idx)
			})
		}
		out = append(out, cp)
	}
	return out
}

func sitesIn(s ast.Stmt) int {
	switch st := s.(type) {
	case *ast.If:
		return 1
	case *ast.ExprStmt:
		if _, ok := st.X.(*ast.AssignExpr); ok {
			return 1
		}
	}
	return 0
}

// replaceSite replaces the expression at global index `site` with a zero
// literal if this statement owns it; it returns the number of sites this
// statement contributes (so the caller can advance the index).
func replaceSite(s ast.Stmt, site, at int) int {
	switch st := s.(type) {
	case *ast.If:
		if at == site {
			st.Cond = ast.NewIntLit(0, cltypes.TInt)
		}
		return 1
	case *ast.ExprStmt:
		if asn, ok := st.X.(*ast.AssignExpr); ok {
			if at == site {
				if t, ok := asn.LHS.Type().(*cltypes.Scalar); ok {
					asn.RHS = ast.NewIntLit(0, t)
					asn.Op = ast.Assign
				}
			}
			return 1
		}
	}
	return 0
}

func walkBlockStmts(b *ast.Block, fn func(ast.Stmt)) {
	for _, s := range b.Stmts {
		fn(s)
		switch st := s.(type) {
		case *ast.Block:
			walkBlockStmts(st, fn)
		case *ast.If:
			walkBlockStmts(st.Then, fn)
			if eb, ok := st.Else.(*ast.Block); ok {
				walkBlockStmts(eb, fn)
			}
		case *ast.For:
			walkBlockStmts(st.Body, fn)
		case *ast.While:
			walkBlockStmts(st.Body, fn)
		case *ast.DoWhile:
			walkBlockStmts(st.Body, fn)
		}
	}
}

// walkBlockExprs visits every expression in a block.
func walkBlockExprs(b *ast.Block, fn func(ast.Expr)) {
	var walkE func(ast.Expr)
	walkE = func(e ast.Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch ex := e.(type) {
		case *ast.Unary:
			walkE(ex.X)
		case *ast.Binary:
			walkE(ex.L)
			walkE(ex.R)
		case *ast.AssignExpr:
			walkE(ex.LHS)
			walkE(ex.RHS)
		case *ast.Cond:
			walkE(ex.C)
			walkE(ex.T)
			walkE(ex.F)
		case *ast.Call:
			for _, a := range ex.Args {
				walkE(a)
			}
		case *ast.Index:
			walkE(ex.Base)
			walkE(ex.Idx)
		case *ast.Member:
			walkE(ex.Base)
		case *ast.Swizzle:
			walkE(ex.Base)
		case *ast.VecLit:
			for _, el := range ex.Elems {
				walkE(el)
			}
		case *ast.Cast:
			walkE(ex.X)
		case *ast.InitList:
			for _, el := range ex.Elems {
				walkE(el)
			}
		}
	}
	walkBlockStmts(b, func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.DeclStmt:
			walkE(st.Decl.Init)
		case *ast.ExprStmt:
			walkE(st.X)
		case *ast.If:
			walkE(st.Cond)
		case *ast.For:
			walkE(st.Cond)
			walkE(st.Post)
		case *ast.While:
			walkE(st.Cond)
		case *ast.DoWhile:
			walkE(st.Cond)
		case *ast.Return:
			walkE(st.X)
		}
	})
}
