package fault

import (
	"path/filepath"
	"testing"
)

func TestParse(t *testing.T) {
	tests := []struct {
		spec string
		want Plan
		bad  bool
	}{
		{spec: "", want: Plan{Shard: -1}},
		{spec: "crash", want: Plan{Mode: Crash, Shard: -1, Code: 3}},
		{spec: "hang", want: Plan{Mode: Hang, Shard: -1, Code: 3}},
		{spec: "exit;code=7", want: Plan{Mode: Exit, Shard: -1, Code: 7}},
		{spec: "crash;after=2;shard=1", want: Plan{Mode: Crash, After: 2, Shard: 1, Code: 3}},
		{spec: "crash; after=2 ; shard=0", want: Plan{Mode: Crash, After: 2, Shard: 0, Code: 3}},
		{spec: "crash;once=/tmp/latch", want: Plan{Mode: Crash, Shard: -1, Once: "/tmp/latch", Code: 3}},
		{spec: "explode", bad: true},
		{spec: "crash;after=x", bad: true},
		{spec: "crash;after=-1", bad: true},
		{spec: "crash;shard=-2", bad: true},
		{spec: "exit;code=0", bad: true},
		{spec: "crash;once=", bad: true},
		{spec: "crash;bogus=1", bad: true},
		{spec: "crash;after", bad: true},
	}
	for _, tt := range tests {
		got, err := Parse(tt.spec)
		if tt.bad {
			if err == nil {
				t.Errorf("Parse(%q): want error, got %+v", tt.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.spec, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tt.spec, got, tt.want)
		}
	}
}

func TestPointScoping(t *testing.T) {
	p := Plan{Mode: Crash, After: 2, Shard: 1}
	if p.Point(0, 5) {
		t.Error("fired on wrong shard")
	}
	if p.Point(1, 1) {
		t.Error("fired before the after threshold")
	}
	if !p.Point(1, 2) {
		t.Error("did not fire at the threshold on the scoped shard")
	}
	any := Plan{Mode: Hang, Shard: -1}
	if !any.Point(7, 0) {
		t.Error("unscoped plan did not fire")
	}
	none := Plan{Shard: -1}
	if none.Point(0, 0) {
		t.Error("inactive plan fired")
	}
}

func TestOnceLatch(t *testing.T) {
	latch := filepath.Join(t.TempDir(), "latch")
	p := Plan{Mode: Exit, Shard: -1, Once: latch, Code: 3}
	if !p.Point(0, 0) {
		t.Fatal("first Point did not fire")
	}
	if p.Point(0, 0) {
		t.Fatal("second Point fired despite the latch")
	}
}
