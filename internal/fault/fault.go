// Package fault is the deterministic fault-injection knob behind the
// CLFUZZ_FAULT environment variable: worker processes parse it at
// startup and arrange to crash, hang or exit nonzero at a precise point
// in their case stream, so the fleet supervisor's retry, timeout and
// quarantine paths can be exercised reproducibly in tests and CI
// without OS-level process roulette.
package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// EnvVar names the environment variable FromEnv reads.
const EnvVar = "CLFUZZ_FAULT"

// Mode is the kind of failure a Plan injects.
type Mode int

// Modes.
const (
	// None injects nothing (the zero Plan).
	None Mode = iota
	// Crash panics at the fault point — the in-process evaluator-panic
	// path (contained by exec.Run's recovery) when reached through the
	// executor hook, or an uncontained process abort when reached through
	// the worker's case hook.
	Crash
	// Hang blocks forever at the fault point, exercising the
	// supervisor's shard wall-clock timeout.
	Hang
	// Exit terminates the process with a nonzero status at the fault
	// point.
	Exit
)

func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case Exit:
		return "exit"
	}
	return "?"
}

// Plan is a parsed fault specification.
type Plan struct {
	Mode Mode
	// After is the number of completed cases before the fault fires
	// (fire on completion of case After+1's predecessor boundary; 0
	// fires at the first opportunity).
	After int
	// Shard scopes the fault to one shard index; -1 applies everywhere.
	Shard int
	// Once is a latch file path: the fault fires only if the file does
	// not yet exist, creating it as it fires. Retries of the same shard
	// therefore succeed — the shape the supervisor's happy retry path
	// needs.
	Once string
	// Code is the exit status for Exit mode (default 3).
	Code int
}

// Parse parses a fault specification. The grammar is semicolon-
// separated tokens: the first is the mode (crash, hang, exit), the rest
// key=value options — after=K (completed-case threshold), shard=N
// (scope to shard N), once=PATH (fire-once latch file), code=N (exit
// status). An empty spec yields the zero Plan (no fault).
//
//	CLFUZZ_FAULT="crash;after=2;shard=1;once=/tmp/latch"
func Parse(spec string) (Plan, error) {
	p := Plan{Shard: -1, Code: 3}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Plan{Shard: -1}, nil
	}
	toks := strings.Split(spec, ";")
	switch strings.TrimSpace(toks[0]) {
	case "crash":
		p.Mode = Crash
	case "hang":
		p.Mode = Hang
	case "exit":
		p.Mode = Exit
	default:
		return Plan{}, fmt.Errorf("fault: unknown mode %q (want crash, hang or exit)", toks[0])
	}
	for _, tok := range toks[1:] {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: bad option %q (want key=value)", tok)
		}
		switch key {
		case "after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Plan{}, fmt.Errorf("fault: bad after=%q", val)
			}
			p.After = n
		case "shard":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Plan{}, fmt.Errorf("fault: bad shard=%q", val)
			}
			p.Shard = n
		case "once":
			if val == "" {
				return Plan{}, fmt.Errorf("fault: empty once= latch path")
			}
			p.Once = val
		case "code":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Plan{}, fmt.Errorf("fault: bad code=%q", val)
			}
			p.Code = n
		default:
			return Plan{}, fmt.Errorf("fault: unknown option %q", key)
		}
	}
	return p, nil
}

// FromEnv parses CLFUZZ_FAULT; the empty variable yields the zero Plan.
func FromEnv() (Plan, error) {
	return Parse(os.Getenv(EnvVar))
}

// Active reports whether the plan injects anything.
func (p Plan) Active() bool { return p.Mode != None }

// Point is the fault point: called by a worker with its shard index and
// completed-case count, it reports whether the fault fires here —
// claiming the once-latch as a side effect. The caller then executes the
// plan's mode (Fire does it for the process-level modes).
func (p *Plan) Point(shard, done int) bool {
	if p.Mode == None {
		return false
	}
	if p.Shard >= 0 && shard != p.Shard {
		return false
	}
	if done < p.After {
		return false
	}
	if p.Once != "" {
		// O_EXCL makes the latch claim atomic across racing workers.
		f, err := os.OpenFile(p.Once, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return false
		}
		f.Close()
	}
	return true
}

// Fire executes the plan's process-level failure mode. It does not
// return (Crash panics, Hang blocks forever, Exit exits).
func (p *Plan) Fire() {
	switch p.Mode {
	case Crash:
		panic(fmt.Sprintf("fault: injected crash (after=%d)", p.After))
	case Hang:
		select {}
	case Exit:
		fmt.Fprintf(os.Stderr, "fault: injected exit %d (after=%d)\n", p.Code, p.After)
		os.Exit(p.Code)
	}
	panic("fault: Fire on inactive plan")
}
