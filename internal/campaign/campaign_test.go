package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
)

// TestLaunchWorkersBudget pins the planner arithmetic: case-level times
// launch-level parallelism never exceeds the machine.
func TestLaunchWorkersBudget(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	for _, width := range []int{0, 1, 2, 3, max, max + 1, 10 * max} {
		lw := LaunchWorkers(width)
		if lw < 1 {
			t.Fatalf("LaunchWorkers(%d) = %d, want >= 1", width, lw)
		}
		w := width
		if w < 1 {
			w = 1
		}
		if w*lw > max && lw != 1 {
			t.Fatalf("LaunchWorkers(%d) = %d oversubscribes GOMAXPROCS %d", width, lw, max)
		}
	}
}

// TestStreamOrderedMerge: the pipeline's sink observes results strictly
// in index order regardless of worker scheduling, and exactly once each.
func TestStreamOrderedMerge(t *testing.T) {
	const n = 500
	var next int
	var calls atomic.Int64
	Stream(nil, n, func(i, launch int) int {
		if launch < 1 {
			t.Errorf("launch budget %d", launch)
		}
		calls.Add(1)
		return i * 3
	}, func(i int, r int) {
		if i != next {
			t.Fatalf("sink saw index %d, want %d", i, next)
		}
		if r != i*3 {
			t.Fatalf("sink saw %d for index %d", r, i)
		}
		next++
	})
	if next != n || calls.Load() != n {
		t.Fatalf("next=%d calls=%d, want %d", next, calls.Load(), n)
	}
}

// TestStreamCancellation: a cancelled stream stops dispatching new work
// and the sink still receives a contiguous, exactly-once prefix — the
// invariant the shard resume path depends on.
func TestStreamCancellation(t *testing.T) {
	const n = 200
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	var delivered []int
	Stream(ctx, n, func(i, _ int) int {
		if i == 10 {
			once.Do(cancel)
		}
		return i
	}, func(i, r int) {
		if i != r {
			t.Fatalf("sink saw %d for index %d", r, i)
		}
		delivered = append(delivered, i)
	})
	if len(delivered) == n {
		t.Fatal("cancellation did not stop dispatch")
	}
	for want, got := range delivered {
		if got != want {
			t.Fatalf("delivered prefix not contiguous: position %d holds %d", want, got)
		}
	}
	// A pre-cancelled context delivers nothing.
	done, doneCancel := context.WithCancel(context.Background())
	doneCancel()
	ran := false
	Stream(done, n, func(i, _ int) int { ran = true; return i }, func(int, int) { ran = true })
	if ran {
		t.Fatal("pre-cancelled stream still ran work")
	}
}

// TestGroupUnits pins representative/follower partitioning.
func TestGroupUnits(t *testing.T) {
	keys := []string{"a", "b", "a", "c", "b", "a"}
	reps, follower := GroupUnits(len(keys), func(i int) string { return keys[i] })
	if len(reps) != 3 || reps[0] != 0 || reps[1] != 1 || reps[2] != 3 {
		t.Fatalf("reps = %v", reps)
	}
	want := map[int]int{2: 0, 4: 1, 5: 0}
	if len(follower) != len(want) {
		t.Fatalf("follower = %v", follower)
	}
	for k, v := range want {
		if follower[k] != v {
			t.Fatalf("follower[%d] = %d, want %d", k, follower[k], v)
		}
	}
}

const testKernel = `
kernel void k(global ulong *out) {
    ulong acc = 7;
    for (int i = 0; i < 6; i++) { acc = acc * 47UL + 3UL; }
    out[get_linear_global_id()] = acc;
}
`

func testCase(name string) Case {
	nd := exec.NDRange{Global: [3]int{8, 1, 1}, Local: [3]int{4, 1, 1}}
	return Case{
		Name: name,
		Src:  testKernel,
		ND:   nd,
		Buffers: func() (exec.Args, *exec.Buffer) {
			out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
			return exec.Args{"out": {Buf: out}}, out
		},
	}
}

// TestResultCacheHitIsByteIdentical: a second identical RunCase is served
// from the cache with the same outcome and a detached, equal output.
func TestResultCacheHitIsByteIdentical(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cfg := device.Reference()
	c := testCase("hit")
	first := eng.RunCase(cfg, true, c, LaunchOptions{})
	if first.Cached {
		t.Fatal("first run reported a cache hit")
	}
	second := eng.RunCase(cfg, true, c, LaunchOptions{})
	if !second.Cached {
		t.Fatal("second run missed the result cache")
	}
	if first.Outcome != second.Outcome || len(first.Output) != len(second.Output) {
		t.Fatalf("cached result differs: %+v vs %+v", first, second)
	}
	for i := range first.Output {
		if first.Output[i] != second.Output[i] {
			t.Fatalf("out[%d] = %#x vs cached %#x", i, first.Output[i], second.Output[i])
		}
	}
	// Mutating the returned output must not corrupt the memo.
	second.Output[0] ^= 0xffff
	third := eng.RunCase(cfg, true, c, LaunchOptions{})
	if third.Output[0] != first.Output[0] {
		t.Fatal("cache entry was corrupted through a returned slice")
	}
	hits, misses, size := eng.Results.Stats()
	if hits != 2 || misses != 1 || size != 1 {
		t.Fatalf("stats hits=%d misses=%d size=%d", hits, misses, size)
	}
}

// TestResultCacheKeysOnArguments: same source, different argument
// contents must not share a result.
func TestResultCacheKeysOnArguments(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cfg := device.Reference()
	nd := exec.NDRange{Global: [3]int{4, 1, 1}, Local: [3]int{4, 1, 1}}
	src := `
kernel void k(global ulong *out, global int *in) {
    out[get_linear_global_id()] = (ulong)in[0];
}
`
	mk := func(v uint64) Case {
		return Case{Name: "args", Src: src, ND: nd, Buffers: func() (exec.Args, *exec.Buffer) {
			out := exec.NewBuffer(cltypes.TULong, 4)
			in := exec.NewBuffer(cltypes.TInt, 1)
			in.SetScalar(0, v)
			return exec.Args{"out": {Buf: out}, "in": {Buf: in}}, out
		}}
	}
	a := eng.RunCase(cfg, true, mk(7), LaunchOptions{})
	b := eng.RunCase(cfg, true, mk(9), LaunchOptions{})
	if a.Output[0] != 7 || b.Output[0] != 9 {
		t.Fatalf("outputs %#x / %#x, want 7 / 9", a.Output[0], b.Output[0])
	}
	if b.Cached {
		t.Fatal("different argument contents hit the same cache entry")
	}
}

// TestResultCacheKeysOnFuelModel: a result memoized under fuel/v1 must
// never be served to a fuel/v2 launch (or vice versa) — the models agree
// except at the Timeout frontier, so sharing entries would let one
// model's timeout verdict leak into the other's campaign. Equal outputs
// with distinct cache entries is the required shape.
func TestResultCacheKeysOnFuelModel(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cfg := device.Reference()
	c := testCase("fuel")
	v1 := eng.RunCase(cfg, true, c, LaunchOptions{FuelModel: exec.FuelV1})
	v2 := eng.RunCase(cfg, true, c, LaunchOptions{FuelModel: exec.FuelV2})
	if v2.Cached {
		t.Fatal("fuel/v2 launch was served a fuel/v1 cache entry")
	}
	if v1.Outcome != v2.Outcome || len(v1.Output) != len(v2.Output) {
		t.Fatalf("models disagree on a non-timeout case: %+v vs %+v", v1, v2)
	}
	for i := range v1.Output {
		if v1.Output[i] != v2.Output[i] {
			t.Fatalf("out[%d] = %#x (v1) vs %#x (v2)", i, v1.Output[i], v2.Output[i])
		}
	}
	if _, _, size := eng.Results.Stats(); size != 2 {
		t.Fatalf("expected two distinct cache entries, got %d", size)
	}
	// Each model hits its own entry on re-run.
	if r := eng.RunCase(cfg, true, c, LaunchOptions{FuelModel: exec.FuelV2}); !r.Cached {
		t.Fatal("fuel/v2 re-run missed its own cache entry")
	}
	if r := eng.RunCase(cfg, true, c, LaunchOptions{FuelModel: exec.FuelV1}); !r.Cached {
		t.Fatal("fuel/v1 re-run missed its own cache entry")
	}
}

// TestResultCacheSkipsCheckedRuns: race-checked launches bypass the memo
// (their diagnostics depend on the checker).
func TestResultCacheSkipsCheckedRuns(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cfg := device.Reference()
	c := testCase("races")
	eng.RunCase(cfg, true, c, LaunchOptions{CheckRaces: true})
	r := eng.RunCase(cfg, true, c, LaunchOptions{CheckRaces: true})
	if r.Cached {
		t.Fatal("race-checked run was served from the result cache")
	}
	if _, _, size := eng.Results.Stats(); size != 0 {
		t.Fatalf("race-checked run populated the cache (%d entries)", size)
	}
}

// TestRunMatrixDedupAndOrder: the matrix returns results in unit order,
// model-sharing units replicate the representative byte for byte, and
// only one launch per distinct model executes.
func TestRunMatrixDedupAndOrder(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cfgs := []*device.Config{device.ByID(1), device.ByID(2), device.ByID(3)} // share the NVIDIA models
	c := testCase("matrix")
	// Tune the source until no hash-gated defect fires on the shared
	// models, so every unit terminates OK with an output to compare.
	for i := 0; !cfgs[0].GatesClean(c.Src, true) || !cfgs[0].GatesClean(c.Src, false); i++ {
		// Tuning text must survive canonical re-printing (comments are
		// stripped), so perturb the hash with a program-scope declaration.
		c.Src = testKernel + fmt.Sprintf("constant int gate_tuning_%d = %d;\n", i, i)
	}
	var units []Unit
	for _, cfg := range cfgs {
		units = append(units, Unit{Cfg: cfg, Opt: false}, Unit{Cfg: cfg, Opt: true})
	}
	m := Matrix{
		Name:    c.Name,
		Sources: []string{c.Src},
		ND:      c.ND,
		Buffers: func(int) (exec.Args, *exec.Buffer) { return c.Buffers() },
		Units:   units,
	}
	rs := eng.RunMatrix(m, 1)
	if len(rs) != len(units) {
		t.Fatalf("%d results, want %d", len(rs), len(units))
	}
	for i, u := range units {
		if rs[i].Key != Key(u.Cfg, u.Opt) {
			t.Fatalf("result %d keyed %s, want %s", i, rs[i].Key, Key(u.Cfg, u.Opt))
		}
	}
	// Configs 1-3 share both defect models: representatives are unit 0
	// (noopt) and unit 1 (opt) only.
	_, launches := eng.Counters()
	if launches != 2 {
		t.Fatalf("%d launches executed, want 2 (model dedup)", launches)
	}
	for i := 2; i < len(rs); i += 2 {
		for j := range rs[0].Output {
			if rs[i].Output[j] != rs[0].Output[j] {
				t.Fatalf("follower %d output differs from representative", i)
			}
		}
	}
	// Follower outputs are detached copies.
	rs[2].Output[0] ^= 1
	if rs[0].Output[0] == rs[2].Output[0] {
		t.Fatal("follower output aliases the representative's")
	}
}

// TestCanceledLaunchNeverCached: a cancelled launch describes the
// cancellation, not the kernel — it must yield device.Canceled and must
// never populate the result cache.
func TestCanceledLaunchNeverCached(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cfg := device.Reference()
	c := testCase("cancel")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := eng.RunCase(cfg, true, c, LaunchOptions{Ctx: ctx})
	if r.Outcome != device.Canceled {
		t.Fatalf("outcome = %v, want Canceled", r.Outcome)
	}
	if _, _, size := eng.Results.Stats(); size != 0 {
		t.Fatalf("cancelled launch populated the result cache (%d entries)", size)
	}
	// The same case without the dead context must run fresh and succeed.
	r2 := eng.RunCase(cfg, true, c, LaunchOptions{})
	if r2.Outcome != device.OK || r2.Cached {
		t.Fatalf("fresh run after cancellation: %+v", r2)
	}
}

// TestResultCacheEviction: FIFO eviction keeps the cache bounded.
func TestResultCacheEviction(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(64), Results: NewResultCache(2)}
	cfg := device.Reference()
	for v := 0; v < 4; v++ {
		src := fmt.Sprintf(`
kernel void k(global ulong *out) { out[get_linear_global_id()] = %dUL; }
`, v)
		c := Case{Name: "ev", Src: src, ND: exec.NDRange{Global: [3]int{1, 1, 1}, Local: [3]int{1, 1, 1}},
			Buffers: func() (exec.Args, *exec.Buffer) {
				out := exec.NewBuffer(cltypes.TULong, 1)
				return exec.Args{"out": {Buf: out}}, out
			}}
		r := eng.RunCase(cfg, true, c, LaunchOptions{})
		if r.Outcome != device.OK || r.Output[0] != uint64(v) {
			t.Fatalf("v=%d: %+v", v, r)
		}
	}
	if _, _, size := eng.Results.Stats(); size != 2 {
		t.Fatalf("cache size %d, want 2 (FIFO bound)", size)
	}
}
