package campaign

import (
	"context"
	"runtime"
	"sync"
)

// LaunchWorkers returns the per-launch work-group fan-out budget for a
// pipeline stage that runs `width` launches concurrently: the machine's
// parallelism left over once case-level fan-out has claimed its workers.
// A saturated stage (width >= GOMAXPROCS) yields 1 — groups run serially
// — while a narrow stage (a single differential test, a small acceptance
// batch) hands the idle cores to the executor. Both levels multiply to
// at most GOMAXPROCS, so campaign-level and group-level parallelism
// never oversubscribe the machine.
func LaunchWorkers(width int) int {
	w := runtime.GOMAXPROCS(0)
	if width < 1 {
		width = 1
	}
	per := w / width
	if per < 1 {
		per = 1
	}
	return per
}

// stageWorkers returns the fan-out for a stage of n items nested under a
// caller already running `width` stages concurrently: the leftover
// parallelism, clamped to the item count (minimum 1).
func stageWorkers(width, n int) int {
	per := LaunchWorkers(width)
	if per > n {
		per = n
	}
	if per < 1 {
		per = 1
	}
	return per
}

// Stream is the campaign pipeline: it runs work(i) for i in 0..n-1
// across a bounded worker pool and delivers every result to sink in
// index order — the deterministic ordered merge that keeps streaming
// campaign output byte-identical to a serial loop. work receives the
// stage's per-launch work-group budget (LaunchWorkers of the actual
// fan-out). sink runs on the calling goroutine; the queue between the
// workers and the merge is bounded, so a slow sink backpressures the
// workers instead of buffering the whole campaign.
//
// Cancelling ctx stops the dispatch of new case indices; cases already
// in flight run to completion and still reach the sink, so a cancelled
// stream delivers a contiguous, exactly-once prefix of the case list —
// the invariant the shard resume path depends on. A nil ctx streams to
// completion.
func Stream[R any](ctx context.Context, n int, work func(i, launch int) R, sink func(i int, r R)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	launch := LaunchWorkers(workers)
	streamWith(ctx, workers, n, func(i int) R { return work(i, launch) }, sink)
}

// streamWith is Stream with an explicit worker count (RunMatrix budgets
// its representative stage against the caller's width).
func streamWith[R any](ctx context.Context, workers, n int, work func(i int) R, sink func(i int, r R)) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			sink(i, work(i))
		}
		return
	}
	type item struct {
		i int
		r R
	}
	jobs := make(chan int)
	// The done queue is bounded by the worker count: a finished worker
	// blocks until the merge drains, bounding the reorder window (and so
	// memory) to O(workers) regardless of campaign size.
	done := make(chan item, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				done <- item{i, work(i)}
			}
		}()
	}
	go func() {
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				// Stop handing out new cases; the workers drain what was
				// already dispatched, so the merge still emits a clean,
				// in-order prefix before the stream returns.
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
		close(done)
	}()
	// Ordered merge: results arrive out of order; emit them to the sink
	// strictly by index. Because jobs dispatch in order, at most
	// 2×workers results can be pending ahead of the next index.
	pending := make(map[int]R, workers)
	next := 0
	for it := range done {
		pending[it.i] = it.r
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			sink(next, r)
			next++
		}
	}
}
