package campaign

import (
	"testing"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
)

// coverCase branches on runtime values (the thread id), so its branches
// survive constant folding and the VM has edges to report.
func coverCase(name string) Case {
	nd := exec.NDRange{Global: [3]int{8, 1, 1}, Local: [3]int{4, 1, 1}}
	return Case{
		Name: name,
		Src: `
kernel void k(global ulong *out) {
    ulong id = get_linear_global_id();
    ulong acc = 7;
    for (ulong i = 0; i < id + 2UL; i++) {
        acc = acc * 47UL + 3UL;
        if ((acc & 1UL) == 1UL) { acc += 5UL; }
    }
    out[id] = acc;
}
`,
		ND: nd,
		Buffers: func() (exec.Args, *exec.Buffer) {
			out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
			return exec.Args{"out": {Buf: out}}, out
		},
	}
}

// TestCoverageNeutralLaunch: a covered launch is byte-identical to an
// uncovered one — coverage is observation only — while actually
// populating the map.
func TestCoverageNeutralLaunch(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cfg := device.Reference()
	plain := eng.RunCase(cfg, true, coverCase("plain"), LaunchOptions{})
	cov := new(exec.CoverMap)
	covered := eng.RunCase(cfg, true, coverCase("plain"), LaunchOptions{Cover: cov})
	if covered.Outcome != plain.Outcome || covered.Msg != plain.Msg {
		t.Fatalf("coverage changed the verdict: (%v, %q) vs (%v, %q)",
			covered.Outcome, covered.Msg, plain.Outcome, plain.Msg)
	}
	if len(covered.Output) != len(plain.Output) {
		t.Fatalf("coverage changed the output length: %d vs %d", len(covered.Output), len(plain.Output))
	}
	for i := range plain.Output {
		if covered.Output[i] != plain.Output[i] {
			t.Fatalf("out[%d] = %#x covered, %#x plain", i, covered.Output[i], plain.Output[i])
		}
	}
	if cov.Count() == 0 {
		t.Fatal("covered launch collected no edges")
	}
}

// TestCoverResultCacheIsolation: covered and uncovered runs of the same
// launch use distinct result-cache entries — an uncovered hit must never
// serve a covered request (it would silently lose the coverage delta)
// and vice versa.
func TestCoverResultCacheIsolation(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cfg := device.Reference()
	c := coverCase("isolate")
	if r := eng.RunCase(cfg, true, c, LaunchOptions{}); r.Cached {
		t.Fatal("first uncovered run hit the cache")
	}
	covA := new(exec.CoverMap)
	if r := eng.RunCase(cfg, true, c, LaunchOptions{Cover: covA}); r.Cached {
		t.Fatal("first covered run was served from the uncovered entry")
	}
	if covA.Count() == 0 {
		t.Fatal("covered miss collected no edges")
	}
	// A covered hit must replay the memoized delta into the caller's map.
	covB := new(exec.CoverMap)
	if r := eng.RunCase(cfg, true, c, LaunchOptions{Cover: covB}); !r.Cached {
		t.Fatal("second covered run missed the cache")
	}
	edgesA, edgesB := covA.Edges(), covB.Edges()
	if len(edgesA) != len(edgesB) {
		t.Fatalf("replayed coverage has %d edges, executed had %d", len(edgesB), len(edgesA))
	}
	for i := range edgesA {
		if edgesA[i] != edgesB[i] {
			t.Fatalf("edge[%d] = %d replayed, %d executed", i, edgesB[i], edgesA[i])
		}
	}
	if covA.SiteHits() != covB.SiteHits() {
		t.Fatalf("replayed site hits %v, executed %v", covB.SiteHits(), covA.SiteHits())
	}
	// And the uncovered entry still serves uncovered requests.
	if r := eng.RunCase(cfg, true, c, LaunchOptions{}); !r.Cached {
		t.Fatal("uncovered entry was lost")
	}
	if _, _, size := eng.Results.Stats(); size != 2 {
		t.Fatalf("cache holds %d entries, want 2 (covered + uncovered)", size)
	}
}

// TestEngineWideCoverAccumulates: Engine.Cover receives every launch's
// coverage when no per-launch override is given, across cache hits and
// misses alike.
func TestEngineWideCoverAccumulates(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	eng.Cover = new(exec.CoverMap)
	cfg := device.Reference()
	eng.RunCase(cfg, true, coverCase("wide"), LaunchOptions{})
	afterMiss := eng.Cover.Count()
	if afterMiss == 0 {
		t.Fatal("engine-wide map empty after an executed launch")
	}
	eng.RunCase(cfg, true, coverCase("wide"), LaunchOptions{})
	if got := eng.Cover.Count(); got != afterMiss {
		t.Fatalf("cache-hit replay changed the distinct-edge count: %d vs %d", got, afterMiss)
	}
}
