package campaign

import (
	"context"
	"fmt"
	"sync/atomic"

	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/oracle"
)

// Case is one runnable test case: kernel source plus launch geometry and
// an argument factory (buffers must be fresh per execution).
type Case struct {
	Name string
	Src  string
	ND   exec.NDRange
	// Buffers builds a fresh argument set and names the result buffer
	// whose contents the campaign reports.
	Buffers func() (exec.Args, *exec.Buffer)
}

// Key renders the paper's configuration notation: "12-" for
// optimizations disabled, "12+" for enabled.
func Key(cfg *device.Config, optimize bool) string {
	if optimize {
		return fmt.Sprintf("%d+", cfg.ID)
	}
	return fmt.Sprintf("%d-", cfg.ID)
}

// ModelKey identifies everything about a (configuration, level) pair
// that can influence a test outcome in the simulation: the full defect
// model and whether the optimizer effectively runs. Pairs with equal
// keys are byte-for-byte interchangeable — the executor is deterministic
// — so a campaign runs one representative per model and copies the
// result to the others.
type ModelKey struct {
	Lvl device.Level
	// EffOpt is the optimization setting after NoOptimizer is applied.
	EffOpt bool
}

// ModelKeyOf returns the dedup key for a (configuration, level) pair.
func ModelKeyOf(cfg *device.Config, optimize bool) ModelKey {
	return ModelKey{Lvl: cfg.Level(optimize), EffOpt: optimize && !cfg.NoOptimizer}
}

// GroupUnits partitions unit indices 0..n-1 into representatives (first
// unit of each distinct key, in order) and followers (unit index → its
// representative's index). Campaigns use it to run one unit per defect
// model and copy the deterministic result to the others.
func GroupUnits[K comparable](n int, key func(i int) K) (reps []int, follower map[int]int) {
	follower = make(map[int]int)
	seen := make(map[K]int, n)
	for i := 0; i < n; i++ {
		k := key(i)
		if r, ok := seen[k]; ok {
			follower[i] = r
		} else {
			seen[k] = i
			reps = append(reps, i)
		}
	}
	return reps, follower
}

// Unit is one (source, configuration, level) launch within a Matrix.
type Unit struct {
	// Src indexes Matrix.Sources.
	Src int
	Cfg *device.Config
	Opt bool
}

// UnitResult is the outcome of one unit.
type UnitResult struct {
	// Key is the paper's configuration notation ("12+").
	Key     string
	Outcome device.Outcome
	Msg     string
	Output  []uint64
	// Compile reports that the outcome was produced by the compile stage
	// (build failures always; timeouts when the compiler, not the kernel,
	// exceeded its budget — the Table 1 slow-compilation signal).
	Compile bool
	// Cached reports that the result came from the cross-base result
	// cache rather than a fresh execution.
	Cached bool
}

// AsOracle converts the unit result to the differential-testing oracle's
// observation type.
func (r UnitResult) AsOracle() oracle.Result {
	return oracle.Result{Key: r.Key, Outcome: r.Outcome, Output: r.Output}
}

// Matrix is one case's launch matrix: a set of variant sources sharing a
// single launch geometry, and the (source, configuration, level) units
// to run. Units sharing a source text and a defect model execute once.
type Matrix struct {
	Name string
	// Sources are the variant kernel texts (a plain differential test has
	// exactly one).
	Sources []string
	ND      exec.NDRange
	// Buffers builds a fresh argument set for the given source index.
	// Campaigns whose variants share one argument shape (Tables 1/4/5)
	// ignore the index.
	Buffers  func(src int) (exec.Args, *exec.Buffer)
	BaseFuel int64
	Units    []Unit
	// Ctx cancels the matrix cooperatively: representatives not yet
	// launched when it fires report device.Canceled instead of executing.
	// A record folded from a cancelled matrix is poisoned and must be
	// dropped, which the shard driver does (see harness.RunShard). nil
	// runs to completion.
	Ctx context.Context
}

// Engine bundles the caches and counters one campaign substrate shares:
// the front-end parse cache and the cross-base result cache (nil
// disables result memoization — the determinism reference
// configuration). The zero value is usable but cache-less.
type Engine struct {
	Front   *device.FrontCache
	Results *ResultCache
	// Cover, when non-nil, accumulates edge coverage and defect-site hits
	// across every launch this engine runs (LaunchOptions.Cover overrides
	// it per call). Coverage accumulation is independent of the result
	// cache: each covered launch collects into a private per-launch map
	// whose delta is memoized alongside the result, and a cache hit
	// replays the stored delta — so the accumulated map is byte-identical
	// whatever the hit/miss pattern.
	Cover *exec.CoverMap
	// Pool, when non-nil, is the executor launch-state pool every launch
	// this engine runs recycles its working set through; nil uses the
	// executor's process-wide pool. Pooling is observation-free, so it
	// never enters the result-cache key.
	Pool *exec.LaunchPool

	cases    atomic.Int64
	launches atomic.Int64

	// Per-reason result-cache skip counters: launches that had to execute
	// even though a result cache was wired, broken down by why the cache
	// could not serve (or record) them. skipNonFlat counts launches with
	// cell-backed (aggregate/vector-element) buffers the digest cannot
	// cover; skipRace counts race-checked runs, whose diagnostics depend
	// on the checker; skipCover counts misses where the same launch was
	// memoized under the opposite coverage population (the cover bit of
	// the key splits covered from uncovered entries).
	skipNonFlat atomic.Int64
	skipRace    atomic.Int64
	skipCover   atomic.Int64
}

// Default is the process-wide campaign engine, wired to the default
// compile caches; the table runners, exhibits and CLI tools all share
// it, so its result cache memoizes across campaigns in one process.
var Default = &Engine{Front: device.DefaultFrontCache, Results: NewResultCache(8192)}

// Counters reports the engine's cumulative throughput counters: cases
// (matrices or single launches) started and representative launches
// actually executed (model-dedup followers and result-cache hits are
// not re-executed).
func (e *Engine) Counters() (cases, launches int64) {
	return e.cases.Load(), e.launches.Load()
}

// CacheSkips reports the per-reason result-cache skip counters: launches
// with non-flat (cell-backed) buffers, race-checked launches, and misses
// whose result was memoized under the opposite coverage population.
func (e *Engine) CacheSkips() (nonFlat, race, cover int64) {
	return e.skipNonFlat.Load(), e.skipRace.Load(), e.skipCover.Load()
}

// LaunchOptions tunes a single-case run (Engine.RunCase).
type LaunchOptions struct {
	// BaseFuel is the per-thread step budget before the configuration's
	// fuel factor; device.DefaultFuel when zero.
	BaseFuel int64
	// Workers is the per-launch work-group fan-out budget.
	Workers int
	// CheckRaces enables the undefined-behaviour checker; checked runs
	// bypass the result cache (their diagnostics depend on the checker).
	CheckRaces bool
	// Engine forces the evaluation engine for this run.
	Engine exec.Engine
	// FuelModel forces the fuel-accounting model; FuelAuto defers to
	// device.DefaultFuelModel. The resolved model is part of the
	// result-cache key, so fuel/v1 and fuel/v2 results never alias.
	FuelModel exec.FuelModel
	// Dispatch forces the VM dispatch mode; DispatchAuto defers to
	// device.DefaultDispatch. Dispatch is observation-free (outputs, fuel
	// totals and outcomes are byte-identical across modes, pinned by the
	// dispatch determinism suites), so unlike the fuel model it does not
	// enter the result-cache key.
	Dispatch exec.Dispatch
	// Ctx cancels the launch cooperatively: a cancelled context skips the
	// compile/execute chain (or stops an in-flight execution at the next
	// work-group boundary) and yields a device.Canceled result, which is
	// never cached. nil runs to completion.
	Ctx context.Context
	// Cover, when non-nil, receives this launch's edge coverage and
	// defect-site hits (overriding the engine-wide Engine.Cover).
	// Observation only: results are byte-identical with coverage on or
	// off, and covered/uncovered runs never share result-cache entries.
	Cover *exec.CoverMap
}

// RunCase compiles and executes one case on one configuration at one
// optimization level through the engine's caches. It is the single-shot
// entry point behind clrun, cldiff, the reducer, the exhibits and the
// acceptance filters.
func (e *Engine) RunCase(cfg *device.Config, optimize bool, c Case, o LaunchOptions) UnitResult {
	e.cases.Add(1)
	fe := e.frontEnd(c.Src)
	return e.runUnit(cfg, optimize, fe, c.ND, func() (exec.Args, *exec.Buffer) { return c.Buffers() }, o)
}

// FrontEnd returns the (memoized, when the engine has a front cache)
// parse of a kernel source — the stage campaign sinks use to inspect
// parameters before launching.
func (e *Engine) FrontEnd(src string) *device.FrontEnd {
	return e.frontEnd(src)
}

func (e *Engine) frontEnd(src string) *device.FrontEnd {
	if e.Front != nil {
		return e.Front.Get(src)
	}
	return device.ParseFrontEnd(src)
}

// runUnit is the memoized front-end → back-end → execute chain behind
// every campaign launch.
func (e *Engine) runUnit(cfg *device.Config, optimize bool, fe *device.FrontEnd, nd exec.NDRange, buffers func() (exec.Args, *exec.Buffer), o LaunchOptions) UnitResult {
	key := Key(cfg, optimize)
	if o.Ctx != nil && o.Ctx.Err() != nil {
		return UnitResult{Key: key, Outcome: device.Canceled, Msg: "launch canceled"}
	}
	cr := cfg.CompileFrontEnd(fe, optimize)
	if cr.Outcome != device.OK {
		return UnitResult{Key: key, Outcome: cr.Outcome, Msg: cr.Msg, Compile: true}
	}
	cover := o.Cover
	if cover == nil {
		cover = e.Cover
	}
	args, result := buffers()
	var rk resultKey
	cacheable := false
	if e.Results != nil && o.CheckRaces {
		e.skipRace.Add(1)
	}
	if e.Results != nil && !o.CheckRaces {
		rk, cacheable = resultKeyFor(cfg, optimize, fe, nd, args, result, o, cover != nil)
		if !cacheable {
			e.skipNonFlat.Add(1)
		}
		if cacheable {
			if r, delta, ok := e.Results.get(rk, fe.Canon); ok {
				r.Key = key
				if cover != nil {
					// Replay the memoized launch's coverage delta, so the
					// accumulated map does not depend on hit/miss patterns:
					// edge bits OR idempotently and site counts are added
					// exactly once per logical run.
					cover.AddEdges(delta.edges)
					cover.AddSites(delta.sites)
				}
				return r
			}
			if e.Results.coverMismatch(rk, fe.Canon) {
				e.skipCover.Add(1)
			}
		}
	}
	// A covered launch collects into a private map first: the memoized
	// delta must be this launch's coverage alone, not whatever the shared
	// accumulator already held.
	var launchCov *exec.CoverMap
	if cover != nil {
		launchCov = new(exec.CoverMap)
	}
	e.launches.Add(1)
	rr := cr.Kernel.Run(nd, args, result, device.RunOptions{
		BaseFuel:   o.BaseFuel,
		CheckRaces: o.CheckRaces,
		Workers:    o.Workers,
		Engine:     o.Engine,
		FuelModel:  o.FuelModel,
		Dispatch:   o.Dispatch,
		Ctx:        o.Ctx,
		Cover:      launchCov,
		Pool:       e.Pool,
	})
	r := UnitResult{Key: key, Outcome: rr.Outcome, Msg: rr.Msg, Output: rr.Output}
	var delta coverDelta
	if launchCov != nil {
		delta = coverDelta{edges: launchCov.Edges(), sites: launchCov.SiteHits()}
		cover.AddEdges(delta.edges)
		cover.AddSites(delta.sites)
	}
	// A cancelled launch observed an arbitrary prefix of the work; its
	// result describes the cancellation, not the kernel, so it must never
	// be memoized.
	if cacheable && rr.Outcome != device.Canceled {
		e.Results.put(rk, fe.Canon, r, delta)
	}
	return r
}

// RunMatrix executes one case's unit matrix: units sharing a source text
// and a defect model run once (the representative), with the
// deterministic result copied to the followers; representatives fan out
// across the stage's worker budget and may be served by the result
// cache. width is the number of matrices the caller itself runs
// concurrently (1 for a single differential test); the planner budgets
// launch-level fan-out against width × representative count so the two
// levels never oversubscribe the machine. Results are returned in unit
// order.
func (e *Engine) RunMatrix(m Matrix, width int) []UnitResult {
	e.cases.Add(1)
	fes := make([]*device.FrontEnd, len(m.Sources))
	for i, src := range m.Sources {
		fes[i] = e.frontEnd(src)
	}
	type unitKey struct {
		src string
		mk  ModelKey
	}
	reps, follower := GroupUnits(len(m.Units), func(i int) unitKey {
		u := m.Units[i]
		return unitKey{m.Sources[u.Src], ModelKeyOf(u.Cfg, u.Opt)}
	})
	results := make([]UnitResult, len(m.Units))
	if width < 1 {
		width = 1
	}
	repWorkers := stageWorkers(width, len(reps))
	launch := LaunchWorkers(width * repWorkers)
	// The representative stage itself always runs to completion — every
	// unit gets a result, so follower replication below stays total — but
	// each unit consults m.Ctx before (and during) its launch and reports
	// device.Canceled once the context fires.
	streamWith(nil, repWorkers, len(reps), func(ri int) struct{} {
		i := reps[ri]
		u := m.Units[i]
		src := u.Src
		results[i] = e.runUnit(u.Cfg, u.Opt, fes[src], m.ND,
			func() (exec.Args, *exec.Buffer) { return m.Buffers(src) },
			LaunchOptions{BaseFuel: m.BaseFuel, Workers: launch, Ctx: m.Ctx})
		return struct{}{}
	}, func(int, struct{}) {})
	for i, r := range follower {
		cp := results[r]
		if cp.Output != nil {
			// Detach the follower's output so a future in-place mutation
			// of one result cannot corrupt its replicas.
			cp.Output = append([]uint64(nil), cp.Output...)
		}
		cp.Key = Key(m.Units[i].Cfg, m.Units[i].Opt)
		results[i] = cp
	}
	return results
}
