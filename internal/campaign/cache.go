package campaign

import (
	"sort"
	"sync"
	"sync/atomic"

	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/store"
)

// resultKey identifies everything a deterministic launch result depends
// on: the printed-source hash, the full defect model (the launch-time
// gates read the level's divisors and the source hash), the effective
// optimization setting, the resolved evaluation engine (outputs are
// pinned byte-identical across engines, but keying on it keeps the
// engine-comparison suites honest), and a digest of the entire machine
// state the launch reads — NDRange, argument names, scalar values,
// buffer types and initial contents, the result-buffer binding and the
// fuel budget.
type resultKey struct {
	srcHash uint64
	lvl     device.Level
	effOpt  bool
	engine  exec.Engine
	// fuel is the resolved fuel model — the engine-semantics version tag
	// ROADMAP item 5 asks for. fuel/v1 and fuel/v2 results agree except
	// at the Timeout frontier, so entries from one model must never be
	// served to a launch under the other.
	fuel   exec.FuelModel
	digest uint64
	// cover separates covered from uncovered launches: only entries
	// written by a covered run carry the coverage delta a covered hit
	// must replay, so the two populations never serve each other.
	cover bool
}

// coverDelta is the coverage one launch contributed: the edge bits it set
// and the defect-site hits it counted, memoized alongside the result so a
// cache hit replays them (accumulated coverage is then independent of the
// cache's hit/miss pattern).
type coverDelta struct {
	edges []uint32
	sites [exec.CoverNumSites]uint64
}

type resultEntry struct {
	// src guards against 64-bit source-hash collisions: a mismatch is
	// treated as a miss (collisions cost performance, never correctness).
	src string
	res UnitResult
	cov coverDelta
}

// ResultCache is the bounded, concurrency-safe cross-base result memo:
// the third cache level after the front-end parse cache and the
// compiled-kernel back cache. Model dedup collapses deterministic
// replicas within one case; the result cache collapses them across
// cases and across campaigns — acceptance-filter runs reused by the
// campaign proper, EMI prunings that reproduce another base's text, and
// repeated benchmark or exhibit verifications all hit here.
//
// Eviction is FIFO over insertion order, which keeps the cache
// deterministic under any interleaving of lookups for the same key set
// (the memoized value for a key never varies, so campaign outputs do
// not depend on hit/miss patterns).
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[resultKey]resultEntry
	fifo    []resultKey
	hits    uint64
	misses  uint64

	// disk is the optional persistent tier (AttachStore): memory misses
	// fall through to it, disk hits are promoted into memory, and every
	// memory insert is written through. The counters below are the
	// campaign-level view — a disk "hit" here means the payload also
	// survived key, semantics-tag and source verification.
	disk       *store.Store
	diskHits   atomic.Uint64
	diskMisses atomic.Uint64
}

// NewResultCache returns a cache bounded to capacity entries (minimum 1).
func NewResultCache(capacity int) *ResultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ResultCache{cap: capacity, entries: make(map[resultKey]resultEntry)}
}

// get returns a detached copy of the memoized result for the key, plus
// the coverage delta the original launch contributed (empty for entries
// written by uncovered runs, which only uncovered lookups can reach —
// the key's cover bit separates the populations).
func (rc *ResultCache) get(k resultKey, src string) (UnitResult, coverDelta, bool) {
	rc.mu.Lock()
	e, ok := rc.entries[k]
	if ok && e.src == src {
		rc.hits++
		rc.mu.Unlock()
		r := e.res
		if r.Output != nil {
			r.Output = append([]uint64(nil), r.Output...)
		}
		r.Cached = true
		return r, e.cov, true
	}
	rc.misses++
	rc.mu.Unlock()
	if rc.disk == nil {
		return UnitResult{}, coverDelta{}, false
	}
	// Disk probe runs outside the lock: store reads are file I/O, and two
	// concurrent probes for the same key are benign (identical payloads).
	r, cov, ok := rc.diskGet(k, src)
	if !ok {
		rc.diskMisses.Add(1)
		return UnitResult{}, coverDelta{}, false
	}
	rc.diskHits.Add(1)
	rc.promote(k, src, r, cov)
	if r.Output != nil {
		r.Output = append([]uint64(nil), r.Output...)
	}
	r.Cached = true
	return r, cov, true
}

// promote inserts a disk-tier hit into the memory tier without writing
// it back to disk (it just came from there).
func (rc *ResultCache) promote(k resultKey, src string, r UnitResult, cov coverDelta) {
	r.Cached = false
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.entries[k]; ok {
		return
	}
	if len(rc.fifo) >= rc.cap {
		oldest := rc.fifo[0]
		rc.fifo = rc.fifo[1:]
		delete(rc.entries, oldest)
	}
	rc.entries[k] = resultEntry{src: src, res: r, cov: cov}
	rc.fifo = append(rc.fifo, k)
}

// coverMismatch reports whether the memory tier holds this launch's
// result under the opposite cover bit — the one skip the key split makes
// invisible: the work was done, but for the other coverage population.
func (rc *ResultCache) coverMismatch(k resultKey, src string) bool {
	twin := k
	twin.cover = !twin.cover
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e, ok := rc.entries[twin]
	return ok && e.src == src
}

// put records a result under the key, detaching the output slice so
// later caller mutations cannot corrupt the memo.
func (rc *ResultCache) put(k resultKey, src string, r UnitResult, cov coverDelta) {
	r.Cached = false
	if r.Output != nil {
		r.Output = append([]uint64(nil), r.Output...)
	}
	rc.mu.Lock()
	if _, ok := rc.entries[k]; ok {
		rc.mu.Unlock()
		return
	}
	if len(rc.fifo) >= rc.cap {
		oldest := rc.fifo[0]
		rc.fifo = rc.fifo[1:]
		delete(rc.entries, oldest)
	}
	rc.entries[k] = resultEntry{src: src, res: r, cov: cov}
	rc.fifo = append(rc.fifo, k)
	rc.mu.Unlock()
	if rc.disk != nil {
		// Write-through outside the lock: persistence is I/O-bound and
		// must never block concurrent memory-tier lookups. FIFO eviction
		// above only trims the memory tier; the disk entry outlives it.
		rc.diskPut(k, src, r, cov)
	}
}

// Stats reports cumulative hit/miss counts and the current entry count.
func (rc *ResultCache) Stats() (hits, misses uint64, size int) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.hits, rc.misses, len(rc.entries)
}

// DiskStats reports the campaign-level disk-tier counters: hits that
// survived full key/tag/source verification and misses (including
// entries the store rejected as corrupt). Zero when no store is
// attached.
func (rc *ResultCache) DiskStats() (hits, misses uint64) {
	return rc.diskHits.Load(), rc.diskMisses.Load()
}

// resultKeyFor builds the cache key for one launch, reporting false when
// the launch is not cacheable: any aggregate- or vector-element argument
// buffer keeps per-element cell trees whose contents the digest does not
// cover, so such launches always execute.
func resultKeyFor(cfg *device.Config, optimize bool, fe *device.FrontEnd, nd exec.NDRange, args exec.Args, result *exec.Buffer, o LaunchOptions, cover bool) (resultKey, bool) {
	engine := o.Engine
	if engine == exec.EngineAuto {
		engine = device.DefaultEngine
	}
	fuel := o.FuelModel
	if fuel == exec.FuelAuto {
		fuel = device.DefaultFuelModel
	}
	d := digest{h: 14695981039346656037}
	for _, g := range nd.Global {
		d.word(uint64(g))
	}
	for _, l := range nd.Local {
		d.word(uint64(l))
	}
	d.word(uint64(o.BaseFuel))
	names := make([]string, 0, len(args))
	for name := range args {
		names = append(names, name)
	}
	sort.Strings(names)
	resultBound := false
	for _, name := range names {
		a := args[name]
		d.str(name)
		if a.Buf == nil {
			d.word(1)
			d.word(a.Scalar)
			continue
		}
		if !d.buffer(a.Buf) {
			return resultKey{}, false
		}
		if a.Buf == result {
			// The result binding is part of the key: the residual
			// miscompilation gates corrupt whichever buffer is reported.
			d.word(2)
			resultBound = true
		}
	}
	if !resultBound {
		// A synthesized result buffer (AutoCase's fallback) is read after
		// the run; cover its initial contents too.
		d.word(3)
		if result == nil || !d.buffer(result) {
			return resultKey{}, false
		}
	}
	return resultKey{
		srcHash: fe.Hash,
		lvl:     cfg.Level(optimize),
		effOpt:  optimize && !cfg.NoOptimizer,
		engine:  engine,
		fuel:    fuel,
		digest:  d.h,
		cover:   cover,
	}, true
}

// digest is an FNV-1a accumulator over the launch's input state.
type digest struct{ h uint64 }

func (d *digest) word(v uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= v & 0xff
		d.h *= 1099511628211
		v >>= 8
	}
}

func (d *digest) str(s string) {
	for i := 0; i < len(s); i++ {
		d.h ^= uint64(s[i])
		d.h *= 1099511628211
	}
	d.word(uint64(len(s)))
}

// buffer folds a flat scalar buffer's type, length and contents into the
// digest; it reports false for cell-backed (aggregate/vector-element)
// buffers, which are not digestible.
func (d *digest) buffer(b *exec.Buffer) bool {
	if b.Cells != nil {
		return false
	}
	d.str(b.Elem.String())
	d.word(uint64(len(b.Words)))
	for i := range b.Words {
		d.word(b.Words[i])
	}
	return true
}
