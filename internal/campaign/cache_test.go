package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/emi"
	"clfuzz/internal/exec"
	"clfuzz/internal/parser"
	"clfuzz/internal/store"
)

// TestResultCacheCollisionGuard exercises the 64-bit collision-guard
// miss path directly: an entry stored under a key must not be served to
// a lookup with the same key but a different source text (the scenario
// a srcHash collision would produce), and the true owner must still hit.
func TestResultCacheCollisionGuard(t *testing.T) {
	rc := NewResultCache(8)
	k := resultKey{srcHash: 42, digest: 7}
	rc.put(k, "kernel A", UnitResult{Outcome: device.OK, Output: []uint64{1}}, coverDelta{})
	if _, _, ok := rc.get(k, "kernel B"); ok {
		t.Fatal("entry served across a source mismatch (collision guard broken)")
	}
	if r, _, ok := rc.get(k, "kernel A"); !ok || r.Output[0] != 1 {
		t.Fatalf("true owner missed its own entry: %+v %v", r, ok)
	}
	hits, misses, _ := rc.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestResultCacheFIFOOrder pins the eviction order: insertion order,
// oldest first, unaffected by intervening hits (FIFO, not LRU — hit
// patterns must not change which entries survive).
func TestResultCacheFIFOOrder(t *testing.T) {
	rc := NewResultCache(2)
	key := func(i uint64) resultKey { return resultKey{srcHash: i} }
	src := func(i uint64) string { return fmt.Sprintf("src %d", i) }
	rc.put(key(1), src(1), UnitResult{}, coverDelta{})
	rc.put(key(2), src(2), UnitResult{}, coverDelta{})
	// A hit on the oldest entry must not protect it from FIFO eviction.
	if _, _, ok := rc.get(key(1), src(1)); !ok {
		t.Fatal("warm-up hit missed")
	}
	rc.put(key(3), src(3), UnitResult{}, coverDelta{}) // evicts 1, not 2
	if _, _, ok := rc.get(key(1), src(1)); ok {
		t.Fatal("oldest entry survived past the bound (LRU-style protection?)")
	}
	if _, _, ok := rc.get(key(2), src(2)); !ok {
		t.Fatal("second-oldest entry was evicted out of order")
	}
	rc.put(key(4), src(4), UnitResult{}, coverDelta{}) // evicts 2
	if _, _, ok := rc.get(key(2), src(2)); ok {
		t.Fatal("entry 2 survived eviction, order is not FIFO")
	}
	if _, _, ok := rc.get(key(3), src(3)); !ok {
		t.Fatal("entry 3 missing")
	}
}

// TestEMIVariantHitsBase pins the canonical-printing payoff the store
// work depends on (ISSUE 9 acceptance criterion): an unpruned EMI
// variant — the re-printed text of its base, exactly what emi.Grid()[0]
// produces for Table 5 — must hit the result-cache entry the base's own
// run recorded, counter-asserted.
func TestEMIVariantHitsBase(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cfg := device.Reference()
	c := testCase("emi-base")
	if r := eng.RunCase(cfg, true, c, LaunchOptions{}); r.Outcome != device.OK {
		t.Fatalf("base run: %+v", r)
	}
	prog, err := parser.Parse(c.Src)
	if err != nil {
		t.Fatal(err)
	}
	po := emi.Grid()[0]
	if po.PLeaf != 0 || po.PCompound != 0 || po.PLift != 0 {
		t.Fatalf("grid[0] = %+v, expected the unpruned combination", po)
	}
	vp, err := emi.Prune(prog, po)
	if err != nil {
		t.Fatal(err)
	}
	variant := c
	variant.Src = ast.Print(vp)
	if variant.Src == c.Src {
		t.Fatal("variant text equals the base verbatim; the test would not exercise canonicalization")
	}
	r := eng.RunCase(cfg, true, variant, LaunchOptions{})
	if !r.Cached {
		t.Fatal("unpruned EMI variant missed its base's result-cache entry")
	}
	hits, _, _ := eng.Results.Stats()
	if hits != 1 {
		t.Fatalf("result-cache hits = %d, want exactly the variant's hit", hits)
	}
}

// TestCacheSkipCounters drives each of the three per-reason skips once:
// a race-checked launch, a launch with a cell-backed (vector-element)
// buffer the digest cannot cover, and a covered launch whose result is
// memoized only under the uncovered population.
func TestCacheSkipCounters(t *testing.T) {
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cfg := device.Reference()
	c := testCase("skips")

	eng.RunCase(cfg, true, c, LaunchOptions{CheckRaces: true})
	if nonFlat, race, cover := eng.CacheSkips(); race != 1 || nonFlat != 0 || cover != 0 {
		t.Fatalf("after checked run: skips = %d/%d/%d, want race=1 only", nonFlat, race, cover)
	}

	nd := exec.NDRange{Global: [3]int{1, 1, 1}, Local: [3]int{1, 1, 1}}
	vec := Case{
		Name: "vec",
		Src: `
kernel void k(global uint4 *v, global ulong *out) {
    out[get_linear_global_id()] = (ulong)v[0].x;
}
`,
		ND: nd,
		Buffers: func() (exec.Args, *exec.Buffer) {
			v := exec.NewBuffer(cltypes.VecOf(cltypes.TUInt, 4), 1)
			out := exec.NewBuffer(cltypes.TULong, 1)
			return exec.Args{"v": {Buf: v}, "out": {Buf: out}}, out
		},
	}
	if r := eng.RunCase(cfg, true, vec, LaunchOptions{}); r.Outcome != device.OK {
		t.Fatalf("vector case: %+v", r)
	}
	if nonFlat, _, _ := eng.CacheSkips(); nonFlat != 1 {
		t.Fatalf("after cell-backed run: nonFlat = %d, want 1", nonFlat)
	}

	// The uncovered run above memoized c under cover=false; a covered
	// lookup probes cover=true, misses, and the twin detection fires.
	eng.RunCase(cfg, true, c, LaunchOptions{})
	var cm exec.CoverMap
	eng.RunCase(cfg, true, c, LaunchOptions{Cover: &cm})
	if _, _, cover := eng.CacheSkips(); cover != 1 {
		t.Fatalf("covered lookup did not record a cover-mismatch skip (got %d)", cover)
	}
}

// TestDiskTierRoundTrip is the two-tier contract end to end within one
// process boundary crossing: an engine populates a store, a second
// engine with a cold memory tier but the same directory is served from
// disk — verified, promoted, byte-identical, and counted.
func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	warm.Results.AttachStore(s1)
	cfg := device.Reference()
	c := testCase("disk")
	first := warm.RunCase(cfg, true, c, LaunchOptions{})
	if first.Outcome != device.OK || first.Cached {
		t.Fatalf("cold run: %+v", first)
	}
	if st := s1.Stats(); st.Writes == 0 {
		t.Fatal("cold run wrote nothing through to the store")
	}

	// Fresh handle and fresh caches: everything this engine knows must
	// come off disk.
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cold.Results.AttachStore(s2)
	second := cold.RunCase(cfg, true, c, LaunchOptions{})
	if !second.Cached {
		t.Fatal("fresh process missed the populated store")
	}
	if first.Outcome != second.Outcome || len(first.Output) != len(second.Output) {
		t.Fatalf("disk result differs: %+v vs %+v", first, second)
	}
	for i := range first.Output {
		if first.Output[i] != second.Output[i] {
			t.Fatalf("out[%d] = %#x from disk, want %#x", i, second.Output[i], first.Output[i])
		}
	}
	if hits, misses := cold.Results.DiskStats(); hits != 1 || misses != 0 {
		t.Fatalf("disk stats hits=%d misses=%d, want 1/0", hits, misses)
	}
	// The hit was promoted: a third lookup is served by memory, not disk.
	cold.RunCase(cfg, true, c, LaunchOptions{})
	if hits, _ := cold.Results.DiskStats(); hits != 1 {
		t.Fatalf("promotion failed: disk hits = %d after a memory-warm lookup", hits)
	}
	_, launches := cold.Counters()
	if launches != 0 {
		t.Fatalf("cold engine executed %d launches, want 0 (all served from disk)", launches)
	}
}

// TestDiskTierCorruptEntry truncates the stored entry and requires the
// launch to re-execute (a recorded miss, never an error) and heal the
// store by writing the entry back.
func TestDiskTierCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s, _ := store.Open(dir)
	warm := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	warm.Results.AttachStore(s)
	cfg := device.Reference()
	c := testCase("corrupt")
	first := warm.RunCase(cfg, true, c, LaunchOptions{})

	entries, err := filepath.Glob(filepath.Join(dir, "*", "*"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no store entries found: %v", err)
	}
	for _, p := range entries {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, _ := store.Open(dir)
	cold := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cold.Results.AttachStore(s2)
	second := cold.RunCase(cfg, true, c, LaunchOptions{})
	if second.Cached {
		t.Fatal("truncated entry was served as a hit")
	}
	if second.Outcome != first.Outcome {
		t.Fatalf("re-executed result differs: %+v vs %+v", second, first)
	}
	if hits, misses := cold.Results.DiskStats(); hits != 0 || misses != 1 {
		t.Fatalf("disk stats hits=%d misses=%d, want 0/1", hits, misses)
	}
	if st := s2.Stats(); st.Corrupt == 0 {
		t.Fatal("store did not record the corruption")
	}
	if st := s2.Stats(); st.Writes == 0 {
		t.Fatal("re-execution did not heal the entry")
	}
	// Healed: a third cold engine hits.
	s3, _ := store.Open(dir)
	third := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	third.Results.AttachStore(s3)
	if r := third.RunCase(cfg, true, c, LaunchOptions{}); !r.Cached {
		t.Fatal("healed entry missed")
	}
}

// TestDiskTierFuelModelsNeverAlias: entries persisted under fuel/v1 must
// not serve fuel/v2 lookups — the semantics tag and the key's fuel field
// both separate them.
func TestDiskTierFuelModelsNeverAlias(t *testing.T) {
	dir := t.TempDir()
	s, _ := store.Open(dir)
	eng := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	eng.Results.AttachStore(s)
	cfg := device.Reference()
	c := testCase("fuel")
	if r := eng.RunCase(cfg, true, c, LaunchOptions{FuelModel: exec.FuelV1}); r.Cached {
		t.Fatalf("cold v1 run hit: %+v", r)
	}
	s2, _ := store.Open(dir)
	cold := &Engine{Front: device.NewFrontCache(16), Results: NewResultCache(64)}
	cold.Results.AttachStore(s2)
	if r := cold.RunCase(cfg, true, c, LaunchOptions{FuelModel: exec.FuelV2}); r.Cached {
		t.Fatal("fuel/v2 lookup was served a fuel/v1 entry")
	}
	if r := cold.RunCase(cfg, true, c, LaunchOptions{FuelModel: exec.FuelV1}); !r.Cached {
		t.Fatal("fuel/v1 lookup missed its own entry")
	}
}
