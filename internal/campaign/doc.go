// Package campaign is the shared substrate every testing campaign runs
// on: a staged streaming pipeline that takes test cases from a source,
// compiles them through the memoized front end, deduplicates the
// per-configuration back-end launches by defect model, executes the
// surviving representatives in parallel under a single worker-budget
// planner, and hands results to the caller's classify/sink stage in
// deterministic case order.
//
// # Pipeline stages
//
// A campaign is Stream(n, work, sink): case indices flow through a
// bounded worker pool (the case stage), each case expands into a Matrix
// of (source, configuration, level) units (the launch stage), and
// finished records merge back into submission order before the sink
// folds them (the ordered merge). Queues between the stages are bounded,
// so memory stays proportional to the worker count, not the campaign
// size, and the sink observes exactly the order a serial loop would
// produce — campaign output is byte-identical to the fully serial
// schedule.
//
// # Model dedup
//
// Units whose defect models are identical (ModelKey) are byte-for-byte
// interchangeable — the simulator is deterministic — so RunMatrix runs
// one representative per (source, model) group and copies its result to
// the followers. Table 1's four identical NVIDIA entries, the shared
// Intel CPU no-opt model, Oclgrind's ignored optimization flag, and EMI
// prunings that collapse to identical printed source all collapse here.
//
// # Cross-base result cache
//
// The third cache level after device.FrontCache (parses) and
// device.BackCache (compiled kernels): ResultCache memoizes finished
// launch results keyed by (printed-source hash, defect model, argument
// digest). Where model dedup collapses replicas within one case, the
// result cache collapses them across cases and across campaigns — a
// Table 4 kernel already executed by the acceptance filter, an EMI
// variant whose pruning reproduces another base's text, or a repeated
// benchmark run all return memoized output. Results are only cached when
// every argument buffer is flat (scalar elements), so the digest covers
// the entire machine state a launch reads; everything else simply runs.
//
// # Worker budgeting
//
// Plan is the single budget planner: case-level fan-out times per-launch
// work-group fan-out never exceeds GOMAXPROCS. Saturated stages run
// work-groups serially; narrow stages (a single differential test, a
// small acceptance batch) hand the idle cores to the executor.
//
// Entry points: Stream for the pipeline, Engine.RunMatrix for one case's
// unit matrix, Engine.RunCase for single launches (cldiff, clrun, the
// reducer, the exhibits), and Default — the process-wide engine wired to
// the default caches.
package campaign
