package campaign

import (
	"encoding/json"
	"os"

	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/store"
)

// EnableStore opens the disk result store at dir — or at $CLFUZZ_STORE
// when dir is empty — and attaches it beneath the default engine's
// result cache, which is how the four CLI tools resolve their -store
// flag. An empty resolved directory leaves the cache memory-only and
// returns (nil, nil).
func EnableStore(dir string) (*store.Store, error) {
	if dir == "" {
		dir = os.Getenv("CLFUZZ_STORE")
	}
	if dir == "" {
		return nil, nil
	}
	s, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	Default.Results.AttachStore(s)
	return s, nil
}

// diskEntry is the JSON payload persisted per result: the semantics tag
// and every field of the logical key (so a 64-bit address collision or a
// stale tag is detected and treated as a miss), the canonical source
// text (the same collision guard the in-memory tiers use), the unit
// result, and the launch's coverage delta for covered entries.
type diskEntry struct {
	Sem     string `json:"sem"`
	SrcHash uint64 `json:"srcHash"`
	LvlKey  uint64 `json:"lvlKey"`
	EffOpt  bool   `json:"effOpt"`
	Engine  uint8  `json:"engine"`
	Fuel    uint8  `json:"fuel"`
	Digest  uint64 `json:"digest"`
	Cover   bool   `json:"cover"`

	Src string `json:"src"`

	Outcome int      `json:"outcome"`
	Msg     string   `json:"msg,omitempty"`
	Output  []uint64 `json:"output,omitempty"`
	Compile bool     `json:"compile,omitempty"`

	CovEdges []uint32 `json:"covEdges,omitempty"`
	CovSites []uint64 `json:"covSites,omitempty"`
}

// lvlDigest folds the full defect model into one word. The struct's
// fields — divisors, flag set, fuel factor — are the entire model, so
// equal digests with equal source guards mean interchangeable results
// (and the digest is only a lookup aid: the payload's fields are
// re-verified on every read).
func (k resultKey) lvlDigest() uint64 {
	d := digest{h: 14695981039346656037}
	d.word(uint64(k.lvl.Defects))
	d.word(k.lvl.CrashDiv)
	d.word(k.lvl.CrashBarrierDiv)
	d.word(k.lvl.BFDiv)
	d.word(k.lvl.SlowDiv)
	d.word(k.lvl.WrongDiv)
	d.word(k.lvl.VecWrongDiv)
	// FuelFactor is a small rational in every configuration; scale to
	// fixed point so the digest does not depend on float formatting.
	d.word(uint64(k.lvl.FuelFactor * 1e6))
	return d.h
}

// addr folds the key and the semantics tag into the store's 64-bit
// content address.
func (k resultKey) addr(sem string) uint64 {
	d := digest{h: 14695981039346656037}
	d.str(sem)
	d.word(k.srcHash)
	d.word(k.lvlDigest())
	if k.effOpt {
		d.word(1)
	}
	d.word(uint64(k.engine))
	d.word(uint64(k.fuel))
	d.word(k.digest)
	if k.cover {
		d.word(1)
	}
	return d.h
}

// AttachStore wires a disk tier beneath the in-memory result cache.
// Memory misses fall through to the store; disk hits are promoted into
// the memory tier, and memory-tier inserts are written through. Safe to
// call once before the cache is shared; nil detaches.
func (rc *ResultCache) AttachStore(s *store.Store) {
	rc.disk = s
}

// Disk returns the attached store, nil when the cache is memory-only.
func (rc *ResultCache) Disk() *store.Store { return rc.disk }

// diskGet probes the disk tier for the key. Any mismatch — decode
// failure, stale semantics tag, address collision on another key, source
// collision on another text — is a miss; the blob-level corruption
// counting already happened inside store.Get.
func (rc *ResultCache) diskGet(k resultKey, src string) (UnitResult, coverDelta, bool) {
	sem := exec.SemanticsTag(k.engine, k.fuel)
	payload, ok := rc.disk.Get(k.addr(sem))
	if !ok {
		return UnitResult{}, coverDelta{}, false
	}
	var e diskEntry
	if json.Unmarshal(payload, &e) != nil {
		return UnitResult{}, coverDelta{}, false
	}
	if e.Sem != sem || e.SrcHash != k.srcHash || e.LvlKey != k.lvlDigest() ||
		e.EffOpt != k.effOpt || e.Engine != uint8(k.engine) || e.Fuel != uint8(k.fuel) ||
		e.Digest != k.digest || e.Cover != k.cover || e.Src != src {
		return UnitResult{}, coverDelta{}, false
	}
	r := UnitResult{Outcome: device.Outcome(e.Outcome), Msg: e.Msg, Output: e.Output, Compile: e.Compile}
	var cov coverDelta
	cov.edges = e.CovEdges
	if len(e.CovSites) == len(cov.sites) {
		copy(cov.sites[:], e.CovSites)
	}
	return r, cov, true
}

// diskPut writes one entry through to the store.
func (rc *ResultCache) diskPut(k resultKey, src string, r UnitResult, cov coverDelta) {
	sem := exec.SemanticsTag(k.engine, k.fuel)
	e := diskEntry{
		Sem:     sem,
		SrcHash: k.srcHash,
		LvlKey:  k.lvlDigest(),
		EffOpt:  k.effOpt,
		Engine:  uint8(k.engine),
		Fuel:    uint8(k.fuel),
		Digest:  k.digest,
		Cover:   k.cover,
		Src:     src,
		Outcome: int(r.Outcome),
		Msg:     r.Msg,
		Output:  r.Output,
		Compile: r.Compile,
	}
	if k.cover {
		e.CovEdges = cov.edges
		e.CovSites = cov.sites[:]
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return
	}
	rc.disk.Put(k.addr(sem), payload)
}
