// Package ast defines the abstract syntax tree for the OpenCL C subset
// used by the fuzzer, together with a printer that renders trees back to
// OpenCL C source. The generator builds trees directly; the
// per-configuration compilers parse printed source back into trees, so
// the printer and parser round-trip.
//
// CloneProgram/CloneExpr produce the deep copies the per-configuration
// back end mutates (the shared, cached front end is never modified).
// VarRef carries an atomically accessed evaluator slot cache; everything
// else is plain data. File map: ast.go (node types), print.go (source
// printer), clone.go (deep copies).
package ast
