package ast

import (
	"sync/atomic"

	"clfuzz/internal/cltypes"
)

// Node is implemented by every AST node.
type Node interface{ node() }

// Expr is implemented by all expression nodes. Every expression carries the
// type computed by semantic analysis (nil before type checking).
type Expr interface {
	Node
	expr()
	// Type returns the checked type of the expression.
	Type() cltypes.Type
	// SetType records the checked type.
	SetType(cltypes.Type)
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

type exprBase struct{ T cltypes.Type }

func (*exprBase) node()                    {}
func (*exprBase) expr()                    {}
func (e *exprBase) Type() cltypes.Type     { return e.T }
func (e *exprBase) SetType(t cltypes.Type) { e.T = t }

type stmtBase struct{}

func (*stmtBase) node() {}
func (*stmtBase) stmt() {}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators. Comma is the C comma operator, which the subset
// supports because it triggered a real Oclgrind bug (paper Figure 2(f)).
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	And
	Or
	Xor
	Shl
	Shr
	LAnd
	LOr
	EQ
	NE
	LT
	LE
	GT
	GE
	Comma
)

var binOpStr = map[BinOp]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%",
	And: "&", Or: "|", Xor: "^", Shl: "<<", Shr: ">>",
	LAnd: "&&", LOr: "||",
	EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	Comma: ",",
}

// String returns the source spelling of the operator.
func (op BinOp) String() string { return binOpStr[op] }

// IsComparison reports whether the operator is a relational or equality
// operator (result type int).
func (op BinOp) IsComparison() bool {
	switch op {
	case EQ, NE, LT, LE, GT, GE:
		return true
	}
	return false
}

// IsLogical reports whether the operator is && or ||.
func (op BinOp) IsLogical() bool { return op == LAnd || op == LOr }

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	Neg UnOp = iota
	Pos
	BitNot
	LogNot
	AddrOf
	Deref
	PreInc
	PreDec
	PostInc
	PostDec
)

var unOpStr = map[UnOp]string{
	Neg: "-", Pos: "+", BitNot: "~", LogNot: "!", AddrOf: "&", Deref: "*",
	PreInc: "++", PreDec: "--", PostInc: "++", PostDec: "--",
}

// String returns the source spelling of the operator.
func (op UnOp) String() string { return unOpStr[op] }

// AssignOp enumerates assignment operators.
type AssignOp int

// Assignment operators.
const (
	Assign AssignOp = iota
	AddAssign
	SubAssign
	MulAssign
	DivAssign
	ModAssign
	AndAssign
	OrAssign
	XorAssign
	ShlAssign
	ShrAssign
)

var assignOpStr = map[AssignOp]string{
	Assign: "=", AddAssign: "+=", SubAssign: "-=", MulAssign: "*=",
	DivAssign: "/=", ModAssign: "%=", AndAssign: "&=", OrAssign: "|=",
	XorAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
}

// String returns the source spelling of the operator.
func (op AssignOp) String() string { return assignOpStr[op] }

// BinOp returns the underlying binary operator of a compound assignment
// (Add for +=). It must not be called on plain Assign.
func (op AssignOp) BinOp() BinOp {
	switch op {
	case AddAssign:
		return Add
	case SubAssign:
		return Sub
	case MulAssign:
		return Mul
	case DivAssign:
		return Div
	case ModAssign:
		return Mod
	case AndAssign:
		return And
	case OrAssign:
		return Or
	case XorAssign:
		return Xor
	case ShlAssign:
		return Shl
	}
	return Shr
}

// ---- Expressions ----

// IntLit is an integer literal with an explicit type (the printer emits a
// suffix or cast as needed so the parser recovers the same type).
type IntLit struct {
	exprBase
	Val uint64
}

// NewIntLit returns a literal of the given value and scalar type.
func NewIntLit(v uint64, t *cltypes.Scalar) *IntLit {
	l := &IntLit{Val: cltypes.Trunc(v, t)}
	l.SetType(t)
	return l
}

// VarRef is a reference to a named variable or parameter.
type VarRef struct {
	exprBase
	Name string
	// slot caches the evaluator's resolved scope coordinates for this
	// reference (an encoding private to the interpreter; 0 = none). All
	// threads of a launch share the node, so access goes through the
	// atomic LoadSlot/StoreSlot accessors; the evaluator validates the
	// cached value before trusting it, so a stale slot is only a miss.
	slot uint64
}

// NewVarRef returns an unresolved variable reference.
func NewVarRef(name string) *VarRef { return &VarRef{Name: name} }

// LoadSlot atomically reads the evaluator's cached resolution slot.
func (v *VarRef) LoadSlot() uint64 { return atomic.LoadUint64(&v.slot) }

// StoreSlot atomically records the evaluator's resolution slot.
func (v *VarRef) StoreSlot(s uint64) { atomic.StoreUint64(&v.slot, s) }

// Unary is a unary operator application.
type Unary struct {
	exprBase
	Op UnOp
	X  Expr
}

// Binary is a binary operator application.
type Binary struct {
	exprBase
	Op   BinOp
	L, R Expr
}

// AssignExpr is an assignment (possibly compound). It is an expression, as
// in C, though the generator only emits it in statement position.
type AssignExpr struct {
	exprBase
	Op  AssignOp
	LHS Expr
	RHS Expr
}

// Cond is the ternary conditional operator c ? t : f.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Call is a function or builtin call.
type Call struct {
	exprBase
	Name string
	Args []Expr
}

// Index is array subscripting base[idx].
type Index struct {
	exprBase
	Base Expr
	Idx  Expr
}

// Member is struct/union member access: base.Name or base->Name.
type Member struct {
	exprBase
	Base  Expr
	Name  string
	Arrow bool
	// FieldIdx is 1 + the resolved field index within the struct type,
	// recorded by sema (0 = not yet resolved). The evaluator uses it to
	// skip the by-name field scan on every access.
	FieldIdx int
}

// Swizzle is vector component access such as v.x or v.s03.
type Swizzle struct {
	exprBase
	Base Expr
	Sel  string
}

// VecLit is an OpenCL vector literal such as (int4)(1, v2, 3). Element
// expressions may themselves be vectors whose lengths sum to the vector
// length.
type VecLit struct {
	exprBase
	VT    *cltypes.Vector
	Elems []Expr
}

// Cast is an explicit scalar conversion (T)x.
type Cast struct {
	exprBase
	To cltypes.Type
	X  Expr
}

// InitList is a braced initializer for arrays, structs and unions.
// InitLists appear only as variable initializers.
type InitList struct {
	exprBase
	Elems []Expr
}

// ---- Statements ----

// DeclStmt declares a local variable.
type DeclStmt struct {
	stmtBase
	Decl *VarDecl
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// Block is a brace-delimited statement sequence with its own scope.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// If is a conditional statement. Else may be nil.
type If struct {
	stmtBase
	Cond Expr
	Then *Block
	Else Stmt // *Block or *If or nil
}

// For is a C for loop. Init may be a *DeclStmt or *ExprStmt or nil; Cond
// and Post may be nil.
type For struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Expr
	Body *Block
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body *Block
}

// DoWhile is a do { } while loop.
type DoWhile struct {
	stmtBase
	Body *Block
	Cond Expr
}

// Break is a break statement.
type Break struct{ stmtBase }

// Continue is a continue statement.
type Continue struct{ stmtBase }

// Return is a return statement; X may be nil.
type Return struct {
	stmtBase
	X Expr
}

// Empty is the empty statement ";".
type Empty struct{ stmtBase }

// ---- Declarations ----

// VarDecl declares a variable (global, local-memory, parameter, or block
// scope).
type VarDecl struct {
	Name     string
	Type     cltypes.Type
	Space    cltypes.AddrSpace
	Volatile bool
	Const    bool
	Init     Expr // may be nil; *InitList for aggregates
}

// Param is a function or kernel parameter.
type Param struct {
	Name string
	Type cltypes.Type
}

// FuncDecl is a function or kernel definition. A forward declaration has a
// nil Body.
type FuncDecl struct {
	Name     string
	Ret      cltypes.Type
	Params   []Param
	Body     *Block
	IsKernel bool
}

// Program is a translation unit: type definitions, file-scope constant
// declarations (OpenCL permits constant-space program-scope variables),
// and functions. Funcs appear in definition order; OpenCL C requires
// declaration before use, like C.
type Program struct {
	Structs []*cltypes.StructT
	Globals []*VarDecl // constant address space program-scope variables
	Funcs   []*FuncDecl
}

// Kernel returns the (first) kernel function of the program, or nil.
func (p *Program) Kernel() *FuncDecl {
	for _, f := range p.Funcs {
		if f.IsKernel {
			return f
		}
	}
	return nil
}

// Func returns the named function definition (with body), or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name && f.Body != nil {
			return f
		}
	}
	return nil
}

// StructByName returns the named struct/union definition, or nil.
func (p *Program) StructByName(name string) *cltypes.StructT {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}
