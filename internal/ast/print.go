package ast

import (
	"fmt"
	"strings"

	"clfuzz/internal/cltypes"
)

// Print renders the program as OpenCL C source. The output is fully
// parenthesized (as CLsmith's is) so that it round-trips through the parser
// without precedence ambiguity; an early CLsmith version produced ambiguous
// vector expressions such as (int2)(1,2).y, which compilers disagreed on
// (paper §6 "Front-end issues") — full parenthesization avoids that class
// of ambiguity by construction.
func Print(p *Program) string {
	var pr printer
	for _, s := range p.Structs {
		pr.structDef(s)
	}
	for _, g := range p.Globals {
		pr.varDecl(g)
		pr.buf.WriteString(";\n")
	}
	if len(p.Globals) > 0 {
		pr.buf.WriteByte('\n')
	}
	for _, f := range p.Funcs {
		pr.funcDecl(f)
	}
	return pr.buf.String()
}

// PrintStmt renders a single statement (used by the EMI machinery and the
// reducer when splicing fragments).
func PrintStmt(s Stmt) string {
	var pr printer
	pr.stmt(s)
	return pr.buf.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var pr printer
	pr.expr(e)
	return pr.buf.String()
}

type printer struct {
	buf    strings.Builder
	indent int
}

func (pr *printer) nl() {
	pr.buf.WriteByte('\n')
	for i := 0; i < pr.indent; i++ {
		pr.buf.WriteString("    ")
	}
}

func (pr *printer) structDef(s *cltypes.StructT) {
	kw := "struct"
	if s.IsUnion {
		kw = "union"
	}
	fmt.Fprintf(&pr.buf, "%s %s {\n", kw, s.Name)
	for _, f := range s.Fields {
		pr.buf.WriteString("    ")
		if f.Volatile {
			pr.buf.WriteString("volatile ")
		}
		pr.declarator(f.Type, f.Name, cltypes.Private)
		pr.buf.WriteString(";\n")
	}
	pr.buf.WriteString("};\n\n")
}

// declarator prints a C declarator: base type, stars, name, array suffixes.
func (pr *printer) declarator(t cltypes.Type, name string, space cltypes.AddrSpace) {
	if s := space.String(); s != "" {
		pr.buf.WriteString(s)
		pr.buf.WriteByte(' ')
	}
	// Peel arrays (suffix syntax), then pointers (prefix stars).
	var dims []int
	base := t
	for {
		if at, ok := base.(*cltypes.Array); ok {
			dims = append(dims, at.Len)
			base = at.Elem
			continue
		}
		break
	}
	stars := 0
	var ptrSpaces []cltypes.AddrSpace
	for {
		if pt, ok := base.(*cltypes.Pointer); ok {
			stars++
			ptrSpaces = append(ptrSpaces, pt.Space)
			base = pt.Elem
			continue
		}
		break
	}
	// Pointee address space qualifies the base type in OpenCL C:
	// `global int *p`. Nested pointer spaces beyond the innermost are
	// not representable in the subset's printer; the generator only
	// produces private intermediate pointers, whose qualifier is empty.
	if stars > 0 {
		if s := ptrSpaces[stars-1].String(); s != "" {
			pr.buf.WriteString(s)
			pr.buf.WriteByte(' ')
		}
	}
	pr.buf.WriteString(base.String())
	pr.buf.WriteByte(' ')
	for i := 0; i < stars; i++ {
		pr.buf.WriteByte('*')
	}
	pr.buf.WriteString(name)
	for _, d := range dims {
		fmt.Fprintf(&pr.buf, "[%d]", d)
	}
}

func (pr *printer) varDecl(d *VarDecl) {
	if d.Const {
		pr.buf.WriteString("const ")
	}
	if d.Volatile {
		pr.buf.WriteString("volatile ")
	}
	pr.declarator(d.Type, d.Name, d.Space)
	if d.Init != nil {
		pr.buf.WriteString(" = ")
		pr.expr(d.Init)
	}
}

func (pr *printer) funcDecl(f *FuncDecl) {
	if f.IsKernel {
		pr.buf.WriteString("kernel ")
	}
	pr.buf.WriteString(f.Ret.String())
	pr.buf.WriteByte(' ')
	pr.buf.WriteString(f.Name)
	pr.buf.WriteByte('(')
	for i, p := range f.Params {
		if i > 0 {
			pr.buf.WriteString(", ")
		}
		pr.declarator(p.Type, p.Name, cltypes.Private)
	}
	if len(f.Params) == 0 {
		pr.buf.WriteString("void")
	}
	pr.buf.WriteByte(')')
	if f.Body == nil {
		pr.buf.WriteString(";\n\n")
		return
	}
	pr.buf.WriteByte(' ')
	pr.block(f.Body)
	pr.buf.WriteString("\n\n")
}

func (pr *printer) block(b *Block) {
	pr.buf.WriteByte('{')
	pr.indent++
	for _, s := range b.Stmts {
		pr.nl()
		pr.stmt(s)
	}
	pr.indent--
	pr.nl()
	pr.buf.WriteByte('}')
}

func (pr *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *DeclStmt:
		pr.varDecl(st.Decl)
		pr.buf.WriteByte(';')
	case *ExprStmt:
		pr.expr(st.X)
		pr.buf.WriteByte(';')
	case *Block:
		pr.block(st)
	case *If:
		pr.buf.WriteString("if (")
		pr.expr(st.Cond)
		pr.buf.WriteString(") ")
		pr.block(st.Then)
		if st.Else != nil {
			pr.buf.WriteString(" else ")
			pr.stmt(st.Else)
		}
	case *For:
		pr.buf.WriteString("for (")
		switch init := st.Init.(type) {
		case nil:
			pr.buf.WriteByte(';')
		case *DeclStmt:
			pr.varDecl(init.Decl)
			pr.buf.WriteByte(';')
		case *ExprStmt:
			pr.expr(init.X)
			pr.buf.WriteByte(';')
		case *Empty:
			pr.buf.WriteByte(';')
		default:
			panic("ast: bad for-init statement")
		}
		pr.buf.WriteByte(' ')
		if st.Cond != nil {
			pr.expr(st.Cond)
		}
		pr.buf.WriteString("; ")
		if st.Post != nil {
			pr.expr(st.Post)
		}
		pr.buf.WriteString(") ")
		pr.block(st.Body)
	case *While:
		pr.buf.WriteString("while (")
		pr.expr(st.Cond)
		pr.buf.WriteString(") ")
		pr.block(st.Body)
	case *DoWhile:
		pr.buf.WriteString("do ")
		pr.block(st.Body)
		pr.buf.WriteString(" while (")
		pr.expr(st.Cond)
		pr.buf.WriteString(");")
	case *Break:
		pr.buf.WriteString("break;")
	case *Continue:
		pr.buf.WriteString("continue;")
	case *Return:
		if st.X == nil {
			pr.buf.WriteString("return;")
		} else {
			pr.buf.WriteString("return ")
			pr.expr(st.X)
			pr.buf.WriteByte(';')
		}
	case *Empty:
		pr.buf.WriteByte(';')
	default:
		panic(fmt.Sprintf("ast: unknown statement %T", s))
	}
}

func (pr *printer) expr(e Expr) {
	switch ex := e.(type) {
	case *IntLit:
		pr.intLit(ex)
	case *VarRef:
		pr.buf.WriteString(ex.Name)
	case *Unary:
		pr.buf.WriteByte('(')
		switch ex.Op {
		case PostInc, PostDec:
			pr.expr(ex.X)
			pr.buf.WriteString(ex.Op.String())
		default:
			pr.buf.WriteString(ex.Op.String())
			pr.expr(ex.X)
		}
		pr.buf.WriteByte(')')
	case *Binary:
		pr.buf.WriteByte('(')
		pr.expr(ex.L)
		if ex.Op == Comma {
			pr.buf.WriteString(" , ")
		} else {
			pr.buf.WriteByte(' ')
			pr.buf.WriteString(ex.Op.String())
			pr.buf.WriteByte(' ')
		}
		pr.expr(ex.R)
		pr.buf.WriteByte(')')
	case *AssignExpr:
		pr.expr(ex.LHS)
		pr.buf.WriteByte(' ')
		pr.buf.WriteString(ex.Op.String())
		pr.buf.WriteByte(' ')
		pr.expr(ex.RHS)
	case *Cond:
		pr.buf.WriteByte('(')
		pr.expr(ex.C)
		pr.buf.WriteString(" ? ")
		pr.expr(ex.T)
		pr.buf.WriteString(" : ")
		pr.expr(ex.F)
		pr.buf.WriteByte(')')
	case *Call:
		pr.buf.WriteString(ex.Name)
		pr.buf.WriteByte('(')
		for i, a := range ex.Args {
			if i > 0 {
				pr.buf.WriteString(", ")
			}
			pr.expr(a)
		}
		pr.buf.WriteByte(')')
	case *Index:
		pr.expr(ex.Base)
		pr.buf.WriteByte('[')
		pr.expr(ex.Idx)
		pr.buf.WriteByte(']')
	case *Member:
		pr.expr(ex.Base)
		if ex.Arrow {
			pr.buf.WriteString("->")
		} else {
			pr.buf.WriteByte('.')
		}
		pr.buf.WriteString(ex.Name)
	case *Swizzle:
		pr.buf.WriteByte('(')
		pr.expr(ex.Base)
		pr.buf.WriteByte(')')
		pr.buf.WriteByte('.')
		pr.buf.WriteString(ex.Sel)
	case *VecLit:
		fmt.Fprintf(&pr.buf, "((%s)(", ex.VT.String())
		for i, el := range ex.Elems {
			if i > 0 {
				pr.buf.WriteString(", ")
			}
			pr.expr(el)
		}
		pr.buf.WriteString("))")
	case *Cast:
		pr.buf.WriteByte('(')
		pr.buf.WriteByte('(')
		pr.buf.WriteString(ex.To.String())
		pr.buf.WriteByte(')')
		pr.expr(ex.X)
		pr.buf.WriteByte(')')
	case *InitList:
		pr.buf.WriteByte('{')
		for i, el := range ex.Elems {
			if i > 0 {
				pr.buf.WriteString(", ")
			}
			pr.expr(el)
		}
		pr.buf.WriteByte('}')
	default:
		panic(fmt.Sprintf("ast: unknown expression %T", e))
	}
}

// intLit prints a literal so the parser recovers the exact value and type:
// int and long print in decimal (negative patterns via a parenthesized
// minus), unsigned types print with u/UL suffixes, and narrow types print
// as a cast of an int literal.
func (pr *printer) intLit(l *IntLit) {
	t, _ := l.Type().(*cltypes.Scalar)
	if t == nil {
		t = cltypes.TInt
	}
	switch t.K {
	case cltypes.KindInt:
		v := cltypes.AsInt64(l.Val, t)
		if v < 0 {
			fmt.Fprintf(&pr.buf, "(%d)", v)
		} else {
			fmt.Fprintf(&pr.buf, "%d", v)
		}
	case cltypes.KindUInt:
		fmt.Fprintf(&pr.buf, "%du", cltypes.Trunc(l.Val, t))
	case cltypes.KindLong:
		v := cltypes.AsInt64(l.Val, t)
		if v < 0 {
			fmt.Fprintf(&pr.buf, "(%dL)", v)
		} else {
			fmt.Fprintf(&pr.buf, "%dL", v)
		}
	case cltypes.KindULong, cltypes.KindSizeT:
		fmt.Fprintf(&pr.buf, "%dUL", cltypes.Trunc(l.Val, t))
	default:
		// Narrow types print as a cast of a signed decimal literal.
		v := cltypes.AsInt64(l.Val, t)
		if v < 0 {
			fmt.Fprintf(&pr.buf, "((%s)(%d))", t.String(), v)
		} else {
			fmt.Fprintf(&pr.buf, "((%s)%d)", t.String(), v)
		}
	}
}
