package ast_test

import (
	"strings"
	"testing"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/parser"
)

// TestCloneIndependence: mutating a clone must not affect the original.
func TestCloneIndependence(t *testing.T) {
	src := `
struct S { int a; short b[3]; };

int f(struct S *p, int x) {
    for (int i = 0; i < 3; i++) { p->b[i] = (short)(x + i); }
    return p->a;
}

kernel void entry(global ulong *out) {
    struct S s = { 5, {1, 2, 3} };
    out[get_linear_global_id()] = (ulong)f(&s, 2);
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	before := ast.Print(prog)
	cp := ast.CloneProgram(prog)
	// Vandalize the clone thoroughly.
	for _, fn := range cp.Funcs {
		if fn.Body != nil {
			fn.Body.Stmts = nil
		}
		fn.Name = fn.Name + "_mutated"
	}
	for _, g := range cp.Globals {
		g.Name = "zz"
	}
	if after := ast.Print(prog); after != before {
		t.Error("mutating a clone changed the original program")
	}
}

// TestCloneEquality: a clone prints identically to its original.
func TestCloneEquality(t *testing.T) {
	src := `
constant uint tbl[2] = {1, 2};
kernel void entry(global ulong *out) {
    int4 v = (int4)(1, 2, 3, 4);
    uint y;
    for (y = 0u; y < 4u; ++y) { v = v + (int4)(1); }
    do { y--; } while (y > 1u);
    out[get_linear_global_id()] = ((ulong)(v).w , (ulong)tbl[1]) + (ulong)y;
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Print(ast.CloneProgram(prog)) != ast.Print(prog) {
		t.Error("clone prints differently from the original")
	}
}

// TestIntLitPrinting pins the literal forms the parser must recover.
func TestIntLitPrinting(t *testing.T) {
	cases := []struct {
		val  uint64
		typ  *cltypes.Scalar
		want string
	}{
		{7, cltypes.TInt, "7"},
		{0xffffffff, cltypes.TInt, "(-1)"}, // bit pattern prints signed
		{7, cltypes.TUInt, "7u"},
		{7, cltypes.TLong, "7L"},
		{7, cltypes.TULong, "7UL"},
		{200, cltypes.TChar, "((char)(-56))"},
		{200, cltypes.TUChar, "((uchar)200)"},
		{65535, cltypes.TUShort, "((ushort)65535)"},
	}
	for _, c := range cases {
		got := ast.PrintExpr(ast.NewIntLit(c.val, c.typ))
		if got != c.want {
			t.Errorf("literal %d:%s prints %q, want %q", c.val, c.typ, got, c.want)
		}
		// And the parser recovers value + type.
		e, err := parser.ParseExpr(got)
		if err != nil {
			t.Errorf("reparse %q: %v", got, err)
			continue
		}
		val, typ := literalOf(e)
		if cltypes.Trunc(val, c.typ) != cltypes.Trunc(c.val, c.typ) || !typ.Equal(c.typ) {
			t.Errorf("%q reparsed as %d:%s", got, val, typ)
		}
	}
}

// literalOf unwraps casts around a literal (narrow types print as casts):
// the value is the inner literal (negated for a unary minus), the type is
// the outermost cast target when present.
func literalOf(e ast.Expr) (uint64, cltypes.Type) {
	var outer cltypes.Type
	for {
		switch ex := e.(type) {
		case *ast.Cast:
			if outer == nil {
				outer = ex.To
			}
			e = ex.X
		case *ast.Unary: // (-56) prints as unary minus on 56
			if l, ok := ex.X.(*ast.IntLit); ok {
				t := l.Type().(*cltypes.Scalar)
				if outer == nil {
					outer = t
				}
				return cltypes.Neg(l.Val, t), outer
			}
			return 0, cltypes.TVoid
		case *ast.IntLit:
			if outer == nil {
				outer = ex.Type()
			}
			return ex.Val, outer
		default:
			return 0, cltypes.TVoid
		}
	}
}

// TestBinOpHelpers covers operator classification.
func TestBinOpHelpers(t *testing.T) {
	if !ast.LT.IsComparison() || ast.Add.IsComparison() {
		t.Error("IsComparison misclassifies")
	}
	if !ast.LAnd.IsLogical() || ast.And.IsLogical() {
		t.Error("IsLogical misclassifies")
	}
	if ast.AddAssign.BinOp() != ast.Add || ast.ShrAssign.BinOp() != ast.Shr {
		t.Error("AssignOp.BinOp misclassifies")
	}
}

// TestProgramAccessors covers kernel/function/struct lookup.
func TestProgramAccessors(t *testing.T) {
	src := `
struct S { int a; };
int f(void);
int f(void) { return 1; }
kernel void entry(global ulong *out) { out[0] = (ulong)f(); }
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Kernel() == nil || prog.Kernel().Name != "entry" {
		t.Error("Kernel() lookup failed")
	}
	if prog.Func("f") == nil || prog.Func("f").Body == nil {
		t.Error("Func() must return the definition, not the forward declaration")
	}
	if prog.StructByName("S") == nil || prog.StructByName("T") != nil {
		t.Error("StructByName misbehaves")
	}
}

// TestPrinterParenthesization: printed output is unambiguous enough that
// reparsing preserves the evaluation structure (checked by fixpoint).
func TestPrinterParenthesization(t *testing.T) {
	exprs := []string{
		"(1 + 2) * 3",
		"1 + (2 * 3)",
		"-(-5)",
		"~(1 << 4)",
		"(a , (b , c))",
		"((a , b) , c)",
	}
	for _, s := range exprs {
		e, err := parser.ParseExpr(s)
		if err != nil {
			t.Fatal(err)
		}
		p1 := ast.PrintExpr(e)
		e2, err := parser.ParseExpr(p1)
		if err != nil {
			t.Fatalf("reparse %q: %v", p1, err)
		}
		if p2 := ast.PrintExpr(e2); p1 != p2 {
			t.Errorf("%q: print/parse not a fixpoint (%q vs %q)", s, p1, p2)
		}
	}
}

// TestPrintStmt covers the statement printer's standalone entry point.
func TestPrintStmt(t *testing.T) {
	prog, err := parser.Parse(`kernel void k(global ulong *out) { if (1) { out[0] = 2UL; } else { out[0] = 3UL; } }`)
	if err != nil {
		t.Fatal(err)
	}
	s := ast.PrintStmt(prog.Kernel().Body.Stmts[0])
	if !strings.Contains(s, "else") || !strings.Contains(s, "2UL") {
		t.Errorf("PrintStmt output: %s", s)
	}
}
