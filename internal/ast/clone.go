package ast

import "fmt"

// CloneExpr deep-copies an expression tree, preserving checked types.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch ex := e.(type) {
	case *IntLit:
		cp := *ex
		return &cp
	case *VarRef:
		// Build the copy without reading the evaluator's resolution-slot
		// cache: the slot is written atomically by concurrent launches (a
		// plain struct copy would race), and its scope coordinates belong
		// to the original node's position — a clone spliced elsewhere (the
		// unroller) must re-resolve, since a stale slot can validate
		// against a same-named shadowed binding and silently return the
		// wrong variable.
		cp := VarRef{exprBase: ex.exprBase, Name: ex.Name}
		return &cp
	case *Unary:
		cp := *ex
		cp.X = CloneExpr(ex.X)
		return &cp
	case *Binary:
		cp := *ex
		cp.L = CloneExpr(ex.L)
		cp.R = CloneExpr(ex.R)
		return &cp
	case *AssignExpr:
		cp := *ex
		cp.LHS = CloneExpr(ex.LHS)
		cp.RHS = CloneExpr(ex.RHS)
		return &cp
	case *Cond:
		cp := *ex
		cp.C = CloneExpr(ex.C)
		cp.T = CloneExpr(ex.T)
		cp.F = CloneExpr(ex.F)
		return &cp
	case *Call:
		cp := *ex
		cp.Args = make([]Expr, len(ex.Args))
		for i, a := range ex.Args {
			cp.Args[i] = CloneExpr(a)
		}
		return &cp
	case *Index:
		cp := *ex
		cp.Base = CloneExpr(ex.Base)
		cp.Idx = CloneExpr(ex.Idx)
		return &cp
	case *Member:
		cp := *ex
		cp.Base = CloneExpr(ex.Base)
		return &cp
	case *Swizzle:
		cp := *ex
		cp.Base = CloneExpr(ex.Base)
		return &cp
	case *VecLit:
		cp := *ex
		cp.Elems = make([]Expr, len(ex.Elems))
		for i, el := range ex.Elems {
			cp.Elems[i] = CloneExpr(el)
		}
		return &cp
	case *Cast:
		cp := *ex
		cp.X = CloneExpr(ex.X)
		return &cp
	case *InitList:
		cp := *ex
		cp.Elems = make([]Expr, len(ex.Elems))
		for i, el := range ex.Elems {
			cp.Elems[i] = CloneExpr(el)
		}
		return &cp
	}
	panic(fmt.Sprintf("ast: cannot clone expression %T", e))
}

// CloneStmt deep-copies a statement tree.
func CloneStmt(s Stmt) Stmt {
	if s == nil {
		return nil
	}
	switch st := s.(type) {
	case *DeclStmt:
		d := *st.Decl
		d.Init = CloneExpr(st.Decl.Init)
		return &DeclStmt{Decl: &d}
	case *ExprStmt:
		return &ExprStmt{X: CloneExpr(st.X)}
	case *Block:
		return CloneBlock(st)
	case *If:
		cp := &If{Cond: CloneExpr(st.Cond), Then: CloneBlock(st.Then)}
		if st.Else != nil {
			cp.Else = CloneStmt(st.Else)
		}
		return cp
	case *For:
		return &For{
			Init: CloneStmt(st.Init),
			Cond: CloneExpr(st.Cond),
			Post: CloneExpr(st.Post),
			Body: CloneBlock(st.Body),
		}
	case *While:
		return &While{Cond: CloneExpr(st.Cond), Body: CloneBlock(st.Body)}
	case *DoWhile:
		return &DoWhile{Body: CloneBlock(st.Body), Cond: CloneExpr(st.Cond)}
	case *Break:
		return &Break{}
	case *Continue:
		return &Continue{}
	case *Return:
		return &Return{X: CloneExpr(st.X)}
	case *Empty:
		return &Empty{}
	}
	panic(fmt.Sprintf("ast: cannot clone statement %T", s))
}

// CloneBlock deep-copies a block.
func CloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	cp := &Block{Stmts: make([]Stmt, len(b.Stmts))}
	for i, s := range b.Stmts {
		cp.Stmts[i] = CloneStmt(s)
	}
	return cp
}

// CloneProgram deep-copies a program. Type definitions are shared (they are
// immutable after parsing).
func CloneProgram(p *Program) *Program {
	cp := &Program{Structs: p.Structs}
	for _, g := range p.Globals {
		d := *g
		d.Init = CloneExpr(g.Init)
		cp.Globals = append(cp.Globals, &d)
	}
	for _, f := range p.Funcs {
		nf := *f
		nf.Params = append([]Param(nil), f.Params...)
		nf.Body = CloneBlock(f.Body)
		cp.Funcs = append(cp.Funcs, &nf)
	}
	return cp
}
