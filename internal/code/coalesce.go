package code

// coalesceFn renumbers a function's value registers and lvalue
// registers densely, dropping the gaps the fuser's operand elision
// leaves behind, and shrinks NumRegs/NumLVs to the surviving counts —
// cutting the per-frame register traffic in ensureRegs/ensureLVs and
// the regBase advance on OpCall. Frame slots are variable storage, not
// temporaries, and are left untouched.
//
// The renumbering is monotone (ascending register numbers keep their
// relative order), and every member of a contiguous argument range
// (OpVecLit/OpAtomic/OpMath read regs A..A+n) is marked used, so ranges
// stay contiguous and rewriting the base register suffices.
func coalesceFn(f *Fn) {
	regUsed := make([]bool, f.NumRegs)
	lvUsed := make([]bool, f.NumLVs)
	mark := func(used []bool, r int32) {
		if r >= 0 && int(r) < len(used) {
			used[r] = true
		}
	}
	for i := range f.Code {
		visitRegs(&f.Code[i],
			func(r *int32) { mark(regUsed, *r) },
			func(r *int32) { mark(lvUsed, *r) })
	}
	regMap, nRegs := denseMap(regUsed)
	lvMap, nLVs := denseMap(lvUsed)
	remap := func(m []int32, r *int32) {
		if *r >= 0 && int(*r) < len(m) {
			*r = m[*r]
		}
	}
	for i := range f.Code {
		visitRegs(&f.Code[i],
			func(r *int32) { remap(regMap, r) },
			func(r *int32) { remap(lvMap, r) })
	}
	f.NumRegs, f.NumLVs = nRegs, nLVs
}

func denseMap(used []bool) ([]int32, int) {
	m := make([]int32, len(used))
	n := int32(0)
	for r, u := range used {
		if u {
			m[r] = n
			n++
		} else {
			m[r] = int32(r) // unused; never consulted after remap
		}
	}
	return m, int(n)
}

// visitRegs calls reg on every value-register field of in and lv on
// every lvalue-register field, as pointers so the caller can rewrite
// them. The classification mirrors the per-op field documentation in
// code.go exactly: fields holding slots, pc targets, function indices,
// parameter/kid indices, or small immediates are never visited. Range
// readers visit each member of A..A+n so a dense monotone renumbering
// keeps the range contiguous.
func visitRegs(in *Instr, reg, lv func(*int32)) {
	switch in.Op {
	case OpBranchFalse, OpBoolTest, OpBoolFin, OpConst, OpPredef, OpLoadSlot,
		OpLoadGlobal, OpComma, OpCondFin, OpWorkDim, OpLinearId, OpNewAgg,
		OpConvertFree, OpBinSlotImm, OpBinSlotImmBr, OpBinSlots, OpIncDecSlot,
		OpAggLit:
		reg(&in.Dst)
	case OpReturn, OpBindArg:
		reg(&in.A)
	case OpUnary, OpDeref, OpSwizzle, OpCast, OpConvert, OpIdBuiltin,
		OpBarrier, OpBinImm, OpBinImmBr:
		reg(&in.Dst)
		reg(&in.A)
	case OpBinary, OpPtrAt, OpCrc64, OpVcrc, OpBinBr, OpLoadIdx:
		reg(&in.Dst)
		reg(&in.A)
		reg(&in.B)
	case OpBinSlotR:
		reg(&in.Dst)
		reg(&in.A)
	case OpCall:
		reg(&in.Dst) // may be -1
	case OpStoreDecl:
		reg(&in.B)
	case OpInitField, OpInitUnion:
		reg(&in.A) // OpInitField.Dst is a kid index, not a register
		reg(&in.B)
	case OpInitStructDefect:
		reg(&in.A)
	case OpVecLit, OpMath:
		reg(&in.Dst)
		for k := int32(0); k < in.B; k++ {
			r := in.A + k
			reg(&r)
		}
		reg(&in.A)
	case OpAtomic:
		reg(&in.Dst)
		for k := int32(1); k <= in.B; k++ {
			r := in.A + k
			reg(&r)
		}
		reg(&in.A)
	case OpIncDec, OpAddrLV:
		reg(&in.Dst)
		lv(&in.A)
	case OpAddrElem:
		reg(&in.Dst)
		reg(&in.B)
		lv(&in.A)
	case OpLVSlot, OpLVGlobal:
		lv(&in.Dst)
	case OpLVDeref, OpLVArrow:
		lv(&in.Dst)
		reg(&in.A)
	case OpLVPtrIndex:
		lv(&in.Dst)
		reg(&in.A)
		reg(&in.B)
	case OpLVIndex:
		lv(&in.Dst)
		lv(&in.A)
		reg(&in.B)
	case OpLVMember, OpLVSwizzle:
		lv(&in.Dst)
		lv(&in.A)
	case OpLVLoad, OpLoadCast:
		reg(&in.Dst)
		lv(&in.A)
	case OpStore:
		reg(&in.Dst) // may be -1
		reg(&in.B)
		lv(&in.A)
	case OpStoreSlot:
		reg(&in.Dst) // may be -1
		reg(&in.B)
	}
}
