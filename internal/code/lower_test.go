package code_test

import (
	"testing"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/code"
	"clfuzz/internal/generator"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

func checkedKernel(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, _, err = sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return prog
}

// TestLowerIsReadOnly pins the lowering half of the immutable-program
// contract: Lower must not write to the checked AST it compiles (the
// same tree is concurrently executed and re-lowered by other defect
// models via the BackCache).
func TestLowerIsReadOnly(t *testing.T) {
	for _, seed := range []int64{5, 7, 11} {
		k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: seed, MaxTotalThreads: 16})
		prog := checkedKernel(t, k.Src)
		before := ast.Print(prog)
		if _, err := code.Lower(prog); err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		if after := ast.Print(prog); after != before {
			t.Fatalf("seed %d: lowering mutated the program", seed)
		}
	}
}

// TestLowerDeterministic pins that lowering the same program twice
// yields structurally identical bytecode — instruction counts, frame
// sizes, and per-instruction cost totals — which the BackCache's
// "identical artifacts on duplicated concurrent misses" assumption
// relies on.
func TestLowerDeterministic(t *testing.T) {
	k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 5, MaxTotalThreads: 16})
	prog := checkedKernel(t, k.Src)
	a, err := code.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	b, err := code.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if len(a.Fns) != len(b.Fns) || a.Kernel != b.Kernel {
		t.Fatalf("shape mismatch: %d/%d fns, kernel %d/%d", len(a.Fns), len(b.Fns), a.Kernel, b.Kernel)
	}
	for i := range a.Fns {
		fa, fb := a.Fns[i], b.Fns[i]
		if fa.NumRegs != fb.NumRegs || fa.NumLVs != fb.NumLVs || fa.NumSlots != fb.NumSlots || len(fa.Code) != len(fb.Code) {
			t.Fatalf("fn %s: frame/code shape differs between lowerings", fa.Name)
		}
		for pc := range fa.Code {
			ia, ib := fa.Code[pc], fb.Code[pc]
			if ia.Op != ib.Op || ia.Cost != ib.Cost || ia.Dst != ib.Dst || ia.A != ib.A || ia.B != ib.B {
				t.Fatalf("fn %s pc %d: %+v vs %+v", fa.Name, pc, ia, ib)
			}
		}
	}
}

// TestLowerFallback pins the escape hatch: a program whose dead-loop
// defect shape the lowerer cannot express (a non-variable init
// destination on a barrier-bearing for loop) must return an error — the
// device layer then runs that program on the tree engine — rather than
// silently mislowering the defect model.
func TestLowerFallback(t *testing.T) {
	out := &ast.Param{}
	out.Name, out.Type = "out", &cltypes.Pointer{Elem: cltypes.TULong, Space: cltypes.Global}
	barrier := &ast.ExprStmt{X: &ast.Call{Name: "barrier", Args: []ast.Expr{ast.NewIntLit(1, cltypes.TInt)}}}
	loop := &ast.For{
		Init: &ast.ExprStmt{X: &ast.AssignExpr{
			Op:  ast.Assign,
			LHS: &ast.Unary{Op: ast.Deref, X: ast.NewVarRef("out")},
			RHS: ast.NewIntLit(0, cltypes.TULong),
		}},
		Body: &ast.Block{Stmts: []ast.Stmt{barrier}},
	}
	prog := &ast.Program{Funcs: []*ast.FuncDecl{{
		Name:     "k",
		Ret:      cltypes.TVoid,
		IsKernel: true,
		Params:   []ast.Param{*out},
		Body:     &ast.Block{Stmts: []ast.Stmt{loop}},
	}}}
	if _, err := code.Lower(prog); err == nil {
		t.Fatal("expected a lowering error for the inexpressible dead-loop shape")
	}
}

// TestLowerCoversGeneratorCorpus pins totality over the generator's
// subset across every mode: lowering must succeed for each seed (the
// fuzz target then pins behavioral equivalence).
func TestLowerCoversGeneratorCorpus(t *testing.T) {
	modes := []generator.Mode{
		generator.ModeBasic, generator.ModeVector, generator.ModeBarrier, generator.ModeAll,
	}
	n := int64(20)
	if testing.Short() {
		n = 6
	}
	for _, mode := range modes {
		for seed := int64(0); seed < n; seed++ {
			k := generator.Generate(generator.Options{Mode: mode, Seed: seed, MaxTotalThreads: 16, EMIBlocks: int(seed % 3)})
			prog := checkedKernel(t, k.Src)
			if _, err := code.Lower(prog); err != nil {
				t.Fatalf("mode %v seed %d: %v\n%s", mode, seed, err, k.Src)
			}
		}
	}
}
