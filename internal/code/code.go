package code

import (
	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
)

// Op enumerates the bytecode operations. Each op corresponds to exactly
// one tree-walk evaluation step (or to a zero-cost bookkeeping action the
// tree walker performs without charging fuel), so a lowered program
// charges fuel identically to the tree-walking evaluator on every path —
// Timeout outcomes, and therefore campaign outputs, are byte-identical
// between the two engines.
type Op uint8

// Operations. Field usage is documented per op: Dst is the destination
// value register (or lvalue register for the OpLV* family), A and B are
// operand registers, slots, jump targets, or small immediates, and Aux
// carries pre-resolved operand data (types, constants, call sites).
const (
	OpInvalid Op = iota

	// Control flow.
	OpStep        // fuel-only no-op (block/empty statement entry)
	OpJump        // A = target pc
	OpBranchFalse // Dst = cond reg, A = target pc (branch when falsy)
	OpBoolTest    // Dst = reg, A = target pc, B = 0 for &&, 1 for || (short-circuit)
	OpBoolFin     // Dst = reg: normalize to int 0/1
	OpLoopEnter   // push a zero iteration counter
	OpLoopIter    // increment the top iteration counter
	OpLoopExit    // pop the counter; Aux *LoopExit for the dead-loop defect model
	OpReturn      // A = value reg
	OpReturnVoid  //
	OpReturnEnd   // implicit fall-off-the-end return

	// Values.
	OpConst       // Dst = reg, Aux *ConstVal
	OpPredef      // Dst = reg, A = value (CLK_*_MEM_FENCE)
	OpLoadSlot    // Dst = reg, A = frame slot
	OpLoadGlobal  // Dst = reg, A = program-global index
	OpUnary       // Dst = reg, A = src reg, B = ast.UnOp, Aux = result type
	OpDeref       // Dst = reg, A = pointer reg
	OpIncDec      // Dst = reg, A = lv reg, B = ast.UnOp
	OpAddrLV      // Dst = reg, A = lv reg, Aux = result type
	OpAddrElem    // Dst = reg, A = base lv reg, B = index reg, Aux = result type
	OpPtrAt       // Dst = reg, A = base pointer reg, B = index reg, Aux = result type
	OpBinary      // Dst = reg, A = left reg, B = right reg, Aux *BinInfo
	OpComma       // Dst = reg (right operand already in Dst; applies the comma defect)
	OpCondFin     // Dst = reg, Aux = ternary result type (may be nil)
	OpSwizzle     // Dst = reg, A = base reg, Aux []int component indices
	OpVecLit      // Dst = reg, A = first element reg, B = element count, Aux *cltypes.Vector
	OpCast        // Dst = reg, A = src reg, Aux = target type
	OpConvert     // Dst = reg, A = src reg, Aux = result type (convert_ builtin)
	OpConvertFree // Dst = reg, Aux *cltypes.Scalar: zero-cost initializer conversion

	// Builtins.
	OpIdBuiltin // Dst = reg, A = dim reg, Aux = builtin name
	OpWorkDim   // Dst = reg
	OpLinearId  // Dst = reg, B = 0 global / 1 local / 2 group
	OpBarrier   // Dst = reg (void result), A = fence reg, Aux = ast.Node call site
	OpCrc64     // Dst = reg, A = hash reg, B = value reg
	OpVcrc      // Dst = reg, A = hash reg, B = vector reg
	OpAtomic    // Dst = reg, A = pointer reg (args follow in A+1..), B = extra arg count, Aux = name
	OpMath      // Dst = reg, A = first arg reg, B = arg count, Aux *MathInfo

	// User calls.
	OpCallPrep // A = callee fn index: depth check, allocate the pending frame
	OpBindArg  // A = arg reg, B = param index, Aux = param type
	OpCall     // Dst = result reg, A = callee fn index: activate the pending frame

	// Lvalues.
	OpLVSlot     // Dst = lv reg, A = frame slot
	OpLVGlobal   // Dst = lv reg, A = program-global index
	OpLVDeref    // Dst = lv reg, A = pointer reg
	OpLVPtrIndex // Dst = lv reg, A = base pointer reg, B = index reg
	OpLVIndex    // Dst = lv reg, A = base lv reg, B = index reg
	OpLVArrow    // Dst = lv reg, A = base pointer reg, Aux *MemberInfo
	OpLVMember   // Dst = lv reg, A = base lv reg, Aux *MemberInfo
	OpLVSwizzle  // Dst = lv reg, A = base lv reg, B = component index
	OpLVLoad     // Dst = reg, A = lv reg
	OpStore      // Dst = result reg or -1, A = lv reg, B = value reg, Aux *StoreInfo

	// Declarations and initializers.
	OpDeclare          // A = frame slot, Aux = type: allocate a fresh private cell
	OpStoreDecl        // A = frame slot, B = value reg
	OpBindLocal        // A = frame slot, Aux *ast.VarDecl: group-shared local-memory cell
	OpNewAgg           // Dst = reg, Aux = type: fresh aggregate cell as an Agg value
	OpInitField        // Dst = kid index, A = aggregate reg, B = element reg
	OpInitUnion        // A = aggregate reg, B = element reg (single-member union init)
	OpInitStructDefect // A = aggregate reg: the Figure 1(a) char-first models

	// Superinstructions. Emitted only by the Fuse pass (fuel/v2): each
	// stands for the adjacent sequence named in its comment, with the
	// intermediate value/lvalue registers elided. They never appear in
	// freshly lowered (fuel/v1) programs.
	OpBinImm       // Dst = reg, A = left reg, Aux *ImmInfo: OpConst+OpBinary
	OpBinImmBr     // Dst = reg, A = left reg, B = target pc, Aux *ImmInfo: OpConst+OpBinary+OpBranchFalse
	OpBinSlotImm   // Dst = reg, A = frame slot, Aux *ImmInfo: OpLoadSlot+OpConst+OpBinary
	OpBinSlotImmBr // Dst = reg, A = frame slot, B = target pc, Aux *ImmInfo: OpLoadSlot+OpConst+OpBinary+OpBranchFalse
	OpBinSlots     // Dst = reg, A = left slot, B = right slot, Aux *BinInfo: OpLoadSlot+OpLoadSlot+OpBinary
	OpBinSlotR     // Dst = reg, A = left reg, B = right slot, Aux *BinInfo: OpLoadSlot(right)+OpBinary
	OpBinBr        // Dst = reg, A = left reg, B = right reg, Aux *BinBrInfo: OpBinary+OpBranchFalse
	OpLoadIdx      // Dst = reg, A = base pointer reg, B = index reg: OpLVPtrIndex+OpLVLoad
	OpIncDecSlot   // Dst = reg, A = frame slot, B = ast.UnOp: OpLVSlot+OpIncDec
	OpStoreSlot    // Dst = result reg or -1, A = frame slot, B = value reg, Aux *StoreInfo: OpLVSlot+…+OpStore
	OpAggLit       // Dst = aggregate reg, Aux *AggLit: OpNewAgg + a constant initializer run (nested literals included)
	OpAggDecl      // Dst = -1, A = frame slot, Aux *AggLit: OpDeclare + complete constant OpAggLit + OpStoreDecl
	OpLoadCast     // Dst = reg, A = lvalue reg, Aux = cltypes.Type: OpLVLoad+OpCast
)

// opNames is indexed by Op for String and the opstats histograms.
var opNames = [...]string{
	OpInvalid:          "Invalid",
	OpStep:             "Step",
	OpJump:             "Jump",
	OpBranchFalse:      "BranchFalse",
	OpBoolTest:         "BoolTest",
	OpBoolFin:          "BoolFin",
	OpLoopEnter:        "LoopEnter",
	OpLoopIter:         "LoopIter",
	OpLoopExit:         "LoopExit",
	OpReturn:           "Return",
	OpReturnVoid:       "ReturnVoid",
	OpReturnEnd:        "ReturnEnd",
	OpConst:            "Const",
	OpPredef:           "Predef",
	OpLoadSlot:         "LoadSlot",
	OpLoadGlobal:       "LoadGlobal",
	OpUnary:            "Unary",
	OpDeref:            "Deref",
	OpIncDec:           "IncDec",
	OpAddrLV:           "AddrLV",
	OpAddrElem:         "AddrElem",
	OpPtrAt:            "PtrAt",
	OpBinary:           "Binary",
	OpComma:            "Comma",
	OpCondFin:          "CondFin",
	OpSwizzle:          "Swizzle",
	OpVecLit:           "VecLit",
	OpCast:             "Cast",
	OpConvert:          "Convert",
	OpConvertFree:      "ConvertFree",
	OpIdBuiltin:        "IdBuiltin",
	OpWorkDim:          "WorkDim",
	OpLinearId:         "LinearId",
	OpBarrier:          "Barrier",
	OpCrc64:            "Crc64",
	OpVcrc:             "Vcrc",
	OpAtomic:           "Atomic",
	OpMath:             "Math",
	OpCallPrep:         "CallPrep",
	OpBindArg:          "BindArg",
	OpCall:             "Call",
	OpLVSlot:           "LVSlot",
	OpLVGlobal:         "LVGlobal",
	OpLVDeref:          "LVDeref",
	OpLVPtrIndex:       "LVPtrIndex",
	OpLVIndex:          "LVIndex",
	OpLVArrow:          "LVArrow",
	OpLVMember:         "LVMember",
	OpLVSwizzle:        "LVSwizzle",
	OpLVLoad:           "LVLoad",
	OpStore:            "Store",
	OpDeclare:          "Declare",
	OpStoreDecl:        "StoreDecl",
	OpBindLocal:        "BindLocal",
	OpNewAgg:           "NewAgg",
	OpInitField:        "InitField",
	OpInitUnion:        "InitUnion",
	OpInitStructDefect: "InitStructDefect",
	OpBinImm:           "BinImm",
	OpBinImmBr:         "BinImmBr",
	OpBinSlotImm:       "BinSlotImm",
	OpBinSlotImmBr:     "BinSlotImmBr",
	OpBinSlots:         "BinSlots",
	OpBinSlotR:         "BinSlotR",
	OpBinBr:            "BinBr",
	OpLoadIdx:          "LoadIdx",
	OpIncDecSlot:       "IncDecSlot",
	OpStoreSlot:        "StoreSlot",
	OpAggLit:           "AggLit",
	OpAggDecl:          "AggDecl",
	OpLoadCast:         "LoadCast",
}

// String returns the opcode's mnemonic (e.g. "LoadSlot").
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "Op(" + string('0'+byte(o/100)) + string('0'+byte(o/10%10)) + string('0'+byte(o%10)) + ")"
}

// NumOps is one past the largest opcode value; histogram arrays are
// sized by it.
const NumOps = int(OpLoadCast) + 1

// Instr is one bytecode instruction. Cost is the fuel charged at
// dispatch: the number of tree-walker step() calls the instruction
// stands for (0 for bookkeeping the tree walker performs for free).
type Instr struct {
	Op   Op
	Cost uint8
	Dst  int32
	A, B int32
	Aux  any
}

// ConstVal is a pre-built scalar constant (an IntLit, already truncated
// to its type at lowering time).
type ConstVal struct {
	T *cltypes.Scalar
	V uint64
}

// BinInfo carries a binary operator and its checked result type.
type BinInfo struct {
	Op ast.BinOp
	RT cltypes.Type
}

// ImmInfo is the payload of the immediate-operand superinstructions: the
// fused binary plus the constant right operand (the elided OpConst).
type ImmInfo struct {
	Bin *BinInfo
	T   *cltypes.Scalar
	V   uint64
}

// BinBrInfo is the payload of OpBinBr: the fused binary plus the elided
// OpBranchFalse target.
type BinBrInfo struct {
	Bin    *BinInfo
	Target int32
}

// AggLit is the payload of OpAggLit and OpAggDecl: an aggregate literal
// whose leading run of fields — including whole nested literals — is
// initialized from compile-time constants. Typ is the root aggregate
// type (the elided outermost OpNewAgg's Aux); Ops replays the elided
// initializer instructions in program order against a single cell tree.
// Nested literals are flattened into root-relative paths: the elided
// inner OpNewAgg trees and the deep copies their OpInitFields performed
// are replaced by direct writes into the root tree, which is sound
// because OpInitField's storeCell requires exact type equality and
// copyCell is a structural value copy (the fuser checks the inner
// literal's type against the statically derived kid type and refuses
// the nested form on any mismatch, preserving the unfused error).
type AggLit struct {
	Typ cltypes.Type
	Ops []AggOp
}

// AggOp is one elided initializer action of an AggLit, targeting the
// cell at Path (kid indices from the root). With T non-nil it is a
// scalar constant store — T/V from the elided OpConst, Conv from the
// elided OpConvertFree when one followed — replayed through the same
// storeCell as OpInitField. With Defect set it is an elided
// OpInitStructDefect hook on the aggregate cell at Path; the VM must
// re-check the armed defect set at run time exactly like the standalone
// instruction.
type AggOp struct {
	Path   []int32
	T      *cltypes.Scalar
	V      uint64
	Conv   *cltypes.Scalar
	Defect bool
}

// AggKidType resolves the statically known type of kid index kid of an
// aggregate of type t (nil when t is not an aggregate or kid is out of
// range). It mirrors the cell layout the executor allocates.
func AggKidType(t cltypes.Type, kid int32) cltypes.Type {
	switch tt := t.(type) {
	case *cltypes.StructT:
		if !tt.IsUnion && kid >= 0 && int(kid) < len(tt.Fields) {
			return tt.Fields[kid].Type
		}
	case *cltypes.Array:
		if kid >= 0 && int(kid) < tt.Len {
			return tt.Elem
		}
	}
	return nil
}

// MathInfo identifies a math/safe-math builtin call site.
type MathInfo struct {
	Name string
	RT   cltypes.Type
}

// MemberInfo is a pre-resolved struct member access. Idx is the field
// index when sema recorded one (-1 otherwise, falling back to a by-name
// scan against the runtime struct type, exactly like the tree walker).
type MemberInfo struct {
	Idx  int32
	Name string
}

// StoreInfo is the static shape of an assignment: the operator plus the
// two syntactic defect-model triggers of Figures 1(d)/2(c) (a store
// through a dereferenced pointer parameter, or through an arrow member
// of a pointer parameter). The triggers are purely syntactic — the
// defect models key on the parameter name of the enclosing function —
// so the lowerer resolves them once instead of re-walking the LHS on
// every store.
type StoreInfo struct {
	Op         ast.AssignOp
	DerefParam bool
	ArrowParam bool
}

// LoopExit describes the Figure 2(d) dead-loop-with-barrier defect for
// one for loop whose body contains a barrier and whose init clause is a
// plain assignment: when the loop executes zero iterations on a
// non-leader thread of an armed configuration, the init destination is
// clobbered to 1. Slot is the frame slot of the destination variable
// (or -1), Global the program-global index (or -1). Arrow marks the
// `v->field = …` init shape (the Figure 2(d) exhibit itself): the
// variable holds a struct pointer and Field/Name resolve the member at
// runtime, mirroring the tree walker's swallowed evalLV — including its
// one fuel charge for the variable evaluation.
type LoopExit struct {
	Slot   int32
	Global int32
	Arrow  bool
	Field  int32
	Name   string
}

// Fn is the lowered form of one function: a flat instruction slice over
// a register frame. NumRegs/NumLVs/NumSlots size the frame's value
// registers, lvalue registers, and variable slots. Idx is the function's
// position in Program.Fns — a lowering-time constant the executor's edge
// coverage uses to key (function, branch pc, target pc) triples stably
// across processes.
type Fn struct {
	Name     string
	Decl     *ast.FuncDecl
	Code     []Instr
	Idx      int32
	NumRegs  int
	NumLVs   int
	NumSlots int
}

// Program is the lowered form of a checked program: one Fn per defined
// function, with calls pre-resolved to Fns indices and global references
// pre-resolved to indices into the AST program's Globals list. The
// program is read-only after Lower returns: like the checked AST it is
// derived from, one lowered program may be shared by any number of
// configurations and concurrent launches.
type Program struct {
	Fns    []*Fn
	Kernel int // index of the kernel in Fns
}
