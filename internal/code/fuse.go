package code

import (
	"sync/atomic"

	"clfuzz/internal/cltypes"
)

// Fuse derives the fuel/v2 form of a lowered program: a peephole pass
// replaces the measured hot instruction sequences with the
// superinstructions declared in code.go, bookkeeping OpSteps are
// deleted, and a register coalescing pass renumbers the surviving
// value/lvalue registers densely to shrink the frame. Fuel charging
// collapses to one decrement and one abort poll per dispatched
// superinstruction, but the charge amounts are conserved exactly: each
// superinstruction charges the summed Cost of the sequence it
// replaces, and a deleted instruction's charge folds forward into the
// next emitted instruction (only where fall-through alone reaches it,
// so totals match on every control path). Fuel totals therefore equal
// fuel/v1's, and a fuel/v2 timeout fires at the same superinstruction
// the v1 timeout would have landed inside — same outcome, same bounded
// real work — the only divergence being the partially-executed
// sequence's buffer contents at the moment of death. The input program
// is never mutated: like the lowered program itself, the fused copy is
// immutable and may be shared by any number of concurrent launches.
//
// Soundness leans on two invariants of the lowerer. First, expression
// temporaries follow a stack discipline: every value-register read is
// dominated by that register's own write within the same expression, so
// eliding a fused producer's write is unobservable once its sole
// consumer is fused with it. Second, jumps only target statement or
// expression boundaries; the fuser additionally refuses any pattern
// whose non-first instruction is a jump target, so no control path can
// enter the middle of a fused sequence.
//
// Defect-model hooks are preserved structurally: OpStoreSlot carries
// the original *StoreInfo verbatim (the store defect and compound
// operator run exactly as in OpStore), and stores through pointer or
// arrow lvalues — the shapes whose StoreInfo triggers fire — are never
// fused because their LHS is not an OpLVSlot.
func Fuse(p *Program) *Program {
	fns := make([]*Fn, len(p.Fns))
	var in, out int64
	for i, f := range p.Fns {
		nf := fuseFn(f)
		coalesceFn(nf)
		in += int64(len(f.Code))
		out += int64(len(nf.Code))
		fns[i] = nf
	}
	fusedPrograms.Add(1)
	fusedInstrsIn.Add(in)
	fusedInstrsOut.Add(out)
	return &Program{Fns: fns, Kernel: p.Kernel}
}

var fusedPrograms, fusedInstrsIn, fusedInstrsOut atomic.Int64

// FuseStats reports process-wide fusion counters: programs fused, and
// total instructions before and after fusion (the static reduction).
func FuseStats() (programs, before, after int64) {
	return fusedPrograms.Load(), fusedInstrsIn.Load(), fusedInstrsOut.Load()
}

// storeWindow bounds the forward scan from an OpLVSlot to its matching
// OpStore; stores whose right-hand side lowers to more instructions than
// this stay unfused.
const storeWindow = 32

// maxCost caps a single instruction's fuel charge (Cost is a uint8).
// Fusions and charge folds that would overflow it are refused — the
// instructions simply stay unfused, which is always sound.
const maxCost = 255

func fuseFn(f *Fn) *Fn {
	ins := f.Code
	jt := jumpTargets(ins)
	del, storeFuse := planStoreFusion(ins)

	out := make([]Instr, 0, len(ins))
	pcMap := make([]int32, len(ins)+1)
	// pending carries the fuel charges of deleted instructions forward
	// into the next emitted instruction, so the fused program's charge
	// totals match the unfused program's exactly along every control
	// path — which is what makes fuel/v2 timeouts bound the same real
	// work as fuel/v1 timeouts.
	pending := 0
	// sumCost totals the charges of a consumed instruction range plus
	// whatever is pending; a -1 return means the fold would overflow
	// Cost and the caller must keep the instructions unfused.
	sumCost := func(lo, hi int) int {
		c := pending
		for q := lo; q < hi; q++ {
			c += int(ins[q].Cost)
		}
		if c > maxCost {
			return -1
		}
		return c
	}
	// foldable reports whether deleting ins[p] keeps charging exact:
	// the charge moves forward to the next emitted instruction, so every
	// v1 path that reaches that instruction must have executed ins[p] —
	// fall-through only, no jump target strictly after p up to and
	// including the fold point.
	foldable := func(p int) bool {
		q := p + 1
		for q < len(ins) && (del[q] || ins[q].Op == OpStep) {
			if jt[q] {
				return false
			}
			q++
		}
		return q < len(ins) && !jt[q]
	}
	p := 0
	for p < len(ins) {
		pcMap[p] = int32(len(out))
		in := ins[p]
		if del[p] || in.Op == OpStep {
			if c := sumCost(p, p+1); c >= 0 && foldable(p) {
				pending = c
				p++
				continue
			}
			// Unsafe (or overflowing) fold: keep the instruction as a
			// charge carrier. A retained OpLVSlot is harmless — the
			// rewritten OpStoreSlot never reads its register.
			if c := sumCost(p, p+1); c >= 0 {
				in.Cost = uint8(c)
				pending = 0
			}
			out = append(out, in)
			p++
			continue
		}
		if slot, ok := storeFuse[p]; ok {
			if c := sumCost(p, p+1); c >= 0 {
				out = append(out, Instr{Op: OpStoreSlot, Cost: uint8(c), Dst: in.Dst, A: slot, B: in.B, Aux: in.Aux})
				pending = 0
				p++
				continue
			}
		}
		if n, fused, ok := matchFusion(ins, p, jt, del); ok {
			if c := sumCost(p, p+n); c >= 0 {
				for k := 1; k < n; k++ {
					pcMap[p+k] = int32(len(out))
				}
				fused.Cost = uint8(c)
				out = append(out, fused)
				pending = 0
				p += n
				continue
			}
		}
		if c := sumCost(p, p+1); c >= 0 {
			in.Cost = uint8(c)
			pending = 0
		}
		out = append(out, in)
		p++
	}
	pcMap[len(ins)] = int32(len(out))

	// Remap every jump-target field to the new pc space.
	for i := range out {
		switch out[i].Op {
		case OpJump, OpBranchFalse, OpBoolTest:
			out[i].A = pcMap[out[i].A]
		case OpBinImmBr, OpBinSlotImmBr:
			out[i].B = pcMap[out[i].B]
		case OpBinBr:
			bb := out[i].Aux.(*BinBrInfo)
			bb.Target = pcMap[bb.Target] // aux allocated by this pass; safe to fix up
		}
	}

	return &Fn{
		Name: f.Name, Decl: f.Decl, Code: out, Idx: f.Idx,
		NumRegs: f.NumRegs, NumLVs: f.NumLVs, NumSlots: f.NumSlots,
	}
}

// jumpTargets marks every pc some instruction can jump to. Only three
// lowered ops carry pc targets; the Br superinstructions do not exist
// before fusion.
func jumpTargets(ins []Instr) []bool {
	jt := make([]bool, len(ins)+1)
	for i := range ins {
		switch ins[i].Op {
		case OpJump, OpBranchFalse, OpBoolTest:
			jt[ins[i].A] = true
		}
	}
	return jt
}

// planStoreFusion finds OpLVSlot instructions whose captured lvalue is
// consumed by exactly one OpStore a bounded window later, with nothing
// in between touching the lvalue register or rebinding the slot's cell.
// Those OpLVSlots are deleted and the stores rewritten to OpStoreSlot,
// which re-reads the frame slot at store time — equivalent because a
// frame slot's cell identity only changes at OpDeclare/OpBindLocal and
// the window excludes both (for the stored-to slot). Jumps into the
// window are harmless: the fused store no longer reads the lvalue
// register, and the deleted OpLVSlot's pc remaps to the next retained
// instruction.
func planStoreFusion(ins []Instr) (del []bool, storeFuse map[int]int32) {
	del = make([]bool, len(ins))
	storeFuse = make(map[int]int32)
	for p := range ins {
		if ins[p].Op != OpLVSlot {
			continue
		}
		lvReg, slot := ins[p].Dst, ins[p].A
		limit := p + storeWindow
		if limit > len(ins)-1 {
			limit = len(ins) - 1
		}
		for q := p + 1; q <= limit; q++ {
			qi := &ins[q]
			switch qi.Op {
			case OpDeclare, OpBindLocal:
				if qi.A == slot {
					q = limit // cell identity changes; give up
					continue
				}
			case OpReturn, OpReturnVoid, OpReturnEnd:
				q = limit
				continue
			}
			if !touchesLVReg(qi, lvReg) {
				continue
			}
			if qi.Op == OpStore && qi.A == lvReg {
				del[p] = true
				storeFuse[q] = slot
			}
			break
		}
	}
	return del, storeFuse
}

// touchesLVReg reports whether in reads or writes lvalue register lv.
func touchesLVReg(in *Instr, lv int32) bool {
	switch in.Op {
	case OpLVSlot, OpLVGlobal, OpLVDeref, OpLVPtrIndex, OpLVArrow:
		return in.Dst == lv
	case OpLVIndex, OpLVMember, OpLVSwizzle:
		return in.Dst == lv || in.A == lv
	case OpIncDec, OpAddrLV, OpAddrElem, OpLVLoad, OpStore:
		return in.A == lv
	}
	return false
}

// maxAggDepth bounds matchAggLit's recursion over nested literals.
const maxAggDepth = 16

// matchAggLit scans the constant initializer run of the aggregate
// literal rooted at ins[p] (an OpNewAgg of type typ writing register
// ra): scalar constants (OpConst [+ OpConvertFree] + OpInitField),
// OpInitStructDefect hooks on the literal itself, and whole nested
// constant literals, which are flattened into root-relative cell paths.
// It returns the instruction count consumed (including the OpNewAgg)
// and the elided initializer actions in program order; the scan stops —
// returning the prefix — at the first instruction that is not part of
// the constant run, is a jump target, or is scheduled for deletion.
//
// A nested literal is consumed only when its own run covered every
// instruction up to the OpInitField that stores it into this literal
// and the statically derived kid type equals the inner OpNewAgg's type
// (OpInitField's storeCell requires exact equality; on mismatch the
// sequence stays unfused so the original error is preserved). ancestors
// carries the enclosing literals' aggregate registers: any constituent
// register colliding with a live ancestor would make eliding its write
// observable, so such runs stay unfused (the lowerer's stack discipline
// never produces them).
func matchAggLit(ins []Instr, p int, jt, del []bool, typ cltypes.Type, ra int32, ancestors []int32, depth int) (int, []AggOp) {
	ok := func(q int) bool { return q < len(ins) && !jt[q] && !del[q] }
	clash := func(r int32) bool {
		if r == ra {
			return true
		}
		for _, a := range ancestors {
			if r == a {
				return true
			}
		}
		return false
	}
	var ops []AggOp
	q := p + 1
scan:
	for ok(q) {
		switch in := &ins[q]; in.Op {
		case OpConst:
			rc := in.Dst
			cv := in.Aux.(*ConstVal)
			if clash(rc) || cv.T == nil {
				break scan
			}
			r := q + 1
			var conv *cltypes.Scalar
			if ok(r) && ins[r].Op == OpConvertFree && ins[r].Dst == rc {
				conv = ins[r].Aux.(*cltypes.Scalar)
				r++
			}
			if !ok(r) || ins[r].Op != OpInitField || ins[r].A != ra || ins[r].B != rc {
				break scan
			}
			ops = append(ops, AggOp{Path: []int32{ins[r].Dst}, T: cv.T, V: cv.V, Conv: conv})
			q = r + 1
		case OpInitStructDefect:
			if in.A != ra {
				break scan
			}
			ops = append(ops, AggOp{Defect: true})
			q++
		case OpNewAgg:
			rb := in.Dst
			bt, isType := in.Aux.(cltypes.Type)
			if clash(rb) || !isType || depth >= maxAggDepth {
				break scan
			}
			n, kidOps := matchAggLit(ins, q, jt, del, bt, rb, append(ancestors, ra), depth+1)
			r := q + n
			if len(kidOps) == 0 || !ok(r) || ins[r].Op != OpInitField || ins[r].A != ra || ins[r].B != rb {
				break scan
			}
			kid := ins[r].Dst
			if kt := AggKidType(typ, kid); kt == nil || !kt.Equal(bt) {
				break scan
			}
			for i := range kidOps {
				kidOps[i].Path = append([]int32{kid}, kidOps[i].Path...)
			}
			ops = append(ops, kidOps...)
			q = r + 1
		default:
			break scan
		}
	}
	return q - p, ops
}

// matchFusion tries the adjacency patterns at pc p, longest first, and
// returns the consumed length and the superinstruction on a match. Every
// non-first pc of a candidate must not be a jump target (no control path
// may enter mid-pattern) and must not be scheduled for deletion.
func matchFusion(ins []Instr, p int, jt, del []bool) (int, Instr, bool) {
	clear := func(n int) bool {
		if p+n > len(ins) {
			return false
		}
		for k := 1; k < n; k++ {
			if jt[p+k] || del[p+k] {
				return false
			}
		}
		return true
	}
	in := &ins[p]
	switch in.Op {
	case OpLoadSlot:
		// LoadSlot + Const + Binary (+ BranchFalse): the `i < N` loop
		// condition shape — the hottest sequence in the opstats data.
		if clear(3) && ins[p+1].Op == OpConst && ins[p+2].Op == OpBinary {
			bin := &ins[p+2]
			if bin.A == in.Dst && bin.B == ins[p+1].Dst && in.Dst != ins[p+1].Dst {
				cv := ins[p+1].Aux.(*ConstVal)
				imm := &ImmInfo{Bin: bin.Aux.(*BinInfo), T: cv.T, V: cv.V}
				if clear(4) && ins[p+3].Op == OpBranchFalse && ins[p+3].Dst == bin.Dst {
					return 4, Instr{Op: OpBinSlotImmBr, Dst: bin.Dst, A: in.A, B: ins[p+3].A, Aux: imm}, true
				}
				return 3, Instr{Op: OpBinSlotImm, Dst: bin.Dst, A: in.A, Aux: imm}, true
			}
		}
		// LoadSlot + LoadSlot + Binary: var OP var.
		if clear(3) && ins[p+1].Op == OpLoadSlot && ins[p+2].Op == OpBinary {
			bin := &ins[p+2]
			if bin.A == in.Dst && bin.B == ins[p+1].Dst && in.Dst != ins[p+1].Dst {
				return 3, Instr{Op: OpBinSlots, Dst: bin.Dst, A: in.A, B: ins[p+1].A, Aux: bin.Aux}, true
			}
		}
		// LoadSlot + Binary with the load feeding the right operand:
		// expr OP var.
		if clear(2) && ins[p+1].Op == OpBinary {
			bin := &ins[p+1]
			if bin.B == in.Dst && bin.A != in.Dst {
				return 2, Instr{Op: OpBinSlotR, Dst: bin.Dst, A: bin.A, B: in.A, Aux: bin.Aux}, true
			}
		}
	case OpConst:
		// Const + Binary (+ BranchFalse): expr OP literal.
		if clear(2) && ins[p+1].Op == OpBinary {
			bin := &ins[p+1]
			if bin.B == in.Dst && bin.A != in.Dst {
				cv := in.Aux.(*ConstVal)
				imm := &ImmInfo{Bin: bin.Aux.(*BinInfo), T: cv.T, V: cv.V}
				if clear(3) && ins[p+2].Op == OpBranchFalse && ins[p+2].Dst == bin.Dst {
					return 3, Instr{Op: OpBinImmBr, Dst: bin.Dst, A: bin.A, B: ins[p+2].A, Aux: imm}, true
				}
				return 2, Instr{Op: OpBinImm, Dst: bin.Dst, A: bin.A, Aux: imm}, true
			}
		}
	case OpBinary:
		// Binary + BranchFalse: compare-and-branch.
		if clear(2) && ins[p+1].Op == OpBranchFalse && ins[p+1].Dst == in.Dst {
			return 2, Instr{Op: OpBinBr, Dst: in.Dst, A: in.A, B: in.B,
				Aux: &BinBrInfo{Bin: in.Aux.(*BinInfo), Target: ins[p+1].A}}, true
		}
	case OpDeclare:
		// Declare + complete constant literal + StoreDecl: the generator's
		// module-state initializer (`struct S s = {...};`) — the hottest
		// allocation site in the opstats data. The fused form writes the
		// constants straight into the cell tree OpDeclare allocates,
		// eliding the literal's entire temporary tree and the StoreDecl
		// deep copy. Sound only when the scan consumed the whole literal
		// (StoreDecl immediately follows) and the declared type equals
		// the literal's (otherwise StoreDecl's storeCell would have
		// errored; stay unfused to preserve that).
		if clear(2) && ins[p+1].Op == OpNewAgg {
			dt, ok := in.Aux.(cltypes.Type)
			lt, ok2 := ins[p+1].Aux.(cltypes.Type)
			if ok && ok2 && dt.Equal(lt) {
				ra := ins[p+1].Dst
				n, ops := matchAggLit(ins, p+1, jt, del, lt, ra, nil, 0)
				r := p + 1 + n
				if len(ops) > 0 && r < len(ins) && !jt[r] && !del[r] &&
					ins[r].Op == OpStoreDecl && ins[r].A == in.A && ins[r].B == ra {
					return r + 1 - p, Instr{Op: OpAggDecl, Dst: -1, A: in.A,
						Aux: &AggLit{Typ: dt, Ops: ops}}, true
				}
			}
		}
	case OpNewAgg:
		// A constant literal run not consumed by the OpDeclare form above:
		// fuse the prefix into OpAggLit. The scan stops at the first
		// initializer that is not a compile-time constant (or at a jump
		// target / deleted pc) and fuses whatever run it found; the
		// remaining initializer instructions still read the aggregate
		// register OpAggLit writes.
		if n, ops := matchAggLit(ins, p, jt, del, in.Aux.(cltypes.Type), in.Dst, nil, 0); len(ops) > 0 {
			return n, Instr{Op: OpAggLit, Dst: in.Dst,
				Aux: &AggLit{Typ: in.Aux.(cltypes.Type), Ops: ops}}, true
		}
	case OpLVLoad:
		// LVLoad + Cast over the same register: loads feeding an explicit
		// cast (the checksum accumulation shape). OpCast converts its Dst
		// register in place, so the pair only fuses when the cast reads
		// the register the load just wrote.
		if clear(2) && ins[p+1].Op == OpCast && ins[p+1].Dst == in.Dst {
			return 2, Instr{Op: OpLoadCast, Dst: in.Dst, A: in.A, Aux: ins[p+1].Aux}, true
		}
	case OpLVPtrIndex:
		// LVPtrIndex + LVLoad: indexed flat-buffer read.
		if clear(2) && ins[p+1].Op == OpLVLoad && ins[p+1].A == in.Dst {
			return 2, Instr{Op: OpLoadIdx, Dst: ins[p+1].Dst, A: in.A, B: in.B}, true
		}
	case OpLVSlot:
		// LVSlot + IncDec: i++ / i-- on a plain variable.
		if clear(2) && ins[p+1].Op == OpIncDec && ins[p+1].A == in.Dst {
			return 2, Instr{Op: OpIncDecSlot, Dst: ins[p+1].Dst, A: in.A, B: ins[p+1].B}, true
		}
	}
	return 0, Instr{}, false
}
