// Package code lowers the checked (and optimized) kernel AST into a
// flat, read-only register bytecode — the compile-once artifact the
// executor's VM dispatch loop runs instead of walking the tree.
//
// # Position in the pipeline
//
// Lowering sits between internal/opt and internal/exec: the device
// layer's BackCache lowers each distinct folded/optimized program once
// (alongside the checked kernel, under the same staged keys) and shares
// the resulting code.Program with every configuration and concurrent
// launch whose defect model compiles the source identically. Like the
// AST it is derived from, a lowered program is immutable: Lower never
// writes to the input tree, and the VM never writes to the bytecode.
//
// # The contract with the tree walker
//
// The tree-walking evaluator in internal/exec remains the semantics
// reference; the bytecode engine must be byte-identical to it, outcome
// and output, across the whole defect-model matrix. Two properties make
// that hold by construction:
//
//   - One instruction per evaluation step. Every AST-node evaluation the
//     tree walker charges fuel for lowers to exactly one instruction with
//     Cost 1 (statement charges fold into the statement's first
//     instruction); bookkeeping the tree walker performs for free —
//     lvalue resolution, jumps, scope entry — lowers to Cost-0
//     instructions. Fuel totals, and therefore Timeout outcomes, are
//     identical on every execution path, including the do-while loop's
//     double condition evaluation.
//
//   - Pre-resolved operands, runtime-checked defects. Names resolve at
//     lowering time to frame slots and program-global indices (no scope
//     scan, no VarRef slot cache), struct members to field indices, and
//     calls to function indices; but every defect model keeps its runtime
//     half — the lowered StoreInfo records only the syntactic trigger
//     shape (deref-of-parameter, arrow-of-parameter), while the defect
//     set, hash gates, thread id and barrier history are consulted by the
//     VM at execution time, exactly like the tree walk. One lowered
//     program therefore serves every defect model that shares the checked
//     program.
//
// Lowering is total over the generator's subset. A construct it cannot
// express returns an error and the kernel simply runs on the tree
// engine — a per-program fallback that preserves byte-identical campaign
// output, since the engines agree wherever both run. The
// FuzzLowerMatchesTree target and the engine-determinism suites pin the
// equivalence continuously.
//
// # The fuel/v2 pass pipeline
//
// The one-instruction-per-step discipline above is what makes fuel/v1
// tree-exact — and what seems to forbid fusing instructions. The
// fuel/v2 model keeps the totals but batches the charging: each
// superinstruction charges the summed Cost of the sequence it replaces
// in a single decrement (deleted instructions fold their charge into
// the next emitted one, only where fall-through alone reaches it), so
// fuel totals — and Timeout outcomes — still match fuel/v1 on every
// path, while dispatch and abort polling drop to once per
// superinstruction. Two extra passes run over the lowered program when
// a launch selects the model (device.Kernel memoizes the result):
//
//	Lower  →  Fuse (peephole superinstructions, OpStep deletion)
//	       →  coalesce (dense register renumbering, frame shrink)
//
// Fuse replaces the measured hot sequences with the superinstruction
// opcodes declared in code.go — compare-and-branch, immediate-operand
// binaries, slot loads feeding binaries, load-through-pointer, slot
// stores, load-then-cast, and whole constant aggregate literals
// (OpAggLit/OpAggDecl, which also elide the literals' temporary cell
// trees and deep copies). Outputs are identical to fuel/v1 except when
// a timeout interrupts a fused sequence mid-flight (the superinstruction
// is atomic, so the partial buffer state at death can differ);
// FuzzFuseMatchesUnfused pins the equivalence continuously.
package code
