package code

import (
	"fmt"
	"strings"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
)

// Lower compiles a checked (and possibly optimized) program into the
// register bytecode. The input AST is read-only — lowering never writes
// to it — so the same checked program may be lowered while other
// goroutines execute it.
//
// Lowering is total over the generator's subset; a construct the lowerer
// cannot express (or one the tree walker would reject at runtime anyway)
// returns an error, and callers fall back to the tree-walking engine for
// that program. Fuel accounting is mirrored instruction by instruction:
// each Instr's Cost is the number of tree-walker step() calls it stands
// for, so Timeout outcomes are identical between the engines.
func Lower(prog *ast.Program) (p *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if lf, ok := r.(lowerFail); ok {
				p, err = nil, fmt.Errorf("code: %s", string(lf))
				return
			}
			panic(r)
		}
	}()
	l := &lowerer{
		prog:    prog,
		fnIdx:   map[string]int{},
		globals: map[string]int{},
	}
	for i, g := range prog.Globals {
		l.globals[g.Name] = i // later declarations shadow, like the globals map
	}
	out := &Program{Kernel: -1}
	for _, f := range prog.Funcs {
		if f.Body == nil {
			continue
		}
		l.fnIdx[f.Name] = len(out.Fns) // last definition wins, like Machine.funcs
		out.Fns = append(out.Fns, nil) // reserve the index for recursion
	}
	for _, f := range prog.Funcs {
		if f.Body == nil {
			continue
		}
		fn := l.lowerFn(f)
		fn.Idx = int32(l.fnIdx[f.Name])
		out.Fns[l.fnIdx[f.Name]] = fn
		if f.IsKernel && out.Kernel < 0 {
			out.Kernel = l.fnIdx[f.Name]
		}
	}
	if out.Kernel < 0 {
		return nil, fmt.Errorf("code: program has no kernel")
	}
	return out, nil
}

// lowerFail aborts lowering via panic; Lower recovers it into an error.
type lowerFail string

func fail(format string, args ...any) {
	panic(lowerFail(fmt.Sprintf(format, args...)))
}

type lowerer struct {
	prog    *ast.Program
	fnIdx   map[string]int
	globals map[string]int
}

// binding is one statically resolved name in a lexical scope.
type binding struct {
	name string
	slot int32
}

// loopCtx collects the jump patches of one enclosing loop.
type loopCtx struct {
	breaks    []int // patch to the OpLoopExit pc
	continues []int // patch to the continue target
}

type fnLowerer struct {
	l      *lowerer
	decl   *ast.FuncDecl
	code   []Instr
	scopes [][]binding
	params map[string]bool
	loops  []loopCtx

	slots  int32
	regMax int32
	lvMax  int32
	lvTop  int32
}

func (l *lowerer) lowerFn(f *ast.FuncDecl) *Fn {
	fl := &fnLowerer{l: l, decl: f, params: map[string]bool{}}
	fl.pushScope() // the function frame: parameters
	for _, p := range f.Params {
		s := fl.newSlot()
		fl.bind(p.Name, s)
		fl.params[p.Name] = true
	}
	fl.pushScope() // the body block scope
	for _, s := range f.Body.Stmts {
		fl.lowerStmt(s)
	}
	fl.popScope()
	fl.popScope()
	fl.emit(Instr{Op: OpReturnEnd})
	return &Fn{
		Name:     f.Name,
		Decl:     f,
		Code:     fl.code,
		NumRegs:  int(fl.regMax),
		NumLVs:   int(fl.lvMax),
		NumSlots: int(fl.slots),
	}
}

// ---- emission helpers ----

func (fl *fnLowerer) emit(in Instr) int {
	fl.code = append(fl.code, in)
	return len(fl.code) - 1
}

func (fl *fnLowerer) patch(pc int) { fl.code[pc].A = int32(len(fl.code)) }

func (fl *fnLowerer) here() int32 { return int32(len(fl.code)) }

// reg notes that value register r is in use, growing the frame size.
func (fl *fnLowerer) reg(r int32) int32 {
	if r+1 > fl.regMax {
		fl.regMax = r + 1
	}
	return r
}

// allocLV reserves the next lvalue register.
func (fl *fnLowerer) allocLV() int32 {
	v := fl.lvTop
	fl.lvTop++
	if fl.lvTop > fl.lvMax {
		fl.lvMax = fl.lvTop
	}
	return v
}

func (fl *fnLowerer) freeLV() { fl.lvTop-- }

func (fl *fnLowerer) newSlot() int32 {
	s := fl.slots
	fl.slots++
	return s
}

func (fl *fnLowerer) pushScope() { fl.scopes = append(fl.scopes, nil) }
func (fl *fnLowerer) popScope()  { fl.scopes = fl.scopes[:len(fl.scopes)-1] }

func (fl *fnLowerer) bind(name string, slot int32) {
	top := len(fl.scopes) - 1
	fl.scopes[top] = append(fl.scopes[top], binding{name: name, slot: slot})
}

// resolve finds the frame slot of a name (newest binding first, mirroring
// the evaluator's scope scan), or the program-global index.
func (fl *fnLowerer) resolve(name string) (slot int32, global int32, ok bool) {
	for si := len(fl.scopes) - 1; si >= 0; si-- {
		sc := fl.scopes[si]
		for i := len(sc) - 1; i >= 0; i-- {
			if sc[i].name == name {
				return sc[i].slot, -1, true
			}
		}
	}
	if gi, gok := fl.l.globals[name]; gok {
		return -1, int32(gi), true
	}
	return -1, -1, false
}

// ---- statements ----

// lowerStmt lowers one statement and folds the execStmt fuel charge (plus
// the extra statement-position assignment charge) into the first emitted
// instruction, preserving the tree walker's exact fuel totals.
func (fl *fnLowerer) lowerStmt(s ast.Stmt) {
	start := len(fl.code)
	bump := uint8(1)
	switch st := s.(type) {
	case *ast.DeclStmt:
		fl.lowerDecl(st.Decl)
	case *ast.ExprStmt:
		if asn, ok := st.X.(*ast.AssignExpr); ok {
			bump = 2 // execStmt charge + the step evalExpr would have charged
			fl.lowerAssign(asn, 0, true)
		} else {
			fl.lowerExpr(st.X, fl.reg(0))
		}
	case *ast.Block:
		fl.emit(Instr{Op: OpStep})
		fl.pushScope()
		for _, inner := range st.Stmts {
			fl.lowerStmt(inner)
		}
		fl.popScope()
	case *ast.If:
		fl.lowerExpr(st.Cond, fl.reg(0))
		br := fl.emit(Instr{Op: OpBranchFalse, Dst: 0})
		fl.pushScope()
		for _, inner := range st.Then.Stmts {
			fl.lowerStmt(inner)
		}
		fl.popScope()
		if st.Else != nil {
			j := fl.emit(Instr{Op: OpJump})
			fl.patch(br)
			fl.lowerStmt(st.Else)
			fl.patch(j)
		} else {
			fl.patch(br)
		}
	case *ast.For:
		fl.lowerFor(st)
	case *ast.While:
		fl.lowerLoop(nil, st.Cond, nil, st.Body, false, nil)
	case *ast.DoWhile:
		fl.lowerLoop(nil, st.Cond, nil, st.Body, true, nil)
	case *ast.Break:
		if len(fl.loops) == 0 {
			fail("break outside loop")
		}
		top := len(fl.loops) - 1
		fl.loops[top].breaks = append(fl.loops[top].breaks, fl.emit(Instr{Op: OpJump}))
	case *ast.Continue:
		if len(fl.loops) == 0 {
			fail("continue outside loop")
		}
		top := len(fl.loops) - 1
		fl.loops[top].continues = append(fl.loops[top].continues, fl.emit(Instr{Op: OpJump}))
	case *ast.Return:
		if st.X != nil {
			fl.lowerExpr(st.X, fl.reg(0))
			fl.emit(Instr{Op: OpReturn, A: 0})
		} else {
			fl.emit(Instr{Op: OpReturnVoid})
		}
	case *ast.Empty:
		fl.emit(Instr{Op: OpStep})
	default:
		fail("unknown statement %T", s)
	}
	fl.code[start].Cost += bump
}

func (fl *fnLowerer) lowerFor(st *ast.For) {
	if _, isDecl := st.Init.(*ast.DeclStmt); isDecl {
		fl.pushScope()
		defer fl.popScope()
	}
	if st.Init != nil {
		fl.lowerStmt(st.Init)
	} else {
		// No init clause: the For statement's charge still needs a first
		// instruction; OpLoopEnter takes it via the caller's bump.
	}
	fl.lowerLoop(st, st.Cond, st.Post, st.Body, false, fl.deadLoopInfo(st))
}

// lowerLoop emits the shared loop protocol, mirroring execLoopBody:
//
//	OpLoopEnter
//	L: [cond] BranchFalse->X  (do-while: first iteration skips this)
//	   OpLoopIter              (the per-iteration step charge)
//	   body
//	C: [post] Jump L           (do-while: cond twice, as the tree does)
//	X: OpLoopExit
func (fl *fnLowerer) lowerLoop(forNode *ast.For, cond ast.Expr, post ast.Expr, body *ast.Block, doFirst bool, le *LoopExit) {
	fl.emit(Instr{Op: OpLoopEnter})
	fl.loops = append(fl.loops, loopCtx{})
	var exits []int
	var contTarget int32
	if doFirst {
		top := fl.here()
		fl.emit(Instr{Op: OpLoopIter, Cost: 1})
		fl.pushScope()
		for _, inner := range body.Stmts {
			fl.lowerStmt(inner)
		}
		fl.popScope()
		// The tree walker's loop protocol evaluates a do-while condition
		// at the loop bottom and then again at the loop top; both
		// evaluations (and their fuel) are replicated here.
		contTarget = fl.here()
		if cond != nil {
			fl.lowerExpr(cond, fl.reg(0))
			exits = append(exits, fl.emit(Instr{Op: OpBranchFalse, Dst: 0}))
			fl.lowerExpr(cond, fl.reg(0))
			exits = append(exits, fl.emit(Instr{Op: OpBranchFalse, Dst: 0}))
		}
		fl.emit(Instr{Op: OpJump, A: top})
	} else {
		top := fl.here()
		if cond != nil {
			fl.lowerExpr(cond, fl.reg(0))
			exits = append(exits, fl.emit(Instr{Op: OpBranchFalse, Dst: 0}))
		}
		fl.emit(Instr{Op: OpLoopIter, Cost: 1})
		fl.pushScope()
		for _, inner := range body.Stmts {
			fl.lowerStmt(inner)
		}
		fl.popScope()
		contTarget = fl.here()
		if post != nil {
			fl.lowerExpr(post, fl.reg(0))
		}
		fl.emit(Instr{Op: OpJump, A: top})
	}
	exitPC := fl.here()
	var aux any
	if le != nil {
		aux = le
	}
	fl.emit(Instr{Op: OpLoopExit, Aux: aux})
	lc := fl.loops[len(fl.loops)-1]
	fl.loops = fl.loops[:len(fl.loops)-1]
	for _, pc := range exits {
		fl.code[pc].A = exitPC
	}
	for _, pc := range lc.breaks {
		fl.code[pc].A = exitPC
	}
	for _, pc := range lc.continues {
		fl.code[pc].A = contTarget
	}
}

// deadLoopInfo resolves the Figure 2(d) dead-loop-with-barrier defect
// shape for a for loop: a body containing a barrier and an init clause
// that is a plain assignment. The destination must be a statically
// resolvable variable (the only shape the generator emits); anything else
// aborts lowering and the program runs on the tree engine.
func (fl *fnLowerer) deadLoopInfo(st *ast.For) *LoopExit {
	es, ok := st.Init.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	asn, ok := es.X.(*ast.AssignExpr)
	if !ok {
		return nil
	}
	if !ContainsBarrier(st.Body) {
		return nil
	}
	var vr *ast.VarRef
	le := &LoopExit{}
	switch lhs := asn.LHS.(type) {
	case *ast.VarRef:
		vr = lhs
	case *ast.Member:
		base, ok := lhs.Base.(*ast.VarRef)
		if !ok || !lhs.Arrow {
			fail("dead-loop defect init assigns an inexpressible lvalue")
		}
		vr = base
		le.Arrow = true
		le.Field = int32(lhs.FieldIdx) - 1
		le.Name = lhs.Name
	default:
		fail("dead-loop defect init assigns an inexpressible lvalue")
	}
	slot, global, ok := fl.resolve(vr.Name)
	if !ok {
		fail("undefined variable %q", vr.Name)
	}
	le.Slot, le.Global = slot, global
	return le
}

func (fl *fnLowerer) lowerDecl(d *ast.VarDecl) {
	slot := fl.newSlot()
	if d.Space == cltypes.Local {
		fl.emit(Instr{Op: OpBindLocal, A: slot, Aux: d})
		fl.bind(d.Name, slot)
		return
	}
	fl.emit(Instr{Op: OpDeclare, A: slot, Aux: d.Type})
	if d.Init != nil {
		fl.lowerInit(d.Type, d.Init, fl.reg(0))
		fl.emit(Instr{Op: OpStoreDecl, A: slot, B: 0})
	}
	// The name binds after its initializer runs, like the evaluator's
	// define-after-evalInit order: `int x = x;` reads the outer x.
	fl.bind(d.Name, slot)
}

// lowerInit lowers an initializer (possibly a braced aggregate list)
// against the declared type, mirroring evalInit: aggregate cells are
// built with zero-cost ops, element expressions charge their own fuel.
func (fl *fnLowerer) lowerInit(typ cltypes.Type, init ast.Expr, dst int32) {
	il, ok := init.(*ast.InitList)
	if !ok {
		fl.lowerExpr(init, dst)
		if s, ok := typ.(*cltypes.Scalar); ok {
			fl.emit(Instr{Op: OpConvertFree, Dst: dst, Aux: s})
		}
		return
	}
	switch tt := typ.(type) {
	case *cltypes.Scalar:
		if len(il.Elems) != 1 {
			fail("bad scalar initializer")
		}
		fl.lowerInit(typ, il.Elems[0], dst)
	case *cltypes.Array:
		if len(il.Elems) > tt.Len {
			fail("array initializer arity overflow")
		}
		fl.emit(Instr{Op: OpNewAgg, Dst: dst, Aux: typ})
		for i, el := range il.Elems {
			fl.lowerInit(tt.Elem, el, fl.reg(dst+1))
			fl.emit(Instr{Op: OpInitField, Dst: int32(i), A: dst, B: dst + 1})
		}
	case *cltypes.StructT:
		fl.emit(Instr{Op: OpNewAgg, Dst: dst, Aux: typ})
		if tt.IsUnion {
			if len(il.Elems) == 1 {
				fl.lowerInit(tt.Fields[0].Type, il.Elems[0], fl.reg(dst+1))
				fl.emit(Instr{Op: OpInitUnion, A: dst, B: dst + 1})
			}
			return
		}
		if len(il.Elems) > len(tt.Fields) {
			fail("struct initializer arity overflow")
		}
		for i, el := range il.Elems {
			fl.lowerInit(tt.Fields[i].Type, el, fl.reg(dst+1))
			fl.emit(Instr{Op: OpInitField, Dst: int32(i), A: dst, B: dst + 1})
		}
		fl.emit(Instr{Op: OpInitStructDefect, A: dst})
	default:
		fail("bad initializer for %s", typ)
	}
}

// ---- expressions ----

// lowerExpr lowers e so that its value lands in register dst; registers
// above dst are scratch. The op carrying the node's evalExpr step charge
// has Cost 1; every other emitted op is free, matching the tree walker.
func (fl *fnLowerer) lowerExpr(e ast.Expr, dst int32) {
	fl.reg(dst)
	switch ex := e.(type) {
	case *ast.IntLit:
		st, ok := ex.Type().(*cltypes.Scalar)
		if !ok {
			st = cltypes.TInt
		}
		fl.emit(Instr{Op: OpConst, Cost: 1, Dst: dst, Aux: &ConstVal{T: st, V: cltypes.Trunc(ex.Val, st)}})

	case *ast.VarRef:
		if slot, global, ok := fl.resolve(ex.Name); ok {
			if slot >= 0 {
				fl.emit(Instr{Op: OpLoadSlot, Cost: 1, Dst: dst, A: slot})
			} else {
				fl.emit(Instr{Op: OpLoadGlobal, Cost: 1, Dst: dst, A: global})
			}
			return
		}
		switch ex.Name {
		case "CLK_LOCAL_MEM_FENCE":
			fl.emit(Instr{Op: OpPredef, Cost: 1, Dst: dst, A: 1})
		case "CLK_GLOBAL_MEM_FENCE":
			fl.emit(Instr{Op: OpPredef, Cost: 1, Dst: dst, A: 2})
		default:
			fail("undefined variable %q", ex.Name)
		}

	case *ast.Unary:
		fl.lowerUnary(ex, dst)

	case *ast.Binary:
		fl.lowerBinary(ex, dst)

	case *ast.AssignExpr:
		fl.lowerAssign(ex, dst, false)

	case *ast.Cond:
		fl.lowerExpr(ex.C, dst)
		br := fl.emit(Instr{Op: OpBranchFalse, Cost: 1, Dst: dst})
		fl.lowerExpr(ex.T, dst)
		j := fl.emit(Instr{Op: OpJump})
		fl.patch(br)
		fl.lowerExpr(ex.F, dst)
		fl.patch(j)
		fl.emit(Instr{Op: OpCondFin, Dst: dst, Aux: ex.Type()})

	case *ast.Call:
		fl.lowerCall(ex, dst)

	case *ast.Index, *ast.Member:
		lv := fl.allocLV()
		fl.lowerLV(e, lv, dst)
		fl.emit(Instr{Op: OpLVLoad, Cost: 1, Dst: dst, A: lv})
		fl.freeLV()

	case *ast.Swizzle:
		fl.lowerExpr(ex.Base, dst)
		fl.emit(Instr{Op: OpSwizzle, Cost: 1, Dst: dst, A: dst, Aux: cltypes.SwizzleIndices(ex.Sel)})

	case *ast.VecLit:
		for i, el := range ex.Elems {
			fl.lowerExpr(el, fl.reg(dst+int32(i)))
		}
		fl.emit(Instr{Op: OpVecLit, Cost: 1, Dst: dst, A: dst, B: int32(len(ex.Elems)), Aux: ex.VT})

	case *ast.Cast:
		fl.lowerExpr(ex.X, dst)
		fl.emit(Instr{Op: OpCast, Cost: 1, Dst: dst, A: dst, Aux: ex.To})

	default:
		fail("unknown expression %T", e)
	}
}

func (fl *fnLowerer) lowerUnary(ex *ast.Unary, dst int32) {
	switch ex.Op {
	case ast.AddrOf:
		fl.lowerAddrOf(ex, dst)
	case ast.Deref:
		fl.lowerExpr(ex.X, dst)
		fl.emit(Instr{Op: OpDeref, Cost: 1, Dst: dst, A: dst})
	case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
		lv := fl.allocLV()
		fl.lowerLV(ex.X, lv, dst)
		fl.emit(Instr{Op: OpIncDec, Cost: 1, Dst: dst, A: lv, B: int32(ex.Op)})
		fl.freeLV()
	default:
		fl.lowerExpr(ex.X, dst)
		fl.emit(Instr{Op: OpUnary, Cost: 1, Dst: dst, A: dst, B: int32(ex.Op), Aux: ex.Type()})
	}
}

// lowerAddrOf mirrors lvPtr: &a[i] over a pointer or array yields a
// sliceable pointer; other lvalues convert via OpAddrLV (flat element,
// array decay, direct cell).
func (fl *fnLowerer) lowerAddrOf(ex *ast.Unary, dst int32) {
	if ix, ok := ex.X.(*ast.Index); ok {
		fl.lowerExpr(ix.Idx, dst)
		if _, isPtr := ix.Base.Type().(*cltypes.Pointer); isPtr {
			fl.lowerExpr(ix.Base, fl.reg(dst+1))
			fl.emit(Instr{Op: OpPtrAt, Cost: 1, Dst: dst, A: dst + 1, B: dst, Aux: ex.Type()})
			return
		}
		lv := fl.allocLV()
		fl.lowerLV(ix.Base, lv, fl.reg(dst+1))
		fl.emit(Instr{Op: OpAddrElem, Cost: 1, Dst: dst, A: lv, B: dst, Aux: ex.Type()})
		fl.freeLV()
		return
	}
	lv := fl.allocLV()
	fl.lowerLV(ex.X, lv, dst)
	fl.emit(Instr{Op: OpAddrLV, Cost: 1, Dst: dst, A: lv, Aux: ex.Type()})
	fl.freeLV()
}

func (fl *fnLowerer) lowerBinary(ex *ast.Binary, dst int32) {
	if ex.Op == ast.Comma {
		fl.lowerExpr(ex.L, dst)
		fl.lowerExpr(ex.R, dst)
		fl.emit(Instr{Op: OpComma, Cost: 1, Dst: dst})
		return
	}
	if ex.Op == ast.LAnd || ex.Op == ast.LOr {
		if _, ok := ex.Type().(*cltypes.Vector); !ok {
			kind := int32(0)
			if ex.Op == ast.LOr {
				kind = 1
			}
			fl.lowerExpr(ex.L, dst)
			tst := fl.emit(Instr{Op: OpBoolTest, Cost: 1, Dst: dst, B: kind})
			fl.lowerExpr(ex.R, dst)
			fl.emit(Instr{Op: OpBoolFin, Dst: dst})
			fl.patch(tst)
			return
		}
	}
	fl.lowerExpr(ex.L, fl.reg(dst+1))
	fl.lowerExpr(ex.R, fl.reg(dst+2))
	fl.emit(Instr{Op: OpBinary, Cost: 1, Dst: dst, A: dst + 1, B: dst + 2, Aux: &BinInfo{Op: ex.Op, RT: ex.Type()}})
}

// lowerAssign mirrors evalAssignStore: the destination lvalue resolves
// first, then the RHS evaluates, then the store applies its defect
// models. stmt marks statement position (no result reload; the caller
// folds the extra fuel charge).
func (fl *fnLowerer) lowerAssign(ex *ast.AssignExpr, dst int32, stmt bool) {
	fl.reg(dst)
	lv := fl.allocLV()
	fl.lowerLV(ex.LHS, lv, dst)
	fl.lowerExpr(ex.RHS, dst)
	si := &StoreInfo{Op: ex.Op}
	if u, ok := ex.LHS.(*ast.Unary); ok && u.Op == ast.Deref {
		if vr, ok := u.X.(*ast.VarRef); ok && fl.params[vr.Name] {
			si.DerefParam = true
		}
	}
	if m, ok := ex.LHS.(*ast.Member); ok && m.Arrow {
		if vr, ok := m.Base.(*ast.VarRef); ok && fl.params[vr.Name] {
			si.ArrowParam = true
		}
	}
	in := Instr{Op: OpStore, A: lv, B: dst, Aux: si}
	if stmt {
		in.Dst = -1
	} else {
		in.Cost = 1 // the AssignExpr node's evalExpr charge
		in.Dst = dst
	}
	fl.emit(in)
	fl.freeLV()
}

// lowerLV lowers an lvalue expression into lvalue register lvdst, using
// value registers from rtop upward for subexpressions. All OpLV* ops are
// fuel-free, like evalLV; only embedded value evaluations charge.
func (fl *fnLowerer) lowerLV(e ast.Expr, lvdst int32, rtop int32) {
	if lvdst+1 > fl.lvMax {
		fl.lvMax = lvdst + 1
	}
	switch ex := e.(type) {
	case *ast.VarRef:
		slot, global, ok := fl.resolve(ex.Name)
		if !ok {
			fail("undefined variable %q", ex.Name)
		}
		if slot >= 0 {
			fl.emit(Instr{Op: OpLVSlot, Dst: lvdst, A: slot})
		} else {
			fl.emit(Instr{Op: OpLVGlobal, Dst: lvdst, A: global})
		}
	case *ast.Unary:
		if ex.Op != ast.Deref {
			fail("expression %T is not an lvalue", e)
		}
		fl.lowerExpr(ex.X, fl.reg(rtop))
		fl.emit(Instr{Op: OpLVDeref, Dst: lvdst, A: rtop})
	case *ast.Index:
		fl.lowerExpr(ex.Idx, fl.reg(rtop))
		if _, isPtr := ex.Base.Type().(*cltypes.Pointer); isPtr {
			fl.lowerExpr(ex.Base, fl.reg(rtop+1))
			fl.emit(Instr{Op: OpLVPtrIndex, Dst: lvdst, A: rtop + 1, B: rtop})
			return
		}
		fl.lowerLV(ex.Base, lvdst, rtop+1)
		fl.emit(Instr{Op: OpLVIndex, Dst: lvdst, A: lvdst, B: rtop})
	case *ast.Member:
		mi := &MemberInfo{Idx: int32(ex.FieldIdx) - 1, Name: ex.Name}
		if ex.Arrow {
			fl.lowerExpr(ex.Base, fl.reg(rtop))
			fl.emit(Instr{Op: OpLVArrow, Dst: lvdst, A: rtop, Aux: mi})
			return
		}
		fl.lowerLV(ex.Base, lvdst, rtop)
		fl.emit(Instr{Op: OpLVMember, Dst: lvdst, A: lvdst, Aux: mi})
	case *ast.Swizzle:
		idx := cltypes.SwizzleIndices(ex.Sel)
		if len(idx) != 1 {
			fail("multi-component swizzle is not assignable")
		}
		fl.lowerLV(ex.Base, lvdst, rtop)
		fl.emit(Instr{Op: OpLVSwizzle, Dst: lvdst, A: lvdst, B: int32(idx[0])})
	default:
		fail("expression %T is not an lvalue", e)
	}
}

// mathBuiltins is the evalMath dispatch set.
var mathBuiltins = map[string]bool{
	"safe_add": true, "safe_sub": true, "safe_mul": true, "safe_div": true,
	"safe_mod": true, "safe_lshift": true, "safe_rshift": true,
	"safe_unary_minus": true, "safe_clamp": true, "clamp": true,
	"rotate": true, "min": true, "max": true, "abs": true, "add_sat": true,
	"sub_sat": true, "hadd": true, "mul_hi": true, "popcount": true, "clz": true,
}

func (fl *fnLowerer) lowerCall(ex *ast.Call, dst int32) {
	switch ex.Name {
	case "get_global_id", "get_local_id", "get_group_id",
		"get_global_size", "get_local_size", "get_num_groups":
		fl.lowerExpr(ex.Args[0], dst)
		fl.emit(Instr{Op: OpIdBuiltin, Cost: 1, Dst: dst, A: dst, Aux: ex.Name})
		return
	case "get_work_dim":
		fl.emit(Instr{Op: OpWorkDim, Cost: 1, Dst: dst})
		return
	case "get_linear_global_id":
		fl.emit(Instr{Op: OpLinearId, Cost: 1, Dst: dst, B: 0})
		return
	case "get_linear_local_id":
		fl.emit(Instr{Op: OpLinearId, Cost: 1, Dst: dst, B: 1})
		return
	case "get_linear_group_id":
		fl.emit(Instr{Op: OpLinearId, Cost: 1, Dst: dst, B: 2})
		return
	case "barrier":
		fl.lowerExpr(ex.Args[0], dst)
		fl.emit(Instr{Op: OpBarrier, Cost: 1, Dst: dst, A: dst, Aux: ast.Node(ex)})
		return
	case "crc64":
		fl.lowerExpr(ex.Args[0], dst)
		fl.lowerExpr(ex.Args[1], fl.reg(dst+1))
		fl.emit(Instr{Op: OpCrc64, Cost: 1, Dst: dst, A: dst, B: dst + 1})
		return
	case "vcrc":
		fl.lowerExpr(ex.Args[0], dst)
		fl.lowerExpr(ex.Args[1], fl.reg(dst+1))
		fl.emit(Instr{Op: OpVcrc, Cost: 1, Dst: dst, A: dst, B: dst + 1})
		return
	}
	if strings.HasPrefix(ex.Name, "atomic_") {
		if len(ex.Args) < 1 || len(ex.Args) > 3 {
			fail("bad atomic arity")
		}
		for i, a := range ex.Args {
			fl.lowerExpr(a, fl.reg(dst+int32(i)))
		}
		fl.emit(Instr{Op: OpAtomic, Cost: 1, Dst: dst, A: dst, B: int32(len(ex.Args) - 1), Aux: ex.Name})
		return
	}
	if mathBuiltins[ex.Name] {
		for i, a := range ex.Args {
			fl.lowerExpr(a, fl.reg(dst+int32(i)))
		}
		fl.emit(Instr{Op: OpMath, Cost: 1, Dst: dst, A: dst, B: int32(len(ex.Args)), Aux: &MathInfo{Name: ex.Name, RT: ex.Type()}})
		return
	}
	if strings.HasPrefix(ex.Name, "convert_") {
		fl.lowerExpr(ex.Args[0], dst)
		fl.emit(Instr{Op: OpConvert, Cost: 1, Dst: dst, A: dst, Aux: ex.Type()})
		return
	}
	// User call: arguments are evaluated and bound one at a time, like
	// evalUserCall's immediate parameter binding.
	idx, ok := fl.l.fnIdx[ex.Name]
	if !ok {
		fail("call to undefined function %q", ex.Name)
	}
	callee := fl.l.prog.Func(ex.Name)
	if callee == nil || len(ex.Args) != len(callee.Params) {
		fail("call arity mismatch for %q", ex.Name)
	}
	fl.emit(Instr{Op: OpCallPrep, Cost: 1, A: int32(idx)})
	for i, p := range callee.Params {
		fl.lowerExpr(ex.Args[i], dst)
		fl.emit(Instr{Op: OpBindArg, A: dst, B: int32(i), Aux: p.Type})
	}
	fl.emit(Instr{Op: OpCall, Dst: dst, A: int32(idx)})
}

// ContainsBarrier reports whether the statement tree issues a barrier
// call, the static half of the Figure 2(d) defect trigger (the tree
// walker computes this at loop exit; the lowerer resolves it once).
func ContainsBarrier(s ast.Stmt) bool {
	found := false
	var walkS func(ast.Stmt)
	var walkE func(ast.Expr)
	walkE = func(e ast.Expr) {
		if e == nil || found {
			return
		}
		switch ex := e.(type) {
		case *ast.Call:
			if ex.Name == "barrier" {
				found = true
				return
			}
			for _, a := range ex.Args {
				walkE(a)
			}
		case *ast.Unary:
			walkE(ex.X)
		case *ast.Binary:
			walkE(ex.L)
			walkE(ex.R)
		case *ast.AssignExpr:
			walkE(ex.LHS)
			walkE(ex.RHS)
		case *ast.Cond:
			walkE(ex.C)
			walkE(ex.T)
			walkE(ex.F)
		case *ast.Index:
			walkE(ex.Base)
			walkE(ex.Idx)
		case *ast.Member:
			walkE(ex.Base)
		case *ast.Swizzle:
			walkE(ex.Base)
		case *ast.VecLit:
			for _, el := range ex.Elems {
				walkE(el)
			}
		case *ast.Cast:
			walkE(ex.X)
		case *ast.InitList:
			for _, el := range ex.Elems {
				walkE(el)
			}
		}
	}
	walkS = func(s ast.Stmt) {
		if s == nil || found {
			return
		}
		switch st := s.(type) {
		case *ast.DeclStmt:
			walkE(st.Decl.Init)
		case *ast.ExprStmt:
			walkE(st.X)
		case *ast.Block:
			for _, inner := range st.Stmts {
				walkS(inner)
			}
		case *ast.If:
			walkE(st.Cond)
			walkS(st.Then)
			walkS(st.Else)
		case *ast.For:
			walkS(st.Init)
			walkE(st.Cond)
			walkE(st.Post)
			walkS(st.Body)
		case *ast.While:
			walkE(st.Cond)
			walkS(st.Body)
		case *ast.DoWhile:
			walkS(st.Body)
			walkE(st.Cond)
		case *ast.Return:
			walkE(st.X)
		}
	}
	walkS(s)
	return found
}
