package code_test

import (
	"testing"

	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
)

// FuzzLowerMatchesTree is the engine-equivalence fuzz target: generate a
// random kernel, compile it on a random configuration (arming that
// configuration's defect models and optimization pipeline), lower it,
// and require the register VM and the tree walker to agree byte for byte
// — same outcome, same diagnostic, same buffer contents. CI runs it as a
// short -fuzztime smoke step; the corpus seeds span every generator mode
// including EMI blocks.
// FuzzFuseMatchesUnfused is the fuel-model equivalence fuzz target:
// generate a random kernel, compile it on a random configuration, and
// run the VM under fuel/v1 (the exact lowered program) and fuel/v2 (the
// fused superinstruction program). Whenever neither model times out the
// two runs must agree byte for byte — same outcome, same diagnostic,
// same buffer contents. Timeouts are the one sanctioned divergence (the
// models charge different units), so a run where either side times out
// is retried at a large budget and skipped only if a timeout persists
// (a genuinely fuel-bound kernel). CI runs this as a -fuzztime smoke
// step beside FuzzLowerMatchesTree.
func FuzzFuseMatchesUnfused(f *testing.F) {
	f.Add(uint8(0), uint32(42), uint8(0), false, uint8(0))
	f.Add(uint8(1), uint32(7), uint8(3), true, uint8(0))
	f.Add(uint8(2), uint32(11), uint8(12), true, uint8(0))
	f.Add(uint8(3), uint32(5), uint8(17), false, uint8(2))
	f.Add(uint8(3), uint32(1000), uint8(7), true, uint8(3))
	modes := []generator.Mode{
		generator.ModeBasic, generator.ModeVector, generator.ModeBarrier, generator.ModeAll,
	}
	cfgs := device.All()
	f.Fuzz(func(t *testing.T, mode uint8, seed uint32, cfgID uint8, optimize bool, emi uint8) {
		k := generator.Generate(generator.Options{
			Mode:            modes[int(mode)%len(modes)],
			Seed:            int64(seed),
			MaxTotalThreads: 32,
			EMIBlocks:       int(emi % 4),
		})
		cfg := cfgs[int(cfgID)%len(cfgs)]
		cr := cfg.Compile(k.Src, optimize)
		if cr.Outcome != device.OK {
			return
		}
		if cr.Kernel.Code == nil {
			t.Fatalf("kernel did not lower (mode %d seed %d)", mode, seed)
		}
		run := func(fm exec.FuelModel, baseFuel int64) device.RunResult {
			args, result := k.Buffers()
			return cr.Kernel.Run(k.ND, args, result, device.RunOptions{
				Engine: exec.EngineVM, FuelModel: fm, BaseFuel: baseFuel,
			})
		}
		want := run(exec.FuelV1, 0)
		got := run(exec.FuelV2, 0)
		if want.Outcome == device.Timeout || got.Outcome == device.Timeout {
			// The sanctioned divergence: the models reach their budgets at
			// different points. Both fuel-bound means nothing to compare;
			// one-sided timeouts get one retry at a larger budget (modest,
			// to keep per-input time bounded for the fuzz workers).
			if want.Outcome == device.Timeout && got.Outcome == device.Timeout {
				return
			}
			want = run(exec.FuelV1, 1<<20)
			got = run(exec.FuelV2, 1<<20)
			if want.Outcome == device.Timeout || got.Outcome == device.Timeout {
				return
			}
		}
		if got.Outcome != want.Outcome {
			t.Fatalf("outcome: v2 %v, v1 %v (msg %q vs %q)\n%s", got.Outcome, want.Outcome, got.Msg, want.Msg, k.Src)
		}
		if got.Msg != want.Msg {
			t.Fatalf("msg: v2 %q, v1 %q\n%s", got.Msg, want.Msg, k.Src)
		}
		if len(got.Output) != len(want.Output) {
			t.Fatalf("output length: v2 %d, v1 %d\n%s", len(got.Output), len(want.Output), k.Src)
		}
		for i := range want.Output {
			if got.Output[i] != want.Output[i] {
				t.Fatalf("out[%d]: v2 %#x, v1 %#x\n%s", i, got.Output[i], want.Output[i], k.Src)
			}
		}
	})
}

func FuzzLowerMatchesTree(f *testing.F) {
	f.Add(uint8(0), uint32(42), uint8(0), false, uint8(0))
	f.Add(uint8(1), uint32(7), uint8(3), true, uint8(0))
	f.Add(uint8(2), uint32(11), uint8(12), true, uint8(0))
	f.Add(uint8(3), uint32(5), uint8(17), false, uint8(2))
	f.Add(uint8(3), uint32(1000), uint8(7), true, uint8(3))
	modes := []generator.Mode{
		generator.ModeBasic, generator.ModeVector, generator.ModeBarrier, generator.ModeAll,
	}
	cfgs := device.All()
	f.Fuzz(func(t *testing.T, mode uint8, seed uint32, cfgID uint8, optimize bool, emi uint8) {
		k := generator.Generate(generator.Options{
			Mode:            modes[int(mode)%len(modes)],
			Seed:            int64(seed),
			MaxTotalThreads: 32,
			EMIBlocks:       int(emi % 4),
		})
		cfg := cfgs[int(cfgID)%len(cfgs)]
		cr := cfg.Compile(k.Src, optimize)
		if cr.Outcome != device.OK {
			return
		}
		if cr.Kernel.Code == nil {
			t.Fatalf("kernel did not lower (mode %d seed %d)", mode, seed)
		}
		run := func(e exec.Engine) device.RunResult {
			args, result := k.Buffers()
			return cr.Kernel.Run(k.ND, args, result, device.RunOptions{Engine: e})
		}
		want := run(exec.EngineTree)
		got := run(exec.EngineVM)
		if got.Outcome != want.Outcome {
			t.Fatalf("outcome: vm %v, tree %v (msg %q vs %q)\n%s", got.Outcome, want.Outcome, got.Msg, want.Msg, k.Src)
		}
		if got.Msg != want.Msg {
			t.Fatalf("msg: vm %q, tree %q\n%s", got.Msg, want.Msg, k.Src)
		}
		if len(got.Output) != len(want.Output) {
			t.Fatalf("output length: vm %d, tree %d\n%s", len(got.Output), len(want.Output), k.Src)
		}
		for i := range want.Output {
			if got.Output[i] != want.Output[i] {
				t.Fatalf("out[%d]: vm %#x, tree %#x\n%s", i, got.Output[i], want.Output[i], k.Src)
			}
		}
	})
}
