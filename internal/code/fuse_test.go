package code_test

import (
	"reflect"
	"testing"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/code"
	"clfuzz/internal/device"
	"clfuzz/internal/generator"
)

func bi(op ast.BinOp) *code.BinInfo { return &code.BinInfo{Op: op, RT: cltypes.TInt} }
func cv(v uint64) *code.ConstVal    { return &code.ConstVal{T: cltypes.TInt, V: v} }

// fuseOne fuses a single hand-built function and returns the result.
func fuseOne(t *testing.T, ins []code.Instr, regs, lvs, slots int) *code.Fn {
	t.Helper()
	f := &code.Fn{Name: "k", Code: ins, NumRegs: regs, NumLVs: lvs, NumSlots: slots}
	return code.Fuse(&code.Program{Fns: []*code.Fn{f}}).Fns[0]
}

// TestFusePatterns drives every peephole pattern through a minimal
// hand-built program and checks the exact fused output: opcodes, operand
// fields (post-coalescing), remapped jump targets, and the conserved
// Cost sums that keep fuel/v2 totals identical to fuel/v1.
func TestFusePatterns(t *testing.T) {
	si := &code.StoreInfo{Op: ast.Assign}
	innerT := &cltypes.StructT{Name: "In", Fields: []cltypes.Field{
		{Name: "a", Type: cltypes.TInt}, {Name: "b", Type: cltypes.TInt},
	}}
	outerT := &cltypes.StructT{Name: "Out", Fields: []cltypes.Field{
		{Name: "x", Type: cltypes.TInt}, {Name: "s", Type: innerT},
	}}
	otherT := &cltypes.StructT{Name: "Other", Fields: []cltypes.Field{
		{Name: "a", Type: cltypes.TInt},
	}}
	cases := []struct {
		name string
		in   []code.Instr
		want []code.Instr
	}{
		{
			// The `i < N` loop-condition shape, plus the back-jump whose
			// target must remap across the 4→1 collapse.
			name: "BinSlotImmBr",
			in: []code.Instr{
				{Op: code.OpLoadSlot, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpConst, Cost: 1, Dst: 2, Aux: cv(10)},
				{Op: code.OpBinary, Cost: 1, Dst: 0, A: 1, B: 2, Aux: bi(ast.LT)},
				{Op: code.OpBranchFalse, Cost: 1, Dst: 0, A: 5},
				{Op: code.OpJump, Cost: 1, A: 0},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpBinSlotImmBr, Cost: 4, Dst: 0, A: 0, B: 2,
					Aux: &code.ImmInfo{Bin: bi(ast.LT), T: cltypes.TInt, V: 10}},
				{Op: code.OpJump, Cost: 1, A: 0},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			name: "BinSlotImm",
			in: []code.Instr{
				{Op: code.OpLoadSlot, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpConst, Cost: 1, Dst: 2, Aux: cv(7)},
				{Op: code.OpBinary, Cost: 1, Dst: 0, A: 1, B: 2, Aux: bi(ast.Add)},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpBinSlotImm, Cost: 3, Dst: 0, A: 0,
					Aux: &code.ImmInfo{Bin: bi(ast.Add), T: cltypes.TInt, V: 7}},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			name: "BinSlots",
			in: []code.Instr{
				{Op: code.OpLoadSlot, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpLoadSlot, Cost: 1, Dst: 2, A: 1},
				{Op: code.OpBinary, Cost: 1, Dst: 0, A: 1, B: 2, Aux: bi(ast.Add)},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpBinSlots, Cost: 3, Dst: 0, A: 0, B: 1, Aux: bi(ast.Add)},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// The load feeds the binary's right operand: expr OP var.
			name: "BinSlotR",
			in: []code.Instr{
				{Op: code.OpConst, Cost: 1, Dst: 1, Aux: cv(3)},
				{Op: code.OpLoadSlot, Cost: 1, Dst: 2, A: 0},
				{Op: code.OpBinary, Cost: 1, Dst: 0, A: 1, B: 2, Aux: bi(ast.Sub)},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpConst, Cost: 1, Dst: 1, Aux: cv(3)},
				{Op: code.OpBinSlotR, Cost: 2, Dst: 0, A: 1, B: 0, Aux: bi(ast.Sub)},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// Left operand from a non-fusable producer, so the Const+Binary
			// pair fuses to the immediate form.
			name: "BinImm",
			in: []code.Instr{
				{Op: code.OpLVSlot, Cost: 1, Dst: 0, A: 0},
				{Op: code.OpLVLoad, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpConst, Cost: 1, Dst: 2, Aux: cv(7)},
				{Op: code.OpBinary, Cost: 1, Dst: 0, A: 1, B: 2, Aux: bi(ast.Mul)},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpLVSlot, Cost: 1, Dst: 0, A: 0},
				{Op: code.OpLVLoad, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpBinImm, Cost: 2, Dst: 0, A: 1,
					Aux: &code.ImmInfo{Bin: bi(ast.Mul), T: cltypes.TInt, V: 7}},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			name: "BinBr",
			in: []code.Instr{
				{Op: code.OpLVSlot, Cost: 1, Dst: 0, A: 0},
				{Op: code.OpLVLoad, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpLVSlot, Cost: 1, Dst: 1, A: 1},
				{Op: code.OpLVLoad, Cost: 1, Dst: 2, A: 1},
				{Op: code.OpBinary, Cost: 1, Dst: 0, A: 1, B: 2, Aux: bi(ast.EQ)},
				{Op: code.OpBranchFalse, Cost: 1, Dst: 0, A: 7},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpLVSlot, Cost: 1, Dst: 0, A: 0},
				{Op: code.OpLVLoad, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpLVSlot, Cost: 1, Dst: 1, A: 1},
				{Op: code.OpLVLoad, Cost: 1, Dst: 2, A: 1},
				{Op: code.OpBinBr, Cost: 2, Dst: 0, A: 1, B: 2,
					Aux: &code.BinBrInfo{Bin: bi(ast.EQ), Target: 6}},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			name: "LoadIdx",
			in: []code.Instr{
				{Op: code.OpLoadSlot, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpLoadSlot, Cost: 1, Dst: 2, A: 1},
				{Op: code.OpLVPtrIndex, Cost: 1, Dst: 0, A: 1, B: 2},
				{Op: code.OpLVLoad, Cost: 1, Dst: 0, A: 0},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpLoadSlot, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpLoadSlot, Cost: 1, Dst: 2, A: 1},
				{Op: code.OpLoadIdx, Cost: 2, Dst: 0, A: 1, B: 2},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			name: "IncDecSlot",
			in: []code.Instr{
				{Op: code.OpLVSlot, Cost: 1, Dst: 0, A: 0},
				{Op: code.OpIncDec, Cost: 1, Dst: 0, A: 0, B: int32(ast.PostInc)},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpIncDecSlot, Cost: 2, Dst: 0, A: 0, B: int32(ast.PostInc)},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// The slot-store window: the captured lvalue is elided and the
			// store re-reads the frame slot, keeping its StoreInfo verbatim.
			name: "StoreSlot",
			in: []code.Instr{
				{Op: code.OpLVSlot, Cost: 1, Dst: 0, A: 0},
				{Op: code.OpConst, Cost: 1, Dst: 1, Aux: cv(5)},
				{Op: code.OpStore, Cost: 1, Dst: -1, A: 0, B: 1, Aux: si},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpConst, Cost: 2, Dst: 0, Aux: cv(5)},
				{Op: code.OpStoreSlot, Cost: 1, Dst: -1, A: 0, B: 0, Aux: si},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// A jump target on the Binary splits the 4-wide candidate: the
			// prefix stays unfused and only Binary+BranchFalse collapse (a
			// control path enters at the Binary, which must stay a real pc).
			name: "JumpTargetSplitsPattern",
			in: []code.Instr{
				{Op: code.OpLoadSlot, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpConst, Cost: 1, Dst: 2, Aux: cv(10)},
				{Op: code.OpBinary, Cost: 1, Dst: 0, A: 1, B: 2, Aux: bi(ast.LT)},
				{Op: code.OpBranchFalse, Cost: 1, Dst: 0, A: 2},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpLoadSlot, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpConst, Cost: 1, Dst: 2, Aux: cv(10)},
				{Op: code.OpBinBr, Cost: 2, Dst: 0, A: 1, B: 2,
					Aux: &code.BinBrInfo{Bin: bi(ast.LT), Target: 2}},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// OpSteps are deleted and jumps over them remap to the next
			// surviving instruction.
			name: "StepDeletion",
			in: []code.Instr{
				{Op: code.OpStep, Cost: 1},
				{Op: code.OpJump, Cost: 1, A: 4},
				{Op: code.OpStep, Cost: 1},
				{Op: code.OpStep, Cost: 1},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			// The first OpStep folds its charge into the Jump (Cost 2).
			// The other two sit immediately before the Jump's target: a
			// path entering at the ReturnVoid never executed them, so
			// folding forward would over-charge it — they are retained
			// as charge carriers instead.
			want: []code.Instr{
				{Op: code.OpJump, Cost: 2, A: 3},
				{Op: code.OpStep, Cost: 1},
				{Op: code.OpStep, Cost: 1},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// Stores through pointer lvalues keep their OpStore (and its
			// StoreInfo defect hook): only OpLVSlot-rooted stores fuse.
			name: "DerefStoreNotFused",
			in: []code.Instr{
				{Op: code.OpLoadSlot, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpLVDeref, Cost: 1, Dst: 0, A: 1},
				{Op: code.OpConst, Cost: 1, Dst: 2, Aux: cv(9)},
				{Op: code.OpStore, Cost: 1, Dst: -1, A: 0, B: 2,
					Aux: &code.StoreInfo{Op: ast.Assign, DerefParam: true}},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			// (registers 1,2 coalesce to 0,1: the unused reg 0 gap closes)
			want: []code.Instr{
				{Op: code.OpLoadSlot, Cost: 1, Dst: 0, A: 0},
				{Op: code.OpLVDeref, Cost: 1, Dst: 0, A: 0},
				{Op: code.OpConst, Cost: 1, Dst: 1, Aux: cv(9)},
				{Op: code.OpStore, Cost: 1, Dst: -1, A: 0, B: 1,
					Aux: &code.StoreInfo{Op: ast.Assign, DerefParam: true}},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// A load feeding an explicit cast over the same register (the
			// checksum-accumulation shape).
			name: "LoadCast",
			in: []code.Instr{
				{Op: code.OpLVSlot, Cost: 1, Dst: 0, A: 0},
				{Op: code.OpLVLoad, Cost: 1, Dst: 1, A: 0},
				{Op: code.OpCast, Cost: 1, Dst: 1, A: 1, Aux: cltypes.TULong},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpLVSlot, Cost: 1, Dst: 0, A: 0},
				{Op: code.OpLoadCast, Cost: 2, Dst: 0, A: 0, Aux: cltypes.TULong},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// A flat constant struct literal: the whole initializer run
			// collapses into one OpAggLit, with and without the
			// ConvertFree on the constant.
			name: "AggLitFlat",
			in: []code.Instr{
				{Op: code.OpNewAgg, Cost: 1, Dst: 0, Aux: innerT},
				{Op: code.OpConst, Cost: 1, Dst: 1, Aux: cv(7)},
				{Op: code.OpConvertFree, Cost: 1, Dst: 1, Aux: cltypes.TUChar},
				{Op: code.OpInitField, Cost: 1, Dst: 0, A: 0, B: 1},
				{Op: code.OpConst, Cost: 1, Dst: 1, Aux: cv(9)},
				{Op: code.OpInitField, Cost: 1, Dst: 1, A: 0, B: 1},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpAggLit, Cost: 6, Dst: 0, Aux: &code.AggLit{Typ: innerT, Ops: []code.AggOp{
					{Path: []int32{0}, T: cltypes.TInt, V: 7, Conv: cltypes.TUChar},
					{Path: []int32{1}, T: cltypes.TInt, V: 9},
				}}},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// A nested constant literal flattens into root-relative paths,
			// and the inner literal's defect hook survives at its path.
			name: "AggLitNested",
			in: []code.Instr{
				{Op: code.OpNewAgg, Cost: 1, Dst: 0, Aux: outerT},
				{Op: code.OpConst, Cost: 1, Dst: 1, Aux: cv(3)},
				{Op: code.OpInitField, Cost: 1, Dst: 0, A: 0, B: 1},
				{Op: code.OpNewAgg, Cost: 1, Dst: 1, Aux: innerT},
				{Op: code.OpConst, Cost: 1, Dst: 2, Aux: cv(4)},
				{Op: code.OpInitField, Cost: 1, Dst: 0, A: 1, B: 2},
				{Op: code.OpInitStructDefect, Cost: 1, A: 1},
				{Op: code.OpInitField, Cost: 1, Dst: 1, A: 0, B: 1},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpAggLit, Cost: 8, Dst: 0, Aux: &code.AggLit{Typ: outerT, Ops: []code.AggOp{
					{Path: []int32{0}, T: cltypes.TInt, V: 3},
					{Path: []int32{1, 0}, T: cltypes.TInt, V: 4},
					{Path: []int32{1}, Defect: true},
				}}},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// Declare + complete literal + StoreDecl elides the temporary
			// tree and the deep copy entirely: no registers survive.
			name: "AggDecl",
			in: []code.Instr{
				{Op: code.OpDeclare, Cost: 1, Dst: 0, A: 3, Aux: innerT},
				{Op: code.OpNewAgg, Cost: 1, Dst: 0, Aux: innerT},
				{Op: code.OpConst, Cost: 1, Dst: 1, Aux: cv(5)},
				{Op: code.OpInitField, Cost: 1, Dst: 0, A: 0, B: 1},
				{Op: code.OpStoreDecl, Cost: 1, Dst: 0, A: 3, B: 0},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpAggDecl, Cost: 5, Dst: -1, A: 3, Aux: &code.AggLit{Typ: innerT, Ops: []code.AggOp{
					{Path: []int32{0}, T: cltypes.TInt, V: 5},
				}}},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// A non-constant field interrupts the run: the Declare form is
			// refused (StoreDecl does not directly follow the constant
			// prefix), the prefix still fuses to OpAggLit, and the
			// remaining initializers execute against its register.
			name: "AggDeclPartialKeepsTail",
			in: []code.Instr{
				{Op: code.OpDeclare, Cost: 1, Dst: 0, A: 3, Aux: innerT},
				{Op: code.OpNewAgg, Cost: 1, Dst: 0, Aux: innerT},
				{Op: code.OpConst, Cost: 1, Dst: 1, Aux: cv(5)},
				{Op: code.OpInitField, Cost: 1, Dst: 0, A: 0, B: 1},
				{Op: code.OpLoadSlot, Cost: 1, Dst: 1, A: 2},
				{Op: code.OpInitField, Cost: 1, Dst: 1, A: 0, B: 1},
				{Op: code.OpStoreDecl, Cost: 1, Dst: 0, A: 3, B: 0},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpDeclare, Cost: 1, Dst: 0, A: 3, Aux: innerT},
				{Op: code.OpAggLit, Cost: 3, Dst: 0, Aux: &code.AggLit{Typ: innerT, Ops: []code.AggOp{
					{Path: []int32{0}, T: cltypes.TInt, V: 5},
				}}},
				{Op: code.OpLoadSlot, Cost: 1, Dst: 1, A: 2},
				{Op: code.OpInitField, Cost: 1, Dst: 1, A: 0, B: 1},
				{Op: code.OpStoreDecl, Cost: 1, Dst: 0, A: 3, B: 0},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
		{
			// The inner literal's type does not match the statically
			// derived kid type, so the nested form is refused: the inner
			// literal fuses on its own and the InitField that stores it —
			// where the unfused program would error — is retained.
			name: "AggLitNestedTypeMismatch",
			in: []code.Instr{
				{Op: code.OpNewAgg, Cost: 1, Dst: 0, Aux: outerT},
				{Op: code.OpConst, Cost: 1, Dst: 1, Aux: cv(3)},
				{Op: code.OpInitField, Cost: 1, Dst: 0, A: 0, B: 1},
				{Op: code.OpNewAgg, Cost: 1, Dst: 1, Aux: otherT},
				{Op: code.OpConst, Cost: 1, Dst: 2, Aux: cv(4)},
				{Op: code.OpInitField, Cost: 1, Dst: 0, A: 1, B: 2},
				{Op: code.OpInitField, Cost: 1, Dst: 1, A: 0, B: 1},
				{Op: code.OpReturnVoid, Cost: 1},
			},
			want: []code.Instr{
				{Op: code.OpAggLit, Cost: 3, Dst: 0, Aux: &code.AggLit{Typ: outerT, Ops: []code.AggOp{
					{Path: []int32{0}, T: cltypes.TInt, V: 3},
				}}},
				{Op: code.OpAggLit, Cost: 3, Dst: 1, Aux: &code.AggLit{Typ: otherT, Ops: []code.AggOp{
					{Path: []int32{0}, T: cltypes.TInt, V: 4},
				}}},
				{Op: code.OpInitField, Cost: 1, Dst: 1, A: 0, B: 1},
				{Op: code.OpReturnVoid, Cost: 1},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := fuseOne(t, tc.in, 16, 16, 16)
			if !reflect.DeepEqual(got.Code, tc.want) {
				t.Fatalf("fused code mismatch\ngot:  %v\nwant: %v", got.Code, tc.want)
			}
			// Fuel charges are conserved exactly: the fused stream's
			// total Cost equals the input's, which is what keeps fuel/v2
			// totals (and Timeout outcomes) identical to fuel/v1.
			var in, out int
			for i := range tc.in {
				in += int(tc.in[i].Cost)
			}
			for i := range got.Code {
				out += int(got.Code[i].Cost)
			}
			if in != out {
				t.Fatalf("fuel charges not conserved: input total %d, fused total %d", in, out)
			}
		})
	}
}

// TestFuseStoreHookIdentity pins the defect-model contract: fusing an
// OpLVSlot store into OpStoreSlot must carry the original *StoreInfo
// through by pointer, so the compound-operator and store-defect paths
// read exactly the aux the lowerer built.
func TestFuseStoreHookIdentity(t *testing.T) {
	si := &code.StoreInfo{Op: ast.AddAssign}
	ins := []code.Instr{
		{Op: code.OpLVSlot, Cost: 1, Dst: 0, A: 2},
		{Op: code.OpConst, Cost: 1, Dst: 1, Aux: cv(5)},
		{Op: code.OpStore, Cost: 1, Dst: -1, A: 0, B: 1, Aux: si},
		{Op: code.OpReturnVoid, Cost: 1},
	}
	got := fuseOne(t, ins, 4, 4, 4)
	if got.Code[1].Op != code.OpStoreSlot {
		t.Fatalf("store did not fuse: %v", got.Code)
	}
	if got.Code[1].Aux.(*code.StoreInfo) != si {
		t.Fatalf("fused store carries a different StoreInfo: %p vs %p", got.Code[1].Aux, si)
	}
	if got.Code[1].A != 2 {
		t.Fatalf("fused store slot = %d, want 2", got.Code[1].A)
	}
}

// TestFuseCoalescesRegisters checks the register-coalescing pass:
// operand elision leaves register-number gaps, and the fused function
// must renumber the survivors densely (monotone, so relative order is
// preserved) and shrink the frame counts the VM allocates from.
func TestFuseCoalescesRegisters(t *testing.T) {
	ins := []code.Instr{
		{Op: code.OpLoadSlot, Cost: 1, Dst: 4, A: 0},
		{Op: code.OpLoadSlot, Cost: 1, Dst: 8, A: 1},
		{Op: code.OpBinary, Cost: 1, Dst: 6, A: 4, B: 8, Aux: bi(ast.Add)},
		{Op: code.OpReturn, Cost: 1, A: 6},
	}
	got := fuseOne(t, ins, 12, 9, 2)
	want := []code.Instr{
		{Op: code.OpBinSlots, Cost: 3, Dst: 0, A: 0, B: 1, Aux: bi(ast.Add)},
		{Op: code.OpReturn, Cost: 1, A: 0},
	}
	if !reflect.DeepEqual(got.Code, want) {
		t.Fatalf("fused code mismatch\ngot:  %v\nwant: %v", got.Code, want)
	}
	if got.NumRegs != 1 {
		t.Fatalf("NumRegs = %d, want 1", got.NumRegs)
	}
	if got.NumLVs != 0 {
		t.Fatalf("NumLVs = %d, want 0", got.NumLVs)
	}
	if got.NumSlots != 2 {
		t.Fatalf("NumSlots = %d, want 2 (slots must never be renumbered)", got.NumSlots)
	}
}

// TestFusedCodeShrinksRealKernels compiles generated kernels and checks
// the fusion pass pays for itself on real lowered programs: a material
// static instruction reduction (the dynamic reduction in the hot loops
// is larger), frame shrinkage from coalescing, memoization of the fused
// program on the shared back-end artifact, and determinism — fusing the
// same program twice yields deeply equal code.
func TestFusedCodeShrinksRealKernels(t *testing.T) {
	ref := device.Reference()
	var before, after int
	for seed := int64(1); seed <= 8; seed++ {
		k := generator.Generate(generator.Options{
			Mode: generator.ModeAll, Seed: seed, MaxTotalThreads: 32,
		})
		cr := ref.Compile(k.Src, true)
		if cr.Outcome != device.OK || cr.Kernel.Code == nil {
			t.Fatalf("seed %d did not compile to bytecode", seed)
		}
		fused := cr.Kernel.FusedCode()
		if fused == nil {
			t.Fatalf("seed %d: FusedCode returned nil for a lowered kernel", seed)
		}
		if cr.Kernel.FusedCode() != fused {
			t.Fatalf("seed %d: FusedCode is not memoized", seed)
		}
		for i, f := range cr.Kernel.Code.Fns {
			nf := fused.Fns[i]
			before += len(f.Code)
			after += len(nf.Code)
			if nf.NumRegs > f.NumRegs || nf.NumLVs > f.NumLVs {
				t.Fatalf("seed %d fn %s: coalescing grew the frame (%d/%d regs, %d/%d lvs)",
					seed, f.Name, nf.NumRegs, f.NumRegs, nf.NumLVs, f.NumLVs)
			}
			if nf.NumSlots != f.NumSlots {
				t.Fatalf("seed %d fn %s: slot count changed", seed, f.Name)
			}
		}
		if !reflect.DeepEqual(code.Fuse(cr.Kernel.Code), fused) {
			t.Fatalf("seed %d: fusing twice is not deterministic", seed)
		}
	}
	if after >= before {
		t.Fatalf("fusion did not shrink the programs: %d -> %d instructions", before, after)
	}
	if reduction := float64(before-after) / float64(before); reduction < 0.10 {
		t.Fatalf("static reduction %.1f%% (%d -> %d), want >= 10%%", reduction*100, before, after)
	} else {
		t.Logf("static instruction reduction: %.1f%% (%d -> %d)", reduction*100, before, after)
	}
}

// TestFuseInputUntouched verifies Fuse never mutates the lowered
// program it reads: the fused copy is a sibling, and the v1 program the
// default fuel model keeps running must stay byte-identical.
func TestFuseInputUntouched(t *testing.T) {
	ins := []code.Instr{
		{Op: code.OpLoadSlot, Cost: 1, Dst: 1, A: 0},
		{Op: code.OpConst, Cost: 1, Dst: 2, Aux: cv(10)},
		{Op: code.OpBinary, Cost: 1, Dst: 0, A: 1, B: 2, Aux: bi(ast.LT)},
		{Op: code.OpBranchFalse, Cost: 1, Dst: 0, A: 5},
		{Op: code.OpJump, Cost: 1, A: 0},
		{Op: code.OpReturnVoid, Cost: 1},
	}
	orig := make([]code.Instr, len(ins))
	copy(orig, ins)
	f := &code.Fn{Name: "k", Code: ins, NumRegs: 3, NumLVs: 0, NumSlots: 1}
	p := &code.Program{Fns: []*code.Fn{f}}
	fp := code.Fuse(p)
	if !reflect.DeepEqual(ins, orig) {
		t.Fatalf("Fuse mutated the input code:\ngot:  %v\nwant: %v", ins, orig)
	}
	if f.NumRegs != 3 {
		t.Fatalf("Fuse mutated the input NumRegs: %d", f.NumRegs)
	}
	if fp.Fns[0] == f {
		t.Fatal("Fuse returned the input Fn instead of a copy")
	}
}
