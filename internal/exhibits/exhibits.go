package exhibits

import (
	"fmt"

	"clfuzz/internal/bugs"
	"clfuzz/internal/campaign"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/opt"
)

// Misbehaviour classifies what an affected configuration does with the
// exhibit.
type Misbehaviour int

// Misbehaviour kinds.
const (
	WrongResult  Misbehaviour = iota // terminates with the wrong value
	BuildFails                       // internal compiler error
	CompileHangs                     // compiler does not terminate (timeout)
	RunCrashes                       // crashes at runtime
)

// Affected names one configuration/optimization level that exhibits the
// bug.
type Affected struct {
	ConfigID int
	Optimize bool
	Kind     Misbehaviour
	// Output is the documented buggy value of out[...] for WrongResult
	// exhibits where the paper states it (index 0 unless OutputIdx set).
	Output    uint64
	HasOutput bool
	OutputIdx int
}

// Exhibit is one sub-figure.
type Exhibit struct {
	ID      string // e.g. "1a"
	Figure  int
	Caption string
	Src     string
	ND      exec.NDRange
	// Expected is the correct out[0] (or out[OutputIdx]) value.
	Expected []uint64
	Affected []Affected
	// MakeArgs builds kernel arguments; nil means only the out buffer.
	MakeArgs func() (exec.Args, *exec.Buffer)
}

// Args returns the argument set and result buffer for the exhibit.
func (e *Exhibit) Args() (exec.Args, *exec.Buffer) {
	if e.MakeArgs != nil {
		return e.MakeArgs()
	}
	out := exec.NewBuffer(cltypes.TULong, e.ND.GlobalLinear())
	return exec.Args{"out": {Buf: out}}, out
}

func nd(n, w int) exec.NDRange {
	return exec.NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{w, 1, 1}}
}

func both(id int, kind Misbehaviour) []Affected {
	return []Affected{
		{ConfigID: id, Optimize: false, Kind: kind},
		{ConfigID: id, Optimize: true, Kind: kind},
	}
}

// All returns the twelve exhibits of Figures 1 and 2.
func All() []*Exhibit {
	all := []*Exhibit{
		Fig1a(), Fig1b(), Fig1c(), Fig1d(), Fig1e(), Fig1f(),
		Fig2a(), Fig2b(), Fig2c(), Fig2d(), Fig2e(), Fig2f(),
	}
	for _, e := range all {
		e.tune()
	}
	return all
}

// tune appends an inert program-scope constant to the exhibit source
// until no hash-gated defect interferes: the configurations the exhibit
// documents (plus the NVIDIA configuration used as the unaffected
// control) must have clean gates, so only the documented deterministic
// defect manifests. The tuning declaration must survive canonical
// re-printing — gates key on the canonical normal form of the source, so
// a comment (which the parser strips) could no longer move them.
func (e *Exhibit) tune() {
	clean := func(src string) bool {
		for _, a := range e.Affected {
			cfg := device.ByID(a.ConfigID)
			if cfg != nil && !cfg.GatesClean(src, a.Optimize) {
				return false
			}
		}
		if !device.ByID(1).GatesClean(src, true) {
			return false
		}
		if e.ID == "2e" && !opt.GroupIDGate(bugs.Hash(device.CanonicalSource(src))) {
			return false
		}
		return true
	}
	src := e.Src
	for i := 0; i < 100000 && !clean(src); i++ {
		src = e.Src + fmt.Sprintf("constant int gate_tuning_%d = %d;\n", i, i)
	}
	e.Src = src
}

// ByID returns the exhibit with the given id ("1a".."2f"), or nil.
func ByID(id string) *Exhibit {
	for _, e := range All() {
		if e.ID == id {
			return e
		}
	}
	return nil
}

// Fig1a is the AMD char-first struct miscompilation: configs 5+, 6+, 16+
// yield 1 where 2 is expected.
func Fig1a() *Exhibit {
	return &Exhibit{
		ID: "1a", Figure: 1,
		Caption: "Configs. 5+, 6+, 16+ yield result 1 (expected: 2)",
		Src: `
struct S { char a; short b; };

kernel void entry(global ulong *out) {
    struct S s = { 1, 1 };
    out[get_linear_global_id()] = (ulong)(s.a + s.b);
}
`,
		ND:       nd(1, 1),
		Expected: []uint64{2},
		Affected: []Affected{
			{ConfigID: 5, Optimize: true, Kind: WrongResult, Output: 1, HasOutput: true},
			{ConfigID: 6, Optimize: true, Kind: WrongResult, Output: 1, HasOutput: true},
			{ConfigID: 16, Optimize: true, Kind: WrongResult, Output: 1, HasOutput: true},
		},
	}
}

// Fig1b is the anonymous-GPU struct copy bug: configs 10-, 11- lose an
// array element during struct assignment, but only when Nx = 1.
func Fig1b() *Exhibit {
	return &Exhibit{
		ID: "1b", Figure: 1,
		Caption: "Configs. 10-, 11- yield result 0 (expected: 1); only when Nx = 1",
		Src: `
typedef struct {
    short a; int b; volatile char c;
    int d; int e; short f[10];
} S;

kernel void entry(global ulong *out) {
    S s;
    S t = { 0, 0, 0, 0, 0, {0, 0, 0, 0, 0, 0, 0, 1, 0, 0} };
    S *p = &s;
    s = t;
    out[get_linear_global_id()] = (ulong)p->f[7];
}
`,
		ND:       nd(1, 1), // Nx = 1, the curious trigger condition
		Expected: []uint64{1},
		Affected: []Affected{
			{ConfigID: 10, Optimize: false, Kind: WrongResult, Output: 0, HasOutput: true},
			{ConfigID: 11, Optimize: false, Kind: WrongResult, Output: 0, HasOutput: true},
		},
	}
}

// Fig1c is the Altera vector-in-struct internal error.
func Fig1c() *Exhibit {
	return &Exhibit{
		ID: "1c", Figure: 1,
		Caption: "Configs. 20±, 21± yield internal errors when vectors appear in structs",
		Src: `
struct S { int4 x; };

kernel void entry(global ulong *out) {
    struct S s = { (int4)(1, 1, 1, 1) };
    out[get_linear_global_id()] = (ulong)s.x.x;
}
`,
		ND:       nd(1, 1),
		Expected: []uint64{1},
		Affected: append(both(20, BuildFails), both(21, BuildFails)...),
	}
}

// Fig1d is the config-17 lost store through a struct pointer after a
// barrier.
func Fig1d() *Exhibit {
	return &Exhibit{
		ID: "1d", Figure: 1,
		Caption: "Configs. 17± yield result 2 (expected result: 3)",
		Src: `
typedef struct { int x; int y; } S;

void f(S *p) { p->x = 2; }

kernel void entry(global ulong *out) {
    S s = { 1, 1 };
    barrier(CLK_LOCAL_MEM_FENCE);
    f(&s);
    out[get_linear_global_id()] = (ulong)(s.x + s.y);
}
`,
		ND:       nd(2, 2),
		Expected: []uint64{3, 3},
		Affected: []Affected{
			{ConfigID: 17, Optimize: false, Kind: WrongResult, Output: 2, HasOutput: true},
			{ConfigID: 17, Optimize: true, Kind: WrongResult, Output: 2, HasOutput: true},
		},
	}
}

// Fig1e is the Intel HD Graphics compile hang.
func Fig1e() *Exhibit {
	e := &Exhibit{
		ID: "1e", Figure: 1,
		Caption: "Configs. 8±, 7± enter an infinite loop during compilation of this kernel",
		Src: `
kernel void entry(global ulong *out, global int *p) {
    for (int i = 0; i < 197; i++) {
        if (p[0]) {
            while (1) { }
        }
    }
    out[get_linear_global_id()] = 0UL;
}
`,
		ND:       nd(1, 1),
		Expected: []uint64{0},
		Affected: append(both(7, CompileHangs), both(8, CompileHangs)...),
	}
	e.MakeArgs = func() (exec.Args, *exec.Buffer) {
		out := exec.NewBuffer(cltypes.TULong, 1)
		p := exec.NewBuffer(cltypes.TInt, 1) // p[0] = 0: the loop is never entered
		return exec.Args{"out": {Buf: out}, "p": {Buf: p}}, out
	}
	return e
}

// Fig1f is the Xeon Phi prohibitively slow compilation of a large struct
// with a barrier.
func Fig1f() *Exhibit {
	return &Exhibit{
		ID: "1f", Figure: 1,
		Caption: "Config. 18+ takes more than 20s to compile this kernel",
		Src: `
typedef struct { int a; int *b; ulong c[9][9][3]; } S;

kernel void entry(global ulong *out) {
    S s;
    S t = { 0, 0, { { { 0, 0, 0 } } } };
    S *p = &s;
    s = t;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_linear_global_id()] = p->c[0][0][1];
}
`,
		ND:       nd(2, 2),
		Expected: []uint64{0, 0},
		Affected: []Affected{{ConfigID: 18, Optimize: true, Kind: CompileHangs}},
	}
}

// Fig2a is the NVIDIA union initialization bug at -cl-opt-disable.
func Fig2a() *Exhibit {
	e := &Exhibit{
		ID: "2a", Figure: 2,
		Caption: "Configs. 1-, 2-, 3-, 4- yield 0xffff0001 due to incorrect union initialization (expected: 1)",
		Src: `
struct S { short c; long d; };
union U { uint a; struct S b; };
struct T { union U u[1]; ulong x; ulong y; };

kernel void entry(global ulong *out, global int *in) {
    struct T c;
    struct T t = { { { 1 } }, 7UL, 9UL };
    c = t;
    ulong total = 0UL;
    for (int i = 0; i < 1; i++) {
        total = total + (ulong)c.u[i].a;
    }
    out[get_linear_global_id()] = total;
}
`,
		ND:       nd(1, 1),
		Expected: []uint64{1},
	}
	for _, id := range []int{1, 2, 3, 4} {
		e.Affected = append(e.Affected, Affected{
			ConfigID: id, Optimize: false, Kind: WrongResult, Output: 0xffff0001, HasOutput: true,
		})
	}
	e.MakeArgs = func() (exec.Args, *exec.Buffer) {
		out := exec.NewBuffer(cltypes.TULong, 1)
		in := exec.NewBuffer(cltypes.TInt, 2)
		in.SetScalar(0, 7)
		in.SetScalar(1, 9)
		return exec.Args{"out": {Buf: out}, "in": {Buf: in}}, out
	}
	return e
}

// Fig2b is the Intel i5 rotate constant-folding bug.
func Fig2b() *Exhibit {
	return &Exhibit{
		ID: "2b", Figure: 2,
		Caption: "Config. 14± yields result 0xffffffff (expected: 1)",
		Src: `
kernel void entry(global ulong *out) {
    out[get_linear_global_id()] = (ulong)(rotate((uint2)(1, 1), (uint2)(0, 0))).x;
}
`,
		ND:       nd(1, 1),
		Expected: []uint64{1},
		Affected: []Affected{
			{ConfigID: 14, Optimize: false, Kind: WrongResult, Output: 0xffffffff, HasOutput: true},
			{ConfigID: 14, Optimize: true, Kind: WrongResult, Output: 0xffffffff, HasOutput: true},
		},
	}
}

// Fig2c is the Intel barrier/forward-declaration bug: wrong results on
// 12-/13-, segmentation faults on 14-/15-.
func Fig2c() *Exhibit {
	return &Exhibit{
		ID: "2c", Figure: 2,
		Caption: "Configs. 12-, 13- yield [1,0] with two threads in a group (expected [1,1]); configs. 14-, 15- crash",
		Src: `
int f(void);

void g(int *p) {
    barrier(CLK_LOCAL_MEM_FENCE);
    *p = f();
}

void h(int *p) { g(p); }

int f(void) {
    barrier(CLK_LOCAL_MEM_FENCE);
    return 1;
}

kernel void entry(global ulong *out) {
    int x = 0;
    h(&x);
    out[get_linear_global_id()] = (ulong)x;
}
`,
		ND:       nd(2, 2),
		Expected: []uint64{1, 1},
		Affected: []Affected{
			{ConfigID: 12, Optimize: false, Kind: WrongResult, Output: 0, HasOutput: true, OutputIdx: 1},
			{ConfigID: 13, Optimize: false, Kind: WrongResult, Output: 0, HasOutput: true, OutputIdx: 1},
			{ConfigID: 14, Optimize: false, Kind: RunCrashes},
			{ConfigID: 15, Optimize: false, Kind: RunCrashes},
		},
	}
}

// Fig2d is the Intel unreachable-loop-with-barrier bug.
func Fig2d() *Exhibit {
	return &Exhibit{
		ID: "2d", Figure: 2,
		Caption: "Configs. 14-, 15- yield [0,1] with two threads in a group (expected [0,0])",
		Src: `
typedef struct { int a; int b; int c; } S;

void f(S *s) {
    for (s->a = 0; s->a > 0; s->a = 0) {
        int x = 1;
        barrier(CLK_LOCAL_MEM_FENCE);
        s->c = safe_add(s->c, x);
    }
}

kernel void entry(global ulong *out) {
    S s = { 1, 0, 0 };
    f(&s);
    out[get_linear_global_id()] = (ulong)s.a;
}
`,
		ND:       nd(2, 2),
		Expected: []uint64{0, 0},
		Affected: []Affected{
			{ConfigID: 14, Optimize: false, Kind: WrongResult, Output: 1, HasOutput: true, OutputIdx: 1},
			{ConfigID: 15, Optimize: false, Kind: WrongResult, Output: 1, HasOutput: true, OutputIdx: 1},
		},
	}
}

// Fig2e is the anonymous-GPU group-id comparison bug. The source carries a
// tuning comment appended until its hash passes the defect's program-level
// gate, making the exhibit deterministic.
func Fig2e() *Exhibit {
	base := `
void f(int *p) {
    if (((((*p - get_group_id(0)) != 1UL) >> *p) < 2UL) >= (ulong)*p) {
        *p = 1;
    }
}

kernel void entry(global ulong *out) {
    int x = 0;
    f(&x);
    out[get_linear_global_id()] = (ulong)x;
}
`
	return &Exhibit{
		ID: "2e", Figure: 2,
		Caption:  "Config. 9+ yields result 0 (expected: 1)",
		Src:      base,
		ND:       nd(1, 1),
		Expected: []uint64{1},
		Affected: []Affected{
			{ConfigID: 9, Optimize: true, Kind: WrongResult, Output: 0, HasOutput: true},
		},
	}
}

// Fig2f is the Oclgrind comma-operator bug.
func Fig2f() *Exhibit {
	return &Exhibit{
		ID: "2f", Figure: 2,
		Caption: "Config. 19± yields result 0 (expected: 0xffffffff)",
		Src: `
kernel void entry(global ulong *out) {
    short x = 1;
    uint y;
    for (y = 4294967295u; y >= 1u; ++y) {
        if ((x , 1)) { break; }
    }
    out[get_linear_global_id()] = (ulong)y;
}
`,
		ND:       nd(1, 1),
		Expected: []uint64{0xffffffff},
		Affected: []Affected{
			{ConfigID: 19, Optimize: false, Kind: WrongResult, Output: 0, HasOutput: true},
			{ConfigID: 19, Optimize: true, Kind: WrongResult, Output: 0, HasOutput: true},
		},
	}
}

// Verify checks one exhibit: the reference configuration produces the
// expected output, and every affected configuration exhibits its
// documented misbehaviour. It returns a descriptive error on any
// mismatch. Launches go through the shared campaign engine, so the
// exhibit source parses once, configurations sharing a defect model
// share one compiled kernel, and repeated verifications (clbench's
// figure benchmarks, CI) are served by the result cache.
func Verify(e *Exhibit) error {
	c := campaign.Case{Name: e.ID, Src: e.Src, ND: e.ND, Buffers: e.Args}
	rr := campaign.Default.RunCase(device.Reference(), true, c, campaign.LaunchOptions{})
	if rr.Compile {
		return fmt.Errorf("%s: reference compile failed: %s", e.ID, rr.Msg)
	}
	if rr.Outcome != device.OK {
		return fmt.Errorf("%s: reference run failed: %s", e.ID, rr.Msg)
	}
	for i, want := range e.Expected {
		if rr.Output[i] != want {
			return fmt.Errorf("%s: reference out[%d] = %#x, expected %#x", e.ID, i, rr.Output[i], want)
		}
	}
	for _, a := range e.Affected {
		cfg := device.ByID(a.ConfigID)
		if cfg == nil {
			return fmt.Errorf("%s: unknown config %d", e.ID, a.ConfigID)
		}
		crr := campaign.Default.RunCase(cfg, a.Optimize, c, campaign.LaunchOptions{})
		switch a.Kind {
		case BuildFails:
			if !(crr.Compile && crr.Outcome == device.BuildFailure) {
				return fmt.Errorf("%s: config %d opt=%v: expected build failure, got %s",
					e.ID, a.ConfigID, a.Optimize, crr.Outcome)
			}
			continue
		case CompileHangs:
			if !(crr.Compile && crr.Outcome == device.Timeout) {
				return fmt.Errorf("%s: config %d opt=%v: expected compile hang, got %s",
					e.ID, a.ConfigID, a.Optimize, crr.Outcome)
			}
			continue
		}
		if crr.Compile {
			return fmt.Errorf("%s: config %d opt=%v: compile failed unexpectedly: %s",
				e.ID, a.ConfigID, a.Optimize, crr.Msg)
		}
		switch a.Kind {
		case RunCrashes:
			if crr.Outcome != device.Crash {
				return fmt.Errorf("%s: config %d opt=%v: expected crash, got %s",
					e.ID, a.ConfigID, a.Optimize, crr.Outcome)
			}
		case WrongResult:
			if crr.Outcome != device.OK {
				return fmt.Errorf("%s: config %d opt=%v: expected wrong result, got %s (%s)",
					e.ID, a.ConfigID, a.Optimize, crr.Outcome, crr.Msg)
			}
			if a.HasOutput {
				got := crr.Output[a.OutputIdx]
				if got != a.Output {
					return fmt.Errorf("%s: config %d opt=%v: out[%d] = %#x, documented buggy value %#x",
						e.ID, a.ConfigID, a.Optimize, a.OutputIdx, got, a.Output)
				}
			} else if oracleEqual(crr.Output, e.Expected) {
				return fmt.Errorf("%s: config %d opt=%v: result unexpectedly correct",
					e.ID, a.ConfigID, a.Optimize)
			}
		}
	}
	return nil
}

func oracleEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Render formats the exhibits of one figure like the paper.
func Render(figure int) string {
	out := ""
	for _, e := range All() {
		if e.Figure != figure {
			continue
		}
		out += fmt.Sprintf("--- Figure %d(%s): %s\n%s\n", figure, e.ID[1:], e.Caption, e.Src)
	}
	return out
}
