// Package exhibits contains the bug-exhibit kernels of the paper's
// Figure 1 (configurations below the reliability threshold) and Figure 2
// (configurations above it), adapted to the OpenCL C subset. Each exhibit
// records the configurations it affects and the expected-vs-observed
// behaviour, so tests and cmd/cltables can regenerate both figures and
// verify that every documented bug reproduces on its simulated
// configuration and on no reference run.
//
// All returns the exhibit set; Verify runs one exhibit on its documented
// configurations and on the reference, checking that the defect — and
// only the defect — manifests. Exhibit sources are tuned so that no
// coincidental hash-gated crash fires on the configurations they document
// (device.Config.GatesClean).
package exhibits
