package exhibits_test

import (
	"testing"

	"clfuzz/internal/device"
	"clfuzz/internal/exhibits"
)

// TestFigure1 verifies every Figure 1 exhibit: the documented bug
// reproduces on its below-threshold configuration(s) and the reference
// configuration computes the expected result.
func TestFigure1(t *testing.T) {
	for _, e := range exhibits.All() {
		if e.Figure != 1 {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if err := exhibits.Verify(e); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestFigure2 verifies every Figure 2 exhibit against its above-threshold
// configuration(s).
func TestFigure2(t *testing.T) {
	for _, e := range exhibits.All() {
		if e.Figure != 2 {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if err := exhibits.Verify(e); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestExhibitsCorrectOnNVIDIAOpt spot-checks that exhibits are NOT
// misbehaving on an unaffected configuration: NVIDIA with optimizations
// computes the expected result for every wrong-result exhibit that does
// not list it (miscompilation must be configuration-specific, or the
// majority vote would be meaningless).
func TestExhibitsCorrectOnUnaffectedConfig(t *testing.T) {
	cfg := device.ByID(1) // NVIDIA GTX Titan with optimizations
	for _, e := range exhibits.All() {
		affected := false
		for _, a := range e.Affected {
			if a.ConfigID == 1 && a.Optimize {
				affected = true
			}
		}
		if affected {
			continue
		}
		cr := cfg.Compile(e.Src, true)
		if cr.Outcome != device.OK {
			t.Errorf("%s: unaffected config failed to compile: %s", e.ID, cr.Msg)
			continue
		}
		args, result := e.Args()
		rr := cr.Kernel.Run(e.ND, args, result, device.RunOptions{})
		if rr.Outcome != device.OK {
			t.Errorf("%s: unaffected config failed to run: %s %s", e.ID, rr.Outcome, rr.Msg)
			continue
		}
		for i, want := range e.Expected {
			if rr.Output[i] != want {
				t.Errorf("%s: unaffected config out[%d] = %#x, want %#x", e.ID, i, rr.Output[i], want)
			}
		}
	}
}

// TestExhibitCatalog sanity-checks the catalog shape: six exhibits per
// figure, unique ids.
func TestExhibitCatalog(t *testing.T) {
	seen := map[string]bool{}
	count := map[int]int{}
	for _, e := range exhibits.All() {
		if seen[e.ID] {
			t.Errorf("duplicate exhibit id %s", e.ID)
		}
		seen[e.ID] = true
		count[e.Figure]++
		if len(e.Affected) == 0 {
			t.Errorf("%s: no affected configurations listed", e.ID)
		}
	}
	if count[1] != 6 || count[2] != 6 {
		t.Errorf("expected 6 exhibits per figure, have %v", count)
	}
	if exhibits.ByID("2f") == nil || exhibits.ByID("9z") != nil {
		t.Error("ByID lookup misbehaves")
	}
}
