// Package store is the disk-backed tier of the campaign result cache: a
// content-addressed blob store that any number of processes — fleet
// workers, CI shards, warm reruns — share through one directory, with no
// coordination beyond the filesystem's atomic rename.
//
// The store maps a 64-bit address (the caller folds its full logical key
// into it) to an opaque payload. Entries live one per file under a
// two-level fan-out (dir/ab/<16-hex-digits>) and are framed with a magic
// string, an explicit length and an FNV-1a checksum, so truncated,
// interleaved or otherwise damaged files are detected and reported as
// misses — corruption costs a re-execution, never an error or a wrong
// result. Writers stage each entry in a process-unique temporary file in
// the same directory and rename it into place, so readers only ever see
// complete entries and concurrent writers of the same address harmlessly
// overwrite each other with identical content.
//
// Address collisions are the caller's problem by design: payloads carry
// the full logical key, and the campaign layer verifies it (plus the
// canonical source text) on every read, exactly as the in-memory tiers
// guard their 64-bit hashes.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// magic identifies (and versions) the entry framing. Bump the digit to
// orphan every existing entry on a framing change.
const magic = "CLFZSTR1"

// headerLen is magic + 8-byte length + 8-byte checksum.
const headerLen = len(magic) + 8 + 8

// maxEntry bounds how large an entry the reader will believe. Campaign
// payloads are a kernel source plus a result vector — a few hundred KB at
// the extreme — so anything claiming more is framing corruption, not data.
const maxEntry = 64 << 20

// Stats is a snapshot of the store's cumulative counters.
type Stats struct {
	// Hits counts Gets that returned a verified payload.
	Hits uint64
	// Misses counts Gets that found no entry file.
	Misses uint64
	// Corrupt counts Gets that found an entry file but rejected it
	// (truncation, bad magic, length or checksum mismatch). Corrupt
	// entries are misses to the caller.
	Corrupt uint64
	// Writes counts entries durably renamed into place.
	Writes uint64
	// WriteErrs counts Put attempts that failed (disk full, permissions);
	// the store stays usable and the entry is simply not persisted.
	WriteErrs uint64
}

// Store is a handle on one store directory. All methods are safe for
// concurrent use by multiple goroutines and multiple processes.
type Store struct {
	dir string

	hits      atomic.Uint64
	misses    atomic.Uint64
	corrupt   atomic.Uint64
	writes    atomic.Uint64
	writeErrs atomic.Uint64
	seq       atomic.Uint64
}

// Open creates (if needed) and opens a store directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps an address to its entry file: a 256-way fan-out keyed by the
// address's top byte, then the full 16-hex-digit address as the name.
func (s *Store) path(addr uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%02x", byte(addr>>56)), fmt.Sprintf("%016x", addr))
}

// checksum is FNV-1a over the payload, the same family the campaign's
// launch digests use.
func checksum(p []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Get returns the payload stored at addr. A missing entry is (nil,
// false); a damaged one is (nil, false) plus a corruption count — the
// caller re-executes and may re-Put, healing the entry.
func (s *Store) Get(addr uint64) ([]byte, bool) {
	raw, err := os.ReadFile(s.path(addr))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	if len(raw) < headerLen || string(raw[:len(magic)]) != magic {
		s.corrupt.Add(1)
		return nil, false
	}
	n := le64(raw[len(magic):])
	sum := le64(raw[len(magic)+8:])
	payload := raw[headerLen:]
	if n > maxEntry || uint64(len(payload)) != n || checksum(payload) != sum {
		s.corrupt.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Put durably records payload at addr via a same-directory temporary
// file and an atomic rename. Failures are counted and swallowed: a store
// that cannot write degrades to a cache that cannot persist, never into
// an error path.
func (s *Store) Put(addr uint64, payload []byte) {
	path := s.path(addr)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.writeErrs.Add(1)
		return
	}
	buf := make([]byte, headerLen+len(payload))
	copy(buf, magic)
	putLE64(buf[len(magic):], uint64(len(payload)))
	putLE64(buf[len(magic)+8:], checksum(payload))
	copy(buf[headerLen:], payload)
	// The temporary name is unique per (process, call), so concurrent
	// writers — goroutines here, fleet workers elsewhere — never share a
	// staging file; last rename wins with identical logical content.
	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), s.seq.Add(1))
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		s.writeErrs.Add(1)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		s.writeErrs.Add(1)
		return
	}
	s.writes.Add(1)
}

// Stats returns a snapshot of the cumulative counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Writes:    s.writes.Load(),
		WriteErrs: s.writeErrs.Load(),
	}
}
