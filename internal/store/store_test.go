package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"result":"forty-two"}`)
	s.Put(0xdeadbeefcafe0123, payload)
	got, ok := s.Get(0xdeadbeefcafe0123)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 0 || st.Corrupt != 0 || st.WriteErrs != 0 {
		t.Fatalf("stats %+v after one put and one hit", st)
	}
}

func TestMissingEntryIsMiss(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, ok := s.Get(7); ok {
		t.Fatal("empty store returned a hit")
	}
	if st := s.Stats(); st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats %+v, want one clean miss", st)
	}
}

// TestSecondProcessView reopens the directory through a fresh handle —
// the cross-process sharing contract reduced to one process: entries
// written by one handle are served, verified, by another.
func TestSecondProcessView(t *testing.T) {
	dir := t.TempDir()
	w, _ := Open(dir)
	w.Put(99, []byte("written by the first process"))
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get(99)
	if !ok || string(got) != "written by the first process" {
		t.Fatalf("fresh handle Get = %q, %v", got, ok)
	}
}

// TestCorruptEntryIsMiss damages a stored entry every way the framing
// can detect — truncation (including into the header), bad magic, a
// flipped payload byte, an inflated length — and requires each read to
// be a counted miss, never an error or a wrong payload.
func TestCorruptEntryIsMiss(t *testing.T) {
	damage := []struct {
		name string
		f    func(raw []byte) []byte
	}{
		{"truncated payload", func(raw []byte) []byte { return raw[:len(raw)-3] }},
		{"truncated header", func(raw []byte) []byte { return raw[:headerLen-2] }},
		{"empty file", func(raw []byte) []byte { return nil }},
		{"bad magic", func(raw []byte) []byte { raw[0] ^= 0xff; return raw }},
		{"flipped payload byte", func(raw []byte) []byte { raw[headerLen] ^= 1; return raw }},
		{"inflated length", func(raw []byte) []byte { raw[len(magic)] ^= 0x40; return raw }},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			s, _ := Open(t.TempDir())
			const addr = 0x0102030405060708
			s.Put(addr, []byte("precious bytes"))
			path := s.path(addr)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, d.f(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(addr); ok {
				t.Fatalf("damaged entry served as a hit: %q", got)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("stats %+v, want exactly one corrupt read", st)
			}
			// A re-Put heals the entry.
			s.Put(addr, []byte("healed"))
			if got, ok := s.Get(addr); !ok || string(got) != "healed" {
				t.Fatalf("healed Get = %q, %v", got, ok)
			}
		})
	}
}

// TestConcurrentPutGet hammers one store from many goroutines writing
// and reading overlapping addresses: every Get must return either a
// miss or the exact payload for its address (all writers of an address
// write identical bytes, mirroring content addressing).
func TestConcurrentPutGet(t *testing.T) {
	s, _ := Open(t.TempDir())
	const addrs = 17
	payload := func(a uint64) []byte { return []byte(fmt.Sprintf("payload-for-%d", a)) }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				a := uint64((g*31 + i) % addrs)
				if i%2 == 0 {
					s.Put(a, payload(a))
				} else if got, ok := s.Get(a); ok && !bytes.Equal(got, payload(a)) {
					t.Errorf("addr %d: wrong payload %q", a, got)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.WriteErrs != 0 || st.Corrupt != 0 {
		t.Fatalf("stats %+v, want no write errors or corruption", st)
	}
	// No staging litter: every temporary file was renamed or removed.
	litter, _ := filepath.Glob(filepath.Join(s.Dir(), "*", "*.tmp.*"))
	if len(litter) != 0 {
		t.Fatalf("staging files left behind: %v", litter)
	}
}

func TestAddressFanOut(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Put(0xab00000000000001, []byte("x"))
	want := filepath.Join(s.Dir(), "ab", "ab00000000000001")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("entry not at %s: %v", want, err)
	}
}
