package lexer_test

import (
	"testing"

	"clfuzz/internal/lexer"
)

func lexKinds(t *testing.T, src string) []lexer.Token {
	t.Helper()
	toks, err := lexer.Lex(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

// TestNumbers covers bases and suffix combinations.
func TestNumbers(t *testing.T) {
	cases := []struct {
		src    string
		val    uint64
		suffix string
	}{
		{"0", 0, ""},
		{"42", 42, ""},
		{"0x2A", 42, ""},
		{"0xffffffff", 0xffffffff, ""},
		{"7u", 7, "u"},
		{"7U", 7, "u"},
		{"7L", 7, "l"},
		{"7UL", 7, "ul"},
		{"7lu", 7, "ul"},
		{"18446744073709551615UL", ^uint64(0), "ul"},
	}
	for _, c := range cases {
		toks := lexKinds(t, c.src)
		if len(toks) != 2 || toks[0].Kind != lexer.Number {
			t.Errorf("%q: unexpected token stream %+v", c.src, toks)
			continue
		}
		if toks[0].Val != c.val || toks[0].Suffix != c.suffix {
			t.Errorf("%q: val=%d suffix=%q, want %d %q", c.src, toks[0].Val, toks[0].Suffix, c.val, c.suffix)
		}
	}
}

// TestNumberErrors: malformed literals are diagnosed, not silently eaten.
func TestNumberErrors(t *testing.T) {
	for _, src := range []string{"0x", "1uu", "2LL", "18446744073709551616"} {
		if _, err := lexer.Lex(src); err == nil {
			t.Errorf("%q lexed without error", src)
		}
	}
}

// TestPunctuationMaximalMunch: the longest operator wins.
func TestPunctuationMaximalMunch(t *testing.T) {
	toks := lexKinds(t, "a <<= b >> c < d -> e -- f")
	want := []string{"a", "<<=", "b", ">>", "c", "<", "d", "->", "e", "--", "f"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

// TestComments: both styles are skipped; unterminated block comments are
// diagnosed.
func TestComments(t *testing.T) {
	toks := lexKinds(t, "a // line\n b /* block\nspanning */ c")
	if len(toks) != 4 || toks[0].Text != "a" || toks[1].Text != "b" || toks[2].Text != "c" {
		t.Errorf("comment skipping produced %+v", toks)
	}
	if _, err := lexer.Lex("a /* unterminated"); err == nil {
		t.Error("unterminated block comment lexed without error")
	}
}

// TestKeywordsAndDunder: __global normalizes to global; identifiers are
// not keywords.
func TestKeywordsAndDunder(t *testing.T) {
	toks := lexKinds(t, "__kernel kernel __global globalvar")
	if toks[0].Kind != lexer.Keyword || toks[0].Text != "kernel" {
		t.Errorf("__kernel lexed as %+v", toks[0])
	}
	if toks[1].Kind != lexer.Keyword {
		t.Errorf("kernel lexed as %+v", toks[1])
	}
	if toks[2].Kind != lexer.Keyword || toks[2].Text != "global" {
		t.Errorf("__global lexed as %+v", toks[2])
	}
	if toks[3].Kind != lexer.Ident {
		t.Errorf("globalvar lexed as %+v", toks[3])
	}
}

// TestPositions: line/column tracking survives newlines.
func TestPositions(t *testing.T) {
	toks := lexKinds(t, "a\n  b")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

// TestUnexpectedChar: bytes outside the language are errors.
func TestUnexpectedChar(t *testing.T) {
	if _, err := lexer.Lex("a @ b"); err == nil {
		t.Error("@ lexed without error")
	}
}
