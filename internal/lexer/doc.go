// Package lexer tokenizes OpenCL C subset source. Each simulated compiler
// configuration lexes and parses kernel source text, mirroring the online
// compilation model of OpenCL in which drivers compile source at runtime
// (paper §1); the front-end cache in internal/device keeps that work to
// one pass per distinct source.
package lexer
