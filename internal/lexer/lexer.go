package lexer

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Number // integer literal; Val and Suffix are set
	Punct  // operator or punctuation; Text is the spelling
	Keyword
)

// Token is a lexical token.
type Token struct {
	Kind   Kind
	Text   string
	Val    uint64 // for Number
	Suffix string // "", "u", "l", "ul" for Number
	Line   int
	Col    int
}

// keywords of the subset. Type names are identified in the parser, not here,
// because vector type names are open-ended (int4, ushort8, ...).
var keywords = map[string]bool{
	"kernel": true, "__kernel": true,
	"global": true, "__global": true,
	"local": true, "__local": true,
	"constant": true, "__constant": true,
	"private": true, "__private": true,
	"struct": true, "union": true, "typedef": true,
	"const": true, "volatile": true,
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"break": true, "continue": true, "return": true, "void": true,
}

// Error is a lexical error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

// Lex tokenizes src. It returns the token stream terminated by an EOF token,
// or an error for malformed input.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// multi-character punctuation, longest first.
var puncts3 = []string{"<<=", ">>="}
var puncts2 = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"->", "++", "--",
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: line, Col: col}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		k := Ident
		if keywords[text] {
			k = Keyword
			text = strings.TrimPrefix(text, "__")
		}
		return Token{Kind: k, Text: text, Line: line, Col: col}, nil
	case isDigit(c):
		return l.number(line, col)
	default:
		rest := l.src[l.pos:]
		for _, p := range puncts3 {
			if strings.HasPrefix(rest, p) {
				for range p {
					l.advance()
				}
				return Token{Kind: Punct, Text: p, Line: line, Col: col}, nil
			}
		}
		for _, p := range puncts2 {
			if strings.HasPrefix(rest, p) {
				for range p {
					l.advance()
				}
				return Token{Kind: Punct, Text: p, Line: line, Col: col}, nil
			}
		}
		switch c {
		case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
			'(', ')', '[', ']', '{', '}', ';', ',', '.', '?', ':':
			l.advance()
			return Token{Kind: Punct, Text: string(c), Line: line, Col: col}, nil
		}
		return Token{}, l.errf("unexpected character %q", c)
	}
}

func (l *lexer) number(line, col int) (Token, error) {
	start := l.pos
	base := 10
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		base = 16
		l.advance()
		l.advance()
		if !isHexDigit(l.peek()) {
			return Token{}, l.errf("malformed hex literal")
		}
		for l.pos < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	digits := l.src[start:l.pos]
	if base == 16 {
		digits = digits[2:]
	}
	val, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return Token{}, l.errf("integer literal out of range: %s", digits)
	}
	// Suffix: combinations of u/U and l/L (we accept single l only; "ll" is
	// not in the subset since long is already 64-bit).
	suffix := ""
	hasU, hasL := false, false
	for l.pos < len(l.src) {
		switch l.peek() {
		case 'u', 'U':
			if hasU {
				return Token{}, l.errf("duplicate u suffix")
			}
			hasU = true
			l.advance()
		case 'l', 'L':
			if hasL {
				return Token{}, l.errf("duplicate l suffix")
			}
			hasL = true
			l.advance()
		default:
			goto done
		}
	}
done:
	if hasU {
		suffix += "u"
	}
	if hasL {
		suffix += "l"
	}
	return Token{Kind: Number, Val: val, Suffix: suffix, Line: line, Col: col}, nil
}
