package generator_test

import (
	"strings"
	"testing"

	"clfuzz/internal/generator"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// featureCensus summarizes the constructs present across a batch of
// kernels of one mode.
type featureCensus struct {
	barrier, atomicInc, atomicRed, vectors, globalsStruct, emiGuard int
}

func census(t *testing.T, mode generator.Mode, n int, emiBlocks int) featureCensus {
	t.Helper()
	var c featureCensus
	for seed := int64(0); seed < int64(n); seed++ {
		k := generator.Generate(generator.Options{Mode: mode, Seed: 600 + seed, MaxTotalThreads: 48, EMIBlocks: emiBlocks})
		if strings.Contains(k.Src, "barrier(") {
			c.barrier++
		}
		if strings.Contains(k.Src, "atomic_inc(") {
			c.atomicInc++
		}
		if strings.Contains(k.Src, "red[0]") {
			c.atomicRed++
		}
		for _, vt := range []string{"int2", "int4", "uint8", "short16", "char2", "ulong4"} {
			if strings.Contains(k.Src, vt) {
				c.vectors++
				break
			}
		}
		if strings.Contains(k.Src, "struct S0") {
			c.globalsStruct++
		}
		if strings.Contains(k.Src, "dead[") {
			c.emiGuard++
		}
	}
	return c
}

// TestModeFeatures: each mode must contain its defining constructs (§4)
// and BASIC must not contain communication.
func TestModeFeatures(t *testing.T) {
	const n = 10
	basic := census(t, generator.ModeBasic, n, 0)
	if basic.barrier != 0 || basic.atomicInc != 0 {
		t.Error("BASIC kernels must be embarrassingly parallel (no barriers/atomics)")
	}
	if basic.globalsStruct != n {
		t.Error("every kernel must route would-be globals through struct S0 (§4.1)")
	}
	barrier := census(t, generator.ModeBarrier, n, 0)
	if barrier.barrier != n {
		t.Errorf("BARRIER mode: %d/%d kernels contain barriers", barrier.barrier, n)
	}
	sect := census(t, generator.ModeAtomicSection, n, 0)
	if sect.atomicInc < n/2 {
		t.Errorf("ATOMIC SECTION mode: only %d/%d kernels contain atomic sections", sect.atomicInc, n)
	}
	red := census(t, generator.ModeAtomicReduction, n, 0)
	if red.atomicRed < n/2 {
		t.Errorf("ATOMIC REDUCTION mode: only %d/%d kernels contain reductions", red.atomicRed, n)
	}
	vec := census(t, generator.ModeVector, n, 0)
	if vec.vectors < n/2 {
		t.Errorf("VECTOR mode: only %d/%d kernels use vector types", vec.vectors, n)
	}
	all := census(t, generator.ModeAll, n, 2)
	if all.barrier < n/2 || all.emiGuard != n {
		t.Errorf("ALL mode with EMI: barriers %d/%d, EMI guards %d/%d", all.barrier, n, all.emiGuard, n)
	}
}

// TestPermutationTable: BARRIER kernels carry a constant permutation table
// whose rows are permutations of {0..Wlinear-1} (§4.2).
func TestPermutationTable(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		k := generator.Generate(generator.Options{Mode: generator.ModeBarrier, Seed: 700 + seed, MaxTotalThreads: 48})
		prog, err := parser.Parse(k.Src)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := sema.Check(prog, 0); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, g := range prog.Globals {
			if g.Name == "permutations" {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: BARRIER kernel lacks the permutations table", seed)
		}
	}
}

// TestParseModeNames covers the CLI name forms.
func TestParseModeNames(t *testing.T) {
	for _, m := range generator.Modes {
		got, err := generator.ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := generator.ParseMode("atomic_reduction"); err != nil {
		t.Error("compact mode name rejected")
	}
	if _, err := generator.ParseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}

// TestEMIBlockCount: requesting N blocks yields N recognizable guards.
func TestEMIBlockCount(t *testing.T) {
	for blocks := 1; blocks <= 5; blocks++ {
		k := generator.Generate(generator.Options{Mode: generator.ModeBasic, Seed: int64(800 + blocks), MaxTotalThreads: 16, EMIBlocks: blocks})
		if k.DeadLen == 0 {
			t.Fatalf("blocks=%d: kernel has no dead array", blocks)
		}
		count := strings.Count(k.Src, "if ((dead[")
		if count != blocks {
			t.Errorf("blocks=%d: found %d EMI guards", blocks, count)
		}
	}
}
