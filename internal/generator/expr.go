package generator

import (
	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
)

// expr generates a random expression that type-checks to exactly t. All
// generated expressions are uniform across the threads of a work-group
// (no thread-local ids, no checksum reads), which is what makes barrier
// emission at the kernel top level divergence-free (§4.2).
func (g *gen) expr(t *cltypes.Scalar, d int) ast.Expr {
	if d <= 0 {
		return g.leafExpr(t)
	}
	roll := g.intn(100)
	switch {
	case roll < 22:
		return g.leafExpr(t)
	case roll < 40:
		name := []string{"safe_add", "safe_sub", "safe_mul", "safe_div", "safe_mod"}[g.intn(5)]
		return cast(t, call(name, g.expr(t, d-1), g.expr(t, d-1)))
	case roll < 48:
		op := []ast.BinOp{ast.And, ast.Or, ast.Xor}[g.intn(3)]
		return cast(t, &ast.Binary{Op: op, L: g.expr(t, d-1), R: g.expr(t, d-1)})
	case roll < 54:
		name := []string{"safe_lshift", "safe_rshift"}[g.intn(2)]
		return cast(t, call(name, g.expr(t, d-1), g.expr(t, d-1)))
	case roll < 62:
		op := []ast.BinOp{ast.LT, ast.LE, ast.GT, ast.GE, ast.EQ, ast.NE}[g.intn(6)]
		ot := g.randScalar()
		return cast(t, &ast.Binary{Op: op, L: g.expr(ot, d-1), R: g.expr(ot, d-1)})
	case roll < 68:
		return &ast.Cond{C: g.expr(cltypes.TInt, d-1), T: g.expr(t, d-1), F: g.expr(t, d-1)}
	case roll < 74:
		switch g.intn(3) {
		case 0:
			return cast(t, call("safe_unary_minus", g.expr(t, d-1)))
		case 1:
			return cast(t, &ast.Unary{Op: ast.BitNot, X: g.expr(t, d-1)})
		default:
			return cast(t, &ast.Unary{Op: ast.LogNot, X: g.expr(t, d-1)})
		}
	case roll < 84:
		name := []string{"min", "max", "rotate", "add_sat", "sub_sat", "hadd", "mul_hi"}[g.intn(7)]
		return cast(t, call(name, g.expr(t, d-1), g.expr(t, d-1)))
	case roll < 88:
		return cast(t, call("safe_clamp", g.expr(t, d-1), g.expr(t, d-1), g.expr(t, d-1)))
	case roll < 90:
		name := []string{"popcount", "clz", "abs"}[g.intn(3)]
		return cast(t, call(name, g.expr(t, d-1)))
	case roll < 92 && g.sizeTMix && g.sizeTMixLeft > 0:
		// Raw size_t arithmetic with the group id: legal OpenCL C that the
		// Intel Xeon front end rejects (§6, config 15). The group id is
		// uniform within a work-group, so determinism is preserved.
		g.sizeTMixLeft--
		op := []ast.BinOp{ast.Add, ast.Or, ast.Xor}[g.intn(3)]
		return cast(t, &ast.Binary{Op: op, L: g.expr(cltypes.TInt, d-1), R: g.groupIDCall()})
	case roll < 94 && g.commaProg && g.commaLeft > 0:
		// The C comma operator (the Oclgrind defect of Figure 2(f) hides
		// here).
		g.commaLeft--
		return &ast.Binary{Op: ast.Comma, L: g.expr(g.randScalar(), d-1), R: g.expr(t, d-1)}
	case roll < 97 && g.vectors && len(g.vecVars) > 0:
		v := g.vecVars[g.intn(len(g.vecVars))]
		sw := &ast.Swizzle{Base: ref(v.name), Sel: swizzleName(g.intn(v.typ.Len))}
		return cast(t, sw)
	default:
		return g.leafExpr(t)
	}
}

func (g *gen) groupIDCall() ast.Expr {
	if g.chance(0.5) {
		return call("get_linear_group_id")
	}
	return call("get_group_id", lit(int64(g.intn(3)), cltypes.TUInt))
}

func (g *gen) leafExpr(t *cltypes.Scalar) ast.Expr {
	roll := g.intn(100)
	switch {
	case roll < 35:
		return g.randLiteral(t)
	case roll < 65:
		lv, ft := g.globalsFieldLV()
		if ft.Equal(t) {
			return lv
		}
		return cast(t, lv)
	case roll < 80 && len(g.locals) > 0:
		v := g.locals[g.intn(len(g.locals))]
		if v.typ.Equal(t) {
			return ref(v.name)
		}
		return cast(t, ref(v.name))
	case roll < 90 && len(g.loopVars) > 0:
		lv := g.loopVars[g.intn(len(g.loopVars))]
		if t.Equal(cltypes.TInt) {
			return ref(lv)
		}
		return cast(t, ref(lv))
	case roll < 93:
		return cast(t, g.groupIDCall())
	default:
		return g.randLiteral(t)
	}
}

// uniformExpr is expr under its §4.2 name: every generated expression is
// uniform across a work-group by the generation discipline.
func (g *gen) uniformExpr(t *cltypes.Scalar, d int) ast.Expr { return g.expr(t, d) }

// uniformExprWith generates a uniform expression that may additionally
// reference the given uint-typed names (the atomic-section locals).
func (g *gen) uniformExprWith(t *cltypes.Scalar, d int, names []string) ast.Expr {
	saved := len(g.locals)
	for _, n := range names {
		g.locals = append(g.locals, localVar{name: n, typ: cltypes.TUInt})
	}
	e := g.expr(t, d)
	g.locals = g.locals[:saved]
	return e
}

// vecExpr generates a vector expression that type-checks to exactly vt.
func (g *gen) vecExpr(vt *cltypes.Vector, d int) ast.Expr {
	if d <= 0 {
		return g.vecLeaf(vt)
	}
	roll := g.intn(100)
	switch {
	case roll < 25:
		return g.vecLeaf(vt)
	case roll < 45:
		op := []ast.BinOp{ast.Add, ast.Sub, ast.Mul, ast.And, ast.Or, ast.Xor}[g.intn(6)]
		if g.chance(0.3) {
			// vector OP scalar (the scalar widens component-wise).
			return &ast.Binary{Op: op, L: g.vecExpr(vt, d-1), R: g.expr(vt.Elem, d-1)}
		}
		return &ast.Binary{Op: op, L: g.vecExpr(vt, d-1), R: g.vecExpr(vt, d-1)}
	case roll < 58:
		name := []string{"safe_add", "safe_sub", "safe_mul", "safe_div", "safe_mod"}[g.intn(5)]
		return call(name, g.vecExpr(vt, d-1), g.vecExpr(vt, d-1))
	case roll < 66:
		name := []string{"min", "max", "rotate", "add_sat", "sub_sat", "hadd"}[g.intn(6)]
		return call(name, g.vecExpr(vt, d-1), g.vecExpr(vt, d-1))
	case roll < 72:
		return call("safe_clamp", g.vecExpr(vt, d-1), g.vecExpr(vt, d-1), g.vecExpr(vt, d-1))
	case roll < 78 && vt.Elem.Signed:
		// Vector comparisons and logical operators produce signed masks of
		// the operand shape; logical operators on vectors are the Altera
		// front-end reject trigger (§6).
		if g.chance(0.3) {
			op := []ast.BinOp{ast.LAnd, ast.LOr}[g.intn(2)]
			return &ast.Binary{Op: op, L: g.vecExpr(vt, d-1), R: g.vecExpr(vt, d-1)}
		}
		op := []ast.BinOp{ast.LT, ast.LE, ast.GT, ast.GE, ast.EQ, ast.NE}[g.intn(6)]
		return &ast.Binary{Op: op, L: g.vecExpr(vt, d-1), R: g.vecExpr(vt, d-1)}
	case roll < 84:
		if g.chance(0.5) {
			return &ast.Unary{Op: ast.BitNot, X: g.vecExpr(vt, d-1)}
		}
		return &ast.Unary{Op: ast.Neg, X: g.vecExpr(vt, d-1)}
	case roll < 90:
		// convert_<vt>() from a different element type of the same length.
		src := cltypes.VecOf(g.randScalar(), vt.Len)
		return call("convert_"+vt.String(), g.vecExpr(src, d-1))
	default:
		return g.vecLeaf(vt)
	}
}

func (g *gen) vecLeaf(vt *cltypes.Vector) ast.Expr {
	// An existing variable of the same type, a multi-component swizzle of
	// a longer vector, a splat, or a full literal.
	var sameType []vecVar
	var longer []vecVar
	for _, v := range g.vecVars {
		if v.typ.Equal(vt) {
			sameType = append(sameType, v)
		} else if v.typ.Elem.Equal(vt.Elem) && v.typ.Len > vt.Len {
			longer = append(longer, v)
		}
	}
	roll := g.intn(100)
	switch {
	case roll < 30 && len(sameType) > 0:
		return ref(sameType[g.intn(len(sameType))].name)
	case roll < 40 && len(longer) > 0:
		v := longer[g.intn(len(longer))]
		sel := "s"
		for i := 0; i < vt.Len; i++ {
			sel += string([]byte{"0123456789abcdef"[g.intn(v.typ.Len)]})
		}
		return &ast.Swizzle{Base: ref(v.name), Sel: sel}
	case roll < 55:
		// Splat literal: (int4)(x).
		return &ast.VecLit{VT: vt, Elems: []ast.Expr{g.leafExpr(vt.Elem)}}
	default:
		vl := &ast.VecLit{VT: vt}
		for i := 0; i < vt.Len; i++ {
			vl.Elems = append(vl.Elems, g.leafExpr(vt.Elem))
		}
		return vl
	}
}
