// Package generator implements the CLsmith random kernel generator
// (paper §4): random OpenCL kernels that produce deterministic output by
// construction, in six modes.
//
// BASIC lifts the Csmith approach to OpenCL: every thread runs the same
// randomly generated computation over a per-thread "globals struct"
// (OpenCL 1.x has no program-scope mutable globals, §4.1) and writes a
// checksum of its state to result[tid]. VECTOR adds OpenCL vector types
// and builtins. BARRIER, ATOMIC SECTION and ATOMIC REDUCTION add
// deterministic intra-group communication using the three §4.2
// strategies. ALL combines everything.
//
// Determinism discipline (§4.2): thread-local ids never appear in
// expressions (only in the designated communication idioms), shared
// arrays are initialized uniformly and partitioned per work-group, values
// derived from communication flow only into the per-thread checksum and
// never into control flow, and all arithmetic goes through total "safe
// math" wrappers. Because communication is confined within a work-group,
// group results are independent of group scheduling — the property the
// executor's parallel work-group path relies on.
//
// Generate is the entry point: Options selects the mode, seed, thread
// budget and (for EMI testing, §5) the number of injected dead blocks.
// The resulting Kernel carries source text, launch geometry (ND), and
// Buffers/InvertedDeadBuffers factories for the host-side argument
// protocol. File map: generator.go (options, kernel assembly), build.go
// (kernel skeleton and communication idioms), stmt.go / expr.go (random
// statement and expression grammars).
package generator
