package generator

import (
	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
)

// build assembles the whole program.
func (g *gen) build() {
	g.pickGrid()
	g.budget = g.opts.StmtBudget
	// A minority of programs mix size_t group-id arithmetic with signed
	// integers — legal OpenCL C that the config-15 front end rejects; the
	// per-program rate calibrates that configuration's build-failure rate
	// (Table 4).
	if g.chance(0.15) {
		g.sizeTMix = true
		g.sizeTMixLeft = 1 + g.intn(3)
	}
	// Comma operators are likewise a per-program feature: their frequency
	// calibrates the Oclgrind wrong-code rate (Table 4: w% around 8-11%
	// for config 19, whose comma defect is Figure 2(f)).
	if g.chance(0.12) {
		g.commaProg = true
		g.commaLeft = 1 + g.intn(2)
	}
	g.makeStructs()
	g.makeGlobalsStruct()
	if g.barriers {
		g.makePermutations()
		g.commGlobal = g.chance(0.5) // §4.2: A lives in local or global memory
	}
	if g.sections {
		g.sectionCount = 1 + g.intn(6) // scaled from the paper's 1-99
	}
	nfuncs := 1 + g.intn(4)
	protos := g.chance(0.35) // CLsmith-style forward declarations
	for i := 0; i < nfuncs; i++ {
		g.makeFunc()
	}
	if protos {
		var decls []*ast.FuncDecl
		for _, f := range g.funcs {
			proto := *f
			proto.Body = nil
			decls = append(decls, &proto)
		}
		g.prog.Funcs = append(decls, g.funcs...)
	} else {
		g.prog.Funcs = g.funcs
	}
	g.makeKernel()
}

// makeStructs creates 0-3 auxiliary struct types and possibly one union,
// which may be embedded in the globals struct. Struct-heavy programs are
// deliberate: the CLsmith globals-struct design biases testing toward
// struct miscompilations (§4.1).
func (g *gen) makeStructs() {
	n := g.intn(3)
	for i := 0; i < n; i++ {
		st := &cltypes.StructT{Name: g.fresh("S")}
		nf := 2 + g.intn(4)
		for j := 0; j < nf; j++ {
			ft := cltypes.Type(g.randScalar())
			if g.chance(0.2) {
				ft = cltypes.ArrayOf(g.randScalar(), 2+g.intn(8))
			}
			st.Fields = append(st.Fields, cltypes.Field{
				Name:     g.fresh("f"),
				Type:     ft,
				Volatile: g.chance(0.08),
			})
		}
		g.structs = append(g.structs, st)
		g.prog.Structs = append(g.prog.Structs, st)
	}
	if g.chance(0.15) {
		// A union with a scalar first member and a struct member. Only the
		// first member is ever accessed, so no type punning occurs. The
		// struct's lead field width is randomized: only the narrow case
		// reproduces the Figure 2(a) shape, keeping the NVIDIA wrong-code
		// rate at the low per-kernel level of Table 4.
		lead := []*cltypes.Scalar{cltypes.TShort, cltypes.TInt, cltypes.TLong}[g.intn(3)]
		inner := &cltypes.StructT{Name: g.fresh("S")}
		inner.Fields = []cltypes.Field{
			{Name: g.fresh("f"), Type: lead},
			{Name: g.fresh("f"), Type: cltypes.TLong},
		}
		g.prog.Structs = append(g.prog.Structs, inner)
		u := &cltypes.StructT{Name: g.fresh("U"), IsUnion: true}
		u.Fields = []cltypes.Field{
			{Name: g.fresh("f"), Type: cltypes.TUInt},
			{Name: g.fresh("f"), Type: inner},
		}
		g.structs = append(g.structs, u)
		g.prog.Structs = append(g.prog.Structs, u)
	}
}

// makeGlobalsStruct creates the struct S0 holding every would-be-global
// variable (§4.1): OpenCL 1.x does not support program-scope mutable
// variables, so CLsmith hoists them into a struct passed by reference to
// every function.
func (g *gen) makeGlobalsStruct() {
	st := &cltypes.StructT{Name: "S0"}
	nf := 4 + g.intn(8)
	for i := 0; i < nf; i++ {
		var ft cltypes.Type
		switch {
		case g.chance(0.15):
			ft = cltypes.ArrayOf(g.randScalar(), 2+g.intn(9))
		case len(g.structs) > 0 && g.chance(0.2):
			ft = g.structs[g.intn(len(g.structs))]
		default:
			ft = g.randScalar()
		}
		st.Fields = append(st.Fields, cltypes.Field{
			Name:     g.fresh("g"),
			Type:     ft,
			Volatile: g.chance(0.05),
		})
	}
	g.globals = st
	g.prog.Structs = append(g.prog.Structs, st)
}

// makePermutations emits the BARRIER-mode constant permutation table
// (§4.2): permutations[i] is a random permutation of {0..Wlinear-1}.
func (g *gen) makePermutations() {
	wl := g.nd.GroupLinear()
	rows := make([]ast.Expr, permCount)
	for i := 0; i < permCount; i++ {
		perm := g.rng.Perm(wl)
		row := &ast.InitList{}
		for _, v := range perm {
			row.Elems = append(row.Elems, lit(int64(v), cltypes.TUInt))
		}
		rows[i] = row
	}
	g.prog.Globals = append(g.prog.Globals, &ast.VarDecl{
		Name:  "permutations",
		Type:  cltypes.ArrayOf(cltypes.ArrayOf(cltypes.TUInt, wl), permCount),
		Space: cltypes.Constant,
		Init:  &ast.InitList{Elems: rows},
	})
}

// randLiteral produces a literal of type t, biased toward small values
// with occasional full-width bit patterns.
func (g *gen) randLiteral(t *cltypes.Scalar) *ast.IntLit {
	var v int64
	switch g.intn(5) {
	case 0:
		v = int64(g.intn(3)) // 0, 1, 2
	case 1:
		v = int64(g.intn(256)) - 128
	case 2:
		v = int64(g.rng.Uint64() & 0xffff)
	default:
		v = int64(g.rng.Uint64())
	}
	return lit(v, t)
}

// initFor builds a braced initializer for an aggregate (or a literal for a
// scalar).
func (g *gen) initFor(t cltypes.Type) ast.Expr {
	switch tt := t.(type) {
	case *cltypes.Scalar:
		return g.randLiteral(tt)
	case *cltypes.Array:
		il := &ast.InitList{}
		for i := 0; i < tt.Len; i++ {
			il.Elems = append(il.Elems, g.initFor(tt.Elem))
		}
		return il
	case *cltypes.StructT:
		il := &ast.InitList{}
		if tt.IsUnion {
			il.Elems = append(il.Elems, g.initFor(tt.Fields[0].Type))
			return il
		}
		for _, f := range tt.Fields {
			il.Elems = append(il.Elems, g.initFor(f.Type))
		}
		return il
	}
	return lit(0, cltypes.TInt)
}

// makeFunc generates one helper function: (struct S0 *g, int p) -> scalar.
// Functions mutate the globals struct and may call previously generated
// functions; they never issue barriers or atomics (the communication
// idioms are kernel-top-level only, preserving uniform control flow,
// §4.2 "Avoiding barrier divergence").
func (g *gen) makeFunc() {
	ret := g.randScalar()
	f := &ast.FuncDecl{
		Name: g.fresh("func"),
		Ret:  ret,
		Params: []ast.Param{
			{Name: "g", Type: cltypes.PtrTo(g.globals)},
			{Name: "p", Type: cltypes.TInt},
		},
	}
	savedLocals, savedLoops, savedVecs := g.locals, g.loopVars, g.vecVars
	g.locals, g.loopVars, g.vecVars = nil, []string{"p"}, nil
	body := &ast.Block{}
	n := 2 + g.intn(5)
	for i := 0; i < n && g.budget > 0; i++ {
		body.Stmts = append(body.Stmts, g.stmt(2))
	}
	body.Stmts = append(body.Stmts, &ast.Return{X: g.expr(ret, 3)})
	f.Body = body
	g.locals, g.loopVars, g.vecVars = savedLocals, savedLoops, savedVecs
	g.funcs = append(g.funcs, f)
}

// makeKernel assembles the kernel: globals struct instance, checksum
// accumulator, mode-specific communication state, a top-level statement
// sequence interleaving computation with communication constructs, the
// group-leader folds, and the final result store.
func (g *gen) makeKernel() {
	wl := g.nd.GroupLinear()
	k := &ast.FuncDecl{
		Name:     "entry",
		Ret:      cltypes.TVoid,
		IsKernel: true,
		Params: []ast.Param{
			{Name: "result", Type: &cltypes.Pointer{Elem: cltypes.TULong, Space: cltypes.Global}},
		},
	}
	if g.opts.EMIBlocks > 0 {
		g.deadLen = 16
		k.Params = append(k.Params, ast.Param{
			Name: "dead",
			Type: &cltypes.Pointer{Elem: cltypes.TInt, Space: cltypes.Global},
		})
	}
	if g.barriers && g.commGlobal {
		k.Params = append(k.Params, ast.Param{
			Name: "comm",
			Type: &cltypes.Pointer{Elem: cltypes.TUInt, Space: cltypes.Global},
		})
	}
	if g.sections {
		k.Params = append(k.Params,
			ast.Param{Name: "sec_c", Type: &cltypes.Pointer{Elem: cltypes.TUInt, Space: cltypes.Global}},
			ast.Param{Name: "sec_s", Type: &cltypes.Pointer{Elem: cltypes.TUInt, Space: cltypes.Global}},
		)
	}
	body := &ast.Block{}
	add := func(s ast.Stmt) { body.Stmts = append(body.Stmts, s) }

	// struct S0 gs = {...}; struct S0 *g = &gs;
	add(&ast.DeclStmt{Decl: &ast.VarDecl{Name: "gs", Type: g.globals, Init: g.initFor(g.globals)}})
	add(&ast.DeclStmt{Decl: &ast.VarDecl{
		Name: "g", Type: cltypes.PtrTo(g.globals),
		Init: &ast.Unary{Op: ast.AddrOf, X: ref("gs")},
	}})
	// ulong crc = <offset basis>;
	add(&ast.DeclStmt{Decl: &ast.VarDecl{
		Name: "crc", Type: cltypes.TULong,
		Init: ast.NewIntLit(14695981039346656037, cltypes.TULong),
	}})

	fence := ref("CLK_GLOBAL_MEM_FENCE")
	commIndex := func() ast.Expr { // comm[A_offset] or comm[goff + off]
		if g.commGlobal {
			return &ast.Index{Base: ref("comm"), Idx: &ast.Binary{Op: ast.Add, L: ref("goff"), R: ref("off")}}
		}
		return &ast.Index{Base: ref("comm"), Idx: ref("off")}
	}
	if g.barriers {
		if !g.commGlobal {
			fence = ref("CLK_LOCAL_MEM_FENCE")
			add(&ast.DeclStmt{Decl: &ast.VarDecl{
				Name: "comm", Type: cltypes.ArrayOf(cltypes.TUInt, wl), Space: cltypes.Local,
			}})
		} else {
			// The cast avoids incidental size_t/int mixing, which the
			// config-15 front end would otherwise reject in every
			// BARRIER-mode kernel.
			add(&ast.DeclStmt{Decl: &ast.VarDecl{
				Name: "goff", Type: cltypes.TUInt,
				Init: &ast.Binary{Op: ast.Mul,
					L: cast(cltypes.TUInt, call("get_linear_group_id")),
					R: lit(int64(wl), cltypes.TUInt)},
			}})
		}
		// uint off = permutations[r][llinear]; each thread owns a distinct
		// slot, so the uniform-value initialization below is race-free.
		add(&ast.DeclStmt{Decl: &ast.VarDecl{
			Name: "off", Type: cltypes.TUInt,
			Init: &ast.Index{
				Base: &ast.Index{Base: ref("permutations"), Idx: lit(int64(g.intn(permCount)), cltypes.TInt)},
				Idx:  call("get_linear_local_id"),
			},
		}})
		add(assign(commIndex(), lit(1, cltypes.TUInt)))
		add(&ast.ExprStmt{X: call("barrier", ast.CloneExpr(fence))})
	}
	if g.sections {
		add(&ast.DeclStmt{Decl: &ast.VarDecl{
			Name: "cbase", Type: cltypes.TUInt,
			Init: &ast.Binary{Op: ast.Mul,
				L: cast(cltypes.TUInt, call("get_linear_group_id")),
				R: lit(int64(g.sectionCount), cltypes.TUInt)},
		}})
	}
	if g.reductions {
		add(&ast.DeclStmt{Decl: &ast.VarDecl{
			Name: "red", Type: cltypes.ArrayOf(cltypes.TUInt, 1), Space: cltypes.Local, Volatile: true,
		}})
		add(&ast.DeclStmt{Decl: &ast.VarDecl{
			Name: "total", Type: cltypes.TULong, Init: lit(0, cltypes.TULong),
		}})
		leaderInit := &ast.If{
			Cond: &ast.Binary{Op: ast.EQ, L: call("get_linear_local_id"), R: lit(0, cltypes.TULong)},
			Then: &ast.Block{Stmts: []ast.Stmt{assign(&ast.Index{Base: ref("red"), Idx: lit(0, cltypes.TInt)}, lit(0, cltypes.TUInt))}},
		}
		add(leaderInit)
		add(&ast.ExprStmt{X: call("barrier", ref("CLK_LOCAL_MEM_FENCE"))})
	}

	// Top-level statement sequence: computation interleaved with
	// communication constructs. A minority of kernels carry a heavy
	// compute loop, giving the runtime distribution the long tail behind
	// the paper's timeout rates.
	var top []ast.Stmt
	if g.chance(0.22) {
		top = append(top, g.heavyLoop())
	}
	nTop := 6 + g.intn(8)
	for i := 0; i < nTop; i++ {
		switch {
		case g.barriers && g.chance(0.35):
			top = append(top, g.barrierConstruct(commIndex, fence)...)
		case g.sections && g.chance(0.3):
			top = append(top, g.atomicSection())
		case g.reductions && g.chance(0.3):
			top = append(top, g.atomicReduction()...)
		default:
			if g.budget > 0 {
				top = append(top, g.stmt(0))
			}
			// Checksum capture of a random globals field
			// (transparent_crc analog).
			top = append(top, g.crcCapture())
		}
	}
	// Inject EMI blocks at random top-level positions (§5).
	for i := 0; i < g.opts.EMIBlocks; i++ {
		pos := g.intn(len(top) + 1)
		blk := g.emiBlock()
		top = append(top[:pos], append([]ast.Stmt{blk}, top[pos:]...)...)
	}
	body.Stmts = append(body.Stmts, top...)

	// Final folds.
	llinear := call("get_linear_local_id")
	if g.barriers {
		body.Stmts = append(body.Stmts,
			&ast.ExprStmt{X: call("barrier", ast.CloneExpr(fence))},
			assign(ref("crc"), call("crc64", ref("crc"), cast(cltypes.TULong, commIndex()))),
		)
	}
	if g.sections || g.reductions {
		// One synchronization before the leader folds shared results, so
		// the leader observes every thread's contribution.
		body.Stmts = append(body.Stmts, &ast.ExprStmt{X: call("barrier", ref("CLK_GLOBAL_MEM_FENCE"))})
		leaderFold := &ast.Block{}
		if g.sections {
			iv := g.fresh("i")
			loop := &ast.For{
				Init: &ast.DeclStmt{Decl: &ast.VarDecl{Name: iv, Type: cltypes.TInt, Init: lit(0, cltypes.TInt)}},
				Cond: &ast.Binary{Op: ast.LT, L: ref(iv), R: lit(int64(g.sectionCount), cltypes.TInt)},
				Post: &ast.Unary{Op: ast.PostInc, X: ref(iv)},
				Body: &ast.Block{Stmts: []ast.Stmt{
					assign(ref("crc"), call("crc64", ref("crc"), cast(cltypes.TULong,
						&ast.Index{Base: ref("sec_s"), Idx: &ast.Binary{Op: ast.Add, L: ref("cbase"), R: cast(cltypes.TUInt, ref(iv))}}))),
				}},
			}
			leaderFold.Stmts = append(leaderFold.Stmts, loop)
		}
		if g.reductions {
			leaderFold.Stmts = append(leaderFold.Stmts,
				assign(ref("crc"), call("crc64", ref("crc"), ref("total"))))
		}
		body.Stmts = append(body.Stmts, &ast.If{
			Cond: &ast.Binary{Op: ast.EQ, L: llinear, R: lit(0, cltypes.TULong)},
			Then: leaderFold,
		})
	}
	// result[tlinear] = crc;
	body.Stmts = append(body.Stmts, assign(
		&ast.Index{Base: ref("result"), Idx: call("get_linear_global_id")},
		ref("crc"),
	))
	k.Body = body
	g.prog.Funcs = append(g.prog.Funcs, k)
}

// crcCapture folds a random globals-struct scalar into the checksum.
func (g *gen) crcCapture() ast.Stmt {
	var val ast.Expr
	f := g.globals.Fields[g.intn(len(g.globals.Fields))]
	base := &ast.Member{Base: ref("g"), Name: f.Name, Arrow: true}
	switch ft := f.Type.(type) {
	case *cltypes.Scalar:
		val = base
	case *cltypes.Array:
		val = &ast.Index{Base: base, Idx: lit(int64(g.intn(ft.Len)), cltypes.TInt)}
	case *cltypes.StructT:
		inner := ft.Fields[0]
		val = &ast.Member{Base: base, Name: inner.Name}
		if at, ok := inner.Type.(*cltypes.Array); ok {
			val = &ast.Index{Base: val, Idx: lit(int64(g.intn(at.Len)), cltypes.TInt)}
		}
	default:
		val = lit(0, cltypes.TInt)
	}
	return assign(ref("crc"), call("crc64", ref("crc"), cast(cltypes.TULong, val)))
}

// barrierConstruct emits the §4.2 BARRIER-mode idiom: an optional
// communication access to comm[off], then a synchronization point that
// re-distributes slot ownership via the constant permutation table.
func (g *gen) barrierConstruct(commIndex func() ast.Expr, fence ast.Expr) []ast.Stmt {
	var out []ast.Stmt
	if g.chance(0.7) { // communication write: comm[off] = comm[off] + uniform
		out = append(out, assign(commIndex(),
			&ast.Binary{Op: ast.Add, L: commIndex(),
				R: cast(cltypes.TUInt, g.uniformExpr(cltypes.TUInt, 2))}))
	}
	if g.chance(0.7) { // communication read folds into the checksum only
		out = append(out, assign(ref("crc"),
			call("crc64", ref("crc"), cast(cltypes.TULong, commIndex()))))
	}
	// barrier(FENCE); off = permutations[rnd_i][llinear];
	out = append(out,
		&ast.ExprStmt{X: call("barrier", ast.CloneExpr(fence))},
		assign(ref("off"), &ast.Index{
			Base: &ast.Index{Base: ref("permutations"), Idx: lit(int64(g.intn(permCount)), cltypes.TInt)},
			Idx:  call("get_linear_local_id"),
		}),
	)
	return out
}

// atomicSection emits the §4.2 ATOMIC SECTION idiom:
//
//	if (atomic_inc(c) == rnd_i) { locals...; atomic_add(s, hash); }
//
// Assignments inside the section modify only section-local data, so the
// thread's state is unchanged on exit, and the hash (the sum of the
// section locals) is uniform across threads — whichever thread wins the
// counter race contributes the same value.
func (g *gen) atomicSection() ast.Stmt {
	kIdx := lit(int64(g.intn(g.sectionCount)), cltypes.TInt)
	counter := &ast.Index{Base: ref("sec_c"), Idx: &ast.Binary{Op: ast.Add, L: ref("cbase"), R: cast(cltypes.TUInt, kIdx)}}
	special := &ast.Index{Base: ref("sec_s"), Idx: &ast.Binary{Op: ast.Add, L: ref("cbase"), R: cast(cltypes.TUInt, ast.CloneExpr(kIdx))}}
	rnd := g.intn(2 * g.nd.GroupLinear()) // sometimes no thread enters
	blk := &ast.Block{}
	var names []string
	n := 1 + g.intn(3)
	for i := 0; i < n; i++ {
		name := g.fresh("sl")
		names = append(names, name)
		blk.Stmts = append(blk.Stmts, &ast.DeclStmt{Decl: &ast.VarDecl{
			Name: name, Type: cltypes.TUInt,
			Init: cast(cltypes.TUInt, g.uniformExpr(cltypes.TUInt, 2)),
		}})
	}
	for i := 0; i < 1+g.intn(3); i++ {
		target := names[g.intn(len(names))]
		blk.Stmts = append(blk.Stmts, assign(ref(target),
			cast(cltypes.TUInt, g.uniformExprWith(cltypes.TUInt, 2, names))))
	}
	var hash ast.Expr = ref(names[0])
	for _, nm := range names[1:] {
		hash = &ast.Binary{Op: ast.Add, L: hash, R: ref(nm)}
	}
	blk.Stmts = append(blk.Stmts, &ast.ExprStmt{X: call("atomic_add",
		&ast.Unary{Op: ast.AddrOf, X: special}, hash)})
	return &ast.If{
		Cond: &ast.Binary{Op: ast.EQ,
			L: call("atomic_inc", &ast.Unary{Op: ast.AddrOf, X: counter}),
			R: lit(int64(rnd), cltypes.TUInt)},
		Then: blk,
	}
}

// atomic ops available for reductions: commutative and associative (§4.2).
var reductionOps = []string{"atomic_add", "atomic_min", "atomic_max", "atomic_or", "atomic_and", "atomic_xor"}

// atomicReduction emits the §4.2 ATOMIC REDUCTION idiom.
func (g *gen) atomicReduction() []ast.Stmt {
	op := reductionOps[g.intn(len(reductionOps))]
	// The contributed expression may be thread-dependent (derived from the
	// checksum): commutativity and associativity make the reduction order
	// irrelevant.
	var contrib ast.Expr
	if g.chance(0.4) {
		contrib = cast(cltypes.TUInt, ref("crc"))
	} else {
		contrib = cast(cltypes.TUInt, g.uniformExpr(cltypes.TUInt, 2))
	}
	red0 := func() ast.Expr { return &ast.Index{Base: ref("red"), Idx: lit(0, cltypes.TInt)} }
	leader := &ast.If{
		Cond: &ast.Binary{Op: ast.EQ, L: call("get_linear_local_id"), R: lit(0, cltypes.TULong)},
		Then: &ast.Block{Stmts: []ast.Stmt{
			assign(ref("total"), &ast.Binary{Op: ast.Add, L: ref("total"), R: cast(cltypes.TULong, red0())}),
		}},
	}
	return []ast.Stmt{
		&ast.ExprStmt{X: call(op, &ast.Unary{Op: ast.AddrOf, X: red0()}, contrib)},
		&ast.ExprStmt{X: call("barrier", ref("CLK_LOCAL_MEM_FENCE"))},
		leader,
		&ast.ExprStmt{X: call("barrier", ref("CLK_LOCAL_MEM_FENCE"))},
	}
}

// emiBlock builds a dead-by-construction EMI block (§5):
//
//	if (dead[rnd1] < dead[rnd2]) { statements }
//
// with rnd2 < rnd1; the host initializes dead[j] = j, so the guard is
// false by construction and the compiler cannot know it.
func (g *gen) emiBlock() ast.Stmt {
	r1 := 1 + g.intn(g.deadLen-1)
	r2 := g.intn(r1)
	blk := &ast.Block{}
	// EMI blocks are inserted at arbitrary positions after generation, so
	// they may only reference the globals struct and their own locals —
	// never surrounding locals, whose declarations might end up later in
	// the statement order.
	savedLocals, savedLoops, savedVecs := g.locals, g.loopVars, g.vecVars
	g.locals, g.loopVars, g.vecVars = nil, nil, nil
	saved := g.budget
	g.budget = 4 + g.intn(6)
	for g.budget > 0 {
		blk.Stmts = append(blk.Stmts, g.stmt(1))
	}
	g.budget = saved
	g.locals, g.loopVars, g.vecVars = savedLocals, savedLoops, savedVecs
	return &ast.If{
		Cond: &ast.Binary{Op: ast.LT,
			L: &ast.Index{Base: ref("dead"), Idx: lit(int64(r1), cltypes.TInt)},
			R: &ast.Index{Base: ref("dead"), Idx: lit(int64(r2), cltypes.TInt)}},
		Then: blk,
	}
}
