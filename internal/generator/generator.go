package generator

import (
	"fmt"
	"math/rand"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/exec"
)

// Mode selects the generation strategy (paper §4, Table 4 row groups).
type Mode int

// The six CLsmith modes.
const (
	ModeBasic Mode = iota
	ModeVector
	ModeBarrier
	ModeAtomicSection
	ModeAtomicReduction
	ModeAll
)

// Modes lists all six modes in paper order.
var Modes = []Mode{ModeBasic, ModeVector, ModeBarrier, ModeAtomicSection, ModeAtomicReduction, ModeAll}

// String returns the paper's mode name.
func (m Mode) String() string {
	switch m {
	case ModeBasic:
		return "BASIC"
	case ModeVector:
		return "VECTOR"
	case ModeBarrier:
		return "BARRIER"
	case ModeAtomicSection:
		return "ATOMIC SECTION"
	case ModeAtomicReduction:
		return "ATOMIC REDUCTION"
	case ModeAll:
		return "ALL"
	}
	return "?"
}

// ParseMode resolves a mode name (case-sensitive, paper spelling or the
// compact forms basic/vector/barrier/atomic_section/atomic_reduction/all).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "BASIC", "basic":
		return ModeBasic, nil
	case "VECTOR", "vector":
		return ModeVector, nil
	case "BARRIER", "barrier":
		return ModeBarrier, nil
	case "ATOMIC SECTION", "atomic_section":
		return ModeAtomicSection, nil
	case "ATOMIC REDUCTION", "atomic_reduction":
		return ModeAtomicReduction, nil
	case "ALL", "all":
		return ModeAll, nil
	}
	return 0, fmt.Errorf("generator: unknown mode %q", s)
}

// Options configures generation.
type Options struct {
	Mode Mode
	Seed int64
	// EMIBlocks injects this many dead-by-construction EMI blocks (§5).
	EMIBlocks int
	// MaxTotalThreads caps the randomized grid (the paper samples
	// [100,10000); the default here is laptop-scale). Minimum 4.
	MaxTotalThreads int
	// StmtBudget bounds the number of generated statements (default 60).
	StmtBudget int
	// Features, when non-nil, overrides the Mode-derived feature switches
	// with an explicit subset — the swarm-testing hook: a fuzzing campaign
	// samples a random feature subset per round instead of committing to
	// one of the six fixed modes. Mode still names the bucket the kernel
	// reports (and its buffer conventions follow the features actually
	// enabled, as always).
	Features *FeatureSet
}

// FeatureSet is an explicit on/off assignment for the four generator
// feature dimensions the six CLsmith modes are fixed points of.
type FeatureSet struct {
	Vectors    bool
	Barriers   bool
	Sections   bool
	Reductions bool
}

// Features returns the Mode's implied feature set.
func (m Mode) Features() FeatureSet {
	switch m {
	case ModeVector:
		return FeatureSet{Vectors: true}
	case ModeBarrier:
		return FeatureSet{Barriers: true}
	case ModeAtomicSection:
		return FeatureSet{Sections: true}
	case ModeAtomicReduction:
		return FeatureSet{Reductions: true}
	case ModeAll:
		return FeatureSet{Vectors: true, Barriers: true, Sections: true, Reductions: true}
	}
	return FeatureSet{}
}

// Kernel is a generated test case.
type Kernel struct {
	Src  string
	ND   exec.NDRange
	Mode Mode
	Seed int64
	// DeadLen is the length of the EMI dead array (0 when no EMI blocks).
	DeadLen int
	// NeedsCommBuffers reports whether the kernel takes the BARRIER-mode
	// global communication array ("comm") as a parameter.
	NeedsComm bool
	// CommLen is the required length of the comm buffer.
	CommLen int
	// NeedsSections reports whether the kernel takes the ATOMIC SECTION
	// counter/special-value buffers ("sec_c"/"sec_s").
	NeedsSections bool
	// SectionLen is the required length of each section buffer.
	SectionLen int
}

// Buffers allocates the argument set a generated kernel needs, including
// the host-initialized EMI dead array (dead[j] = j, §5), and returns the
// result buffer.
func (k *Kernel) Buffers() (exec.Args, *exec.Buffer) {
	args := exec.Args{}
	result := exec.NewBuffer(cltypes.TULong, k.ND.GlobalLinear())
	args["result"] = exec.Arg{Buf: result}
	if k.DeadLen > 0 {
		dead := exec.NewBuffer(cltypes.TInt, k.DeadLen)
		for i := 0; i < k.DeadLen; i++ {
			dead.SetScalar(i, uint64(i))
		}
		args["dead"] = exec.Arg{Buf: dead}
	}
	if k.NeedsComm {
		comm := exec.NewBuffer(cltypes.TUInt, k.CommLen)
		comm.Fill(1) // uniform initial value, §4.2
		args["comm"] = exec.Arg{Buf: comm}
	}
	if k.NeedsSections {
		args["sec_c"] = exec.Arg{Buf: exec.NewBuffer(cltypes.TUInt, k.SectionLen)}
		args["sec_s"] = exec.Arg{Buf: exec.NewBuffer(cltypes.TUInt, k.SectionLen)}
	}
	return args, result
}

// InvertedDeadBuffers is Buffers with the dead array inverted
// (dead[j] = d-1-j), which makes every EMI block live; the CLsmith+EMI
// campaign uses it to discard base programs whose EMI blocks all sit in
// already-dead code (§7.4).
func (k *Kernel) InvertedDeadBuffers() (exec.Args, *exec.Buffer) {
	args, result := k.Buffers()
	if k.DeadLen > 0 {
		dead := args["dead"].Buf
		for i := 0; i < k.DeadLen; i++ {
			dead.SetScalar(i, uint64(k.DeadLen-1-i))
		}
	}
	return args, result
}

// permutation count for the BARRIER mode permutations table (§4.2: d = 10).
const permCount = 10

// Generate produces a random deterministic kernel.
func Generate(opts Options) *Kernel {
	if opts.MaxTotalThreads < 4 {
		opts.MaxTotalThreads = 256
	}
	if opts.StmtBudget <= 0 {
		opts.StmtBudget = 60
	}
	g := &gen{
		rng:  rand.New(rand.NewSource(opts.Seed)),
		opts: opts,
		prog: &ast.Program{},
	}
	fs := opts.Mode.Features()
	if opts.Features != nil {
		fs = *opts.Features
	}
	g.vectors, g.barriers, g.sections, g.reductions = fs.Vectors, fs.Barriers, fs.Sections, fs.Reductions
	g.build()
	return &Kernel{
		Src:           ast.Print(g.prog),
		ND:            g.nd,
		Mode:          opts.Mode,
		Seed:          opts.Seed,
		DeadLen:       g.deadLen,
		NeedsComm:     g.commGlobal,
		CommLen:       g.nd.GlobalLinear(),
		NeedsSections: g.sections,
		SectionLen:    g.sectionCount * g.numGroups(),
	}
}

// gen carries generation state.
type gen struct {
	rng  *rand.Rand
	opts Options
	prog *ast.Program

	vectors    bool
	barriers   bool
	sections   bool
	reductions bool

	nd           exec.NDRange
	globals      *cltypes.StructT // the globals struct S0 (§4.1)
	structs      []*cltypes.StructT
	funcs        []*ast.FuncDecl
	nameCounter  int
	budget       int
	deadLen      int
	commGlobal   bool // BARRIER-mode array in global (vs local) memory
	sizeTMix     bool // emit raw size_t/int mixing in this program
	sizeTMixLeft int  // remaining raw-mix occurrences
	commaProg    bool // emit comma operators in this program
	commaLeft    int  // remaining comma occurrences
	sectionCount int
	loopDepth    int

	// scope tracking during statement generation: in-scope scalar locals
	// by type and loop counters (always int, always non-negative).
	locals   []localVar
	loopVars []string
	vecVars  []vecVar
}

type localVar struct {
	name string
	typ  *cltypes.Scalar
}

type vecVar struct {
	name string
	typ  *cltypes.Vector
}

func (g *gen) numGroups() int {
	n := g.nd.NumGroups()
	return n[0] * n[1] * n[2]
}

func (g *gen) fresh(prefix string) string {
	g.nameCounter++
	return fmt.Sprintf("%s_%d", prefix, g.nameCounter)
}

func (g *gen) chance(p float64) bool { return g.rng.Float64() < p }

func (g *gen) intn(n int) int { return g.rng.Intn(n) }

// pickGrid randomizes the NDRange (§4.1 "Randomizing grid and group
// dimensions"): a random total thread count, then random divisors for the
// group shape, with the work-group linear size capped at 256.
func (g *gen) pickGrid() {
	total := 4 + g.intn(g.opts.MaxTotalThreads-3)
	// Factor the group size out of the total: choose a work-group linear
	// size dividing total and at most min(total, 256).
	var divisors []int
	for d := 1; d <= total && d <= 256; d++ {
		if total%d == 0 {
			divisors = append(divisors, d)
		}
	}
	wl := divisors[g.intn(len(divisors))]
	groups := total / wl
	// Distribute wl over 3 dimensions.
	wx, wy, wz := split3(g.rng, wl)
	gx, gy, gz := split3(g.rng, groups)
	g.nd = exec.NDRange{
		Global: [3]int{wx * gx, wy * gy, wz * gz},
		Local:  [3]int{wx, wy, wz},
	}
}

// split3 factors n into three factors (1 and 2D grids arise when factors
// are 1, matching §4.1).
func split3(rng *rand.Rand, n int) (int, int, int) {
	a := randomDivisor(rng, n)
	n /= a
	b := randomDivisor(rng, n)
	c := n / b
	return a, b, c
}

func randomDivisor(rng *rand.Rand, n int) int {
	var divs []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	return divs[rng.Intn(len(divs))]
}

// scalar type pools.
var scalarPool = []*cltypes.Scalar{
	cltypes.TChar, cltypes.TUChar, cltypes.TShort, cltypes.TUShort,
	cltypes.TInt, cltypes.TUInt, cltypes.TLong, cltypes.TULong,
}

func (g *gen) randScalar() *cltypes.Scalar { return scalarPool[g.intn(len(scalarPool))] }

func (g *gen) randVector() *cltypes.Vector {
	elem := g.randScalar()
	return cltypes.VecOf(elem, cltypes.VectorLens[g.intn(len(cltypes.VectorLens))])
}

func lit(v int64, t *cltypes.Scalar) *ast.IntLit { return ast.NewIntLit(uint64(v), t) }

func ref(name string) *ast.VarRef { return ast.NewVarRef(name) }

func call(name string, args ...ast.Expr) *ast.Call { return &ast.Call{Name: name, Args: args} }

func assign(lhs, rhs ast.Expr) *ast.ExprStmt {
	return &ast.ExprStmt{X: &ast.AssignExpr{Op: ast.Assign, LHS: lhs, RHS: rhs}}
}

func cast(t cltypes.Type, x ast.Expr) *ast.Cast { return &ast.Cast{To: t, X: x} }
