package generator

import (
	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
)

// stmt generates one random statement at nesting depth d, spending budget.
// The statements maintain the determinism discipline: no thread-local ids,
// no checksum references (the checksum is only touched by the designated
// capture idioms emitted in makeKernel).
func (g *gen) stmt(d int) ast.Stmt {
	g.budget--
	roll := g.intn(100)
	switch {
	case roll < 18:
		return g.assignGlobalsField()
	case roll < 28:
		return g.declLocal()
	case roll < 38 && len(g.locals) > 0:
		return g.assignLocal()
	case roll < 50 && d < 3:
		return g.ifStmt(d)
	case roll < 60 && d < 3 && g.loopDepth < 3:
		return g.forStmt(d)
	case roll < 66 && d < 3 && g.loopDepth < 3:
		return g.whileCountdown(d)
	case roll < 74 && len(g.funcs) > 0:
		return g.callStmt()
	case roll < 84:
		return g.compoundAssign()
	case roll < 94 && g.vectors:
		return g.vectorStmt()
	default:
		return g.assignGlobalsField()
	}
}

// globalsFieldLV returns an lvalue into the globals struct together with
// its scalar type, preferring plain scalar fields.
func (g *gen) globalsFieldLV() (ast.Expr, *cltypes.Scalar) {
	for tries := 0; tries < 8; tries++ {
		f := g.globals.Fields[g.intn(len(g.globals.Fields))]
		base := &ast.Member{Base: ref("g"), Name: f.Name, Arrow: true}
		switch ft := f.Type.(type) {
		case *cltypes.Scalar:
			return base, ft
		case *cltypes.Array:
			if et, ok := ft.Elem.(*cltypes.Scalar); ok {
				return &ast.Index{Base: base, Idx: g.index(ft.Len)}, et
			}
		case *cltypes.StructT:
			if ft.IsUnion {
				// Only the first union member is ever accessed (no type
				// punning, which is implementation-defined).
				if st, ok := ft.Fields[0].Type.(*cltypes.Scalar); ok {
					return &ast.Member{Base: base, Name: ft.Fields[0].Name}, st
				}
				continue
			}
			inner := ft.Fields[g.intn(len(ft.Fields))]
			switch it := inner.Type.(type) {
			case *cltypes.Scalar:
				return &ast.Member{Base: base, Name: inner.Name}, it
			case *cltypes.Array:
				if et, ok := it.Elem.(*cltypes.Scalar); ok {
					return &ast.Index{
						Base: &ast.Member{Base: base, Name: inner.Name},
						Idx:  g.index(it.Len),
					}, et
				}
			}
		}
	}
	// Fallback: first scalar field, or a synthesized zero assignment.
	for _, f := range g.globals.Fields {
		if st, ok := f.Type.(*cltypes.Scalar); ok {
			return &ast.Member{Base: ref("g"), Name: f.Name, Arrow: true}, st
		}
	}
	return ref("gs_missing"), cltypes.TInt
}

// index generates an in-bounds array index: a literal, or a loop variable
// reduced modulo the length (loop counters are non-negative by
// construction, so % is well-defined).
func (g *gen) index(length int) ast.Expr {
	if len(g.loopVars) > 0 && g.chance(0.4) {
		// ((uint)v) % len is in range even for negative v (the function
		// parameter p can be any int).
		lv := g.loopVars[g.intn(len(g.loopVars))]
		return &ast.Binary{Op: ast.Mod,
			L: cast(cltypes.TUInt, ref(lv)),
			R: lit(int64(length), cltypes.TUInt)}
	}
	return lit(int64(g.intn(length)), cltypes.TInt)
}

func (g *gen) assignGlobalsField() ast.Stmt {
	lv, t := g.globalsFieldLV()
	return assign(lv, g.expr(t, 3))
}

func (g *gen) declLocal() ast.Stmt {
	t := g.randScalar()
	// Generate the initializer before registering the name, so a variable
	// never appears in its own initializer.
	init := g.expr(t, 3)
	name := g.fresh("l")
	g.locals = append(g.locals, localVar{name: name, typ: t})
	return &ast.DeclStmt{Decl: &ast.VarDecl{Name: name, Type: t, Init: init}}
}

func (g *gen) assignLocal() ast.Stmt {
	v := g.locals[g.intn(len(g.locals))]
	return assign(ref(v.name), g.expr(v.typ, 3))
}

var compoundOps = []ast.AssignOp{
	ast.AddAssign, ast.SubAssign, ast.MulAssign,
	ast.AndAssign, ast.OrAssign, ast.XorAssign,
}

// compoundAssign emits a compound assignment with a well-defined operator
// (add/sub/mul wrap; bitwise are total — division and shifts only appear
// through safe wrappers).
func (g *gen) compoundAssign() ast.Stmt {
	op := compoundOps[g.intn(len(compoundOps))]
	var lhs ast.Expr
	var t *cltypes.Scalar
	if len(g.locals) > 0 && g.chance(0.5) {
		v := g.locals[g.intn(len(g.locals))]
		lhs, t = ref(v.name), v.typ
	} else {
		lhs, t = g.globalsFieldLV()
	}
	return &ast.ExprStmt{X: &ast.AssignExpr{Op: op, LHS: lhs, RHS: g.expr(t, 2)}}
}

func (g *gen) ifStmt(d int) ast.Stmt {
	st := &ast.If{Cond: g.expr(cltypes.TInt, 3), Then: g.block(d + 1)}
	if g.chance(0.4) {
		st.Else = g.block(d + 1)
	}
	return st
}

// block generates a nested block with its own lexical scope.
func (g *gen) block(d int) *ast.Block {
	savedL, savedLoop, savedV := len(g.locals), len(g.loopVars), len(g.vecVars)
	b := &ast.Block{}
	n := 1 + g.intn(4)
	for i := 0; i < n && g.budget > 0; i++ {
		b.Stmts = append(b.Stmts, g.stmt(d))
	}
	if len(b.Stmts) == 0 {
		b.Stmts = append(b.Stmts, g.assignGlobalsField())
	}
	g.locals = g.locals[:savedL]
	g.loopVars = g.loopVars[:savedLoop]
	g.vecVars = g.vecVars[:savedV]
	return b
}

// tripCount biases loop lengths small, shrinking with nesting depth so
// that incidental loop nests stay cheap; the controlled heavy tail of the
// runtime distribution comes from heavyLoop instead.
func (g *gen) tripCount() int {
	if g.loopDepth > 0 {
		return 1 + g.intn(5)
	}
	if g.chance(0.12) {
		return 8 + g.intn(25)
	}
	return 1 + g.intn(8)
}

// heavyLoop emits a doubly-nested computation loop whose iteration count
// is drawn from a wide range. It is the calibrated source of long-running
// kernels: fast configurations almost never exceed their fuel on it, while
// the slow devices of Table 1 (low fuel factors) time out at roughly the
// paper's rates.
func (g *gen) heavyLoop() ast.Stmt {
	iters := 1500 + g.intn(28000)
	n1 := 30 + g.intn(120)
	n2 := iters / n1
	if n2 < 1 {
		n2 = 1
	}
	iv, jv := g.fresh("i"), g.fresh("j")
	lv, t := g.globalsFieldLV()
	inner := &ast.Block{Stmts: []ast.Stmt{
		&ast.ExprStmt{X: &ast.AssignExpr{Op: ast.XorAssign, LHS: lv,
			RHS: cast(t, &ast.Binary{Op: ast.Add, L: ref(iv), R: ref(jv)})}},
	}}
	mkFor := func(name string, n int, body *ast.Block) *ast.For {
		return &ast.For{
			Init: &ast.DeclStmt{Decl: &ast.VarDecl{Name: name, Type: cltypes.TInt, Init: lit(0, cltypes.TInt)}},
			Cond: &ast.Binary{Op: ast.LT, L: ref(name), R: lit(int64(n), cltypes.TInt)},
			Post: &ast.Unary{Op: ast.PostInc, X: ref(name)},
			Body: body,
		}
	}
	return mkFor(iv, n1, &ast.Block{Stmts: []ast.Stmt{mkFor(jv, n2, inner)}})
}

func (g *gen) forStmt(d int) ast.Stmt {
	iv := g.fresh("i")
	k := g.tripCount()
	g.loopVars = append(g.loopVars, iv)
	g.loopDepth++
	body := g.block(d + 1)
	// Occasionally add an early exit, exercising break/continue (and the
	// EMI lift pruning's break-stripping path).
	if g.chance(0.25) && k > 2 {
		jump := ast.Stmt(&ast.Break{})
		if g.chance(0.4) {
			jump = &ast.Continue{}
		}
		cond := &ast.Binary{Op: ast.GT, L: ref(iv), R: lit(int64(g.intn(k)), cltypes.TInt)}
		body.Stmts = append(body.Stmts, &ast.If{Cond: cond, Then: &ast.Block{Stmts: []ast.Stmt{jump}}})
	}
	g.loopDepth--
	g.loopVars = g.loopVars[:len(g.loopVars)-1]
	return &ast.For{
		Init: &ast.DeclStmt{Decl: &ast.VarDecl{Name: iv, Type: cltypes.TInt, Init: lit(0, cltypes.TInt)}},
		Cond: &ast.Binary{Op: ast.LT, L: ref(iv), R: lit(int64(k), cltypes.TInt)},
		Post: &ast.Unary{Op: ast.PostInc, X: ref(iv)},
		Body: body,
	}
}

// whileCountdown emits a structurally terminating while loop:
// int w = K; while (w > 0) { w--; ... }.
func (g *gen) whileCountdown(d int) ast.Stmt {
	wv := g.fresh("w")
	k := g.tripCount()
	g.loopDepth++
	body := g.block(d + 1)
	g.loopDepth--
	body.Stmts = append([]ast.Stmt{
		&ast.ExprStmt{X: &ast.Unary{Op: ast.PostDec, X: ref(wv)}},
	}, body.Stmts...)
	return &ast.Block{Stmts: []ast.Stmt{
		&ast.DeclStmt{Decl: &ast.VarDecl{Name: wv, Type: cltypes.TInt, Init: lit(int64(k), cltypes.TInt)}},
		&ast.While{
			Cond: &ast.Binary{Op: ast.GT, L: ref(wv), R: lit(0, cltypes.TInt)},
			Body: body,
		},
	}}
}

func (g *gen) callStmt() ast.Stmt {
	f := g.funcs[g.intn(len(g.funcs))]
	c := call(f.Name, ref("g"), g.expr(cltypes.TInt, 2))
	if g.chance(0.6) {
		lv, t := g.globalsFieldLV()
		return assign(lv, cast(t, c))
	}
	return &ast.ExprStmt{X: c}
}

// vectorStmt declares, mutates or extracts from vector variables
// (VECTOR mode, §4.1).
func (g *gen) vectorStmt() ast.Stmt {
	if len(g.vecVars) == 0 || g.chance(0.4) {
		vt := g.randVector()
		init := g.vecExpr(vt, 2) // before registering: no self-reference
		name := g.fresh("v")
		g.vecVars = append(g.vecVars, vecVar{name: name, typ: vt})
		return &ast.DeclStmt{Decl: &ast.VarDecl{Name: name, Type: vt, Init: init}}
	}
	v := g.vecVars[g.intn(len(g.vecVars))]
	if g.chance(0.6) {
		return assign(ref(v.name), g.vecExpr(v.typ, 2))
	}
	// Extract a component into the globals struct so vector results flow
	// into the checksum.
	lv, t := g.globalsFieldLV()
	sel := swizzleName(g.intn(v.typ.Len))
	sw := &ast.Swizzle{Base: ref(v.name), Sel: sel}
	return assign(lv, cast(t, sw))
}

// swizzleName returns the selector for a single component index.
func swizzleName(i int) string {
	if i < 4 {
		return string([]byte{"xyzw"[i]})
	}
	return "s" + string([]byte{"0123456789abcdef"[i]})
}
