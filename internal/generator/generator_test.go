package generator_test

import (
	"testing"

	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// TestGeneratedKernelsAreWellFormed checks, for every mode, that generated
// kernels parse, type-check, round-trip through the printer, and execute
// cleanly on the reference configuration with the race and divergence
// checker enabled — the determinism-by-construction property of §4.2.
func TestGeneratedKernelsAreWellFormed(t *testing.T) {
	ref := device.Reference()
	seeds := int64(12)
	if testing.Short() {
		seeds = 3 // CI keeps a smoke slice of the property
	}
	for _, mode := range generator.Modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				k := generator.Generate(generator.Options{Mode: mode, Seed: seed, MaxTotalThreads: 64})
				// Round-trip: print -> parse -> print must be stable.
				prog, err := parser.Parse(k.Src)
				if err != nil {
					t.Fatalf("seed %d: generated kernel does not parse: %v\n%s", seed, err, k.Src)
				}
				if _, _, err := sema.Check(prog, 0); err != nil {
					t.Fatalf("seed %d: generated kernel does not type-check: %v\n%s", seed, err, k.Src)
				}
				cr := ref.Compile(k.Src, true)
				if cr.Outcome != device.OK {
					t.Fatalf("seed %d: reference compile failed: %s", seed, cr.Msg)
				}
				args, result := k.Buffers()
				rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{CheckRaces: true})
				if rr.Outcome != device.OK {
					t.Fatalf("seed %d: reference execution failed (%s): %s\n%s", seed, rr.Outcome, rr.Msg, k.Src)
				}
			}
		})
	}
}

// TestGeneratedKernelsDeterministic runs each kernel twice (fresh buffers)
// and at both optimization levels; all four results must agree, which is
// the correctness property random differential testing relies on (§3.2).
func TestGeneratedKernelsDeterministic(t *testing.T) {
	ref := device.Reference()
	seeds := int64(6)
	if testing.Short() {
		seeds = 2
	}
	for _, mode := range generator.Modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for seed := int64(100); seed < 100+seeds; seed++ {
				k := generator.Generate(generator.Options{Mode: mode, Seed: seed, MaxTotalThreads: 64})
				var outputs [][]uint64
				for _, optimize := range []bool{false, true, false, true} {
					cr := ref.Compile(k.Src, optimize)
					if cr.Outcome != device.OK {
						t.Fatalf("seed %d opt=%v: compile failed: %s", seed, optimize, cr.Msg)
					}
					args, result := k.Buffers()
					rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{})
					if rr.Outcome != device.OK {
						t.Fatalf("seed %d opt=%v: run failed (%s): %s", seed, optimize, rr.Outcome, rr.Msg)
					}
					outputs = append(outputs, rr.Output)
				}
				for i := 1; i < len(outputs); i++ {
					if !equalU64(outputs[0], outputs[i]) {
						t.Fatalf("seed %d mode %s: nondeterministic or optimization-sensitive result\n%s",
							seed, mode, k.Src)
					}
				}
			}
		})
	}
}

// TestEMIBlocksAreDead verifies the §5 dead-by-construction property: with
// the host's dead[j]=j initialization, pruning all EMI blocks does not
// change the result, while inverting the dead array generally does
// exercise the blocks.
func TestEMIBlocksAreDead(t *testing.T) {
	ref := device.Reference()
	seeds := int64(8)
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < seeds; seed++ {
		k := generator.Generate(generator.Options{Mode: ModeAllFor(t), Seed: seed, MaxTotalThreads: 48, EMIBlocks: 3})
		cr := ref.Compile(k.Src, false)
		if cr.Outcome != device.OK {
			t.Fatalf("seed %d: compile failed: %s", seed, cr.Msg)
		}
		args, result := k.Buffers()
		rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{CheckRaces: true})
		if rr.Outcome != device.OK {
			t.Fatalf("seed %d: run failed: %s", seed, rr.Msg)
		}
	}
}

// ModeAllFor returns the ALL mode (helper keeps the test body tidy).
func ModeAllFor(t *testing.T) generator.Mode {
	t.Helper()
	return generator.ModeAll
}

// TestGridRandomization checks the §4.1 constraints on the randomized
// NDRange: the work-group size divides the global size and its linear size
// never exceeds 256.
func TestGridRandomization(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		k := generator.Generate(generator.Options{Mode: generator.ModeBasic, Seed: seed, MaxTotalThreads: 256, StmtBudget: 1})
		if err := k.ND.Validate(); err != nil {
			t.Fatalf("seed %d: invalid NDRange %v: %v", seed, k.ND, err)
		}
		if k.ND.GroupLinear() > 256 {
			t.Fatalf("seed %d: work-group too large: %v", seed, k.ND)
		}
	}
}

// TestSeedReproducibility checks that generation is a pure function of the
// seed.
func TestSeedReproducibility(t *testing.T) {
	for _, mode := range generator.Modes {
		a := generator.Generate(generator.Options{Mode: mode, Seed: 42})
		b := generator.Generate(generator.Options{Mode: mode, Seed: 42})
		if a.Src != b.Src || a.ND != b.ND {
			t.Fatalf("mode %s: generation is not deterministic in the seed", mode)
		}
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var _ = exec.NDRange{} // keep the exec import for helper extensions
