package opt_test

import (
	"strings"
	"testing"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
	"clfuzz/internal/opt"
	"clfuzz/internal/oracle"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// compileSrc parses and checks a kernel (tests' front-end shortcut).
func compileSrc(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, _, err = sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return prog
}

// TestOptimizerPreservesSemantics is the central compiler-correctness
// property: the defect-free optimizer must not change the result of any
// generated kernel. (The configuration-level variant of this is what the
// whole paper tests for real compilers.)
func TestOptimizerPreservesSemantics(t *testing.T) {
	ref := device.Reference()
	for _, mode := range generator.Modes {
		for seed := int64(300); seed < 306; seed++ {
			k := generator.Generate(generator.Options{Mode: mode, Seed: seed, MaxTotalThreads: 48})
			var outs [][]uint64
			for _, optimize := range []bool{false, true} {
				cr := ref.Compile(k.Src, optimize)
				if cr.Outcome != device.OK {
					t.Fatalf("%s seed %d: compile: %s", mode, seed, cr.Msg)
				}
				args, result := k.Buffers()
				rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{})
				if rr.Outcome != device.OK {
					t.Fatalf("%s seed %d opt=%v: run: %s", mode, seed, optimize, rr.Msg)
				}
				outs = append(outs, rr.Output)
			}
			if !oracle.Equal(outs[0], outs[1]) {
				t.Fatalf("%s seed %d: optimizer changed the result\n%s", mode, seed, k.Src)
			}
		}
	}
}

// TestConstFold checks folding of literal arithmetic with exact evaluator
// semantics.
func TestConstFold(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{"(1 + 2 * 3)", "7"},
		{"safe_div(10, 0)", "10"},                             // safe-math fallback folds too
		{"safe_add(2147483647, 1)", "18446744071562067968UL"}, // wraps, then the outer ulong cast folds
		{"(7 > 3)", "1"},
		{"(0 && (1 / 0))", "0"},                   // short-circuit makes the fold legal
		{"rotate(1u, 0u)", "1UL"},                 // folds through the outer cast
		{"((char)200)", "18446744073709551560UL"}, // -56 sign-extends through the ulong cast
		{"safe_clamp(5, 10, 2)", "5"},             // min>max: safe fallback to x
		{"(1 ? 11 : 22)", "11"},
	}
	for _, c := range cases {
		src := "kernel void k(global ulong *out) { out[0] = (ulong)" + c.expr + "; }"
		prog := compileSrc(t, src)
		prog = opt.ConstFold(prog, 0)
		printed := ast.Print(prog)
		if !strings.Contains(printed, c.want) {
			t.Errorf("folding %s: want %q in output:\n%s", c.expr, c.want, printed)
		}
	}
}

// TestDeadCodeElim checks branch and loop elimination.
func TestDeadCodeElim(t *testing.T) {
	src := `kernel void k(global ulong *out) {
		out[0] = 1UL;
		if (0) { out[0] = 2UL; }
		if (1) { out[0] = 3UL; } else { out[0] = 4UL; }
		while (0) { out[0] = 5UL; }
		for (int i = 0; 0; i++) { out[0] = 6UL; }
		return;
		out[0] = 7UL;
	}`
	prog := compileSrc(t, src)
	prog = opt.DeadCodeElim(prog, 0)
	printed := ast.Print(prog)
	for _, gone := range []string{"2UL", "4UL", "5UL", "6UL", "7UL"} {
		if strings.Contains(printed, gone) {
			t.Errorf("dead code %s survived:\n%s", gone, printed)
		}
	}
	if !strings.Contains(printed, "3UL") {
		t.Errorf("live code eliminated:\n%s", printed)
	}
}

// TestAlgebraicPurity: x*0 folds only when x is pure.
func TestAlgebraicPurity(t *testing.T) {
	src := `struct S0 { int a; };
	int f(struct S0 *g) { g->a = 9; return 1; }
	kernel void k(global ulong *out) {
		struct S0 s = {0};
		int dead = f(&s) * 0;
		out[0] = (ulong)(uint)(s.a + dead);
	}`
	prog := compileSrc(t, src)
	prog = opt.Algebraic(prog, 0)
	printed := ast.Print(prog)
	if !strings.Contains(printed, "f((&s))") {
		t.Errorf("impure multiplication by zero was folded away:\n%s", printed)
	}
	// But a pure x*0 must fold.
	src2 := `kernel void k(global ulong *out) { int x = 3; out[0] = (ulong)(uint)(x * 0); }`
	prog2 := compileSrc(t, src2)
	prog2 = opt.Algebraic(prog2, 0)
	if strings.Contains(ast.Print(prog2), "x * 0") {
		t.Error("pure x*0 not simplified")
	}
}

// TestUnroll checks the canonical counted loop unrolls and stays correct.
func TestUnroll(t *testing.T) {
	src := `kernel void k(global ulong *out) {
		int sum = 0;
		for (int i = 0; i < 4; i++) { sum += i; }
		out[0] = (ulong)(uint)sum;
	}`
	prog := compileSrc(t, src)
	prog = opt.UnrollLoops(prog, 0)
	printed := ast.Print(prog)
	if strings.Contains(printed, "for (") {
		t.Errorf("small counted loop not unrolled:\n%s", printed)
	}
	// Semantics preserved: run both versions.
	ref := device.Reference()
	run := func(s string) uint64 {
		cr := ref.Compile(s, false)
		if cr.Outcome != device.OK {
			t.Fatalf("compile: %s", cr.Msg)
		}
		out := newOut(1)
		rr := cr.Kernel.Run(nd1(), argsOut(out), out, device.RunOptions{})
		if rr.Outcome != device.OK {
			t.Fatalf("run: %s", rr.Msg)
		}
		return rr.Output[0]
	}
	if a, b := run(src), run(printed); a != b || a != 6 {
		t.Errorf("unroll changed semantics: %d vs %d", a, b)
	}
}

// TestDeadCodeElimNestedDeadIf: a literal-true if whose body dies
// entirely (the shape ConstFold produces from folded comparisons) must
// vanish, not leave a typed-nil block statement that crashes the printer
// or the executor.
func TestDeadCodeElimNestedDeadIf(t *testing.T) {
	src := `kernel void k(global ulong *out) {
		out[0] = 1UL;
		if (1) { if (0) { out[0] = 2UL; } }
	}`
	prog := compileSrc(t, src)
	prog = opt.DeadCodeElim(prog, 0)
	printed := ast.Print(prog) // must not panic on a nil statement
	if strings.Contains(printed, "2UL") {
		t.Errorf("dead nested if survived:\n%s", printed)
	}
}

// TestOptimizeAfterExecutionSharesProgram pins the shared-program flow of
// the device back cache: one configuration may RUN the checked program
// (populating the evaluator's VarRef resolution-slot caches) before
// another configuration OPTIMIZES that same program. Unrolling must not
// clone populated slots into rewritten scope chains — a stale slot can
// validate against a same-named shadowed binding and silently read the
// wrong variable, which here would corrupt a differential verdict.
func TestOptimizeAfterExecutionSharesProgram(t *testing.T) {
	src := `kernel void k(global ulong *out) {
		int i = 100;
		ulong acc = 0UL;
		for (int i2 = 0; i2 < 4; i2++) {
			for (int j = 0; j < 2; j++) { acc += (ulong)(uint)(i2 + i); }
		}
		out[0] = acc;
	}`
	run := func(p *ast.Program) uint64 {
		out := newOut(1)
		if err := exec.Run(p, nd1(), argsOut(out), exec.Options{NoBarrier: true, NoAtomics: true}); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.Scalar(0)
	}
	prog := compileSrc(t, src)
	want := run(prog) // populate slot caches on the shared checked program
	oprog := opt.Optimize(prog, 0)
	if got := run(oprog); got != want {
		t.Fatalf("optimizing a previously executed shared program changed the result: %d != %d", got, want)
	}
	if again := run(prog); again != want {
		t.Fatalf("unoptimized shared program changed after optimization: %d != %d", again, want)
	}
}

// TestUnrollRefusals: loops the unroller must not touch.
func TestUnrollRefusals(t *testing.T) {
	srcs := []string{
		// induction variable modified in the body
		`kernel void k(global ulong *out) { int s = 0; for (int i = 0; i < 4; i++) { i = i; s++; } out[0] = (ulong)(uint)s; }`,
		// break binds to the loop
		`kernel void k(global ulong *out) { int s = 0; for (int i = 0; i < 4; i++) { if (i > 1) { break; } s++; } out[0] = (ulong)(uint)s; }`,
		// barrier inside (unrolling would change barrier identity)
		`kernel void k(global ulong *out) { for (int i = 0; i < 2; i++) { barrier(CLK_LOCAL_MEM_FENCE); } out[0] = 0UL; }`,
		// trip count too large
		`kernel void k(global ulong *out) { int s = 0; for (int i = 0; i < 100; i++) { s++; } out[0] = (ulong)(uint)s; }`,
	}
	for i, src := range srcs {
		prog := compileSrc(t, src)
		prog = opt.UnrollLoops(prog, 0)
		if !strings.Contains(ast.Print(prog), "for (") {
			t.Errorf("case %d: loop was unrolled but must not be", i)
		}
	}
}

// TestRotateFoldDefect: the Figure 2(b) defect rewrites literal rotates to
// all-ones, but only when armed.
func TestRotateFoldDefect(t *testing.T) {
	src := `kernel void k(global ulong *out) {
		out[0] = (ulong)(rotate((uint2)(1, 1), (uint2)(0, 0))).x;
	}`
	prog := compileSrc(t, src)
	prog = opt.EarlyFolds(prog, bugs.WCRotateConstFold, 0)
	if !strings.Contains(ast.Print(prog), "4294967295u") {
		t.Errorf("rotate defect did not fold to all-ones:\n%s", ast.Print(prog))
	}
	prog2 := compileSrc(t, src)
	prog2 = opt.EarlyFolds(prog2, 0, 0)
	if strings.Contains(ast.Print(prog2), "4294967295u") {
		t.Error("healthy front end corrupted rotate")
	}
}

// TestIsPure classifies side effects correctly.
func TestIsPure(t *testing.T) {
	pure := []string{"1 + 2", "safe_add(a, b)", "get_group_id(0)", "(a ? b : c)"}
	impure := []string{"a = 1", "a++", "f(a)", "(a , b++)"}
	for _, s := range pure {
		e, err := parser.ParseExpr(s)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.IsPure(e) {
			t.Errorf("%q misclassified as impure", s)
		}
	}
	for _, s := range impure {
		e, err := parser.ParseExpr(s)
		if err != nil {
			t.Fatal(err)
		}
		if opt.IsPure(e) {
			t.Errorf("%q misclassified as pure", s)
		}
	}
}

func nd1() exec.NDRange {
	return exec.NDRange{Global: [3]int{1, 1, 1}, Local: [3]int{1, 1, 1}}
}

func newOut(n int) *exec.Buffer { return exec.NewBuffer(cltypes.TULong, n) }

func argsOut(out *exec.Buffer) exec.Args { return exec.Args{"out": {Buf: out}} }
