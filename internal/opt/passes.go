package opt

import (
	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
)

// ---- constant folding ----

// ConstFold folds literal scalar arithmetic, literal conditionals, literal
// casts and literal safe-math calls, mirroring the evaluator's semantics
// exactly. With the WCSwizzleFold defect armed it miscompiles swizzles of
// literal vectors (the Intel vector defects of Table 4). Copy-on-write:
// the input program is never written to.
func ConstFold(p *ast.Program, defects bugs.Set) *ast.Program {
	return rewriteProgram(p, func(e ast.Expr) ast.Expr { return foldExpr(e, defects) })
}

func lit(e ast.Expr) (*ast.IntLit, bool) {
	l, ok := e.(*ast.IntLit)
	return l, ok
}

func scalarType(e ast.Expr) (*cltypes.Scalar, bool) {
	s, ok := e.Type().(*cltypes.Scalar)
	return s, ok
}

func makeLit(v uint64, t *cltypes.Scalar) *ast.IntLit { return ast.NewIntLit(v, t) }

func foldExpr(e ast.Expr, defects bugs.Set) ast.Expr {
	switch ex := e.(type) {
	case *ast.Unary:
		x, ok := lit(ex.X)
		if !ok {
			return e
		}
		xt, ok := scalarType(ex.X)
		if !ok {
			return e
		}
		rt, ok := scalarType(ex)
		if !ok {
			return e
		}
		switch ex.Op {
		case ast.Neg:
			return makeLit(cltypes.Neg(cltypes.Convert(x.Val, xt, rt), rt), rt)
		case ast.Pos:
			return makeLit(cltypes.Convert(x.Val, xt, rt), rt)
		case ast.BitNot:
			return makeLit(cltypes.Not(cltypes.Convert(x.Val, xt, rt), rt), rt)
		case ast.LogNot:
			return makeLit(cltypes.LNot(x.Val, xt), cltypes.TInt)
		}
		return e
	case *ast.Binary:
		return foldBinary(ex)
	case *ast.Cond:
		c, ok := lit(ex.C)
		if !ok {
			return e
		}
		ct, ok := scalarType(ex.C)
		if !ok {
			return e
		}
		var branch ast.Expr
		if cltypes.Trunc(c.Val, ct) != 0 {
			branch = ex.T
		} else {
			branch = ex.F
		}
		if bl, ok := lit(branch); ok {
			if bt, ok := scalarType(branch); ok {
				if rt, ok := scalarType(ex); ok {
					return makeLit(cltypes.Convert(bl.Val, bt, rt), rt)
				}
			}
		}
		return e
	case *ast.Cast:
		x, ok := lit(ex.X)
		if !ok {
			return e
		}
		xt, ok := scalarType(ex.X)
		if !ok {
			return e
		}
		if rt, ok := ex.To.(*cltypes.Scalar); ok {
			return makeLit(cltypes.Convert(x.Val, xt, rt), rt)
		}
		return e
	case *ast.Call:
		return foldCall(ex)
	case *ast.Swizzle:
		return foldSwizzle(ex, defects)
	}
	return e
}

func foldBinary(ex *ast.Binary) ast.Expr {
	l, lok := lit(ex.L)
	r, rok := lit(ex.R)
	lt, ltok := scalarType(ex.L)
	rt, rtok := scalarType(ex.R)
	if !ltok || !rtok {
		return ex
	}
	st, stok := scalarType(ex)
	if !stok {
		return ex
	}
	// Short-circuit folds need only a literal left operand: the right side
	// is provably (not) evaluated, so purity is irrelevant.
	if ex.Op == ast.LAnd && lok {
		if cltypes.Trunc(l.Val, lt) == 0 {
			return makeLit(0, cltypes.TInt)
		}
		if rok {
			return makeLit(uint64(b2i(cltypes.Trunc(r.Val, rt) != 0)), cltypes.TInt)
		}
		return ex
	}
	if ex.Op == ast.LOr && lok {
		if cltypes.Trunc(l.Val, lt) != 0 {
			return makeLit(1, cltypes.TInt)
		}
		if rok {
			return makeLit(uint64(b2i(cltypes.Trunc(r.Val, rt) != 0)), cltypes.TInt)
		}
		return ex
	}
	if ex.Op == ast.Comma {
		if IsPure(ex.L) {
			return ex.R
		}
		return ex
	}
	if !lok || !rok {
		return ex
	}
	if ex.Op.IsComparison() {
		ct := cltypes.UsualArith(lt, rt)
		a := cltypes.Convert(l.Val, lt, ct)
		b := cltypes.Convert(r.Val, rt, ct)
		return makeLit(compareFold(ex.Op, a, b, ct), st)
	}
	if ex.Op == ast.Shl || ex.Op == ast.Shr {
		pl := cltypes.Promote(lt)
		a := cltypes.Convert(l.Val, lt, pl)
		if ex.Op == ast.Shl {
			return makeLit(cltypes.Shl(a, r.Val, pl, rt), st)
		}
		return makeLit(cltypes.Shr(a, r.Val, pl, rt), st)
	}
	a := cltypes.Convert(l.Val, lt, st)
	b := cltypes.Convert(r.Val, rt, st)
	var v uint64
	switch ex.Op {
	case ast.Add:
		v = cltypes.Add(a, b, st)
	case ast.Sub:
		v = cltypes.Sub(a, b, st)
	case ast.Mul:
		v = cltypes.Mul(a, b, st)
	case ast.Div:
		v = cltypes.Div(a, b, st)
	case ast.Mod:
		v = cltypes.Mod(a, b, st)
	case ast.And:
		v = cltypes.And(a, b, st)
	case ast.Or:
		v = cltypes.Or(a, b, st)
	case ast.Xor:
		v = cltypes.Xor(a, b, st)
	default:
		return ex
	}
	return makeLit(v, st)
}

func compareFold(op ast.BinOp, a, b uint64, t *cltypes.Scalar) uint64 {
	switch op {
	case ast.EQ:
		return cltypes.CmpEQ(a, b, t)
	case ast.NE:
		return 1 - cltypes.CmpEQ(a, b, t)
	case ast.LT:
		return cltypes.CmpLT(a, b, t)
	case ast.LE:
		return cltypes.CmpLE(a, b, t)
	case ast.GT:
		return cltypes.CmpLT(b, a, t)
	default:
		return cltypes.CmpLE(b, a, t)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// foldCall folds safe-math and element-wise builtin calls whose arguments
// are all scalar literals. The operand buffer lives on the stack (maximum
// arity is 3, the clamp family): this function runs for every call node
// on every fold pass, and the overwhelmingly common non-literal case must
// not allocate.
func foldCall(ex *ast.Call) ast.Expr {
	switch ex.Name {
	case "safe_add", "safe_sub", "safe_mul", "safe_div", "safe_mod",
		"safe_lshift", "safe_rshift", "safe_unary_minus", "safe_clamp",
		"clamp", "rotate", "min", "max", "abs", "add_sat", "sub_sat",
		"hadd", "mul_hi", "popcount", "clz":
	default:
		return ex
	}
	rt, ok := scalarType(ex)
	if !ok {
		return ex
	}
	var vals [3]uint64
	if len(ex.Args) > len(vals) {
		return ex
	}
	for i, a := range ex.Args {
		l, ok := lit(a)
		if !ok {
			return ex
		}
		at, ok := scalarType(a)
		if !ok {
			return ex
		}
		vals[i] = cltypes.Convert(l.Val, at, rt)
	}
	return makeLit(foldMath(ex.Name, vals[:len(ex.Args)], rt), rt)
}

// foldMath mirrors the evaluator's math builtin semantics (exec.mathOp);
// both are thin dispatchers over cltypes, so they cannot drift.
func foldMath(name string, v []uint64, t *cltypes.Scalar) uint64 {
	switch name {
	case "safe_add":
		return cltypes.Add(v[0], v[1], t)
	case "safe_sub":
		return cltypes.Sub(v[0], v[1], t)
	case "safe_mul":
		return cltypes.Mul(v[0], v[1], t)
	case "safe_div":
		return cltypes.Div(v[0], v[1], t)
	case "safe_mod":
		return cltypes.Mod(v[0], v[1], t)
	case "safe_lshift":
		return cltypes.Shl(v[0], v[1], t, t)
	case "safe_rshift":
		return cltypes.Shr(v[0], v[1], t, t)
	case "safe_unary_minus":
		return cltypes.Neg(v[0], t)
	case "safe_clamp":
		if cltypes.CmpLT(v[2], v[1], t) == 1 {
			return cltypes.Trunc(v[0], t)
		}
		return cltypes.Clamp(v[0], v[1], v[2], t)
	case "clamp":
		return cltypes.Clamp(v[0], v[1], v[2], t)
	case "rotate":
		return cltypes.Rotate(v[0], v[1], t)
	case "min":
		return cltypes.Min(v[0], v[1], t)
	case "max":
		return cltypes.Max(v[0], v[1], t)
	case "abs":
		return cltypes.Abs(v[0], t)
	case "add_sat":
		return cltypes.AddSat(v[0], v[1], t)
	case "sub_sat":
		return cltypes.SubSat(v[0], v[1], t)
	case "hadd":
		return cltypes.HAdd(v[0], v[1], t)
	case "mul_hi":
		return cltypes.MulHi(v[0], v[1], t)
	case "popcount":
		return cltypes.Popcount(v[0], t)
	case "clz":
		return cltypes.Clz(v[0], t)
	}
	return 0
}

// foldSwizzle folds a single-component swizzle of an all-literal vector
// literal. With the WCSwizzleFold defect armed it selects the wrong
// component (off by one), modeling the optimization-sensitive vector wrong-
// code results of Intel configurations 14+/15+ (Table 4).
func foldSwizzle(ex *ast.Swizzle, defects bugs.Set) ast.Expr {
	vl, ok := ex.Base.(*ast.VecLit)
	if !ok {
		return ex
	}
	idx := cltypes.SwizzleIndices(ex.Sel)
	if len(idx) != 1 {
		return ex
	}
	if len(vl.Elems) != vl.VT.Len {
		return ex // splat form; leave to the evaluator
	}
	l, ok := lit(vl.Elems[idx[0]])
	if !ok {
		return ex
	}
	for _, el := range vl.Elems {
		if _, ok := lit(el); !ok {
			return ex
		}
	}
	i := idx[0]
	if defects.Has(bugs.WCSwizzleFold) {
		i = (i + 1) % vl.VT.Len
		l = vl.Elems[i].(*ast.IntLit)
	}
	lt, ok := scalarType(vl.Elems[i])
	if !ok {
		return ex
	}
	return makeLit(cltypes.Convert(l.Val, lt, vl.VT.Elem), vl.VT.Elem)
}

// ---- defect-model rewrites (EarlyFolds) ----

// foldRotateWrong miscompiles rotate() with fully-literal arguments to the
// all-ones pattern (Figure 2(b): rotate((uint2)(1,1),(uint2)(0,0)).x was
// constant-folded to 0xffffffff).
func foldRotateWrong(e ast.Expr) ast.Expr {
	ex, ok := e.(*ast.Call)
	if !ok || ex.Name != "rotate" || len(ex.Args) != 2 {
		return e
	}
	for _, a := range ex.Args {
		if !allLiteral(a) {
			return e
		}
	}
	switch rt := ex.Type().(type) {
	case *cltypes.Scalar:
		return makeLit(^uint64(0), rt)
	case *cltypes.Vector:
		vl := &ast.VecLit{VT: rt}
		for i := 0; i < rt.Len; i++ {
			vl.Elems = append(vl.Elems, makeLit(^uint64(0), rt.Elem))
		}
		vl.SetType(rt)
		return vl
	}
	return e
}

func allLiteral(e ast.Expr) bool {
	switch ex := e.(type) {
	case *ast.IntLit:
		return true
	case *ast.VecLit:
		for _, el := range ex.Elems {
			if !allLiteral(el) {
				return false
			}
		}
		return true
	}
	return false
}

// flipGroupIDComparisons miscompiles comparisons whose operands involve the
// group id (Figure 2(e), config 9): the comparison is inverted. The input
// node is never written to; a flipped comparison is a fresh node.
func flipGroupIDComparisons(e ast.Expr) ast.Expr {
	ex, ok := e.(*ast.Binary)
	if !ok || !ex.Op.IsComparison() {
		return e
	}
	if !containsGroupID(ex.L) && !containsGroupID(ex.R) {
		return e
	}
	cp := *ex
	switch ex.Op {
	case ast.LT:
		cp.Op = ast.GE
	case ast.GE:
		cp.Op = ast.LT
	case ast.LE:
		cp.Op = ast.GT
	case ast.GT:
		cp.Op = ast.LE
	case ast.EQ:
		cp.Op = ast.NE
	case ast.NE:
		cp.Op = ast.EQ
	}
	return &cp
}

func containsGroupID(e ast.Expr) bool {
	found := false
	inspectExpr(e, func(x ast.Expr) {
		if c, ok := x.(*ast.Call); ok {
			if c.Name == "get_group_id" || c.Name == "get_linear_group_id" {
				found = true
			}
		}
	})
	return found
}
