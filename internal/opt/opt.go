package opt

import (
	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
)

// Pass is a program transformation. Passes never mutate their input: they
// return the input program unchanged when nothing applies, or a new
// program that shares every untouched subtree with the input
// (copy-on-write at the node level). Compiled programs can therefore be
// published as immutable artifacts shared by any number of configurations
// and concurrent launches.
type Pass struct {
	Name string
	Run  func(p *ast.Program, defects bugs.Set) *ast.Program
}

// StandardPasses is the default -O2-style pipeline, in application order.
func StandardPasses() []Pass {
	return []Pass{
		{Name: "constfold", Run: ConstFold},
		{Name: "algebraic", Run: Algebraic},
		{Name: "constfold2", Run: ConstFold},
		{Name: "dce", Run: DeadCodeElim},
		{Name: "unroll", Run: UnrollLoops},
		{Name: "constfold3", Run: ConstFold},
		{Name: "dce2", Run: DeadCodeElim},
	}
}

// Optimize runs the standard pipeline and returns the resulting program.
// The input program is never written to.
func Optimize(p *ast.Program, defects bugs.Set) *ast.Program {
	for _, pass := range StandardPasses() {
		p = pass.Run(p, defects)
	}
	return p
}

// EarlyFolds runs the front-end folds that real compilers perform even at
// -cl-opt-disable, returning the resulting program (the input is never
// written to). It is the hook point for the defects that manifest at
// both optimization levels: the Intel rotate constant-folding bug
// (Figure 2(b), config 14±) and the anonymous-GPU group-id comparison bug
// (Figure 2(e), config 9).
func EarlyFolds(p *ast.Program, defects bugs.Set, hash uint64) *ast.Program {
	if defects.Has(bugs.WCRotateConstFold) {
		p = rewriteProgram(p, foldRotateWrong)
	}
	// The group-id comparison defect is hash-gated at the program level:
	// it fires on a fraction of the kernels that compare group-id-derived
	// values, matching config 9's ~2% wrong-code rate (Table 4). The
	// Figure 2(e) exhibit source is chosen to pass the gate.
	if defects.Has(bugs.WCGroupIDExpr) && GroupIDGate(hash) {
		p = rewriteProgram(p, flipGroupIDComparisons)
	}
	return p
}

// GroupIDGate reports whether the group-id comparison defect fires for a
// kernel hash. Exported so the Figure 2(e) exhibit can tune its source to
// pass the gate deterministically.
func GroupIDGate(hash uint64) bool { return bugs.Gate(hash, 0x91d, 3) }

// rewriteProgram applies an expression rewriter bottom-up over every
// expression in the program, copy-on-write: the result shares every
// unchanged declaration, statement and expression with the input, and the
// input is never written to. The rewriter must follow the same contract —
// return its argument unchanged or return a new node.
func rewriteProgram(p *ast.Program, rw func(ast.Expr) ast.Expr) *ast.Program {
	changed := false
	globals := p.Globals
	globalsCopied := false
	for i, g := range p.Globals {
		if g.Init == nil {
			continue
		}
		init := rewriteExpr(g.Init, rw)
		if init == g.Init {
			continue
		}
		if !globalsCopied {
			globals = append([]*ast.VarDecl(nil), p.Globals...)
			globalsCopied = true
		}
		ng := *g
		ng.Init = init
		globals[i] = &ng
		changed = true
	}
	funcs := p.Funcs
	funcsCopied := false
	for i, f := range p.Funcs {
		if f.Body == nil {
			continue
		}
		body := rewriteBlock(f.Body, rw)
		if body == f.Body {
			continue
		}
		if !funcsCopied {
			funcs = append([]*ast.FuncDecl(nil), p.Funcs...)
			funcsCopied = true
		}
		nf := *f
		nf.Body = body
		funcs[i] = &nf
		changed = true
	}
	if !changed {
		return p
	}
	return &ast.Program{Structs: p.Structs, Globals: globals, Funcs: funcs}
}

// rewriteBlock rewrites every statement of a block, returning the input
// block unchanged when no statement changed.
func rewriteBlock(b *ast.Block, rw func(ast.Expr) ast.Expr) *ast.Block {
	stmts, changed := rewriteStmts(b.Stmts, rw)
	if !changed {
		return b
	}
	return &ast.Block{Stmts: stmts}
}

func rewriteStmts(in []ast.Stmt, rw func(ast.Expr) ast.Expr) ([]ast.Stmt, bool) {
	out := in
	changed := false
	for i, s := range in {
		ns := rewriteStmt(s, rw)
		if ns == s {
			continue
		}
		if !changed {
			out = append([]ast.Stmt(nil), in...)
			changed = true
		}
		out[i] = ns
	}
	return out, changed
}

// rewriteStmt rewrites the expressions of one statement, copy-on-write.
func rewriteStmt(s ast.Stmt, rw func(ast.Expr) ast.Expr) ast.Stmt {
	switch st := s.(type) {
	case *ast.DeclStmt:
		if st.Decl.Init == nil {
			return st
		}
		init := rewriteExpr(st.Decl.Init, rw)
		if init == st.Decl.Init {
			return st
		}
		nd := *st.Decl
		nd.Init = init
		return &ast.DeclStmt{Decl: &nd}
	case *ast.ExprStmt:
		x := rewriteExpr(st.X, rw)
		if x == st.X {
			return st
		}
		return &ast.ExprStmt{X: x}
	case *ast.Block:
		return rewriteBlock(st, rw)
	case *ast.If:
		cond := rewriteExpr(st.Cond, rw)
		then := rewriteBlock(st.Then, rw)
		els := st.Else
		if els != nil {
			els = rewriteStmt(els, rw)
		}
		if cond == st.Cond && then == st.Then && els == st.Else {
			return st
		}
		return &ast.If{Cond: cond, Then: then, Else: els}
	case *ast.For:
		init := st.Init
		if init != nil {
			init = rewriteStmt(init, rw)
		}
		cond := rewriteExpr(st.Cond, rw)
		post := rewriteExpr(st.Post, rw)
		body := rewriteBlock(st.Body, rw)
		if init == st.Init && cond == st.Cond && post == st.Post && body == st.Body {
			return st
		}
		return &ast.For{Init: init, Cond: cond, Post: post, Body: body}
	case *ast.While:
		cond := rewriteExpr(st.Cond, rw)
		body := rewriteBlock(st.Body, rw)
		if cond == st.Cond && body == st.Body {
			return st
		}
		return &ast.While{Cond: cond, Body: body}
	case *ast.DoWhile:
		body := rewriteBlock(st.Body, rw)
		cond := rewriteExpr(st.Cond, rw)
		if cond == st.Cond && body == st.Body {
			return st
		}
		return &ast.DoWhile{Body: body, Cond: cond}
	case *ast.Return:
		if st.X == nil {
			return st
		}
		x := rewriteExpr(st.X, rw)
		if x == st.X {
			return st
		}
		return &ast.Return{X: x}
	}
	return s
}

// rewriteExpr rewrites bottom-up, copy-on-write: children first, then the
// node itself. When a child changed, the node is shallow-copied (carrying
// its checked type) before the rewriter sees it, so the input tree is
// never written to.
func rewriteExpr(e ast.Expr, rw func(ast.Expr) ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	switch ex := e.(type) {
	case *ast.Unary:
		if x := rewriteExpr(ex.X, rw); x != ex.X {
			cp := *ex
			cp.X = x
			e = &cp
		}
	case *ast.Binary:
		l := rewriteExpr(ex.L, rw)
		r := rewriteExpr(ex.R, rw)
		if l != ex.L || r != ex.R {
			cp := *ex
			cp.L, cp.R = l, r
			e = &cp
		}
	case *ast.AssignExpr:
		lhs := rewriteExpr(ex.LHS, rw)
		rhs := rewriteExpr(ex.RHS, rw)
		if lhs != ex.LHS || rhs != ex.RHS {
			cp := *ex
			cp.LHS, cp.RHS = lhs, rhs
			e = &cp
		}
	case *ast.Cond:
		c := rewriteExpr(ex.C, rw)
		t := rewriteExpr(ex.T, rw)
		f := rewriteExpr(ex.F, rw)
		if c != ex.C || t != ex.T || f != ex.F {
			cp := *ex
			cp.C, cp.T, cp.F = c, t, f
			e = &cp
		}
	case *ast.Call:
		if args, changed := rewriteExprs(ex.Args, rw); changed {
			cp := *ex
			cp.Args = args
			e = &cp
		}
	case *ast.Index:
		base := rewriteExpr(ex.Base, rw)
		idx := rewriteExpr(ex.Idx, rw)
		if base != ex.Base || idx != ex.Idx {
			cp := *ex
			cp.Base, cp.Idx = base, idx
			e = &cp
		}
	case *ast.Member:
		if base := rewriteExpr(ex.Base, rw); base != ex.Base {
			cp := *ex
			cp.Base = base
			e = &cp
		}
	case *ast.Swizzle:
		if base := rewriteExpr(ex.Base, rw); base != ex.Base {
			cp := *ex
			cp.Base = base
			e = &cp
		}
	case *ast.VecLit:
		if elems, changed := rewriteExprs(ex.Elems, rw); changed {
			cp := *ex
			cp.Elems = elems
			e = &cp
		}
	case *ast.Cast:
		if x := rewriteExpr(ex.X, rw); x != ex.X {
			cp := *ex
			cp.X = x
			e = &cp
		}
	case *ast.InitList:
		if elems, changed := rewriteExprs(ex.Elems, rw); changed {
			cp := *ex
			cp.Elems = elems
			e = &cp
		}
	}
	return rw(e)
}

func rewriteExprs(in []ast.Expr, rw func(ast.Expr) ast.Expr) ([]ast.Expr, bool) {
	out := in
	changed := false
	for i, el := range in {
		ne := rewriteExpr(el, rw)
		if ne == el {
			continue
		}
		if !changed {
			out = append([]ast.Expr(nil), in...)
			changed = true
		}
		out[i] = ne
	}
	return out, changed
}

// inspectExpr calls fn for e and every expression nested within it,
// without ever writing to the tree (the read-only counterpart of
// rewriteExpr, replacing the old clone-then-rewrite idiom).
func inspectExpr(e ast.Expr, fn func(ast.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch ex := e.(type) {
	case *ast.Unary:
		inspectExpr(ex.X, fn)
	case *ast.Binary:
		inspectExpr(ex.L, fn)
		inspectExpr(ex.R, fn)
	case *ast.AssignExpr:
		inspectExpr(ex.LHS, fn)
		inspectExpr(ex.RHS, fn)
	case *ast.Cond:
		inspectExpr(ex.C, fn)
		inspectExpr(ex.T, fn)
		inspectExpr(ex.F, fn)
	case *ast.Call:
		for _, a := range ex.Args {
			inspectExpr(a, fn)
		}
	case *ast.Index:
		inspectExpr(ex.Base, fn)
		inspectExpr(ex.Idx, fn)
	case *ast.Member:
		inspectExpr(ex.Base, fn)
	case *ast.Swizzle:
		inspectExpr(ex.Base, fn)
	case *ast.VecLit:
		for _, el := range ex.Elems {
			inspectExpr(el, fn)
		}
	case *ast.Cast:
		inspectExpr(ex.X, fn)
	case *ast.InitList:
		for _, el := range ex.Elems {
			inspectExpr(el, fn)
		}
	}
}

// inspectStmt calls fn for every expression contained in the statement
// tree, read-only.
func inspectStmt(s ast.Stmt, fn func(ast.Expr)) {
	switch st := s.(type) {
	case *ast.DeclStmt:
		inspectExpr(st.Decl.Init, fn)
	case *ast.ExprStmt:
		inspectExpr(st.X, fn)
	case *ast.Block:
		for _, inner := range st.Stmts {
			inspectStmt(inner, fn)
		}
	case *ast.If:
		inspectExpr(st.Cond, fn)
		inspectStmt(st.Then, fn)
		if st.Else != nil {
			inspectStmt(st.Else, fn)
		}
	case *ast.For:
		if st.Init != nil {
			inspectStmt(st.Init, fn)
		}
		inspectExpr(st.Cond, fn)
		inspectExpr(st.Post, fn)
		inspectStmt(st.Body, fn)
	case *ast.While:
		inspectExpr(st.Cond, fn)
		inspectStmt(st.Body, fn)
	case *ast.DoWhile:
		inspectStmt(st.Body, fn)
		inspectExpr(st.Cond, fn)
	case *ast.Return:
		inspectExpr(st.X, fn)
	}
}

// IsPure reports whether evaluating e has no side effects and always
// terminates: no assignments, no increment/decrement, and only calls to
// known-pure builtins.
func IsPure(e ast.Expr) bool {
	switch ex := e.(type) {
	case nil:
		return true
	case *ast.IntLit, *ast.VarRef:
		return true
	case *ast.Unary:
		switch ex.Op {
		case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
			return false
		}
		return IsPure(ex.X)
	case *ast.Binary:
		return IsPure(ex.L) && IsPure(ex.R)
	case *ast.AssignExpr:
		return false
	case *ast.Cond:
		return IsPure(ex.C) && IsPure(ex.T) && IsPure(ex.F)
	case *ast.Call:
		if !pureBuiltin(ex.Name) {
			return false
		}
		for _, a := range ex.Args {
			if !IsPure(a) {
				return false
			}
		}
		return true
	case *ast.Index:
		return IsPure(ex.Base) && IsPure(ex.Idx)
	case *ast.Member:
		return IsPure(ex.Base)
	case *ast.Swizzle:
		return IsPure(ex.Base)
	case *ast.VecLit:
		for _, el := range ex.Elems {
			if !IsPure(el) {
				return false
			}
		}
		return true
	case *ast.Cast:
		return IsPure(ex.X)
	case *ast.InitList:
		for _, el := range ex.Elems {
			if !IsPure(el) {
				return false
			}
		}
		return true
	}
	return false
}

func pureBuiltin(name string) bool {
	switch name {
	case "get_global_id", "get_local_id", "get_group_id",
		"get_global_size", "get_local_size", "get_num_groups", "get_work_dim",
		"get_linear_global_id", "get_linear_local_id", "get_linear_group_id",
		"safe_add", "safe_sub", "safe_mul", "safe_div", "safe_mod",
		"safe_lshift", "safe_rshift", "safe_unary_minus", "safe_clamp",
		"clamp", "rotate", "min", "max", "abs", "add_sat", "sub_sat",
		"hadd", "mul_hi", "popcount", "clz", "crc64", "vcrc":
		return true
	}
	if len(name) > 8 && name[:8] == "convert_" {
		return true
	}
	return false
}
