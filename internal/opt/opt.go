package opt

import (
	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
)

// Pass is a program transformation.
type Pass struct {
	Name string
	Run  func(p *ast.Program, defects bugs.Set)
}

// StandardPasses is the default -O2-style pipeline, in application order.
func StandardPasses() []Pass {
	return []Pass{
		{Name: "constfold", Run: ConstFold},
		{Name: "algebraic", Run: Algebraic},
		{Name: "constfold2", Run: ConstFold},
		{Name: "dce", Run: DeadCodeElim},
		{Name: "unroll", Run: UnrollLoops},
		{Name: "constfold3", Run: ConstFold},
		{Name: "dce2", Run: DeadCodeElim},
	}
}

// Optimize runs the standard pipeline on the program.
func Optimize(p *ast.Program, defects bugs.Set) {
	for _, pass := range StandardPasses() {
		pass.Run(p, defects)
	}
}

// EarlyFolds runs the front-end folds that real compilers perform even at
// -cl-opt-disable. It is the hook point for the defects that manifest at
// both optimization levels: the Intel rotate constant-folding bug
// (Figure 2(b), config 14±) and the anonymous-GPU group-id comparison bug
// (Figure 2(e), config 9).
func EarlyFolds(p *ast.Program, defects bugs.Set, hash uint64) {
	if defects.Has(bugs.WCRotateConstFold) {
		rewriteProgram(p, foldRotateWrong)
	}
	// The group-id comparison defect is hash-gated at the program level:
	// it fires on a fraction of the kernels that compare group-id-derived
	// values, matching config 9's ~2% wrong-code rate (Table 4). The
	// Figure 2(e) exhibit source is chosen to pass the gate.
	if defects.Has(bugs.WCGroupIDExpr) && GroupIDGate(hash) {
		rewriteProgram(p, flipGroupIDComparisons)
	}
}

// GroupIDGate reports whether the group-id comparison defect fires for a
// kernel hash. Exported so the Figure 2(e) exhibit can tune its source to
// pass the gate deterministically.
func GroupIDGate(hash uint64) bool { return bugs.Gate(hash, 0x91d, 3) }

// rewriteProgram applies an expression rewriter bottom-up over every
// expression in the program.
func rewriteProgram(p *ast.Program, rw func(ast.Expr) ast.Expr) {
	for _, g := range p.Globals {
		if g.Init != nil {
			g.Init = rewriteExpr(g.Init, rw)
		}
	}
	for _, f := range p.Funcs {
		if f.Body != nil {
			rewriteBlock(f.Body, rw)
		}
	}
}

func rewriteBlock(b *ast.Block, rw func(ast.Expr) ast.Expr) {
	for _, s := range b.Stmts {
		rewriteStmt(s, rw)
	}
}

func rewriteStmt(s ast.Stmt, rw func(ast.Expr) ast.Expr) {
	switch st := s.(type) {
	case *ast.DeclStmt:
		if st.Decl.Init != nil {
			st.Decl.Init = rewriteExpr(st.Decl.Init, rw)
		}
	case *ast.ExprStmt:
		st.X = rewriteExpr(st.X, rw)
	case *ast.Block:
		rewriteBlock(st, rw)
	case *ast.If:
		st.Cond = rewriteExpr(st.Cond, rw)
		rewriteBlock(st.Then, rw)
		if st.Else != nil {
			rewriteStmt(st.Else, rw)
		}
	case *ast.For:
		if st.Init != nil {
			rewriteStmt(st.Init, rw)
		}
		if st.Cond != nil {
			st.Cond = rewriteExpr(st.Cond, rw)
		}
		if st.Post != nil {
			st.Post = rewriteExpr(st.Post, rw)
		}
		rewriteBlock(st.Body, rw)
	case *ast.While:
		st.Cond = rewriteExpr(st.Cond, rw)
		rewriteBlock(st.Body, rw)
	case *ast.DoWhile:
		rewriteBlock(st.Body, rw)
		st.Cond = rewriteExpr(st.Cond, rw)
	case *ast.Return:
		if st.X != nil {
			st.X = rewriteExpr(st.X, rw)
		}
	}
}

// rewriteExpr rewrites bottom-up: children first, then the node itself.
func rewriteExpr(e ast.Expr, rw func(ast.Expr) ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	switch ex := e.(type) {
	case *ast.Unary:
		ex.X = rewriteExpr(ex.X, rw)
	case *ast.Binary:
		ex.L = rewriteExpr(ex.L, rw)
		ex.R = rewriteExpr(ex.R, rw)
	case *ast.AssignExpr:
		ex.LHS = rewriteExpr(ex.LHS, rw)
		ex.RHS = rewriteExpr(ex.RHS, rw)
	case *ast.Cond:
		ex.C = rewriteExpr(ex.C, rw)
		ex.T = rewriteExpr(ex.T, rw)
		ex.F = rewriteExpr(ex.F, rw)
	case *ast.Call:
		for i, a := range ex.Args {
			ex.Args[i] = rewriteExpr(a, rw)
		}
	case *ast.Index:
		ex.Base = rewriteExpr(ex.Base, rw)
		ex.Idx = rewriteExpr(ex.Idx, rw)
	case *ast.Member:
		ex.Base = rewriteExpr(ex.Base, rw)
	case *ast.Swizzle:
		ex.Base = rewriteExpr(ex.Base, rw)
	case *ast.VecLit:
		for i, el := range ex.Elems {
			ex.Elems[i] = rewriteExpr(el, rw)
		}
	case *ast.Cast:
		ex.X = rewriteExpr(ex.X, rw)
	case *ast.InitList:
		for i, el := range ex.Elems {
			ex.Elems[i] = rewriteExpr(el, rw)
		}
	}
	return rw(e)
}

// IsPure reports whether evaluating e has no side effects and always
// terminates: no assignments, no increment/decrement, and only calls to
// known-pure builtins.
func IsPure(e ast.Expr) bool {
	switch ex := e.(type) {
	case nil:
		return true
	case *ast.IntLit, *ast.VarRef:
		return true
	case *ast.Unary:
		switch ex.Op {
		case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
			return false
		}
		return IsPure(ex.X)
	case *ast.Binary:
		return IsPure(ex.L) && IsPure(ex.R)
	case *ast.AssignExpr:
		return false
	case *ast.Cond:
		return IsPure(ex.C) && IsPure(ex.T) && IsPure(ex.F)
	case *ast.Call:
		if !pureBuiltin(ex.Name) {
			return false
		}
		for _, a := range ex.Args {
			if !IsPure(a) {
				return false
			}
		}
		return true
	case *ast.Index:
		return IsPure(ex.Base) && IsPure(ex.Idx)
	case *ast.Member:
		return IsPure(ex.Base)
	case *ast.Swizzle:
		return IsPure(ex.Base)
	case *ast.VecLit:
		for _, el := range ex.Elems {
			if !IsPure(el) {
				return false
			}
		}
		return true
	case *ast.Cast:
		return IsPure(ex.X)
	case *ast.InitList:
		for _, el := range ex.Elems {
			if !IsPure(el) {
				return false
			}
		}
		return true
	}
	return false
}

func pureBuiltin(name string) bool {
	switch name {
	case "get_global_id", "get_local_id", "get_group_id",
		"get_global_size", "get_local_size", "get_num_groups", "get_work_dim",
		"get_linear_global_id", "get_linear_local_id", "get_linear_group_id",
		"safe_add", "safe_sub", "safe_mul", "safe_div", "safe_mod",
		"safe_lshift", "safe_rshift", "safe_unary_minus", "safe_clamp",
		"clamp", "rotate", "min", "max", "abs", "add_sat", "sub_sat",
		"hadd", "mul_hi", "popcount", "clz", "crc64", "vcrc":
		return true
	}
	if len(name) > 8 && name[:8] == "convert_" {
		return true
	}
	return false
}
