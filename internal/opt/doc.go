// Package opt implements the optimization passes of the simulated OpenCL
// compilers: constant folding, algebraic simplification, dead code
// elimination and bounded loop unrolling. OpenCL compiles with
// optimizations on by default and exposes -cl-opt-disable to turn them
// off (paper §6); the harness tests every configuration at both levels,
// and several injected defect models live inside these passes, mirroring
// where the corresponding real bugs were diagnosed (constant folding for
// the Intel rotate bug of Figure 2(b), expression optimization for the
// group-id comparison bug of Figure 2(e)).
//
// EarlyFolds applies the always-on front-end folds (host of the ±-level
// folding defects); Optimize runs the full pipeline. Every pass is
// copy-on-write: it returns its input program unchanged when nothing
// applies, or a new program sharing all untouched subtrees, and never
// writes to its input. Two invariants follow and are relied on
// elsewhere. First, compiled programs are immutable and may be shared
// across configurations and concurrent launches (device.BackCache).
// Second, no pass removes or reorders a reachable declaration, so the
// scope-chain shape the executor sees at a shared node is identical in
// every program variant containing it — the contract behind the
// evaluator's VarRef resolution-slot cache.
// File map: opt.go (pipeline driver, COW rewriters, read-only
// inspectors), passes.go (individual passes), simplify.go (expression
// rewrites).
package opt
