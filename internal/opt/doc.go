// Package opt implements the optimization passes of the simulated OpenCL
// compilers: constant folding, algebraic simplification, dead code
// elimination and bounded loop unrolling. OpenCL compiles with
// optimizations on by default and exposes -cl-opt-disable to turn them
// off (paper §6); the harness tests every configuration at both levels,
// and several injected defect models live inside these passes, mirroring
// where the corresponding real bugs were diagnosed (constant folding for
// the Intel rotate bug of Figure 2(b), expression optimization for the
// group-id comparison bug of Figure 2(e)).
//
// EarlyFolds applies the always-on front-end folds (host of the ±-level
// folding defects); Optimize runs the full pipeline. Both mutate the
// already-cloned per-configuration program, never the shared front end.
// File map: opt.go (pipeline driver), passes.go (individual passes),
// simplify.go (expression rewrites).
package opt
