package opt

import (
	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
)

// Algebraic applies algebraic identities (x+0, x*1, x*0, x&0, x|0, x^0)
// with purity checking: x*0 folds to 0 only when x has no side effects.
func Algebraic(p *ast.Program, defects bugs.Set) {
	rewriteProgram(p, simplifyExpr)
}

func isZeroLit(e ast.Expr) bool {
	l, ok := e.(*ast.IntLit)
	if !ok {
		return false
	}
	t, tok := l.Type().(*cltypes.Scalar)
	return tok && cltypes.Trunc(l.Val, t) == 0
}

func isOneLit(e ast.Expr) bool {
	l, ok := e.(*ast.IntLit)
	if !ok {
		return false
	}
	t, tok := l.Type().(*cltypes.Scalar)
	return tok && cltypes.SExt(l.Val, t) == 1
}

// retype wraps x in a conversion to t when needed, preserving the result
// type of the simplified node.
func retype(x ast.Expr, t cltypes.Type) ast.Expr {
	if x.Type() != nil && x.Type().Equal(t) {
		return x
	}
	if st, ok := t.(*cltypes.Scalar); ok {
		if _, xok := x.Type().(*cltypes.Scalar); xok {
			c := &ast.Cast{To: st, X: x}
			c.SetType(st)
			return c
		}
	}
	return nil // cannot retype safely; caller keeps the original node
}

func simplifyExpr(e ast.Expr) ast.Expr {
	ex, ok := e.(*ast.Binary)
	if !ok {
		return e
	}
	rt := ex.Type()
	if rt == nil {
		return e
	}
	keepOrRetype := func(x ast.Expr) ast.Expr {
		if r := retype(x, rt); r != nil {
			return r
		}
		if _, isVec := rt.(*cltypes.Vector); isVec && x.Type() != nil && x.Type().Equal(rt) {
			return x
		}
		return e
	}
	switch ex.Op {
	case ast.Add:
		if isZeroLit(ex.R) {
			return keepOrRetype(ex.L)
		}
		if isZeroLit(ex.L) {
			return keepOrRetype(ex.R)
		}
	case ast.Sub:
		if isZeroLit(ex.R) {
			return keepOrRetype(ex.L)
		}
	case ast.Mul:
		if isOneLit(ex.R) {
			return keepOrRetype(ex.L)
		}
		if isOneLit(ex.L) {
			return keepOrRetype(ex.R)
		}
		if st, ok := rt.(*cltypes.Scalar); ok {
			if isZeroLit(ex.R) && IsPure(ex.L) {
				return ast.NewIntLit(0, st)
			}
			if isZeroLit(ex.L) && IsPure(ex.R) {
				return ast.NewIntLit(0, st)
			}
		}
	case ast.Or, ast.Xor:
		if isZeroLit(ex.R) {
			return keepOrRetype(ex.L)
		}
		if isZeroLit(ex.L) {
			return keepOrRetype(ex.R)
		}
	case ast.And:
		if st, ok := rt.(*cltypes.Scalar); ok {
			if isZeroLit(ex.R) && IsPure(ex.L) {
				return ast.NewIntLit(0, st)
			}
			if isZeroLit(ex.L) && IsPure(ex.R) {
				return ast.NewIntLit(0, st)
			}
		}
	case ast.Shl, ast.Shr:
		if isZeroLit(ex.R) {
			return keepOrRetype(ex.L)
		}
	}
	return e
}

// DeadCodeElim removes branches with literal conditions, loops that never
// execute, and unreachable statements after a jump.
func DeadCodeElim(p *ast.Program, defects bugs.Set) {
	for _, f := range p.Funcs {
		if f.Body != nil {
			dceBlock(f.Body)
		}
	}
}

func dceBlock(b *ast.Block) {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		s = dceStmt(s)
		if s == nil {
			continue
		}
		if _, ok := s.(*ast.Empty); ok {
			continue
		}
		out = append(out, s)
		if isJump(s) {
			break // everything after an unconditional jump is unreachable
		}
	}
	b.Stmts = out
}

func isJump(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.Break, *ast.Continue, *ast.Return:
		return true
	}
	return false
}

// litTruth returns the truth value of a literal condition, if constant.
func litTruth(e ast.Expr) (bool, bool) {
	l, ok := e.(*ast.IntLit)
	if !ok {
		return false, false
	}
	t, tok := l.Type().(*cltypes.Scalar)
	if !tok {
		return false, false
	}
	return cltypes.Trunc(l.Val, t) != 0, true
}

func dceStmt(s ast.Stmt) ast.Stmt {
	switch st := s.(type) {
	case *ast.Block:
		dceBlock(st)
		if len(st.Stmts) == 0 {
			return nil
		}
		return st
	case *ast.If:
		dceBlock(st.Then)
		if st.Else != nil {
			st.Else = dceStmt(st.Else)
		}
		if v, known := litTruth(st.Cond); known {
			if v {
				return st.Then
			}
			if st.Else != nil {
				return st.Else
			}
			return nil
		}
		return st
	case *ast.For:
		dceBlock(st.Body)
		if st.Cond != nil {
			if v, known := litTruth(st.Cond); known && !v {
				// The loop body never runs, but the init clause does; keep
				// it in its own scope so a declared induction variable does
				// not leak into the enclosing block.
				if st.Init != nil {
					return &ast.Block{Stmts: []ast.Stmt{st.Init}}
				}
				return nil
			}
		}
		return st
	case *ast.While:
		dceBlock(st.Body)
		if v, known := litTruth(st.Cond); known && !v {
			return nil
		}
		return st
	case *ast.DoWhile:
		dceBlock(st.Body)
		if v, known := litTruth(st.Cond); known && !v {
			// do { B } while(0) runs B exactly once — but only if B has no
			// break/continue binding to this loop.
			if !hasLoopJump(st.Body) {
				return st.Body
			}
		}
		return st
	}
	return s
}

// hasLoopJump reports whether the block contains a break or continue that
// binds to the enclosing loop (not to a nested loop).
func hasLoopJump(b *ast.Block) bool {
	var visit func(s ast.Stmt) bool
	visit = func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.Break, *ast.Continue:
			return true
		case *ast.Block:
			for _, inner := range st.Stmts {
				if visit(inner) {
					return true
				}
			}
		case *ast.If:
			if visit(st.Then) {
				return true
			}
			if st.Else != nil {
				return visit(st.Else)
			}
		}
		// For/While/DoWhile introduce a new binding scope; stop there.
		return false
	}
	return visit(b)
}

// UnrollLoops fully unrolls small counted loops of the canonical shape
// for (T i = c0; i < c1; i++) with a trip count of at most 8, when the
// body does not modify or alias the induction variable, contains no
// loop jumps and issues no barriers.
func UnrollLoops(p *ast.Program, defects bugs.Set) {
	for _, f := range p.Funcs {
		if f.Body != nil {
			unrollBlock(f.Body)
		}
	}
}

const maxUnrollTrips = 8

func unrollBlock(b *ast.Block) {
	for i, s := range b.Stmts {
		switch st := s.(type) {
		case *ast.Block:
			unrollBlock(st)
		case *ast.If:
			unrollBlock(st.Then)
			if eb, ok := st.Else.(*ast.Block); ok {
				unrollBlock(eb)
			}
		case *ast.While:
			unrollBlock(st.Body)
		case *ast.DoWhile:
			unrollBlock(st.Body)
		case *ast.For:
			unrollBlock(st.Body)
			if rep := tryUnroll(st); rep != nil {
				b.Stmts[i] = rep
			}
		}
	}
}

func tryUnroll(f *ast.For) ast.Stmt {
	decl, ok := f.Init.(*ast.DeclStmt)
	if !ok || decl.Decl.Init == nil {
		return nil
	}
	ivName := decl.Decl.Name
	ivType, ok := decl.Decl.Type.(*cltypes.Scalar)
	if !ok {
		return nil
	}
	c0, ok := decl.Decl.Init.(*ast.IntLit)
	if !ok {
		return nil
	}
	cond, ok := f.Cond.(*ast.Binary)
	if !ok || cond.Op != ast.LT {
		return nil
	}
	cv, ok := cond.L.(*ast.VarRef)
	if !ok || cv.Name != ivName {
		return nil
	}
	c1, ok := cond.R.(*ast.IntLit)
	if !ok {
		return nil
	}
	post, ok := f.Post.(*ast.Unary)
	if !ok || (post.Op != ast.PreInc && post.Op != ast.PostInc) {
		return nil
	}
	pv, ok := post.X.(*ast.VarRef)
	if !ok || pv.Name != ivName {
		return nil
	}
	start := cltypes.AsInt64(c0.Val, ivType)
	c1t, ok := c1.Type().(*cltypes.Scalar)
	if !ok {
		return nil
	}
	end := cltypes.AsInt64(c1.Val, c1t)
	trips := end - start
	if trips <= 0 || trips > maxUnrollTrips {
		return nil
	}
	if modifiesOrAliases(f.Body, ivName) || hasLoopJump(f.Body) || blockHasBarrier(f.Body) {
		return nil
	}
	out := &ast.Block{}
	for it := start; it < end; it++ {
		body := ast.CloneBlock(f.Body)
		substVar(body, ivName, ast.NewIntLit(uint64(it), ivType))
		out.Stmts = append(out.Stmts, body)
	}
	return out
}

// modifiesOrAliases reports whether the block assigns to, increments, or
// takes the address of the named variable, or shadows it with a local
// declaration (which would make substitution incorrect).
func modifiesOrAliases(b *ast.Block, name string) bool {
	bad := false
	check := func(e ast.Expr) ast.Expr {
		switch ex := e.(type) {
		case *ast.AssignExpr:
			if vr, ok := ex.LHS.(*ast.VarRef); ok && vr.Name == name {
				bad = true
			}
		case *ast.Unary:
			switch ex.Op {
			case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec, ast.AddrOf:
				if vr, ok := ex.X.(*ast.VarRef); ok && vr.Name == name {
					bad = true
				}
			}
		}
		return e
	}
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.DeclStmt:
			if st.Decl.Name == name {
				bad = true
			}
			if st.Decl.Init != nil {
				rewriteExpr(ast.CloneExpr(st.Decl.Init), check)
			}
		case *ast.ExprStmt:
			rewriteExpr(ast.CloneExpr(st.X), check)
		case *ast.Block:
			for _, inner := range st.Stmts {
				walk(inner)
			}
		case *ast.If:
			rewriteExpr(ast.CloneExpr(st.Cond), check)
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *ast.For:
			if st.Init != nil {
				walk(st.Init)
			}
			if st.Cond != nil {
				rewriteExpr(ast.CloneExpr(st.Cond), check)
			}
			if st.Post != nil {
				rewriteExpr(ast.CloneExpr(st.Post), check)
			}
			walk(st.Body)
		case *ast.While:
			rewriteExpr(ast.CloneExpr(st.Cond), check)
			walk(st.Body)
		case *ast.DoWhile:
			walk(st.Body)
			rewriteExpr(ast.CloneExpr(st.Cond), check)
		case *ast.Return:
			if st.X != nil {
				rewriteExpr(ast.CloneExpr(st.X), check)
			}
		}
	}
	walk(b)
	return bad
}

func blockHasBarrier(b *ast.Block) bool {
	found := false
	bb := ast.CloneBlock(b)
	rewriteBlock(bb, func(e ast.Expr) ast.Expr {
		if c, ok := e.(*ast.Call); ok && c.Name == "barrier" {
			found = true
		}
		return e
	})
	return found
}

// substVar replaces every reference to name with a clone of repl.
func substVar(b *ast.Block, name string, repl ast.Expr) {
	rewriteBlock(b, func(e ast.Expr) ast.Expr {
		if vr, ok := e.(*ast.VarRef); ok && vr.Name == name {
			return ast.CloneExpr(repl)
		}
		return e
	})
}
