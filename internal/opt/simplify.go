package opt

import (
	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
)

// Algebraic applies algebraic identities (x+0, x*1, x*0, x&0, x|0, x^0)
// with purity checking: x*0 folds to 0 only when x has no side effects.
// Copy-on-write: the input program is never written to.
func Algebraic(p *ast.Program, defects bugs.Set) *ast.Program {
	return rewriteProgram(p, simplifyExpr)
}

func isZeroLit(e ast.Expr) bool {
	l, ok := e.(*ast.IntLit)
	if !ok {
		return false
	}
	t, tok := l.Type().(*cltypes.Scalar)
	return tok && cltypes.Trunc(l.Val, t) == 0
}

func isOneLit(e ast.Expr) bool {
	l, ok := e.(*ast.IntLit)
	if !ok {
		return false
	}
	t, tok := l.Type().(*cltypes.Scalar)
	return tok && cltypes.SExt(l.Val, t) == 1
}

// retype wraps x in a conversion to t when needed, preserving the result
// type of the simplified node.
func retype(x ast.Expr, t cltypes.Type) ast.Expr {
	if x.Type() != nil && x.Type().Equal(t) {
		return x
	}
	if st, ok := t.(*cltypes.Scalar); ok {
		if _, xok := x.Type().(*cltypes.Scalar); xok {
			c := &ast.Cast{To: st, X: x}
			c.SetType(st)
			return c
		}
	}
	return nil // cannot retype safely; caller keeps the original node
}

func simplifyExpr(e ast.Expr) ast.Expr {
	ex, ok := e.(*ast.Binary)
	if !ok {
		return e
	}
	rt := ex.Type()
	if rt == nil {
		return e
	}
	keepOrRetype := func(x ast.Expr) ast.Expr {
		if r := retype(x, rt); r != nil {
			return r
		}
		if _, isVec := rt.(*cltypes.Vector); isVec && x.Type() != nil && x.Type().Equal(rt) {
			return x
		}
		return e
	}
	switch ex.Op {
	case ast.Add:
		if isZeroLit(ex.R) {
			return keepOrRetype(ex.L)
		}
		if isZeroLit(ex.L) {
			return keepOrRetype(ex.R)
		}
	case ast.Sub:
		if isZeroLit(ex.R) {
			return keepOrRetype(ex.L)
		}
	case ast.Mul:
		if isOneLit(ex.R) {
			return keepOrRetype(ex.L)
		}
		if isOneLit(ex.L) {
			return keepOrRetype(ex.R)
		}
		if st, ok := rt.(*cltypes.Scalar); ok {
			if isZeroLit(ex.R) && IsPure(ex.L) {
				return ast.NewIntLit(0, st)
			}
			if isZeroLit(ex.L) && IsPure(ex.R) {
				return ast.NewIntLit(0, st)
			}
		}
	case ast.Or, ast.Xor:
		if isZeroLit(ex.R) {
			return keepOrRetype(ex.L)
		}
		if isZeroLit(ex.L) {
			return keepOrRetype(ex.R)
		}
	case ast.And:
		if st, ok := rt.(*cltypes.Scalar); ok {
			if isZeroLit(ex.R) && IsPure(ex.L) {
				return ast.NewIntLit(0, st)
			}
			if isZeroLit(ex.L) && IsPure(ex.R) {
				return ast.NewIntLit(0, st)
			}
		}
	case ast.Shl, ast.Shr:
		if isZeroLit(ex.R) {
			return keepOrRetype(ex.L)
		}
	}
	return e
}

// DeadCodeElim removes branches with literal conditions, loops that never
// execute, and unreachable statements after a jump. Copy-on-write: the
// input program is never written to.
func DeadCodeElim(p *ast.Program, defects bugs.Set) *ast.Program {
	funcs := p.Funcs
	copied := false
	for i, f := range p.Funcs {
		if f.Body == nil {
			continue
		}
		body := dceBlock(f.Body)
		if body == f.Body {
			continue
		}
		if body == nil {
			body = &ast.Block{}
		}
		if !copied {
			funcs = append([]*ast.FuncDecl(nil), p.Funcs...)
			copied = true
		}
		nf := *f
		nf.Body = body
		funcs[i] = &nf
	}
	if !copied {
		return p
	}
	return &ast.Program{Structs: p.Structs, Globals: p.Globals, Funcs: funcs}
}

// dceBlock eliminates dead statements of a block. It returns the input
// block unchanged when nothing applies, a new block otherwise, or nil when
// every statement was eliminated.
func dceBlock(b *ast.Block) *ast.Block {
	out := make([]ast.Stmt, 0, len(b.Stmts))
	changed := false
	for i, s := range b.Stmts {
		ns := dceStmt(s)
		if ns != s {
			changed = true
		}
		if ns == nil {
			continue
		}
		if _, ok := ns.(*ast.Empty); ok {
			changed = true
			continue
		}
		out = append(out, ns)
		if isJump(ns) {
			if i < len(b.Stmts)-1 {
				changed = true // everything after the jump is unreachable
			}
			break
		}
	}
	if !changed {
		return b
	}
	if len(out) == 0 {
		return nil
	}
	return &ast.Block{Stmts: out}
}

func isJump(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.Break, *ast.Continue, *ast.Return:
		return true
	}
	return false
}

// litTruth returns the truth value of a literal condition, if constant.
func litTruth(e ast.Expr) (bool, bool) {
	l, ok := e.(*ast.IntLit)
	if !ok {
		return false, false
	}
	t, tok := l.Type().(*cltypes.Scalar)
	if !tok {
		return false, false
	}
	return cltypes.Trunc(l.Val, t) != 0, true
}

// dceStmt eliminates dead code within one statement: it returns the input
// unchanged, a new statement, or nil when the statement is dead.
func dceStmt(s ast.Stmt) ast.Stmt {
	switch st := s.(type) {
	case *ast.Block:
		nb := dceBlock(st)
		if nb == nil {
			return nil
		}
		return nb
	case *ast.If:
		then := dceBlock(st.Then)
		els := st.Else
		if els != nil {
			els = dceStmt(els)
		}
		if v, known := litTruth(st.Cond); known {
			if v {
				if then == nil {
					return nil // fully dead: avoid a typed-nil *ast.Block statement
				}
				return then
			}
			return els // may be nil (els is already an interface value)
		}
		if then == st.Then && els == st.Else {
			return st
		}
		if then == nil {
			then = &ast.Block{}
		}
		return &ast.If{Cond: st.Cond, Then: then, Else: els}
	case *ast.For:
		body := dceBlock(st.Body)
		if st.Cond != nil {
			if v, known := litTruth(st.Cond); known && !v {
				// The loop body never runs, but the init clause does; keep
				// it in its own scope so a declared induction variable does
				// not leak into the enclosing block.
				if st.Init != nil {
					return &ast.Block{Stmts: []ast.Stmt{st.Init}}
				}
				return nil
			}
		}
		if body == st.Body {
			return st
		}
		if body == nil {
			body = &ast.Block{}
		}
		return &ast.For{Init: st.Init, Cond: st.Cond, Post: st.Post, Body: body}
	case *ast.While:
		body := dceBlock(st.Body)
		if v, known := litTruth(st.Cond); known && !v {
			return nil
		}
		if body == st.Body {
			return st
		}
		if body == nil {
			body = &ast.Block{}
		}
		return &ast.While{Cond: st.Cond, Body: body}
	case *ast.DoWhile:
		body := dceBlock(st.Body)
		if body == nil {
			body = &ast.Block{}
		}
		if v, known := litTruth(st.Cond); known && !v {
			// do { B } while(0) runs B exactly once — but only if B has no
			// break/continue binding to this loop.
			if !hasLoopJump(body) {
				return body
			}
		}
		if body == st.Body {
			return st
		}
		return &ast.DoWhile{Body: body, Cond: st.Cond}
	}
	return s
}

// hasLoopJump reports whether the block contains a break or continue that
// binds to the enclosing loop (not to a nested loop).
func hasLoopJump(b *ast.Block) bool {
	var visit func(s ast.Stmt) bool
	visit = func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.Break, *ast.Continue:
			return true
		case *ast.Block:
			for _, inner := range st.Stmts {
				if visit(inner) {
					return true
				}
			}
		case *ast.If:
			if visit(st.Then) {
				return true
			}
			if st.Else != nil {
				return visit(st.Else)
			}
		}
		// For/While/DoWhile introduce a new binding scope; stop there.
		return false
	}
	return visit(b)
}

// UnrollLoops fully unrolls small counted loops of the canonical shape
// for (T i = c0; i < c1; i++) with a trip count of at most 8, when the
// body does not modify or alias the induction variable, contains no
// loop jumps and issues no barriers. Copy-on-write: the input program is
// never written to; unrolled bodies are fresh clones.
func UnrollLoops(p *ast.Program, defects bugs.Set) *ast.Program {
	funcs := p.Funcs
	copied := false
	for i, f := range p.Funcs {
		if f.Body == nil {
			continue
		}
		body := unrollBlock(f.Body)
		if body == f.Body {
			continue
		}
		if !copied {
			funcs = append([]*ast.FuncDecl(nil), p.Funcs...)
			copied = true
		}
		nf := *f
		nf.Body = body
		funcs[i] = &nf
	}
	if !copied {
		return p
	}
	return &ast.Program{Structs: p.Structs, Globals: p.Globals, Funcs: funcs}
}

const maxUnrollTrips = 8

// unrollBlock applies the unroller to every loop in the block, returning
// the input block unchanged when nothing unrolled.
func unrollBlock(b *ast.Block) *ast.Block {
	out := b.Stmts
	copied := false
	set := func(i int, ns ast.Stmt) {
		if !copied {
			out = append([]ast.Stmt(nil), b.Stmts...)
			copied = true
		}
		out[i] = ns
	}
	for i, s := range b.Stmts {
		switch st := s.(type) {
		case *ast.Block:
			if nb := unrollBlock(st); nb != st {
				set(i, nb)
			}
		case *ast.If:
			then := unrollBlock(st.Then)
			els := st.Else
			if eb, ok := st.Else.(*ast.Block); ok {
				els = unrollBlock(eb)
			}
			if then != st.Then || els != st.Else {
				set(i, &ast.If{Cond: st.Cond, Then: then, Else: els})
			}
		case *ast.While:
			if nb := unrollBlock(st.Body); nb != st.Body {
				set(i, &ast.While{Cond: st.Cond, Body: nb})
			}
		case *ast.DoWhile:
			if nb := unrollBlock(st.Body); nb != st.Body {
				set(i, &ast.DoWhile{Body: nb, Cond: st.Cond})
			}
		case *ast.For:
			body := unrollBlock(st.Body)
			loop := st
			if body != st.Body {
				loop = &ast.For{Init: st.Init, Cond: st.Cond, Post: st.Post, Body: body}
			}
			if rep := tryUnroll(loop); rep != nil {
				set(i, rep)
			} else if loop != st {
				set(i, loop)
			}
		}
	}
	if !copied {
		return b
	}
	return &ast.Block{Stmts: out}
}

// tryUnroll builds the unrolled replacement for a canonical counted loop,
// or returns nil when the loop must be kept. The loop itself is only read;
// the replacement is built from fresh clones of the body.
func tryUnroll(f *ast.For) ast.Stmt {
	decl, ok := f.Init.(*ast.DeclStmt)
	if !ok || decl.Decl.Init == nil {
		return nil
	}
	ivName := decl.Decl.Name
	ivType, ok := decl.Decl.Type.(*cltypes.Scalar)
	if !ok {
		return nil
	}
	c0, ok := decl.Decl.Init.(*ast.IntLit)
	if !ok {
		return nil
	}
	cond, ok := f.Cond.(*ast.Binary)
	if !ok || cond.Op != ast.LT {
		return nil
	}
	cv, ok := cond.L.(*ast.VarRef)
	if !ok || cv.Name != ivName {
		return nil
	}
	c1, ok := cond.R.(*ast.IntLit)
	if !ok {
		return nil
	}
	post, ok := f.Post.(*ast.Unary)
	if !ok || (post.Op != ast.PreInc && post.Op != ast.PostInc) {
		return nil
	}
	pv, ok := post.X.(*ast.VarRef)
	if !ok || pv.Name != ivName {
		return nil
	}
	start := cltypes.AsInt64(c0.Val, ivType)
	c1t, ok := c1.Type().(*cltypes.Scalar)
	if !ok {
		return nil
	}
	end := cltypes.AsInt64(c1.Val, c1t)
	trips := end - start
	if trips <= 0 || trips > maxUnrollTrips {
		return nil
	}
	if modifiesOrAliases(f.Body, ivName) || hasLoopJump(f.Body) || blockHasBarrier(f.Body) {
		return nil
	}
	out := &ast.Block{}
	for it := start; it < end; it++ {
		body := ast.CloneBlock(f.Body)
		body = substVar(body, ivName, ast.NewIntLit(uint64(it), ivType))
		out.Stmts = append(out.Stmts, body)
	}
	return out
}

// modifiesOrAliases reports whether the block assigns to, increments, or
// takes the address of the named variable, or shadows it with a local
// declaration (which would make substitution incorrect). Read-only.
func modifiesOrAliases(b *ast.Block, name string) bool {
	bad := false
	check := func(e ast.Expr) {
		switch ex := e.(type) {
		case *ast.AssignExpr:
			if vr, ok := ex.LHS.(*ast.VarRef); ok && vr.Name == name {
				bad = true
			}
		case *ast.Unary:
			switch ex.Op {
			case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec, ast.AddrOf:
				if vr, ok := ex.X.(*ast.VarRef); ok && vr.Name == name {
					bad = true
				}
			}
		}
	}
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.DeclStmt:
			if st.Decl.Name == name {
				bad = true
			}
			inspectExpr(st.Decl.Init, check)
		case *ast.ExprStmt:
			inspectExpr(st.X, check)
		case *ast.Block:
			for _, inner := range st.Stmts {
				walk(inner)
			}
		case *ast.If:
			inspectExpr(st.Cond, check)
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *ast.For:
			if st.Init != nil {
				walk(st.Init)
			}
			inspectExpr(st.Cond, check)
			inspectExpr(st.Post, check)
			walk(st.Body)
		case *ast.While:
			inspectExpr(st.Cond, check)
			walk(st.Body)
		case *ast.DoWhile:
			walk(st.Body)
			inspectExpr(st.Cond, check)
		case *ast.Return:
			inspectExpr(st.X, check)
		}
	}
	walk(b)
	return bad
}

// blockHasBarrier reports whether the block issues a barrier. Read-only.
func blockHasBarrier(b *ast.Block) bool {
	found := false
	inspectStmt(b, func(e ast.Expr) {
		if c, ok := e.(*ast.Call); ok && c.Name == "barrier" {
			found = true
		}
	})
	return found
}

// substVar replaces every reference to name with a clone of repl,
// returning the rewritten block (the input, a private clone in the
// unroller, is shared where unchanged).
func substVar(b *ast.Block, name string, repl ast.Expr) *ast.Block {
	return rewriteBlock(b, func(e ast.Expr) ast.Expr {
		if vr, ok := e.(*ast.VarRef); ok && vr.Name == name {
			return ast.CloneExpr(repl)
		}
		return e
	})
}
