package device

import (
	"fmt"
	"sync"
	"testing"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/generator"
)

func kernelSrc(i int) string {
	return fmt.Sprintf(`
kernel void entry(global ulong *out) {
    ulong v = %dUL;
    out[get_linear_global_id()] = v;
}
`, i)
}

// TestCanonicalFixpoint pins the property every cache level and defect
// gate relies on: ast.Print of a parsed program is a fixpoint, so a
// source and its canonical re-print share one Canon and one Hash. It
// checks hand-written kernels (whose spacing and comments differ from
// printer output) and generated ones across the generator's modes.
func TestCanonicalFixpoint(t *testing.T) {
	srcs := []string{
		kernelSrc(0),
		kernelSrc(41),
		"// comment\nkernel void entry(global ulong *out) { out[0] = (ulong)((uint)7); }\n",
		"constant int gate_tuning_0 = 0;\nkernel void entry(global ulong *out) { out[get_linear_global_id()] = 1UL; }\n",
	}
	for _, mode := range generator.Modes {
		for seed := int64(900); seed < 903; seed++ {
			k := generator.Generate(generator.Options{Mode: mode, Seed: seed, MaxTotalThreads: 16})
			srcs = append(srcs, k.Src)
		}
	}
	for i, src := range srcs {
		canon := CanonicalSource(src)
		if canon == src && i < 4 {
			// Hand-written sources are deliberately non-canonical; a
			// no-op canonicalization here means the test lost its teeth.
			t.Errorf("source %d: expected canonicalization to change hand-written text", i)
		}
		again := CanonicalSource(canon)
		if again != canon {
			t.Errorf("source %d: canonical form is not a fixpoint\n--- first ---\n%s\n--- second ---\n%s", i, canon, again)
		}
		fe := ParseFrontEnd(src)
		if fe.Err != nil {
			t.Fatalf("source %d: parse failed: %v", i, fe.Err)
		}
		if fe.Canon != canon || fe.Hash != bugs.Hash(canon) {
			t.Errorf("source %d: FrontEnd canon/hash disagree with CanonicalSource", i)
		}
		// The canonical text and the original must be one identity for
		// every cache: parsing the canon yields the same canon and hash.
		fc := ParseFrontEnd(canon)
		if fc.Canon != fe.Canon || fc.Hash != fe.Hash {
			t.Errorf("source %d: re-printed text has a different identity", i)
		}
	}
}

func TestFrontCacheHitsAndEviction(t *testing.T) {
	fc := NewFrontCache(2)
	a, b, c := kernelSrc(1), kernelSrc(2), kernelSrc(3)

	fa := fc.Get(a)
	if fa.Err != nil || fa.Prog == nil {
		t.Fatalf("parse failed: %v", fa.Err)
	}
	if fc.Get(a) != fa {
		t.Fatal("second Get of the same source must return the memoized front end")
	}
	fc.Get(b)
	fc.Get(c) // evicts a (FIFO)
	hits, misses, size := fc.Stats()
	if size != 2 {
		t.Fatalf("size = %d, want 2 (bounded)", size)
	}
	if misses != 3 || hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/3", hits, misses)
	}
	if fc.Get(a) == fa {
		t.Fatal("evicted entry must be re-parsed")
	}
}

func TestFrontCacheParseErrorMemoized(t *testing.T) {
	fc := NewFrontCache(4)
	fe := fc.Get("kernel void broken(")
	if fe.Err == nil {
		t.Fatal("expected a parse error")
	}
	// Every configuration must report the same build failure through the
	// cached front end.
	for _, cfg := range All() {
		cr := cfg.CompileFrontEnd(fe, true)
		if cr.Outcome != BuildFailure {
			t.Fatalf("config %d: outcome %v, want build failure", cfg.ID, cr.Outcome)
		}
	}
}

// TestCompileMatchesUncached compiles a kernel through the default cache
// and through the bypass on every configuration and level, comparing
// outcomes (the harness determinism test covers full output equality).
func TestCompileMatchesUncached(t *testing.T) {
	src := kernelSrc(7)
	for _, cfg := range All() {
		for _, opt := range []bool{false, true} {
			a := cfg.Compile(src, opt)
			b := cfg.CompileUncached(src, opt)
			if a.Outcome != b.Outcome || a.Msg != b.Msg {
				t.Fatalf("config %d opt=%v: cached (%v, %q) != uncached (%v, %q)",
					cfg.ID, opt, a.Outcome, a.Msg, b.Outcome, b.Msg)
			}
		}
	}
}

// TestCompileFrontEndSharedIsolation verifies the immutable-kernel
// contract: compiling one front end for many configurations never writes
// to it (the back end builds a fresh annotated program instead of cloning
// and mutating), no compiled kernel aliases the pristine parse, and the
// back cache shares one immutable program across the configurations whose
// defect model compiles the source identically.
func TestCompileFrontEndSharedIsolation(t *testing.T) {
	fe := ParseFrontEnd(kernelSrc(9))
	if fe.Err != nil {
		t.Fatalf("parse: %v", fe.Err)
	}
	pristine := ast.Print(fe.Prog)
	var kernels []*Kernel
	for _, cfg := range All() {
		cr := cfg.CompileFrontEnd(fe, true)
		if cr.Outcome == OK {
			if cr.Kernel.Prog == fe.Prog {
				t.Fatalf("config %d: compiled kernel aliases the pristine front-end program", cfg.ID)
			}
			kernels = append(kernels, cr.Kernel)
		}
	}
	if len(kernels) < 2 {
		t.Fatalf("expected at least two successful compiles, got %d", len(kernels))
	}
	if got := ast.Print(fe.Prog); got != pristine {
		t.Fatal("compiling mutated the shared front-end program")
	}
	// Configurations 1-4 share one defect-free Opt level; the back cache
	// must hand them the same immutable compiled program.
	shared := 0
	for i := 1; i < len(kernels); i++ {
		if kernels[i].Prog == kernels[0].Prog {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("back cache did not share the compiled program across identical defect models")
	}
}

// TestBackCacheMatchesUncached is the back-end half of the cache
// determinism contract: for every configuration and optimization level,
// the kernel produced through the shared BackCache must print to the same
// source, report the same outcome and diagnostic, and carry the same
// semantic summary as the cache-bypassing path that re-checks and
// re-optimizes from a fresh parse. Run under -race in CI, it also
// exercises concurrent compiles against one cache.
func TestBackCacheMatchesUncached(t *testing.T) {
	srcs := []string{kernelSrc(1), kernelSrc(2), `
kernel void entry(global ulong *out) {
    int s = 0;
    for (int i = 0; i < 4; i++) { s += i; }
    out[get_linear_global_id()] = (ulong)(uint)(s * 1 + 0);
}
`}
	var wg sync.WaitGroup
	for _, src := range srcs {
		for _, cfg := range All() {
			for _, optimize := range []bool{false, true} {
				wg.Add(1)
				go func(src string, cfg *Config, optimize bool) {
					defer wg.Done()
					cached := cfg.Compile(src, optimize)
					plain := cfg.CompileUncached(src, optimize)
					if cached.Outcome != plain.Outcome || cached.Msg != plain.Msg {
						t.Errorf("config %d opt=%v: cached (%v, %q) != uncached (%v, %q)",
							cfg.ID, optimize, cached.Outcome, cached.Msg, plain.Outcome, plain.Msg)
						return
					}
					if cached.Outcome != OK {
						return
					}
					if g, w := ast.Print(cached.Kernel.Prog), ast.Print(plain.Kernel.Prog); g != w {
						t.Errorf("config %d opt=%v: cached program differs from uncached\n--- cached ---\n%s\n--- uncached ---\n%s",
							cfg.ID, optimize, g, w)
					}
					if *cached.Kernel.Info != *plain.Kernel.Info {
						t.Errorf("config %d opt=%v: cached info %+v != uncached %+v",
							cfg.ID, optimize, *cached.Kernel.Info, *plain.Kernel.Info)
					}
				}(src, cfg, optimize)
			}
		}
	}
	wg.Wait()
}

// TestFrontCacheConcurrentEviction hammers a tiny cache from many
// goroutines over more sources than it can hold, so every Get races with
// FIFO evictions. The contract under test is hit/miss independence: no
// matter which Gets hit, miss, or collide with an eviction, every returned
// front end must be the correct parse of its source, and the cache must
// stay within its bound.
func TestFrontCacheConcurrentEviction(t *testing.T) {
	fc := NewFrontCache(2)
	const sources = 7
	srcs := make([]string, sources)
	for i := range srcs {
		srcs[i] = kernelSrc(i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				i := (g*13 + round) % sources
				fe := fc.Get(srcs[i])
				if fe.Src != srcs[i] || fe.Err != nil || fe.Prog == nil {
					t.Errorf("Get returned wrong or broken front end for source %d", i)
					return
				}
				if fe.Hash != bugs.Hash(fe.Canon) || fe.Canon != CanonicalSource(srcs[i]) {
					t.Errorf("front end hash mismatch for source %d", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, size := fc.Stats()
	if size > 2 {
		t.Fatalf("cache exceeded its bound: %d entries", size)
	}
	if hits+misses != 8*50 {
		t.Fatalf("hits (%d) + misses (%d) != total Gets (%d)", hits, misses, 8*50)
	}
}
