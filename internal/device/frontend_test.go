package device

import (
	"fmt"
	"testing"
)

func kernelSrc(i int) string {
	return fmt.Sprintf(`
kernel void entry(global ulong *out) {
    ulong v = %dUL;
    out[get_linear_global_id()] = v;
}
`, i)
}

func TestFrontCacheHitsAndEviction(t *testing.T) {
	fc := NewFrontCache(2)
	a, b, c := kernelSrc(1), kernelSrc(2), kernelSrc(3)

	fa := fc.Get(a)
	if fa.Err != nil || fa.Prog == nil {
		t.Fatalf("parse failed: %v", fa.Err)
	}
	if fc.Get(a) != fa {
		t.Fatal("second Get of the same source must return the memoized front end")
	}
	fc.Get(b)
	fc.Get(c) // evicts a (FIFO)
	hits, misses, size := fc.Stats()
	if size != 2 {
		t.Fatalf("size = %d, want 2 (bounded)", size)
	}
	if misses != 3 || hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/3", hits, misses)
	}
	if fc.Get(a) == fa {
		t.Fatal("evicted entry must be re-parsed")
	}
}

func TestFrontCacheParseErrorMemoized(t *testing.T) {
	fc := NewFrontCache(4)
	fe := fc.Get("kernel void broken(")
	if fe.Err == nil {
		t.Fatal("expected a parse error")
	}
	// Every configuration must report the same build failure through the
	// cached front end.
	for _, cfg := range All() {
		cr := cfg.CompileFrontEnd(fe, true)
		if cr.Outcome != BuildFailure {
			t.Fatalf("config %d: outcome %v, want build failure", cfg.ID, cr.Outcome)
		}
	}
}

// TestCompileMatchesUncached compiles a kernel through the default cache
// and through the bypass on every configuration and level, comparing
// outcomes (the harness determinism test covers full output equality).
func TestCompileMatchesUncached(t *testing.T) {
	src := kernelSrc(7)
	for _, cfg := range All() {
		for _, opt := range []bool{false, true} {
			a := cfg.Compile(src, opt)
			b := cfg.CompileUncached(src, opt)
			if a.Outcome != b.Outcome || a.Msg != b.Msg {
				t.Fatalf("config %d opt=%v: cached (%v, %q) != uncached (%v, %q)",
					cfg.ID, opt, a.Outcome, a.Msg, b.Outcome, b.Msg)
			}
		}
	}
}

// TestCompileFrontEndSharedIsolation verifies that compiling one front end
// for many configurations never mutates it: the per-configuration back
// ends clone before folding and optimizing.
func TestCompileFrontEndSharedIsolation(t *testing.T) {
	fe := ParseFrontEnd(kernelSrc(9))
	if fe.Err != nil {
		t.Fatalf("parse: %v", fe.Err)
	}
	var kernels []*Kernel
	for _, cfg := range All() {
		cr := cfg.CompileFrontEnd(fe, true)
		if cr.Outcome == OK {
			if cr.Kernel.Prog == fe.Prog {
				t.Fatalf("config %d: compiled kernel shares the pristine front-end program", cfg.ID)
			}
			kernels = append(kernels, cr.Kernel)
		}
	}
	if len(kernels) < 2 {
		t.Fatalf("expected at least two successful compiles, got %d", len(kernels))
	}
	for i := 1; i < len(kernels); i++ {
		if kernels[i].Prog == kernels[0].Prog {
			t.Fatal("two configurations share one mutable program")
		}
	}
}
