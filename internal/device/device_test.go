package device_test

import (
	"testing"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
)

// TestTable1Inventory checks the configuration registry mirrors Table 1:
// 21 configurations, the right device types, and the paper's threshold
// column.
func TestTable1Inventory(t *testing.T) {
	all := device.All()
	if len(all) != 21 {
		t.Fatalf("have %d configurations, Table 1 lists 21", len(all))
	}
	above := map[int]bool{1: true, 2: true, 3: true, 4: true, 9: true,
		12: true, 13: true, 14: true, 15: true, 19: true}
	types := map[int]device.Type{
		1: device.GPU, 5: device.GPU, 9: device.GPU, 12: device.CPU,
		17: device.CPU, 18: device.Accelerator, 19: device.Emulator,
		20: device.Emulator, 21: device.FPGA,
	}
	for _, c := range all {
		if c.PaperAboveThreshold != above[c.ID] {
			t.Errorf("config %d: threshold column %v, paper says %v", c.ID, c.PaperAboveThreshold, above[c.ID])
		}
		if want, ok := types[c.ID]; ok && c.Type != want {
			t.Errorf("config %d: type %s, want %s", c.ID, c.Type, want)
		}
	}
	if device.ByID(12).CLVersion != "2.0" {
		t.Error("config 12 must report OpenCL 2.0 (Table 1)")
	}
	if device.ByID(99) != nil {
		t.Error("ByID(99) must be nil")
	}
}

// TestCompileDeterminism: compiling the same source twice on the same
// configuration yields identical outcomes and runs identically — gating
// is a pure function of the source hash.
func TestCompileDeterminism(t *testing.T) {
	k := generator.Generate(generator.Options{Mode: generator.ModeAll, Seed: 321, MaxTotalThreads: 32})
	for _, cfg := range device.All() {
		for _, optimize := range []bool{false, true} {
			a := cfg.Compile(k.Src, optimize)
			b := cfg.Compile(k.Src, optimize)
			if a.Outcome != b.Outcome {
				t.Fatalf("config %d opt=%v: nondeterministic compile outcome", cfg.ID, optimize)
			}
			if a.Outcome != device.OK {
				continue
			}
			argsA, resA := k.Buffers()
			argsB, resB := k.Buffers()
			ra := a.Kernel.Run(k.ND, argsA, resA, device.RunOptions{})
			rb := b.Kernel.Run(k.ND, argsB, resB, device.RunOptions{})
			if ra.Outcome != rb.Outcome {
				t.Fatalf("config %d opt=%v: nondeterministic run outcome (%s vs %s)",
					cfg.ID, optimize, ra.Outcome, rb.Outcome)
			}
			if ra.Outcome == device.OK && !oracle.Equal(ra.Output, rb.Output) {
				t.Fatalf("config %d opt=%v: nondeterministic output", cfg.ID, optimize)
			}
		}
	}
}

// TestReferenceIsClean: the reference configuration never rejects, crashes
// or corrupts a valid kernel.
func TestReferenceIsClean(t *testing.T) {
	ref := device.Reference()
	for seed := int64(500); seed < 520; seed++ {
		k := generator.Generate(generator.Options{Mode: generator.ModeBasic, Seed: seed, MaxTotalThreads: 16})
		for _, optimize := range []bool{false, true} {
			cr := ref.Compile(k.Src, optimize)
			if cr.Outcome != device.OK {
				t.Fatalf("seed %d: reference rejected a valid kernel: %s", seed, cr.Msg)
			}
			if !ref.GatesClean(k.Src, optimize) {
				t.Fatalf("seed %d: reference has armed hash gates", seed)
			}
		}
	}
}

// TestParseErrorIsBuildFailure: malformed source is a build failure on
// every configuration, never a panic.
func TestParseErrorIsBuildFailure(t *testing.T) {
	for _, cfg := range device.All() {
		cr := cfg.Compile("kernel void k( {", true)
		if cr.Outcome != device.BuildFailure {
			t.Errorf("config %d: outcome %s for malformed source", cfg.ID, cr.Outcome)
		}
	}
}

// TestMissingArgument: a missing kernel argument is a crash-class runtime
// error, not a Go panic.
func TestMissingArgument(t *testing.T) {
	src := `kernel void k(global ulong *out, global int *data) { out[0] = (ulong)data[0]; }`
	ref := device.Reference()
	cr := ref.Compile(src, true)
	if cr.Outcome != device.OK {
		t.Fatal(cr.Msg)
	}
	out := exec.NewBuffer(cltypes.TULong, 1)
	nd := exec.NDRange{Global: [3]int{1, 1, 1}, Local: [3]int{1, 1, 1}}
	rr := cr.Kernel.Run(nd, exec.Args{"out": {Buf: out}}, out, device.RunOptions{})
	if rr.Outcome == device.OK {
		t.Error("missing argument not reported")
	}
}

// TestOutcomeStrings pins the table abbreviations.
func TestOutcomeStrings(t *testing.T) {
	cases := map[device.Outcome]string{
		device.OK: "ok", device.BuildFailure: "bf", device.Crash: "c", device.Timeout: "to",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
}

// TestFuelFactorsOrdering: the emulator and the anonymous GPU must be the
// slow devices (their Table 4 timeout rates depend on it).
func TestFuelFactorsOrdering(t *testing.T) {
	slow := []int{9, 19}
	fast := []int{1, 2, 3, 4, 12, 13}
	for _, id := range slow {
		c := device.ByID(id)
		if c.NoOpt.FuelFactor > 0.5 {
			t.Errorf("config %d should be slow (factor %v)", id, c.NoOpt.FuelFactor)
		}
	}
	for _, id := range fast {
		c := device.ByID(id)
		if c.NoOpt.FuelFactor < 0.8 {
			t.Errorf("config %d should be fast (factor %v)", id, c.NoOpt.FuelFactor)
		}
	}
}
