package device

import (
	"context"
	"os"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/code"
	"clfuzz/internal/exec"
	"clfuzz/internal/sema"
)

// Outcome classifies the result of compiling and running one test case,
// matching the categories of Tables 3-5: success, build failure, runtime
// crash, timeout.
type Outcome int

// Outcomes.
const (
	OK Outcome = iota
	BuildFailure
	Crash
	Timeout
	// Canceled marks a launch stopped by cooperative cancellation (a
	// supervisor deadline or SIGINT drain) before it finished. It is a
	// scheduling outcome, not a test observation: campaigns drop such
	// records rather than folding them into any table.
	Canceled
)

// String returns the table abbreviation of the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case BuildFailure:
		return "bf"
	case Crash:
		return "c"
	case Timeout:
		return "to"
	case Canceled:
		return "cancel"
	}
	return "?"
}

// DefaultFuel is the per-thread evaluation step budget corresponding to
// the paper's 60-second test timeout, before the configuration's fuel
// factor is applied. It sits at the 98th percentile of the generated-
// kernel step distribution, so a fuel-factor-1.0 configuration times out
// on roughly 2% of kernels (the NVIDIA -cl-opt-disable rate of Table 4)
// and the slow devices (factors near 0.25) on 15-20%.
const DefaultFuel = int64(290_000)

// CompileResult is the result of online compilation.
type CompileResult struct {
	Outcome Outcome
	Msg     string
	Kernel  *Kernel
}

// Kernel is a successfully compiled kernel, ready to run. Prog and Info
// form the immutable back-end artifact: they may be shared — via the
// BackCache — with every other configuration whose defect model compiles
// the same source to the same program, and with any number of concurrent
// launches (the executor never writes to the AST). Config, Optimized and
// the launch-time defect level are the cheap per-configuration wrapper
// around that shared artifact.
type Kernel struct {
	Config    *Config
	Optimized bool
	Prog      *ast.Program
	Info      *sema.Info
	// Code is the register bytecode lowered from Prog, cached alongside
	// it in the BackCache (nil when lowering fell back; such kernels run
	// on the tree-walking engine regardless of the engine selection).
	Code  *code.Program
	Hash  uint64
	level Level
	// fused lazily derives (and memoizes, alongside Code in the shared
	// back-end artifact) the fuel/v2 superinstruction form of Code. Nil
	// exactly when Code is nil.
	fused func() *code.Program
	// threaded and threadedFused lazily derive the direct-threaded handler
	// forms of Code and of the fused program, memoized in the shared
	// back-end artifact like fused. Nil exactly when Code is nil.
	threaded      func() *exec.ThreadedProgram
	threadedFused func() *exec.ThreadedProgram
}

// FusedCode returns the fuel/v2 superinstruction form of the kernel's
// bytecode, deriving it on first use and sharing the memoized copy with
// every kernel built from the same back-end artifact. It returns nil
// when the kernel has no lowered program.
func (k *Kernel) FusedCode() *code.Program {
	if k.fused == nil {
		return nil
	}
	return k.fused()
}

// DefaultEngine is the process-wide engine selection applied when
// RunOptions.Engine is EngineAuto: by default the register VM runs every
// kernel that lowered successfully. The CLFUZZ_ENGINE environment
// variable ("tree" or "vm") overrides it at startup, which is how CI's
// tree-engine fallback job guards the reference interpreter from rot;
// the campaign binaries also expose it as a -engine flag.
var DefaultEngine = exec.EngineAuto

func init() {
	e, err := exec.ParseEngine(os.Getenv("CLFUZZ_ENGINE"))
	if err != nil {
		// A misspelled override would otherwise silently run the VM in a
		// process that believes it is testing the tree reference engine.
		panic("device: bad CLFUZZ_ENGINE: " + err.Error())
	}
	DefaultEngine = e
}

// DefaultFuelModel is the process-wide fuel model applied when
// RunOptions.FuelModel is FuelAuto: fuel/v1 (tree-exact accounting) by
// default, so the paper tables and every byte-identity suite are
// untouched. The CLFUZZ_FUEL environment variable ("v1" or "v2")
// overrides it at startup — how CI's fuel/v2 determinism job pins the
// superinstruction model — and the campaign binaries expose it as a
// -fuel flag.
var DefaultFuelModel = exec.FuelV1

func init() {
	fm, err := exec.ParseFuelModel(os.Getenv("CLFUZZ_FUEL"))
	if err != nil {
		// Same reasoning as CLFUZZ_ENGINE: a misspelled override must not
		// silently run the wrong fuel model under a determinism suite.
		panic("device: bad CLFUZZ_FUEL: " + err.Error())
	}
	if fm != exec.FuelAuto {
		DefaultFuelModel = fm
	}
}

// DefaultDispatch is the process-wide VM dispatch mode applied when
// RunOptions.Dispatch is DispatchAuto: the switch loop by default, so
// every existing suite and table is untouched. The CLFUZZ_DISPATCH
// environment variable ("switch" or "threaded") overrides it at startup
// — how CI's threaded-dispatch determinism job pins the handler loop —
// and the campaign binaries expose it as a -dispatch flag. Dispatch is
// observation-free: outputs, fuel totals and outcomes are byte-identical
// across modes.
var DefaultDispatch = exec.DispatchAuto

func init() {
	d, err := exec.ParseDispatch(os.Getenv("CLFUZZ_DISPATCH"))
	if err != nil {
		// Same reasoning as CLFUZZ_ENGINE: a misspelled override must not
		// silently run the wrong dispatch mode under a determinism suite.
		panic("device: bad CLFUZZ_DISPATCH: " + err.Error())
	}
	if d != exec.DispatchAuto {
		DefaultDispatch = d
	}
}

// Compile runs the configuration's online compiler on kernel source:
// lexing/parsing (memoized in DefaultFrontCache, since the front end is
// configuration-independent), then the back end — semantic analysis with
// the configuration's front-end defects, the always-on front-end folds,
// and (unless disabled) the optimization pipeline — memoized in
// DefaultBackCache per (source, defect set, effective optimize). The
// result is OK with a runnable Kernel, or a build failure / compile
// timeout.
func (c *Config) Compile(src string, optimize bool) CompileResult {
	return c.compileFE(DefaultFrontCache.Get(src), optimize, DefaultBackCache)
}

// CompileUncached is Compile with both cache levels bypassed: every call
// re-lexes, re-parses, re-checks and re-optimizes the source. It exists so
// the determinism tests can compare campaign outputs against a cache-free
// reference path.
func (c *Config) CompileUncached(src string, optimize bool) CompileResult {
	return c.compileFE(ParseFrontEnd(src), optimize, nil)
}

// CompileFrontEnd runs the per-configuration back end on a shared front
// end, memoized in DefaultBackCache: configurations whose defect model
// compiles this source identically share one immutable checked program
// (see backKey). The front end is never written to, so one FrontEnd may be
// compiled concurrently by any number of configurations.
func (c *Config) CompileFrontEnd(fe *FrontEnd, optimize bool) CompileResult {
	return c.compileFE(fe, optimize, DefaultBackCache)
}

// compileFE wraps the shared back-end artifact for this configuration.
// bc == nil bypasses the back cache (the determinism reference path).
func (c *Config) compileFE(fe *FrontEnd, optimize bool, bc *BackCache) CompileResult {
	if fe.Err != nil {
		return CompileResult{Outcome: BuildFailure, Msg: "parse error: " + fe.Err.Error()}
	}
	lvl := c.Level(optimize)
	effOpt := optimize && !c.NoOptimizer
	var be *backEnd
	if bc != nil {
		key := backKey{hash: fe.Hash, defects: lvl.Defects, bfDiv: lvl.BFDiv, slowDiv: lvl.SlowDiv, optimize: effOpt}
		cached, collided := bc.get(key, fe.Canon)
		be = cached
		if be == nil {
			be = bc.assemble(fe, lvl, effOpt)
			if !collided {
				bc.put(key, be)
			}
		}
	} else {
		be = compileBackEnd(fe, lvl, effOpt)
	}
	if be.outcome != OK {
		return CompileResult{Outcome: be.outcome, Msg: be.msg}
	}
	return CompileResult{
		Outcome: OK,
		Kernel: &Kernel{
			Config:        c,
			Optimized:     optimize,
			Prog:          be.prog,
			Info:          be.info,
			Code:          be.code,
			Hash:          fe.Hash,
			level:         lvl,
			fused:         be.fused,
			threaded:      be.threaded,
			threadedFused: be.threadedFused,
		},
	}
}

// RunResult is the result of executing a compiled kernel.
type RunResult struct {
	Outcome Outcome
	Msg     string
	// Output is the contents of the result buffer for OK outcomes (the
	// comma-separated list CLsmith prints, as raw values).
	Output []uint64
}

// RunOptions tunes kernel execution.
type RunOptions struct {
	// BaseFuel is the per-thread step budget before the configuration's
	// fuel factor; DefaultFuel when zero.
	BaseFuel int64
	// CheckRaces enables the undefined-behaviour checker (off during
	// campaigns, as on real devices; on for the reference configuration
	// when hunting benchmark races).
	CheckRaces bool
	// Workers is the work-group fan-out budget handed to the executor:
	// when greater than one, eligible launches (no atomic builtins, races
	// unchecked) run independent work-groups concurrently on up to Workers
	// goroutines, with buffer contents byte-identical to the serial
	// schedule. Zero or one keeps the fully serial executor. Campaign
	// runners pass their leftover parallelism here so case-level and
	// group-level fan-out never oversubscribe the machine.
	Workers int
	// Engine forces the evaluation engine for this run; EngineAuto (the
	// zero value) defers to DefaultEngine, under which lowered kernels
	// run on the register VM. Outputs are byte-identical either way.
	Engine exec.Engine
	// FuelModel selects the fuel-accounting model; FuelAuto (the zero
	// value) defers to DefaultFuelModel. fuel/v1 charges tree-exact
	// costs; fuel/v2 runs the fused superinstruction program and charges
	// one unit per dispatch. Outputs are identical across models
	// whenever neither times out; the Timeout frontier differs, so each
	// model is only byte-identical to itself. Kernels without lowered
	// bytecode (and launches forced onto the tree engine) execute the
	// tree walk with v1 accounting regardless — deterministically, since
	// the model resolution depends only on options and the kernel.
	FuelModel exec.FuelModel
	// Ctx cancels the launch cooperatively at work-group boundaries; a
	// launch stopped this way reports the Canceled outcome. nil runs to
	// completion.
	Ctx context.Context
	// Cover, when non-nil, accumulates VM edge coverage and defect-site
	// hit counts for this launch. Observation only: outcomes and outputs
	// are byte-identical with coverage on or off. Launches that resolve
	// to the tree engine record nothing (coverage-off fallback).
	Cover *exec.CoverMap
	// OpStats, when non-nil, accumulates dynamic opcode and opcode-pair
	// dispatch histograms for the launch (clbench -opstats). Observation
	// only, VM only, like Cover.
	OpStats *exec.OpStats
	// Dispatch selects the VM dispatch mode; DispatchAuto (the zero
	// value) defers to DefaultDispatch. Under DispatchThreaded, launches
	// of lowered kernels run the direct-threaded handler loop with the
	// memoized handler program matching the selected fuel model's code;
	// outputs, fuel totals and outcomes are byte-identical to the switch
	// loop.
	Dispatch exec.Dispatch
	// Pool selects the executor launch-state pool this run recycles its
	// working set through; nil uses the executor's process-wide pool.
	// Pooling is observation-free.
	Pool *exec.LaunchPool
}

// Run executes the kernel over the NDRange. result names the output buffer
// whose contents are reported (and corrupted by the residual-miscompilation
// gates); it must also appear in args.
func (k *Kernel) Run(nd exec.NDRange, args exec.Args, result *exec.Buffer, ro RunOptions) RunResult {
	lvl := k.level
	// Launch-time crash gates: the unpredictable machine/driver crashes
	// of §6.
	if lvl.Defects.Has(bugs.CrashHash) || lvl.CrashDiv != 0 {
		if bugs.Gate(k.Hash, saltCrash, lvl.CrashDiv) {
			return RunResult{Outcome: Crash, Msg: "device driver crash"}
		}
	}
	if lvl.CrashBarrierDiv != 0 && k.Info.HasBarrier && bugs.Gate(k.Hash, saltCrashBar, lvl.CrashBarrierDiv) {
		return RunResult{Outcome: Crash, Msg: "runtime crash in barrier-using kernel"}
	}
	fuel := ro.BaseFuel
	if fuel <= 0 {
		fuel = DefaultFuel
	}
	ff := lvl.FuelFactor
	if ff <= 0 {
		ff = 1
	}
	engine := ro.Engine
	if engine == exec.EngineAuto {
		engine = DefaultEngine
	}
	fm := ro.FuelModel
	if fm == exec.FuelAuto {
		fm = DefaultFuelModel
	}
	// The fuel model is a property of which program the VM dispatches:
	// fuel/v2 substitutes the fused superinstruction form, whose
	// per-instruction costs implement per-dispatch charging through the
	// unchanged dispatch loop. Tree-engine launches (forced, or lowering
	// fallback) keep v1 accounting.
	kcode := k.Code
	fused := fm == exec.FuelV2 && kcode != nil && engine != exec.EngineTree
	if fused {
		kcode = k.fused()
	}
	dispatch := ro.Dispatch
	if dispatch == exec.DispatchAuto {
		dispatch = DefaultDispatch
	}
	// Threaded dispatch hands the executor the memoized handler program
	// built from the exact instruction stream it will run — the fused
	// form under fuel/v2, the raw lowering otherwise.
	var threaded *exec.ThreadedProgram
	if dispatch == exec.DispatchThreaded && kcode != nil {
		if fused {
			threaded = k.threadedFused()
		} else {
			threaded = k.threaded()
		}
	}
	opts := exec.Options{
		Defects:    lvl.Defects,
		Hash:       k.Hash,
		Fuel:       int64(float64(fuel) * ff),
		CheckRaces: ro.CheckRaces,
		Code:       kcode,
		Engine:     engine,
		FuelModel:  fm,
		Ctx:        ro.Ctx,
		// Barrier-free kernels (the common case for generated tests) take
		// the executor's goroutine-free sequential fast path.
		NoBarrier: !k.Info.HasBarrier,
		// Atomic-free kernels may fan work-groups out across Workers
		// goroutines: atomics are the only defined cross-group channel,
		// so without them group results are order-independent.
		NoAtomics:  !k.Info.HasAtomic,
		Workers:    ro.Workers,
		HasFwdDecl: k.Info.HasFwdDecl,
		Cover:      ro.Cover,
		OpStats:    ro.OpStats,
		Dispatch:   dispatch,
		Threaded:   threaded,
		Pool:       ro.Pool,
	}
	err := exec.Run(k.Prog, nd, args, opts)
	switch err.(type) {
	case nil:
	case *exec.TimeoutError:
		return RunResult{Outcome: Timeout, Msg: err.Error()}
	case *exec.CancelError:
		return RunResult{Outcome: Canceled, Msg: err.Error()}
	case *exec.CrashError:
		return RunResult{Outcome: Crash, Msg: err.Error()}
	case *exec.RaceError, *exec.DivergenceError:
		// Undefined behaviour detected (only with CheckRaces); callers
		// that enable checking inspect Msg.
		return RunResult{Outcome: Crash, Msg: err.Error()}
	default:
		return RunResult{Outcome: Crash, Msg: err.Error()}
	}
	out := result.Scalars()
	// Residual miscompilation gates: corrupt the first element, modeling
	// a wrong-code defect not covered by a specific model.
	if bugs.Gate(k.Hash, saltWrong, lvl.WrongDiv) && len(out) > 0 {
		out[0] ^= 0x1
	}
	if k.Info.UsesVector && bugs.Gate(k.Hash, saltVecWrong, lvl.VecWrongDiv) && len(out) > 0 {
		out[0] ^= 0x2
	}
	return RunResult{Outcome: OK, Output: out}
}

// GatesClean reports whether none of the configuration's hash-gated defect
// triggers fire for the given source at the given optimization level. The
// Figure 1/2 exhibit kernels tune their source text until the gates are
// clean for every configuration they document, so that the documented
// deterministic defect — not a coincidental hash-gated crash — is what a
// run observes. Gates key on the canonical normal form of the source,
// exactly as the compile and launch paths do.
func (c *Config) GatesClean(src string, optimize bool) bool {
	lvl := c.Level(optimize)
	h := bugs.Hash(CanonicalSource(src))
	for _, g := range []struct {
		salt uint64
		div  uint64
	}{
		{saltCrash, lvl.CrashDiv},
		{saltCrashBar, lvl.CrashBarrierDiv},
		{saltBF, lvl.BFDiv},
		{saltICEAttr, lvl.BFDiv},
		{saltICEPass, lvl.BFDiv},
		{saltICEBarrier, lvl.BFDiv},
		{saltSlow, lvl.SlowDiv},
		{saltWrong, lvl.WrongDiv},
		{saltVecWrong, lvl.VecWrongDiv},
	} {
		if bugs.Gate(h, g.salt, g.div) {
			return false
		}
	}
	return true
}
