package device

import (
	"sync"
	"sync/atomic"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/code"
	"clfuzz/internal/exec"
	"clfuzz/internal/opt"
	"clfuzz/internal/sema"
)

// Defect bits each compile stage actually consults. The staged caches
// below key on the intersection of a level's defect set with these masks,
// so configurations whose models differ only in executor-level or
// hash-gate defects share the expensive stage products outright. The
// cached-vs-uncached determinism tests (internal/harness and
// TestBackCacheMatchesUncached) pin these masks: a defect added to sema
// or opt without extending the mask makes the cached path visibly diverge
// from the CompileUncached reference.
const (
	// semaDefects: the only bits semantic analysis reads (all three gate
	// rejections; annotations never depend on the defect set, so every
	// successful check of one source yields the identical program).
	semaDefects = bugs.FEIntSizeTMix | bugs.FEVectorLogicalReject | bugs.FEVectorInStructICE
	// foldDefects: the bits the front-end folds and the optimization
	// pipeline read (rotate and swizzle misfolds, the group-id flip).
	foldDefects = bugs.WCRotateConstFold | bugs.WCGroupIDExpr | bugs.WCSwizzleFold
)

// backKey identifies everything that can influence the back end's product:
// the source (by hash, collision-checked against the stored source), the
// level's armed defect set, the two compile-time hash-gate divisors, and
// whether the optimizer effectively runs (the optimization flag after
// NoOptimizer is applied). Two (configuration, level) pairs with equal
// keys compile to byte-identical programs, so they share one immutable
// back-end artifact.
type backKey struct {
	hash     uint64
	defects  bugs.Set
	bfDiv    uint64
	slowDiv  uint64
	optimize bool
}

// backEnd is the immutable product of one back-end compilation: the
// outcome with its diagnostic, and for OK outcomes the checked, folded,
// (possibly) optimized program plus its semantic summary. The program is
// read-only — sema and opt build rather than mutate, and the executor
// never writes to the AST — so one backEnd may be wrapped into Kernels by
// any number of configurations and run concurrently.
type backEnd struct {
	src     string
	outcome Outcome
	msg     string
	prog    *ast.Program
	info    *sema.Info
	// code is the register bytecode lowered from prog (nil when lowering
	// declined and the kernel runs on the tree-walking engine). Like prog
	// it is immutable and shared across configurations and launches.
	code *code.Program
	// fused lazily memoizes the fuel/v2 superinstruction form of code
	// (nil exactly when code is nil): the fusion pass runs at most once
	// per shared artifact, only in processes that actually select
	// fuel/v2, and the fused program is as immutable and shareable as
	// code itself.
	fused func() *code.Program
	// threaded and threadedFused lazily memoize the direct-threaded
	// handler forms (exec.Thread) of code and of the fused program, built
	// at most once per shared artifact and only in processes that select
	// threaded dispatch. Both are nil exactly when code is nil.
	threaded      func() *exec.ThreadedProgram
	threadedFused func() *exec.ThreadedProgram
}

// fusedOnce wraps a lowered program in a lazy, concurrency-safe memo of
// its fused fuel/v2 form.
func fusedOnce(cp *code.Program) func() *code.Program {
	if cp == nil {
		return nil
	}
	return sync.OnceValue(func() *code.Program { return code.Fuse(cp) })
}

// threadedOnce wraps a lowered program in a lazy, concurrency-safe memo
// of its direct-threaded handler form.
func threadedOnce(cp *code.Program) func() *exec.ThreadedProgram {
	if cp == nil {
		return nil
	}
	return sync.OnceValue(func() *exec.ThreadedProgram { return exec.Thread(cp) })
}

// threadedOfFused chains the fused-program memo into a direct-threaded
// memo, so a fuel/v2 + threaded launch builds each form exactly once.
func threadedOfFused(fused func() *code.Program) func() *exec.ThreadedProgram {
	if fused == nil {
		return nil
	}
	return sync.OnceValue(func() *exec.ThreadedProgram { return exec.Thread(fused()) })
}

// checkedKey addresses the sema stage: defects is masked to semaDefects.
type checkedKey struct {
	hash    uint64
	defects bugs.Set
}

// checkedEntry is a memoized sema product: the annotated program and its
// summary, or the build diagnostic that rejected the source.
type checkedEntry struct {
	src    string
	prog   *ast.Program
	info   *sema.Info
	errMsg string
}

// progKey addresses the fold/optimize stage: defects is masked to
// foldDefects.
type progKey struct {
	hash     uint64
	defects  bugs.Set
	optimize bool
}

type progEntry struct {
	src           string
	prog          *ast.Program
	code          *code.Program
	fused         func() *code.Program
	threaded      func() *exec.ThreadedProgram
	threadedFused func() *exec.ThreadedProgram
}

// Lowering counters: programs lowered to bytecode vs programs that fell
// back to the tree engine. Shared artifacts (lowered once, reused via the
// prog-stage memo) count once, so the ratio measures distinct compiles.
var (
	lowerCompiles atomic.Uint64
	lowerFallback atomic.Uint64
)

// LowerStats reports the cumulative lowering counters: how many distinct
// back-end programs were compiled to bytecode, and how many fell back to
// the tree-walking engine.
func LowerStats() (lowered, fellBack uint64) {
	return lowerCompiles.Load(), lowerFallback.Load()
}

// lowerProgram compiles the finished back-end program to register
// bytecode, recording the outcome. A lowering failure is not an error:
// the kernel simply runs on the reference tree walker, which is
// byte-identical (and what the -engine=tree escape hatch forces anyway).
func lowerProgram(prog *ast.Program) *code.Program {
	cp, err := code.Lower(prog)
	if err != nil {
		lowerFallback.Add(1)
		return nil
	}
	lowerCompiles.Add(1)
	return cp
}

// BackCache is a bounded, concurrency-safe memo of back-end compilations
// keyed by (source hash, defect set, gate divisors, effective optimize).
// It is the second level of the compile cache: the FrontCache collapses
// the 42 parses of a full Table 1 matrix to one, and the BackCache
// collapses the 42 check+fold+optimize runs to one finished read-only
// kernel per distinct defect model — the four identical NVIDIA levels,
// the shared Intel CPU no-opt model and Oclgrind's ignored optimization
// flag all map to one entry.
//
// Internally the cache is staged along what each compile phase actually
// depends on: one sema product per (source, semaDefects) — in practice
// one per source, since rejections are rare — and one folded/optimized
// program per (source, foldDefects, effective optimize). Defect models
// that differ only in runtime gates therefore share every expensive
// phase, and the finished artifacts for different models share all
// untouched subtrees (the passes are copy-on-write).
//
// Eviction is FIFO over insertion order in every stage, like the
// FrontCache: the memoized artifact for a key never varies, so campaign
// outputs do not depend on hit/miss patterns.
type BackCache struct {
	mu      sync.Mutex
	cap     int
	entries map[backKey]*backEnd
	fifo    []backKey // insertion order, oldest first
	checked map[checkedKey]*checkedEntry
	ckFifo  []checkedKey
	progs   map[progKey]*progEntry
	pgFifo  []progKey
	hits    uint64
	misses  uint64
}

// NewBackCache returns a cache bounded to capacity finished artifacts
// (minimum 1). The internal stage memos hold at most capacity entries
// each as well; they only ever hold fewer distinct keys than the
// finished level.
func NewBackCache(capacity int) *BackCache {
	if capacity < 1 {
		capacity = 1
	}
	return &BackCache{
		cap:     capacity,
		entries: make(map[backKey]*backEnd),
		checked: make(map[checkedKey]*checkedEntry),
		progs:   make(map[progKey]*progEntry),
	}
}

// get returns the memoized back end for the key, or nil on a miss. src
// guards against the (theoretical) 64-bit source-hash collision: a
// mismatch is treated as a miss whose result must not be recorded, so
// collisions cost performance, never correctness.
func (bc *BackCache) get(key backKey, src string) (be *backEnd, collided bool) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if e, ok := bc.entries[key]; ok {
		if e.src == src {
			bc.hits++
			return e, false
		}
		return nil, true
	}
	bc.misses++
	return nil, false
}

// put records a freshly compiled back end. Two concurrent misses for the
// same key are benign (the artifacts are identical); the first insert
// wins, keeping the FIFO order consistent.
func (bc *BackCache) put(key backKey, be *backEnd) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if _, ok := bc.entries[key]; ok {
		return
	}
	if len(bc.fifo) >= bc.cap {
		oldest := bc.fifo[0]
		bc.fifo = bc.fifo[1:]
		delete(bc.entries, oldest)
	}
	bc.entries[key] = be
	bc.fifo = append(bc.fifo, key)
}

// assemble builds the finished artifact for one defect model through the
// stage memos. The compile work runs outside the cache lock; duplicated
// concurrent work for one key is benign (identical immutable results).
func (bc *BackCache) assemble(fe *FrontEnd, lvl Level, effOpt bool) *backEnd {
	be := &backEnd{src: fe.Canon}
	ce := bc.checkedFor(checkedKey{hash: fe.Hash, defects: lvl.Defects & semaDefects}, fe)
	if ce.errMsg != "" {
		be.outcome, be.msg = BuildFailure, ce.errMsg
		return be
	}
	if out, msg := compileGates(ce.info, fe.Hash, lvl); out != OK {
		be.outcome, be.msg = out, msg
		return be
	}
	pe := bc.progFor(progKey{hash: fe.Hash, defects: lvl.Defects & foldDefects, optimize: effOpt}, fe, ce.prog)
	be.prog, be.code, be.fused = pe.prog, pe.code, pe.fused
	be.threaded, be.threadedFused = pe.threaded, pe.threadedFused
	be.info = ce.info
	return be
}

// checkedFor returns the memoized sema product for the key, checking the
// pristine front end on a miss.
func (bc *BackCache) checkedFor(key checkedKey, fe *FrontEnd) *checkedEntry {
	bc.mu.Lock()
	e, ok := bc.checked[key]
	bc.mu.Unlock()
	if ok && e.src == fe.Canon {
		return e
	}
	collided := ok // present but for a different source: never record
	prog, info, err := sema.Check(fe.Prog, key.defects)
	ne := &checkedEntry{src: fe.Canon, prog: prog, info: info}
	if err != nil {
		ne.prog, ne.info, ne.errMsg = nil, nil, err.Error()
	}
	if !collided {
		bc.mu.Lock()
		if _, ok := bc.checked[key]; !ok {
			if len(bc.ckFifo) >= bc.cap {
				oldest := bc.ckFifo[0]
				bc.ckFifo = bc.ckFifo[1:]
				delete(bc.checked, oldest)
			}
			bc.checked[key] = ne
			bc.ckFifo = append(bc.ckFifo, key)
		}
		bc.mu.Unlock()
	}
	return ne
}

// progFor returns the memoized folded/optimized/lowered program for the
// key, running the copy-on-write pipeline (and the bytecode lowering)
// over the shared checked program on a miss.
func (bc *BackCache) progFor(key progKey, fe *FrontEnd, checked *ast.Program) *progEntry {
	bc.mu.Lock()
	e, ok := bc.progs[key]
	bc.mu.Unlock()
	if ok && e.src == fe.Canon {
		return e
	}
	collided := ok
	prog := opt.EarlyFolds(checked, key.defects, key.hash)
	if key.optimize {
		prog = opt.Optimize(prog, key.defects)
	}
	ne := &progEntry{src: fe.Canon, prog: prog, code: lowerProgram(prog)}
	ne.fused = fusedOnce(ne.code)
	ne.threaded = threadedOnce(ne.code)
	ne.threadedFused = threadedOfFused(ne.fused)
	if !collided {
		bc.mu.Lock()
		if _, ok := bc.progs[key]; !ok {
			if len(bc.pgFifo) >= bc.cap {
				oldest := bc.pgFifo[0]
				bc.pgFifo = bc.pgFifo[1:]
				delete(bc.progs, oldest)
			}
			bc.progs[key] = ne
			bc.pgFifo = append(bc.pgFifo, key)
		}
		bc.mu.Unlock()
	}
	return ne
}

// Stats reports cumulative hit/miss counts of the finished-artifact level
// and its current entry count.
func (bc *BackCache) Stats() (hits, misses uint64, size int) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.hits, bc.misses, len(bc.entries)
}

// DefaultBackCache is the process-wide back-end cache used by
// Config.Compile and Config.CompileFrontEnd. A full campaign touches a
// couple dozen distinct defect models per source, so the default capacity
// holds the complete Table 1 matrix for well over a hundred concurrent
// sources. CompileUncached bypasses it (and the front cache) entirely.
var DefaultBackCache = NewBackCache(4096)

// compileGates evaluates the compile-time defect triggers for one level:
// the deterministic hang/slow-compile patterns and the hash-gated
// internal-error classes. It is shared verbatim by the cached and
// uncached back ends.
func compileGates(info *sema.Info, hash uint64, lvl Level) (Outcome, string) {
	switch {
	case lvl.Defects.Has(bugs.FECompileHangLoop) && info.HasHangPattern:
		return Timeout, "compiler entered an unbounded loop (Figure 1(e))"
	case lvl.Defects.Has(bugs.FESlowStructBarrier) && info.HasBarrier && info.MaxStructBytes > 64:
		return Timeout, "prohibitively slow compilation of large struct with barrier (Figure 1(f))"
	case lvl.Defects.Has(bugs.FEICEAttr) && bugs.Gate(hash, saltICEAttr, lvl.BFDiv):
		return BuildFailure, "internal error: Wrong type for attribute zeroext"
	case lvl.Defects.Has(bugs.FEICEPass) && bugs.Gate(hash, saltICEPass, lvl.BFDiv):
		return BuildFailure, "internal error in pass 'Intel OpenCL Vectorizer': Instruction does not dominate all uses!"
	case lvl.Defects.Has(bugs.FEICEBarrierHeavy) && info.BarrierCount >= 2 && bugs.Gate(hash, saltICEBarrier, lvl.BFDiv):
		return BuildFailure, "internal error in pass 'Intel OpenCL Barrier'"
	case lvl.Defects.Has(bugs.BFHash) && bugs.Gate(hash, saltBF, lvl.BFDiv):
		return BuildFailure, "internal compiler error"
	case lvl.Defects.Has(bugs.SlowCompileHash) && bugs.Gate(hash, saltSlow, lvl.SlowDiv):
		return Timeout, "compilation exceeded the test timeout"
	}
	return OK, ""
}

// compileBackEnd runs the cache-free back end on a parsed front end: it
// checks the pristine program under the level's defect set (producing a
// fresh annotated program — the front end is never written to), applies
// the compile-time defect gates, the always-on front-end folds, and the
// optimization pipeline when optimize is set (already adjusted for
// NoOptimizer by the caller). It is the reference path the determinism
// tests compare the staged cache against.
func compileBackEnd(fe *FrontEnd, lvl Level, optimize bool) *backEnd {
	be := &backEnd{src: fe.Canon}
	prog, info, err := sema.Check(fe.Prog, lvl.Defects)
	if err != nil {
		be.outcome, be.msg = BuildFailure, err.Error()
		return be
	}
	if out, msg := compileGates(info, fe.Hash, lvl); out != OK {
		be.outcome, be.msg = out, msg
		return be
	}
	// Always-on front-end folds (host of the ±-level folding defects),
	// then the optimization pipeline. Both are copy-on-write, so the
	// intermediate programs share untouched subtrees and nothing written
	// into the cache aliases mutable state.
	prog = opt.EarlyFolds(prog, lvl.Defects, fe.Hash)
	if optimize {
		prog = opt.Optimize(prog, lvl.Defects)
	}
	be.prog, be.info = prog, info
	be.code = lowerProgram(prog)
	be.fused = fusedOnce(be.code)
	be.threaded = threadedOnce(be.code)
	be.threadedFused = threadedOfFused(be.fused)
	return be
}
