package device

import (
	"sync"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/parser"
)

// FrontEnd is the configuration-independent phase of online compilation:
// the lexed and parsed program for one kernel source, plus the canonical
// normal form and its hash, which seeds every hash-gated defect. The
// program held here is pristine (no semantic annotations, no folds
// applied) and the back end never writes to it — sema rebuilds into a
// fresh annotated program — so one FrontEnd can be shared by any number
// of concurrent CompileFrontEnd calls.
type FrontEnd struct {
	Src string
	// Canon is the canonical normal form of Src: the parsed program
	// re-printed by ast.Print. Print-of-parse is a fixpoint (pinned by
	// TestCanonicalFixpoint), so any two sources that parse to the same
	// program — a kernel and its re-printed text, an EMI base and its
	// unpruned variant — share one Canon, one Hash, and therefore every
	// defect-gate decision and every compile/result cache entry. Equal to
	// Src when parsing failed.
	Canon string
	// Hash is bugs.Hash(Canon): the identity every hash-gated defect and
	// every cache level keys on.
	Hash uint64
	// Prog is the parsed program, nil when Err is non-nil.
	Prog *ast.Program
	// Err is the parse error, reported by every configuration as a build
	// failure (parsing is configuration-independent in the model).
	Err error
}

// ParseFrontEnd runs the front-end phase without consulting any cache.
func ParseFrontEnd(src string) *FrontEnd {
	fe := &FrontEnd{Src: src}
	fe.Prog, fe.Err = parser.Parse(src)
	if fe.Err != nil {
		fe.Canon = src
	} else {
		fe.Canon = ast.Print(fe.Prog)
	}
	fe.Hash = bugs.Hash(fe.Canon)
	return fe
}

// CanonicalSource returns the canonical normal form of a kernel source:
// its print-of-parse fixpoint. Sources that do not parse canonicalize to
// themselves (their identity stays the raw text).
func CanonicalSource(src string) string {
	prog, err := parser.Parse(src)
	if err != nil {
		return src
	}
	return ast.Print(prog)
}

// FrontCache is a bounded, concurrency-safe memo of front-end results
// keyed by bugs.Hash(src). A differential campaign compiles the same
// kernel source once per (configuration, optimization level) pair — 42
// times for the full Table 1 matrix — and the lex/parse work is identical
// every time; the cache collapses it to one parse per distinct source.
//
// Eviction is FIFO over insertion order, which keeps the cache
// deterministic under any interleaving of Get calls for the same key set
// (the memoized value for a source never varies, so campaign outputs do
// not depend on hit/miss patterns).
type FrontCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*FrontEnd
	fifo    []uint64 // insertion order, oldest first
	hits    uint64
	misses  uint64
}

// NewFrontCache returns a cache bounded to capacity entries (minimum 1).
func NewFrontCache(capacity int) *FrontCache {
	if capacity < 1 {
		capacity = 1
	}
	return &FrontCache{cap: capacity, entries: make(map[uint64]*FrontEnd)}
}

// Get returns the memoized front end for src, parsing and recording it on
// a miss. On the (theoretical) event of a 64-bit hash collision between
// distinct sources, the cached entry is left alone and a fresh uncached
// parse is returned, so collisions cost performance, never correctness.
func (fc *FrontCache) Get(src string) *FrontEnd {
	h := bugs.Hash(src)
	fc.mu.Lock()
	if fe, ok := fc.entries[h]; ok {
		if fe.Src == src {
			fc.hits++
			fc.mu.Unlock()
			return fe
		}
		fc.mu.Unlock()
		return ParseFrontEnd(src)
	}
	fc.misses++
	fc.mu.Unlock()
	// Parse outside the lock: parsing is the expensive part, and two
	// concurrent misses for the same source are benign (identical values).
	fe := ParseFrontEnd(src)
	fc.mu.Lock()
	if _, ok := fc.entries[h]; !ok {
		if len(fc.fifo) >= fc.cap {
			oldest := fc.fifo[0]
			fc.fifo = fc.fifo[1:]
			delete(fc.entries, oldest)
		}
		fc.entries[h] = fe
		fc.fifo = append(fc.fifo, h)
	}
	fc.mu.Unlock()
	return fe
}

// Stats reports cumulative hit/miss counts and the current entry count.
func (fc *FrontCache) Stats() (hits, misses uint64, size int) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.hits, fc.misses, len(fc.entries)
}

// DefaultFrontCache is the process-wide front-end cache used by
// Config.Compile. Campaigns that want isolation (or the determinism tests,
// which compare against the uncached path) can construct their own with
// NewFrontCache or bypass caching entirely with CompileUncached.
var DefaultFrontCache = NewFrontCache(1024)
