package device

import (
	"fmt"

	"clfuzz/internal/bugs"
)

// Type is the device category of Table 1.
type Type int

// Device categories.
const (
	GPU Type = iota
	CPU
	Accelerator
	Emulator
	FPGA
)

// String returns the Table 1 device-type label.
func (t Type) String() string {
	switch t {
	case GPU:
		return "GPU"
	case CPU:
		return "CPU"
	case Accelerator:
		return "Accelerator"
	case Emulator:
		return "Emulator"
	case FPGA:
		return "FPGA"
	}
	return "?"
}

// Level holds the defect model for one optimization setting of a
// configuration.
type Level struct {
	// Defects are the armed defect flags.
	Defects bugs.Set
	// CrashDiv hash-gates runtime crashes (0 disables); a divisor d
	// crashes roughly 1/d of kernels.
	CrashDiv uint64
	// CrashBarrierDiv hash-gates crashes of kernels that use barriers.
	CrashBarrierDiv uint64
	// BFDiv hash-gates residual internal-error build failures.
	BFDiv uint64
	// SlowDiv hash-gates prohibitively slow compilations (timeouts).
	SlowDiv uint64
	// WrongDiv hash-gates residual miscompilations that corrupt the
	// result of the first work-item; it calibrates each configuration's
	// wrong-code rate to the level observed in Table 4 beyond what the
	// specific defect models produce.
	WrongDiv uint64
	// VecWrongDiv is WrongDiv restricted to kernels that use vector
	// operations (the Oclgrind vector-sensitive rate of Table 4).
	VecWrongDiv uint64
	// FuelFactor scales the per-thread execution fuel; slower devices get
	// less fuel and time out more often.
	FuelFactor float64
}

// Config is one row of Table 1.
type Config struct {
	ID        int
	SDK       string
	Device    string
	Driver    string
	CLVersion string
	OS        string
	Type      Type
	// PaperAboveThreshold is the paper's reliability classification
	// (Table 1 final column), the reference value our Table 1
	// reproduction is compared against.
	PaperAboveThreshold bool
	// NoOptimizer marks configurations that ignore the optimization flag
	// (Oclgrind does not attempt to optimize kernels, §7.3).
	NoOptimizer bool
	// Opt and NoOpt are the defect models with optimizations enabled
	// (the OpenCL default) and disabled (-cl-opt-disable).
	Opt   Level
	NoOpt Level
}

// Name returns a short display name for tables.
func (c *Config) Name() string { return fmt.Sprintf("%d", c.ID) }

// Level returns the defect model for the given optimization setting.
func (c *Config) Level(optimize bool) Level {
	if optimize {
		return c.Opt
	}
	return c.NoOpt
}

// salts decorrelate the hash gates of distinct defect classes.
const (
	saltCrash      = 0xc0a1
	saltCrashBar   = 0xc0a2
	saltBF         = 0xbf01
	saltSlow       = 0x510c
	saltWrong      = 0x3c0f
	saltVecWrong   = 0x3c1f
	saltICEAttr    = 0x1cea
	saltICEPass    = 0x1ceb
	saltICEBarrier = 0x1cec
)

// All returns the 21 configurations of Table 1. The defect assignments
// follow §6 and Figures 1-2; the hash-gate divisors are calibrated so that
// campaign outcome rates have the shape of Tables 3-5.
func All() []*Config {
	nvidiaOld := func(id int, dev, drv, os string) *Config {
		return &Config{
			ID: id, SDK: "NVIDIA 6.5.19", Device: dev, Driver: drv,
			CLVersion: "1.1", OS: os, Type: GPU, PaperAboveThreshold: true,
			Opt: Level{
				CrashDiv: 19, WrongDiv: 310, FuelFactor: 1.6,
			},
			NoOpt: Level{
				Defects: bugs.WCUnionInit | bugs.FEICEAttr,
				BFDiv:   25, CrashDiv: 28, WrongDiv: 1400, FuelFactor: 1.0,
			},
		}
	}
	nvidiaNew := func(id int, dev, drv string) *Config {
		c := nvidiaOld(id, dev, drv, "RHEL Server 6.5")
		c.SDK = "NVIDIA 7.0.28"
		// 346.47 fixed the attribute ICEs we reported (§6), but Table 4
		// still shows build failures without optimizations for 3-/4-;
		// the union initialization bug persists.
		return c
	}
	amdGPU := func(id int, dev string) *Config {
		return &Config{
			ID: id, SDK: "AMD 2.9-1", Device: dev, Driver: "Catalyst 14.9",
			CLVersion: "1.2", OS: "Windows 7 Enterprise", Type: GPU,
			PaperAboveThreshold: false,
			Opt: Level{
				Defects: bugs.WCStructCharFirst | bugs.BFHash,
				BFDiv:   12, CrashDiv: 3, WrongDiv: 30, FuelFactor: 1.2,
			},
			NoOpt: Level{
				CrashDiv: 3, WrongDiv: 18, FuelFactor: 1.0,
			},
		}
	}
	intelGPU := func(id int, dev, drv, os string) *Config {
		return &Config{
			ID: id, SDK: "Intel 4.6", Device: dev, Driver: drv,
			CLVersion: "1.2", OS: os, Type: GPU, PaperAboveThreshold: false,
			Opt: Level{
				Defects: bugs.FECompileHangLoop | bugs.WCStructDeep | bugs.BFHash,
				BFDiv:   20, CrashDiv: 3, WrongDiv: 25, FuelFactor: 1.2,
			},
			NoOpt: Level{
				Defects:  bugs.FECompileHangLoop | bugs.WCStructDeep,
				CrashDiv: 3, WrongDiv: 25, FuelFactor: 1.0,
			},
		}
	}
	anonOld := func(id int, drv string) *Config {
		return &Config{
			ID: id, SDK: "Anon. SDK 1", Device: "Anon. device 1", Driver: drv,
			CLVersion: "1.1", OS: "Linux (anon. version)", Type: GPU,
			PaperAboveThreshold: false,
			Opt: Level{
				Defects:  bugs.WCGroupIDExpr | bugs.WCStructDeep,
				CrashDiv: 4, WrongDiv: 8, FuelFactor: 0.3,
			},
			NoOpt: Level{
				Defects:  bugs.WCGroupIDExpr | bugs.WCStructDeep | bugs.WCStructCopyNx1,
				CrashDiv: 4, WrongDiv: 8, FuelFactor: 0.25,
			},
		}
	}
	cfgs := []*Config{
		nvidiaOld(1, "NVIDIA GeForce GTX Titan", "343.22", "Ubuntu 14.04.1 LTS"),
		nvidiaOld(2, "NVIDIA GeForce GTX 770", "343.22", "Ubuntu 14.04.1 LTS"),
		nvidiaNew(3, "NVIDIA Tesla M2050", "346.47"),
		nvidiaNew(4, "NVIDIA Tesla K40c", "346.47"),
		amdGPU(5, "AMD Radeon HD7970 GHz edition"),
		amdGPU(6, "ATI Radeon HD 6570 650MHz"),
		intelGPU(7, "Intel HD Graphics 4600", "10.18.10.3960", "Windows 7 Enterprise"),
		intelGPU(8, "Intel HD Graphics 4000", "10.18.10.3412", "Windows 8.1 Pro"),
		{
			ID: 9, SDK: "Anon. SDK 1", Device: "Anon. device 1", Driver: "Anon. driver 1c",
			CLVersion: "1.1", OS: "Linux (anon. version)", Type: GPU,
			PaperAboveThreshold: true,
			// Driver 1c fixed the struct copy bugs we reported, bringing
			// the configuration above the threshold (§6); the group-id
			// comparison bug of Figure 2(e) remains.
			Opt: Level{
				Defects:  bugs.WCGroupIDExpr,
				CrashDiv: 55, WrongDiv: 58, FuelFactor: 0.3,
			},
			NoOpt: Level{
				Defects:  bugs.WCGroupIDExpr,
				CrashDiv: 34, WrongDiv: 62, FuelFactor: 0.25,
			},
		},
		anonOld(10, "Anon. driver 1b"),
		anonOld(11, "Anon. driver 1a"),
		{
			ID: 12, SDK: "Intel 4.6", Device: "Intel Core i7-4770 @ 3.40 GHz", Driver: "4.6.0.92",
			CLVersion: "2.0", OS: "Windows 7 Enterprise", Type: CPU,
			PaperAboveThreshold: true,
			Opt: Level{
				Defects: bugs.FEICEPass | bugs.SlowCompileHash,
				BFDiv:   200, SlowDiv: 6, CrashDiv: 16, WrongDiv: 2000, FuelFactor: 1.4,
			},
			NoOpt: Level{
				Defects:  bugs.WCBarrierFwdDecl,
				CrashDiv: 12, WrongDiv: 480, FuelFactor: 1.0,
			},
		},
		{
			ID: 13, SDK: "Intel 4.6", Device: "Intel Core i7-4770 @ 3.40 GHz", Driver: "4.2.0.76",
			CLVersion: "1.2", OS: "Windows 7 Enterprise", Type: CPU,
			PaperAboveThreshold: true,
			Opt: Level{
				Defects: bugs.FEICEPass | bugs.SlowCompileHash,
				BFDiv:   200, SlowDiv: 6, CrashDiv: 16, WrongDiv: 2400, FuelFactor: 1.4,
			},
			NoOpt: Level{
				Defects:  bugs.WCBarrierFwdDecl,
				CrashDiv: 12, WrongDiv: 480, FuelFactor: 1.0,
			},
		},
		{
			ID: 14, SDK: "Intel 4.6", Device: "Intel Core i5-3317U @ 1.70 GHz", Driver: "3.0.1.10878",
			CLVersion: "1.2", OS: "Windows 8.1 Pro", Type: CPU,
			PaperAboveThreshold: true,
			Opt: Level{
				Defects:  bugs.WCRotateConstFold | bugs.WCSwizzleFold,
				CrashDiv: 42, WrongDiv: 105, FuelFactor: 0.9,
			},
			NoOpt: Level{
				Defects: bugs.WCRotateConstFold | bugs.CrashBarrierFwdDecl |
					bugs.CrashBarrierHeavy | bugs.FEICEBarrierHeavy | bugs.WCDeadLoopBarrier,
				CrashBarrierDiv: 4, BFDiv: 50, CrashDiv: 200, WrongDiv: 800, FuelFactor: 0.8,
			},
		},
		{
			ID: 15, SDK: "Intel XE 2013 R20", Device: "Intel Xeon X5650 @ 2.67GHz", Driver: "1.2 build 56860",
			CLVersion: "1.2", OS: "RHEL Server 6.5", Type: CPU,
			PaperAboveThreshold: true,
			Opt: Level{
				Defects:  bugs.FEIntSizeTMix | bugs.WCSwizzleFold,
				CrashDiv: 35, WrongDiv: 140, FuelFactor: 0.7,
			},
			NoOpt: Level{
				Defects: bugs.FEIntSizeTMix | bugs.CrashBarrierFwdDecl |
					bugs.CrashBarrierHeavy | bugs.WCDeadLoopBarrier,
				CrashBarrierDiv: 3, CrashDiv: 500, WrongDiv: 1800, FuelFactor: 1.1,
			},
		},
		{
			ID: 16, SDK: "AMD 2.9-1", Device: "Intel Xeon E5-2609 v2 @ 2.50GHz", Driver: "Catalyst 14.9",
			CLVersion: "1.2", OS: "Windows 7 Enterprise", Type: CPU,
			PaperAboveThreshold: false,
			// The AMD CPU compiler shares the Figure 1(a) struct defect
			// with the AMD GPUs and adds further padding-related
			// miscompilations (both reported to and confirmed by AMD, §6),
			// keeping it below the reliability threshold.
			Opt: Level{
				Defects:  bugs.WCStructCharFirst,
				CrashDiv: 30, WrongDiv: 4, FuelFactor: 1.2,
			},
			NoOpt: Level{
				CrashDiv: 30, WrongDiv: 4, FuelFactor: 1.0,
			},
		},
		{
			ID: 17, SDK: "Anon. SDK 2", Device: "Anon. device 2", Driver: "Anon. driver 2",
			CLVersion: "1.1", OS: "Linux (anon. verson)", Type: CPU,
			PaperAboveThreshold: false,
			Opt: Level{
				Defects:  bugs.WCStructPtrWriteBarrier,
				CrashDiv: 8, WrongDiv: 40, FuelFactor: 0.8,
			},
			NoOpt: Level{
				Defects:  bugs.WCStructPtrWriteBarrier,
				CrashDiv: 8, WrongDiv: 40, FuelFactor: 0.7,
			},
		},
		{
			ID: 18, SDK: "Intel XE 2013 R2", Device: "Intel Xeon Phi", Driver: "5889-14",
			CLVersion: "1.2", OS: "RHEL Server 6.5", Type: Accelerator,
			PaperAboveThreshold: false,
			Opt: Level{
				Defects:  bugs.FESlowStructBarrier,
				CrashDiv: 40, WrongDiv: 300, FuelFactor: 0.6,
			},
			NoOpt: Level{
				CrashDiv: 40, WrongDiv: 400, FuelFactor: 0.5,
			},
		},
		{
			ID: 19, SDK: "Intel 4.6", Device: "Oclgrind v14.5", Driver: "LLVM 3.2, SPIR 1.2",
			CLVersion: "1.2", OS: "Ubuntu 14.04", Type: Emulator,
			PaperAboveThreshold: true, NoOptimizer: true,
			Opt: Level{
				Defects:  bugs.WCComma,
				CrashDiv: 2500, VecWrongDiv: 22, FuelFactor: 0.22,
			},
			NoOpt: Level{
				Defects:  bugs.WCComma,
				CrashDiv: 2500, VecWrongDiv: 22, FuelFactor: 0.22,
			},
		},
		{
			ID: 20, SDK: "Altera 14.0", Device: "Altera PCIe-385N D5 (Emulated)", Driver: "aoc 14.0 build 200",
			CLVersion: "1.0", OS: "CentOS 6.5", Type: Emulator,
			PaperAboveThreshold: false,
			Opt: Level{
				Defects: bugs.FEVectorInStructICE | bugs.FEVectorLogicalReject | bugs.BFHash,
				BFDiv:   4, CrashDiv: 20, WrongDiv: 60, FuelFactor: 0.8,
			},
			NoOpt: Level{
				Defects: bugs.FEVectorInStructICE | bugs.FEVectorLogicalReject | bugs.BFHash,
				BFDiv:   4, CrashDiv: 20, WrongDiv: 60, FuelFactor: 0.8,
			},
		},
		{
			ID: 21, SDK: "Altera 14.0", Device: "Altera PCIe-385N D5", Driver: "aoc 14.0 build 200",
			CLVersion: "1.0", OS: "CentOS 6.5", Type: FPGA,
			PaperAboveThreshold: false,
			Opt: Level{
				Defects: bugs.FEVectorInStructICE | bugs.FEVectorLogicalReject | bugs.BFHash,
				BFDiv:   2, CrashDiv: 3, WrongDiv: 60, FuelFactor: 0.6,
			},
			NoOpt: Level{
				Defects: bugs.FEVectorInStructICE | bugs.FEVectorLogicalReject | bugs.BFHash,
				BFDiv:   2, CrashDiv: 3, WrongDiv: 60, FuelFactor: 0.6,
			},
		},
	}
	return cfgs
}

// ByID returns the configuration with the given Table 1 id, or nil.
func ByID(id int) *Config {
	for _, c := range All() {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Reference returns a defect-free configuration used by hosts that need a
// trustworthy executor (expected-output generation, race hunting, the
// reducer's validity checks). It is not part of Table 1.
func Reference() *Config {
	return &Config{
		ID: 0, SDK: "reference", Device: "reference interpreter", Driver: "clfuzz",
		CLVersion: "1.2", OS: "any", Type: Emulator, PaperAboveThreshold: true,
		Opt:   Level{FuelFactor: 4},
		NoOpt: Level{FuelFactor: 4},
	}
}
