package device_test

import (
	"fmt"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
)

// ExampleConfig_Compile compiles one kernel on a Table 1 configuration
// and runs it: the per-test step of every campaign. The front end is
// memoized in device.DefaultFrontCache, so compiling the same source on
// other configurations would not parse it again.
func ExampleConfig_Compile() {
	src := `
kernel void k(global ulong *out) {
    ulong acc = 1;
    for (int i = 0; i < 5; i++) { acc = acc * 3UL + 1UL; }
    out[get_linear_global_id()] = acc;
}
`
	cfg := device.ByID(1) // NVIDIA GTX Titan, the paper's generating configuration
	cr := cfg.Compile(src, true)
	fmt.Println("compile:", cr.Outcome)

	nd := exec.NDRange{Global: [3]int{2, 1, 1}, Local: [3]int{2, 1, 1}}
	out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
	rr := cr.Kernel.Run(nd, exec.Args{"out": {Buf: out}}, out, device.RunOptions{})
	fmt.Println("run:", rr.Outcome, rr.Output)
	// Output:
	// compile: ok
	// run: ok [364 364]
}
