// Package device models the 21 OpenCL (device, driver) configurations of
// the paper's Table 1 as simulated compilers: each configuration is a
// front-end quirk set, an optimization pipeline, an injected defect set
// per optimization level, hash-gate divisors for the "unpredictable" crash
// and internal-error classes, and a fuel budget factor that models
// relative device speed (the source of the paper's timeout rates).
// Vendors anonymized in the paper remain anonymized here.
//
// # Compilation pipeline
//
// Compilation is split to mirror what actually varies per configuration:
//
//   - The front end — lexing and parsing — is configuration-independent,
//     so it runs once per distinct kernel source and is memoized in a
//     bounded, concurrency-safe FrontCache (DefaultFrontCache) keyed by
//     the source hash. ParseFrontEnd is the cache-bypassing variant the
//     determinism tests compare against.
//   - The back end — Config.CompileFrontEnd — clones the pristine parsed
//     program, type-checks it under the level's defect set (internal/sema),
//     applies the compile-time defect gates and always-on front-end folds,
//     and runs the optimization pipeline (internal/opt) unless disabled.
//     The front end is never mutated, so one FrontEnd may be compiled
//     concurrently by any number of configurations.
//
// Config.Compile combines both steps; the result is a runnable Kernel
// whose Run method applies the launch-time defect gates (driver crashes,
// fuel scaling, residual wrong-code corruption) around exec.Run.
// RunOptions.Workers forwards a work-group fan-out budget to the executor;
// results are byte-identical at any budget.
//
// Reference returns a defect-free configuration (not part of Table 1)
// used wherever a trustworthy executor is needed: expected-output
// generation, race hunting, and the reducer's validity checks.
package device
