// Package device models the 21 OpenCL (device, driver) configurations of
// the paper's Table 1 as simulated compilers: each configuration is a
// front-end quirk set, an optimization pipeline, an injected defect set
// per optimization level, hash-gate divisors for the "unpredictable" crash
// and internal-error classes, and a fuel budget factor that models
// relative device speed (the source of the paper's timeout rates).
// Vendors anonymized in the paper remain anonymized here.
//
// # Compilation pipeline
//
// A compiled kernel is an immutable artifact. Semantic analysis rebuilds
// the pristine parse into a fresh annotated program instead of mutating
// it, the fold and optimization passes are copy-on-write, and the
// executor never writes to the AST — so compiled programs can be shared
// freely. Compilation is therefore a two-level cache along what actually
// varies per configuration:
//
//   - The front end — lexing and parsing — is configuration-independent,
//     so it runs once per distinct kernel source and is memoized in a
//     bounded, concurrency-safe FrontCache (DefaultFrontCache) keyed by
//     the source hash.
//   - The back end — semantic analysis under the level's defect set,
//     the compile-time defect gates, the always-on front-end folds, and
//     the optimization pipeline — is memoized in a BackCache
//     (DefaultBackCache) keyed by (source hash, defect set, gate
//     divisors, effective optimize). Every (configuration, level) pair
//     whose defect model compiles the source identically shares one
//     finished read-only Kernel: the four identical NVIDIA levels, the
//     shared Intel CPU no-opt model, and Oclgrind's ignored optimization
//     flag all collapse to single entries. Internally the BackCache is
//     staged along the defect bits each phase reads (semaDefects,
//     foldDefects), so even distinct models share the checked program
//     and the folded/optimized program whenever those phases cannot
//     tell the models apart.
//
// Config.Compile combines both levels; CompileFrontEnd reuses an
// already-parsed front end; CompileUncached bypasses every cache and is
// the reference path the determinism tests compare against (the caches
// must be byte-for-byte invisible). The result is a runnable Kernel
// whose Run method applies the launch-time defect gates (driver crashes,
// fuel scaling, residual wrong-code corruption) around exec.Run.
// RunOptions.Workers forwards a work-group fan-out budget to the
// executor; results are byte-identical at any budget. A third cache
// level sits above this package: internal/campaign's ResultCache
// memoizes finished launch results per (source hash, defect model,
// argument digest), so exact repeats of a launch — across cases,
// campaigns, and the acceptance filters — skip execution entirely.
//
// # Immutable-kernel contract
//
// Nothing may write to a Kernel's Prog after compilation: the same
// program is handed to every configuration with the same back-end key
// and may be executing on any number of goroutines. The executor
// enforces this in checked builds — exec.SetDebugImmutable makes every
// launch fingerprint the program before and after running — and the CI
// determinism jobs run with the assertion armed. The two sanctioned
// node-level annotations (the evaluator's VarRef resolution slot, an
// atomically-accessed cache validated on every read, and sema's Member
// field index, written only during checking) are invisible to printed
// source and safe under sharing.
//
// Reference returns a defect-free configuration (not part of Table 1)
// used wherever a trustworthy executor is needed: expected-output
// generation, race hunting, and the reducer's validity checks.
package device
