package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/code"
)

// NDRange describes the kernel launch geometry: global dimensions and
// work-group dimensions (paper §3.1). All kernels are treated as 3D; 1D and
// 2D launches set the extra dimensions to 1.
type NDRange struct {
	Global [3]int
	Local  [3]int
}

// Validate checks the OpenCL constraints: positive sizes, the work-group
// size dividing the global size component-wise, and the work-group linear
// size not exceeding 256 (the maximum supported by every configuration the
// paper tested, §4.1).
func (n NDRange) Validate() error {
	for i := 0; i < 3; i++ {
		if n.Global[i] <= 0 || n.Local[i] <= 0 {
			return fmt.Errorf("exec: non-positive NDRange dimension %d", i)
		}
		if n.Global[i]%n.Local[i] != 0 {
			return fmt.Errorf("exec: work-group size %d does not divide global size %d in dimension %d",
				n.Local[i], n.Global[i], i)
		}
	}
	if n.GroupLinear() > 256 {
		return fmt.Errorf("exec: work-group linear size %d exceeds 256", n.GroupLinear())
	}
	return nil
}

// GlobalLinear returns the total number of threads.
func (n NDRange) GlobalLinear() int { return n.Global[0] * n.Global[1] * n.Global[2] }

// GroupLinear returns the number of threads per work-group.
func (n NDRange) GroupLinear() int { return n.Local[0] * n.Local[1] * n.Local[2] }

// NumGroups returns the number of work-groups in each dimension.
func (n NDRange) NumGroups() [3]int {
	return [3]int{n.Global[0] / n.Local[0], n.Global[1] / n.Local[1], n.Global[2] / n.Local[2]}
}

// Arg is a kernel argument: a global buffer for pointer parameters or a
// scalar value.
type Arg struct {
	Buf    *Buffer
	Scalar uint64
}

// Args maps kernel parameter names to arguments.
type Args map[string]Arg

// Options configures a kernel execution.
type Options struct {
	// Defects is the executor-level slice of the configuration's injected
	// defect set.
	Defects bugs.Set
	// Hash is the kernel source hash, the seed for hash-gated defects.
	Hash uint64
	// Fuel bounds the number of evaluation steps per thread; exceeding it
	// reports TimeoutError (the 60-second per-test timeout of §7.1).
	Fuel int64
	// CheckRaces enables the data race and barrier divergence checker.
	CheckRaces bool
	// NoBarrier is the front end's static guarantee that the program
	// issues no barrier calls (sema.Info.HasBarrier == false). Together
	// with CheckRaces being off it enables the sequential fast path: each
	// work-group's threads run back-to-back on the calling goroutine with
	// no goroutine spawns, no barrier object, and no atomic cell accesses.
	NoBarrier bool
	// NoAtomics is the front end's static guarantee that the program calls
	// no atomic builtins (sema.Info.HasAtomic == false). Atomics are the
	// only defined cross-work-group communication channel in the subset,
	// so together with Workers > 1 this guarantee enables the parallel
	// work-group path: group results cannot depend on group ordering, and
	// the launch output is byte-identical to the sequential schedule.
	NoAtomics bool
	// Workers is the work-group fan-out budget: when greater than one (and
	// the launch is eligible — NoAtomics, races unchecked, more than one
	// group), independent work-groups execute concurrently on up to
	// Workers goroutines, each keeping its per-group execution mode
	// (sequential fast path or the barrier machinery). Zero or one runs
	// every group serially on the calling goroutine, as before.
	Workers int
	// HasFwdDecl is the front-end's report of a forward-declared function
	// with a later definition, a trigger for the Figure 2(c) defects.
	HasFwdDecl bool
	// Code is the lowered register bytecode of the program (the same
	// checked AST, compiled once by internal/code). When present and the
	// Engine selection allows it, Run executes the VM dispatch loop
	// instead of the tree walk; outputs are byte-identical either way.
	Code *code.Program
	// Engine forces an evaluation engine: EngineAuto (the default) runs
	// the VM whenever Code is available, EngineTree forces the reference
	// tree walker, EngineVM requests the VM (falling back to the tree
	// walker when no lowered program was supplied).
	Engine Engine
	// FuelModel records the fuel-accounting model of this launch for the
	// per-model counters. The model itself is a property of the supplied
	// Code: under fuel/v2 the embedding layer (device.Kernel.Run) passes
	// the fused program, whose per-instruction costs already implement
	// per-superinstruction charging — the dispatch loop is model-blind.
	// FuelAuto/FuelV1 count as fuel/v1.
	FuelModel FuelModel
	// Ctx cancels the launch cooperatively: Run consults it at work-group
	// boundaries (never mid-thread, where fuel already bounds progress)
	// and returns a *CancelError once it fires. nil runs to completion.
	Ctx context.Context
	// Stats, when non-nil, receives execution statistics.
	Stats *Stats
	// Cover, when non-nil, accumulates VM edge coverage and defect-site
	// hit counts for this launch (see cover.go). Coverage is observation
	// only — outputs, fuel and verdicts are byte-identical with Cover set
	// or nil — and only the register VM collects it; the tree walker
	// leaves the map untouched.
	Cover *CoverMap
	// OpStats, when non-nil, accumulates dynamic opcode and opcode-pair
	// dispatch histograms (clbench -opstats). Observation only, VM only,
	// like Cover.
	OpStats *OpStats
	// Pool selects the launch-state pool this execution recycles its
	// working set through (see pool.go). nil uses a process-wide shared
	// pool; embedders that want memory isolation pass their own. Pooling
	// is observation-free: outputs are byte-identical with any pool.
	Pool *LaunchPool
	// Dispatch selects the VM dispatch mode. DispatchThreaded runs the
	// direct-threaded loop (see vmthread.go) when Threaded matches Code;
	// anything else — including a missing or mismatched Threaded, or an
	// OpStats collection request, which only the switch loop implements —
	// runs the switch loop. Dispatch is observation-free: outputs, fuel
	// and verdicts are byte-identical across modes.
	Dispatch Dispatch
	// Threaded is the direct-threaded form of Code (built by Thread,
	// memoized by the embedding layer beside the program). It is only
	// consulted under DispatchThreaded and must wrap the exact Program in
	// Code; a mismatch falls back to the switch loop rather than running
	// handlers against the wrong instruction stream.
	Threaded *ThreadedProgram
}

// Stats reports execution cost measurements, used to calibrate the fuel
// model against the paper's timeout rates.
type Stats struct {
	// MaxThreadSteps is the largest per-thread evaluation step count.
	// Concurrent threads update it with a lock-free atomic max; read it
	// only after Run returns.
	MaxThreadSteps int64
}

// noteThreadSteps folds one thread's step count into MaxThreadSteps with a
// compare-and-swap loop (an atomic max, replacing the former mutex).
func (st *Stats) noteThreadSteps(used int64) {
	for {
		cur := atomic.LoadInt64(&st.MaxThreadSteps)
		if used <= cur || atomic.CompareAndSwapInt64(&st.MaxThreadSteps, cur, used) {
			return
		}
	}
}

// TimeoutError reports fuel exhaustion.
type TimeoutError struct{ Where string }

// Error implements the error interface.
func (e *TimeoutError) Error() string { return "timeout: " + e.Where }

// CrashError reports a runtime crash of the OpenCL application (a
// segmentation fault or driver abort).
type CrashError struct{ Msg string }

// Error implements the error interface.
func (e *CrashError) Error() string { return "crash: " + e.Msg }

// CancelError reports a launch stopped by Options.Ctx before it could
// finish: a supervisor deadline, a SIGINT drain, or a worker-pool kill.
// It is a scheduling outcome, not a property of the kernel, so callers
// must never record it as a test observation.
type CancelError struct{ Msg string }

// Error implements the error interface.
func (e *CancelError) Error() string { return "canceled: " + e.Msg }

// RaceError reports a detected data race (undefined behaviour).
type RaceError struct{ Msg string }

// Error implements the error interface.
func (e *RaceError) Error() string { return "data race: " + e.Msg }

// DivergenceError reports barrier divergence (undefined behaviour).
type DivergenceError struct{ Msg string }

// Error implements the error interface.
func (e *DivergenceError) Error() string { return "barrier divergence: " + e.Msg }

// Ptr is a pointer value: the address of a single cell, a position within
// a cell sequence (an aggregate-element buffer or a decayed array), or a
// position within the flat word store of a scalar-element buffer. The
// sequence forms support subscripting. The flat form references the
// Buffer rather than its backing slice so that Ptr — embedded in every
// Cell and Value — stays at its pre-flat-store size.
type Ptr struct {
	Cell  *Cell
	Slice []*Cell
	// Flat views a flat scalar buffer: the pointer addresses element Idx
	// of Flat.Words, an element of scalar type Flat.wordT.
	Flat *Buffer
	Idx  int
}

// IsNull reports whether the pointer is null.
func (p Ptr) IsNull() bool { return p.Cell == nil && p.Slice == nil && p.Flat == nil }

// Target resolves the pointed-to cell, or nil for null, out-of-range, and
// flat-store pointers (whose elements have no cell; see flatWord).
func (p Ptr) Target() *Cell {
	if p.Slice != nil {
		if p.Idx < 0 || p.Idx >= len(p.Slice) {
			return nil
		}
		return p.Slice[p.Idx]
	}
	return p.Cell
}

// flatWord resolves a flat-store pointer to the address of its word, or
// nil for cell pointers and out-of-range positions.
func (p Ptr) flatWord() *uint64 {
	if p.Flat == nil || p.Idx < 0 || p.Idx >= len(p.Flat.Words) {
		return nil
	}
	return &p.Flat.Words[p.Idx]
}

// At returns the pointer displaced by i elements (subscripting).
func (p Ptr) At(i int) Ptr {
	if p.Slice != nil {
		return Ptr{Slice: p.Slice, Idx: p.Idx + i}
	}
	if p.Flat != nil {
		return Ptr{Flat: p.Flat, Idx: p.Idx + i}
	}
	if i == 0 {
		return p
	}
	return Ptr{} // out of range of a single object: null
}

// samePtrTarget reports whether two pointers address the same object, the
// semantics of the == and != operators. Out-of-range pointers of either
// representation resolve to "no object" and compare equal to each other
// and to null, as before the flat store existed.
func samePtrTarget(a, b Ptr) bool {
	if aw, bw := a.flatWord(), b.flatWord(); aw != nil || bw != nil {
		return aw == bw
	}
	return a.Target() == b.Target()
}

// failDomain is one abort scope: the threads that share a domain stop as
// soon as any of them fails, and the first recorded error is the domain's
// verdict. A serial launch has a single domain spanning every group (a
// failure stops the whole launch, exactly as before); the parallel
// work-group path gives each group its own domain so that one group's
// failure cannot nondeterministically poison a concurrently running
// sibling — the launch verdict is then chosen in group order.
type failDomain struct {
	dead     atomic.Bool
	failOnce sync.Once
	err      error
	abort    chan struct{}
}

func newFailDomain() *failDomain {
	return &failDomain{abort: make(chan struct{})}
}

// fail records the first error and aborts the domain's threads.
func (d *failDomain) fail(err error) {
	d.failOnce.Do(func() {
		d.err = err
		d.dead.Store(true)
		close(d.abort)
	})
}

// Machine executes one kernel launch.
type Machine struct {
	prog   *ast.Program
	kernel *ast.FuncDecl
	nd     NDRange
	args   Args
	opts   Options

	globals  map[string]*Cell // program-scope constant objects
	funcs    map[string]*ast.FuncDecl
	atomicMu sync.Mutex

	// code is the lowered bytecode when this launch runs on the register
	// VM (nil for the tree walker); globalCells mirrors the globals map
	// in prog.Globals declaration order for pre-resolved global operands.
	code        *code.Program
	globalCells []*Cell
	// vmSerial is the register state shared by every sequential group of
	// a serial launch (all groups run on the calling goroutine), so the
	// VM stacks amortize across the whole launch.
	vmSerial *vmState
	// threaded is the direct-threaded form of code when this launch
	// dispatches through pre-resolved handlers (nil for the switch loop;
	// see vmthread.go).
	threaded *ThreadedProgram

	// sequential marks the per-group goroutine-free fast path: barrier-free
	// kernels (or single-thread work-groups) with race checking off run
	// every thread of a work-group back-to-back on one goroutine.
	sequential bool
	// parallelGroups marks the work-group fan-out path: independent groups
	// execute concurrently across a bounded worker pool (Options.Workers),
	// each in its own failure domain.
	parallelGroups bool
	// unshared is the memory-model flag: when the whole launch executes on
	// one goroutine (sequential per-group execution and no group fan-out),
	// loads and stores of shared cells and flat buffer words skip the
	// atomic operations that concurrent execution requires.
	unshared bool

	// dom is the launch-level failure domain used by the serial path (and
	// by host-side global initialization). Parallel groups get their own.
	dom *failDomain

	raceMu     sync.Mutex
	interGroup map[memKey]*accessRec // global-memory access record, per kernel run

	// state is the pooled container this Machine is embedded in; it owns
	// the group executors, pooled threads and arenas (see pool.go).
	state *launchState
}

// debugImmutable arms the read-only-AST assertion in Run: the program is
// fingerprinted before and after the launch and any difference panics.
// See SetDebugImmutable.
var debugImmutable atomic.Bool

// SetDebugImmutable toggles the executor's immutable-program assertion.
// The executor's contract is that Run never writes to the program it is
// handed — compiled kernels are shared, via the device package's back-end
// cache, across configurations and concurrent launches, and the campaign
// run-deduplication layer replays one launch's result for every
// configuration with the same defect model. With the assertion armed,
// every Run snapshots a fingerprint of the program's printed source before
// executing and verifies it afterwards, panicking on any mutation. (The
// two sanctioned node-level caches — the VarRef resolution slot and the
// Member field index — do not appear in printed source; both are
// annotations the evaluator validates before trusting.) The determinism
// test suites arm it under -race; it is far too slow for campaigns.
func SetDebugImmutable(on bool) { debugImmutable.Store(on) }

// fingerprint hashes the program's printed source.
func fingerprint(prog *ast.Program) uint64 { return bugs.Hash(ast.Print(prog)) }

// faultHook, when armed via SetFaultHook, runs at the start of every
// thread's kernel execution. It exists so the panic-containment tests
// (and fault-injection campaigns) can make the evaluator fail
// deliberately without planting a defect in a real code path.
var faultHook atomic.Pointer[func()]

// SetFaultHook installs fn to be called at the start of every thread's
// kernel execution — the deliberately failing "defect" used by the
// panic-containment regression tests. nil uninstalls it.
func SetFaultHook(fn func()) {
	if fn == nil {
		faultHook.Store(nil)
		return
	}
	faultHook.Store(&fn)
}

// containPanic is the launch-boundary panic barrier: an evaluator panic
// — an engine bug, a hostile defect hook, an out-of-range slab index —
// is converted into a *CrashError verdict for the failure domain instead
// of unwinding through the campaign worker and killing the whole
// process. It mirrors the paper's treatment of compiler/driver crashes
// as a first-class per-case outcome. Deliberate infrastructure panics
// (the immutable-program assertion) are raised outside this barrier and
// still propagate.
func containPanic(dom *failDomain) {
	if r := recover(); r != nil {
		dom.fail(&CrashError{Msg: fmt.Sprintf("evaluator panic: %v", r)})
	}
}

// ctxErr reports the cooperative-cancellation verdict for the launch
// context, or nil. Checked only at work-group boundaries.
func (m *Machine) ctxErr() error {
	if ctx := m.opts.Ctx; ctx != nil && ctx.Err() != nil {
		return &CancelError{Msg: ctx.Err().Error()}
	}
	return nil
}

// Run executes the kernel of prog over the NDRange with the given
// arguments. It returns nil on success; buffers hold the results.
//
// Run treats prog as immutable: no goroutine of the launch ever writes to
// the AST, so one program may be shared by any number of concurrent
// launches and configurations. SetDebugImmutable arms a checked mode that
// verifies this contract on every launch.
//
// Run never panics on an evaluator failure: panics raised while
// executing the kernel (on this goroutine or any launch goroutine) are
// contained at the launch boundary and returned as a *CrashError — the
// per-case "crash" outcome class — so one broken case cannot abort a
// million-case campaign. The immutable-program assertion is the one
// deliberate exception: it fires outside the containment barrier.
func Run(prog *ast.Program, nd NDRange, args Args, opts Options) (err error) {
	if debugImmutable.Load() {
		before := fingerprint(prog)
		defer func() {
			if after := fingerprint(prog); after != before {
				panic("exec: kernel program was mutated during Run (read-only AST contract violated)")
			}
		}()
	}
	// Containment for panics on the calling goroutine (host-side global
	// initialization, the serial and sequential execution paths).
	// Installed after the immutability defer so the assertion still
	// panics outward; launch goroutines carry their own containPanic.
	// The same defer returns the pooled state on a normal exit; a panic
	// may leave the state half-unwound, so it is dropped instead.
	var (
		pool  *LaunchPool
		state *launchState
	)
	defer func() {
		if r := recover(); r != nil {
			err = &CrashError{Msg: fmt.Sprintf("evaluator panic: %v", r)}
			return
		}
		if state != nil {
			pool.put(state)
		}
	}()
	if err := nd.Validate(); err != nil {
		return err
	}
	kernel := prog.Kernel()
	if kernel == nil {
		return fmt.Errorf("exec: program has no kernel")
	}
	if opts.Fuel <= 0 {
		opts.Fuel = 1 << 22
	}
	numGroups := nd.GlobalLinear() / nd.GroupLinear()
	workers := opts.Workers
	if workers > numGroups {
		workers = numGroups
	}
	sequential := !opts.CheckRaces && (opts.NoBarrier || nd.GroupLinear() == 1)
	parallelGroups := workers > 1 && !opts.CheckRaces && opts.NoAtomics
	pool = opts.Pool
	if pool == nil {
		pool = sharedPool
	}
	key := poolSerial
	switch {
	case parallelGroups:
		key = poolParallel
	case !sequential:
		key = poolLockstep
	}
	state = pool.get(key)
	state.reset()
	m := &state.m
	m.prog = prog
	m.kernel = kernel
	m.nd = nd
	m.args = args
	m.opts = opts
	m.sequential = sequential
	m.parallelGroups = parallelGroups
	m.unshared = sequential && !parallelGroups
	m.dom = state.freshDom()
	if opts.Code != nil && opts.Engine != EngineTree {
		m.code = opts.Code
		m.vmSerial = &state.serialVM
		// Direct-threaded dispatch needs a handler program built from this
		// exact instruction stream; opcode histograms are a switch-loop-only
		// observation, so an OpStats request also pins the switch loop.
		if opts.Dispatch == DispatchThreaded && opts.Threaded != nil &&
			opts.Threaded.p == opts.Code && opts.OpStats == nil {
			m.threaded = opts.Threaded
			threadedLaunches.Add(1)
		}
		vmLaunches.Add(1)
		if opts.FuelModel == FuelV2 {
			vmLaunchesV2.Add(1)
		}
	} else {
		treeLaunches.Add(1)
	}
	if opts.CheckRaces {
		m.interGroup = map[memKey]*accessRec{}
	}
	for _, f := range prog.Funcs {
		if f.Body != nil {
			m.funcs[f.Name] = f
		}
	}
	// Materialize program-scope constants once; they are read-only.
	// Initializers always run on the tree walker (host-side, once per
	// launch); globalCells records the cells in declaration order so the
	// VM's pre-resolved global operands index them directly.
	for _, g := range prog.Globals {
		c := NewCell(g.Type, cltypes.Constant)
		if g.Init != nil {
			th := &state.initThread
			th.resetState(m, nil, [3]int{}, [3]int{}, opts.Fuel)
			var v Value
			if err := th.evalInit(g.Type, g.Init, &v); err != nil {
				return err
			}
			if err := storeCell(c, &v, true); err != nil {
				return err
			}
		}
		m.globals[g.Name] = c
		m.globalCells = append(m.globalCells, c)
	}
	// Check arguments against kernel parameters.
	for _, p := range kernel.Params {
		if _, ok := m.args[p.Name]; !ok {
			return fmt.Errorf("exec: missing kernel argument %q", p.Name)
		}
	}
	if m.parallelGroups {
		return m.runGroupsParallel(numGroups, workers)
	}
	gs := state.group(0)
	ng := m.nd.NumGroups()
	for gz := 0; gz < ng[2]; gz++ {
		for gy := 0; gy < ng[1]; gy++ {
			for gx := 0; gx < ng[0]; gx++ {
				if cerr := m.ctxErr(); cerr != nil {
					return cerr
				}
				m.runGroup(gs, [3]int{gx, gy, gz}, m.dom)
				if m.dom.dead.Load() {
					return m.dom.err
				}
			}
		}
	}
	return m.dom.err
}

// groupAt maps a linear group index to the group id, in the serial
// iteration order (dimension 0 fastest).
func (n NDRange) groupAt(i int) [3]int {
	ng := n.NumGroups()
	return [3]int{i % ng[0], (i / ng[0]) % ng[1], i / (ng[0] * ng[1])}
}

// runGroupsParallel fans independent work-groups out across a bounded
// worker pool. Eligibility (no atomic builtins, races unchecked) makes
// group results independent of scheduling, so buffer contents are
// byte-identical to the serial order. Each group runs in its own failure
// domain and always to completion — no cross-group abort — and the launch
// verdict is the error of the lowest-numbered failing group, exactly the
// error the serial schedule would have returned.
func (m *Machine) runGroupsParallel(numGroups, workers int) error {
	st := m.state
	for len(st.errs) < numGroups {
		st.errs = append(st.errs, nil)
	}
	errs := st.errs[:numGroups]
	clear(errs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		gs := st.group(w)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= numGroups {
					return
				}
				dom := gs.freshDom()
				if cerr := m.ctxErr(); cerr != nil {
					dom.fail(cerr)
				} else {
					// Contain a panicking group without losing the pool
					// worker: the group's domain records the crash and the
					// remaining groups still execute.
					func() {
						defer containPanic(dom)
						m.runGroup(gs, m.nd.groupAt(i), dom)
					}()
				}
				errs[i] = dom.err
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) hashGate(salt, divisor uint64) bool {
	return bugs.Gate(m.opts.Hash, salt, divisor)
}

// groupCtx is the shared state of one work-group.
type groupCtx struct {
	m   *Machine
	id  [3]int
	dom *failDomain
	bar *barrier
	// ls serializes the group's thread goroutines into one deterministic
	// interleaving (nil on the sequential fast path, which needs none).
	ls    *lockstep
	mu    sync.Mutex
	local map[*ast.VarDecl]*Cell // local-memory variables, one per group
	races map[memKey]*accessRec  // intra-group access record, cleared at barriers
}

func (m *Machine) runGroup(gs *groupState, gid [3]int, dom *failDomain) {
	g := gs.resetGroup(m, gid, dom)
	n := m.nd.GroupLinear()
	if m.sequential {
		m.runGroupSequential(gs, n)
		return
	}
	gs.bar.reset(n, g)
	g.bar = &gs.bar
	// The lockstep scheduler serializes the group's goroutines into one
	// deterministic interleaving: the baton visits threads in work-item
	// order at every scheduling point, so atomic operations and shared
	// stores land in the same order on every run. Without it, goroutine
	// scheduling would make atomic-using kernels nondeterministic, which
	// would break the differential oracle, the campaign result cache and
	// shard/merge byte-identity alike.
	gs.ls.reset(n)
	g.ls = &gs.ls
	// Per-thread barrier-round counts, compared after the group finishes:
	// the wait-based divergence check in barrier.quit only fires when some
	// thread is still blocked, which depends on arrival order; the count
	// comparison catches the early-exit divergence regardless.
	var barCounts []int
	if m.opts.CheckRaces {
		for len(gs.barCounts) < n {
			gs.barCounts = append(gs.barCounts, 0)
		}
		barCounts = gs.barCounts[:n]
		clear(barCounts)
	}
	var wg sync.WaitGroup
	idx := 0
	for lz := 0; lz < m.nd.Local[2]; lz++ {
		for ly := 0; ly < m.nd.Local[1]; ly++ {
			for lx := 0; lx < m.nd.Local[0]; lx++ {
				lid := [3]int{lx, ly, lz}
				th := gs.thread(idx)
				idx++
				th.resetState(m, g, m.gidOf(g, lid), lid, m.opts.Fuel)
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Containment for a panic on this thread goroutine: the
					// group gets a crash verdict and the thread retires from
					// the barrier and the lockstep schedule exactly as the
					// error path does, so its siblings drain instead of
					// deadlocking on a vanished peer.
					defer func() {
						if r := recover(); r != nil {
							g.bar.quitErr()
							dom.fail(&CrashError{Msg: fmt.Sprintf("evaluator panic: %v", r)})
							g.ls.finish(th.lidLinear())
						}
					}()
					g.ls.waitTurn(th.lidLinear(), dom.abort)
					err := th.run()
					if st := m.opts.Stats; st != nil {
						st.noteThreadSteps(m.opts.Fuel - th.fuel)
					}
					if barCounts != nil {
						barCounts[th.lidLinear()] = th.barrierCount
					}
					if err != nil {
						g.bar.quitErr()
						// fail before retiring from the lockstep, so the
						// first error of the deterministic schedule is
						// the group's verdict; the finish below must
						// still run — a thread left ready-but-gone would
						// soak up a later grant and stall the group.
						dom.fail(err)
						g.ls.finish(th.lidLinear())
						return
					}
					if derr := g.bar.quit(); derr != nil {
						dom.fail(derr)
						g.ls.finish(th.lidLinear())
						return
					}
					g.ls.finish(th.lidLinear())
				}()
			}
		}
	}
	g.ls.start()
	wg.Wait()
	if barCounts != nil && !dom.dead.Load() {
		for i := 1; i < n; i++ {
			if barCounts[i] != barCounts[0] {
				dom.fail(&DivergenceError{Msg: fmt.Sprintf(
					"threads of group %v executed different barrier counts (%d vs %d)",
					g.id, barCounts[0], barCounts[i])})
				break
			}
		}
	}
}

// runGroupSequential executes the work-group's threads back-to-back on the
// calling goroutine. It is valid whenever no thread can block on another:
// the program issues no barriers (or the group has a single thread, for
// which every barrier releases immediately), and race checking — whose
// reports depend on interleaving — is off. No goroutines are spawned, no
// WaitGroup is touched, and the barrier object is allocated only when the
// program can actually reach a barrier call.
func (m *Machine) runGroupSequential(gs *groupState, n int) {
	g := &gs.g
	if !m.opts.NoBarrier {
		// Single-thread group of a barrier-using kernel: every await
		// releases immediately, but the builtin still needs the object.
		gs.bar.reset(n, g)
		g.bar = &gs.bar
	}
	// One VM register state serves every thread of the group: they run
	// back-to-back on this goroutine, so the stacks amortize across
	// work-items instead of being reallocated per thread. A fully serial
	// launch goes further and shares one state across all its groups.
	var sharedVM *vmState
	if m.code != nil {
		if m.parallelGroups {
			sharedVM = &gs.vm
		} else {
			sharedVM = m.vmSerial
		}
	}
	// One pooled thread serves every work-item of the group, reset (and
	// its arenas re-zeroed) between items, so the per-item state costs a
	// memclr of what the previous item actually used instead of fresh
	// allocations.
	th := &gs.seq
	for lz := 0; lz < m.nd.Local[2]; lz++ {
		for ly := 0; ly < m.nd.Local[1]; ly++ {
			for lx := 0; lx < m.nd.Local[0]; lx++ {
				lid := [3]int{lx, ly, lz}
				th.resetState(m, g, m.gidOf(g, lid), lid, m.opts.Fuel)
				th.vm = sharedVM
				err := th.run()
				if st := m.opts.Stats; st != nil {
					used := m.opts.Fuel - th.fuel
					if m.unshared {
						if used > st.MaxThreadSteps {
							st.MaxThreadSteps = used
						}
					} else {
						// Parallel groups share the Stats across
						// goroutines even when each group is sequential.
						st.noteThreadSteps(used)
					}
				}
				if err != nil {
					g.dom.fail(err)
					return
				}
			}
		}
	}
}

// gidOf maps a local id within group g to the global work-item id.
func (m *Machine) gidOf(g *groupCtx, lid [3]int) [3]int {
	return [3]int{
		g.id[0]*m.nd.Local[0] + lid[0],
		g.id[1]*m.nd.Local[1] + lid[1],
		g.id[2]*m.nd.Local[2] + lid[2],
	}
}

// lidLinear computes the linearized local id of the thread.
func (t *thread) lidLinear() int {
	return (t.lid[2]*t.m.nd.Local[1]+t.lid[1])*t.m.nd.Local[0] + t.lid[0]
}

func (t *thread) gidLinear() int {
	return (t.gid[2]*t.m.nd.Global[1]+t.gid[1])*t.m.nd.Global[0] + t.gid[0]
}

func (t *thread) groupLinear() int {
	ng := t.m.nd.NumGroups()
	return (t.group.id[2]*ng[1]+t.group.id[1])*ng[0] + t.group.id[0]
}

// ---- access records for the race checker ----

// memKey identifies one tracked memory location: a cell, or (for flat
// scalar buffers, which have no per-element cells) the address of the
// element's word in the backing store. Exactly one field is non-nil.
type memKey struct {
	c *Cell
	w *uint64
}

// space returns the address space of the location; flat words are always
// global memory.
func (k memKey) space() cltypes.AddrSpace {
	if k.c != nil {
		return k.c.Space
	}
	return cltypes.Global
}

type accessRec struct {
	// thread (intra-group) or group (inter-group) linear ids.
	readers map[int]bool
	writers map[int]bool
	atomics map[int]bool // atomic RMW accessors
}

func newAccessRec() *accessRec {
	return &accessRec{readers: map[int]bool{}, writers: map[int]bool{}, atomics: map[int]bool{}}
}

// note records an access by id and reports whether it races with a
// previously recorded access: two distinct accessors, at least one write,
// not both atomic (paper §3.1).
func (r *accessRec) note(id int, write, isAtomic bool) bool {
	race := false
	if isAtomic {
		for w := range r.writers {
			if w != id {
				race = true
			}
		}
		for rd := range r.readers {
			if rd != id {
				race = true
			}
		}
		r.atomics[id] = true
	} else {
		if write {
			for rd := range r.readers {
				if rd != id {
					race = true
				}
			}
			for w := range r.writers {
				if w != id {
					race = true
				}
			}
			for a := range r.atomics {
				if a != id {
					race = true
				}
			}
			r.writers[id] = true
		} else {
			for w := range r.writers {
				if w != id {
					race = true
				}
			}
			for a := range r.atomics {
				if a != id {
					race = true
				}
			}
			r.readers[id] = true
		}
	}
	return race
}

// noteAccess records a shared-memory access to a cell for the race checker
// and reports an error when a race is detected.
func (t *thread) noteAccess(c *Cell, write, isAtomic bool) error {
	if !t.m.opts.CheckRaces || !c.Shared {
		return nil
	}
	return t.noteLoc(memKey{c: c}, write, isAtomic)
}

// noteWordAccess is noteAccess for a flat buffer element (always shared
// global memory).
func (t *thread) noteWordAccess(w *uint64, write, isAtomic bool) error {
	if !t.m.opts.CheckRaces {
		return nil
	}
	return t.noteLoc(memKey{w: w}, write, isAtomic)
}

func (t *thread) noteLoc(loc memKey, write, isAtomic bool) error {
	// Intra-group record (cleared at barriers).
	g := t.group
	g.mu.Lock()
	rec, ok := g.races[loc]
	if !ok {
		rec = newAccessRec()
		g.races[loc] = rec
	}
	raced := rec.note(t.lidLinear(), write, isAtomic)
	g.mu.Unlock()
	if raced {
		return &RaceError{Msg: fmt.Sprintf("intra-group race on %s cell (group %v, thread %v)", loc.space(), g.id, t.lid)}
	}
	// Inter-group record for global memory (never cleared). Unlike the
	// paper's conservative definition we treat pairs of atomic accesses
	// as non-racing across groups: OpenCL 1.x global atomics are atomic
	// device-wide, and the standard benchmarks rely on this.
	if loc.space() == cltypes.Global {
		t.m.raceMu.Lock()
		grec, ok := t.m.interGroup[loc]
		if !ok {
			grec = newAccessRec()
			t.m.interGroup[loc] = grec
		}
		gr := grec.note(t.groupLinear(), write, isAtomic)
		t.m.raceMu.Unlock()
		if gr {
			return &RaceError{Msg: fmt.Sprintf("inter-group race on global cell (group %v, thread %v)", g.id, t.lid)}
		}
	}
	return nil
}

// clearRaces drops intra-group access records for the spaces covered by the
// barrier fence flags (bit 0: local, bit 1: global).
func (g *groupCtx) clearRaces(fence uint64) {
	if !g.m.opts.CheckRaces {
		return
	}
	g.mu.Lock()
	for loc := range g.races {
		if sp := loc.space(); (sp == cltypes.Local && fence&1 != 0) || (sp == cltypes.Global && fence&2 != 0) {
			delete(g.races, loc)
		}
	}
	g.mu.Unlock()
}
