package exec

// Direct-threaded dispatch. The switch loop in vm.go pays, per dispatched
// instruction, a program-counter increment with a bounds-checked fetch,
// operand widening, a 60-way switch, and a type assertion on every Aux
// payload. This file pre-resolves each lowered instruction to a Go
// closure once per program: operands, Aux payloads, branch targets and
// the continuation are captured as build-time constants, and the driver
// loop charges fuel from a per-entry cost table and makes a single
// indirect call per instruction. Semantics — fuel charges, abort-poll
// cadence, race notes, defect models, coverage edges, error messages —
// mirror vmLoop arm for arm; the dispatch and fuse test suites plus
// FuzzThreadedMatchesSwitch pin byte-identity.
//
// Handlers return the next entry (nil stops the driver, with the
// verdict in vmTState.err). Calls push a frame carrying the caller's
// continuation entry (vmFrame.retH) and jump to the callee's entry
// slot; returns pop and resume it.

import (
	"fmt"
	"sync/atomic"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/code"
)

// threadedLaunches counts VM launches that dispatched through the
// direct-threaded loop (vmLaunches minus this is the switch-loop count).
var threadedLaunches atomic.Int64

// DispatchCounters splits the VM launch counter by dispatch mode.
func DispatchCounters() (switchRuns, threadedRuns int64) {
	tr := threadedLaunches.Load()
	return vmLaunches.Load() - tr, tr
}

// Dispatch selects the VM dispatch mode.
type Dispatch uint8

const (
	// DispatchAuto is the default: the switch loop (identical to
	// DispatchSwitch; the name records that the choice was not forced).
	DispatchAuto Dispatch = iota
	// DispatchSwitch forces the switch dispatch loop.
	DispatchSwitch
	// DispatchThreaded requests direct-threaded dispatch, used whenever a
	// ThreadedProgram matching the lowered code is supplied (and the
	// launch does not collect opcode histograms, which only the switch
	// loop implements); otherwise the switch loop runs.
	DispatchThreaded
)

// ParseDispatch parses a dispatch-mode name: "auto" (or empty),
// "switch", "threaded".
func ParseDispatch(s string) (Dispatch, error) {
	switch s {
	case "", "auto":
		return DispatchAuto, nil
	case "switch":
		return DispatchSwitch, nil
	case "threaded":
		return DispatchThreaded, nil
	}
	return DispatchAuto, fmt.Errorf("exec: unknown dispatch mode %q (want auto, switch or threaded)", s)
}

// String names the dispatch mode.
func (d Dispatch) String() string {
	switch d {
	case DispatchSwitch:
		return "switch"
	case DispatchThreaded:
		return "threaded"
	}
	return "auto"
}

// vmHandler executes one pre-resolved instruction and returns the next
// entry, or nil to stop the driver (kernel return or error).
type vmHandler func(t *thread, s *vmTState) *vmEntry

// vmEntry pairs an instruction's handler with its fuel cost. The driver
// loop charges the cost before invoking the handler, so the per-
// instruction accounting is one inline branch instead of a second
// indirect call from inside each closure.
type vmEntry struct {
	h    vmHandler
	cost int64
}

// vmTState is the mutable state the handlers share: the current frame's
// register windows (re-sliced on call and return) and the per-launch
// observation hooks. It lives inside the pooled vmState.
type vmTState struct {
	vm         *vmState
	tp         *ThreadedProgram
	fr         *vmFrame
	regs       []Value
	lvs        []lval
	unshared   bool
	checkRaces bool
	cov        *CoverMap
	err        error
}

// ThreadedProgram is a lowered program with every instruction resolved
// to its handler closure, built once by Thread and cached beside the
// program (device.Kernel memoizes one per code.Program, like the fused
// form). It is immutable and safe to share across concurrent launches.
type ThreadedProgram struct {
	p   *code.Program
	fns [][]vmEntry
}

// Thread builds the direct-threaded form of p.
func Thread(p *code.Program) *ThreadedProgram {
	tp := &ThreadedProgram{p: p, fns: make([][]vmEntry, len(p.Fns))}
	for i, fn := range p.Fns {
		tp.fns[i] = tp.buildFn(fn)
	}
	return tp
}

// vmThreadedLoop drives the handler chain for the already-pushed kernel
// frame, mirroring vmLoop's setup.
func (t *thread) vmThreadedLoop(vm *vmState) error {
	s := &vm.ts
	s.vm = vm
	s.tp = t.m.threaded
	fr := &vm.frames[len(vm.frames)-1]
	s.fr = fr
	s.regs = vm.regs[fr.regBase:]
	s.lvs = vm.lvs[fr.lvBase:]
	s.unshared = t.m.unshared
	s.checkRaces = t.m.opts.CheckRaces
	s.cov = t.m.opts.Cover
	s.err = nil
	e := &s.tp.fns[s.tp.p.Kernel][0]
	for e != nil {
		t.vmInstrs++
		if e.cost != 0 {
			t.fuel -= e.cost
			if t.fuel <= 0 {
				s.err = &TimeoutError{Where: "kernel execution"}
				break
			}
			if t.fuel&255 == 0 && t.dom.dead.Load() {
				if err := t.dom.err; err != nil {
					s.err = err
				} else {
					s.err = errAborted
				}
				break
			}
		}
		e = e.h(t, s)
	}
	err := s.err
	// Drop the per-launch references so a pooled vmState does not pin
	// them while idle.
	*s = vmTState{}
	return err
}

// vmtReturn pops the current frame, writes the (already converted)
// return value into the caller's destination register, re-installs the
// caller's windows and resumes its continuation. The kernel frame stops
// the driver.
func (t *thread) vmtReturn(s *vmTState, rv Value) *vmEntry {
	vm := s.vm
	f := s.fr
	t.iterStack = t.iterStack[:f.iterBase]
	vm.slotStack = vm.slotStack[:f.slotBase]
	retH, retDst := f.retH, f.retDst
	vm.frames = vm.frames[:len(vm.frames)-1]
	if len(vm.frames) == 0 {
		s.err = nil
		return nil
	}
	t.depth--
	cf := &vm.frames[len(vm.frames)-1]
	if retDst >= 0 {
		vm.regs[cf.regBase+int(retDst)] = rv
	}
	s.fr = cf
	s.regs = vm.regs[cf.regBase:]
	s.lvs = vm.lvs[cf.lvBase:]
	return retH
}

// buildFn resolves one function's instructions to entries. The slice is
// allocated first so branch and fall-through continuations can capture
// stable element addresses (the entry's handler field is read at run
// time, after every slot is populated); index len(code) holds a
// fall-off trap mirroring the switch loop's out-of-range fetch panic.
func (tp *ThreadedProgram) buildFn(fn *code.Fn) []vmEntry {
	hs := make([]vmEntry, len(fn.Code)+1)
	hs[len(fn.Code)].h = func(t *thread, s *vmTState) *vmEntry {
		panic(fmt.Sprintf("exec: pc out of range in %s", fn.Name))
	}
	for pc := range fn.Code {
		hs[pc] = vmEntry{h: tp.buildInstr(fn, hs, pc), cost: int64(fn.Code[pc].Cost)}
	}
	return hs
}

// buildInstr resolves fn.Code[pc] to its handler.
func (tp *ThreadedProgram) buildInstr(fn *code.Fn, hs []vmEntry, pc int) vmHandler {
	in := &fn.Code[pc]
	var (
		dst   = int(in.Dst)
		a     = int(in.A)
		b     = int(in.B)
		next  = &hs[pc+1]
		fnIdx = fn.Idx
		pcI   = int32(pc)
	)
	// branch returns the captured-target continuation for branching ops,
	// recording the coverage edge exactly like the switch arms.
	branch := func(target int32) func(s *vmTState) *vmEntry {
		tgt := &hs[int(target)]
		return func(s *vmTState) *vmEntry {
			if s.cov != nil {
				s.cov.hitEdge(fnIdx, pcI, target)
			}
			return tgt
		}
	}
	// fail stops the driver with err.
	fail := func(s *vmTState, err error) *vmEntry {
		s.err = err
		return nil
	}

	switch in.Op {
	case code.OpStep:
		return func(t *thread, s *vmTState) *vmEntry {
			return next
		}

	case code.OpJump:
		tgt := &hs[a]
		return func(t *thread, s *vmTState) *vmEntry {
			return tgt
		}

	case code.OpBranchFalse:
		br := branch(in.A)
		return func(t *thread, s *vmTState) *vmEntry {
			if !s.regs[dst].isTrue() {
				return br(s)
			}
			return next
		}

	case code.OpBoolTest:
		br := branch(in.A)
		and := b == 0
		return func(t *thread, s *vmTState) *vmEntry {
			v := &s.regs[dst]
			if and {
				if !v.isTrue() {
					*v = boolValue(false)
					return br(s)
				}
			} else if v.isTrue() {
				*v = boolValue(true)
				return br(s)
			}
			return next
		}

	case code.OpBoolFin:
		return func(t *thread, s *vmTState) *vmEntry {
			s.regs[dst] = boolValue(s.regs[dst].isTrue())
			return next
		}

	case code.OpLoopEnter:
		return func(t *thread, s *vmTState) *vmEntry {
			t.iterStack = append(t.iterStack, 0)
			return next
		}

	case code.OpLoopIter:
		return func(t *thread, s *vmTState) *vmEntry {
			t.iterStack[len(t.iterStack)-1]++
			return next
		}

	case code.OpLoopExit:
		le, _ := in.Aux.(*code.LoopExit)
		return func(t *thread, s *vmTState) *vmEntry {
			n := len(t.iterStack)
			iters := t.iterStack[n-1]
			t.iterStack = t.iterStack[:n-1]
			if le != nil && iters == 0 {
				if s.cov != nil {
					s.cov.hitSite(CoverSiteDeadLoop)
				}
				if t.m.opts.Defects.Has(bugs.WCDeadLoopBarrier) && t.lidLinear() != 0 {
					t.vmDeadLoopDefect(le, s.fr)
				}
			}
			return next
		}

	case code.OpReturn:
		rt, retScalar := fn.Decl.Ret.(*cltypes.Scalar)
		return func(t *thread, s *vmTState) *vmEntry {
			rv := s.regs[a]
			if retScalar {
				if _, isS := rv.T.(*cltypes.Scalar); isS {
					rv = convertScalar(&rv, rt)
				}
			}
			return t.vmtReturn(s, rv)
		}

	case code.OpReturnVoid:
		return func(t *thread, s *vmTState) *vmEntry {
			return t.vmtReturn(s, Value{T: cltypes.TVoid})
		}

	case code.OpReturnEnd:
		f := fn.Decl
		var rv Value
		fellOff := false
		if f.Ret.Equal(cltypes.TVoid) {
			rv = Value{T: cltypes.TVoid}
		} else if rt, ok := f.Ret.(*cltypes.Scalar); ok {
			rv = scalarValue(0, rt)
		} else {
			fellOff = true
		}
		return func(t *thread, s *vmTState) *vmEntry {
			if fellOff {
				return fail(s, fmt.Errorf("exec: function %s fell off the end", f.Name))
			}
			return t.vmtReturn(s, rv)
		}

	case code.OpConst:
		cv := in.Aux.(*code.ConstVal)
		val := Value{T: cv.T, Scalar: cv.V}
		return func(t *thread, s *vmTState) *vmEntry {
			s.regs[dst] = val
			return next
		}

	case code.OpPredef:
		val := scalarValue(uint64(in.A), cltypes.TUInt)
		return func(t *thread, s *vmTState) *vmEntry {
			s.regs[dst] = val
			return next
		}

	case code.OpLoadSlot, code.OpLoadGlobal:
		global := in.Op == code.OpLoadGlobal
		return func(t *thread, s *vmTState) *vmEntry {
			var c *Cell
			if global {
				c = t.m.globalCells[a]
			} else {
				c = s.fr.slots[a]
			}
			if s.checkRaces {
				if err := t.noteAccess(c, false, false); err != nil {
					return fail(s, err)
				}
			}
			if sc, ok := c.Typ.(*cltypes.Scalar); ok && (s.unshared || !c.Shared) {
				s.regs[dst] = Value{T: sc, Scalar: c.Val}
			} else if err := loadCell(c, s.unshared, &s.regs[dst]); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpUnary:
		op := ast.UnOp(in.B)
		rt := auxType(in.Aux)
		return func(t *thread, s *vmTState) *vmEntry {
			if err := t.vmUnary(op, rt, &s.regs[dst]); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpDeref:
		return func(t *thread, s *vmTState) *vmEntry {
			lv, err := t.ptrLV(s.regs[a].Ptr, "null or dangling pointer dereference")
			if err != nil {
				return fail(s, err)
			}
			if s.checkRaces {
				if err := t.noteLVAccess(lv, false); err != nil {
					return fail(s, err)
				}
			}
			if err := lv.load(&s.regs[dst]); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpIncDec:
		op := ast.UnOp(in.B)
		return func(t *thread, s *vmTState) *vmEntry {
			if err := t.vmIncDec(s.lvs[a], op, &s.regs[dst]); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpAddrLV:
		rt := auxType(in.Aux)
		return func(t *thread, s *vmTState) *vmEntry {
			lv := s.lvs[a]
			if lv.uField != nil || lv.vecIdx >= 0 {
				return fail(s, fmt.Errorf("exec: cannot take the address of a union field or vector component"))
			}
			var p Ptr
			if lv.flat != nil {
				p = Ptr{Flat: lv.flat, Idx: lv.wIdx}
			} else if _, isArr := lv.c.Typ.(*cltypes.Array); isArr {
				p = Ptr{Slice: lv.c.Kids, Idx: 0}
			} else {
				p = Ptr{Cell: lv.c}
			}
			s.regs[dst] = Value{T: rt, Ptr: p}
			return next
		}

	case code.OpAddrElem:
		rt := auxType(in.Aux)
		return func(t *thread, s *vmTState) *vmEntry {
			blv := s.lvs[a]
			iv := &s.regs[b]
			is := iv.T.(*cltypes.Scalar)
			idx := int(cltypes.AsInt64(iv.Scalar, is))
			if blv.c != nil && blv.uField == nil && blv.vecIdx < 0 {
				if idx < 0 || idx >= len(blv.c.Kids) {
					return fail(s, &CrashError{Msg: "address of out-of-bounds element"})
				}
				s.regs[dst] = Value{T: rt, Ptr: Ptr{Slice: blv.c.Kids, Idx: idx}}
			} else {
				return fail(s, fmt.Errorf("exec: cannot take element address of view lvalue"))
			}
			return next
		}

	case code.OpPtrAt:
		rt := auxType(in.Aux)
		return func(t *thread, s *vmTState) *vmEntry {
			iv := &s.regs[b]
			is := iv.T.(*cltypes.Scalar)
			idx := int(cltypes.AsInt64(iv.Scalar, is))
			s.regs[dst] = Value{T: rt, Ptr: s.regs[a].Ptr.At(idx)}
			return next
		}

	case code.OpBinary:
		bi := in.Aux.(*code.BinInfo)
		return func(t *thread, s *vmTState) *vmEntry {
			if err := t.vmBinaryOp(bi, &s.regs[a], &s.regs[b], &s.regs[dst]); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpComma:
		return func(t *thread, s *vmTState) *vmEntry {
			if t.m.opts.Defects.Has(bugs.WCComma) {
				if rt, ok := s.regs[dst].T.(*cltypes.Scalar); ok {
					s.regs[dst] = scalarValue(0, rt)
				}
			}
			return next
		}

	case code.OpCondFin:
		rt, isScalar := auxType(in.Aux).(*cltypes.Scalar)
		return func(t *thread, s *vmTState) *vmEntry {
			if isScalar {
				if _, isS := s.regs[dst].T.(*cltypes.Scalar); isS {
					s.regs[dst] = convertScalar(&s.regs[dst], rt)
				}
			}
			return next
		}

	case code.OpSwizzle:
		idx := in.Aux.([]int)
		return func(t *thread, s *vmTState) *vmEntry {
			v := &s.regs[a]
			vt, ok := v.T.(*cltypes.Vector)
			if !ok {
				return fail(s, fmt.Errorf("exec: swizzle of non-vector %s", v.T))
			}
			if len(idx) == 1 {
				s.regs[dst] = scalarValue(v.Vec[idx[0]], vt.Elem)
			} else {
				sw := make([]uint64, len(idx))
				for i, j := range idx {
					sw[i] = v.Vec[j]
				}
				s.regs[dst] = Value{T: cltypes.VecOf(vt.Elem, len(idx)), Vec: sw}
			}
			return next
		}

	case code.OpVecLit:
		vt := in.Aux.(*cltypes.Vector)
		return func(t *thread, s *vmTState) *vmEntry {
			var comps []uint64
			for i := 0; i < b; i++ {
				el := &s.regs[a+i]
				switch et := el.T.(type) {
				case *cltypes.Scalar:
					comps = append(comps, cltypes.Convert(el.Scalar, et, vt.Elem))
				case *cltypes.Vector:
					comps = append(comps, el.Vec...)
				default:
					return fail(s, fmt.Errorf("exec: bad vector literal element %s", el.T))
				}
			}
			if len(comps) == 1 && vt.Len > 1 {
				splat := make([]uint64, vt.Len)
				for i := range splat {
					splat[i] = comps[0]
				}
				comps = splat
			}
			if len(comps) != vt.Len {
				return fail(s, fmt.Errorf("exec: vector literal arity mismatch"))
			}
			s.regs[dst] = Value{T: vt, Vec: comps}
			return next
		}

	case code.OpCast:
		toT := auxType(in.Aux)
		return func(t *thread, s *vmTState) *vmEntry {
			if err := vmCast(&s.regs[dst], toT); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpConvert:
		toT := auxType(in.Aux)
		return func(t *thread, s *vmTState) *vmEntry {
			out := &s.regs[dst]
			switch to := toT.(type) {
			case *cltypes.Scalar:
				*out = convertScalar(out, to)
			case *cltypes.Vector:
				src := out.T.(*cltypes.Vector)
				vec := make([]uint64, to.Len)
				for i, c := range out.Vec {
					vec[i] = cltypes.Convert(c, src.Elem, to.Elem)
				}
				*out = Value{T: to, Vec: vec}
			default:
				return fail(s, fmt.Errorf("exec: bad convert result type"))
			}
			return next
		}

	case code.OpConvertFree:
		to := in.Aux.(*cltypes.Scalar)
		return func(t *thread, s *vmTState) *vmEntry {
			if _, ok := s.regs[dst].T.(*cltypes.Scalar); ok {
				s.regs[dst] = convertScalar(&s.regs[dst], to)
			}
			return next
		}

	case code.OpIdBuiltin:
		name := in.Aux.(string)
		return func(t *thread, s *vmTState) *vmEntry {
			dim := int(s.regs[a].Scalar)
			s.regs[dst] = scalarValue(t.idBuiltin(name, dim), cltypes.TSizeT)
			return next
		}

	case code.OpWorkDim:
		val := scalarValue(3, cltypes.TUInt)
		return func(t *thread, s *vmTState) *vmEntry {
			s.regs[dst] = val
			return next
		}

	case code.OpLinearId:
		return func(t *thread, s *vmTState) *vmEntry {
			var v uint64
			switch b {
			case 0:
				v = uint64(t.gidLinear())
			case 1:
				v = uint64(t.lidLinear())
			default:
				v = uint64(t.groupLinear())
			}
			s.regs[dst] = scalarValue(v, cltypes.TSizeT)
			return next
		}

	case code.OpBarrier:
		node := in.Aux.(ast.Node)
		return func(t *thread, s *vmTState) *vmEntry {
			if t.group == nil {
				return fail(s, fmt.Errorf("exec: barrier outside kernel execution"))
			}
			if t.group.bar == nil {
				return fail(s, &CrashError{Msg: "barrier reached in barrier-free sequential execution"})
			}
			tok := barrierToken{node: node, iters: t.iterDigest()}
			if err := t.group.bar.await(tok, s.regs[a].Scalar, t.lidLinear()); err != nil {
				return fail(s, err)
			}
			t.barrierSeen = true
			t.barrierCount++
			s.regs[dst] = Value{T: cltypes.TVoid}
			return next
		}

	case code.OpCrc64:
		return func(t *thread, s *vmTState) *vmEntry {
			c, v := &s.regs[a], &s.regs[b]
			vs := v.T.(*cltypes.Scalar)
			s.regs[dst] = scalarValue(crcMix(c.Scalar, cltypes.SExt(v.Scalar, vs)), cltypes.TULong)
			return next
		}

	case code.OpVcrc:
		return func(t *thread, s *vmTState) *vmEntry {
			c, v := &s.regs[a], &s.regs[b]
			h := c.Scalar
			for _, comp := range v.Vec {
				h = crcMix(h, comp)
			}
			s.regs[dst] = scalarValue(h, cltypes.TULong)
			return next
		}

	case code.OpAtomic, code.OpMath, code.OpStore, code.OpStoreSlot:
		// These helpers take the original *code.Instr (operand block
		// addressing for atomics/math, the *StoreInfo and value/reload
		// registers for stores), so the handler passes it through. The
		// store forms additionally rebuild their lvalue per dispatch.
		atomic := in.Op == code.OpAtomic
		math := in.Op == code.OpMath
		slotStore := in.Op == code.OpStoreSlot
		return func(t *thread, s *vmTState) *vmEntry {
			var err error
			switch {
			case atomic:
				err = t.vmAtomic(in, s.regs)
			case math:
				err = t.vmMath(in, s.regs)
			case slotStore:
				err = t.vmStore(in, directLV(s.fr.slots[a], s.unshared), s.regs)
			default:
				err = t.vmStore(in, s.lvs[a], s.regs)
			}
			if err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpCallPrep:
		callee := tp.p.Fns[a]
		return func(t *thread, s *vmTState) *vmEntry {
			if t.depth >= 64 {
				return fail(s, &CrashError{Msg: "call stack overflow"})
			}
			slots, base := s.vm.grabSlots(callee.NumSlots)
			s.vm.pending = append(s.vm.pending, vmPending{fn: callee, slots: slots, slotBase: base})
			return next
		}

	case code.OpBindArg:
		pt := in.Aux.(cltypes.Type)
		return func(t *thread, s *vmTState) *vmEntry {
			p := &s.vm.pending[len(s.vm.pending)-1]
			c := t.newPrivCell(pt)
			if err := storeCell(c, &s.regs[a], s.unshared); err != nil {
				return fail(s, err)
			}
			p.slots[b] = c
			return next
		}

	case code.OpCall:
		retDst := in.Dst
		retPC := pc + 1
		return func(t *thread, s *vmTState) *vmEntry {
			vm := s.vm
			p := vm.pending[len(vm.pending)-1]
			vm.pending = vm.pending[:len(vm.pending)-1]
			fr := s.fr
			regBase := fr.regBase + fr.fn.NumRegs
			lvBase := fr.lvBase + fr.fn.NumLVs
			vm.ensureRegs(regBase + p.fn.NumRegs)
			vm.ensureLVs(lvBase + p.fn.NumLVs)
			vm.frames = append(vm.frames, vmFrame{
				fn: p.fn, slots: p.slots, slotBase: p.slotBase,
				regBase: regBase, lvBase: lvBase,
				retPC: retPC, retDst: retDst, iterBase: len(t.iterStack),
				retH: next,
			})
			t.depth++
			s.fr = &vm.frames[len(vm.frames)-1]
			s.regs = vm.regs[regBase:]
			s.lvs = vm.lvs[lvBase:]
			return &s.tp.fns[p.fn.Idx][0]
		}

	case code.OpLVSlot, code.OpLVGlobal:
		global := in.Op == code.OpLVGlobal
		return func(t *thread, s *vmTState) *vmEntry {
			if global {
				s.lvs[dst] = directLV(t.m.globalCells[a], s.unshared)
			} else {
				s.lvs[dst] = directLV(s.fr.slots[a], s.unshared)
			}
			return next
		}

	case code.OpLVDeref:
		return func(t *thread, s *vmTState) *vmEntry {
			lv, err := t.ptrLV(s.regs[a].Ptr, "null or dangling pointer dereference")
			if err != nil {
				return fail(s, err)
			}
			s.lvs[dst] = lv
			return next
		}

	case code.OpLVPtrIndex:
		return func(t *thread, s *vmTState) *vmEntry {
			iv := &s.regs[b]
			is, ok := iv.T.(*cltypes.Scalar)
			if !ok {
				return fail(s, fmt.Errorf("exec: non-scalar index"))
			}
			idx := int(cltypes.AsInt64(iv.Scalar, is))
			lv, err := t.ptrLV(s.regs[a].Ptr.At(idx), "out-of-bounds buffer access")
			if err != nil {
				return fail(s, err)
			}
			s.lvs[dst] = lv
			return next
		}

	case code.OpLVIndex:
		return func(t *thread, s *vmTState) *vmEntry {
			iv := &s.regs[b]
			is, ok := iv.T.(*cltypes.Scalar)
			if !ok {
				return fail(s, fmt.Errorf("exec: non-scalar index"))
			}
			idx := int(cltypes.AsInt64(iv.Scalar, is))
			blv := s.lvs[a]
			if blv.uField != nil || blv.vecIdx >= 0 || blv.flat != nil {
				return fail(s, fmt.Errorf("exec: cannot index a view lvalue"))
			}
			if idx < 0 || idx >= len(blv.c.Kids) {
				return fail(s, &CrashError{Msg: fmt.Sprintf("array index %d out of bounds [0,%d)", idx, len(blv.c.Kids))})
			}
			s.lvs[dst] = directLV(blv.c.Kids[idx], s.unshared)
			return next
		}

	case code.OpLVArrow, code.OpLVMember:
		arrow := in.Op == code.OpLVArrow
		mi := in.Aux.(*code.MemberInfo)
		return func(t *thread, s *vmTState) *vmEntry {
			var base *Cell
			if arrow {
				base = s.regs[a].Ptr.Target()
				if base == nil {
					return fail(s, &CrashError{Msg: "null pointer member access"})
				}
			} else {
				blv := s.lvs[a]
				if blv.uField != nil {
					return fail(s, fmt.Errorf("exec: nested union member views unsupported"))
				}
				if blv.c == nil {
					return fail(s, fmt.Errorf("exec: member access on a non-aggregate lvalue"))
				}
				base = blv.c
			}
			st, ok := base.Typ.(*cltypes.StructT)
			if !ok {
				return fail(s, fmt.Errorf("exec: member access on %s", base.Typ))
			}
			i := int(mi.Idx)
			if i < 0 {
				i = st.FieldIndex(mi.Name)
			}
			if i < 0 || i >= len(st.Fields) {
				return fail(s, fmt.Errorf("exec: no field %q in %s", mi.Name, st))
			}
			if st.IsUnion {
				s.lvs[dst] = lval{c: base, uField: st.Fields[i].Type, vecIdx: -1, unshared: s.unshared}
			} else {
				s.lvs[dst] = directLV(base.Kids[i], s.unshared)
			}
			return next
		}

	case code.OpLVSwizzle:
		return func(t *thread, s *vmTState) *vmEntry {
			blv := s.lvs[a]
			if blv.uField != nil || blv.vecIdx >= 0 || blv.flat != nil {
				return fail(s, fmt.Errorf("exec: cannot swizzle a view lvalue"))
			}
			s.lvs[dst] = lval{c: blv.c, vecIdx: b, unshared: s.unshared}
			return next
		}

	case code.OpLVLoad:
		return func(t *thread, s *vmTState) *vmEntry {
			lv := s.lvs[a]
			if s.checkRaces {
				if err := t.noteLVAccess(lv, false); err != nil {
					return fail(s, err)
				}
			}
			if err := lv.load(&s.regs[dst]); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpDeclare:
		pt := in.Aux.(cltypes.Type)
		return func(t *thread, s *vmTState) *vmEntry {
			s.fr.slots[a] = t.newPrivCell(pt)
			return next
		}

	case code.OpStoreDecl:
		return func(t *thread, s *vmTState) *vmEntry {
			if err := storeCell(s.fr.slots[a], &s.regs[b], s.unshared); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpBindLocal:
		d := in.Aux.(*ast.VarDecl)
		return func(t *thread, s *vmTState) *vmEntry {
			g := t.group
			g.mu.Lock()
			c, ok := g.local[d]
			if !ok {
				c = NewCell(d.Type, cltypes.Local)
				g.local[d] = c
			}
			g.mu.Unlock()
			s.fr.slots[a] = c
			return next
		}

	case code.OpNewAgg:
		typ := in.Aux.(cltypes.Type)
		return func(t *thread, s *vmTState) *vmEntry {
			s.regs[dst] = Value{T: typ, Agg: t.newPrivCell(typ)}
			return next
		}

	case code.OpInitField:
		return func(t *thread, s *vmTState) *vmEntry {
			if err := storeCell(s.regs[a].Agg.Kids[dst], &s.regs[b], s.unshared); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpInitUnion:
		return func(t *thread, s *vmTState) *vmEntry {
			c := s.regs[a].Agg
			tt := c.Typ.(*cltypes.StructT)
			fv := s.regs[b]
			if fs, ok := tt.Fields[0].Type.(*cltypes.Scalar); ok {
				if vs, vok := fv.T.(*cltypes.Scalar); vok {
					fv = convertScalar(&Value{T: vs, Scalar: fv.Scalar}, fs)
				}
			}
			if err := encodeValue(c.Bytes, &fv, tt.Fields[0].Type); err != nil {
				return fail(s, err)
			}
			if t.m.opts.Defects.Has(bugs.WCUnionInit) && unionHasSmallLeadStruct(tt) {
				for i := 2; i < len(c.Bytes) && i < tt.Fields[0].Type.Size(); i++ {
					c.Bytes[i] = 0xff
				}
			}
			return next
		}

	case code.OpInitStructDefect:
		return func(t *thread, s *vmTState) *vmEntry {
			if t.m.opts.Defects.Has(bugs.WCStructCharFirst) {
				c := s.regs[a].Agg
				for _, fi := range charFirstLargerFields(c.Typ.(*cltypes.StructT)) {
					c.Kids[fi].Val = 0
				}
			}
			return next
		}

	case code.OpBinImm, code.OpBinImmBr:
		ii := in.Aux.(*code.ImmInfo)
		branching := in.Op == code.OpBinImmBr
		var br func(s *vmTState) *vmEntry
		if branching {
			br = branch(in.B)
		}
		return func(t *thread, s *vmTState) *vmEntry {
			rv := Value{T: ii.T, Scalar: ii.V}
			if err := t.vmBinaryOp(ii.Bin, &s.regs[a], &rv, &s.regs[dst]); err != nil {
				return fail(s, err)
			}
			if branching && !s.regs[dst].isTrue() {
				return br(s)
			}
			return next
		}

	case code.OpBinSlotImm, code.OpBinSlotImmBr:
		ii := in.Aux.(*code.ImmInfo)
		branching := in.Op == code.OpBinSlotImmBr
		var br func(s *vmTState) *vmEntry
		if branching {
			br = branch(in.B)
		}
		return func(t *thread, s *vmTState) *vmEntry {
			var lv Value
			if err := t.vmSlotVal(s.fr.slots[a], &lv); err != nil {
				return fail(s, err)
			}
			rv := Value{T: ii.T, Scalar: ii.V}
			if err := t.vmBinaryOp(ii.Bin, &lv, &rv, &s.regs[dst]); err != nil {
				return fail(s, err)
			}
			if branching && !s.regs[dst].isTrue() {
				return br(s)
			}
			return next
		}

	case code.OpBinSlots:
		bi := in.Aux.(*code.BinInfo)
		return func(t *thread, s *vmTState) *vmEntry {
			var lv, rv Value
			if err := t.vmSlotVal(s.fr.slots[a], &lv); err != nil {
				return fail(s, err)
			}
			if err := t.vmSlotVal(s.fr.slots[b], &rv); err != nil {
				return fail(s, err)
			}
			if err := t.vmBinaryOp(bi, &lv, &rv, &s.regs[dst]); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpBinSlotR:
		bi := in.Aux.(*code.BinInfo)
		return func(t *thread, s *vmTState) *vmEntry {
			var rv Value
			if err := t.vmSlotVal(s.fr.slots[b], &rv); err != nil {
				return fail(s, err)
			}
			if err := t.vmBinaryOp(bi, &s.regs[a], &rv, &s.regs[dst]); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpBinBr:
		bb := in.Aux.(*code.BinBrInfo)
		br := branch(bb.Target)
		return func(t *thread, s *vmTState) *vmEntry {
			if err := t.vmBinaryOp(bb.Bin, &s.regs[a], &s.regs[b], &s.regs[dst]); err != nil {
				return fail(s, err)
			}
			if !s.regs[dst].isTrue() {
				return br(s)
			}
			return next
		}

	case code.OpLoadIdx:
		return func(t *thread, s *vmTState) *vmEntry {
			iv := &s.regs[b]
			is, ok := iv.T.(*cltypes.Scalar)
			if !ok {
				return fail(s, fmt.Errorf("exec: non-scalar index"))
			}
			idx := int(cltypes.AsInt64(iv.Scalar, is))
			lv, err := t.ptrLV(s.regs[a].Ptr.At(idx), "out-of-bounds buffer access")
			if err != nil {
				return fail(s, err)
			}
			if s.checkRaces {
				if err := t.noteLVAccess(lv, false); err != nil {
					return fail(s, err)
				}
			}
			if err := lv.load(&s.regs[dst]); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpIncDecSlot:
		op := ast.UnOp(in.B)
		return func(t *thread, s *vmTState) *vmEntry {
			if err := t.vmIncDec(directLV(s.fr.slots[a], s.unshared), op, &s.regs[dst]); err != nil {
				return fail(s, err)
			}
			return next
		}

	case code.OpAggLit, code.OpAggDecl:
		al := in.Aux.(*code.AggLit)
		toReg := in.Op == code.OpAggLit
		return func(t *thread, s *vmTState) *vmEntry {
			c := t.newPrivCell(al.Typ)
			if toReg {
				s.regs[dst] = Value{T: al.Typ, Agg: c}
			} else {
				s.fr.slots[a] = c
			}
			for i := range al.Ops {
				op := &al.Ops[i]
				cell := c
				for _, k := range op.Path {
					cell = cell.Kids[k]
				}
				if op.Defect {
					if t.m.opts.Defects.Has(bugs.WCStructCharFirst) {
						for _, fi := range charFirstLargerFields(cell.Typ.(*cltypes.StructT)) {
							cell.Kids[fi].Val = 0
						}
					}
					continue
				}
				v := Value{T: op.T, Scalar: op.V}
				if op.Conv != nil {
					v = convertScalar(&v, op.Conv)
				}
				if err := storeCell(cell, &v, s.unshared); err != nil {
					return fail(s, err)
				}
			}
			return next
		}

	case code.OpLoadCast:
		toT := auxType(in.Aux)
		return func(t *thread, s *vmTState) *vmEntry {
			lv := s.lvs[a]
			if s.checkRaces {
				if err := t.noteLVAccess(lv, false); err != nil {
					return fail(s, err)
				}
			}
			if err := lv.load(&s.regs[dst]); err != nil {
				return fail(s, err)
			}
			if err := vmCast(&s.regs[dst], toT); err != nil {
				return fail(s, err)
			}
			return next
		}
	}

	op := in.Op
	return func(t *thread, s *vmTState) *vmEntry {
		s.err = fmt.Errorf("exec: unknown opcode %d", op)
		return nil
	}
}
