package exec_test

import (
	"fmt"
	"testing"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/code"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// TestParseDispatch pins the flag/env surface of the dispatch selector.
func TestParseDispatch(t *testing.T) {
	cases := []struct {
		in   string
		want exec.Dispatch
	}{
		{"", exec.DispatchAuto},
		{"auto", exec.DispatchAuto},
		{"switch", exec.DispatchSwitch},
		{"threaded", exec.DispatchThreaded},
	}
	for _, tc := range cases {
		got, err := exec.ParseDispatch(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseDispatch(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := exec.ParseDispatch("goto"); err == nil {
		t.Fatal("ParseDispatch accepted an unknown mode")
	}
	for _, d := range []exec.Dispatch{exec.DispatchAuto, exec.DispatchSwitch, exec.DispatchThreaded} {
		rt, err := exec.ParseDispatch(d.String())
		if err != nil || rt != d {
			t.Fatalf("String/Parse round-trip broke on %v: got %v, %v", d, rt, err)
		}
	}
}

// compileLowered front-ends src and lowers it once, so a comparison's
// launches share one *code.Program exactly as device.Kernel shares it
// across launches.
func compileLowered(t *testing.T, src string) (*ast.Program, *sema.Info, *code.Program) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, info, err := sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	lowered, err := code.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog, info, lowered
}

// dispatchRun is one launch observed every way the executor can be
// observed: buffer contents, run error, fuel high-water mark and the
// coverage edge set.
type dispatchRun struct {
	out   []uint64
	err   error
	steps int64
	edges []uint32
}

// launchDispatch executes an already-lowered program under one dispatch
// mode with every observation hook armed.
func launchDispatch(t *testing.T, prog *ast.Program, info *sema.Info, cp *code.Program,
	tp *exec.ThreadedProgram, nd exec.NDRange, fuel int64, fm exec.FuelModel, d exec.Dispatch) dispatchRun {
	t.Helper()
	out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
	args := exec.Args{"out": {Buf: out}}
	var st exec.Stats
	cov := &exec.CoverMap{}
	runErr := exec.Run(prog, nd, args, exec.Options{
		NoBarrier:  !info.HasBarrier,
		NoAtomics:  !info.HasAtomic,
		HasFwdDecl: info.HasFwdDecl,
		Workers:    1,
		Fuel:       fuel,
		Code:       cp,
		FuelModel:  fm,
		Stats:      &st,
		Cover:      cov,
		Dispatch:   d,
		Threaded:   tp,
	})
	return dispatchRun{out: out.Scalars(), err: runErr, steps: st.MaxThreadSteps, edges: cov.Edges()}
}

func requireSameRun(t *testing.T, label string, got, want dispatchRun) {
	t.Helper()
	if (got.err == nil) != (want.err == nil) {
		t.Fatalf("%s: threaded err %v, switch err %v", label, got.err, want.err)
	}
	if got.err != nil && got.err.Error() != want.err.Error() {
		t.Fatalf("%s: threaded err %q, switch err %q", label, got.err, want.err)
	}
	if got.steps != want.steps {
		t.Fatalf("%s: threaded charged %d steps, switch charged %d", label, got.steps, want.steps)
	}
	if len(got.edges) != len(want.edges) {
		t.Fatalf("%s: threaded hit %d edges, switch hit %d", label, len(got.edges), len(want.edges))
	}
	for i := range want.edges {
		if got.edges[i] != want.edges[i] {
			t.Fatalf("%s: edge[%d] = %#x, want %#x", label, i, got.edges[i], want.edges[i])
		}
	}
	if want.err == nil {
		for i := range want.out {
			if got.out[i] != want.out[i] {
				t.Fatalf("%s: out[%d] = %d, want %d", label, i, got.out[i], want.out[i])
			}
		}
	}
}

// TestThreadedMatchesSwitch pins the dispatch contract at the exec
// level: on every kernel shape, NDRange, fuel budget and fuel model, the
// direct-threaded loop produces byte-identical buffer contents,
// identical errors (including the fuel-exhaustion frontier — the two
// loops charge the same instruction stream), identical Stats fuel
// high-water marks and identical coverage edge sets to the switch loop.
func TestThreadedMatchesSwitch(t *testing.T) {
	exec.SetDebugImmutable(true)
	t.Cleanup(func() { exec.SetDebugImmutable(false) })
	nds := []exec.NDRange{
		{Global: [3]int{16, 1, 1}, Local: [3]int{4, 1, 1}},
		{Global: [3]int{8, 2, 1}, Local: [3]int{2, 2, 1}},
	}
	_, thBefore := exec.DispatchCounters()
	threadedRuns := 0
	all := append(append([]struct{ name, src string }{}, parallelKernels...), engineKernels...)
	for _, k := range all {
		prog, info, lowered := compileLowered(t, k.src)
		fused := code.Fuse(lowered)
		models := []struct {
			fm exec.FuelModel
			cp *code.Program
			tp *exec.ThreadedProgram
		}{
			{exec.FuelV1, lowered, exec.Thread(lowered)},
			{exec.FuelV2, fused, exec.Thread(fused)},
		}
		for _, m := range models {
			for _, nd := range nds {
				for _, fuel := range []int64{0, 700} {
					want := launchDispatch(t, prog, info, m.cp, nil, nd, fuel, m.fm, exec.DispatchSwitch)
					got := launchDispatch(t, prog, info, m.cp, m.tp, nd, fuel, m.fm, exec.DispatchThreaded)
					threadedRuns++
					label := fmt.Sprintf("%s fuel=%v nd=%v budget=%d", k.name, m.fm, nd.Global, fuel)
					requireSameRun(t, label, got, want)
				}
			}
		}
	}
	// The threaded runs must actually have taken the threaded loop: a
	// silent fallback to the switch loop would pass every comparison
	// above while testing nothing.
	if _, thAfter := exec.DispatchCounters(); thAfter-thBefore < int64(threadedRuns) {
		t.Fatalf("only %d of %d DispatchThreaded launches ran the threaded loop", thAfter-thBefore, threadedRuns)
	}
}

// TestThreadedFallsBackToSwitch pins the safety valve: a ThreadedProgram
// that does not wrap the launch's exact *code.Program, or a launch that
// collects opcode histograms (switch-loop-only instrumentation), must
// run the switch loop — and still produce the right answer — rather than
// dispatch handlers against the wrong instruction stream.
func TestThreadedFallsBackToSwitch(t *testing.T) {
	prog, info, lowered := compileLowered(t, engineKernels[0].src)
	nd := exec.NDRange{Global: [3]int{8, 1, 1}, Local: [3]int{4, 1, 1}}
	want := launchDispatch(t, prog, info, lowered, nil, nd, 0, exec.FuelV1, exec.DispatchSwitch)

	run := func(opts exec.Options) []uint64 {
		out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
		opts.NoBarrier = !info.HasBarrier
		opts.NoAtomics = !info.HasAtomic
		opts.HasFwdDecl = info.HasFwdDecl
		opts.Workers = 1
		opts.Code = lowered
		if err := exec.Run(prog, nd, exec.Args{"out": {Buf: out}}, opts); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.Scalars()
	}
	requireOut := func(label string, got []uint64) {
		t.Helper()
		for i := range want.out {
			if got[i] != want.out[i] {
				t.Fatalf("%s: out[%d] = %d, want %d", label, i, got[i], want.out[i])
			}
		}
	}

	// A threaded form of a *different* program must be refused.
	other := code.Fuse(lowered)
	_, thBefore := exec.DispatchCounters()
	got := run(exec.Options{Dispatch: exec.DispatchThreaded, Threaded: exec.Thread(other)})
	if _, th := exec.DispatchCounters(); th != thBefore {
		t.Fatal("mismatched ThreadedProgram still ran the threaded loop")
	}
	requireOut("mismatched-threaded fallback", got)

	// An OpStats collection request pins the switch loop even with a
	// matching ThreadedProgram.
	ops := &exec.OpStats{}
	got = run(exec.Options{Dispatch: exec.DispatchThreaded, Threaded: exec.Thread(lowered), OpStats: ops})
	if _, th := exec.DispatchCounters(); th != thBefore {
		t.Fatal("OpStats launch still ran the threaded loop")
	}
	requireOut("opstats fallback", got)
	if len(ops.Ops()) == 0 {
		t.Fatal("fallback switch run collected no opcode histogram")
	}

	// And a matching pair does run the threaded loop.
	got = run(exec.Options{Dispatch: exec.DispatchThreaded, Threaded: exec.Thread(lowered)})
	if _, th := exec.DispatchCounters(); th != thBefore+1 {
		t.Fatal("matching ThreadedProgram did not run the threaded loop")
	}
	requireOut("threaded", got)
}

// TestPooledReuseAcrossDispatchModes is the reuse-poisoning gauntlet for
// the tentpole pair: with pool poisoning scribbling sentinel garbage
// over every recycled structure between launches and the immutable
// assertion armed, the two dispatch loops alternate on one private pool
// — threaded handlers re-windowing frames the switch loop (and the
// poisoner) just used — and every launch must still match the fresh-pool
// reference byte for byte.
func TestPooledReuseAcrossDispatchModes(t *testing.T) {
	exec.SetDebugImmutable(true)
	exec.SetDebugPoisonPool(true)
	t.Cleanup(func() {
		exec.SetDebugImmutable(false)
		exec.SetDebugPoisonPool(false)
	})
	nd := exec.NDRange{Global: [3]int{16, 1, 1}, Local: [3]int{4, 1, 1}}
	pool := exec.NewLaunchPool()
	all := append(append([]struct{ name, src string }{}, parallelKernels...), engineKernels...)
	for _, k := range all {
		prog, info, lowered := compileLowered(t, k.src)
		tp := exec.Thread(lowered)
		run := func(p *exec.LaunchPool, d exec.Dispatch) ([]uint64, error) {
			out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
			runErr := exec.Run(prog, nd, exec.Args{"out": {Buf: out}}, exec.Options{
				NoBarrier:  !info.HasBarrier,
				NoAtomics:  !info.HasAtomic,
				HasFwdDecl: info.HasFwdDecl,
				Workers:    1,
				Code:       lowered,
				Dispatch:   d,
				Threaded:   tp,
				Pool:       p,
			})
			return out.Scalars(), runErr
		}
		// Fresh pool per reference launch: no state can carry over.
		// Kernels that error (on every engine) stay in the gauntlet:
		// the error path must also be reproducible from a poisoned pool.
		want, wantErr := run(exec.NewLaunchPool(), exec.DispatchSwitch)
		for round := 0; round < 3; round++ {
			for _, d := range []exec.Dispatch{exec.DispatchSwitch, exec.DispatchThreaded} {
				got, gotErr := run(pool, d)
				if (gotErr == nil) != (wantErr == nil) || (gotErr != nil && gotErr.Error() != wantErr.Error()) {
					t.Fatalf("%s round %d %s: err %v, want %v (poisoned pool state leaked)",
						k.name, round, d, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s round %d %s: out[%d] = %d, want %d (poisoned pool state leaked)",
							k.name, round, d, i, got[i], want[i])
					}
				}
			}
		}
	}
	if hits, _ := pool.Counters(); hits == 0 {
		t.Fatal("the shared pool was never hit: the gauntlet recycled nothing")
	}
}

// FuzzThreadedMatchesSwitch is the dispatch-equivalence fuzz target:
// generate a random kernel, compile it on a random configuration
// (arming that configuration's defect models and optimization
// pipeline), and run the VM under both dispatch modes. Unlike the
// fuel-model target there is no sanctioned divergence: the threaded
// loop charges the exact instruction stream the switch loop charges, so
// outcome (including Timeout), diagnostic and buffer contents must
// agree byte for byte under both fuel models. CI runs it as a short
// -fuzztime smoke step beside FuzzLowerMatchesTree.
func FuzzThreadedMatchesSwitch(f *testing.F) {
	f.Add(uint8(0), uint32(42), uint8(0), false, uint8(0))
	f.Add(uint8(1), uint32(7), uint8(3), true, uint8(1))
	f.Add(uint8(2), uint32(11), uint8(12), true, uint8(0))
	f.Add(uint8(3), uint32(5), uint8(17), false, uint8(1))
	f.Add(uint8(3), uint32(1000), uint8(7), true, uint8(0))
	modes := []generator.Mode{
		generator.ModeBasic, generator.ModeVector, generator.ModeBarrier, generator.ModeAll,
	}
	cfgs := device.All()
	f.Fuzz(func(t *testing.T, mode uint8, seed uint32, cfgID uint8, optimize bool, fmSel uint8) {
		k := generator.Generate(generator.Options{
			Mode:            modes[int(mode)%len(modes)],
			Seed:            int64(seed),
			MaxTotalThreads: 32,
		})
		cfg := cfgs[int(cfgID)%len(cfgs)]
		cr := cfg.Compile(k.Src, optimize)
		if cr.Outcome != device.OK {
			return
		}
		if cr.Kernel.Code == nil {
			t.Fatalf("kernel did not lower (mode %d seed %d)", mode, seed)
		}
		fm := exec.FuelV1
		if fmSel%2 == 1 {
			fm = exec.FuelV2
		}
		run := func(d exec.Dispatch) device.RunResult {
			args, result := k.Buffers()
			return cr.Kernel.Run(k.ND, args, result, device.RunOptions{
				Engine: exec.EngineVM, FuelModel: fm, Dispatch: d,
			})
		}
		want := run(exec.DispatchSwitch)
		got := run(exec.DispatchThreaded)
		if got.Outcome != want.Outcome {
			t.Fatalf("outcome: threaded %v, switch %v (msg %q vs %q)\n%s", got.Outcome, want.Outcome, got.Msg, want.Msg, k.Src)
		}
		if got.Msg != want.Msg {
			t.Fatalf("msg: threaded %q, switch %q\n%s", got.Msg, want.Msg, k.Src)
		}
		if len(got.Output) != len(want.Output) {
			t.Fatalf("output length: threaded %d, switch %d\n%s", len(got.Output), len(want.Output), k.Src)
		}
		for i := range want.Output {
			if got.Output[i] != want.Output[i] {
				t.Fatalf("out[%d]: threaded %#x, switch %#x\n%s", i, got.Output[i], want.Output[i], k.Src)
			}
		}
	})
}
