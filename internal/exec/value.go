package exec

import (
	"fmt"

	"clfuzz/internal/cltypes"
)

// Value is the result of evaluating an expression.
type Value struct {
	T      cltypes.Type
	Scalar uint64   // scalar bit pattern
	Vec    []uint64 // vector components
	Ptr    Ptr      // pointer value
	// Agg is an aggregate rvalue (struct/union/array). It is usually a
	// borrowed read-only view of the loaded storage, not a detached copy:
	// every consumer (storeCell, union encoding, parameter binding) copies
	// out of it before any further evaluation can write to the underlying
	// cells, so the load-then-consume pattern — the checksum loop of every
	// generated kernel — pays no deep copy. Loads from cells a concurrent
	// thread could be writing (shared cells of a multi-goroutine launch)
	// still detach a private copy under the atomic discipline.
	Agg *Cell
}

// scalarValue wraps a scalar bit pattern.
func scalarValue(v uint64, t *cltypes.Scalar) Value {
	return Value{T: t, Scalar: cltypes.Trunc(v, t)}
}

// boolValue returns an int 0/1.
func boolValue(b bool) Value {
	if b {
		return Value{T: cltypes.TInt, Scalar: 1}
	}
	return Value{T: cltypes.TInt, Scalar: 0}
}

// isTrue reports whether the value is nonzero (scalar or pointer).
func (v *Value) isTrue() bool {
	if _, ok := v.T.(*cltypes.Pointer); ok {
		return !v.Ptr.IsNull()
	}
	if s, ok := v.T.(*cltypes.Scalar); ok {
		return cltypes.Trunc(v.Scalar, s) != 0
	}
	return false
}

// convertScalar converts v to scalar type to.
func convertScalar(v *Value, to *cltypes.Scalar) Value {
	from, ok := v.T.(*cltypes.Scalar)
	if !ok {
		// Pointer to bool contexts are handled by isTrue; anything else
		// reaching here is an interpreter invariant violation.
		panic(fmt.Sprintf("exec: convertScalar on %s", v.T))
	}
	return Value{T: to, Scalar: cltypes.Convert(v.Scalar, from, to)}
}

// loadCell reads the full value stored in a cell into *out. unshared
// propagates the machine's single-goroutine execution flag down to the
// scalar accessors. Results are written with full struct assignments, so
// out may be reused as scratch across calls.
func loadCell(c *Cell, unshared bool, out *Value) error {
	switch t := c.Typ.(type) {
	case *cltypes.Scalar:
		*out = Value{T: t, Scalar: c.loadScalar(unshared)}
		return nil
	case *cltypes.Vector:
		vec := make([]uint64, t.Len)
		for i := range vec {
			vec[i] = c.loadVecElem(i, unshared)
		}
		*out = Value{T: t, Vec: vec}
		return nil
	case *cltypes.Pointer:
		*out = Value{T: t, Ptr: c.Ptr}
		return nil
	case *cltypes.StructT, *cltypes.Array:
		// Aggregate load: borrow a read-only view. Safe whenever no other
		// goroutine can write the cells before the value is consumed —
		// always true for private cells and for any cell of a
		// single-goroutine launch. The evaluator consumes aggregate values
		// (store, encode, bind) before evaluating anything else, so
		// same-thread mutation cannot intervene either.
		if unshared || !c.Shared {
			*out = Value{T: c.Typ, Agg: c}
			return nil
		}
		// Shared cell with live concurrency: detach a private deep copy
		// under the atomic discipline, as before.
		cp := newCell(c.Typ, cltypes.Private, false)
		if err := copyCell(cp, c, unshared); err != nil {
			return err
		}
		*out = Value{T: c.Typ, Agg: cp}
		return nil
	}
	return fmt.Errorf("exec: cannot load cell of type %s", c.Typ)
}

// storeCell writes a value into a cell, converting scalars as needed.
func storeCell(c *Cell, v *Value, unshared bool) error {
	switch t := c.Typ.(type) {
	case *cltypes.Scalar:
		if vs, ok := v.T.(*cltypes.Scalar); ok {
			c.storeScalar(cltypes.Convert(v.Scalar, vs, t), unshared)
			return nil
		}
		return fmt.Errorf("exec: cannot store %s into %s", v.T, t)
	case *cltypes.Vector:
		if !v.T.Equal(t) {
			return fmt.Errorf("exec: cannot store %s into %s", v.T, t)
		}
		for i := 0; i < t.Len; i++ {
			c.storeVecElem(i, v.Vec[i], unshared)
		}
		return nil
	case *cltypes.Pointer:
		if _, ok := v.T.(*cltypes.Pointer); ok {
			c.Ptr = v.Ptr
			return nil
		}
		if vs, ok := v.T.(*cltypes.Scalar); ok && cltypes.Trunc(v.Scalar, vs) == 0 {
			c.Ptr = Ptr{} // null pointer constant
			return nil
		}
		return fmt.Errorf("exec: cannot store %s into %s", v.T, t)
	case *cltypes.StructT, *cltypes.Array:
		if v.Agg == nil || !v.T.Equal(c.Typ) {
			return fmt.Errorf("exec: cannot store %s into %s", v.T, c.Typ)
		}
		return copyCell(c, v.Agg, unshared)
	}
	return fmt.Errorf("exec: cannot store into cell of type %s", c.Typ)
}

// copyCell deep-copies src into dst (same type).
func copyCell(dst, src *Cell, unshared bool) error {
	switch t := dst.Typ.(type) {
	case *cltypes.Scalar:
		dst.storeScalar(src.loadScalar(unshared), unshared)
	case *cltypes.Vector:
		for i := 0; i < t.Len; i++ {
			dst.storeVecElem(i, src.loadVecElem(i, unshared), unshared)
		}
	case *cltypes.Pointer:
		dst.Ptr = src.Ptr
	case *cltypes.StructT:
		if t.IsUnion {
			copy(dst.Bytes, src.Bytes)
			return nil
		}
		for i := range dst.Kids {
			if err := copyCell(dst.Kids[i], src.Kids[i], unshared); err != nil {
				return err
			}
		}
	case *cltypes.Array:
		for i := range dst.Kids {
			if err := copyCell(dst.Kids[i], src.Kids[i], unshared); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("exec: cannot copy cell of type %s", dst.Typ)
	}
	return nil
}

// lval is an assignable location: a direct cell, an element of a flat
// scalar buffer, a union field view, or a single vector component. It
// carries the machine's unshared flag so that loads and stores through it
// use the right memory discipline.
type lval struct {
	c        *Cell        // direct cell, or the vector cell / union cell
	flat     *Buffer      // flat scalar buffer (c is nil); wIdx is the slot
	wIdx     int          // element index within flat.Words
	uField   cltypes.Type // union field view type (c is the union cell)
	vecIdx   int          // >=0: component of the vector in c
	unshared bool         // single-goroutine launch: plain accesses suffice
}

func directLV(c *Cell, unshared bool) lval { return lval{c: c, vecIdx: -1, unshared: unshared} }

// wordLV views element idx of a flat scalar buffer's backing store.
func wordLV(b *Buffer, idx int, unshared bool) lval {
	return lval{flat: b, wIdx: idx, vecIdx: -1, unshared: unshared}
}

// wordAddr returns the address of the flat slot, the race checker's
// location key; nil for non-word lvalues.
func (l lval) wordAddr() *uint64 {
	if l.flat == nil {
		return nil
	}
	return &l.flat.Words[l.wIdx]
}

func (l lval) load(out *Value) error {
	if l.flat != nil {
		*out = Value{T: l.flat.wordT, Scalar: loadWord(&l.flat.Words[l.wIdx], l.unshared)}
		return nil
	}
	if l.uField != nil {
		cp := newCell(l.uField, cltypes.Private, false)
		if err := decodeInto(cp, l.c.Bytes); err != nil {
			return err
		}
		return loadCell(cp, l.unshared, out)
	}
	if l.vecIdx >= 0 {
		vt := l.c.Typ.(*cltypes.Vector)
		*out = Value{T: vt.Elem, Scalar: l.c.loadVecElem(l.vecIdx, l.unshared)}
		return nil
	}
	return loadCell(l.c, l.unshared, out)
}

func (l lval) store(v *Value) error {
	if l.flat != nil {
		if vs, ok := v.T.(*cltypes.Scalar); ok {
			storeWord(&l.flat.Words[l.wIdx], cltypes.Convert(v.Scalar, vs, l.flat.wordT), l.unshared)
			return nil
		}
		return fmt.Errorf("exec: cannot store %s into %s", v.T, l.flat.wordT)
	}
	if l.uField != nil {
		// Write-through the union view: encode the field value at offset 0
		// (all union members share offset 0).
		if _, ok := l.uField.(*cltypes.Scalar); ok {
			if vs, sok := v.T.(*cltypes.Scalar); sok {
				cv := convertScalar(&Value{T: vs, Scalar: v.Scalar}, l.uField.(*cltypes.Scalar))
				v = &cv
			}
		}
		return encodeValue(l.c.Bytes, v, l.uField)
	}
	if l.vecIdx >= 0 {
		vt := l.c.Typ.(*cltypes.Vector)
		if vs, ok := v.T.(*cltypes.Scalar); ok {
			l.c.storeVecElem(l.vecIdx, cltypes.Convert(v.Scalar, vs, vt.Elem), l.unshared)
			return nil
		}
		return fmt.Errorf("exec: cannot store %s into vector component", v.T)
	}
	return storeCell(l.c, v, l.unshared)
}

// typ returns the type of the location.
func (l lval) typ() cltypes.Type {
	if l.flat != nil {
		return l.flat.wordT
	}
	if l.uField != nil {
		return l.uField
	}
	if l.vecIdx >= 0 {
		return l.c.Typ.(*cltypes.Vector).Elem
	}
	return l.c.Typ
}
