package exec_test

import (
	"testing"
	"time"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/exec"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// TestLockstepErrorDoesNotHang pins the lockstep scheduler's error path:
// when one thread of a goroutine-per-thread group dies (here: fuel
// exhaustion in thread 0 while the others finish normally), the launch
// must report the error and return — a thread left ready-but-gone in the
// scheduler would soak up a later grant and hang the group forever.
// Regression test for a deadlock found in review: the erroring goroutine
// returned without retiring from the lockstep, and the next finish's
// grant blocked on its full turn channel while holding the scheduler
// lock.
func TestLockstepErrorDoesNotHang(t *testing.T) {
	src := `
kernel void entry(global ulong *out) {
    ulong acc = 0;
    if (get_linear_local_id() == 0UL) {
        for (int i = 0; i < 100000; i++) { acc = acc + 1UL; }
    }
    out[get_linear_global_id()] = acc;
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, info, err := sema.Check(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	nd := exec.NDRange{Global: [3]int{4, 1, 1}, Local: [3]int{4, 1, 1}}
	// CheckRaces forces the goroutine-per-thread path even without
	// barriers; the tiny fuel budget kills thread 0 mid-loop while
	// threads 1-3 finish within budget.
	run := func() error {
		out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
		return exec.Run(prog, nd, exec.Args{"out": {Buf: out}}, exec.Options{
			CheckRaces: true,
			NoAtomics:  !info.HasAtomic,
			Fuel:       2000,
		})
	}
	for i := 0; i < 5; i++ {
		done := make(chan error, 1)
		go func() { done <- run() }()
		select {
		case err := <-done:
			if _, ok := err.(*exec.TimeoutError); !ok {
				t.Fatalf("run %d: got %v, want TimeoutError", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("run %d: launch hung (lockstep error-path deadlock)", i)
		}
	}
}
