package exec

import (
	"fmt"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
)

// thread is the execution state of one work-item.
type thread struct {
	m     *Machine
	group *groupCtx
	gid   [3]int
	lid   [3]int

	fuel        int64
	env         *env
	depth       int
	barrierSeen bool
	iterStack   []uint64
	retVal      Value
}

type env struct {
	parent *env
	vars   map[string]*Cell
	// params of the enclosing function frame, consulted by the barrier-
	// related defect models.
	params map[string]bool
}

func newEnv(parent *env) *env { return &env{parent: parent, vars: map[string]*Cell{}} }

func (t *thread) lookup(name string) *Cell {
	for e := t.env; e != nil; e = e.parent {
		if c, ok := e.vars[name]; ok {
			return c
		}
	}
	return t.m.globals[name]
}

// isParam reports whether name is a parameter of the current function
// frame.
func (t *thread) isParam(name string) bool {
	for e := t.env; e != nil; e = e.parent {
		if e.params != nil {
			return e.params[name]
		}
	}
	return false
}

var errAborted = &CrashError{Msg: "aborted"}

// step charges one fuel unit and polls for machine abort.
func (t *thread) step() error {
	t.fuel--
	if t.fuel <= 0 {
		return &TimeoutError{Where: "kernel execution"}
	}
	if t.fuel&255 == 0 && t.m.dead.Load() {
		if err := t.m.err; err != nil {
			return err
		}
		return errAborted
	}
	return nil
}

// control-flow result of statement execution.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

func (t *thread) runKernel() error {
	t.env = newEnv(nil)
	t.env.params = map[string]bool{}
	for _, p := range t.m.kernel.Params {
		arg := t.m.args[p.Name]
		c := NewCell(p.Type, cltypes.Private)
		if pt, ok := p.Type.(*cltypes.Pointer); ok {
			if arg.Buf == nil {
				return fmt.Errorf("exec: kernel argument %q requires a buffer", p.Name)
			}
			_ = pt
			c.Ptr = Ptr{Slice: arg.Buf.Cells}
		} else if s, ok := p.Type.(*cltypes.Scalar); ok {
			c.Val = cltypes.Trunc(arg.Scalar, s)
		} else {
			return fmt.Errorf("exec: unsupported kernel parameter type %s", p.Type)
		}
		t.env.vars[p.Name] = c
		t.env.params[p.Name] = true
	}
	_, err := t.execBlock(t.m.kernel.Body)
	return err
}

func (t *thread) execBlock(b *ast.Block) (ctrl, error) {
	// Lazy scope push: most blocks declare nothing, so the child
	// environment (and its map allocation) is created only when the first
	// declaration executes. Name resolution before that point is
	// identical either way.
	saved := t.env
	pushed := false
	defer func() { t.env = saved }()
	for _, s := range b.Stmts {
		if !pushed {
			if _, isDecl := s.(*ast.DeclStmt); isDecl {
				t.env = newEnv(saved)
				pushed = true
			}
		}
		c, err := t.execStmt(s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (t *thread) execStmt(s ast.Stmt) (ctrl, error) {
	if err := t.step(); err != nil {
		return ctrlNone, err
	}
	switch st := s.(type) {
	case *ast.DeclStmt:
		return ctrlNone, t.execDecl(st.Decl)
	case *ast.ExprStmt:
		_, err := t.evalExpr(st.X)
		return ctrlNone, err
	case *ast.Block:
		return t.execBlock(st)
	case *ast.If:
		cond, err := t.evalExpr(st.Cond)
		if err != nil {
			return ctrlNone, err
		}
		if cond.isTrue() {
			return t.execBlock(st.Then)
		}
		if st.Else != nil {
			return t.execStmt(st.Else)
		}
		return ctrlNone, nil
	case *ast.For:
		return t.execFor(st)
	case *ast.While:
		return t.execLoop(nil, st.Cond, nil, st.Body, false)
	case *ast.DoWhile:
		return t.execLoop(nil, st.Cond, nil, st.Body, true)
	case *ast.Break:
		return ctrlBreak, nil
	case *ast.Continue:
		return ctrlContinue, nil
	case *ast.Return:
		if st.X != nil {
			v, err := t.evalExpr(st.X)
			if err != nil {
				return ctrlNone, err
			}
			t.retVal = v
		} else {
			t.retVal = Value{T: cltypes.TVoid}
		}
		return ctrlReturn, nil
	case *ast.Empty:
		return ctrlNone, nil
	}
	return ctrlNone, fmt.Errorf("exec: unknown statement %T", s)
}

func (t *thread) execFor(st *ast.For) (ctrl, error) {
	saved := t.env
	t.env = newEnv(saved)
	defer func() { t.env = saved }()
	if st.Init != nil {
		if _, err := t.execStmt(st.Init); err != nil {
			return ctrlNone, err
		}
	}
	c, err := t.execLoopBody(st, st.Cond, st.Post, st.Body, false)
	if err != nil {
		return c, err
	}
	return c, nil
}

func (t *thread) execLoop(init ast.Stmt, cond ast.Expr, post ast.Expr, body *ast.Block, doFirst bool) (ctrl, error) {
	return t.execLoopBody(nil, cond, post, body, doFirst)
}

// execLoopBody runs the shared loop protocol. forNode is non-nil for for
// loops, enabling the Figure 2(d) dead-loop-with-barrier defect model.
func (t *thread) execLoopBody(forNode *ast.For, cond ast.Expr, post ast.Expr, body *ast.Block, doFirst bool) (ctrl, error) {
	t.iterStack = append(t.iterStack, 0)
	defer func() { t.iterStack = t.iterStack[:len(t.iterStack)-1] }()
	iterations := uint64(0)
	for {
		if !doFirst || iterations > 0 {
			if cond != nil {
				cv, err := t.evalExpr(cond)
				if err != nil {
					return ctrlNone, err
				}
				if !cv.isTrue() {
					break
				}
			}
		}
		if err := t.step(); err != nil {
			return ctrlNone, err
		}
		iterations++
		t.iterStack[len(t.iterStack)-1] = iterations
		c, err := t.execBlock(body)
		if err != nil {
			return ctrlNone, err
		}
		if c == ctrlBreak {
			break
		}
		if c == ctrlReturn {
			return ctrlReturn, nil
		}
		if post != nil {
			if _, err := t.evalExpr(post); err != nil {
				return ctrlNone, err
			}
		}
		if doFirst && cond != nil && iterations > 0 {
			cv, err := t.evalExpr(cond)
			if err != nil {
				return ctrlNone, err
			}
			if !cv.isTrue() {
				break
			}
		}
	}
	// Figure 2(d): Intel configs 14-/15- miscompile a loop whose body is
	// unreachable but contains a barrier; non-leader threads observe the
	// loop's init assignment clobbered to 1.
	if forNode != nil && iterations == 0 && t.m.opts.Defects.Has(bugs.WCDeadLoopBarrier) &&
		t.lidLinear() != 0 && containsBarrier(forNode.Body) {
		if es, ok := forNode.Init.(*ast.ExprStmt); ok {
			if asn, ok := es.X.(*ast.AssignExpr); ok {
				lv, err := t.evalLV(asn.LHS)
				if err == nil {
					if s, ok := lv.typ().(*cltypes.Scalar); ok {
						_ = lv.store(scalarValue(1, s))
					}
				}
			}
		}
	}
	return ctrlNone, nil
}

// containsBarrier reports whether the statement tree issues a barrier.
func containsBarrier(s ast.Stmt) bool {
	found := false
	var walkS func(ast.Stmt)
	var walkE func(ast.Expr)
	walkE = func(e ast.Expr) {
		if e == nil || found {
			return
		}
		switch ex := e.(type) {
		case *ast.Call:
			if ex.Name == "barrier" {
				found = true
				return
			}
			for _, a := range ex.Args {
				walkE(a)
			}
		case *ast.Unary:
			walkE(ex.X)
		case *ast.Binary:
			walkE(ex.L)
			walkE(ex.R)
		case *ast.AssignExpr:
			walkE(ex.LHS)
			walkE(ex.RHS)
		case *ast.Cond:
			walkE(ex.C)
			walkE(ex.T)
			walkE(ex.F)
		case *ast.Index:
			walkE(ex.Base)
			walkE(ex.Idx)
		case *ast.Member:
			walkE(ex.Base)
		case *ast.Swizzle:
			walkE(ex.Base)
		case *ast.VecLit:
			for _, el := range ex.Elems {
				walkE(el)
			}
		case *ast.Cast:
			walkE(ex.X)
		case *ast.InitList:
			for _, el := range ex.Elems {
				walkE(el)
			}
		}
	}
	walkS = func(s ast.Stmt) {
		if s == nil || found {
			return
		}
		switch st := s.(type) {
		case *ast.DeclStmt:
			walkE(st.Decl.Init)
		case *ast.ExprStmt:
			walkE(st.X)
		case *ast.Block:
			for _, inner := range st.Stmts {
				walkS(inner)
			}
		case *ast.If:
			walkE(st.Cond)
			walkS(st.Then)
			walkS(st.Else)
		case *ast.For:
			walkS(st.Init)
			walkE(st.Cond)
			walkE(st.Post)
			walkS(st.Body)
		case *ast.While:
			walkE(st.Cond)
			walkS(st.Body)
		case *ast.DoWhile:
			walkS(st.Body)
			walkE(st.Cond)
		case *ast.Return:
			walkE(st.X)
		}
	}
	walkS(s)
	return found
}

func (t *thread) execDecl(d *ast.VarDecl) error {
	if d.Space == cltypes.Local {
		// Local-memory variables are allocated once per work-group and
		// shared by its threads. OpenCL forbids initializers on them.
		g := t.group
		g.mu.Lock()
		c, ok := g.local[d]
		if !ok {
			c = NewCell(d.Type, cltypes.Local)
			g.local[d] = c
		}
		g.mu.Unlock()
		t.env.vars[d.Name] = c
		return nil
	}
	c := NewCell(d.Type, cltypes.Private)
	if d.Init != nil {
		v, err := t.evalInit(d.Type, d.Init)
		if err != nil {
			return err
		}
		if err := storeCell(c, v); err != nil {
			return err
		}
	}
	t.env.vars[d.Name] = c
	return nil
}

// evalInit evaluates an initializer (possibly a braced aggregate list)
// against the declared type, applying the struct- and union-initializer
// defect models.
func (t *thread) evalInit(typ cltypes.Type, init ast.Expr) (Value, error) {
	il, ok := init.(*ast.InitList)
	if !ok {
		v, err := t.evalExpr(init)
		if err != nil {
			return Value{}, err
		}
		if s, ok := typ.(*cltypes.Scalar); ok {
			if _, vok := v.T.(*cltypes.Scalar); vok {
				return convertScalar(v, s), nil
			}
		}
		return v, nil
	}
	c := newCell(typ, cltypes.Private, false)
	switch tt := typ.(type) {
	case *cltypes.Scalar:
		if len(il.Elems) != 1 {
			return Value{}, fmt.Errorf("exec: bad scalar initializer")
		}
		v, err := t.evalInit(typ, il.Elems[0])
		if err != nil {
			return Value{}, err
		}
		return v, nil
	case *cltypes.Array:
		for i, el := range il.Elems {
			v, err := t.evalInit(tt.Elem, el)
			if err != nil {
				return Value{}, err
			}
			if err := storeCell(c.Kids[i], v); err != nil {
				return Value{}, err
			}
		}
		return Value{T: typ, Agg: c}, nil
	case *cltypes.StructT:
		if tt.IsUnion {
			if len(il.Elems) == 1 {
				fv, err := t.evalInit(tt.Fields[0].Type, il.Elems[0])
				if err != nil {
					return Value{}, err
				}
				if fs, ok := tt.Fields[0].Type.(*cltypes.Scalar); ok {
					if vs, vok := fv.T.(*cltypes.Scalar); vok {
						fv = convertScalar(Value{T: vs, Scalar: fv.Scalar}, fs)
					}
				}
				if err := encodeValue(c.Bytes, fv, tt.Fields[0].Type); err != nil {
					return Value{}, err
				}
				// Figure 2(a): NVIDIA configurations without optimizations
				// initialize only the first two bytes of a union containing
				// a struct member with a small leading field; the remaining
				// bytes read back as ones.
				if t.m.opts.Defects.Has(bugs.WCUnionInit) && unionHasSmallLeadStruct(tt) {
					for i := 2; i < len(c.Bytes) && i < tt.Fields[0].Type.Size(); i++ {
						c.Bytes[i] = 0xff
					}
				}
			}
			return Value{T: typ, Agg: c}, nil
		}
		for i, el := range il.Elems {
			fv, err := t.evalInit(tt.Fields[i].Type, el)
			if err != nil {
				return Value{}, err
			}
			if err := storeCell(c.Kids[i], fv); err != nil {
				return Value{}, err
			}
		}
		// Figure 1(a): AMD configurations with optimizations miscompile any
		// struct in which a char field is directly followed by a larger
		// member — the char field reads as zero ("more generally these
		// configurations appear to miscompile any struct that starts with
		// char followed by a larger member", §6).
		if t.m.opts.Defects.Has(bugs.WCStructCharFirst) {
			for _, fi := range charFirstLargerFields(tt) {
				c.Kids[fi].Val = 0
			}
		}
		return Value{T: typ, Agg: c}, nil
	}
	return Value{}, fmt.Errorf("exec: bad initializer for %s", typ)
}

// charFirstLargerFields returns the indices of 1-byte scalar fields that
// are directly followed by a larger member (the Figure 1(a) trigger shape,
// generalized per §6 to any such adjacent pair).
func charFirstLargerFields(st *cltypes.StructT) []int {
	var out []int
	for i := 0; i+1 < len(st.Fields); i++ {
		f, ok := st.Fields[i].Type.(*cltypes.Scalar)
		if ok && f.Size() == 1 && st.Fields[i+1].Type.Size() > 1 {
			out = append(out, i)
		}
	}
	return out
}

// unionHasSmallLeadStruct reports the Figure 2(a) trigger shape: a union
// whose first field is larger than the leading field of a struct member.
func unionHasSmallLeadStruct(ut *cltypes.StructT) bool {
	if len(ut.Fields) < 2 {
		return false
	}
	lead := ut.Fields[0].Type.Size()
	for _, f := range ut.Fields[1:] {
		if st, ok := f.Type.(*cltypes.StructT); ok && !st.IsUnion && len(st.Fields) > 0 {
			if st.Fields[0].Type.Size() < lead {
				return true
			}
		}
	}
	return false
}

// ---- lvalues ----

func (t *thread) evalLV(e ast.Expr) (lval, error) {
	switch ex := e.(type) {
	case *ast.VarRef:
		c := t.lookup(ex.Name)
		if c == nil {
			return lval{}, fmt.Errorf("exec: undefined variable %q", ex.Name)
		}
		return directLV(c), nil
	case *ast.Unary:
		if ex.Op == ast.Deref {
			v, err := t.evalExpr(ex.X)
			if err != nil {
				return lval{}, err
			}
			target := v.Ptr.Target()
			if target == nil {
				return lval{}, &CrashError{Msg: "null or dangling pointer dereference"}
			}
			return directLV(target), nil
		}
	case *ast.Index:
		iv, err := t.evalExpr(ex.Idx)
		if err != nil {
			return lval{}, err
		}
		is, ok := iv.T.(*cltypes.Scalar)
		if !ok {
			return lval{}, fmt.Errorf("exec: non-scalar index")
		}
		idx := int(cltypes.AsInt64(iv.Scalar, is))
		if _, isPtr := ex.Base.Type().(*cltypes.Pointer); isPtr {
			bv, err := t.evalExpr(ex.Base)
			if err != nil {
				return lval{}, err
			}
			target := bv.Ptr.At(idx).Target()
			if target == nil {
				return lval{}, &CrashError{Msg: "out-of-bounds buffer access"}
			}
			return directLV(target), nil
		}
		blv, err := t.evalLV(ex.Base)
		if err != nil {
			return lval{}, err
		}
		if blv.uField != nil || blv.vecIdx >= 0 {
			return lval{}, fmt.Errorf("exec: cannot index a view lvalue")
		}
		if idx < 0 || idx >= len(blv.c.Kids) {
			return lval{}, &CrashError{Msg: fmt.Sprintf("array index %d out of bounds [0,%d)", idx, len(blv.c.Kids))}
		}
		return directLV(blv.c.Kids[idx]), nil
	case *ast.Member:
		var base *Cell
		if ex.Arrow {
			bv, err := t.evalExpr(ex.Base)
			if err != nil {
				return lval{}, err
			}
			base = bv.Ptr.Target()
			if base == nil {
				return lval{}, &CrashError{Msg: "null pointer member access"}
			}
		} else {
			blv, err := t.evalLV(ex.Base)
			if err != nil {
				return lval{}, err
			}
			if blv.uField != nil {
				return lval{}, fmt.Errorf("exec: nested union member views unsupported")
			}
			base = blv.c
		}
		st, ok := base.Typ.(*cltypes.StructT)
		if !ok {
			return lval{}, fmt.Errorf("exec: member access on %s", base.Typ)
		}
		i := st.FieldIndex(ex.Name)
		if i < 0 {
			return lval{}, fmt.Errorf("exec: no field %q in %s", ex.Name, st)
		}
		if st.IsUnion {
			return lval{c: base, uField: st.Fields[i].Type, vecIdx: -1}, nil
		}
		return directLV(base.Kids[i]), nil
	case *ast.Swizzle:
		blv, err := t.evalLV(ex.Base)
		if err != nil {
			return lval{}, err
		}
		idx := cltypes.SwizzleIndices(ex.Sel)
		if len(idx) != 1 {
			return lval{}, fmt.Errorf("exec: multi-component swizzle is not assignable")
		}
		if blv.uField != nil || blv.vecIdx >= 0 {
			return lval{}, fmt.Errorf("exec: cannot swizzle a view lvalue")
		}
		return lval{c: blv.c, vecIdx: idx[0]}, nil
	}
	return lval{}, fmt.Errorf("exec: expression %T is not an lvalue", e)
}

// lvPtr converts an lvalue into a pointer value for AddrOf.
func (t *thread) lvPtr(e ast.Expr) (Ptr, error) {
	// &a[i] over an array or buffer yields a sliceable pointer so that
	// subsequent subscripting works.
	if ix, ok := e.(*ast.Index); ok {
		iv, err := t.evalExpr(ix.Idx)
		if err != nil {
			return Ptr{}, err
		}
		is := iv.T.(*cltypes.Scalar)
		idx := int(cltypes.AsInt64(iv.Scalar, is))
		if _, isPtr := ix.Base.Type().(*cltypes.Pointer); isPtr {
			bv, err := t.evalExpr(ix.Base)
			if err != nil {
				return Ptr{}, err
			}
			return bv.Ptr.At(idx), nil
		}
		blv, err := t.evalLV(ix.Base)
		if err != nil {
			return Ptr{}, err
		}
		if blv.c != nil && blv.uField == nil && blv.vecIdx < 0 {
			if idx < 0 || idx >= len(blv.c.Kids) {
				return Ptr{}, &CrashError{Msg: "address of out-of-bounds element"}
			}
			return Ptr{Slice: blv.c.Kids, Idx: idx}, nil
		}
		return Ptr{}, fmt.Errorf("exec: cannot take element address of view lvalue")
	}
	lv, err := t.evalLV(e)
	if err != nil {
		return Ptr{}, err
	}
	if lv.uField != nil || lv.vecIdx >= 0 {
		return Ptr{}, fmt.Errorf("exec: cannot take the address of a union field or vector component")
	}
	// Arrays decay to element pointers.
	if _, isArr := lv.c.Typ.(*cltypes.Array); isArr {
		return Ptr{Slice: lv.c.Kids, Idx: 0}, nil
	}
	return Ptr{Cell: lv.c}, nil
}
