package exec

import (
	"fmt"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/code"
)

// thread is the execution state of one work-item.
type thread struct {
	m     *Machine
	group *groupCtx
	// dom is the failure domain the thread aborts with: the group's domain
	// (the launch-level domain when groups run serially).
	dom *failDomain
	gid [3]int
	lid [3]int

	fuel        int64
	env         *env
	depth       int
	barrierSeen bool
	// barrierCount is the number of barrier rounds the thread completed;
	// the group compares counts after all threads finish, which detects
	// the divergence where a thread exits before the others even arrive
	// (the wait-based check alone depends on scheduling order).
	barrierCount int
	iterStack    []uint64
	retVal       Value

	// scratch absorbs expression results that statements discard and loop
	// conditions; one per thread, reused at every nesting level (safe
	// because evaluators fully assign their out-value before returning and
	// never read it after nested statement execution).
	scratch Value
	// tmps is a depth-indexed stack of operand temporaries for the binary
	// and assignment evaluators, replacing per-call stack Values (whose
	// mandatory zeroing dominated the evaluator's flat profile). Slots
	// between tmpTop and the end are free; evaluators restore tmpTop on
	// exit and never read a slot before fully assigning it.
	tmps   [24]Value
	tmpTop int

	// envPool recycles scope objects: loops that declare variables push
	// and pop a scope every iteration, and a map-backed environment made
	// that a map allocation per iteration. Scopes are small, so linear
	// scans over a slice beat map hashing as well.
	envPool []*env
	// cells is the arena for private cells (declarations, parameters,
	// initializer temporaries). Cells are handed out by pointer and stay
	// alive as long as something references them; the arena batches their
	// allocation and — because threads are pooled across launches —
	// retains its chunks, re-zeroing the used region between uses.
	cells arena[Cell]

	// vm holds the register VM's stacks when the launch runs lowered
	// bytecode; the sequential per-group path shares one vmState across
	// the group's threads. vmInstrs counts dispatched instructions,
	// folded into the process-wide counter when the thread finishes.
	vm       *vmState
	vmInstrs int64
	// kids, words and bytes batch the Kids, Vec and Bytes backing slices
	// of arena cells the same way: aggregate declarations request many
	// small slices whose lifetimes all end with the cells they belong to.
	// Spans are handed out disjoint and never grown, so no two cells
	// alias.
	kids  arena[*Cell]
	words arena[uint64]
	bytes arena[byte]
}

// grabKids hands out a zeroed *Cell span of length n from the arena.
func (t *thread) grabKids(n int) []*Cell { return t.kids.grab(n) }

// grabWords hands out a zeroed uint64 span of length n from the arena.
func (t *thread) grabWords(n int) []uint64 { return t.words.grab(n) }

// binding is one declared name in a scope.
type binding struct {
	key   uint64 // nameKey(name): length plus leading bytes, for fast scans
	name  string
	c     *Cell
	param bool
}

// nameKey packs a string's length and up to its first seven bytes into one
// word. Keys differing implies the strings differ, so scope scans compare
// one word per binding instead of calling string comparison; for names of
// at most seven bytes (every generated identifier) equal keys also imply
// equal strings.
func nameKey(s string) uint64 {
	k := uint64(len(s)) << 56
	n := len(s)
	if n > 7 {
		n = 7
	}
	for i := 0; i < n; i++ {
		k |= uint64(s[i]) << (8 * uint(i))
	}
	return k
}

type env struct {
	parent *env
	vars   []binding
	// frame marks a function-frame boundary; its param bindings are the
	// ones the barrier-related defect models consult.
	frame bool
}

// pushEnv enters a child scope, reusing a pooled scope object when one is
// available.
func (t *thread) pushEnv(parent *env) *env {
	if n := len(t.envPool); n > 0 {
		e := t.envPool[n-1]
		t.envPool = t.envPool[:n-1]
		e.parent = parent
		return e
	}
	return &env{parent: parent}
}

// popEnv leaves the scope and returns it to the pool.
func (t *thread) popEnv(e *env) {
	e.vars = e.vars[:0]
	e.parent = nil
	e.frame = false
	t.envPool = append(t.envPool, e)
}

// define binds name in the scope. Scans in lookup run newest-first, so a
// rebinding shadows like the map assignment it replaces.
func (e *env) define(name string, c *Cell, param bool) {
	e.vars = append(e.vars, binding{key: nameKey(name), name: name, c: c, param: param})
}

func (t *thread) lookup(name string) *Cell {
	key := nameKey(name)
	long := len(name) > 7 // key collisions possible only for long names
	for e := t.env; e != nil; e = e.parent {
		for i := len(e.vars) - 1; i >= 0; i-- {
			if e.vars[i].key == key && (!long || e.vars[i].name == name) {
				return e.vars[i].c
			}
		}
	}
	return t.m.globals[name]
}

// lookupRef resolves a variable reference, memoizing the scope coordinates
// (parent hops and binding index) on the node itself. Every execution of a
// given reference sees the same scope-chain shape — scopes push at fixed
// statement positions — so after the first resolution the scan collapses
// to a couple of pointer hops plus one key comparison; the comparison
// also validates the cache, so a wrong slot can only cost a rescan.
func (t *thread) lookupRef(ex *ast.VarRef) *Cell {
	key := nameKey(ex.Name)
	long := len(ex.Name) > 7
	if s := ex.LoadSlot(); s != 0 {
		up := int(s>>32) - 1
		idx := int(uint32(s)) - 1
		e := t.env
		for i := 0; i < up && e != nil; i++ {
			e = e.parent
		}
		if e != nil && idx >= 0 && idx < len(e.vars) &&
			e.vars[idx].key == key && (!long || e.vars[idx].name == ex.Name) {
			return e.vars[idx].c
		}
	}
	up := 0
	for e := t.env; e != nil; e = e.parent {
		for i := len(e.vars) - 1; i >= 0; i-- {
			if e.vars[i].key == key && (!long || e.vars[i].name == ex.Name) {
				ex.StoreSlot(uint64(up+1)<<32 | uint64(i+1))
				return e.vars[i].c
			}
		}
		up++
	}
	return t.m.globals[ex.Name]
}

// isParam reports whether name is a parameter of the current function
// frame (the innermost frame-marked scope, regardless of shadowing in
// inner block scopes — the defect models key on the syntactic name).
func (t *thread) isParam(name string) bool {
	for e := t.env; e != nil; e = e.parent {
		if e.frame {
			for i := range e.vars {
				if e.vars[i].param && e.vars[i].name == name {
					return true
				}
			}
			return false
		}
	}
	return false
}

// arenaCell hands out one zeroed private cell from the thread's arena.
// The arena's reset discipline re-zeroes the used region before reuse, so
// every slot handed out starts zero-initialized.
func (t *thread) arenaCell(typ cltypes.Type) *Cell {
	c := t.cells.one()
	c.Typ = typ
	c.Space = cltypes.Private
	return c
}

// newPrivCell arena-allocates a private (unshared) cell tree of type typ:
// every node — including the scalar leaves of structs and arrays, which
// with declaration initializers are the interpreter's dominant allocation
// — comes from the chunk; only the Kids/Vec/Bytes backing slices are
// individual allocations.
func (t *thread) newPrivCell(typ cltypes.Type) *Cell {
	switch tt := typ.(type) {
	case *cltypes.Scalar, *cltypes.Pointer:
		return t.arenaCell(typ)
	case *cltypes.Vector:
		c := t.arenaCell(typ)
		c.Vec = t.grabWords(tt.Len)
		return c
	case *cltypes.StructT:
		c := t.arenaCell(typ)
		if tt.IsUnion {
			c.Bytes = t.bytes.grab(tt.Size())
			return c
		}
		c.Kids = t.grabKids(len(tt.Fields))
		for i, f := range tt.Fields {
			c.Kids[i] = t.newPrivCell(f.Type)
		}
		return c
	case *cltypes.Array:
		c := t.arenaCell(typ)
		c.Kids = t.grabKids(tt.Len)
		for i := range c.Kids {
			c.Kids[i] = t.newPrivCell(tt.Elem)
		}
		return c
	}
	return newCell(typ, cltypes.Private, false)
}

var errAborted = &CrashError{Msg: "aborted"}

// step charges one fuel unit and polls for a domain abort.
func (t *thread) step() error {
	t.fuel--
	if t.fuel <= 0 {
		return &TimeoutError{Where: "kernel execution"}
	}
	if t.fuel&255 == 0 && t.dom.dead.Load() {
		if err := t.dom.err; err != nil {
			return err
		}
		return errAborted
	}
	return nil
}

// control-flow result of statement execution.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// run executes the thread's kernel on the launch's selected engine: the
// register VM when the machine holds lowered bytecode, the reference
// tree walker otherwise. Both engines produce byte-identical results —
// including fuel-derived timeouts and every defect model — which the
// determinism suites and FuzzLowerMatchesTree pin.
func (t *thread) run() error {
	if fn := faultHook.Load(); fn != nil {
		(*fn)()
	}
	if t.m.code != nil {
		return t.runVMKernel()
	}
	return t.runKernel()
}

func (t *thread) runKernel() error {
	t.env = t.pushEnv(nil)
	t.env.frame = true
	for _, p := range t.m.kernel.Params {
		arg := t.m.args[p.Name]
		c := t.newPrivCell(p.Type)
		if pt, ok := p.Type.(*cltypes.Pointer); ok {
			if arg.Buf == nil {
				return fmt.Errorf("exec: kernel argument %q requires a buffer", p.Name)
			}
			_ = pt
			if arg.Buf.wordT != nil {
				c.Ptr = Ptr{Flat: arg.Buf}
			} else {
				c.Ptr = Ptr{Slice: arg.Buf.Cells}
			}
		} else if s, ok := p.Type.(*cltypes.Scalar); ok {
			c.Val = cltypes.Trunc(arg.Scalar, s)
		} else {
			return fmt.Errorf("exec: unsupported kernel parameter type %s", p.Type)
		}
		t.env.define(p.Name, c, true)
	}
	_, err := t.execBlock(t.m.kernel.Body)
	return err
}

func (t *thread) execBlock(b *ast.Block) (ctrl, error) {
	// Lazy scope push: most blocks declare nothing, so the child scope is
	// created only when the first declaration executes. Name resolution
	// before that point is identical either way.
	saved := t.env
	pushed := false
	defer func() {
		if pushed {
			e := t.env
			t.env = saved
			t.popEnv(e)
		}
	}()
	for _, s := range b.Stmts {
		if !pushed {
			if _, isDecl := s.(*ast.DeclStmt); isDecl {
				t.env = t.pushEnv(saved)
				pushed = true
			}
		}
		c, err := t.execStmt(s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (t *thread) execStmt(s ast.Stmt) (ctrl, error) {
	if err := t.step(); err != nil {
		return ctrlNone, err
	}
	switch st := s.(type) {
	case *ast.DeclStmt:
		return ctrlNone, t.execDecl(st.Decl)
	case *ast.ExprStmt:
		// Assignments in statement position — the bulk of generated code —
		// skip materializing the assigned value.
		if asn, ok := st.X.(*ast.AssignExpr); ok {
			if err := t.step(); err != nil { // the step evalExpr would charge
				return ctrlNone, err
			}
			return ctrlNone, t.evalAssignInner(asn, nil)
		}
		return ctrlNone, t.evalExpr(st.X, &t.scratch)
	case *ast.Block:
		return t.execBlock(st)
	case *ast.If:
		if err := t.evalExpr(st.Cond, &t.scratch); err != nil {
			return ctrlNone, err
		}
		if t.scratch.isTrue() {
			return t.execBlock(st.Then)
		}
		if st.Else != nil {
			return t.execStmt(st.Else)
		}
		return ctrlNone, nil
	case *ast.For:
		return t.execFor(st)
	case *ast.While:
		return t.execLoop(nil, st.Cond, nil, st.Body, false)
	case *ast.DoWhile:
		return t.execLoop(nil, st.Cond, nil, st.Body, true)
	case *ast.Break:
		return ctrlBreak, nil
	case *ast.Continue:
		return ctrlContinue, nil
	case *ast.Return:
		if st.X != nil {
			if err := t.evalExpr(st.X, &t.retVal); err != nil {
				return ctrlNone, err
			}
		} else {
			t.retVal = Value{T: cltypes.TVoid}
		}
		return ctrlReturn, nil
	case *ast.Empty:
		return ctrlNone, nil
	}
	return ctrlNone, fmt.Errorf("exec: unknown statement %T", s)
}

func (t *thread) execFor(st *ast.For) (ctrl, error) {
	// Lazy scope push, mirroring execBlock: the for scope materializes
	// only when the init clause declares the induction variable. Beyond
	// saving a scope push per plain-assignment loop, this keeps the
	// scope-chain SHAPE at every AST node a function of the declarations
	// that execute before it — never of the loop syntax around it — which
	// the VarRef slot cache relies on when optimization passes share
	// nodes between program variants (a dead for loop rewritten to a
	// plain block must present the identical chain to the shared init
	// statement).
	if _, isDecl := st.Init.(*ast.DeclStmt); isDecl {
		saved := t.env
		t.env = t.pushEnv(saved)
		defer func() {
			e := t.env
			t.env = saved
			t.popEnv(e)
		}()
	}
	if st.Init != nil {
		if _, err := t.execStmt(st.Init); err != nil {
			return ctrlNone, err
		}
	}
	return t.execLoopBody(st, st.Cond, st.Post, st.Body, false)
}

func (t *thread) execLoop(init ast.Stmt, cond ast.Expr, post ast.Expr, body *ast.Block, doFirst bool) (ctrl, error) {
	return t.execLoopBody(nil, cond, post, body, doFirst)
}

// execLoopBody runs the shared loop protocol. forNode is non-nil for for
// loops, enabling the Figure 2(d) dead-loop-with-barrier defect model.
func (t *thread) execLoopBody(forNode *ast.For, cond ast.Expr, post ast.Expr, body *ast.Block, doFirst bool) (ctrl, error) {
	t.iterStack = append(t.iterStack, 0)
	defer func() { t.iterStack = t.iterStack[:len(t.iterStack)-1] }()
	iterations := uint64(0)
	// The thread scratch absorbs every condition and post evaluation; the
	// value is consumed (isTrue) immediately after each evaluation.
	for {
		if !doFirst || iterations > 0 {
			if cond != nil {
				if err := t.evalExpr(cond, &t.scratch); err != nil {
					return ctrlNone, err
				}
				if !t.scratch.isTrue() {
					break
				}
			}
		}
		if err := t.step(); err != nil {
			return ctrlNone, err
		}
		iterations++
		t.iterStack[len(t.iterStack)-1] = iterations
		c, err := t.execBlock(body)
		if err != nil {
			return ctrlNone, err
		}
		if c == ctrlBreak {
			break
		}
		if c == ctrlReturn {
			return ctrlReturn, nil
		}
		if post != nil {
			if err := t.evalExpr(post, &t.scratch); err != nil {
				return ctrlNone, err
			}
		}
		if doFirst && cond != nil && iterations > 0 {
			if err := t.evalExpr(cond, &t.scratch); err != nil {
				return ctrlNone, err
			}
			if !t.scratch.isTrue() {
				break
			}
		}
	}
	// Figure 2(d): Intel configs 14-/15- miscompile a loop whose body is
	// unreachable but contains a barrier; non-leader threads observe the
	// loop's init assignment clobbered to 1.
	if forNode != nil && iterations == 0 && t.m.opts.Defects.Has(bugs.WCDeadLoopBarrier) &&
		t.lidLinear() != 0 && code.ContainsBarrier(forNode.Body) {
		if es, ok := forNode.Init.(*ast.ExprStmt); ok {
			if asn, ok := es.X.(*ast.AssignExpr); ok {
				lv, err := t.evalLV(asn.LHS)
				if err == nil {
					if s, ok := lv.typ().(*cltypes.Scalar); ok {
						one := scalarValue(1, s)
						_ = lv.store(&one)
					}
				}
			}
		}
	}
	return ctrlNone, nil
}

func (t *thread) execDecl(d *ast.VarDecl) error {
	if d.Space == cltypes.Local {
		// Local-memory variables are allocated once per work-group and
		// shared by its threads. OpenCL forbids initializers on them.
		g := t.group
		g.mu.Lock()
		c, ok := g.local[d]
		if !ok {
			c = NewCell(d.Type, cltypes.Local)
			g.local[d] = c
		}
		g.mu.Unlock()
		t.env.define(d.Name, c, false)
		return nil
	}
	c := t.newPrivCell(d.Type)
	if d.Init != nil {
		var v Value
		if err := t.evalInit(d.Type, d.Init, &v); err != nil {
			return err
		}
		if err := storeCell(c, &v, t.m.unshared); err != nil {
			return err
		}
	}
	t.env.define(d.Name, c, false)
	return nil
}

// evalInit evaluates an initializer (possibly a braced aggregate list)
// against the declared type, applying the struct- and union-initializer
// defect models.
func (t *thread) evalInit(typ cltypes.Type, init ast.Expr, out *Value) error {
	il, ok := init.(*ast.InitList)
	if !ok {
		if err := t.evalExpr(init, out); err != nil {
			return err
		}
		if s, ok := typ.(*cltypes.Scalar); ok {
			if _, vok := out.T.(*cltypes.Scalar); vok {
				*out = convertScalar(out, s)
			}
		}
		return nil
	}
	c := t.newPrivCell(typ)
	switch tt := typ.(type) {
	case *cltypes.Scalar:
		if len(il.Elems) != 1 {
			return fmt.Errorf("exec: bad scalar initializer")
		}
		return t.evalInit(typ, il.Elems[0], out)
	case *cltypes.Array:
		var v Value
		for i, el := range il.Elems {
			if err := t.evalInit(tt.Elem, el, &v); err != nil {
				return err
			}
			if err := storeCell(c.Kids[i], &v, t.m.unshared); err != nil {
				return err
			}
		}
		*out = Value{T: typ, Agg: c}
		return nil
	case *cltypes.StructT:
		if tt.IsUnion {
			if len(il.Elems) == 1 {
				var fv Value
				if err := t.evalInit(tt.Fields[0].Type, il.Elems[0], &fv); err != nil {
					return err
				}
				if fs, ok := tt.Fields[0].Type.(*cltypes.Scalar); ok {
					if vs, vok := fv.T.(*cltypes.Scalar); vok {
						fv = convertScalar(&Value{T: vs, Scalar: fv.Scalar}, fs)
					}
				}
				if err := encodeValue(c.Bytes, &fv, tt.Fields[0].Type); err != nil {
					return err
				}
				// Figure 2(a): NVIDIA configurations without optimizations
				// initialize only the first two bytes of a union containing
				// a struct member with a small leading field; the remaining
				// bytes read back as ones.
				if t.m.opts.Defects.Has(bugs.WCUnionInit) && unionHasSmallLeadStruct(tt) {
					for i := 2; i < len(c.Bytes) && i < tt.Fields[0].Type.Size(); i++ {
						c.Bytes[i] = 0xff
					}
				}
			}
			*out = Value{T: typ, Agg: c}
			return nil
		}
		var fv Value
		for i, el := range il.Elems {
			if err := t.evalInit(tt.Fields[i].Type, el, &fv); err != nil {
				return err
			}
			if err := storeCell(c.Kids[i], &fv, t.m.unshared); err != nil {
				return err
			}
		}
		// Figure 1(a): AMD configurations with optimizations miscompile any
		// struct in which a char field is directly followed by a larger
		// member — the char field reads as zero ("more generally these
		// configurations appear to miscompile any struct that starts with
		// char followed by a larger member", §6).
		if t.m.opts.Defects.Has(bugs.WCStructCharFirst) {
			for _, fi := range charFirstLargerFields(tt) {
				c.Kids[fi].Val = 0
			}
		}
		*out = Value{T: typ, Agg: c}
		return nil
	}
	return fmt.Errorf("exec: bad initializer for %s", typ)
}

// charFirstLargerFields returns the indices of 1-byte scalar fields that
// are directly followed by a larger member (the Figure 1(a) trigger shape,
// generalized per §6 to any such adjacent pair).
func charFirstLargerFields(st *cltypes.StructT) []int {
	var out []int
	for i := 0; i+1 < len(st.Fields); i++ {
		f, ok := st.Fields[i].Type.(*cltypes.Scalar)
		if ok && f.Size() == 1 && st.Fields[i+1].Type.Size() > 1 {
			out = append(out, i)
		}
	}
	return out
}

// unionHasSmallLeadStruct reports the Figure 2(a) trigger shape: a union
// whose first field is larger than the leading field of a struct member.
func unionHasSmallLeadStruct(ut *cltypes.StructT) bool {
	if len(ut.Fields) < 2 {
		return false
	}
	lead := ut.Fields[0].Type.Size()
	for _, f := range ut.Fields[1:] {
		if st, ok := f.Type.(*cltypes.StructT); ok && !st.IsUnion && len(st.Fields) > 0 {
			if st.Fields[0].Type.Size() < lead {
				return true
			}
		}
	}
	return false
}

// ---- lvalues ----

func (t *thread) evalLV(e ast.Expr) (lval, error) {
	// Fast path outside the tmp-slot discipline: a plain variable is the
	// most common lvalue by far.
	if vr, ok := e.(*ast.VarRef); ok {
		c := t.lookupRef(vr)
		if c == nil {
			return lval{}, fmt.Errorf("exec: undefined variable %q", vr.Name)
		}
		return directLV(c, t.m.unshared), nil
	}
	var tmp *Value
	d := t.tmpTop
	if d < len(t.tmps) {
		t.tmpTop = d + 1
		tmp = &t.tmps[d]
	} else {
		tmp = new(Value)
	}
	lv, err := t.evalLVTmp(e, tmp)
	t.tmpTop = d
	return lv, err
}

// ptrLV resolves a pointer to the lvalue it addresses: a word view for
// flat-buffer pointers, a direct cell otherwise. Null, dangling, and
// out-of-range pointers report a crash with the given message.
func (t *thread) ptrLV(p Ptr, crashMsg string) (lval, error) {
	if p.Flat != nil {
		if p.flatWord() == nil {
			return lval{}, &CrashError{Msg: crashMsg}
		}
		return wordLV(p.Flat, p.Idx, t.m.unshared), nil
	}
	if target := p.Target(); target != nil {
		return directLV(target, t.m.unshared), nil
	}
	return lval{}, &CrashError{Msg: crashMsg}
}

// evalLVTmp resolves non-VarRef lvalues; tmp holds intermediate values
// (index, base pointer) without a fresh stack Value per call.
func (t *thread) evalLVTmp(e ast.Expr, tmp *Value) (lval, error) {
	switch ex := e.(type) {
	case *ast.Unary:
		if ex.Op == ast.Deref {
			if err := t.evalExpr(ex.X, tmp); err != nil {
				return lval{}, err
			}
			return t.ptrLV(tmp.Ptr, "null or dangling pointer dereference")
		}
	case *ast.Index:
		if err := t.evalExpr(ex.Idx, tmp); err != nil {
			return lval{}, err
		}
		is, ok := tmp.T.(*cltypes.Scalar)
		if !ok {
			return lval{}, fmt.Errorf("exec: non-scalar index")
		}
		idx := int(cltypes.AsInt64(tmp.Scalar, is))
		if _, isPtr := ex.Base.Type().(*cltypes.Pointer); isPtr {
			if err := t.evalExpr(ex.Base, tmp); err != nil {
				return lval{}, err
			}
			return t.ptrLV(tmp.Ptr.At(idx), "out-of-bounds buffer access")
		}
		blv, err := t.evalLV(ex.Base)
		if err != nil {
			return lval{}, err
		}
		if blv.uField != nil || blv.vecIdx >= 0 || blv.flat != nil {
			return lval{}, fmt.Errorf("exec: cannot index a view lvalue")
		}
		if idx < 0 || idx >= len(blv.c.Kids) {
			return lval{}, &CrashError{Msg: fmt.Sprintf("array index %d out of bounds [0,%d)", idx, len(blv.c.Kids))}
		}
		return directLV(blv.c.Kids[idx], t.m.unshared), nil
	case *ast.Member:
		var base *Cell
		if ex.Arrow {
			if err := t.evalExpr(ex.Base, tmp); err != nil {
				return lval{}, err
			}
			base = tmp.Ptr.Target()
			if base == nil {
				return lval{}, &CrashError{Msg: "null pointer member access"}
			}
		} else {
			blv, err := t.evalLV(ex.Base)
			if err != nil {
				return lval{}, err
			}
			if blv.uField != nil {
				return lval{}, fmt.Errorf("exec: nested union member views unsupported")
			}
			if blv.c == nil {
				return lval{}, fmt.Errorf("exec: member access on a non-aggregate lvalue")
			}
			base = blv.c
		}
		st, ok := base.Typ.(*cltypes.StructT)
		if !ok {
			return lval{}, fmt.Errorf("exec: member access on %s", base.Typ)
		}
		// sema records the resolved index; fall back to the name scan only
		// for nodes built outside the front end.
		i := ex.FieldIdx - 1
		if i < 0 {
			i = st.FieldIndex(ex.Name)
		}
		if i < 0 || i >= len(st.Fields) {
			return lval{}, fmt.Errorf("exec: no field %q in %s", ex.Name, st)
		}
		if st.IsUnion {
			return lval{c: base, uField: st.Fields[i].Type, vecIdx: -1, unshared: t.m.unshared}, nil
		}
		return directLV(base.Kids[i], t.m.unshared), nil
	case *ast.Swizzle:
		blv, err := t.evalLV(ex.Base)
		if err != nil {
			return lval{}, err
		}
		idx := cltypes.SwizzleIndices(ex.Sel)
		if len(idx) != 1 {
			return lval{}, fmt.Errorf("exec: multi-component swizzle is not assignable")
		}
		if blv.uField != nil || blv.vecIdx >= 0 || blv.flat != nil {
			return lval{}, fmt.Errorf("exec: cannot swizzle a view lvalue")
		}
		return lval{c: blv.c, vecIdx: idx[0], unshared: t.m.unshared}, nil
	}
	return lval{}, fmt.Errorf("exec: expression %T is not an lvalue", e)
}

// lvPtr converts an lvalue into a pointer value for AddrOf.
func (t *thread) lvPtr(e ast.Expr) (Ptr, error) {
	// &a[i] over an array or buffer yields a sliceable pointer so that
	// subsequent subscripting works.
	if ix, ok := e.(*ast.Index); ok {
		var iv Value
		if err := t.evalExpr(ix.Idx, &iv); err != nil {
			return Ptr{}, err
		}
		is := iv.T.(*cltypes.Scalar)
		idx := int(cltypes.AsInt64(iv.Scalar, is))
		if _, isPtr := ix.Base.Type().(*cltypes.Pointer); isPtr {
			var bv Value
			if err := t.evalExpr(ix.Base, &bv); err != nil {
				return Ptr{}, err
			}
			return bv.Ptr.At(idx), nil
		}
		blv, err := t.evalLV(ix.Base)
		if err != nil {
			return Ptr{}, err
		}
		if blv.c != nil && blv.uField == nil && blv.vecIdx < 0 {
			if idx < 0 || idx >= len(blv.c.Kids) {
				return Ptr{}, &CrashError{Msg: "address of out-of-bounds element"}
			}
			return Ptr{Slice: blv.c.Kids, Idx: idx}, nil
		}
		return Ptr{}, fmt.Errorf("exec: cannot take element address of view lvalue")
	}
	lv, err := t.evalLV(e)
	if err != nil {
		return Ptr{}, err
	}
	if lv.uField != nil || lv.vecIdx >= 0 {
		return Ptr{}, fmt.Errorf("exec: cannot take the address of a union field or vector component")
	}
	// A flat-buffer element's address is a flat-store pointer.
	if lv.flat != nil {
		return Ptr{Flat: lv.flat, Idx: lv.wIdx}, nil
	}
	// Arrays decay to element pointers.
	if _, isArr := lv.c.Typ.(*cltypes.Array); isArr {
		return Ptr{Slice: lv.c.Kids, Idx: 0}, nil
	}
	return Ptr{Cell: lv.c}, nil
}
