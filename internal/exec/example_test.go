package exec_test

import (
	"fmt"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/exec"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// ExampleRun executes a four-thread kernel directly on the interpreter:
// parse, type-check, allocate the result buffer, run, read the buffer.
// Hosts normally go through device.Kernel.Run, which layers the simulated
// configuration's defect model on top of this.
func ExampleRun() {
	src := `
kernel void k(global ulong *out) {
    out[get_linear_global_id()] = 10UL * (get_global_id(0) + 1);
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		panic(err)
	}
	prog, info, err := sema.Check(prog, 0)
	if err != nil {
		panic(err)
	}
	nd := exec.NDRange{Global: [3]int{4, 1, 1}, Local: [3]int{2, 1, 1}}
	out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
	err = exec.Run(prog, nd, exec.Args{"out": {Buf: out}}, exec.Options{
		NoBarrier: !info.HasBarrier,
		NoAtomics: !info.HasAtomic,
	})
	fmt.Println(err, out.Scalars())
	// Output: <nil> [10 20 30 40]
}
