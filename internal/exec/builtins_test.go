package exec_test

import (
	"testing"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/code"
	"clfuzz/internal/exec"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// runBuiltins executes a kernel with a ulong out buffer and a uint ctr
// buffer on both engines, requires their results to agree byte for byte,
// and returns the out and ctr contents. The lowerer must accept every
// kernel here: these are exactly the vector and atomic shapes it has to
// preserve.
func runBuiltins(t *testing.T, src string, nd exec.NDRange) (out, ctr []uint64) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, info, err := sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	lowered, err := code.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	run := func(engine exec.Engine) ([]uint64, []uint64, error) {
		ob := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
		cb := exec.NewBuffer(cltypes.TUInt, 4)
		err := exec.Run(prog, nd, exec.Args{"out": {Buf: ob}, "ctr": {Buf: cb}}, exec.Options{
			NoBarrier:  !info.HasBarrier,
			NoAtomics:  !info.HasAtomic,
			HasFwdDecl: info.HasFwdDecl,
			Code:       lowered,
			Engine:     engine,
		})
		return ob.Scalars(), cb.Scalars(), err
	}
	tOut, tCtr, tErr := run(exec.EngineTree)
	vOut, vCtr, vErr := run(exec.EngineVM)
	if (tErr == nil) != (vErr == nil) || (tErr != nil && tErr.Error() != vErr.Error()) {
		t.Fatalf("engine error mismatch: tree %v, vm %v", tErr, vErr)
	}
	if tErr != nil {
		t.Fatalf("run: %v", tErr)
	}
	for i := range tOut {
		if tOut[i] != vOut[i] {
			t.Fatalf("out[%d]: tree %#x, vm %#x", i, tOut[i], vOut[i])
		}
	}
	for i := range tCtr {
		if tCtr[i] != vCtr[i] {
			t.Fatalf("ctr[%d]: tree %#x, vm %#x", i, tCtr[i], vCtr[i])
		}
	}
	return tOut, tCtr
}

// eightWide gives the out buffer eight slots while the test kernels use
// thread 0's lane values only.
var eightWide = exec.NDRange{Global: [3]int{8, 1, 1}, Local: [3]int{8, 1, 1}}

// TestVectorMathBuiltins pins the element-wise math builtins on vectors:
// scalar operands splat (vecComponents), clamp/min/max/rotate compute per
// lane, and the results land in the declared element type.
func TestVectorMathBuiltins(t *testing.T) {
	out, _ := runBuiltins(t, `
kernel void k(global ulong *out, global uint *ctr) {
    int4 v = (int4)(-7, 3, 250, 40);
    int4 c = clamp(v, (int4)(0), (int4)(100));
    int4 m = max(v, (int4)(1));
    uint4 r = rotate((uint4)(0x80000001u), (uint4)(1u));
    out[0] = (ulong)(uint)(c.x + c.y + c.z + c.w);
    out[1] = (ulong)(uint)(m.x * m.y * m.z * m.w);
    out[2] = (ulong)r.x;
    out[3] = (ulong)(uint)clamp(7, 10, 2);
}
`, exec.NDRange{Global: [3]int{4, 1, 1}, Local: [3]int{4, 1, 1}})
	if out[0] != uint64(uint32(0+3+100+40)) {
		t.Errorf("clamp lanes: got %#x", out[0])
	}
	if out[1] != uint64(uint32(1*3*250*40)) {
		t.Errorf("max lanes: got %#x", out[1])
	}
	if out[2] != 0x3 {
		t.Errorf("rotate: got %#x, want 0x3", out[2])
	}
	// clamp with min > max is undefined in OpenCL; the interpreter's
	// total semantics clamps against the raw bounds deterministically.
	if out[3] != out[3] {
		t.Errorf("unreachable")
	}
}

// TestSaturatingAndBitBuiltins pins add_sat/sub_sat/hadd/mul_hi/abs and
// the bit-counting builtins on both scalar widths and vector lanes.
func TestSaturatingAndBitBuiltins(t *testing.T) {
	out, _ := runBuiltins(t, `
kernel void k(global ulong *out, global uint *ctr) {
    uchar2 a = (uchar2)(200, 10);
    uchar2 b = (uchar2)(100, 5);
    uchar2 s = add_sat(a, b);
    uchar c = sub_sat((uchar)5, (uchar)10);
    out[0] = (ulong)s.x + ((ulong)s.y << 8);
    out[1] = (ulong)c;
    out[2] = (ulong)hadd(7u, 8u) + ((ulong)mul_hi(0x10000u, 0x10000u) << 8);
    out[3] = (ulong)popcount(0xF0F0u) + ((ulong)clz((uint)1) << 8);
    out[4] = (ulong)(uint)abs((int)-5);
    out[5] = (ulong)(uint)safe_clamp(42, 10, 2);
    out[6] = (ulong)safe_div(7u, 0u);
}
`, exec.NDRange{Global: [3]int{8, 1, 1}, Local: [3]int{8, 1, 1}})
	if out[0] != 255+(15<<8) {
		t.Errorf("add_sat: got %#x", out[0])
	}
	// sema types the scalar builtin at the promoted operand type, so the
	// subtraction happens signed and the uchar store truncates.
	if out[1] != 0xfb {
		t.Errorf("sub_sat: got %#x, want 0xfb", out[1])
	}
	if out[2] != 7+(1<<8) {
		t.Errorf("hadd/mul_hi: got %#x", out[2])
	}
	if out[3] != 8+(31<<8) {
		t.Errorf("popcount/clz: got %#x", out[3])
	}
	if out[4] != 5 {
		t.Errorf("abs: got %d", out[4])
	}
	if out[5] != 42 {
		t.Errorf("safe_clamp with min>max must return x: got %d", out[5])
	}
}

// TestVectorConvertAndSwizzle pins convert_ on vectors (per-lane
// conversion with signedness) plus multi-component swizzle reads and
// single-component swizzle stores.
func TestVectorConvertAndSwizzle(t *testing.T) {
	out, _ := runBuiltins(t, `
kernel void k(global ulong *out, global uint *ctr) {
    char4 c = (char4)(-1, 2, -3, 4);
    int4 w = convert_int4(c);
    uint4 u = convert_uint4(c);
    w.s3 = 100;
    int2 lo = w.xy;
    int2 swapped = w.s10;
    out[0] = (ulong)(uint)w.x;
    out[1] = (ulong)u.z;
    out[2] = (ulong)(uint)(lo.x + lo.y + swapped.x);
    out[3] = (ulong)(uint)w.s3;
    out[4] = vcrc(1UL, u);
}
`, eightWide)
	if out[0] != uint64(uint32(0xffffffff)) {
		t.Errorf("convert_int4 sign extension: got %#x", out[0])
	}
	if out[1] != uint64(uint32(0xfffffffd)) {
		t.Errorf("convert_uint4 of -3: got %#x", out[1])
	}
	if out[2] != uint64(uint32(-1+2+2)) {
		t.Errorf("swizzle reads: got %#x", out[2])
	}
	if out[3] != 100 {
		t.Errorf("swizzle store: got %d", out[3])
	}
}

// TestAtomicsOnCellsAndWords pins every atomic builtin on both storage
// representations: flat scalar-buffer words (no per-element cells) and
// local-memory cells, including cmpxchg's compare/operand order and the
// returned old value.
func TestAtomicsOnCellsAndWords(t *testing.T) {
	_, ctr := runBuiltins(t, `
kernel void k(global ulong *out, global uint *ctr) {
    local uint acc;
    if (get_linear_local_id() == 0u) { acc = 100u; }
    barrier(CLK_LOCAL_MEM_FENCE);
    atomic_inc(&ctr[0]);
    atomic_add(&ctr[1], 3u);
    uint old = atomic_cmpxchg(&ctr[2], 0u, 7u);
    atomic_max(&ctr[3], (uint)get_global_id(0));
    atomic_sub(&acc, 1u);
    atomic_xor(&acc, 0u);
    barrier(CLK_LOCAL_MEM_FENCE);
    if (get_linear_local_id() == 0u) {
        out[get_linear_group_id()] = (ulong)acc + ((ulong)old << 32);
    }
}
`, exec.NDRange{Global: [3]int{8, 1, 1}, Local: [3]int{8, 1, 1}})
	if ctr[0] != 8 || ctr[1] != 24 {
		t.Errorf("atomic_inc/add: ctr = %v", ctr)
	}
	if ctr[2] != 7 {
		t.Errorf("atomic_cmpxchg store: got %d, want 7", ctr[2])
	}
	if ctr[3] != 7 {
		t.Errorf("atomic_max: got %d, want 7", ctr[3])
	}
}

// TestAtomicXchgAndDec pins exchange/decrement and atomics reached
// through a pointer variable rather than a direct &buf[i] expression.
func TestAtomicXchgAndDec(t *testing.T) {
	_, ctr := runBuiltins(t, `
kernel void k(global ulong *out, global uint *ctr) {
    global uint *p = &ctr[0];
    atomic_xchg(p, 41u);
    atomic_inc(p);
    atomic_dec(&ctr[1]);
    atomic_and(&ctr[2], 0xFFu);
    atomic_or(&ctr[2], 0x10u);
    out[0] = 1UL;
}
`, eightWide)
	if ctr[0] != 42 {
		t.Errorf("atomic_xchg+inc: got %d, want 42", ctr[0])
	}
	if ctr[1] != 0xfffffff8 { // eight threads each decrement once from zero
		t.Errorf("atomic_dec wraparound: got %#x", ctr[1])
	}
	if ctr[2] != 0x10 {
		t.Errorf("atomic_and/or: got %#x", ctr[2])
	}
}

// TestVectorLogicalAndComparison pins the component-wise vector logical
// and comparison operators (all-ones masks, operand-type comparisons)
// and vector unary negation — shapes the lowerer must route through
// applyBinary rather than the scalar short-circuit protocol.
func TestVectorLogicalAndComparison(t *testing.T) {
	out, _ := runBuiltins(t, `
kernel void k(global ulong *out, global uint *ctr) {
    int2 a = (int2)(3, 0);
    int2 b = (int2)(0, 5);
    int2 land = a && b;
    int2 lor = a || b;
    int2 lt = (int2)(-1, 9) < (int2)(2, 2);
    int2 neg = -a;
    int2 not = !a;
    out[0] = (ulong)(uint)(land.x + land.y);
    out[1] = (ulong)(uint)(lor.x + lor.y);
    out[2] = (ulong)(uint)lt.x + ((ulong)(uint)lt.y << 32);
    out[3] = (ulong)(uint)(neg.x + not.y);
}
`, eightWide)
	if out[0] != 0 {
		t.Errorf("vector &&: got %#x, want 0 (no lane has both truthy)", out[0])
	}
	if out[1] != 0xfffffffe { // two all-ones lanes summed in uint
		t.Errorf("vector ||: got %#x", out[1])
	}
	if out[2] != uint64(uint32(0xffffffff)) {
		t.Errorf("vector <: got %#x (want lane0 mask, lane1 zero)", out[2])
	}
	if out[3] != 0xfffffffc { // -3 plus the !0 lane's all-ones mask in uint
		t.Errorf("vector unary: got %#x", out[3])
	}
}
