package exec

import (
	"sort"
	"sync/atomic"

	"clfuzz/internal/code"
)

// OpStats accumulates dynamic opcode and opcode-pair dispatch
// frequencies for the VM. Like Options.Cover it is strictly opt-in
// (clbench -opstats): a nil OpStats costs one pointer check per
// dispatch, and collection never affects outcomes or outputs. The
// counters are atomic so one OpStats may be shared across the parallel
// work-group executors of a launch.
type OpStats struct {
	ops   [code.NumOps]atomic.Int64
	pairs [code.NumOps * code.NumOps]atomic.Int64
}

// note records one dispatch of cur following prev. The first dispatch
// of each vmLoop invocation pairs with OpInvalid and is dropped from
// the pair histogram by Pairs below.
func (s *OpStats) note(prev, cur code.Op) {
	s.ops[cur].Add(1)
	s.pairs[int(prev)*code.NumOps+int(cur)].Add(1)
}

// OpCount is one opcode's dispatch count.
type OpCount struct {
	Op    string `json:"op"`
	Count int64  `json:"count"`
}

// PairCount is one adjacent opcode pair's dispatch count.
type PairCount struct {
	First  string `json:"first"`
	Second string `json:"second"`
	Count  int64  `json:"count"`
}

// Ops returns the opcode histogram sorted by descending count (ties by
// opcode order, so snapshots are deterministic).
func (s *OpStats) Ops() []OpCount {
	var out []OpCount
	for op := 0; op < code.NumOps; op++ {
		if n := s.ops[op].Load(); n > 0 {
			out = append(out, OpCount{Op: code.Op(op).String(), Count: n})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Pairs returns the adjacent-pair histogram sorted by descending count
// (ties by pair order). Pairs whose first opcode is OpInvalid — the
// synthetic predecessor of each dispatch loop entry — are omitted.
func (s *OpStats) Pairs() []PairCount {
	var out []PairCount
	for a := 1; a < code.NumOps; a++ {
		for b := 0; b < code.NumOps; b++ {
			if n := s.pairs[a*code.NumOps+b].Load(); n > 0 {
				out = append(out, PairCount{
					First:  code.Op(a).String(),
					Second: code.Op(b).String(),
					Count:  n,
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}
