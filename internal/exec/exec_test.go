package exec_test

import (
	"testing"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/exec"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// run compiles and executes src over the given NDRange with a ulong out
// buffer, returning the buffer contents.
func run(t *testing.T, src string, nd exec.NDRange, opts exec.Options) []uint64 {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, info, err := sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	opts.HasFwdDecl = info.HasFwdDecl
	out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
	args := exec.Args{"out": {Buf: out}}
	if err := exec.Run(prog, nd, args, opts); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.Scalars()
}

func nd1(n, w int) exec.NDRange {
	return exec.NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{w, 1, 1}}
}

func TestSimpleKernel(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    out[get_linear_global_id()] = (ulong)(1 + 2 * 3);
}
`
	got := run(t, src, nd1(4, 2), exec.Options{})
	for i, v := range got {
		if v != 7 {
			t.Errorf("out[%d] = %d, want 7", i, v)
		}
	}
}

func TestThreadIDs(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    out[get_linear_global_id()] = get_global_id(0) + 100UL * get_group_id(0) + 10000UL * get_local_id(0);
}
`
	got := run(t, src, nd1(4, 2), exec.Options{})
	want := []uint64{0, 10001, 102, 10103}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestStructAndFunctionCall(t *testing.T) {
	src := `
struct S { char a; short b; };

int f(struct S *p) {
    return p->a + p->b;
}

kernel void k(global ulong *out) {
    struct S s = { 1, 1 };
    out[get_linear_global_id()] = (ulong)f(&s);
}
`
	got := run(t, src, nd1(2, 2), exec.Options{})
	for i, v := range got {
		if v != 2 {
			t.Errorf("out[%d] = %d, want 2", i, v)
		}
	}
}

func TestControlFlowAndLoops(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    int sum = 0;
    for (int i = 0; i < 10; i++) {
        if (i == 5) { continue; }
        if (i == 8) { break; }
        sum += i;
    }
    int j = 0;
    while (j < 4) { j++; }
    do { j++; } while (j < 6);
    out[get_linear_global_id()] = (ulong)(sum * 100 + j);
}
`
	// sum = 0+1+2+3+4+6+7 = 23, j = 6.
	got := run(t, src, nd1(1, 1), exec.Options{})
	if got[0] != 2306 {
		t.Errorf("out[0] = %d, want 2306", got[0])
	}
}

func TestVectorOperations(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    int4 v = (int4)(1, 2, 3, 4);
    int4 w = (int4)(10);
    int4 s = v + w;
    int4 m = v * v;
    out[get_linear_global_id()] = (ulong)(s.x + s.y + s.z + s.w) + 1000UL * (ulong)m.w;
}
`
	// s = (11,12,13,14) sum 50; m.w = 16.
	got := run(t, src, nd1(1, 1), exec.Options{})
	if got[0] != 16050 {
		t.Errorf("out[0] = %d, want 16050", got[0])
	}
}

func TestVectorComparisonMask(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    int2 a = (int2)(1, 5);
    int2 b = (int2)(3, 3);
    int2 m = a < b;
    out[get_linear_global_id()] = (ulong)(uint)m.x + 1000UL * (ulong)(uint)m.y;
}
`
	// m = (-1, 0): as uint, 0xffffffff and 0.
	got := run(t, src, nd1(1, 1), exec.Options{})
	if got[0] != 0xffffffff {
		t.Errorf("out[0] = %#x, want 0xffffffff", got[0])
	}
}

func TestRotateBuiltin(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    uint2 r = rotate((uint2)(1, 1), (uint2)(0, 0));
    out[get_linear_global_id()] = (ulong)r.x;
}
`
	got := run(t, src, nd1(1, 1), exec.Options{})
	if got[0] != 1 {
		t.Errorf("rotate((1,1),(0,0)).x = %d, want 1", got[0])
	}
}

func TestBarrierCommunication(t *testing.T) {
	// Threads exchange values through local memory across a barrier.
	src := `
kernel void k(global ulong *out) {
    local uint A[4];
    size_t lid = get_linear_local_id();
    A[lid] = (uint)(lid + 1);
    barrier(CLK_LOCAL_MEM_FENCE);
    uint got = A[(lid + 1) % 4];
    out[get_linear_global_id()] = (ulong)got;
}
`
	got := run(t, src, nd1(4, 4), exec.Options{CheckRaces: true})
	want := []uint64{2, 3, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAtomicReduction(t *testing.T) {
	src := `
kernel void k(global ulong *out, global int *r) {
    atomic_add(&r[0], 1);
    barrier(CLK_GLOBAL_MEM_FENCE);
    out[get_linear_global_id()] = 0UL;
    if (get_linear_local_id() == 0UL) {
        out[get_linear_global_id()] = (ulong)(uint)r[0];
    }
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, _, err = sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	nd := nd1(8, 8)
	out := exec.NewBuffer(cltypes.TULong, 8)
	r := exec.NewBuffer(cltypes.TInt, 1)
	args := exec.Args{"out": {Buf: out}, "r": {Buf: r}}
	if err := exec.Run(prog, nd, args, exec.Options{CheckRaces: true}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Scalar(0) != 8 {
		t.Errorf("reduction result = %d, want 8", out.Scalar(0))
	}
}

func TestUnionPunning(t *testing.T) {
	src := `
struct S { short c; long d; };
union U { uint a; struct S b; };

kernel void k(global ulong *out) {
    union U u = { 7u };
    out[get_linear_global_id()] = (ulong)u.a;
}
`
	got := run(t, src, nd1(1, 1), exec.Options{})
	if got[0] != 7 {
		t.Errorf("u.a = %d, want 7", got[0])
	}
}

func TestRaceDetection(t *testing.T) {
	// All threads write the same local cell without synchronization.
	src := `
kernel void k(global ulong *out) {
    local uint A[1];
    A[0] = (uint)get_linear_local_id();
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_linear_global_id()] = (ulong)A[0];
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, _, err = sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	out := exec.NewBuffer(cltypes.TULong, 4)
	err = exec.Run(prog, nd1(4, 4), exec.Args{"out": {Buf: out}}, exec.Options{CheckRaces: true})
	if _, ok := err.(*exec.RaceError); !ok {
		t.Errorf("expected RaceError, got %v", err)
	}
}

func TestDivergenceDetection(t *testing.T) {
	// Half the threads skip the barrier.
	src := `
kernel void k(global ulong *out) {
    local uint A[4];
    A[get_linear_local_id()] = 1u;
    if (get_linear_local_id() < 2UL) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_linear_global_id()] = 0UL;
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, _, err = sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	out := exec.NewBuffer(cltypes.TULong, 4)
	err = exec.Run(prog, nd1(4, 4), exec.Args{"out": {Buf: out}}, exec.Options{CheckRaces: true})
	if _, ok := err.(*exec.DivergenceError); !ok {
		t.Errorf("expected DivergenceError, got %v", err)
	}
}

func TestTimeout(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    ulong i = 0UL;
    while (1) { i = i + 1UL; }
    out[get_linear_global_id()] = i;
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, _, err = sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	out := exec.NewBuffer(cltypes.TULong, 1)
	err = exec.Run(prog, nd1(1, 1), exec.Args{"out": {Buf: out}}, exec.Options{Fuel: 10000})
	if _, ok := err.(*exec.TimeoutError); !ok {
		t.Errorf("expected TimeoutError, got %v", err)
	}
}

func TestCommaOperator(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    int x = 1;
    uint y;
    for (y = 4294967295u; y >= 1u; ++y) { if ((x , 1)) { break; } }
    out[get_linear_global_id()] = (ulong)y;
}
`
	got := run(t, src, nd1(1, 1), exec.Options{})
	if got[0] != 0xffffffff {
		t.Errorf("out[0] = %#x, want 0xffffffff (Figure 2(f) expected result)", got[0])
	}
}

func TestSafeMath(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    int a = safe_div(5, 0);
    int b = safe_mod(7, 0);
    int c = safe_lshift(1, 40);
    int d = safe_add(2147483647, 1);
    out[get_linear_global_id()] = (ulong)(uint)(a + b + c + d);
}
`
	// a=5, b=7, c=1 (shift undefined -> first operand), d=INT_MIN wrap.
	got := run(t, src, nd1(1, 1), exec.Options{})
	base := int32(5 + 7 + 1)
	base += -2147483648 // wraps, as the kernel's safe_add does
	want := uint64(uint32(base))
	if got[0] != want {
		t.Errorf("out[0] = %#x, want %#x", got[0], want)
	}
}

func TestPointerChain(t *testing.T) {
	src := `
typedef struct { int x; int y; } S;

void f(S *p) { p->x = 2; }

kernel void k(global ulong *out) {
    S s = { 1, 1 };
    f(&s);
    out[get_linear_global_id()] = (ulong)(s.x + s.y);
}
`
	got := run(t, src, nd1(2, 2), exec.Options{})
	for i, v := range got {
		if v != 3 {
			t.Errorf("out[%d] = %d, want 3", i, v)
		}
	}
}

func TestMultiDimArray(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    ulong c[3][3][2];
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 3; j++) {
            for (int l = 0; l < 2; l++) { c[i][j][l] = (ulong)(i * 100 + j * 10 + l); }
        }
    }
    out[get_linear_global_id()] = c[2][1][1];
}
`
	got := run(t, src, nd1(1, 1), exec.Options{})
	if got[0] != 211 {
		t.Errorf("out[0] = %d, want 211", got[0])
	}
}
