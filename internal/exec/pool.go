package exec

// Execution-state lifecycle. A kernel launch needs a sizeable working set
// — a Machine shell with its name maps, one thread struct per concurrent
// work-item, private-cell arena chunks, VM register stacks, barrier and
// lockstep bookkeeping — and a campaign performs millions of launches
// whose working sets are all the same shape. This file makes the steady
// state allocation-free: every launch acquires a launchState from a
// LaunchPool, resets it with an explicit zeroing discipline, runs, and
// returns it. The contract mirrors the arena contract the evaluator
// already relied on:
//
//   - Everything a launch may read before writing is zeroed at acquire
//     time (arena used regions, maps, flags, counters).
//   - Everything written before read under an existing engine contract
//     (VM registers, operand temporaries, scratch) may stay stale.
//   - A launch that panics on the calling goroutine drops its state on
//     the floor instead of returning it — a half-unwound launchState is
//     never reused.
//
// SetDebugPoisonPool arms a checked mode that scribbles sentinel values
// over every retained structure when a state is returned, so the
// determinism suites catch a stale read by construction rather than by
// luck.

import (
	"sync"
	"sync/atomic"

	"clfuzz/internal/ast"
)

// arena is a chunked bump allocator whose chunks are retained across
// resets. Spans are handed out disjoint and never grown, so no two
// grants alias; reset re-zeroes exactly the region previous grants could
// have dirtied, so every new grant starts zero-initialized — the same
// guarantee freshly made chunks gave before arenas were pooled.
type arena[T any] struct {
	chunks [][]T
	ci     int // chunk currently being carved
	used   int // elements consumed from chunks[ci]
}

// grab hands out a zeroed span of length n.
func (a *arena[T]) grab(n int) []T {
	for {
		if a.ci < len(a.chunks) {
			ch := a.chunks[a.ci]
			if len(ch)-a.used >= n {
				s := ch[a.used : a.used+n : a.used+n]
				a.used += n
				return s
			}
			// The tail of this chunk is too short; it was never handed
			// out, so it is still zero and reset need not revisit it.
			a.ci++
			a.used = 0
			continue
		}
		c := 128
		if c < n {
			c = n
		}
		a.chunks = append(a.chunks, make([]T, c))
	}
}

// one hands out a single zeroed element.
func (a *arena[T]) one() *T {
	if a.ci < len(a.chunks) {
		if ch := a.chunks[a.ci]; a.used < len(ch) {
			p := &ch[a.used]
			a.used++
			return p
		}
	}
	return &a.grab(1)[0]
}

// reset re-zeroes every element handed out since the last reset and
// rewinds the arena. Chunks before the current one were filled to some
// prefix and possibly skipped with a short zero tail, so the whole chunk
// is cleared; the current chunk is cleared up to its watermark.
func (a *arena[T]) reset() {
	for i := 0; i < a.ci && i < len(a.chunks); i++ {
		clear(a.chunks[i])
	}
	if a.ci < len(a.chunks) {
		clear(a.chunks[a.ci][:a.used])
	}
	a.ci, a.used = 0, 0
}

// poolKey selects the launch shape a pooled state was last used for, so
// serial, lockstep and parallel-group launches each reuse states grown
// to their own working-set shape.
type poolKey uint8

const (
	poolSerial   poolKey = iota // sequential groups on the calling goroutine
	poolLockstep                // goroutine-per-thread groups (barriers, races)
	poolParallel                // work-group fan-out across a worker pool
	poolKeys
)

// LaunchPool recycles launch working sets across kernel executions. A nil
// Options.Pool uses a process-wide shared pool, so steady-state campaigns
// are allocation-free by default; embedders that want memory isolation
// (one pool per campaign engine, per fleet worker) pass their own.
//
// States are acquired at the top of Run and returned when it exits
// normally; a launch that panics on the calling goroutine drops its state
// instead. All reset work happens at acquire time, against a state whose
// previous launch has fully quiesced.
type LaunchPool struct {
	mu     sync.Mutex
	free   [poolKeys][]*launchState
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewLaunchPool returns an empty pool.
func NewLaunchPool() *LaunchPool { return &LaunchPool{} }

// sharedPool is the process-wide default used when Options.Pool is nil.
var sharedPool = NewLaunchPool()

// DefaultPool returns the process-wide pool that launches with a nil
// Options.Pool draw from, for telemetry.
func DefaultPool() *LaunchPool { return sharedPool }

// Counters reports how many acquisitions were served from the freelist
// (hits) versus by constructing a new state (misses).
func (p *LaunchPool) Counters() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

// debugPoisonPool arms sentinel scribbling on every pool return; see
// SetDebugPoisonPool.
var debugPoisonPool atomic.Bool

// SetDebugPoisonPool toggles pool poisoning: when armed, every structure
// a launchState retains — arena chunks, thread flags, VM register
// stacks, barrier tokens, scratch values — is overwritten with sentinel
// garbage when the state is returned to its pool. The acquire-time reset
// discipline must then neutralize every sentinel a launch could observe,
// or outputs diverge and the determinism suites fail. Like
// SetDebugImmutable it is a checked mode for tests, far too slow for
// campaigns.
func SetDebugPoisonPool(on bool) { debugPoisonPool.Store(on) }

func (p *LaunchPool) get(k poolKey) *launchState {
	p.mu.Lock()
	if fl := p.free[k]; len(fl) > 0 {
		st := fl[len(fl)-1]
		fl[len(fl)-1] = nil
		p.free[k] = fl[:len(fl)-1]
		p.mu.Unlock()
		p.hits.Add(1)
		return st
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return &launchState{key: k}
}

func (p *LaunchPool) put(st *launchState) {
	st.scrub()
	if debugPoisonPool.Load() {
		st.poison()
	}
	p.mu.Lock()
	p.free[st.key] = append(p.free[st.key], st)
	p.mu.Unlock()
}

// scrub drops the launch-identity references while the state idles in
// the pool, so a parked state does not pin the previous launch's
// program, arguments or buffers against the garbage collector. (Arena
// interiors may still reference the old launch's cells until the next
// acquire re-zeroes them; the pool is bounded by worker count, so that
// retention is O(working set).)
func (st *launchState) scrub() {
	m := &st.m
	m.prog, m.kernel, m.code, m.threaded = nil, nil, nil, nil
	m.args = nil
	m.opts = Options{}
	clear(m.globals)
	clear(m.funcs)
	clear(m.globalCells)
	m.globalCells = m.globalCells[:0]
	m.interGroup = nil
	m.vmSerial = nil
}

// launchState owns everything exec.Run used to make fresh per launch.
// The embedded Machine is the launch's identity; groups holds one
// groupState per concurrent group executor (one for serial launches, one
// per worker for the parallel-group path), each owning its threads,
// barrier, lockstep scheduler and VM stacks.
type launchState struct {
	key poolKey
	m   Machine
	// initThread evaluates program-scope constant initializers host-side.
	initThread thread
	// serialVM is the register state shared by every sequential group of
	// a fully serial launch (Machine.vmSerial points here).
	serialVM vmState
	// dom is the launch-level failure domain, reused while it has not
	// fired (a fired domain's sync.Once and closed abort channel cannot
	// be rearmed, so it is replaced instead).
	dom    *failDomain
	groups []*groupState
	errs   []error
}

// group returns the i'th group executor state, growing the set on first
// use of a wider shape.
func (st *launchState) group(i int) *groupState {
	for len(st.groups) <= i {
		st.groups = append(st.groups, &groupState{})
	}
	return st.groups[i]
}

// freshDom returns a failure domain that has never fired.
func (st *launchState) freshDom() *failDomain {
	if st.dom == nil || st.dom.dead.Load() {
		st.dom = newFailDomain()
	}
	return st.dom
}

// reset rearms the state for a new launch: maps cleared, arenas rewound
// and re-zeroed, counters dropped. Fields the next launch assigns before
// reading (prog, kernel, nd, args, opts, mode flags) are left for Run.
func (st *launchState) reset() {
	m := &st.m
	if m.globals == nil {
		m.globals = map[string]*Cell{}
		m.funcs = map[string]*ast.FuncDecl{}
	} else {
		clear(m.globals)
		clear(m.funcs)
	}
	m.code = nil
	m.threaded = nil
	m.globalCells = m.globalCells[:0]
	m.vmSerial = nil
	m.interGroup = nil
	m.state = st
	st.errs = st.errs[:0]
}

// groupState is the working set of one group executor: the sequential
// path runs every thread of a group on seq; the lockstep path runs one
// goroutine per thread over threads.
type groupState struct {
	g   groupCtx
	bar barrier
	ls  lockstep
	// vm serves the sequential groups of one parallel-path worker (the
	// fully serial launch uses launchState.serialVM instead, shared
	// across its groups).
	vm        vmState
	seq       thread
	threads   []*thread
	barCounts []int
	// dom is the per-group failure domain of the parallel-group path,
	// reused across the worker's groups while it has not fired.
	dom *failDomain
}

// resetGroup rearms the groupCtx for a fresh group. Barrier and lockstep
// state is rearmed separately, by the paths that use them.
func (gs *groupState) resetGroup(m *Machine, gid [3]int, dom *failDomain) *groupCtx {
	g := &gs.g
	g.m = m
	g.id = gid
	g.dom = dom
	g.bar = nil
	g.ls = nil
	if g.local == nil {
		g.local = map[*ast.VarDecl]*Cell{}
	} else {
		clear(g.local)
	}
	if m.opts.CheckRaces {
		if g.races == nil {
			g.races = map[memKey]*accessRec{}
		} else {
			clear(g.races)
		}
	} else {
		g.races = nil
	}
	return g
}

// freshDom returns a per-group failure domain that has never fired.
func (gs *groupState) freshDom() *failDomain {
	if gs.dom == nil || gs.dom.dead.Load() {
		gs.dom = newFailDomain()
	}
	return gs.dom
}

// thread returns the i'th pooled thread of the group executor.
func (gs *groupState) thread(i int) *thread {
	for len(gs.threads) <= i {
		gs.threads = append(gs.threads, &thread{})
	}
	return gs.threads[i]
}

// resetState rearms a pooled thread for one work-item: scope chain
// released, arenas re-zeroed, control flags dropped. scratch, tmps,
// retVal and the VM register stacks stay stale by contract — every
// engine fully assigns them before reading.
func (t *thread) resetState(m *Machine, g *groupCtx, gid, lid [3]int, fuel int64) {
	t.releaseEnvs()
	t.m = m
	t.group = g
	if g != nil {
		t.dom = g.dom
	} else {
		t.dom = m.dom
	}
	t.gid = gid
	t.lid = lid
	t.fuel = fuel
	t.depth = 0
	t.barrierSeen = false
	t.barrierCount = 0
	t.iterStack = t.iterStack[:0]
	t.vmInstrs = 0
	t.cells.reset()
	t.kids.reset()
	t.words.reset()
	t.bytes.reset()
}

// releaseEnvs returns the thread's remaining scope chain to the env pool
// (the kernel frame is pushed by runKernel and deliberately left for the
// thread's end; with pooled threads, "the end" is here).
func (t *thread) releaseEnvs() {
	for e := t.env; e != nil; {
		p := e.parent
		t.popEnv(e)
		e = p
	}
	t.env = nil
}

// ---- poisoning ----

const poisonWord = 0x5EEDDEADBEEF5EED

// poison scribbles sentinel garbage over every structure the state
// retains. Only regions a launch could legitimately have dirtied are
// touched — never-granted arena tails stay zero, because production
// resets rely on that invariant and poisoning must not be stricter than
// reality.
func (st *launchState) poison() {
	st.initThread.poison()
	poisonVM(&st.serialVM)
	for i := range st.m.globalCells {
		st.m.globalCells[i] = nil
	}
	for _, gs := range st.groups {
		gs.seq.poison()
		for _, th := range gs.threads {
			th.poison()
		}
		poisonVM(&gs.vm)
		gs.bar.token = barrierToken{iters: poisonWord}
		gs.bar.fence = poisonWord
		gs.bar.haveToken = true
		for i := range gs.barCounts {
			gs.barCounts[i] = -1
		}
	}
	for i := range st.errs {
		st.errs[i] = errAborted
	}
}

func (t *thread) poison() {
	poisonArena(&t.cells, Cell{Val: poisonWord})
	poisonArena(&t.kids, nil)
	poisonArena(&t.words, poisonWord)
	poisonArena(&t.bytes, 0xA5)
	t.fuel = -poisonWord
	t.depth = 1 << 20
	t.barrierSeen = true
	t.barrierCount = 1 << 20
	t.vmInstrs = -1
	t.iterStack = append(t.iterStack[:0], poisonWord)[:0]
	t.scratch = Value{Scalar: poisonWord}
	t.retVal = Value{Scalar: poisonWord}
	for i := range t.tmps {
		t.tmps[i] = Value{Scalar: poisonWord}
	}
	t.tmpTop = 0
	if t.vm != nil {
		poisonVM(t.vm)
	}
}

// poisonArena overwrites the granted region of an arena with a sentinel
// — exactly the region reset re-zeroes.
func poisonArena[T any](a *arena[T], sentinel T) {
	fill := func(s []T) {
		for i := range s {
			s[i] = sentinel
		}
	}
	for i := 0; i < a.ci && i < len(a.chunks); i++ {
		fill(a.chunks[i])
	}
	if a.ci < len(a.chunks) {
		fill(a.chunks[a.ci][:a.used])
	}
}

// poisonVM scribbles the stale-by-contract VM stacks: registers, lvals
// and the truncated portions of the frame stacks. Every engine writes
// these before reading them; poisoning proves it.
func poisonVM(vm *vmState) {
	for i := range vm.regs {
		vm.regs[i] = Value{Scalar: poisonWord}
	}
	for i := range vm.lvs {
		vm.lvs[i] = lval{wIdx: -424242, vecIdx: -424242}
	}
	for i := range vm.slotStack {
		vm.slotStack[i] = nil
	}
	vm.slotStack = vm.slotStack[:0]
	vm.frames = vm.frames[:0]
	vm.pending = vm.pending[:0]
}
