package exec

import "sync"

// lockstep is the deterministic scheduler for work-groups that run one
// goroutine per thread (barrier-using kernels, and any launch with race
// checking on). Exactly one thread of the group executes at a time — the
// baton holder — and at every scheduling point (a thread blocking at a
// barrier, finishing, or a barrier round releasing) the baton passes to
// the lowest-numbered runnable thread. The result is one fixed, legal
// OpenCL interleaving: threads run in work-item order between barriers,
// so atomic operations, shared-memory effects, race reports and
// divergence verdicts are identical on every run of the same launch —
// the property the campaign result cache, the shard/merge pipeline and
// the differential oracle all rest on. Work-group *fan-out* parallelism
// (Options.Workers) is untouched: it schedules whole groups, each with
// its own lockstep.
type lockstep struct {
	mu    sync.Mutex
	state []lsState
	// turn holds one buffered token per thread; a send grants the baton.
	// Buffering decouples granting from the grantee's blocking state (a
	// thread released from a barrier consumes its token after it wakes).
	turn []chan struct{}
}

type lsState uint8

const (
	lsReady   lsState = iota // runnable, waiting for the baton
	lsBlocked                // parked at a barrier
	lsDone                   // finished (normally or by error)
)

func newLockstep(n int) *lockstep {
	ls := &lockstep{state: make([]lsState, n), turn: make([]chan struct{}, n)}
	for i := range ls.turn {
		ls.turn[i] = make(chan struct{}, 1)
	}
	return ls
}

// reset rearms a pooled scheduler for a fresh n-thread group: every
// thread starts ready, and any token left buffered by an aborted round
// is drained so a stale grant cannot leak into the new group.
func (ls *lockstep) reset(n int) {
	if cap(ls.state) < n {
		ls.state = make([]lsState, n)
		old := ls.turn
		ls.turn = make([]chan struct{}, n)
		copy(ls.turn, old)
	}
	ls.state = ls.state[:n]
	clear(ls.state)
	ls.turn = ls.turn[:n]
	for i, ch := range ls.turn {
		if ch == nil {
			ls.turn[i] = make(chan struct{}, 1)
			continue
		}
		select {
		case <-ch:
		default:
		}
	}
}

// grantLocked passes the baton to the lowest-numbered ready thread.
// Callers hold mu. With no ready thread it does nothing: either every
// thread is done (group over) or all non-done threads are parked at a
// barrier, whose release will re-grant. The send is non-blocking:
// before an abort exactly one token is ever outstanding, so the
// buffered channel always has room; after an abort (when threads run
// free of the baton and may retire concurrently) a grant can target a
// thread that already holds an unconsumed token, and dropping the
// duplicate — rather than blocking while holding mu — keeps the
// scheduler deadlock-free.
func (ls *lockstep) grantLocked() {
	for i, s := range ls.state {
		if s == lsReady {
			select {
			case ls.turn[i] <- struct{}{}:
			default:
			}
			return
		}
	}
}

// start hands the baton to thread 0 (every thread begins ready).
func (ls *lockstep) start() {
	ls.mu.Lock()
	ls.grantLocked()
	ls.mu.Unlock()
}

// waitTurn parks until the baton arrives (or the failure domain aborts —
// after an abort scheduling order no longer matters, the group's verdict
// is already fixed).
func (ls *lockstep) waitTurn(i int, abort <-chan struct{}) {
	select {
	case <-ls.turn[i]:
	case <-abort:
	}
}

// block parks thread i at a barrier and passes the baton on. Called by
// the baton holder before it blocks.
func (ls *lockstep) block(i int) {
	ls.mu.Lock()
	ls.state[i] = lsBlocked
	ls.grantLocked()
	ls.mu.Unlock()
}

// readyAll marks every barrier-parked thread runnable again without
// granting; the caller — still holding the baton — grants when it next
// yields. Used by the barrier release paths.
func (ls *lockstep) readyAll() {
	ls.mu.Lock()
	for i, s := range ls.state {
		if s == lsBlocked {
			ls.state[i] = lsReady
		}
	}
	ls.mu.Unlock()
}

// yield re-queues the running thread i and passes the baton to the
// lowest-numbered ready thread (possibly i itself). Called by the last
// arriver of a barrier round after releasing the round, so the new round
// starts from thread 0, not from the arrival order's tail.
func (ls *lockstep) yield(i int, abort <-chan struct{}) {
	ls.mu.Lock()
	ls.state[i] = lsReady
	ls.grantLocked()
	ls.mu.Unlock()
	ls.waitTurn(i, abort)
}

// finish retires thread i and passes the baton on.
func (ls *lockstep) finish(i int) {
	ls.mu.Lock()
	ls.state[i] = lsDone
	ls.grantLocked()
	ls.mu.Unlock()
}
