package exec

import (
	"fmt"
	"sync"

	"clfuzz/internal/ast"
)

// barrier implements the OpenCL work-group collective barrier with
// divergence detection: all participating threads must arrive at the same
// syntactic barrier having executed the same number of enclosing loop
// iterations, and no thread may exit the kernel while others wait
// (paper §3.1 "Barrier divergence").
type barrier struct {
	group *groupCtx

	mu           sync.Mutex
	participants int
	arrived      int
	release      chan struct{}
	token        barrierToken
	haveToken    bool
	fence        uint64
}

// barrierToken identifies a dynamic barrier instance: the syntactic call
// site plus a digest of the enclosing loop iteration counters.
type barrierToken struct {
	node  ast.Node
	iters uint64
}

func newBarrier(n int, g *groupCtx) *barrier {
	return &barrier{group: g, participants: n}
}

// reset rearms a pooled barrier for a fresh group. The release channel is
// allocated lazily by the first parker, so single-thread groups — the
// common sequential shape — never allocate one at all.
func (b *barrier) reset(n int, g *groupCtx) {
	b.group = g
	b.participants = n
	b.arrived = 0
	b.release = nil
	b.token = barrierToken{}
	b.haveToken = false
	b.fence = 0
}

// await blocks until every live participant arrives. It returns a
// DivergenceError if threads arrive with mismatched tokens, or the
// machine's error if the run is aborted while waiting. self is the
// caller's linearized local id, its identity to the group's lockstep
// scheduler: arriving threads hand the baton on before parking, and a
// released round resumes its threads in work-item order.
func (b *barrier) await(tok barrierToken, fence uint64, self int) error {
	b.mu.Lock()
	if b.arrived == 0 {
		b.token = tok
		b.haveToken = true
		b.fence = fence
	} else if b.group.m.opts.CheckRaces && b.token != tok {
		b.mu.Unlock()
		return &DivergenceError{Msg: "threads arrived at distinct dynamic barriers"}
	}
	b.arrived++
	if b.arrived == b.participants {
		// Last arriver: apply fence effects to the race checker, then
		// release the round.
		b.group.clearRaces(b.fence | fence)
		b.arrived = 0
		b.haveToken = false
		rel := b.release
		b.release = nil
		b.mu.Unlock()
		if ls := b.group.ls; ls != nil {
			// Mark the parked threads runnable, wake them, and restart
			// the round from the lowest-numbered thread (not from this
			// arrival order's tail).
			ls.readyAll()
			if rel != nil {
				close(rel)
			}
			ls.yield(self, b.group.dom.abort)
		} else if rel != nil {
			close(rel)
		}
		return nil
	}
	// The release channel is lazy: the first parker of a round allocates
	// it, and a round with no parkers (single participant) never does.
	if b.release == nil {
		b.release = make(chan struct{})
	}
	rel := b.release
	b.mu.Unlock()
	if ls := b.group.ls; ls != nil {
		ls.block(self)
	}
	select {
	case <-rel:
		if ls := b.group.ls; ls != nil {
			ls.waitTurn(self, b.group.dom.abort)
		}
		return nil
	case <-b.group.dom.abort:
		if err := b.group.dom.err; err != nil {
			return err
		}
		return &CrashError{Msg: "aborted while waiting at barrier"}
	}
}

// quit removes a normally finishing thread from the barrier. If every
// remaining participant is blocked at a barrier that this thread will never
// reach, that is barrier divergence.
func (b *barrier) quit() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.participants--
	if b.participants > 0 && b.arrived == b.participants {
		if b.group.m.opts.CheckRaces {
			return &DivergenceError{Msg: fmt.Sprintf("%d threads waiting at a barrier another thread exited around", b.arrived)}
		}
		// Without checking enabled, release the stragglers so the
		// machine does not deadlock (real GPUs exhibit arbitrary
		// behaviour here; we choose release-and-continue).
		b.group.clearRaces(b.fence)
		b.arrived = 0
		b.haveToken = false
		rel := b.release
		b.release = nil
		if ls := b.group.ls; ls != nil {
			// The released stragglers become runnable; the baton reaches
			// them when the quitting thread finishes.
			ls.readyAll()
		}
		if rel != nil {
			close(rel)
		}
	}
	return nil
}

// quitErr removes an erroring thread; stragglers are woken via the group's
// failure-domain abort channel, so only the participant count needs
// adjusting.
func (b *barrier) quitErr() {
	b.mu.Lock()
	b.participants--
	b.mu.Unlock()
}
