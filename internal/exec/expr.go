package exec

import (
	"fmt"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
)

func (t *thread) evalExpr(e ast.Expr) (Value, error) {
	if err := t.step(); err != nil {
		return Value{}, err
	}
	switch ex := e.(type) {
	case *ast.IntLit:
		st, ok := ex.Type().(*cltypes.Scalar)
		if !ok {
			st = cltypes.TInt
		}
		return scalarValue(ex.Val, st), nil

	case *ast.VarRef:
		if c := t.lookup(ex.Name); c != nil {
			if err := t.noteAccess(c, false, false); err != nil {
				return Value{}, err
			}
			return loadCell(c)
		}
		if v, ok := predefinedConst(ex.Name); ok {
			return scalarValue(v, cltypes.TUInt), nil
		}
		return Value{}, fmt.Errorf("exec: undefined variable %q", ex.Name)

	case *ast.Unary:
		return t.evalUnary(ex)

	case *ast.Binary:
		return t.evalBinary(ex)

	case *ast.AssignExpr:
		return t.evalAssign(ex)

	case *ast.Cond:
		cv, err := t.evalExpr(ex.C)
		if err != nil {
			return Value{}, err
		}
		var branch ast.Expr
		if cv.isTrue() {
			branch = ex.T
		} else {
			branch = ex.F
		}
		v, err := t.evalExpr(branch)
		if err != nil {
			return Value{}, err
		}
		if rt, ok := ex.Type().(*cltypes.Scalar); ok {
			if _, isS := v.T.(*cltypes.Scalar); isS {
				return convertScalar(v, rt), nil
			}
		}
		return v, nil

	case *ast.Call:
		return t.evalCall(ex)

	case *ast.Index:
		lv, err := t.evalLV(ex)
		if err != nil {
			return Value{}, err
		}
		if lv.c != nil {
			if err := t.noteAccess(lv.c, false, false); err != nil {
				return Value{}, err
			}
		}
		return lv.load()

	case *ast.Member:
		lv, err := t.evalLV(ex)
		if err != nil {
			return Value{}, err
		}
		if lv.c != nil {
			if err := t.noteAccess(lv.c, false, false); err != nil {
				return Value{}, err
			}
		}
		return lv.load()

	case *ast.Swizzle:
		bv, err := t.evalExpr(ex.Base)
		if err != nil {
			return Value{}, err
		}
		vt, ok := bv.T.(*cltypes.Vector)
		if !ok {
			return Value{}, fmt.Errorf("exec: swizzle of non-vector %s", bv.T)
		}
		idx := cltypes.SwizzleIndices(ex.Sel)
		if len(idx) == 1 {
			return scalarValue(bv.Vec[idx[0]], vt.Elem), nil
		}
		out := make([]uint64, len(idx))
		for i, j := range idx {
			out[i] = bv.Vec[j]
		}
		return Value{T: cltypes.VecOf(vt.Elem, len(idx)), Vec: out}, nil

	case *ast.VecLit:
		var comps []uint64
		for _, el := range ex.Elems {
			v, err := t.evalExpr(el)
			if err != nil {
				return Value{}, err
			}
			switch vt := v.T.(type) {
			case *cltypes.Scalar:
				comps = append(comps, cltypes.Convert(v.Scalar, vt, ex.VT.Elem))
			case *cltypes.Vector:
				comps = append(comps, v.Vec...)
			default:
				return Value{}, fmt.Errorf("exec: bad vector literal element %s", v.T)
			}
		}
		if len(comps) == 1 && ex.VT.Len > 1 {
			splat := make([]uint64, ex.VT.Len)
			for i := range splat {
				splat[i] = comps[0]
			}
			comps = splat
		}
		if len(comps) != ex.VT.Len {
			return Value{}, fmt.Errorf("exec: vector literal arity mismatch")
		}
		return Value{T: ex.VT, Vec: comps}, nil

	case *ast.Cast:
		v, err := t.evalExpr(ex.X)
		if err != nil {
			return Value{}, err
		}
		switch to := ex.To.(type) {
		case *cltypes.Scalar:
			return convertScalar(v, to), nil
		case *cltypes.Vector:
			if vv, ok := v.T.(*cltypes.Vector); ok && vv.Equal(to) {
				return v, nil
			}
			if vs, ok := v.T.(*cltypes.Scalar); ok {
				splat := make([]uint64, to.Len)
				c := cltypes.Convert(v.Scalar, vs, to.Elem)
				for i := range splat {
					splat[i] = c
				}
				return Value{T: to, Vec: splat}, nil
			}
			return Value{}, fmt.Errorf("exec: bad vector cast from %s", v.T)
		case *cltypes.Pointer:
			if _, ok := v.T.(*cltypes.Pointer); ok {
				return Value{T: to, Ptr: v.Ptr}, nil
			}
			return Value{T: to}, nil // null constant
		}
		return Value{}, fmt.Errorf("exec: bad cast to %s", ex.To)
	}
	return Value{}, fmt.Errorf("exec: unknown expression %T", e)
}

func predefinedConst(name string) (uint64, bool) {
	switch name {
	case "CLK_LOCAL_MEM_FENCE":
		return 1, true
	case "CLK_GLOBAL_MEM_FENCE":
		return 2, true
	}
	return 0, false
}

func (t *thread) evalUnary(ex *ast.Unary) (Value, error) {
	switch ex.Op {
	case ast.AddrOf:
		p, err := t.lvPtr(ex.X)
		if err != nil {
			return Value{}, err
		}
		return Value{T: ex.Type(), Ptr: p}, nil
	case ast.Deref:
		v, err := t.evalExpr(ex.X)
		if err != nil {
			return Value{}, err
		}
		target := v.Ptr.Target()
		if target == nil {
			return Value{}, &CrashError{Msg: "null or dangling pointer dereference"}
		}
		if err := t.noteAccess(target, false, false); err != nil {
			return Value{}, err
		}
		return loadCell(target)
	case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
		lv, err := t.evalLV(ex.X)
		if err != nil {
			return Value{}, err
		}
		if lv.c != nil && lv.c.Shared {
			if err := t.noteAccess(lv.c, true, false); err != nil {
				return Value{}, err
			}
		}
		old, err := lv.load()
		if err != nil {
			return Value{}, err
		}
		st, ok := old.T.(*cltypes.Scalar)
		if !ok {
			return Value{}, fmt.Errorf("exec: ++/-- on %s", old.T)
		}
		var nv uint64
		if ex.Op == ast.PreInc || ex.Op == ast.PostInc {
			nv = cltypes.Add(old.Scalar, 1, st)
		} else {
			nv = cltypes.Sub(old.Scalar, 1, st)
		}
		if err := lv.store(scalarValue(nv, st)); err != nil {
			return Value{}, err
		}
		if ex.Op == ast.PostInc || ex.Op == ast.PostDec {
			return scalarValue(old.Scalar, st), nil
		}
		return scalarValue(nv, st), nil
	}
	// Value-level unary operators.
	v, err := t.evalExpr(ex.X)
	if err != nil {
		return Value{}, err
	}
	switch vt := v.T.(type) {
	case *cltypes.Scalar:
		switch ex.Op {
		case ast.Neg:
			rt := ex.Type().(*cltypes.Scalar)
			return scalarValue(cltypes.Neg(cltypes.Convert(v.Scalar, vt, rt), rt), rt), nil
		case ast.Pos:
			rt := ex.Type().(*cltypes.Scalar)
			return convertScalar(v, rt), nil
		case ast.BitNot:
			rt := ex.Type().(*cltypes.Scalar)
			return scalarValue(cltypes.Not(cltypes.Convert(v.Scalar, vt, rt), rt), rt), nil
		case ast.LogNot:
			return boolValue(!v.isTrue()), nil
		}
	case *cltypes.Vector:
		out := make([]uint64, vt.Len)
		for i, c := range v.Vec {
			switch ex.Op {
			case ast.Neg:
				out[i] = cltypes.Neg(c, vt.Elem)
			case ast.Pos:
				out[i] = c
			case ast.BitNot:
				out[i] = cltypes.Not(c, vt.Elem)
			case ast.LogNot:
				if cltypes.Trunc(c, vt.Elem) == 0 {
					out[i] = mask(vt.Elem) // component-wise !: -1 for true
				} else {
					out[i] = 0
				}
			}
		}
		rt := ex.Type().(*cltypes.Vector)
		return Value{T: rt, Vec: out}, nil
	case *cltypes.Pointer:
		if ex.Op == ast.LogNot {
			return boolValue(v.Ptr.IsNull()), nil
		}
	}
	return Value{}, fmt.Errorf("exec: invalid unary %s on %s", ex.Op, v.T)
}

// mask returns the all-ones pattern of t (the OpenCL "true" for vector
// comparison results).
func mask(t *cltypes.Scalar) uint64 { return cltypes.Trunc(^uint64(0), t) }

func (t *thread) evalBinary(ex *ast.Binary) (Value, error) {
	if ex.Op == ast.Comma {
		lv, err := t.evalExpr(ex.L)
		if err != nil {
			return Value{}, err
		}
		rv, err := t.evalExpr(ex.R)
		if err != nil {
			return Value{}, err
		}
		_ = lv
		// Figure 2(f): Oclgrind mishandled the comma operator; the model
		// makes the pair evaluate to zero instead of the right operand.
		if t.m.opts.Defects.Has(bugs.WCComma) {
			if rt, ok := rv.T.(*cltypes.Scalar); ok {
				return scalarValue(0, rt), nil
			}
		}
		return rv, nil
	}
	if ex.Op == ast.LAnd || ex.Op == ast.LOr {
		if _, ok := ex.Type().(*cltypes.Vector); !ok {
			// Scalar logical operators short-circuit.
			lv, err := t.evalExpr(ex.L)
			if err != nil {
				return Value{}, err
			}
			if ex.Op == ast.LAnd && !lv.isTrue() {
				return boolValue(false), nil
			}
			if ex.Op == ast.LOr && lv.isTrue() {
				return boolValue(true), nil
			}
			rv, err := t.evalExpr(ex.R)
			if err != nil {
				return Value{}, err
			}
			return boolValue(rv.isTrue()), nil
		}
	}
	lv, err := t.evalExpr(ex.L)
	if err != nil {
		return Value{}, err
	}
	rv, err := t.evalExpr(ex.R)
	if err != nil {
		return Value{}, err
	}
	// Pointer comparisons.
	if _, ok := lv.T.(*cltypes.Pointer); ok {
		eq := lv.Ptr.Target() == rv.Ptr.Target()
		if ex.Op == ast.EQ {
			return boolValue(eq), nil
		}
		return boolValue(!eq), nil
	}
	return t.applyBinary(ex.Op, lv, rv, ex.Type())
}

// applyBinary computes a (possibly vector) binary operation with the result
// type determined by sema.
func (t *thread) applyBinary(op ast.BinOp, lv, rv Value, rt cltypes.Type) (Value, error) {
	if vt, ok := rt.(*cltypes.Vector); ok {
		lc, err := vecComponents(lv, vt)
		if err != nil {
			return Value{}, err
		}
		rc, err := vecComponents(rv, vt)
		if err != nil {
			return Value{}, err
		}
		// The element type on which the operation is computed: for
		// comparisons the result is a signed mask but the comparison
		// itself happens at the operand element type (taken from whichever
		// operand is the vector — signedness matters).
		opElem := vt.Elem
		if op.IsComparison() || op.IsLogical() {
			if ovt, ok := lv.T.(*cltypes.Vector); ok {
				opElem = ovt.Elem
			} else if ovt, ok := rv.T.(*cltypes.Vector); ok {
				opElem = ovt.Elem
			}
		}
		out := make([]uint64, vt.Len)
		for i := range out {
			r, err := scalarBinOp(op, lc[i], rc[i], opElem, opElem)
			if err != nil {
				return Value{}, err
			}
			if op.IsComparison() || op.IsLogical() {
				if r != 0 {
					out[i] = mask(vt.Elem)
				}
			} else {
				out[i] = cltypes.Trunc(r, vt.Elem)
			}
		}
		return Value{T: vt, Vec: out}, nil
	}
	st, ok := rt.(*cltypes.Scalar)
	if !ok {
		return Value{}, fmt.Errorf("exec: bad binary result type %s", rt)
	}
	ls, lok := lv.T.(*cltypes.Scalar)
	rs, rok := rv.T.(*cltypes.Scalar)
	if !lok || !rok {
		return Value{}, fmt.Errorf("exec: bad binary operands %s, %s", lv.T, rv.T)
	}
	if op.IsComparison() {
		ct := cltypes.UsualArith(ls, rs)
		a := cltypes.Convert(lv.Scalar, ls, ct)
		b := cltypes.Convert(rv.Scalar, rs, ct)
		r, err := scalarBinOp(op, a, b, ct, ct)
		if err != nil {
			return Value{}, err
		}
		return scalarValue(r, st), nil
	}
	if op == ast.Shl || op == ast.Shr {
		pl := cltypes.Promote(ls)
		a := cltypes.Convert(lv.Scalar, ls, pl)
		r, err := shiftOp(op, a, rv.Scalar, pl, rs)
		if err != nil {
			return Value{}, err
		}
		return scalarValue(r, st), nil
	}
	a := cltypes.Convert(lv.Scalar, ls, st)
	b := cltypes.Convert(rv.Scalar, rs, st)
	r, err := scalarBinOp(op, a, b, st, st)
	if err != nil {
		return Value{}, err
	}
	return scalarValue(r, st), nil
}

// vecComponents extracts components from a vector or splats a scalar.
func vecComponents(v Value, vt *cltypes.Vector) ([]uint64, error) {
	switch t := v.T.(type) {
	case *cltypes.Vector:
		return v.Vec, nil
	case *cltypes.Scalar:
		out := make([]uint64, vt.Len)
		c := cltypes.Convert(v.Scalar, t, vt.Elem)
		for i := range out {
			out[i] = c
		}
		return out, nil
	}
	return nil, fmt.Errorf("exec: cannot widen %s to %s", v.T, vt)
}

// scalarBinOp computes op on two values already converted to type t.
// Division and modulo by values that would be undefined in C are total here
// with safe-math fallback semantics: the generator only emits them through
// safe wrappers, and the benchmarks guard their divisors, so the fallback
// never changes the meaning of a well-defined program.
func scalarBinOp(op ast.BinOp, a, b uint64, t, bt *cltypes.Scalar) (uint64, error) {
	switch op {
	case ast.Add:
		return cltypes.Add(a, b, t), nil
	case ast.Sub:
		return cltypes.Sub(a, b, t), nil
	case ast.Mul:
		return cltypes.Mul(a, b, t), nil
	case ast.Div:
		return cltypes.Div(a, b, t), nil
	case ast.Mod:
		return cltypes.Mod(a, b, t), nil
	case ast.And:
		return cltypes.And(a, b, t), nil
	case ast.Or:
		return cltypes.Or(a, b, t), nil
	case ast.Xor:
		return cltypes.Xor(a, b, t), nil
	case ast.Shl:
		return cltypes.Shl(a, b, t, bt), nil
	case ast.Shr:
		return cltypes.Shr(a, b, t, bt), nil
	case ast.EQ:
		return cltypes.CmpEQ(a, b, t), nil
	case ast.NE:
		return 1 - cltypes.CmpEQ(a, b, t), nil
	case ast.LT:
		return cltypes.CmpLT(a, b, t), nil
	case ast.LE:
		return cltypes.CmpLE(a, b, t), nil
	case ast.GT:
		return cltypes.CmpLT(b, a, t), nil
	case ast.GE:
		return cltypes.CmpLE(b, a, t), nil
	case ast.LAnd:
		if cltypes.Trunc(a, t) != 0 && cltypes.Trunc(b, t) != 0 {
			return 1, nil
		}
		return 0, nil
	case ast.LOr:
		if cltypes.Trunc(a, t) != 0 || cltypes.Trunc(b, t) != 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("exec: unknown binary operator %v", op)
}

func shiftOp(op ast.BinOp, a, b uint64, t, bt *cltypes.Scalar) (uint64, error) {
	if op == ast.Shl {
		return cltypes.Shl(a, b, t, bt), nil
	}
	return cltypes.Shr(a, b, t, bt), nil
}

func (t *thread) evalAssign(ex *ast.AssignExpr) (Value, error) {
	lv, err := t.evalLV(ex.LHS)
	if err != nil {
		return Value{}, err
	}
	rv, err := t.evalExpr(ex.RHS)
	if err != nil {
		return Value{}, err
	}
	var result Value
	if ex.Op == ast.Assign {
		result = rv
	} else {
		old, err := lv.load()
		if err != nil {
			return Value{}, err
		}
		result, err = t.applyBinary(ex.Op.BinOp(), old, rv, compoundType(lv.typ(), rv.T))
		if err != nil {
			return Value{}, err
		}
	}
	// Defect models that drop stores or crash (Figures 1(d) and 2(c)).
	drop, err := t.defectiveStore(ex)
	if err != nil {
		return Value{}, err
	}
	if drop {
		return result, nil
	}
	if lv.c != nil && lv.c.Shared {
		if err := t.noteAccess(lv.c, true, false); err != nil {
			return Value{}, err
		}
	}
	if err := lv.store(result); err != nil {
		return Value{}, err
	}
	// Struct-copy defect models (Figures 1(b) and the §6 struct problems):
	// corrupt the destination after an otherwise successful copy.
	if st, ok := lv.typ().(*cltypes.StructT); ok && !st.IsUnion && lv.c != nil {
		t.corruptStructCopy(lv.c, st)
	}
	return lv.load()
}

// compoundType computes the intermediate type of a compound assignment.
func compoundType(lt cltypes.Type, rt cltypes.Type) cltypes.Type {
	if vt, ok := lt.(*cltypes.Vector); ok {
		return vt
	}
	ls, lok := lt.(*cltypes.Scalar)
	rs, rok := rt.(*cltypes.Scalar)
	if lok && rok {
		return cltypes.UsualArith(ls, rs)
	}
	return lt
}

// defectiveStore implements the barrier-related store defect models.
// Stores of the exact Figure 2(c)/1(d) shapes (through a dereferenced
// pointer parameter, or an arrow member of a pointer parameter) trigger
// deterministically; the generated-kernel analogue (arrow-member stores in
// CLsmith code, which passes the globals struct by pointer everywhere) is
// hash-gated so that campaign rates match the paper's tables rather than
// firing on every barrier kernel.
func (t *thread) defectiveStore(ex *ast.AssignExpr) (bool, error) {
	if ex.Op != ast.Assign || t.depth == 0 || !t.barrierSeen {
		return false, nil
	}
	derefParam := false
	if u, ok := ex.LHS.(*ast.Unary); ok && u.Op == ast.Deref {
		if vr, ok := u.X.(*ast.VarRef); ok && t.isParam(vr.Name) {
			derefParam = true
		}
	}
	arrowParam := false
	if m, ok := ex.LHS.(*ast.Member); ok && m.Arrow {
		if vr, ok := m.Base.(*ast.VarRef); ok && t.isParam(vr.Name) {
			arrowParam = true
		}
	}
	if !derefParam && !arrowParam {
		return false, nil
	}
	d := t.m.opts.Defects
	// Figure 1(d), config 17: stores through a pointer-to-struct parameter
	// are lost once a barrier has executed.
	if d.Has(bugs.WCStructPtrWriteBarrier) && arrowParam {
		return true, nil
	}
	if t.m.opts.HasFwdDecl {
		// Figure 2(c), configs 12-/13-: non-leader threads lose stores
		// through pointer parameters after a barrier.
		if d.Has(bugs.WCBarrierFwdDecl) && t.lidLinear() != 0 {
			if derefParam || t.m.hashGate(0xf2c, 8) {
				return true, nil
			}
		}
		// Figure 2(c), configs 14-/15-: the same trigger crashes with a
		// segmentation fault.
		if d.Has(bugs.CrashBarrierFwdDecl) {
			if derefParam || t.m.hashGate(0xf2d, 2) {
				return false, &CrashError{Msg: "segmentation fault in barrier-split store"}
			}
		}
	}
	return false, nil
}

// corruptStructCopy applies the struct-assignment defect models to a just-
// stored struct destination.
func (t *thread) corruptStructCopy(dst *Cell, st *cltypes.StructT) {
	d := t.m.opts.Defects
	// Figure 1(b), configs 10-/11-: with Nx == 1, a struct copy loses
	// array element 7.
	if d.Has(bugs.WCStructCopyNx1) && t.m.nd.Global[0] == 1 {
		for i, f := range st.Fields {
			if at, ok := f.Type.(*cltypes.Array); ok && at.Len > 7 {
				if _, ok := at.Elem.(*cltypes.Scalar); ok {
					dst.Kids[i].Kids[7].storeScalar(0)
				}
			}
		}
	}
	// §6 struct problems (configs 7/8 and older drivers): hash-gated loss
	// of the last field of structs containing nested aggregates.
	if d.Has(bugs.WCStructDeep) && t.m.hashGate(0x57de, 3) {
		hasAgg := false
		for _, f := range st.Fields {
			switch f.Type.(type) {
			case *cltypes.Array, *cltypes.StructT:
				hasAgg = true
			}
		}
		if hasAgg && len(st.Fields) > 0 {
			last := dst.Kids[len(st.Fields)-1]
			if _, ok := last.Typ.(*cltypes.Scalar); ok {
				last.storeScalar(0)
			}
		}
	}
}
