package exec

import (
	"fmt"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
)

// evalExpr evaluates e into *out. Results are always written with a full
// struct assignment, so callers may reuse one Value as scratch across many
// calls (the out-parameter style keeps the 96-byte Value struct from being
// copied once per level of the recursive evaluator — the dominant cost of
// the tree-walking interpreter before this shape was adopted).
func (t *thread) evalExpr(e ast.Expr, out *Value) error {
	if err := t.step(); err != nil {
		return err
	}
	switch ex := e.(type) {
	case *ast.IntLit:
		st, ok := ex.Type().(*cltypes.Scalar)
		if !ok {
			st = cltypes.TInt
		}
		*out = scalarValue(ex.Val, st)
		return nil

	case *ast.VarRef:
		if c := t.lookupRef(ex); c != nil {
			if t.m.opts.CheckRaces {
				if err := t.noteAccess(c, false, false); err != nil {
					return err
				}
			}
			// Inline scalar load: private cells (and any cell during a
			// single-goroutine launch) need no atomics and no dispatch.
			if sc, ok := c.Typ.(*cltypes.Scalar); ok && (t.m.unshared || !c.Shared) {
				*out = Value{T: sc, Scalar: c.Val}
				return nil
			}
			return loadCell(c, t.m.unshared, out)
		}
		if v, ok := predefinedConst(ex.Name); ok {
			*out = scalarValue(v, cltypes.TUInt)
			return nil
		}
		return fmt.Errorf("exec: undefined variable %q", ex.Name)

	case *ast.Unary:
		return t.evalUnary(ex, out)

	case *ast.Binary:
		return t.evalBinary(ex, out)

	case *ast.AssignExpr:
		return t.evalAssign(ex, out)

	case *ast.Cond:
		if err := t.evalExpr(ex.C, out); err != nil {
			return err
		}
		var branch ast.Expr
		if out.isTrue() {
			branch = ex.T
		} else {
			branch = ex.F
		}
		if err := t.evalExpr(branch, out); err != nil {
			return err
		}
		if rt, ok := ex.Type().(*cltypes.Scalar); ok {
			if _, isS := out.T.(*cltypes.Scalar); isS {
				*out = convertScalar(out, rt)
			}
		}
		return nil

	case *ast.Call:
		return t.evalCall(ex, out)

	case *ast.Index:
		lv, err := t.evalLV(ex)
		if err != nil {
			return err
		}
		if t.m.opts.CheckRaces {
			if err := t.noteLVAccess(lv, false); err != nil {
				return err
			}
		}
		return lv.load(out)

	case *ast.Member:
		lv, err := t.evalLV(ex)
		if err != nil {
			return err
		}
		if t.m.opts.CheckRaces {
			if err := t.noteLVAccess(lv, false); err != nil {
				return err
			}
		}
		return lv.load(out)

	case *ast.Swizzle:
		if err := t.evalExpr(ex.Base, out); err != nil {
			return err
		}
		vt, ok := out.T.(*cltypes.Vector)
		if !ok {
			return fmt.Errorf("exec: swizzle of non-vector %s", out.T)
		}
		idx := cltypes.SwizzleIndices(ex.Sel)
		if len(idx) == 1 {
			*out = scalarValue(out.Vec[idx[0]], vt.Elem)
			return nil
		}
		sw := make([]uint64, len(idx))
		for i, j := range idx {
			sw[i] = out.Vec[j]
		}
		*out = Value{T: cltypes.VecOf(vt.Elem, len(idx)), Vec: sw}
		return nil

	case *ast.VecLit:
		var comps []uint64
		var el Value
		for _, elem := range ex.Elems {
			if err := t.evalExpr(elem, &el); err != nil {
				return err
			}
			switch vt := el.T.(type) {
			case *cltypes.Scalar:
				comps = append(comps, cltypes.Convert(el.Scalar, vt, ex.VT.Elem))
			case *cltypes.Vector:
				comps = append(comps, el.Vec...)
			default:
				return fmt.Errorf("exec: bad vector literal element %s", el.T)
			}
		}
		if len(comps) == 1 && ex.VT.Len > 1 {
			splat := make([]uint64, ex.VT.Len)
			for i := range splat {
				splat[i] = comps[0]
			}
			comps = splat
		}
		if len(comps) != ex.VT.Len {
			return fmt.Errorf("exec: vector literal arity mismatch")
		}
		*out = Value{T: ex.VT, Vec: comps}
		return nil

	case *ast.Cast:
		if err := t.evalExpr(ex.X, out); err != nil {
			return err
		}
		switch to := ex.To.(type) {
		case *cltypes.Scalar:
			*out = convertScalar(out, to)
			return nil
		case *cltypes.Vector:
			if vv, ok := out.T.(*cltypes.Vector); ok && vv.Equal(to) {
				return nil
			}
			if vs, ok := out.T.(*cltypes.Scalar); ok {
				splat := make([]uint64, to.Len)
				c := cltypes.Convert(out.Scalar, vs, to.Elem)
				for i := range splat {
					splat[i] = c
				}
				*out = Value{T: to, Vec: splat}
				return nil
			}
			return fmt.Errorf("exec: bad vector cast from %s", out.T)
		case *cltypes.Pointer:
			if _, ok := out.T.(*cltypes.Pointer); ok {
				*out = Value{T: to, Ptr: out.Ptr}
				return nil
			}
			*out = Value{T: to} // null constant
			return nil
		}
		return fmt.Errorf("exec: bad cast to %s", ex.To)
	}
	return fmt.Errorf("exec: unknown expression %T", e)
}

// noteLVAccess records an lvalue access (cell or flat buffer word) for the
// race checker.
func (t *thread) noteLVAccess(lv lval, write bool) error {
	if w := lv.wordAddr(); w != nil {
		return t.noteWordAccess(w, write, false)
	}
	if lv.c != nil {
		return t.noteAccess(lv.c, write, false)
	}
	return nil
}

func predefinedConst(name string) (uint64, bool) {
	switch name {
	case "CLK_LOCAL_MEM_FENCE":
		return 1, true
	case "CLK_GLOBAL_MEM_FENCE":
		return 2, true
	}
	return 0, false
}

func (t *thread) evalUnary(ex *ast.Unary, out *Value) error {
	switch ex.Op {
	case ast.AddrOf:
		p, err := t.lvPtr(ex.X)
		if err != nil {
			return err
		}
		*out = Value{T: ex.Type(), Ptr: p}
		return nil
	case ast.Deref:
		if err := t.evalExpr(ex.X, out); err != nil {
			return err
		}
		lv, err := t.ptrLV(out.Ptr, "null or dangling pointer dereference")
		if err != nil {
			return err
		}
		if t.m.opts.CheckRaces {
			if err := t.noteLVAccess(lv, false); err != nil {
				return err
			}
		}
		return lv.load(out)
	case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
		lv, err := t.evalLV(ex.X)
		if err != nil {
			return err
		}
		if t.m.opts.CheckRaces {
			if err := t.noteLVAccess(lv, true); err != nil {
				return err
			}
		}
		if err := lv.load(out); err != nil {
			return err
		}
		st, ok := out.T.(*cltypes.Scalar)
		if !ok {
			return fmt.Errorf("exec: ++/-- on %s", out.T)
		}
		old := out.Scalar
		var nv uint64
		if ex.Op == ast.PreInc || ex.Op == ast.PostInc {
			nv = cltypes.Add(old, 1, st)
		} else {
			nv = cltypes.Sub(old, 1, st)
		}
		*out = scalarValue(nv, st)
		if err := lv.store(out); err != nil {
			return err
		}
		if ex.Op == ast.PostInc || ex.Op == ast.PostDec {
			*out = scalarValue(old, st)
		}
		return nil
	}
	// Value-level unary operators.
	if err := t.evalExpr(ex.X, out); err != nil {
		return err
	}
	switch vt := out.T.(type) {
	case *cltypes.Scalar:
		switch ex.Op {
		case ast.Neg:
			rt := ex.Type().(*cltypes.Scalar)
			*out = scalarValue(cltypes.Neg(cltypes.Convert(out.Scalar, vt, rt), rt), rt)
			return nil
		case ast.Pos:
			rt := ex.Type().(*cltypes.Scalar)
			*out = convertScalar(out, rt)
			return nil
		case ast.BitNot:
			rt := ex.Type().(*cltypes.Scalar)
			*out = scalarValue(cltypes.Not(cltypes.Convert(out.Scalar, vt, rt), rt), rt)
			return nil
		case ast.LogNot:
			*out = boolValue(!out.isTrue())
			return nil
		}
	case *cltypes.Vector:
		res := make([]uint64, vt.Len)
		for i, c := range out.Vec {
			switch ex.Op {
			case ast.Neg:
				res[i] = cltypes.Neg(c, vt.Elem)
			case ast.Pos:
				res[i] = c
			case ast.BitNot:
				res[i] = cltypes.Not(c, vt.Elem)
			case ast.LogNot:
				if cltypes.Trunc(c, vt.Elem) == 0 {
					res[i] = mask(vt.Elem) // component-wise !: -1 for true
				} else {
					res[i] = 0
				}
			}
		}
		rt := ex.Type().(*cltypes.Vector)
		*out = Value{T: rt, Vec: res}
		return nil
	case *cltypes.Pointer:
		if ex.Op == ast.LogNot {
			*out = boolValue(out.Ptr.IsNull())
			return nil
		}
	}
	return fmt.Errorf("exec: invalid unary %s on %s", ex.Op, out.T)
}

// mask returns the all-ones pattern of t (the OpenCL "true" for vector
// comparison results).
func mask(t *cltypes.Scalar) uint64 { return cltypes.Trunc(^uint64(0), t) }

func (t *thread) evalBinary(ex *ast.Binary, out *Value) error {
	if ex.Op == ast.Comma {
		if err := t.evalExpr(ex.L, out); err != nil {
			return err
		}
		if err := t.evalExpr(ex.R, out); err != nil {
			return err
		}
		// Figure 2(f): Oclgrind mishandled the comma operator; the model
		// makes the pair evaluate to zero instead of the right operand.
		if t.m.opts.Defects.Has(bugs.WCComma) {
			if rt, ok := out.T.(*cltypes.Scalar); ok {
				*out = scalarValue(0, rt)
			}
		}
		return nil
	}
	if ex.Op == ast.LAnd || ex.Op == ast.LOr {
		if _, ok := ex.Type().(*cltypes.Vector); !ok {
			// Scalar logical operators short-circuit.
			if err := t.evalExpr(ex.L, out); err != nil {
				return err
			}
			if ex.Op == ast.LAnd && !out.isTrue() {
				*out = boolValue(false)
				return nil
			}
			if ex.Op == ast.LOr && out.isTrue() {
				*out = boolValue(true)
				return nil
			}
			if err := t.evalExpr(ex.R, out); err != nil {
				return err
			}
			*out = boolValue(out.isTrue())
			return nil
		}
	}
	var lv, rv *Value
	d := t.tmpTop
	if d+2 <= len(t.tmps) {
		t.tmpTop = d + 2
		lv, rv = &t.tmps[d], &t.tmps[d+1]
	} else {
		lv, rv = new(Value), new(Value) // pathological nesting depth
	}
	err := t.evalBinaryOperands(ex, lv, rv, out)
	t.tmpTop = d
	return err
}

// evalBinaryOperands evaluates both operands into the supplied temporaries
// and applies the operator.
func (t *thread) evalBinaryOperands(ex *ast.Binary, lv, rv, out *Value) error {
	if err := t.evalExpr(ex.L, lv); err != nil {
		return err
	}
	if err := t.evalExpr(ex.R, rv); err != nil {
		return err
	}
	// Pointer comparisons.
	if _, ok := lv.T.(*cltypes.Pointer); ok {
		eq := samePtrTarget(lv.Ptr, rv.Ptr)
		if ex.Op == ast.EQ {
			*out = boolValue(eq)
		} else {
			*out = boolValue(!eq)
		}
		return nil
	}
	return t.applyBinary(ex.Op, lv, rv, ex.Type(), out)
}

// applyBinary computes a (possibly vector) binary operation with the result
// type determined by sema. out must not alias lv or rv.
func (t *thread) applyBinary(op ast.BinOp, lv, rv *Value, rt cltypes.Type, out *Value) error {
	if vt, ok := rt.(*cltypes.Vector); ok {
		lc, err := vecComponents(lv, vt)
		if err != nil {
			return err
		}
		rc, err := vecComponents(rv, vt)
		if err != nil {
			return err
		}
		// The element type on which the operation is computed: for
		// comparisons the result is a signed mask but the comparison
		// itself happens at the operand element type (taken from whichever
		// operand is the vector — signedness matters).
		opElem := vt.Elem
		if op.IsComparison() || op.IsLogical() {
			if ovt, ok := lv.T.(*cltypes.Vector); ok {
				opElem = ovt.Elem
			} else if ovt, ok := rv.T.(*cltypes.Vector); ok {
				opElem = ovt.Elem
			}
		}
		res := make([]uint64, vt.Len)
		for i := range res {
			r, err := scalarBinOp(op, lc[i], rc[i], opElem, opElem)
			if err != nil {
				return err
			}
			if op.IsComparison() || op.IsLogical() {
				if r != 0 {
					res[i] = mask(vt.Elem)
				}
			} else {
				res[i] = cltypes.Trunc(r, vt.Elem)
			}
		}
		*out = Value{T: vt, Vec: res}
		return nil
	}
	st, ok := rt.(*cltypes.Scalar)
	if !ok {
		return fmt.Errorf("exec: bad binary result type %s", rt)
	}
	ls, lok := lv.T.(*cltypes.Scalar)
	rs, rok := rv.T.(*cltypes.Scalar)
	if !lok || !rok {
		return fmt.Errorf("exec: bad binary operands %s, %s", lv.T, rv.T)
	}
	if op.IsComparison() {
		ct := cltypes.UsualArith(ls, rs)
		a := cltypes.Convert(lv.Scalar, ls, ct)
		b := cltypes.Convert(rv.Scalar, rs, ct)
		r, err := scalarBinOp(op, a, b, ct, ct)
		if err != nil {
			return err
		}
		*out = scalarValue(r, st)
		return nil
	}
	if op == ast.Shl || op == ast.Shr {
		pl := cltypes.Promote(ls)
		a := cltypes.Convert(lv.Scalar, ls, pl)
		r, err := shiftOp(op, a, rv.Scalar, pl, rs)
		if err != nil {
			return err
		}
		*out = scalarValue(r, st)
		return nil
	}
	a := cltypes.Convert(lv.Scalar, ls, st)
	b := cltypes.Convert(rv.Scalar, rs, st)
	r, err := scalarBinOp(op, a, b, st, st)
	if err != nil {
		return err
	}
	*out = scalarValue(r, st)
	return nil
}

// vecComponents extracts components from a vector or splats a scalar.
func vecComponents(v *Value, vt *cltypes.Vector) ([]uint64, error) {
	switch t := v.T.(type) {
	case *cltypes.Vector:
		return v.Vec, nil
	case *cltypes.Scalar:
		out := make([]uint64, vt.Len)
		c := cltypes.Convert(v.Scalar, t, vt.Elem)
		for i := range out {
			out[i] = c
		}
		return out, nil
	}
	return nil, fmt.Errorf("exec: cannot widen %s to %s", v.T, vt)
}

// scalarBinOp computes op on two values already converted to type t.
// Division and modulo by values that would be undefined in C are total here
// with safe-math fallback semantics: the generator only emits them through
// safe wrappers, and the benchmarks guard their divisors, so the fallback
// never changes the meaning of a well-defined program.
func scalarBinOp(op ast.BinOp, a, b uint64, t, bt *cltypes.Scalar) (uint64, error) {
	switch op {
	case ast.Add:
		return cltypes.Add(a, b, t), nil
	case ast.Sub:
		return cltypes.Sub(a, b, t), nil
	case ast.Mul:
		return cltypes.Mul(a, b, t), nil
	case ast.Div:
		return cltypes.Div(a, b, t), nil
	case ast.Mod:
		return cltypes.Mod(a, b, t), nil
	case ast.And:
		return cltypes.And(a, b, t), nil
	case ast.Or:
		return cltypes.Or(a, b, t), nil
	case ast.Xor:
		return cltypes.Xor(a, b, t), nil
	case ast.Shl:
		return cltypes.Shl(a, b, t, bt), nil
	case ast.Shr:
		return cltypes.Shr(a, b, t, bt), nil
	case ast.EQ:
		return cltypes.CmpEQ(a, b, t), nil
	case ast.NE:
		return 1 - cltypes.CmpEQ(a, b, t), nil
	case ast.LT:
		return cltypes.CmpLT(a, b, t), nil
	case ast.LE:
		return cltypes.CmpLE(a, b, t), nil
	case ast.GT:
		return cltypes.CmpLT(b, a, t), nil
	case ast.GE:
		return cltypes.CmpLE(b, a, t), nil
	case ast.LAnd:
		if cltypes.Trunc(a, t) != 0 && cltypes.Trunc(b, t) != 0 {
			return 1, nil
		}
		return 0, nil
	case ast.LOr:
		if cltypes.Trunc(a, t) != 0 || cltypes.Trunc(b, t) != 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("exec: unknown binary operator %v", op)
}

func shiftOp(op ast.BinOp, a, b uint64, t, bt *cltypes.Scalar) (uint64, error) {
	if op == ast.Shl {
		return cltypes.Shl(a, b, t, bt), nil
	}
	return cltypes.Shr(a, b, t, bt), nil
}

func (t *thread) evalAssign(ex *ast.AssignExpr, out *Value) error {
	return t.evalAssignInner(ex, out)
}

// evalAssignInner performs the assignment; out == nil marks statement
// position, where the expression's value is discarded and the post-store
// reload (which exists only to produce that value) is skipped.
func (t *thread) evalAssignInner(ex *ast.AssignExpr, out *Value) error {
	var rv *Value
	d := t.tmpTop
	if d < len(t.tmps) {
		t.tmpTop = d + 1
		rv = &t.tmps[d]
	} else {
		rv = new(Value)
	}
	err := t.evalAssignStore(ex, rv, out)
	t.tmpTop = d
	return err
}

// evalCompound folds the destination's current value into rv for a
// compound assignment, using tmp-stack slots for the operands.
func (t *thread) evalCompound(ex *ast.AssignExpr, lv lval, rv *Value) error {
	var old, combined *Value
	d := t.tmpTop
	if d+2 <= len(t.tmps) {
		t.tmpTop = d + 2
		old, combined = &t.tmps[d], &t.tmps[d+1]
	} else {
		old, combined = new(Value), new(Value)
	}
	err := lv.load(old)
	if err == nil {
		err = t.applyBinary(ex.Op.BinOp(), old, rv, compoundType(lv.typ(), rv.T), combined)
	}
	if err == nil {
		*rv = *combined
	}
	t.tmpTop = d
	return err
}

// evalAssignStore resolves the destination, computes the stored value into
// the rv temporary, and applies the store plus its defect models.
func (t *thread) evalAssignStore(ex *ast.AssignExpr, rv, out *Value) error {
	lv, err := t.evalLV(ex.LHS)
	if err != nil {
		return err
	}
	if err := t.evalExpr(ex.RHS, rv); err != nil {
		return err
	}
	if ex.Op != ast.Assign {
		if err := t.evalCompound(ex, lv, rv); err != nil {
			return err
		}
	}
	// Defect models that drop stores or crash (Figures 1(d) and 2(c)).
	drop, err := t.defectiveStore(ex)
	if err != nil {
		return err
	}
	if drop {
		if out != nil {
			*out = *rv
		}
		return nil
	}
	if t.m.opts.CheckRaces {
		if err := t.noteLVAccess(lv, true); err != nil {
			return err
		}
	}
	if err := lv.store(rv); err != nil {
		return err
	}
	// Struct-copy defect models (Figures 1(b) and the §6 struct problems):
	// corrupt the destination after an otherwise successful copy.
	if st, ok := lv.typ().(*cltypes.StructT); ok && !st.IsUnion && lv.c != nil {
		t.corruptStructCopy(lv.c, st)
	}
	if out == nil {
		return nil
	}
	return lv.load(out)
}

// compoundType computes the intermediate type of a compound assignment.
func compoundType(lt cltypes.Type, rt cltypes.Type) cltypes.Type {
	if vt, ok := lt.(*cltypes.Vector); ok {
		return vt
	}
	ls, lok := lt.(*cltypes.Scalar)
	rs, rok := rt.(*cltypes.Scalar)
	if lok && rok {
		return cltypes.UsualArith(ls, rs)
	}
	return lt
}

// defectiveStore implements the barrier-related store defect models.
// Stores of the exact Figure 2(c)/1(d) shapes (through a dereferenced
// pointer parameter, or an arrow member of a pointer parameter) trigger
// deterministically; the generated-kernel analogue (arrow-member stores in
// CLsmith code, which passes the globals struct by pointer everywhere) is
// hash-gated so that campaign rates match the paper's tables rather than
// firing on every barrier kernel.
func (t *thread) defectiveStore(ex *ast.AssignExpr) (bool, error) {
	if ex.Op != ast.Assign || t.depth == 0 || !t.barrierSeen {
		return false, nil
	}
	derefParam := false
	if u, ok := ex.LHS.(*ast.Unary); ok && u.Op == ast.Deref {
		if vr, ok := u.X.(*ast.VarRef); ok && t.isParam(vr.Name) {
			derefParam = true
		}
	}
	arrowParam := false
	if m, ok := ex.LHS.(*ast.Member); ok && m.Arrow {
		if vr, ok := m.Base.(*ast.VarRef); ok && t.isParam(vr.Name) {
			arrowParam = true
		}
	}
	return t.storeDefect(ex.Op, derefParam, arrowParam)
}

// storeDefect is the engine-shared tail of the store defect models: the
// tree walker derives the two syntactic trigger flags per store, the VM
// reads them from the lowered StoreInfo.
func (t *thread) storeDefect(op ast.AssignOp, derefParam, arrowParam bool) (bool, error) {
	if op != ast.Assign || t.depth == 0 || !t.barrierSeen {
		return false, nil
	}
	if !derefParam && !arrowParam {
		return false, nil
	}
	d := t.m.opts.Defects
	// Figure 1(d), config 17: stores through a pointer-to-struct parameter
	// are lost once a barrier has executed.
	if d.Has(bugs.WCStructPtrWriteBarrier) && arrowParam {
		return true, nil
	}
	if t.m.opts.HasFwdDecl {
		// Figure 2(c), configs 12-/13-: non-leader threads lose stores
		// through pointer parameters after a barrier.
		if d.Has(bugs.WCBarrierFwdDecl) && t.lidLinear() != 0 {
			if derefParam || t.m.hashGate(0xf2c, 8) {
				return true, nil
			}
		}
		// Figure 2(c), configs 14-/15-: the same trigger crashes with a
		// segmentation fault.
		if d.Has(bugs.CrashBarrierFwdDecl) {
			if derefParam || t.m.hashGate(0xf2d, 2) {
				return false, &CrashError{Msg: "segmentation fault in barrier-split store"}
			}
		}
	}
	return false, nil
}

// corruptStructCopy applies the struct-assignment defect models to a just-
// stored struct destination.
func (t *thread) corruptStructCopy(dst *Cell, st *cltypes.StructT) {
	d := t.m.opts.Defects
	// Figure 1(b), configs 10-/11-: with Nx == 1, a struct copy loses
	// array element 7.
	if d.Has(bugs.WCStructCopyNx1) && t.m.nd.Global[0] == 1 {
		for i, f := range st.Fields {
			if at, ok := f.Type.(*cltypes.Array); ok && at.Len > 7 {
				if _, ok := at.Elem.(*cltypes.Scalar); ok {
					dst.Kids[i].Kids[7].storeScalar(0, t.m.unshared)
				}
			}
		}
	}
	// §6 struct problems (configs 7/8 and older drivers): hash-gated loss
	// of the last field of structs containing nested aggregates.
	if d.Has(bugs.WCStructDeep) && t.m.hashGate(0x57de, 3) {
		hasAgg := false
		for _, f := range st.Fields {
			switch f.Type.(type) {
			case *cltypes.Array, *cltypes.StructT:
				hasAgg = true
			}
		}
		if hasAgg && len(st.Fields) > 0 {
			last := dst.Kids[len(st.Fields)-1]
			if _, ok := last.Typ.(*cltypes.Scalar); ok {
				last.storeScalar(0, t.m.unshared)
			}
		}
	}
}
