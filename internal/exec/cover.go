package exec

import (
	"math/bits"
	"sync/atomic"
)

// Edge coverage. The register VM collects AFL-style edge coverage in its
// dispatch loop when Options.Cover is set: every taken branch — the false
// arm of OpBranchFalse and the short-circuit jump of OpBoolTest — records
// one bit keyed by (function index, branch pc, taken target pc), and the
// three static defect-trigger shapes the lowerer resolves (stores through
// dereferenced or arrow-member pointer parameters, dead-loop exits with a
// LoopExit record) bump per-site hit counters. Coverage observes execution
// without steering it: outputs, fuel accounting and verdicts are
// byte-identical with coverage on or off, and a nil Cover skips every
// recording branch so coverage-off runs pay only a predictable-branch
// nil check. The tree-walking reference engine records nothing — callers
// that force it fall back to coverage-off and must tolerate an empty map.
//
// The edge space is a fixed CoverBits-entry bitmap shared by every
// program: the same (fn, pc, target) coordinates in two different kernels
// intentionally collide, so coverage saturates quickly on the shapes the
// generator emits all the time and novel bits come only from unusual
// control-flow layouts. That is the feedback signal internal/corpus ranks
// its corpus by. All updates are commutative (bitwise OR, counter adds),
// so a map filled by parallel work-groups is byte-identical to the serial
// schedule.

// CoverBits is the size of the shared edge bitmap. Power of two so edge
// hashes reduce by masking.
const CoverBits = 1 << 16

const coverWords = CoverBits / 64

// Defect-trigger site indices for CoverMap site counters.
const (
	CoverSiteDerefStore = iota // store through a dereferenced pointer parameter
	CoverSiteArrowStore        // store through an arrow member of a pointer parameter
	CoverSiteDeadLoop          // zero-iteration exit of a dead-loop-defect for loop
	CoverNumSites
)

// CoverMap accumulates edge and defect-site coverage across any number of
// launches. The zero value is ready to use. All methods are safe for
// concurrent use; updates are atomic and commutative, so accumulation
// order never changes the final map.
type CoverMap struct {
	bits  [coverWords]uint64
	sites [CoverNumSites]uint64
}

// edgeIndex mixes a branch identity into the bitmap. The inputs are
// lowering-time constants (function index, branch pc, taken target pc),
// so the index is stable across processes, engines-with-coverage, and
// shards.
func edgeIndex(fn, pc, target int32) uint32 {
	h := uint32(fn)*0x9E3779B1 + uint32(pc)*0x85EBCA6B + uint32(target)*0xC2B2AE35
	h ^= h >> 15
	h *= 0x2C1B3C6D
	h ^= h >> 12
	return h & (CoverBits - 1)
}

// hitEdge sets the bit for one taken branch. go.mod targets Go 1.22, so
// the atomic OR is a CAS loop (mirroring Stats.noteThreadSteps).
func (c *CoverMap) hitEdge(fn, pc, target int32) {
	i := edgeIndex(fn, pc, target)
	w, mask := &c.bits[i>>6], uint64(1)<<(i&63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// hitSite bumps one defect-trigger site counter.
func (c *CoverMap) hitSite(site int) {
	atomic.AddUint64(&c.sites[site], 1)
}

// Count returns the number of distinct edges set.
func (c *CoverMap) Count() int {
	n := 0
	for i := range c.bits {
		n += bits.OnesCount64(atomic.LoadUint64(&c.bits[i]))
	}
	return n
}

// Edges returns the sorted indices of every set edge bit.
func (c *CoverMap) Edges() []uint32 {
	var out []uint32
	for i := range c.bits {
		w := atomic.LoadUint64(&c.bits[i])
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, uint32(i<<6+b))
			w &^= 1 << b
		}
	}
	return out
}

// Has reports whether the given edge bit is set.
func (c *CoverMap) Has(edge uint32) bool {
	if edge >= CoverBits {
		return false
	}
	return atomic.LoadUint64(&c.bits[edge>>6])&(1<<(edge&63)) != 0
}

// AddEdges sets the given edge bits (indices as returned by Edges) and
// returns how many of them were new to this map. Out-of-range indices are
// ignored. This is the replay/merge primitive: a result-cache hit replays
// the stored launch delta, and shard merging unions per-shard edge sets,
// both through this one method so the paths cannot diverge.
func (c *CoverMap) AddEdges(edges []uint32) int {
	novel := 0
	for _, e := range edges {
		if e >= CoverBits {
			continue
		}
		w, mask := &c.bits[e>>6], uint64(1)<<(e&63)
		for {
			old := atomic.LoadUint64(w)
			if old&mask != 0 {
				break
			}
			if atomic.CompareAndSwapUint64(w, old, old|mask) {
				novel++
				break
			}
		}
	}
	return novel
}

// SiteHits returns the defect-trigger site counters.
func (c *CoverMap) SiteHits() [CoverNumSites]uint64 {
	var out [CoverNumSites]uint64
	for i := range out {
		out[i] = atomic.LoadUint64(&c.sites[i])
	}
	return out
}

// AddSites adds site-hit counts (as returned by SiteHits) into this map.
func (c *CoverMap) AddSites(s [CoverNumSites]uint64) {
	for i, v := range s {
		if v != 0 {
			atomic.AddUint64(&c.sites[i], v)
		}
	}
}

// Merge ORs another map's edges and adds its site counts into this one,
// returning the number of novel edges contributed.
func (c *CoverMap) Merge(o *CoverMap) int {
	novel := c.AddEdges(o.Edges())
	c.AddSites(o.SiteHits())
	return novel
}
