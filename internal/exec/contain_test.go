package exec_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/exec"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// compileTest parses and checks src, returning the program and options
// seeded with the front end's static facts.
func compileTest(t *testing.T, src string) (args exec.Args, opts exec.Options, runIt func(opts exec.Options) error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, info, err := sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	nd := nd1(8, 4)
	out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
	args = exec.Args{"out": {Buf: out}}
	opts = exec.Options{
		NoBarrier:  !info.HasBarrier,
		NoAtomics:  !info.HasAtomic,
		HasFwdDecl: info.HasFwdDecl,
	}
	return args, opts, func(opts exec.Options) error { return exec.Run(prog, nd, args, opts) }
}

const plainSrc = `
kernel void k(global ulong *out) {
    out[get_linear_global_id()] = 7UL;
}
`

const barrierSrc = `
kernel void k(global ulong *out) {
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_linear_global_id()] = 7UL;
}
`

// armPanicHook installs a fault hook that panics on every thread, and
// uninstalls it when the test finishes.
func armPanicHook(t *testing.T) {
	t.Helper()
	exec.SetFaultHook(func() { panic("injected evaluator fault") })
	t.Cleanup(func() { exec.SetFaultHook(nil) })
}

// TestPanicContainedOnSequentialPath: an evaluator panic on the
// goroutine-free fast path surfaces as a *CrashError verdict, not a
// process abort.
func TestPanicContainedOnSequentialPath(t *testing.T) {
	armPanicHook(t)
	_, opts, runIt := compileTest(t, plainSrc)
	err := runIt(opts)
	var crash *exec.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want *CrashError", err)
	}
}

// TestPanicContainedOnBarrierPath: a panic on one of a group's thread
// goroutines must retire that thread from the barrier and the lockstep
// schedule — the siblings drain instead of deadlocking — and the launch
// reports the crash.
func TestPanicContainedOnBarrierPath(t *testing.T) {
	armPanicHook(t)
	_, opts, runIt := compileTest(t, barrierSrc)
	if opts.NoBarrier {
		t.Fatal("test kernel unexpectedly barrier-free")
	}
	err := runIt(opts)
	var crash *exec.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want *CrashError", err)
	}
}

// TestPanicContainedOnParallelGroupPath: a panicking group on the
// work-group fan-out pool must not lose the pool worker; every group
// still gets a verdict and the launch reports the crash.
func TestPanicContainedOnParallelGroupPath(t *testing.T) {
	armPanicHook(t)
	_, opts, runIt := compileTest(t, plainSrc)
	opts.Workers = 2
	err := runIt(opts)
	var crash *exec.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want *CrashError", err)
	}
}

// TestPanicContainmentCoexistsWithImmutableAssert: with the immutable-
// program assertion armed, a contained evaluator panic still yields a
// *CrashError — the assertion's own fingerprint check runs afterwards
// and stays quiet for an unmutated program.
func TestPanicContainmentCoexistsWithImmutableAssert(t *testing.T) {
	exec.SetDebugImmutable(true)
	t.Cleanup(func() { exec.SetDebugImmutable(false) })
	armPanicHook(t)
	_, opts, runIt := compileTest(t, plainSrc)
	err := runIt(opts)
	var crash *exec.CrashError
	if !errors.As(err, &crash) {
		t.Fatalf("err = %v, want *CrashError", err)
	}
}

// TestFaultHookCountsThreads pins the hook's placement: it runs once per
// thread, so fault plans can target precise points in a worker's stream.
func TestFaultHookCountsThreads(t *testing.T) {
	var calls atomic.Int64
	exec.SetFaultHook(func() { calls.Add(1) })
	t.Cleanup(func() { exec.SetFaultHook(nil) })
	_, opts, runIt := compileTest(t, plainSrc)
	if err := runIt(opts); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 8 {
		t.Fatalf("hook ran %d times, want 8 (one per thread)", got)
	}
}

// TestRunCanceledContext: a context cancelled before (or during) the
// launch yields *CancelError — the scheduling outcome the campaign layer
// maps to device.Canceled and never records.
func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, opts, runIt := compileTest(t, plainSrc)
	opts.Ctx = ctx
	err := runIt(opts)
	var ce *exec.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CancelError", err)
	}
	// The parallel pool path must also observe it.
	opts.Workers = 2
	if err := runIt(opts); !errors.As(err, &ce) {
		t.Fatalf("parallel err = %v, want *CancelError", err)
	}
}
