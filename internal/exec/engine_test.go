package exec_test

import (
	"fmt"
	"testing"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/code"
	"clfuzz/internal/exec"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// launchEngine compiles src, lowers it, and executes it on the given
// engine, returning the out-buffer contents and the run error.
func launchEngine(t *testing.T, src string, nd exec.NDRange, workers int, engine exec.Engine, fuel int64) ([]uint64, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, info, err := sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	lowered, err := code.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
	args := exec.Args{"out": {Buf: out}}
	runErr := exec.Run(prog, nd, args, exec.Options{
		NoBarrier:  !info.HasBarrier,
		NoAtomics:  !info.HasAtomic,
		HasFwdDecl: info.HasFwdDecl,
		Workers:    workers,
		Fuel:       fuel,
		Code:       lowered,
		Engine:     engine,
	})
	return out.Scalars(), runErr
}

// engineKernels covers constructs beyond the parallel set: user calls
// with aggregates, short-circuit evaluation, ternaries, do-while loops,
// compound assignment, vector swizzles, unions, and pointer arithmetic.
var engineKernels = []struct {
	name string
	src  string
}{
	{"control-flow", `
kernel void k(global ulong *out) {
    ulong acc = 0;
    int i = 0;
    do { acc += (ulong)i; i++; } while (i < 5);
    for (int j = 9; j > 0; j--) {
        if (j == 5) continue;
        if (j == 2) break;
        acc = acc * 3UL + (ulong)j;
    }
    while (i < 20) { i += 3; }
    acc += (i > 10 && acc > 0UL) ? 7UL : 11UL;
    acc += (i < 0 || acc == 0UL) ? 13UL : 17UL;
    out[get_linear_global_id()] = acc + (ulong)(1, 2, 3);
}
`},
	{"calls-and-aggregates", `
struct P { int x; int y; };
int weigh(struct P p, int k) {
    if (k == 0) { return p.x; }
    return p.y * weigh(p, k - 1);
}
kernel void k(global ulong *out) {
    struct P p = { (int)get_global_id(0) + 1, 3 };
    int arr[3] = { 2, 4, 6 };
    arr[1] += weigh(p, 2);
    p.x = arr[1];
    struct P q = p;
    out[get_linear_global_id()] = (ulong)q.x + (ulong)q.y;
}
`},
	{"vectors", `
kernel void k(global ulong *out) {
    int4 v = (int4)(1, 2, 3, (int)get_global_id(0));
    int4 w = v * v + (int4)(5);
    w.x = -w.y;
    int2 pair = w.xw;
    ulong h = vcrc(0UL, convert_uint4(w));
    out[get_linear_global_id()] = h + (ulong)(uint)(pair.x + pair.y) + (ulong)max(3, clamp(v.z, 0, 2));
}
`},
	{"unions-and-pointers", `
struct Half { uchar lo; uchar hi; };
union U { uint wide; struct Half parts; };
kernel void k(global ulong *out) {
    union U u = { 0x1234u + (uint)get_global_id(0) };
    uint lo = (uint)u.parts.lo;
    ulong tmp = 5UL;
    ulong *p = &tmp;
    *p += (ulong)lo;
    size_t gid = get_linear_global_id();
    out[gid] = crc64(tmp, (long)u.wide);
}
`},
}

// TestVMMatchesTree pins the central engine invariant at the exec level:
// the register VM and the tree walker produce byte-identical buffer
// contents and identical errors on every kernel shape, including under
// tight fuel (identical fuel accounting) and work-group fan-out.
func TestVMMatchesTree(t *testing.T) {
	exec.SetDebugImmutable(true)
	t.Cleanup(func() { exec.SetDebugImmutable(false) })
	nds := []exec.NDRange{
		{Global: [3]int{16, 1, 1}, Local: [3]int{4, 1, 1}},
		{Global: [3]int{8, 2, 1}, Local: [3]int{2, 2, 1}},
	}
	all := append(append([]struct{ name, src string }{}, parallelKernels...), engineKernels...)
	for _, k := range all {
		for _, nd := range nds {
			for _, fuel := range []int64{0, 700} {
				want, wantErr := launchEngine(t, k.src, nd, 1, exec.EngineTree, fuel)
				got, gotErr := launchEngine(t, k.src, nd, 1, exec.EngineVM, fuel)
				label := fmt.Sprintf("%s nd=%v fuel=%d", k.name, nd.Global, fuel)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("%s: vm err %v, tree err %v", label, gotErr, wantErr)
				}
				if gotErr != nil && gotErr.Error() != wantErr.Error() {
					t.Fatalf("%s: vm err %q, tree err %q", label, gotErr, wantErr)
				}
				if wantErr == nil {
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s: out[%d] = %d, want %d", label, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}
