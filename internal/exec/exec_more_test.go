package exec_test

import (
	"testing"

	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/exec"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// runWith compiles and executes src with the given defect set, returning
// the out buffer or the error.
func runWith(t *testing.T, src string, nd exec.NDRange, opts exec.Options) ([]uint64, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, info, err := sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	opts.HasFwdDecl = info.HasFwdDecl
	out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
	err = exec.Run(prog, nd, exec.Args{"out": {Buf: out}}, opts)
	if err != nil {
		return nil, err
	}
	return out.Scalars(), nil
}

// TestSwizzleWrite: single-component swizzles are assignable; multi-
// component reads reorder.
func TestSwizzleWrite(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    int4 v = (int4)(1, 2, 3, 4);
    v.y = 20;
    v.s3 = 40;
    int2 r = (v).s31;
    out[get_linear_global_id()] = (ulong)(uint)(r.x * 100 + r.y);
}
`
	got, err := runWith(t, src, nd1(1, 1), exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4020 {
		t.Errorf("out = %d, want 4020 (s3=40, y=20)", got[0])
	}
}

// TestConvertBuiltins: explicit conversions between vector element types.
func TestConvertBuiltins(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    char2 c = (char2)(((char)(-1)), ((char)5));
    int2 wide = convert_int2(c);
    uint2 u = convert_uint2(wide);
    out[get_linear_global_id()] = (ulong)u.x + (ulong)u.y;
}
`
	got, err := runWith(t, src, nd1(1, 1), exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0xffffffff) + 5
	if got[0] != want {
		t.Errorf("out = %#x, want %#x", got[0], want)
	}
}

// TestAtomicsVariety exercises every atomic the subset supports within one
// group, then checks the deterministic final state.
func TestAtomicsVariety(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    local uint cell[6];
    size_t lid = get_linear_local_id();
    if (lid == 0UL) {
        for (int i = 0; i < 6; i++) { cell[i] = 8u; }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    atomic_add(&cell[0], 1u);
    atomic_sub(&cell[1], 1u);
    atomic_min(&cell[2], (uint)lid);
    atomic_max(&cell[3], (uint)lid);
    atomic_and(&cell[4], 12u);
    atomic_or(&cell[5], (uint)(1UL << lid));
    barrier(CLK_LOCAL_MEM_FENCE);
    ulong acc = 0UL;
    if (lid == 0UL) {
        for (int i = 0; i < 6; i++) { acc = acc * 100UL + (ulong)cell[i]; }
    }
    out[get_linear_global_id()] = acc;
}
`
	got, err := runWith(t, src, nd1(4, 4), exec.Options{CheckRaces: true})
	if err != nil {
		t.Fatal(err)
	}
	// cell: 8+4=12, 8-4=4, min(8,0..3)=0, max(8,0..3)=8, 8&12&12..=8, 8|0xf=15.
	want := uint64(12)*1e10 + 4*1e8 + 0*1e6 + 8*1e4 + 8*1e2 + 15
	if got[0] != want {
		t.Errorf("atomic final state %d, want %d", got[0], want)
	}
}

// TestCmpXchg: compare-and-exchange succeeds exactly once per value.
func TestCmpXchg(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    local uint c[1];
    if (get_linear_local_id() == 0UL) { c[0] = 0u; }
    barrier(CLK_LOCAL_MEM_FENCE);
    uint old = atomic_cmpxchg(&c[0], 0u, 7u);
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_linear_global_id()] = (ulong)c[0] * 10UL + (ulong)(old == 0u ? 1u : 0u);
}
`
	got, err := runWith(t, src, nd1(4, 4), exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	winners := 0
	for _, v := range got {
		if v%10 == 1 {
			winners++
		}
		if v/10 != 7 {
			t.Errorf("final value %d, want 7", v/10)
		}
	}
	if winners != 1 {
		t.Errorf("%d threads won the cmpxchg, want exactly 1", winners)
	}
}

// TestBarrierLoopTokens: the same syntactic barrier reached with equal
// iteration counts is fine; the divergence checker accepts balanced loops.
func TestBarrierLoopTokens(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    local uint a[2];
    for (int i = 0; i < 3; i++) {
        a[get_linear_local_id()] = (uint)i;
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_linear_global_id()] = (ulong)a[0];
}
`
	got, err := runWith(t, src, nd1(2, 2), exec.Options{CheckRaces: true})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Errorf("out = %d, want 2", got[0])
	}
}

// TestPointerComparisons: pointer equality follows identity, and null
// tests work.
func TestPointerComparisons(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    int a = 1;
    int b = 1;
    int *p = &a;
    int *q = &a;
    int *r = &b;
    int *z = 0;
    ulong acc = 0UL;
    if (p == q) { acc += 1UL; }
    if (p != r) { acc += 2UL; }
    if (z == 0) { acc += 4UL; }
    if (p != 0) { acc += 8UL; }
    out[get_linear_global_id()] = acc;
}
`
	got, err := runWith(t, src, nd1(1, 1), exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 15 {
		t.Errorf("pointer comparison mask = %d, want 15", got[0])
	}
}

// TestNullDerefCrashes: dereferencing null is a crash-class error (the
// kernels that segfault in the paper's campaigns).
func TestNullDerefCrashes(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    int *p = 0;
    out[get_linear_global_id()] = (ulong)*p;
}
`
	_, err := runWith(t, src, nd1(1, 1), exec.Options{})
	if _, ok := err.(*exec.CrashError); !ok {
		t.Errorf("expected CrashError, got %v", err)
	}
}

// TestRecursionBounded: unbounded recursion hits the stack guard, not the
// Go stack.
func TestRecursionBounded(t *testing.T) {
	src := `
int f(int n);
int f(int n) { return f(n + 1); }
kernel void k(global ulong *out) {
    out[get_linear_global_id()] = (ulong)f(0);
}
`
	_, err := runWith(t, src, nd1(1, 1), exec.Options{})
	if err == nil {
		t.Fatal("unbounded recursion terminated")
	}
	switch err.(type) {
	case *exec.CrashError, *exec.TimeoutError:
	default:
		t.Errorf("expected crash or timeout, got %T %v", err, err)
	}
}

// TestCommaDefect: the WCComma defect makes (a, b) evaluate to zero; a
// healthy executor returns b.
func TestCommaDefect(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    int a = 5;
    out[get_linear_global_id()] = (ulong)(uint)((a , 9));
}
`
	got, err := runWith(t, src, nd1(1, 1), exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Errorf("healthy comma = %d, want 9", got[0])
	}
	got, err = runWith(t, src, nd1(1, 1), exec.Options{Defects: bugs.WCComma})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("defective comma = %d, want 0 (Figure 2(f) model)", got[0])
	}
}

// TestStructCharFirstDefect: only qualifying struct shapes are corrupted.
func TestStructCharFirstDefect(t *testing.T) {
	src := `
struct Q { char a; char b; short c; };

kernel void k(global ulong *out) {
    struct Q q = { 1, 1, 1 };
    out[get_linear_global_id()] = (ulong)(q.a + q.b + q.c);
}
`
	got, err := runWith(t, src, nd1(1, 1), exec.Options{Defects: bugs.WCStructCharFirst})
	if err != nil {
		t.Fatal(err)
	}
	// b is a char followed by a larger member (short c): b reads 0.
	// a is a char followed by char: unaffected.
	if got[0] != 2 {
		t.Errorf("out = %d, want 2 (only the char-before-larger field zeroes)", got[0])
	}
}

// TestFuelStats: the executor reports the per-thread step high-water mark.
func TestFuelStats(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    int s = 0;
    for (int i = 0; i < 50; i++) { s += i; }
    out[get_linear_global_id()] = (ulong)(uint)s;
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err = sema.Check(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := exec.NewBuffer(cltypes.TULong, 2)
	st := &exec.Stats{}
	err = exec.Run(prog, nd1(2, 2), exec.Args{"out": {Buf: out}}, exec.Options{Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxThreadSteps < 100 || st.MaxThreadSteps > 100000 {
		t.Errorf("implausible step count %d", st.MaxThreadSteps)
	}
}

// TestGridValidation: invalid NDRanges are rejected up front.
func TestGridValidation(t *testing.T) {
	bad := []exec.NDRange{
		{Global: [3]int{0, 1, 1}, Local: [3]int{1, 1, 1}},
		{Global: [3]int{5, 1, 1}, Local: [3]int{2, 1, 1}},     // no divide
		{Global: [3]int{512, 1, 1}, Local: [3]int{512, 1, 1}}, // group > 256
	}
	for i, nd := range bad {
		if err := nd.Validate(); err == nil {
			t.Errorf("bad NDRange %d accepted", i)
		}
	}
	good := exec.NDRange{Global: [3]int{8, 4, 2}, Local: [3]int{4, 2, 2}}
	if err := good.Validate(); err != nil {
		t.Errorf("good NDRange rejected: %v", err)
	}
	if good.GlobalLinear() != 64 || good.GroupLinear() != 16 {
		t.Error("linear size computation wrong")
	}
	if g := good.NumGroups(); g != [3]int{2, 2, 1} {
		t.Errorf("NumGroups = %v", g)
	}
}

// TestMultiGroupIsolation: local memory is per work-group.
func TestMultiGroupIsolation(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    local uint a[2];
    a[get_linear_local_id()] = (uint)(get_linear_group_id() + 1UL);
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_linear_global_id()] = (ulong)a[0];
}
`
	got, err := runWith(t, src, nd1(4, 2), exec.Options{CheckRaces: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d (local memory must be per group)", i, got[i], want[i])
		}
	}
}
