package exec

import (
	"fmt"
	"sync/atomic"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
	"clfuzz/internal/code"
)

// Engine selects the expression-evaluation engine of a launch.
type Engine uint8

// Engines. EngineAuto runs the register VM whenever the caller supplies
// a lowered program (Options.Code) and falls back to the tree walker
// otherwise; the two explicit values force one engine for determinism
// testing and for guarding the reference interpreter from rot.
const (
	EngineAuto Engine = iota
	EngineTree
	EngineVM
)

// String returns the flag spelling of the engine.
func (e Engine) String() string {
	switch e {
	case EngineTree:
		return "tree"
	case EngineVM:
		return "vm"
	}
	return "auto"
}

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "tree":
		return EngineTree, nil
	case "vm":
		return EngineVM, nil
	}
	return EngineAuto, fmt.Errorf("exec: unknown engine %q (want tree, vm, or auto)", s)
}

// FuelModel selects the fuel-accounting model of a launch. fuel/v1 is
// tree-exact: the VM charges the same fuel the reference tree walker
// would on every path, so Timeout outcomes — and therefore the paper
// tables — are byte-identical across engines. fuel/v2 runs the fused
// form of the program (see code.Fuse), charging each superinstruction
// the conserved summed cost of the sequence it replaced in a single
// decrement — fuel totals and Timeout outcomes match fuel/v1, while
// dispatch, polling and the fused sequences' temporaries are paid once
// per superinstruction. It is deterministic with itself across
// runs/processes/shards, and identical to fuel/v1 in outputs whenever
// no timeout interrupts a fused sequence mid-flight.
type FuelModel uint8

// Fuel models. FuelAuto defers to the embedding layer's default
// (device.DefaultFuelModel, settable via CLFUZZ_FUEL); the explicit
// values pin one model for determinism suites and the paper tables.
const (
	FuelAuto FuelModel = iota
	FuelV1
	FuelV2
)

// String returns the flag spelling of the fuel model.
func (f FuelModel) String() string {
	switch f {
	case FuelV1:
		return "v1"
	case FuelV2:
		return "v2"
	}
	return "auto"
}

// ParseFuelModel parses a -fuel flag or CLFUZZ_FUEL value.
func ParseFuelModel(s string) (FuelModel, error) {
	switch s {
	case "", "auto":
		return FuelAuto, nil
	case "v1":
		return FuelV1, nil
	case "v2":
		return FuelV2, nil
	}
	return FuelAuto, fmt.Errorf("exec: unknown fuel model %q (want v1, v2, or auto)", s)
}

// SemanticsTag names the evaluation semantics a persisted launch result
// depends on: the resolved engine, the resolved fuel model, and a
// revision prefix bumped whenever either engine's observable behaviour
// changes. The disk result store stamps every entry with this tag and
// never serves an entry written under a different one, so semantics
// changes invalidate stale results by construction instead of by
// deleting store directories. Auto is a legitimate tag value: launch
// results are pinned byte-identical across engines, and an Auto fuel
// model resolves to the embedding layer's default before the key is
// built — but explicit and Auto selections never alias, which keeps the
// engine-comparison suites honest across processes.
func SemanticsTag(e Engine, f FuelModel) string {
	return "sem1/" + e.String() + "/" + f.String()
}

// Process-wide engine counters, reported by EngineCounters: which engine
// executed each launch, and how many bytecode instructions the VM
// dispatched. Campaign tools snapshot them so cross-machine comparisons
// record which engine produced the numbers.
var (
	vmLaunches     atomic.Int64
	treeLaunches   atomic.Int64
	vmInstructions atomic.Int64
	// fuel/v2 slices of the two VM counters above (fuel/v1 is the
	// remainder), so snapshots can show the superinstruction dispatch
	// reduction next to the wall-time win.
	vmLaunchesV2     atomic.Int64
	vmInstructionsV2 atomic.Int64
)

// EngineCounters reports the cumulative per-process engine counters: the
// number of launches executed by the VM and by the tree walker, and the
// total bytecode instructions the VM dispatched.
func EngineCounters() (vmRuns, treeRuns, instructions int64) {
	return vmLaunches.Load(), treeLaunches.Load(), vmInstructions.Load()
}

// FuelCounters splits the VM counters by fuel model: launches and
// dispatched instructions under fuel/v1 (tree-exact costs) and fuel/v2
// (fused superinstructions).
func FuelCounters() (v1Runs, v1Instrs, v2Runs, v2Instrs int64) {
	runs, instrs := vmLaunches.Load(), vmInstructions.Load()
	r2, i2 := vmLaunchesV2.Load(), vmInstructionsV2.Load()
	return runs - r2, instrs - i2, r2, i2
}

// vmFrame is one activation record: the lowered function, its variable
// slots, and the bases of its value/lvalue register windows within the
// shared stacks.
type vmFrame struct {
	fn       *code.Fn
	slots    []*Cell
	regBase  int
	lvBase   int
	slotBase int
	retPC    int
	retDst   int32
	iterBase int
	// retH is the caller's continuation entry under direct-threaded
	// dispatch (see vmthread.go); the switch loop leaves it nil.
	retH *vmEntry
}

// vmPending is a callee frame under construction: OpCallPrep allocates
// it, OpBindArg fills its parameter cells one evaluated argument at a
// time (matching the tree walker's immediate binding), and OpCall
// activates it.
type vmPending struct {
	fn       *code.Fn
	slots    []*Cell
	slotBase int
}

// vmState holds the register stacks of one VM execution. The sequential
// per-group path shares one vmState across the group's threads (they run
// back-to-back on one goroutine), so the stacks amortize across
// work-items; the barrier path gives each thread its own.
type vmState struct {
	regs      []Value
	lvs       []lval
	slotStack []*Cell
	frames    []vmFrame
	pending   []vmPending
	// ts is the direct-threaded dispatcher's shared mutable state,
	// embedded here so a threaded launch allocates nothing extra.
	ts vmTState
}

func (vm *vmState) reset() {
	vm.frames = vm.frames[:0]
	vm.pending = vm.pending[:0]
	vm.slotStack = vm.slotStack[:0]
}

// grabSlots reserves n slot entries on the LIFO slot stack. Frames and
// pending calls release back to their recorded base on return, so the
// stack discipline matches the call structure exactly.
func (vm *vmState) grabSlots(n int) (s []*Cell, base int) {
	base = len(vm.slotStack)
	for len(vm.slotStack) < base+n {
		vm.slotStack = append(vm.slotStack, nil)
	}
	return vm.slotStack[base : base+n : base+n], base
}

func (vm *vmState) ensureRegs(n int) {
	for len(vm.regs) < n {
		vm.regs = append(vm.regs, Value{})
	}
}

func (vm *vmState) ensureLVs(n int) {
	for len(vm.lvs) < n {
		vm.lvs = append(vm.lvs, lval{})
	}
}

// runVMKernel executes the thread's kernel on the register VM. The
// semantics — including fuel accounting, defect models, barrier tokens,
// and every error message — mirror runKernel's tree walk; the lowered
// program pre-resolves names to slots and call targets to indices so the
// dispatch loop never consults the AST.
func (t *thread) runVMKernel() error {
	vm := t.vm
	if vm == nil {
		vm = &vmState{}
		t.vm = vm
	}
	vm.reset()
	p := t.m.code
	kf := p.Fns[p.Kernel]
	slots, slotBase := vm.grabSlots(kf.NumSlots)
	for i, par := range t.m.kernel.Params {
		arg := t.m.args[par.Name]
		c := t.newPrivCell(par.Type)
		if _, ok := par.Type.(*cltypes.Pointer); ok {
			if arg.Buf == nil {
				return fmt.Errorf("exec: kernel argument %q requires a buffer", par.Name)
			}
			if arg.Buf.wordT != nil {
				c.Ptr = Ptr{Flat: arg.Buf}
			} else {
				c.Ptr = Ptr{Slice: arg.Buf.Cells}
			}
		} else if s, ok := par.Type.(*cltypes.Scalar); ok {
			c.Val = cltypes.Trunc(arg.Scalar, s)
		} else {
			return fmt.Errorf("exec: unsupported kernel parameter type %s", par.Type)
		}
		slots[i] = c
	}
	vm.ensureRegs(kf.NumRegs)
	vm.ensureLVs(kf.NumLVs)
	vm.frames = append(vm.frames, vmFrame{
		fn: kf, slots: slots, slotBase: slotBase, retPC: -1, retDst: -1,
	})
	var err error
	if t.m.threaded != nil {
		err = t.vmThreadedLoop(vm)
	} else {
		err = t.vmLoop(vm)
	}
	vmInstructions.Add(t.vmInstrs)
	if t.m.opts.FuelModel == FuelV2 {
		vmInstructionsV2.Add(t.vmInstrs)
	}
	t.vmInstrs = 0
	return err
}

// auxType unwraps a type operand that may be a nil interface.
func auxType(a any) cltypes.Type {
	if a == nil {
		return nil
	}
	return a.(cltypes.Type)
}

// vmLoop is the dispatch loop. Cost accounting matches the tree walker's
// step() calls one for one (see the code package); the abort poll keeps
// the same fuel-derived cadence.
func (t *thread) vmLoop(vm *vmState) error {
	fr := &vm.frames[len(vm.frames)-1]
	ins := fr.fn.Code
	regs := vm.regs[fr.regBase:]
	lvs := vm.lvs[fr.lvBase:]
	unshared := t.m.unshared
	checkRaces := t.m.opts.CheckRaces
	// cov is nil for coverage-off launches: the only cost the hooks add
	// then is a nil check inside the two branch-taken cases.
	cov := t.m.opts.Cover
	// stats is nil outside clbench -opstats runs; the histograms cost
	// one nil check per dispatch when off.
	stats := t.m.opts.OpStats
	var prevOp code.Op
	pc := 0
	for {
		in := &ins[pc]
		t.vmInstrs++
		if stats != nil {
			stats.note(prevOp, in.Op)
			prevOp = in.Op
		}
		if in.Cost != 0 {
			t.fuel -= int64(in.Cost)
			if t.fuel <= 0 {
				return &TimeoutError{Where: "kernel execution"}
			}
			if t.fuel&255 == 0 && t.dom.dead.Load() {
				if err := t.dom.err; err != nil {
					return err
				}
				return errAborted
			}
		}
		switch in.Op {
		case code.OpStep:
			// fuel-only

		case code.OpJump:
			pc = int(in.A)
			continue

		case code.OpBranchFalse:
			if !regs[in.Dst].isTrue() {
				if cov != nil {
					cov.hitEdge(fr.fn.Idx, int32(pc), in.A)
				}
				pc = int(in.A)
				continue
			}

		case code.OpBoolTest:
			v := &regs[in.Dst]
			if in.B == 0 { // &&
				if !v.isTrue() {
					*v = boolValue(false)
					if cov != nil {
						cov.hitEdge(fr.fn.Idx, int32(pc), in.A)
					}
					pc = int(in.A)
					continue
				}
			} else { // ||
				if v.isTrue() {
					*v = boolValue(true)
					if cov != nil {
						cov.hitEdge(fr.fn.Idx, int32(pc), in.A)
					}
					pc = int(in.A)
					continue
				}
			}

		case code.OpBoolFin:
			regs[in.Dst] = boolValue(regs[in.Dst].isTrue())

		case code.OpLoopEnter:
			t.iterStack = append(t.iterStack, 0)

		case code.OpLoopIter:
			t.iterStack[len(t.iterStack)-1]++

		case code.OpLoopExit:
			n := len(t.iterStack)
			iters := t.iterStack[n-1]
			t.iterStack = t.iterStack[:n-1]
			if le, ok := in.Aux.(*code.LoopExit); ok && iters == 0 {
				// The defect-trigger site was reached (a dead-loop-with-
				// barrier shape exited with zero iterations); count it
				// whether or not this configuration arms the defect.
				if cov != nil {
					cov.hitSite(CoverSiteDeadLoop)
				}
				if t.m.opts.Defects.Has(bugs.WCDeadLoopBarrier) && t.lidLinear() != 0 {
					t.vmDeadLoopDefect(le, fr)
				}
			}

		case code.OpReturn:
			rv := regs[in.A]
			if rt, ok := fr.fn.Decl.Ret.(*cltypes.Scalar); ok {
				if _, isS := rv.T.(*cltypes.Scalar); isS {
					rv = convertScalar(&rv, rt)
				}
			}
			done, npc := t.vmReturn(vm, &fr, &ins, &regs, &lvs, rv)
			if done {
				return nil
			}
			pc = npc
			continue

		case code.OpReturnVoid:
			done, npc := t.vmReturn(vm, &fr, &ins, &regs, &lvs, Value{T: cltypes.TVoid})
			if done {
				return nil
			}
			pc = npc
			continue

		case code.OpReturnEnd:
			f := fr.fn.Decl
			var rv Value
			if f.Ret.Equal(cltypes.TVoid) {
				rv = Value{T: cltypes.TVoid}
			} else if rt, ok := f.Ret.(*cltypes.Scalar); ok {
				rv = scalarValue(0, rt)
			} else {
				return fmt.Errorf("exec: function %s fell off the end", f.Name)
			}
			done, npc := t.vmReturn(vm, &fr, &ins, &regs, &lvs, rv)
			if done {
				return nil
			}
			pc = npc
			continue

		case code.OpConst:
			cv := in.Aux.(*code.ConstVal)
			regs[in.Dst] = Value{T: cv.T, Scalar: cv.V}

		case code.OpPredef:
			regs[in.Dst] = scalarValue(uint64(in.A), cltypes.TUInt)

		case code.OpLoadSlot, code.OpLoadGlobal:
			var c *Cell
			if in.Op == code.OpLoadSlot {
				c = fr.slots[in.A]
			} else {
				c = t.m.globalCells[in.A]
			}
			if checkRaces {
				if err := t.noteAccess(c, false, false); err != nil {
					return err
				}
			}
			if sc, ok := c.Typ.(*cltypes.Scalar); ok && (unshared || !c.Shared) {
				regs[in.Dst] = Value{T: sc, Scalar: c.Val}
			} else if err := loadCell(c, unshared, &regs[in.Dst]); err != nil {
				return err
			}

		case code.OpUnary:
			if err := t.vmUnary(ast.UnOp(in.B), auxType(in.Aux), &regs[in.Dst]); err != nil {
				return err
			}

		case code.OpDeref:
			lv, err := t.ptrLV(regs[in.A].Ptr, "null or dangling pointer dereference")
			if err != nil {
				return err
			}
			if checkRaces {
				if err := t.noteLVAccess(lv, false); err != nil {
					return err
				}
			}
			if err := lv.load(&regs[in.Dst]); err != nil {
				return err
			}

		case code.OpIncDec:
			if err := t.vmIncDec(lvs[in.A], ast.UnOp(in.B), &regs[in.Dst]); err != nil {
				return err
			}

		case code.OpAddrLV:
			lv := lvs[in.A]
			if lv.uField != nil || lv.vecIdx >= 0 {
				return fmt.Errorf("exec: cannot take the address of a union field or vector component")
			}
			var p Ptr
			if lv.flat != nil {
				p = Ptr{Flat: lv.flat, Idx: lv.wIdx}
			} else if _, isArr := lv.c.Typ.(*cltypes.Array); isArr {
				p = Ptr{Slice: lv.c.Kids, Idx: 0}
			} else {
				p = Ptr{Cell: lv.c}
			}
			regs[in.Dst] = Value{T: auxType(in.Aux), Ptr: p}

		case code.OpAddrElem:
			blv := lvs[in.A]
			iv := &regs[in.B]
			is := iv.T.(*cltypes.Scalar)
			idx := int(cltypes.AsInt64(iv.Scalar, is))
			if blv.c != nil && blv.uField == nil && blv.vecIdx < 0 {
				if idx < 0 || idx >= len(blv.c.Kids) {
					return &CrashError{Msg: "address of out-of-bounds element"}
				}
				regs[in.Dst] = Value{T: auxType(in.Aux), Ptr: Ptr{Slice: blv.c.Kids, Idx: idx}}
			} else {
				return fmt.Errorf("exec: cannot take element address of view lvalue")
			}

		case code.OpPtrAt:
			iv := &regs[in.B]
			is := iv.T.(*cltypes.Scalar)
			idx := int(cltypes.AsInt64(iv.Scalar, is))
			regs[in.Dst] = Value{T: auxType(in.Aux), Ptr: regs[in.A].Ptr.At(idx)}

		case code.OpBinary:
			bi := in.Aux.(*code.BinInfo)
			lv, rv := &regs[in.A], &regs[in.B]
			if _, ok := lv.T.(*cltypes.Pointer); ok {
				eq := samePtrTarget(lv.Ptr, rv.Ptr)
				if bi.Op == ast.EQ {
					regs[in.Dst] = boolValue(eq)
				} else {
					regs[in.Dst] = boolValue(!eq)
				}
			} else if err := t.applyBinary(bi.Op, lv, rv, bi.RT, &regs[in.Dst]); err != nil {
				return err
			}

		case code.OpComma:
			if t.m.opts.Defects.Has(bugs.WCComma) {
				if rt, ok := regs[in.Dst].T.(*cltypes.Scalar); ok {
					regs[in.Dst] = scalarValue(0, rt)
				}
			}

		case code.OpCondFin:
			if rt, ok := auxType(in.Aux).(*cltypes.Scalar); ok {
				if _, isS := regs[in.Dst].T.(*cltypes.Scalar); isS {
					regs[in.Dst] = convertScalar(&regs[in.Dst], rt)
				}
			}

		case code.OpSwizzle:
			v := &regs[in.A]
			vt, ok := v.T.(*cltypes.Vector)
			if !ok {
				return fmt.Errorf("exec: swizzle of non-vector %s", v.T)
			}
			idx := in.Aux.([]int)
			if len(idx) == 1 {
				regs[in.Dst] = scalarValue(v.Vec[idx[0]], vt.Elem)
			} else {
				sw := make([]uint64, len(idx))
				for i, j := range idx {
					sw[i] = v.Vec[j]
				}
				regs[in.Dst] = Value{T: cltypes.VecOf(vt.Elem, len(idx)), Vec: sw}
			}

		case code.OpVecLit:
			vt := in.Aux.(*cltypes.Vector)
			var comps []uint64
			bad := false
			for i := 0; i < int(in.B); i++ {
				el := &regs[int(in.A)+i]
				switch et := el.T.(type) {
				case *cltypes.Scalar:
					comps = append(comps, cltypes.Convert(el.Scalar, et, vt.Elem))
				case *cltypes.Vector:
					comps = append(comps, el.Vec...)
				default:
					bad = true
				}
				if bad {
					return fmt.Errorf("exec: bad vector literal element %s", el.T)
				}
			}
			if len(comps) == 1 && vt.Len > 1 {
				splat := make([]uint64, vt.Len)
				for i := range splat {
					splat[i] = comps[0]
				}
				comps = splat
			}
			if len(comps) != vt.Len {
				return fmt.Errorf("exec: vector literal arity mismatch")
			}
			regs[in.Dst] = Value{T: vt, Vec: comps}

		case code.OpCast:
			if err := vmCast(&regs[in.Dst], auxType(in.Aux)); err != nil {
				return err
			}

		case code.OpConvert:
			out := &regs[in.Dst]
			switch to := auxType(in.Aux).(type) {
			case *cltypes.Scalar:
				*out = convertScalar(out, to)
			case *cltypes.Vector:
				src := out.T.(*cltypes.Vector)
				vec := make([]uint64, to.Len)
				for i, c := range out.Vec {
					vec[i] = cltypes.Convert(c, src.Elem, to.Elem)
				}
				*out = Value{T: to, Vec: vec}
			default:
				return fmt.Errorf("exec: bad convert result type")
			}

		case code.OpConvertFree:
			if _, ok := regs[in.Dst].T.(*cltypes.Scalar); ok {
				regs[in.Dst] = convertScalar(&regs[in.Dst], in.Aux.(*cltypes.Scalar))
			}

		case code.OpIdBuiltin:
			dim := int(regs[in.A].Scalar)
			regs[in.Dst] = scalarValue(t.idBuiltin(in.Aux.(string), dim), cltypes.TSizeT)

		case code.OpWorkDim:
			regs[in.Dst] = scalarValue(3, cltypes.TUInt)

		case code.OpLinearId:
			var v uint64
			switch in.B {
			case 0:
				v = uint64(t.gidLinear())
			case 1:
				v = uint64(t.lidLinear())
			default:
				v = uint64(t.groupLinear())
			}
			regs[in.Dst] = scalarValue(v, cltypes.TSizeT)

		case code.OpBarrier:
			if t.group == nil {
				return fmt.Errorf("exec: barrier outside kernel execution")
			}
			if t.group.bar == nil {
				return &CrashError{Msg: "barrier reached in barrier-free sequential execution"}
			}
			tok := barrierToken{node: in.Aux.(ast.Node), iters: t.iterDigest()}
			if err := t.group.bar.await(tok, regs[in.A].Scalar, t.lidLinear()); err != nil {
				return err
			}
			t.barrierSeen = true
			t.barrierCount++
			regs[in.Dst] = Value{T: cltypes.TVoid}

		case code.OpCrc64:
			c, v := &regs[in.A], &regs[in.B]
			vs := v.T.(*cltypes.Scalar)
			regs[in.Dst] = scalarValue(crcMix(c.Scalar, cltypes.SExt(v.Scalar, vs)), cltypes.TULong)

		case code.OpVcrc:
			c, v := &regs[in.A], &regs[in.B]
			h := c.Scalar
			for _, comp := range v.Vec {
				h = crcMix(h, comp)
			}
			regs[in.Dst] = scalarValue(h, cltypes.TULong)

		case code.OpAtomic:
			if err := t.vmAtomic(in, regs); err != nil {
				return err
			}

		case code.OpMath:
			if err := t.vmMath(in, regs); err != nil {
				return err
			}

		case code.OpCallPrep:
			if t.depth >= 64 {
				return &CrashError{Msg: "call stack overflow"}
			}
			fn := t.m.code.Fns[in.A]
			s, base := vm.grabSlots(fn.NumSlots)
			vm.pending = append(vm.pending, vmPending{fn: fn, slots: s, slotBase: base})

		case code.OpBindArg:
			p := &vm.pending[len(vm.pending)-1]
			c := t.newPrivCell(in.Aux.(cltypes.Type))
			if err := storeCell(c, &regs[in.A], unshared); err != nil {
				return err
			}
			p.slots[in.B] = c

		case code.OpCall:
			p := vm.pending[len(vm.pending)-1]
			vm.pending = vm.pending[:len(vm.pending)-1]
			regBase := fr.regBase + fr.fn.NumRegs
			lvBase := fr.lvBase + fr.fn.NumLVs
			vm.ensureRegs(regBase + p.fn.NumRegs)
			vm.ensureLVs(lvBase + p.fn.NumLVs)
			vm.frames = append(vm.frames, vmFrame{
				fn: p.fn, slots: p.slots, slotBase: p.slotBase,
				regBase: regBase, lvBase: lvBase,
				retPC: pc + 1, retDst: in.Dst, iterBase: len(t.iterStack),
			})
			t.depth++
			fr = &vm.frames[len(vm.frames)-1]
			ins = fr.fn.Code
			regs = vm.regs[regBase:]
			lvs = vm.lvs[lvBase:]
			pc = 0
			continue

		case code.OpLVSlot:
			lvs[in.Dst] = directLV(fr.slots[in.A], unshared)

		case code.OpLVGlobal:
			lvs[in.Dst] = directLV(t.m.globalCells[in.A], unshared)

		case code.OpLVDeref:
			lv, err := t.ptrLV(regs[in.A].Ptr, "null or dangling pointer dereference")
			if err != nil {
				return err
			}
			lvs[in.Dst] = lv

		case code.OpLVPtrIndex:
			iv := &regs[in.B]
			is, ok := iv.T.(*cltypes.Scalar)
			if !ok {
				return fmt.Errorf("exec: non-scalar index")
			}
			idx := int(cltypes.AsInt64(iv.Scalar, is))
			lv, err := t.ptrLV(regs[in.A].Ptr.At(idx), "out-of-bounds buffer access")
			if err != nil {
				return err
			}
			lvs[in.Dst] = lv

		case code.OpLVIndex:
			iv := &regs[in.B]
			is, ok := iv.T.(*cltypes.Scalar)
			if !ok {
				return fmt.Errorf("exec: non-scalar index")
			}
			idx := int(cltypes.AsInt64(iv.Scalar, is))
			blv := lvs[in.A]
			if blv.uField != nil || blv.vecIdx >= 0 || blv.flat != nil {
				return fmt.Errorf("exec: cannot index a view lvalue")
			}
			if idx < 0 || idx >= len(blv.c.Kids) {
				return &CrashError{Msg: fmt.Sprintf("array index %d out of bounds [0,%d)", idx, len(blv.c.Kids))}
			}
			lvs[in.Dst] = directLV(blv.c.Kids[idx], unshared)

		case code.OpLVArrow, code.OpLVMember:
			var base *Cell
			if in.Op == code.OpLVArrow {
				base = regs[in.A].Ptr.Target()
				if base == nil {
					return &CrashError{Msg: "null pointer member access"}
				}
			} else {
				blv := lvs[in.A]
				if blv.uField != nil {
					return fmt.Errorf("exec: nested union member views unsupported")
				}
				if blv.c == nil {
					return fmt.Errorf("exec: member access on a non-aggregate lvalue")
				}
				base = blv.c
			}
			st, ok := base.Typ.(*cltypes.StructT)
			if !ok {
				return fmt.Errorf("exec: member access on %s", base.Typ)
			}
			mi := in.Aux.(*code.MemberInfo)
			i := int(mi.Idx)
			if i < 0 {
				i = st.FieldIndex(mi.Name)
			}
			if i < 0 || i >= len(st.Fields) {
				return fmt.Errorf("exec: no field %q in %s", mi.Name, st)
			}
			if st.IsUnion {
				lvs[in.Dst] = lval{c: base, uField: st.Fields[i].Type, vecIdx: -1, unshared: unshared}
			} else {
				lvs[in.Dst] = directLV(base.Kids[i], unshared)
			}

		case code.OpLVSwizzle:
			blv := lvs[in.A]
			if blv.uField != nil || blv.vecIdx >= 0 || blv.flat != nil {
				return fmt.Errorf("exec: cannot swizzle a view lvalue")
			}
			lvs[in.Dst] = lval{c: blv.c, vecIdx: int(in.B), unshared: unshared}

		case code.OpLVLoad:
			lv := lvs[in.A]
			if checkRaces {
				if err := t.noteLVAccess(lv, false); err != nil {
					return err
				}
			}
			if err := lv.load(&regs[in.Dst]); err != nil {
				return err
			}

		case code.OpStore:
			if err := t.vmStore(in, lvs[in.A], regs); err != nil {
				return err
			}

		case code.OpDeclare:
			fr.slots[in.A] = t.newPrivCell(in.Aux.(cltypes.Type))

		case code.OpStoreDecl:
			if err := storeCell(fr.slots[in.A], &regs[in.B], unshared); err != nil {
				return err
			}

		case code.OpBindLocal:
			d := in.Aux.(*ast.VarDecl)
			g := t.group
			g.mu.Lock()
			c, ok := g.local[d]
			if !ok {
				c = NewCell(d.Type, cltypes.Local)
				g.local[d] = c
			}
			g.mu.Unlock()
			fr.slots[in.A] = c

		case code.OpNewAgg:
			typ := in.Aux.(cltypes.Type)
			regs[in.Dst] = Value{T: typ, Agg: t.newPrivCell(typ)}

		case code.OpInitField:
			if err := storeCell(regs[in.A].Agg.Kids[in.Dst], &regs[in.B], unshared); err != nil {
				return err
			}

		case code.OpInitUnion:
			c := regs[in.A].Agg
			tt := c.Typ.(*cltypes.StructT)
			fv := regs[in.B]
			if fs, ok := tt.Fields[0].Type.(*cltypes.Scalar); ok {
				if vs, vok := fv.T.(*cltypes.Scalar); vok {
					fv = convertScalar(&Value{T: vs, Scalar: fv.Scalar}, fs)
				}
			}
			if err := encodeValue(c.Bytes, &fv, tt.Fields[0].Type); err != nil {
				return err
			}
			if t.m.opts.Defects.Has(bugs.WCUnionInit) && unionHasSmallLeadStruct(tt) {
				for i := 2; i < len(c.Bytes) && i < tt.Fields[0].Type.Size(); i++ {
					c.Bytes[i] = 0xff
				}
			}

		case code.OpInitStructDefect:
			if t.m.opts.Defects.Has(bugs.WCStructCharFirst) {
				c := regs[in.A].Agg
				for _, fi := range charFirstLargerFields(c.Typ.(*cltypes.StructT)) {
					c.Kids[fi].Val = 0
				}
			}

		// Superinstructions (fuel/v2 fused programs only). Each arm
		// replays its constituent ops' semantics exactly — same
		// evaluation order, same race notes, same error messages — with
		// the intermediate register traffic elided.

		case code.OpBinImm, code.OpBinImmBr:
			ii := in.Aux.(*code.ImmInfo)
			rv := Value{T: ii.T, Scalar: ii.V}
			if err := t.vmBinaryOp(ii.Bin, &regs[in.A], &rv, &regs[in.Dst]); err != nil {
				return err
			}
			if in.Op == code.OpBinImmBr && !regs[in.Dst].isTrue() {
				if cov != nil {
					cov.hitEdge(fr.fn.Idx, int32(pc), in.B)
				}
				pc = int(in.B)
				continue
			}

		case code.OpBinSlotImm, code.OpBinSlotImmBr:
			ii := in.Aux.(*code.ImmInfo)
			var lv Value
			if err := t.vmSlotVal(fr.slots[in.A], &lv); err != nil {
				return err
			}
			rv := Value{T: ii.T, Scalar: ii.V}
			if err := t.vmBinaryOp(ii.Bin, &lv, &rv, &regs[in.Dst]); err != nil {
				return err
			}
			if in.Op == code.OpBinSlotImmBr && !regs[in.Dst].isTrue() {
				if cov != nil {
					cov.hitEdge(fr.fn.Idx, int32(pc), in.B)
				}
				pc = int(in.B)
				continue
			}

		case code.OpBinSlots:
			bi := in.Aux.(*code.BinInfo)
			var lv, rv Value
			if err := t.vmSlotVal(fr.slots[in.A], &lv); err != nil {
				return err
			}
			if err := t.vmSlotVal(fr.slots[in.B], &rv); err != nil {
				return err
			}
			if err := t.vmBinaryOp(bi, &lv, &rv, &regs[in.Dst]); err != nil {
				return err
			}

		case code.OpBinSlotR:
			bi := in.Aux.(*code.BinInfo)
			var rv Value
			if err := t.vmSlotVal(fr.slots[in.B], &rv); err != nil {
				return err
			}
			if err := t.vmBinaryOp(bi, &regs[in.A], &rv, &regs[in.Dst]); err != nil {
				return err
			}

		case code.OpBinBr:
			bb := in.Aux.(*code.BinBrInfo)
			if err := t.vmBinaryOp(bb.Bin, &regs[in.A], &regs[in.B], &regs[in.Dst]); err != nil {
				return err
			}
			if !regs[in.Dst].isTrue() {
				if cov != nil {
					cov.hitEdge(fr.fn.Idx, int32(pc), bb.Target)
				}
				pc = int(bb.Target)
				continue
			}

		case code.OpLoadIdx:
			iv := &regs[in.B]
			is, ok := iv.T.(*cltypes.Scalar)
			if !ok {
				return fmt.Errorf("exec: non-scalar index")
			}
			idx := int(cltypes.AsInt64(iv.Scalar, is))
			lv, err := t.ptrLV(regs[in.A].Ptr.At(idx), "out-of-bounds buffer access")
			if err != nil {
				return err
			}
			if checkRaces {
				if err := t.noteLVAccess(lv, false); err != nil {
					return err
				}
			}
			if err := lv.load(&regs[in.Dst]); err != nil {
				return err
			}

		case code.OpIncDecSlot:
			if err := t.vmIncDec(directLV(fr.slots[in.A], unshared), ast.UnOp(in.B), &regs[in.Dst]); err != nil {
				return err
			}

		case code.OpStoreSlot:
			if err := t.vmStore(in, directLV(fr.slots[in.A], unshared), regs); err != nil {
				return err
			}

		case code.OpAggLit, code.OpAggDecl:
			// One tree allocation replaces the literal's every elided
			// OpNewAgg: nested constant literals write through root-relative
			// paths instead of building temporaries and deep-copying them
			// in, and the OpAggDecl form hands the tree straight to the
			// declared slot (eliding OpStoreDecl's copy as well).
			al := in.Aux.(*code.AggLit)
			c := t.newPrivCell(al.Typ)
			if in.Op == code.OpAggLit {
				regs[in.Dst] = Value{T: al.Typ, Agg: c}
			} else {
				fr.slots[in.A] = c
			}
			for i := range al.Ops {
				op := &al.Ops[i]
				cell := c
				for _, k := range op.Path {
					cell = cell.Kids[k]
				}
				if op.Defect {
					if t.m.opts.Defects.Has(bugs.WCStructCharFirst) {
						for _, fi := range charFirstLargerFields(cell.Typ.(*cltypes.StructT)) {
							cell.Kids[fi].Val = 0
						}
					}
					continue
				}
				v := Value{T: op.T, Scalar: op.V}
				if op.Conv != nil {
					v = convertScalar(&v, op.Conv)
				}
				if err := storeCell(cell, &v, unshared); err != nil {
					return err
				}
			}

		case code.OpLoadCast:
			lv := lvs[in.A]
			if checkRaces {
				if err := t.noteLVAccess(lv, false); err != nil {
					return err
				}
			}
			if err := lv.load(&regs[in.Dst]); err != nil {
				return err
			}
			if err := vmCast(&regs[in.Dst], auxType(in.Aux)); err != nil {
				return err
			}

		default:
			return fmt.Errorf("exec: unknown opcode %d", in.Op)
		}
		pc++
	}
}

// vmReturn pops the current frame, writes the (already converted) return
// value into the caller's destination register, and re-installs the
// caller's windows. It reports done for the kernel frame.
func (t *thread) vmReturn(vm *vmState, fr **vmFrame, ins *[]code.Instr, regs *[]Value, lvs *[]lval, rv Value) (done bool, pc int) {
	f := *fr
	t.iterStack = t.iterStack[:f.iterBase]
	vm.slotStack = vm.slotStack[:f.slotBase]
	vm.frames = vm.frames[:len(vm.frames)-1]
	if len(vm.frames) == 0 {
		return true, 0
	}
	t.depth--
	cf := &vm.frames[len(vm.frames)-1]
	if f.retDst >= 0 {
		vm.regs[cf.regBase+int(f.retDst)] = rv
	}
	*fr = cf
	*ins = cf.fn.Code
	*regs = vm.regs[cf.regBase:]
	*lvs = vm.lvs[cf.lvBase:]
	return false, f.retPC
}

// vmDeadLoopDefect applies the Figure 2(d) clobber to the pre-resolved
// init destination, mirroring the tree walker's swallowed evalLV: any
// failure along the way — fuel exhaustion on the arrow shape's variable
// evaluation, a race report, a null pointer, an unresolvable field, a
// non-scalar destination — silently abandons the store.
func (t *thread) vmDeadLoopDefect(le *code.LoopExit, fr *vmFrame) {
	unshared := t.m.unshared
	var c *Cell
	if le.Slot >= 0 {
		c = fr.slots[le.Slot]
	} else {
		c = t.m.globalCells[le.Global]
	}
	if c == nil {
		return
	}
	var lv lval
	if le.Arrow {
		// The `v->field` shape evaluates the variable first, which in
		// the tree walk charges one fuel step (its timeout, like every
		// other error here, is swallowed but the charge persists).
		t.fuel--
		if t.fuel <= 0 {
			return
		}
		if t.m.opts.CheckRaces {
			if err := t.noteAccess(c, false, false); err != nil {
				return
			}
		}
		base := c.Ptr.Target()
		if base == nil {
			return
		}
		st, ok := base.Typ.(*cltypes.StructT)
		if !ok {
			return
		}
		i := int(le.Field)
		if i < 0 {
			i = st.FieldIndex(le.Name)
		}
		if i < 0 || i >= len(st.Fields) {
			return
		}
		if st.IsUnion {
			lv = lval{c: base, uField: st.Fields[i].Type, vecIdx: -1, unshared: unshared}
		} else {
			lv = directLV(base.Kids[i], unshared)
		}
	} else {
		lv = directLV(c, unshared)
	}
	if s, ok := lv.typ().(*cltypes.Scalar); ok {
		one := scalarValue(1, s)
		_ = lv.store(&one)
	}
}

// vmUnary applies a value-level unary operator in place, mirroring the
// tail of evalUnary.
func (t *thread) vmUnary(op ast.UnOp, rt cltypes.Type, out *Value) error {
	switch vt := out.T.(type) {
	case *cltypes.Scalar:
		switch op {
		case ast.Neg:
			st := rt.(*cltypes.Scalar)
			*out = scalarValue(cltypes.Neg(cltypes.Convert(out.Scalar, vt, st), st), st)
			return nil
		case ast.Pos:
			*out = convertScalar(out, rt.(*cltypes.Scalar))
			return nil
		case ast.BitNot:
			st := rt.(*cltypes.Scalar)
			*out = scalarValue(cltypes.Not(cltypes.Convert(out.Scalar, vt, st), st), st)
			return nil
		case ast.LogNot:
			*out = boolValue(!out.isTrue())
			return nil
		}
	case *cltypes.Vector:
		res := make([]uint64, vt.Len)
		for i, c := range out.Vec {
			switch op {
			case ast.Neg:
				res[i] = cltypes.Neg(c, vt.Elem)
			case ast.Pos:
				res[i] = c
			case ast.BitNot:
				res[i] = cltypes.Not(c, vt.Elem)
			case ast.LogNot:
				if cltypes.Trunc(c, vt.Elem) == 0 {
					res[i] = mask(vt.Elem)
				} else {
					res[i] = 0
				}
			}
		}
		*out = Value{T: rt.(*cltypes.Vector), Vec: res}
		return nil
	case *cltypes.Pointer:
		if op == ast.LogNot {
			*out = boolValue(out.Ptr.IsNull())
			return nil
		}
	}
	return fmt.Errorf("exec: invalid unary %s on %s", op, out.T)
}

// vmCast applies an explicit cast in place, mirroring the Cast case of
// evalExpr.
func vmCast(out *Value, toT cltypes.Type) error {
	switch to := toT.(type) {
	case *cltypes.Scalar:
		*out = convertScalar(out, to)
		return nil
	case *cltypes.Vector:
		if vv, ok := out.T.(*cltypes.Vector); ok && vv.Equal(to) {
			return nil
		}
		if vs, ok := out.T.(*cltypes.Scalar); ok {
			splat := make([]uint64, to.Len)
			c := cltypes.Convert(out.Scalar, vs, to.Elem)
			for i := range splat {
				splat[i] = c
			}
			*out = Value{T: to, Vec: splat}
			return nil
		}
		return fmt.Errorf("exec: bad vector cast from %s", out.T)
	case *cltypes.Pointer:
		if _, ok := out.T.(*cltypes.Pointer); ok {
			*out = Value{T: to, Ptr: out.Ptr}
			return nil
		}
		*out = Value{T: to}
		return nil
	}
	return fmt.Errorf("exec: bad cast to %s", toT)
}

// vmAtomic mirrors evalAtomic with the pointer and operand values
// already in registers.
func (t *thread) vmAtomic(in *code.Instr, regs []Value) error {
	name := in.Aux.(string)
	ptr := regs[in.A].Ptr
	word := ptr.flatWord()
	var target *Cell
	var st *cltypes.Scalar
	if word != nil {
		st = ptr.Flat.wordT
	} else {
		if ptr.Flat != nil {
			return &CrashError{Msg: "atomic on null pointer"}
		}
		target = ptr.Target()
		if target == nil {
			return &CrashError{Msg: "atomic on null pointer"}
		}
		var ok bool
		st, ok = target.Typ.(*cltypes.Scalar)
		if !ok {
			return fmt.Errorf("exec: atomic on non-scalar cell")
		}
	}
	var operand, cmp uint64
	if in.B >= 1 {
		ov := &regs[in.A+1]
		os := ov.T.(*cltypes.Scalar)
		operand = cltypes.Convert(ov.Scalar, os, st)
	}
	if in.B == 2 {
		cmp = operand
		ov := &regs[in.A+2]
		vs := ov.T.(*cltypes.Scalar)
		operand = cltypes.Convert(ov.Scalar, vs, st)
	}
	if t.m.opts.CheckRaces {
		var err error
		if word != nil {
			err = t.noteWordAccess(word, true, true)
		} else {
			err = t.noteAccess(target, true, true)
		}
		if err != nil {
			return err
		}
	}
	unshared := t.m.unshared
	if !unshared {
		t.m.atomicMu.Lock()
	}
	var old uint64
	if word != nil {
		old = loadWord(word, unshared)
	} else {
		old = target.loadScalar(unshared)
	}
	next, ok := atomicNext(name, old, operand, cmp, st)
	if !ok {
		if !unshared {
			t.m.atomicMu.Unlock()
		}
		return fmt.Errorf("exec: unknown atomic %s", name)
	}
	if word != nil {
		storeWord(word, next, unshared)
	} else {
		target.storeScalar(next, unshared)
	}
	if !unshared {
		t.m.atomicMu.Unlock()
	}
	regs[in.Dst] = scalarValue(old, st)
	return nil
}

// vmMath mirrors the post-evaluation half of evalMath: the scalar fast
// path, the element-wise vector path, and the >3-operand fallback.
func (t *thread) vmMath(in *code.Instr, regs []Value) error {
	mi := in.Aux.(*code.MathInfo)
	n := int(in.B)
	args := regs[int(in.A) : int(in.A)+n]
	if st, ok := mi.RT.(*cltypes.Scalar); ok && n <= 3 {
		var vals [3]uint64
		for i := range args {
			vals[i] = cltypes.Convert(args[i].Scalar, args[i].T.(*cltypes.Scalar), st)
		}
		regs[in.Dst] = scalarValue(mathOp(mi.Name, vals[:n], st), st)
		return nil
	}
	if vt, ok := mi.RT.(*cltypes.Vector); ok {
		comps := make([][]uint64, n)
		for i := range args {
			c, err := vecComponents(&args[i], vt)
			if err != nil {
				return err
			}
			comps[i] = c
		}
		vec := make([]uint64, vt.Len)
		for i := range vec {
			vals := make([]uint64, n)
			for j := 0; j < n; j++ {
				vals[j] = comps[j][i]
			}
			vec[i] = mathOp(mi.Name, vals, vt.Elem)
		}
		regs[in.Dst] = Value{T: vt, Vec: vec}
		return nil
	}
	st := mi.RT.(*cltypes.Scalar)
	vals := make([]uint64, n)
	for i := range args {
		as := args[i].T.(*cltypes.Scalar)
		vals[i] = cltypes.Convert(args[i].Scalar, as, st)
	}
	regs[in.Dst] = scalarValue(mathOp(mi.Name, vals, st), st)
	return nil
}

// vmIncDec applies ++/-- through an lvalue, mirroring the IncDec case
// of evalExpr: race note, load, scalar check, wrap-around add/sub by
// one, store, and the post-op value restore. OpIncDec passes the
// lvalue register's content; OpIncDecSlot rebuilds the same direct
// lvalue from the frame slot.
func (t *thread) vmIncDec(lv lval, op ast.UnOp, out *Value) error {
	if t.m.opts.CheckRaces {
		if err := t.noteLVAccess(lv, true); err != nil {
			return err
		}
	}
	if err := lv.load(out); err != nil {
		return err
	}
	st, ok := out.T.(*cltypes.Scalar)
	if !ok {
		return fmt.Errorf("exec: ++/-- on %s", out.T)
	}
	old := out.Scalar
	var nv uint64
	if op == ast.PreInc || op == ast.PostInc {
		nv = cltypes.Add(old, 1, st)
	} else {
		nv = cltypes.Sub(old, 1, st)
	}
	*out = scalarValue(nv, st)
	if err := lv.store(out); err != nil {
		return err
	}
	if op == ast.PostInc || op == ast.PostDec {
		*out = scalarValue(old, st)
	}
	return nil
}

// vmBinaryOp applies a binary operator exactly like the OpBinary arm:
// the pointer equality special case, then the checked scalar/vector
// path. The fused arms route through it so superinstructions cannot
// drift from OpBinary's semantics.
func (t *thread) vmBinaryOp(bi *code.BinInfo, lv, rv, out *Value) error {
	if _, ok := lv.T.(*cltypes.Pointer); ok {
		eq := samePtrTarget(lv.Ptr, rv.Ptr)
		if bi.Op == ast.EQ {
			*out = boolValue(eq)
		} else {
			*out = boolValue(!eq)
		}
		return nil
	}
	return t.applyBinary(bi.Op, lv, rv, bi.RT, out)
}

// vmSlotVal loads a frame slot's value exactly like the OpLoadSlot arm:
// race note, the scalar fast path for unshared cells, and the general
// cell load.
func (t *thread) vmSlotVal(c *Cell, out *Value) error {
	if t.m.opts.CheckRaces {
		if err := t.noteAccess(c, false, false); err != nil {
			return err
		}
	}
	if sc, ok := c.Typ.(*cltypes.Scalar); ok && (t.m.unshared || !c.Shared) {
		*out = Value{T: sc, Scalar: c.Val}
		return nil
	}
	return loadCell(c, t.m.unshared, out)
}

// vmStore mirrors evalAssignStore: compound folding, the store defect
// models (with the syntactic triggers pre-resolved by the lowerer), the
// store itself, struct-copy corruption, and the value-position reload.
// OpStore passes the lvalue register's content; OpStoreSlot rebuilds
// the same direct lvalue from the frame slot (equivalent because the
// fuser only rewrites stores whose window cannot rebind the slot's
// cell). The *StoreInfo — and with it the Figure 1(d)/2(c) defect
// triggers — is carried verbatim on both forms.
func (t *thread) vmStore(in *code.Instr, lv lval, regs []Value) error {
	si := in.Aux.(*code.StoreInfo)
	if cov := t.m.opts.Cover; cov != nil {
		if si.DerefParam {
			cov.hitSite(CoverSiteDerefStore)
		}
		if si.ArrowParam {
			cov.hitSite(CoverSiteArrowStore)
		}
	}
	rv := &regs[in.B]
	if si.Op != ast.Assign {
		var old, combined Value
		if err := lv.load(&old); err != nil {
			return err
		}
		if err := t.applyBinary(si.Op.BinOp(), &old, rv, compoundType(lv.typ(), rv.T), &combined); err != nil {
			return err
		}
		*rv = combined
	}
	drop, err := t.storeDefect(si.Op, si.DerefParam, si.ArrowParam)
	if err != nil {
		return err
	}
	if drop {
		if in.Dst >= 0 {
			regs[in.Dst] = *rv
		}
		return nil
	}
	if t.m.opts.CheckRaces {
		if err := t.noteLVAccess(lv, true); err != nil {
			return err
		}
	}
	if err := lv.store(rv); err != nil {
		return err
	}
	if st, ok := lv.typ().(*cltypes.StructT); ok && !st.IsUnion && lv.c != nil {
		t.corruptStructCopy(lv.c, st)
	}
	if in.Dst >= 0 {
		return lv.load(&regs[in.Dst])
	}
	return nil
}
