package exec

import (
	"fmt"
	"sync/atomic"

	"clfuzz/internal/cltypes"
)

// Cell is a storage location. Scalars hold their value in Val; vectors in
// Vec; structs and arrays hold child cells; unions hold raw bytes so that
// the layout-sensitive union defect models behave realistically. Pointer
// cells hold a reference to another cell.
type Cell struct {
	Typ    cltypes.Type
	Val    uint64   // scalar value (bit pattern truncated to width)
	Vec    []uint64 // vector components
	Kids   []*Cell  // struct fields / array elements
	Bytes  []byte   // union backing store
	Ptr    Ptr      // pointer value (zero value = null pointer)
	Space  cltypes.AddrSpace
	Shared bool // lives in global or local memory (visible across threads)
}

// NewCell allocates a zero-initialized cell tree for type t in the given
// address space.
func NewCell(t cltypes.Type, space cltypes.AddrSpace) *Cell {
	shared := space == cltypes.Global || space == cltypes.Local
	return newCell(t, space, shared)
}

func newCell(t cltypes.Type, space cltypes.AddrSpace, shared bool) *Cell {
	c := &Cell{Typ: t, Space: space, Shared: shared}
	switch tt := t.(type) {
	case *cltypes.Scalar:
	case *cltypes.Vector:
		c.Vec = make([]uint64, tt.Len)
	case *cltypes.StructT:
		if tt.IsUnion {
			c.Bytes = make([]byte, tt.Size())
		} else {
			c.Kids = make([]*Cell, len(tt.Fields))
			for i, f := range tt.Fields {
				c.Kids[i] = newCell(f.Type, space, shared)
			}
		}
	case *cltypes.Array:
		c.Kids = make([]*Cell, tt.Len)
		for i := range c.Kids {
			c.Kids[i] = newCell(tt.Elem, space, shared)
		}
	case *cltypes.Pointer:
	default:
		panic(fmt.Sprintf("exec: cannot allocate cell of type %T", t))
	}
	return c
}

// loadScalar reads the scalar value with the required visibility: an
// atomic load for shared cells, since racy kernels are legal inputs to
// the fuzzer and must not corrupt the Go runtime. unshared is the
// machine's single-goroutine execution flag (Machine.unshared): when the
// whole launch runs sequentially no concurrent access exists and even
// shared cells are read plainly.
func (c *Cell) loadScalar(unshared bool) uint64 {
	if c.Shared && !unshared {
		return atomic.LoadUint64(&c.Val)
	}
	return c.Val
}

func (c *Cell) storeScalar(v uint64, unshared bool) {
	if c.Shared && !unshared {
		atomic.StoreUint64(&c.Val, v)
		return
	}
	c.Val = v
}

func (c *Cell) loadVecElem(i int, unshared bool) uint64 {
	if c.Shared && !unshared {
		return atomic.LoadUint64(&c.Vec[i])
	}
	return c.Vec[i]
}

func (c *Cell) storeVecElem(i int, v uint64, unshared bool) {
	if c.Shared && !unshared {
		atomic.StoreUint64(&c.Vec[i], v)
		return
	}
	c.Vec[i] = v
}

// loadWord reads one flat-store word with the required visibility. Flat
// words always live in global memory (shared); unshared is the machine's
// single-goroutine execution flag, exactly as for Cell.loadScalar.
func loadWord(w *uint64, unshared bool) uint64 {
	if unshared {
		return *w
	}
	return atomic.LoadUint64(w)
}

func storeWord(w *uint64, v uint64, unshared bool) {
	if unshared {
		*w = v
		return
	}
	atomic.StoreUint64(w, v)
}

// Buffer is a host-allocated global memory array passed as a kernel
// argument. Scalar-element buffers — the overwhelmingly common case, and
// the layout every generated kernel uses for its result, dead, and comm
// arrays — store their elements in the flat Words array: one uint64 bit
// pattern per element, no per-element heap cell. Aggregate- and
// vector-element buffers keep the per-element cell tree in Cells.
type Buffer struct {
	Elem cltypes.Type
	// Words is the flat backing store of a scalar-element buffer. Kernel
	// pointers into the buffer index this array directly (Ptr.Words).
	Words []uint64
	// wordT is Elem as a scalar when the flat store is in use; it doubles
	// as the flat-vs-cells discriminator (a zero-length Words slice is
	// still a flat buffer).
	wordT *cltypes.Scalar
	// Cells holds the elements of aggregate- and vector-element buffers.
	Cells []*Cell
	Space cltypes.AddrSpace
}

// NewBuffer allocates a global buffer of n elements of type elem.
// Scalar-element buffers get a single flat allocation; other element types
// get one cell tree per element.
func NewBuffer(elem cltypes.Type, n int) *Buffer {
	b := &Buffer{Elem: elem, Space: cltypes.Global}
	if st, ok := elem.(*cltypes.Scalar); ok {
		b.Words = make([]uint64, n)
		b.wordT = st
		return b
	}
	b.Cells = make([]*Cell, n)
	for i := range b.Cells {
		b.Cells[i] = NewCell(elem, cltypes.Global)
	}
	return b
}

// Fill sets every element of a scalar buffer to v. Host-side accessors
// always use the shared-memory (atomic) discipline: they may run while a
// concurrent kernel from a different launch holds the buffer.
func (b *Buffer) Fill(v uint64) {
	for i := range b.Words {
		storeWord(&b.Words[i], v, false)
	}
	for _, c := range b.Cells {
		c.storeScalar(v, false)
	}
}

// SetScalar sets element i of a scalar buffer.
func (b *Buffer) SetScalar(i int, v uint64) {
	if b.wordT != nil {
		storeWord(&b.Words[i], v, false)
		return
	}
	b.Cells[i].storeScalar(v, false)
}

// Scalar returns element i of a scalar buffer.
func (b *Buffer) Scalar(i int) uint64 {
	if b.wordT != nil {
		return loadWord(&b.Words[i], false)
	}
	return b.Cells[i].loadScalar(false)
}

// Scalars returns the contents of a scalar buffer.
func (b *Buffer) Scalars() []uint64 {
	if b.wordT != nil {
		out := make([]uint64, len(b.Words))
		for i := range b.Words {
			out[i] = loadWord(&b.Words[i], false)
		}
		return out
	}
	out := make([]uint64, len(b.Cells))
	for i, c := range b.Cells {
		out[i] = c.loadScalar(false)
	}
	return out
}

// Len returns the element count.
func (b *Buffer) Len() int {
	if b.wordT != nil {
		return len(b.Words)
	}
	return len(b.Cells)
}

// ---- byte encoding, used for union storage ----

// encodeScalar stores a scalar of type t into buf (little-endian).
func encodeScalar(buf []byte, v uint64, t *cltypes.Scalar) {
	n := t.Size()
	for i := 0; i < n; i++ {
		buf[i] = byte(v >> (8 * uint(i)))
	}
}

// decodeScalar reads a scalar of type t from buf.
func decodeScalar(buf []byte, t *cltypes.Scalar) uint64 {
	n := t.Size()
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(buf[i]) << (8 * uint(i))
	}
	return cltypes.Trunc(v, t)
}

// structLayout returns the byte offset of each field of a (non-union)
// struct under natural alignment.
func structLayout(st *cltypes.StructT) []int {
	offs := make([]int, len(st.Fields))
	off := 0
	for i, f := range st.Fields {
		a := alignOf(f.Type)
		off = (off + a - 1) / a * a
		offs[i] = off
		off += f.Type.Size()
	}
	return offs
}

func alignOf(t cltypes.Type) int {
	switch tt := t.(type) {
	case *cltypes.Scalar:
		return tt.Size()
	case *cltypes.Vector:
		return tt.Size()
	case *cltypes.StructT:
		a := 1
		for _, f := range tt.Fields {
			if fa := alignOf(f.Type); fa > a {
				a = fa
			}
		}
		return a
	case *cltypes.Array:
		return alignOf(tt.Elem)
	}
	return 8
}

// encodeValue writes a Value of type t into buf. Pointers are not
// supported inside unions (rejected by the generator and benchmarks).
func encodeValue(buf []byte, v *Value, t cltypes.Type) error {
	switch tt := t.(type) {
	case *cltypes.Scalar:
		encodeScalar(buf, v.Scalar, tt)
		return nil
	case *cltypes.Vector:
		es := tt.Elem.Size()
		for i := 0; i < tt.Len; i++ {
			encodeScalar(buf[i*es:], v.Vec[i], tt.Elem)
		}
		return nil
	case *cltypes.StructT:
		if tt.IsUnion {
			copy(buf[:tt.Size()], v.Agg.Bytes)
			return nil
		}
		offs := structLayout(tt)
		for i, f := range tt.Fields {
			var fv Value
			if err := loadCell(v.Agg.Kids[i], false, &fv); err != nil {
				return err
			}
			if err := encodeValue(buf[offs[i]:], &fv, f.Type); err != nil {
				return err
			}
		}
		return nil
	case *cltypes.Array:
		es := tt.Elem.Size()
		for i := 0; i < tt.Len; i++ {
			var ev Value
			if err := loadCell(v.Agg.Kids[i], false, &ev); err != nil {
				return err
			}
			if err := encodeValue(buf[i*es:], &ev, tt.Elem); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("exec: cannot encode type %s into union storage", t)
}

// decodeInto reads a value of the cell's type from buf into the cell.
func decodeInto(c *Cell, buf []byte) error {
	switch tt := c.Typ.(type) {
	case *cltypes.Scalar:
		c.storeScalar(decodeScalar(buf, tt), false)
		return nil
	case *cltypes.Vector:
		es := tt.Elem.Size()
		for i := 0; i < tt.Len; i++ {
			c.storeVecElem(i, decodeScalar(buf[i*es:], tt.Elem), false)
		}
		return nil
	case *cltypes.StructT:
		if tt.IsUnion {
			copy(c.Bytes, buf[:tt.Size()])
			return nil
		}
		offs := structLayout(tt)
		for i := range tt.Fields {
			if err := decodeInto(c.Kids[i], buf[offs[i]:]); err != nil {
				return err
			}
		}
		return nil
	case *cltypes.Array:
		es := tt.Elem.Size()
		for i := 0; i < tt.Len; i++ {
			if err := decodeInto(c.Kids[i], buf[i*es:]); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("exec: cannot decode type %s from union storage", c.Typ)
}
