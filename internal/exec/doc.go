// Package exec implements the OpenCL execution model for the subset: an
// NDRange of work-items organized into work-groups, the four memory
// spaces, collective barriers with fence semantics, read-modify-write
// atomics, and two interchangeable evaluation engines with per-thread
// fuel accounting — a register bytecode VM on the hot path and a
// tree-walking evaluator as the semantics reference.
//
// The executor optionally checks the two undefined behaviours that matter
// for compiler fuzzing — data races and barrier divergence (paper §3.1) —
// which lets property tests verify that generated kernels are
// deterministic by construction, and reproduces the paper's discovery of
// data races in the Parboil spmv and Rodinia myocyte benchmarks (§2.4).
//
// # Two engines
//
// Run evaluates kernel code with one of two engines selected by
// Options.Engine:
//
//   - The register VM (the default whenever Options.Code carries a
//     lowered program from internal/code) dispatches a flat instruction
//     stream with operands pre-resolved to frame slots, flat-buffer word
//     offsets, field indices and function indices — no AST walk, no
//     scope-chain scan, no VarRef slot cache on the hot path.
//   - The tree walker (Options.Engine == EngineTree, or any program the
//     lowerer declined) recursively evaluates the AST. It is the
//     reference: the VM's instruction costs mirror its step() charges
//     one for one, so outcomes — including fuel-derived timeouts — and
//     buffer contents are byte-identical between the engines. The
//     determinism suites and the FuzzLowerMatchesTree target pin this.
//
// Both engines share everything below expression evaluation: the cell
// arena, flat buffer words, lvalues, barrier machinery, race checker,
// the defect models, and the parallel work-group scheduler. EngineCounters
// reports which engine executed each launch process-wide.
//
// # Execution modes
//
// Run picks among three schedules, all producing byte-identical results
// for race-free programs:
//
//   - Sequential fast path: barrier-free kernels (Options.NoBarrier, the
//     common case for generated tests) with race checking off run every
//     thread of every work-group back-to-back on the calling goroutine —
//     no goroutine spawns, no barrier objects, and plain (non-atomic)
//     memory accesses.
//   - Parallel work-groups: when Options.Workers exceeds one and the
//     kernel calls no atomic builtins (Options.NoAtomics), independent
//     work-groups fan out across a bounded worker pool. Atomics are the
//     only defined cross-group communication channel in the subset, so
//     group results cannot depend on scheduling; each group runs in its
//     own failure domain, and the launch verdict is the error of the
//     lowest-numbered failing group — exactly what the serial schedule
//     would report. Within each group the per-group mode (sequential or
//     barrier machinery) is unchanged.
//   - Lockstep goroutine-per-thread: kernels that reach barriers (and
//     any race-checked launch) run each work-group's threads on
//     goroutines synchronized by a collective barrier object with
//     divergence detection, serialized by the lockstep baton scheduler:
//     exactly one thread of the group executes at a time, in work-item
//     order, yielding at barriers. The schedule is one fixed, legal
//     interleaving, so atomic operations and shared stores — and with
//     them race reports, divergence verdicts and buffer contents — are
//     identical on every run of the same launch. Determinism here is
//     what the campaign result cache, the shard/merge pipeline and the
//     differential oracle itself rest on.
//
// # Storage
//
// Values live in Cells (scalars, vectors, aggregates, pointers), except
// for scalar-element Buffers — every generated kernel's result, dead and
// comm arrays — whose elements live in a flat []uint64 backing store with
// no per-element heap cell; pointers into such buffers (Ptr.Flat) index
// the flat store directly. Private cells are arena-allocated per thread,
// including the scalar leaves of struct and array trees.
//
// # Read-only programs
//
// Run never writes to the program it executes. Compiled kernels are
// immutable artifacts shared across configurations (device.BackCache)
// and concurrent launches, and the campaign engine replays one launch's
// result for every configuration with the same defect model — a single
// in-place mutation would silently corrupt all of them. The only
// node-level state the evaluator touches are two sanctioned annotation
// caches: the VarRef resolution slot (accessed atomically and validated
// before every use, so a stale value is only a miss) and the Member
// field index written by sema during checking. SetDebugImmutable arms a
// checked mode — every launch fingerprints the program's printed source
// before and after executing and panics on any difference — which the
// determinism test suites run under -race.
//
// Aggregate loads borrow: loading a struct or array rvalue yields a
// read-only view of the stored cells rather than a deep copy whenever no
// concurrent writer can exist (Value.Agg); consumers copy out before any
// further evaluation can write the underlying storage.
//
// The device layer (internal/device) wraps Run with the per-configuration
// defect models; hosts normally go through device.Kernel.Run rather than
// calling exec.Run directly.
package exec
