package exec_test

import (
	"testing"

	"clfuzz/internal/cltypes"
	"clfuzz/internal/code"
	"clfuzz/internal/exec"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

// launch compiles and executes src over nd with a ulong out buffer, using
// the front-end guarantees (NoBarrier/NoAtomics) the device layer would
// pass, and returns the buffer contents and the run error. The program is
// lowered and executed on the given engine, so the parallel-determinism
// suite pins the tree walker and the register VM alike.
func launch(t *testing.T, src string, nd exec.NDRange, workers int, engine exec.Engine) ([]uint64, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, info, err := sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	lowered, err := code.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
	args := exec.Args{"out": {Buf: out}}
	runErr := exec.Run(prog, nd, args, exec.Options{
		NoBarrier:  !info.HasBarrier,
		NoAtomics:  !info.HasAtomic,
		HasFwdDecl: info.HasFwdDecl,
		Workers:    workers,
		Code:       lowered,
		Engine:     engine,
	})
	return out.Scalars(), runErr
}

// parallelKernels is the kernel set the work-group fan-out is compared on:
// barrier-free compute, barrier synchronization over local memory, private
// aggregates, and flat-buffer pointer arithmetic.
var parallelKernels = []struct {
	name string
	src  string
}{
	{"compute", `
kernel void k(global ulong *out) {
    ulong acc = 1;
    for (int i = 0; i < 40; i++) {
        acc = acc * 33UL + get_global_id(0) + i;
    }
    out[get_linear_global_id()] = acc;
}
`},
	{"barrier-local", `
kernel void k(global ulong *out) {
    local uint comm[8];
    comm[get_linear_local_id()] = (uint)get_global_id(0) + 1u;
    barrier(CLK_LOCAL_MEM_FENCE);
    ulong acc = 0;
    for (int i = 0; i < 8; i++) {
        acc += comm[i];
    }
    out[get_linear_global_id()] = acc + get_group_id(0);
}
`},
	{"flat-pointers", `
ulong probe(global ulong *p) {
    return p[0] + 1UL;
}
kernel void k(global ulong *out) {
    size_t gid = get_linear_global_id();
    out[gid] = gid * 3UL;
    global ulong *slot = &out[gid];
    ulong same = (slot == &out[gid]) ? 100UL : 200UL;
    ulong first = (slot == out) ? 1000UL : 0UL;
    *slot = *slot + probe(slot) + same + first;
}
`},
	{"private-aggregates", `
struct S { int a; ulong b; };
kernel void k(global ulong *out) {
    struct S s = { (int)get_global_id(0), 7UL };
    struct S copy = s;
    int arr[4] = { 1, 2, 3, 4 };
    arr[(int)get_global_id(0) % 4] += copy.a;
    out[get_linear_global_id()] = (ulong)arr[0] + (ulong)arr[3] + copy.b;
}
`},
}

// TestParallelGroupsDeterministic is the fan-out half of the executor's
// central invariant: an eligible launch (no atomics, races unchecked) must
// produce byte-identical buffer contents whether work-groups run serially
// or concurrently across any worker count. Run with -race this also
// verifies the shared-cell atomic discipline of the parallel path.
func TestParallelGroupsDeterministic(t *testing.T) {
	// Verify the read-only-AST contract on every launch of this test: the
	// same checked program is run at several worker budgets, exactly the
	// sharing pattern the back cache produces at campaign scale.
	exec.SetDebugImmutable(true)
	t.Cleanup(func() { exec.SetDebugImmutable(false) })
	nds := []exec.NDRange{
		{Global: [3]int{64, 1, 1}, Local: [3]int{8, 1, 1}},
		{Global: [3]int{16, 4, 1}, Local: [3]int{4, 2, 1}},
	}
	for _, k := range parallelKernels {
		for _, nd := range nds {
			// The serial tree walk is the reference; every engine and
			// worker-budget combination must reproduce it byte for byte.
			want, wantErr := launch(t, k.src, nd, 1, exec.EngineTree)
			for _, engine := range []exec.Engine{exec.EngineTree, exec.EngineVM} {
				for _, workers := range []int{1, 2, 8} {
					got, gotErr := launch(t, k.src, nd, workers, engine)
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("%s engine=%s workers=%d: err %v, want %v", k.name, engine, workers, gotErr, wantErr)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s engine=%s workers=%d: out[%d] = %d, want %d", k.name, engine, workers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestParallelGroupsErrorOrder checks the launch verdict under failures:
// the parallel path must report the error of the lowest-numbered failing
// group — the one the serial schedule would have hit first — even when a
// later group fails differently (here group 1 times out while group 3
// crashes on an out-of-bounds store).
func TestParallelGroupsErrorOrder(t *testing.T) {
	src := `
kernel void k(global ulong *out) {
    size_t g = get_group_id(0);
    if (g == 1) {
        ulong acc = 0;
        while (1) { acc += 1; }
        out[0] = acc;
    }
    if (g == 3) {
        out[1000000] = 1UL;
    }
    out[get_linear_global_id()] = g;
}
`
	nd := exec.NDRange{Global: [3]int{16, 1, 1}, Local: [3]int{4, 1, 1}}
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, info, err := sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	lowered, err := code.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	runWith := func(workers int, engine exec.Engine) error {
		out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
		return exec.Run(prog, nd, exec.Args{"out": {Buf: out}}, exec.Options{
			NoBarrier: !info.HasBarrier,
			NoAtomics: !info.HasAtomic,
			Fuel:      50_000,
			Workers:   workers,
			Code:      lowered,
			Engine:    engine,
		})
	}
	serial := runWith(1, exec.EngineTree)
	if _, ok := serial.(*exec.TimeoutError); !ok {
		t.Fatalf("serial error = %v (%T), want timeout from group 1", serial, serial)
	}
	for _, engine := range []exec.Engine{exec.EngineTree, exec.EngineVM} {
		for _, workers := range []int{1, 2, 8} {
			parallel := runWith(workers, engine)
			if _, ok := parallel.(*exec.TimeoutError); !ok {
				t.Fatalf("engine=%s workers=%d error = %v (%T), want timeout from group 1", engine, workers, parallel, parallel)
			}
			if parallel.Error() != serial.Error() {
				t.Fatalf("engine=%s workers=%d error %q, want %q", engine, workers, parallel.Error(), serial.Error())
			}
		}
	}
}

// TestAtomicsStaySerial pins the eligibility rule: a kernel using atomic
// builtins — the one defined cross-group communication channel — must not
// fan out, because atomic ordering across groups is schedule-dependent.
// The observable contract is that results with any worker budget equal the
// serial schedule's.
func TestAtomicsStaySerial(t *testing.T) {
	src := `
kernel void k(global ulong *out, global uint *ctr) {
    uint ticket = atomic_inc(&ctr[0]);
    out[get_linear_global_id()] = (ulong)ticket;
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, info, err := sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	if !info.HasAtomic {
		t.Fatal("sema did not flag the atomic builtin")
	}
	nd := exec.NDRange{Global: [3]int{32, 1, 1}, Local: [3]int{1, 1, 1}}
	runWith := func(workers int) []uint64 {
		out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
		ctr := exec.NewBuffer(cltypes.TUInt, 1)
		err := exec.Run(prog, nd, exec.Args{"out": {Buf: out}, "ctr": {Buf: ctr}}, exec.Options{
			NoBarrier: !info.HasBarrier,
			NoAtomics: !info.HasAtomic,
			Workers:   workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out.Scalars()
	}
	want := runWith(1)
	got := runWith(8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("atomic kernel diverged under a worker budget: out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestFlatBufferAtomics covers read-modify-write atomics landing on flat
// scalar-buffer elements (the representation has no per-element cells).
func TestFlatBufferAtomics(t *testing.T) {
	src := `
kernel void k(global ulong *out, global uint *ctr) {
    atomic_add(&ctr[0], 2u);
    atomic_max(&ctr[1], (uint)get_global_id(0));
    uint old = atomic_cmpxchg(&ctr[2], 0u, 9u);
    out[get_linear_global_id()] = (ulong)old;
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, _, err = sema.Check(prog, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	nd := exec.NDRange{Global: [3]int{8, 1, 1}, Local: [3]int{8, 1, 1}}
	out := exec.NewBuffer(cltypes.TULong, nd.GlobalLinear())
	ctr := exec.NewBuffer(cltypes.TUInt, 3)
	if err := exec.Run(prog, nd, exec.Args{"out": {Buf: out}, "ctr": {Buf: ctr}}, exec.Options{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := ctr.Scalar(0); got != 16 {
		t.Errorf("ctr[0] = %d, want 16", got)
	}
	if got := ctr.Scalar(1); got != 7 {
		t.Errorf("ctr[1] = %d, want 7", got)
	}
	if got := ctr.Scalar(2); got != 9 {
		t.Errorf("ctr[2] = %d, want 9", got)
	}
}
