package exec

import (
	"fmt"
	"strings"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
)

func (t *thread) evalCall(ex *ast.Call, out *Value) error {
	switch ex.Name {
	case "get_global_id", "get_local_id", "get_group_id",
		"get_global_size", "get_local_size", "get_num_groups":
		if err := t.evalExpr(ex.Args[0], out); err != nil {
			return err
		}
		dim := int(out.Scalar)
		*out = scalarValue(t.idBuiltin(ex.Name, dim), cltypes.TSizeT)
		return nil
	case "get_work_dim":
		*out = scalarValue(3, cltypes.TUInt)
		return nil
	case "get_linear_global_id":
		*out = scalarValue(uint64(t.gidLinear()), cltypes.TSizeT)
		return nil
	case "get_linear_local_id":
		*out = scalarValue(uint64(t.lidLinear()), cltypes.TSizeT)
		return nil
	case "get_linear_group_id":
		*out = scalarValue(uint64(t.groupLinear()), cltypes.TSizeT)
		return nil
	case "barrier":
		if err := t.evalExpr(ex.Args[0], out); err != nil {
			return err
		}
		if t.group == nil {
			return fmt.Errorf("exec: barrier outside kernel execution")
		}
		if t.group.bar == nil {
			// Unreachable when the front end's NoBarrier guarantee holds;
			// fail loudly rather than corrupt the sequential fast path.
			return &CrashError{Msg: "barrier reached in barrier-free sequential execution"}
		}
		tok := barrierToken{node: ex, iters: t.iterDigest()}
		if err := t.group.bar.await(tok, out.Scalar, t.lidLinear()); err != nil {
			return err
		}
		t.barrierSeen = true
		t.barrierCount++
		*out = Value{T: cltypes.TVoid}
		return nil
	case "crc64":
		var c Value
		if err := t.evalExpr(ex.Args[0], &c); err != nil {
			return err
		}
		if err := t.evalExpr(ex.Args[1], out); err != nil {
			return err
		}
		vs := out.T.(*cltypes.Scalar)
		*out = scalarValue(crcMix(c.Scalar, cltypes.SExt(out.Scalar, vs)), cltypes.TULong)
		return nil
	case "vcrc":
		var c Value
		if err := t.evalExpr(ex.Args[0], &c); err != nil {
			return err
		}
		if err := t.evalExpr(ex.Args[1], out); err != nil {
			return err
		}
		h := c.Scalar
		for _, comp := range out.Vec {
			h = crcMix(h, comp)
		}
		*out = scalarValue(h, cltypes.TULong)
		return nil
	}
	if strings.HasPrefix(ex.Name, "atomic_") {
		return t.evalAtomic(ex, out)
	}
	switch ex.Name {
	case "safe_add", "safe_sub", "safe_mul", "safe_div", "safe_mod",
		"safe_lshift", "safe_rshift", "safe_unary_minus", "safe_clamp",
		"clamp", "rotate", "min", "max", "abs", "add_sat", "sub_sat",
		"hadd", "mul_hi", "popcount", "clz":
		return t.evalMath(ex, out)
	}
	if strings.HasPrefix(ex.Name, "convert_") {
		if err := t.evalExpr(ex.Args[0], out); err != nil {
			return err
		}
		switch to := ex.Type().(type) {
		case *cltypes.Scalar:
			*out = convertScalar(out, to)
			return nil
		case *cltypes.Vector:
			src := out.T.(*cltypes.Vector)
			vec := make([]uint64, to.Len)
			for i, c := range out.Vec {
				vec[i] = cltypes.Convert(c, src.Elem, to.Elem)
			}
			*out = Value{T: to, Vec: vec}
			return nil
		}
		return fmt.Errorf("exec: bad convert result type")
	}
	return t.evalUserCall(ex, out)
}

// iterDigest hashes the loop iteration counters for barrier divergence
// tokens.
func (t *thread) iterDigest() uint64 {
	h := uint64(14695981039346656037)
	for _, it := range t.iterStack {
		h ^= it
		h *= 1099511628211
	}
	return h
}

// crcMix is the checksum combiner backing the crc64/vcrc builtins: a
// 64-bit finalizer with good avalanche behaviour, so result mismatches
// propagate to the final output the way CLsmith's CRC does.
func crcMix(h, v uint64) uint64 {
	h ^= v
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (t *thread) idBuiltin(name string, dim int) uint64 {
	if dim < 0 || dim > 2 {
		// Per the OpenCL specification, out-of-range dimensions yield 0
		// for ids and 1 for sizes.
		if strings.Contains(name, "size") || strings.Contains(name, "num_groups") {
			return 1
		}
		return 0
	}
	switch name {
	case "get_global_id":
		return uint64(t.gid[dim])
	case "get_local_id":
		return uint64(t.lid[dim])
	case "get_group_id":
		return uint64(t.group.id[dim])
	case "get_global_size":
		return uint64(t.m.nd.Global[dim])
	case "get_local_size":
		return uint64(t.m.nd.Local[dim])
	case "get_num_groups":
		return uint64(t.m.nd.NumGroups()[dim])
	}
	return 0
}

func (t *thread) evalAtomic(ex *ast.Call, out *Value) error {
	if err := t.evalExpr(ex.Args[0], out); err != nil {
		return err
	}
	ptr := out.Ptr
	// Resolve the destination: a flat buffer word or a cell.
	word := ptr.flatWord()
	var target *Cell
	var st *cltypes.Scalar
	if word != nil {
		st = ptr.Flat.wordT
	} else {
		if ptr.Flat != nil {
			return &CrashError{Msg: "atomic on null pointer"}
		}
		target = ptr.Target()
		if target == nil {
			return &CrashError{Msg: "atomic on null pointer"}
		}
		var ok bool
		st, ok = target.Typ.(*cltypes.Scalar)
		if !ok {
			return fmt.Errorf("exec: atomic on non-scalar cell")
		}
	}
	var operand, cmp uint64
	if len(ex.Args) >= 2 {
		if err := t.evalExpr(ex.Args[1], out); err != nil {
			return err
		}
		os := out.T.(*cltypes.Scalar)
		operand = cltypes.Convert(out.Scalar, os, st)
	}
	if len(ex.Args) == 3 {
		cmp = operand
		if err := t.evalExpr(ex.Args[2], out); err != nil {
			return err
		}
		vs := out.T.(*cltypes.Scalar)
		operand = cltypes.Convert(out.Scalar, vs, st)
	}
	if t.m.opts.CheckRaces {
		var err error
		if word != nil {
			err = t.noteWordAccess(word, true, true)
		} else {
			err = t.noteAccess(target, true, true)
		}
		if err != nil {
			return err
		}
	}
	// A sequential launch needs neither the RMW mutex nor atomic cell
	// accesses: the calling goroutine is the only accessor.
	unshared := t.m.unshared
	if !unshared {
		t.m.atomicMu.Lock()
	}
	var old uint64
	if word != nil {
		old = loadWord(word, unshared)
	} else {
		old = target.loadScalar(unshared)
	}
	next, ok := atomicNext(ex.Name, old, operand, cmp, st)
	if !ok {
		if !unshared {
			t.m.atomicMu.Unlock()
		}
		return fmt.Errorf("exec: unknown atomic %s", ex.Name)
	}
	if word != nil {
		storeWord(word, next, unshared)
	} else {
		target.storeScalar(next, unshared)
	}
	if !unshared {
		t.m.atomicMu.Unlock()
	}
	*out = scalarValue(old, st)
	return nil
}

// atomicNext computes the stored value of a read-modify-write atomic.
func atomicNext(name string, old, operand, cmp uint64, st *cltypes.Scalar) (uint64, bool) {
	switch name {
	case "atomic_add":
		return cltypes.Add(old, operand, st), true
	case "atomic_sub":
		return cltypes.Sub(old, operand, st), true
	case "atomic_min":
		return cltypes.Min(old, operand, st), true
	case "atomic_max":
		return cltypes.Max(old, operand, st), true
	case "atomic_and":
		return cltypes.And(old, operand, st), true
	case "atomic_or":
		return cltypes.Or(old, operand, st), true
	case "atomic_xor":
		return cltypes.Xor(old, operand, st), true
	case "atomic_xchg":
		return operand, true
	case "atomic_inc":
		return cltypes.Add(old, 1, st), true
	case "atomic_dec":
		return cltypes.Sub(old, 1, st), true
	case "atomic_cmpxchg":
		if old == cmp {
			return operand, true
		}
		return old, true
	}
	return 0, false
}

// evalMath implements the element-wise math builtins and the generator's
// total safe-math wrappers. The builtins have at most three operands
// (clamp and safe_clamp), so operands and scalar lanes live on the Go
// stack — the safe-math wrappers are the hottest calls in generated
// kernels and must not allocate.
func (t *thread) evalMath(ex *ast.Call, out *Value) error {
	rt := ex.Type()
	// Scalar fast path: evaluate each operand into out and convert its
	// lane immediately — no Value array, no allocation. Sema guarantees a
	// scalar-typed math builtin has scalar operands.
	if st, ok := rt.(*cltypes.Scalar); ok && len(ex.Args) <= 3 {
		var vals [3]uint64
		for i := range ex.Args {
			if err := t.evalExpr(ex.Args[i], out); err != nil {
				return err
			}
			vals[i] = cltypes.Convert(out.Scalar, out.T.(*cltypes.Scalar), st)
		}
		*out = scalarValue(mathOp(ex.Name, vals[:len(ex.Args)], st), st)
		return nil
	}
	var argsArr [3]Value
	var args []Value
	if len(ex.Args) <= len(argsArr) {
		args = argsArr[:len(ex.Args)]
	} else {
		args = make([]Value, len(ex.Args))
	}
	for i := range ex.Args {
		if err := t.evalExpr(ex.Args[i], &args[i]); err != nil {
			return err
		}
	}
	if vt, ok := rt.(*cltypes.Vector); ok {
		comps := make([][]uint64, len(args))
		for i := range args {
			c, err := vecComponents(&args[i], vt)
			if err != nil {
				return err
			}
			comps[i] = c
		}
		vec := make([]uint64, vt.Len)
		for i := range vec {
			vals := make([]uint64, len(args))
			for j := range args {
				vals[j] = comps[j][i]
			}
			vec[i] = mathOp(ex.Name, vals, vt.Elem)
		}
		*out = Value{T: vt, Vec: vec}
		return nil
	}
	// >3 scalar operands: no current builtin, but stay total.
	st := rt.(*cltypes.Scalar)
	vals := make([]uint64, len(args))
	for i := range args {
		as := args[i].T.(*cltypes.Scalar)
		vals[i] = cltypes.Convert(args[i].Scalar, as, st)
	}
	*out = scalarValue(mathOp(ex.Name, vals, st), st)
	return nil
}

// mathOp computes one scalar lane of a math builtin. All operations are
// total: the safe_ wrappers implement the paper's safe-math macro
// semantics (return the first operand when the raw operation would be
// undefined).
func mathOp(name string, v []uint64, t *cltypes.Scalar) uint64 {
	switch name {
	case "safe_add":
		return cltypes.Add(v[0], v[1], t)
	case "safe_sub":
		return cltypes.Sub(v[0], v[1], t)
	case "safe_mul":
		return cltypes.Mul(v[0], v[1], t)
	case "safe_div":
		return cltypes.Div(v[0], v[1], t)
	case "safe_mod":
		return cltypes.Mod(v[0], v[1], t)
	case "safe_lshift":
		return cltypes.Shl(v[0], v[1], t, t)
	case "safe_rshift":
		return cltypes.Shr(v[0], v[1], t, t)
	case "safe_unary_minus":
		return cltypes.Neg(v[0], t)
	case "safe_clamp":
		// safe_clamp(x,min,max) == (min > max ? x : clamp(x,min,max)).
		if cltypes.CmpLT(v[2], v[1], t) == 1 {
			return cltypes.Trunc(v[0], t)
		}
		return cltypes.Clamp(v[0], v[1], v[2], t)
	case "clamp":
		return cltypes.Clamp(v[0], v[1], v[2], t)
	case "rotate":
		return cltypes.Rotate(v[0], v[1], t)
	case "min":
		return cltypes.Min(v[0], v[1], t)
	case "max":
		return cltypes.Max(v[0], v[1], t)
	case "abs":
		return cltypes.Abs(v[0], t)
	case "add_sat":
		return cltypes.AddSat(v[0], v[1], t)
	case "sub_sat":
		return cltypes.SubSat(v[0], v[1], t)
	case "hadd":
		return cltypes.HAdd(v[0], v[1], t)
	case "mul_hi":
		return cltypes.MulHi(v[0], v[1], t)
	case "popcount":
		return cltypes.Popcount(v[0], t)
	case "clz":
		return cltypes.Clz(v[0], t)
	}
	return 0
}

func (t *thread) evalUserCall(ex *ast.Call, out *Value) error {
	f, ok := t.m.funcs[ex.Name]
	if !ok {
		return fmt.Errorf("exec: call to undefined function %q", ex.Name)
	}
	if t.depth >= 64 {
		return &CrashError{Msg: "call stack overflow"}
	}
	// The callee frame is built while the caller's scope stays installed:
	// each argument is evaluated and immediately bound (copied) into its
	// parameter cell before the next argument runs. Immediate binding is
	// what makes borrowed aggregate values (Value.Agg) safe here — a later
	// argument's side effects cannot retroactively change an earlier
	// argument, exactly the semantics the old copy-at-load gave.
	saved := t.env
	frame := t.pushEnv(nil)
	frame.frame = true
	var arg Value
	for i, p := range f.Params {
		if err := t.evalExpr(ex.Args[i], &arg); err != nil {
			t.popEnv(frame)
			return err
		}
		c := t.newPrivCell(p.Type)
		if err := storeCell(c, &arg, t.m.unshared); err != nil {
			t.popEnv(frame)
			return err
		}
		frame.define(p.Name, c, true)
	}
	t.env = frame
	t.depth++
	t.retVal = Value{T: cltypes.TVoid}
	cf, err := t.execBlock(f.Body)
	t.depth--
	t.env = saved
	t.popEnv(frame)
	if err != nil {
		return err
	}
	if cf == ctrlReturn {
		*out = t.retVal
		if rt, ok := f.Ret.(*cltypes.Scalar); ok {
			if _, isS := out.T.(*cltypes.Scalar); isS {
				*out = convertScalar(out, rt)
			}
		}
		return nil
	}
	if f.Ret.Equal(cltypes.TVoid) {
		*out = Value{T: cltypes.TVoid}
		return nil
	}
	// Falling off the end of a value-returning function is undefined in C;
	// our subset returns a zero value to stay total.
	if rt, ok := f.Ret.(*cltypes.Scalar); ok {
		*out = scalarValue(0, rt)
		return nil
	}
	return fmt.Errorf("exec: function %s fell off the end", f.Name)
}
