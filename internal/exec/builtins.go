package exec

import (
	"fmt"
	"strings"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
)

func (t *thread) evalCall(ex *ast.Call) (Value, error) {
	switch ex.Name {
	case "get_global_id", "get_local_id", "get_group_id",
		"get_global_size", "get_local_size", "get_num_groups":
		dv, err := t.evalExpr(ex.Args[0])
		if err != nil {
			return Value{}, err
		}
		dim := int(dv.Scalar)
		return scalarValue(t.idBuiltin(ex.Name, dim), cltypes.TSizeT), nil
	case "get_work_dim":
		return scalarValue(3, cltypes.TUInt), nil
	case "get_linear_global_id":
		return scalarValue(uint64(t.gidLinear()), cltypes.TSizeT), nil
	case "get_linear_local_id":
		return scalarValue(uint64(t.lidLinear()), cltypes.TSizeT), nil
	case "get_linear_group_id":
		return scalarValue(uint64(t.groupLinear()), cltypes.TSizeT), nil
	case "barrier":
		fv, err := t.evalExpr(ex.Args[0])
		if err != nil {
			return Value{}, err
		}
		if t.group == nil {
			return Value{}, fmt.Errorf("exec: barrier outside kernel execution")
		}
		tok := barrierToken{node: ex, iters: t.iterDigest()}
		if err := t.group.bar.await(tok, fv.Scalar); err != nil {
			return Value{}, err
		}
		t.barrierSeen = true
		return Value{T: cltypes.TVoid}, nil
	case "crc64":
		c, err := t.evalExpr(ex.Args[0])
		if err != nil {
			return Value{}, err
		}
		v, err := t.evalExpr(ex.Args[1])
		if err != nil {
			return Value{}, err
		}
		vs := v.T.(*cltypes.Scalar)
		return scalarValue(crcMix(c.Scalar, cltypes.SExt(v.Scalar, vs)), cltypes.TULong), nil
	case "vcrc":
		c, err := t.evalExpr(ex.Args[0])
		if err != nil {
			return Value{}, err
		}
		v, err := t.evalExpr(ex.Args[1])
		if err != nil {
			return Value{}, err
		}
		h := c.Scalar
		for _, comp := range v.Vec {
			h = crcMix(h, comp)
		}
		return scalarValue(h, cltypes.TULong), nil
	}
	if strings.HasPrefix(ex.Name, "atomic_") {
		return t.evalAtomic(ex)
	}
	switch ex.Name {
	case "safe_add", "safe_sub", "safe_mul", "safe_div", "safe_mod",
		"safe_lshift", "safe_rshift", "safe_unary_minus", "safe_clamp",
		"clamp", "rotate", "min", "max", "abs", "add_sat", "sub_sat",
		"hadd", "mul_hi", "popcount", "clz":
		return t.evalMath(ex)
	}
	if strings.HasPrefix(ex.Name, "convert_") {
		v, err := t.evalExpr(ex.Args[0])
		if err != nil {
			return Value{}, err
		}
		switch to := ex.Type().(type) {
		case *cltypes.Scalar:
			return convertScalar(v, to), nil
		case *cltypes.Vector:
			src := v.T.(*cltypes.Vector)
			out := make([]uint64, to.Len)
			for i, c := range v.Vec {
				out[i] = cltypes.Convert(c, src.Elem, to.Elem)
			}
			return Value{T: to, Vec: out}, nil
		}
		return Value{}, fmt.Errorf("exec: bad convert result type")
	}
	return t.evalUserCall(ex)
}

// iterDigest hashes the loop iteration counters for barrier divergence
// tokens.
func (t *thread) iterDigest() uint64 {
	h := uint64(14695981039346656037)
	for _, it := range t.iterStack {
		h ^= it
		h *= 1099511628211
	}
	return h
}

// crcMix is the checksum combiner backing the crc64/vcrc builtins: a
// 64-bit finalizer with good avalanche behaviour, so result mismatches
// propagate to the final output the way CLsmith's CRC does.
func crcMix(h, v uint64) uint64 {
	h ^= v
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (t *thread) idBuiltin(name string, dim int) uint64 {
	if dim < 0 || dim > 2 {
		// Per the OpenCL specification, out-of-range dimensions yield 0
		// for ids and 1 for sizes.
		if strings.Contains(name, "size") || strings.Contains(name, "num_groups") {
			return 1
		}
		return 0
	}
	switch name {
	case "get_global_id":
		return uint64(t.gid[dim])
	case "get_local_id":
		return uint64(t.lid[dim])
	case "get_group_id":
		return uint64(t.group.id[dim])
	case "get_global_size":
		return uint64(t.m.nd.Global[dim])
	case "get_local_size":
		return uint64(t.m.nd.Local[dim])
	case "get_num_groups":
		return uint64(t.m.nd.NumGroups()[dim])
	}
	return 0
}

func (t *thread) evalAtomic(ex *ast.Call) (Value, error) {
	pv, err := t.evalExpr(ex.Args[0])
	if err != nil {
		return Value{}, err
	}
	target := pv.Ptr.Target()
	if target == nil {
		return Value{}, &CrashError{Msg: "atomic on null pointer"}
	}
	st, ok := target.Typ.(*cltypes.Scalar)
	if !ok {
		return Value{}, fmt.Errorf("exec: atomic on non-scalar cell")
	}
	var operand, cmp uint64
	if len(ex.Args) >= 2 {
		ov, err := t.evalExpr(ex.Args[1])
		if err != nil {
			return Value{}, err
		}
		os := ov.T.(*cltypes.Scalar)
		operand = cltypes.Convert(ov.Scalar, os, st)
	}
	if len(ex.Args) == 3 {
		cmp = operand
		vv, err := t.evalExpr(ex.Args[2])
		if err != nil {
			return Value{}, err
		}
		vs := vv.T.(*cltypes.Scalar)
		operand = cltypes.Convert(vv.Scalar, vs, st)
	}
	if err := t.noteAccess(target, true, true); err != nil {
		return Value{}, err
	}
	t.m.atomicMu.Lock()
	old := target.loadScalar()
	var next uint64
	switch ex.Name {
	case "atomic_add":
		next = cltypes.Add(old, operand, st)
	case "atomic_sub":
		next = cltypes.Sub(old, operand, st)
	case "atomic_min":
		next = cltypes.Min(old, operand, st)
	case "atomic_max":
		next = cltypes.Max(old, operand, st)
	case "atomic_and":
		next = cltypes.And(old, operand, st)
	case "atomic_or":
		next = cltypes.Or(old, operand, st)
	case "atomic_xor":
		next = cltypes.Xor(old, operand, st)
	case "atomic_xchg":
		next = operand
	case "atomic_inc":
		next = cltypes.Add(old, 1, st)
	case "atomic_dec":
		next = cltypes.Sub(old, 1, st)
	case "atomic_cmpxchg":
		if old == cmp {
			next = operand
		} else {
			next = old
		}
	default:
		t.m.atomicMu.Unlock()
		return Value{}, fmt.Errorf("exec: unknown atomic %s", ex.Name)
	}
	target.storeScalar(next)
	t.m.atomicMu.Unlock()
	return scalarValue(old, st), nil
}

// evalMath implements the element-wise math builtins and the generator's
// total safe-math wrappers.
func (t *thread) evalMath(ex *ast.Call) (Value, error) {
	args := make([]Value, len(ex.Args))
	for i, a := range ex.Args {
		v, err := t.evalExpr(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	rt := ex.Type()
	if vt, ok := rt.(*cltypes.Vector); ok {
		comps := make([][]uint64, len(args))
		for i, a := range args {
			c, err := vecComponents(a, vt)
			if err != nil {
				return Value{}, err
			}
			comps[i] = c
		}
		out := make([]uint64, vt.Len)
		for i := range out {
			vals := make([]uint64, len(args))
			for j := range args {
				vals[j] = comps[j][i]
			}
			out[i] = mathOp(ex.Name, vals, vt.Elem)
		}
		return Value{T: vt, Vec: out}, nil
	}
	st := rt.(*cltypes.Scalar)
	vals := make([]uint64, len(args))
	for i, a := range args {
		as := a.T.(*cltypes.Scalar)
		vals[i] = cltypes.Convert(a.Scalar, as, st)
	}
	return scalarValue(mathOp(ex.Name, vals, st), st), nil
}

// mathOp computes one scalar lane of a math builtin. All operations are
// total: the safe_ wrappers implement the paper's safe-math macro
// semantics (return the first operand when the raw operation would be
// undefined).
func mathOp(name string, v []uint64, t *cltypes.Scalar) uint64 {
	switch name {
	case "safe_add":
		return cltypes.Add(v[0], v[1], t)
	case "safe_sub":
		return cltypes.Sub(v[0], v[1], t)
	case "safe_mul":
		return cltypes.Mul(v[0], v[1], t)
	case "safe_div":
		return cltypes.Div(v[0], v[1], t)
	case "safe_mod":
		return cltypes.Mod(v[0], v[1], t)
	case "safe_lshift":
		return cltypes.Shl(v[0], v[1], t, t)
	case "safe_rshift":
		return cltypes.Shr(v[0], v[1], t, t)
	case "safe_unary_minus":
		return cltypes.Neg(v[0], t)
	case "safe_clamp":
		// safe_clamp(x,min,max) == (min > max ? x : clamp(x,min,max)).
		if cltypes.CmpLT(v[2], v[1], t) == 1 {
			return cltypes.Trunc(v[0], t)
		}
		return cltypes.Clamp(v[0], v[1], v[2], t)
	case "clamp":
		return cltypes.Clamp(v[0], v[1], v[2], t)
	case "rotate":
		return cltypes.Rotate(v[0], v[1], t)
	case "min":
		return cltypes.Min(v[0], v[1], t)
	case "max":
		return cltypes.Max(v[0], v[1], t)
	case "abs":
		return cltypes.Abs(v[0], t)
	case "add_sat":
		return cltypes.AddSat(v[0], v[1], t)
	case "sub_sat":
		return cltypes.SubSat(v[0], v[1], t)
	case "hadd":
		return cltypes.HAdd(v[0], v[1], t)
	case "mul_hi":
		return cltypes.MulHi(v[0], v[1], t)
	case "popcount":
		return cltypes.Popcount(v[0], t)
	case "clz":
		return cltypes.Clz(v[0], t)
	}
	return 0
}

func (t *thread) evalUserCall(ex *ast.Call) (Value, error) {
	f, ok := t.m.funcs[ex.Name]
	if !ok {
		return Value{}, fmt.Errorf("exec: call to undefined function %q", ex.Name)
	}
	if t.depth >= 64 {
		return Value{}, &CrashError{Msg: "call stack overflow"}
	}
	args := make([]Value, len(ex.Args))
	for i, a := range ex.Args {
		v, err := t.evalExpr(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	saved := t.env
	frame := newEnv(nil)
	frame.params = map[string]bool{}
	for i, p := range f.Params {
		c := NewCell(p.Type, cltypes.Private)
		if err := storeCell(c, args[i]); err != nil {
			t.env = saved
			return Value{}, err
		}
		frame.vars[p.Name] = c
		frame.params[p.Name] = true
	}
	t.env = frame
	t.depth++
	t.retVal = Value{T: cltypes.TVoid}
	cf, err := t.execBlock(f.Body)
	t.depth--
	t.env = saved
	if err != nil {
		return Value{}, err
	}
	if cf == ctrlReturn {
		ret := t.retVal
		if rt, ok := f.Ret.(*cltypes.Scalar); ok {
			if _, isS := ret.T.(*cltypes.Scalar); isS {
				return convertScalar(ret, rt), nil
			}
		}
		return ret, nil
	}
	if f.Ret.Equal(cltypes.TVoid) {
		return Value{T: cltypes.TVoid}, nil
	}
	// Falling off the end of a value-returning function is undefined in C;
	// our subset returns a zero value to stay total.
	if rt, ok := f.Ret.(*cltypes.Scalar); ok {
		return scalarValue(0, rt), nil
	}
	return Value{}, fmt.Errorf("exec: function %s fell off the end", f.Name)
}
