package emi

import (
	"fmt"
	"math/rand"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
)

// buildBlock generates one dead-by-construction EMI block. Free variables
// of the block body are either declared at its start (substitutions off)
// or aliased to host-kernel variables (substitutions on); the returned
// count is the number of substitutions performed. With substitutions the
// block's computation operates on the kernel's own data, giving the
// compiler the chance to (erroneously) optimize across the block boundary
// (§5).
func buildBlock(rng *rand.Rand, deadLen int, hosts []hostVar) (ast.Stmt, int) {
	r1 := 1 + rng.Intn(deadLen-1)
	r2 := rng.Intn(r1)
	b := &blockGen{rng: rng}
	// Choose the block's working variables: a mix of fresh locals and
	// substituted host variables.
	nvars := 2 + rng.Intn(3)
	subs := 0
	blk := &ast.Block{}
	for i := 0; i < nvars; i++ {
		if len(hosts) > 0 && rng.Intn(2) == 0 {
			h := hosts[rng.Intn(len(hosts))]
			if !b.has(h.name) {
				b.vars = append(b.vars, hostVar{h.name, h.typ})
				subs++
				continue
			}
		}
		name := fmt.Sprintf("emi_%d_%d", r1, i)
		t := emiScalarPool[rng.Intn(len(emiScalarPool))]
		// The initializer may only use previously introduced variables;
		// register the new name afterwards so it cannot appear in its own
		// initializer.
		init := b.expr(t, 2)
		b.vars = append(b.vars, hostVar{name, t})
		blk.Stmts = append(blk.Stmts, &ast.DeclStmt{Decl: &ast.VarDecl{
			Name: name, Type: t, Init: init,
		}})
	}
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		blk.Stmts = append(blk.Stmts, b.stmt(0, r1*16+i))
	}
	guard := &ast.Binary{Op: ast.LT,
		L: &ast.Index{Base: ast.NewVarRef("dead"), Idx: ast.NewIntLit(uint64(r1), cltypes.TInt)},
		R: &ast.Index{Base: ast.NewVarRef("dead"), Idx: ast.NewIntLit(uint64(r2), cltypes.TInt)},
	}
	return &ast.If{Cond: guard, Then: blk}, subs
}

var emiScalarPool = []*cltypes.Scalar{
	cltypes.TChar, cltypes.TShort, cltypes.TInt, cltypes.TUInt, cltypes.TLong, cltypes.TULong,
}

type blockGen struct {
	rng  *rand.Rand
	vars []hostVar
}

func (b *blockGen) has(name string) bool {
	for _, v := range b.vars {
		if v.name == name {
			return true
		}
	}
	return false
}

func (b *blockGen) pick() hostVar { return b.vars[b.rng.Intn(len(b.vars))] }

func (b *blockGen) stmt(depth, salt int) ast.Stmt {
	switch r := b.rng.Intn(10); {
	case r < 4 || depth >= 2:
		v := b.pick()
		return &ast.ExprStmt{X: &ast.AssignExpr{Op: ast.Assign,
			LHS: ast.NewVarRef(v.name), RHS: b.expr(v.typ, 2)}}
	case r < 6:
		v := b.pick()
		ops := []ast.AssignOp{ast.AddAssign, ast.XorAssign, ast.OrAssign, ast.AndAssign}
		return &ast.ExprStmt{X: &ast.AssignExpr{Op: ops[b.rng.Intn(len(ops))],
			LHS: ast.NewVarRef(v.name), RHS: b.expr(v.typ, 1)}}
	case r < 8:
		then := &ast.Block{}
		for i := 0; i < 1+b.rng.Intn(3); i++ {
			then.Stmts = append(then.Stmts, b.stmt(depth+1, salt*3+i))
		}
		return &ast.If{Cond: b.expr(cltypes.TInt, 2), Then: then}
	default:
		// A counted loop, possibly with a break (leaf-prunable and the
		// target of the lift strategy's jump stripping).
		iv := fmt.Sprintf("emi_i_%d", salt)
		body := &ast.Block{}
		for i := 0; i < 1+b.rng.Intn(3); i++ {
			body.Stmts = append(body.Stmts, b.stmt(depth+1, salt*5+i))
		}
		if b.rng.Intn(3) == 0 {
			body.Stmts = append(body.Stmts, &ast.If{
				Cond: &ast.Binary{Op: ast.GT, L: ast.NewVarRef(iv), R: ast.NewIntLit(2, cltypes.TInt)},
				Then: &ast.Block{Stmts: []ast.Stmt{&ast.Break{}}},
			})
		}
		return &ast.For{
			Init: &ast.DeclStmt{Decl: &ast.VarDecl{Name: iv, Type: cltypes.TInt, Init: ast.NewIntLit(0, cltypes.TInt)}},
			Cond: &ast.Binary{Op: ast.LT, L: ast.NewVarRef(iv), R: ast.NewIntLit(uint64(1+b.rng.Intn(8)), cltypes.TInt)},
			Post: &ast.Unary{Op: ast.PostInc, X: ast.NewVarRef(iv)},
			Body: body,
		}
	}
}

func (b *blockGen) expr(t *cltypes.Scalar, depth int) ast.Expr {
	if depth <= 0 {
		return b.leaf(t)
	}
	switch b.rng.Intn(6) {
	case 0, 1:
		name := []string{"safe_add", "safe_sub", "safe_mul", "safe_div"}[b.rng.Intn(4)]
		c := &ast.Call{Name: name, Args: []ast.Expr{b.expr(t, depth-1), b.expr(t, depth-1)}}
		return &ast.Cast{To: t, X: c}
	case 2:
		op := []ast.BinOp{ast.And, ast.Or, ast.Xor}[b.rng.Intn(3)]
		return &ast.Cast{To: t, X: &ast.Binary{Op: op, L: b.expr(t, depth-1), R: b.expr(t, depth-1)}}
	case 3:
		op := []ast.BinOp{ast.LT, ast.GT, ast.EQ}[b.rng.Intn(3)]
		return &ast.Cast{To: t, X: &ast.Binary{Op: op, L: b.expr(t, depth-1), R: b.expr(t, depth-1)}}
	case 4:
		return &ast.Cast{To: t, X: &ast.Unary{Op: ast.BitNot, X: b.expr(t, depth-1)}}
	default:
		return b.leaf(t)
	}
}

func (b *blockGen) leaf(t *cltypes.Scalar) ast.Expr {
	if len(b.vars) > 0 && b.rng.Intn(2) == 0 {
		v := b.pick()
		if v.typ.Equal(t) {
			return ast.NewVarRef(v.name)
		}
		return &ast.Cast{To: t, X: ast.NewVarRef(v.name)}
	}
	return ast.NewIntLit(b.rng.Uint64()&0xffff, t)
}
