package emi

import (
	"fmt"
	"math/rand"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
)

// PruneOpts are the pruning probabilities of §5. Compound is applied
// before lift, so lift runs at the adjusted probability
// plift/(1-pcompound); Leaf+... the constraint PCompound+PLift <= 1 must
// hold (enforced by Grid and validated by Prune).
type PruneOpts struct {
	PLeaf     float64
	PCompound float64
	PLift     float64
	Seed      int64
}

// Grid enumerates the paper's §7.4 sweep: every combination of pleaf,
// pcompound, plift over {0, 0.3, 0.6, 1} satisfying pcompound+plift <= 1 —
// 40 combinations, i.e. 40 EMI variants per base program.
func Grid() []PruneOpts {
	vals := []float64{0, 0.3, 0.6, 1}
	var out []PruneOpts
	for _, pl := range vals {
		for _, pc := range vals {
			for _, pf := range vals {
				if pc+pf <= 1 {
					out = append(out, PruneOpts{PLeaf: pl, PCompound: pc, PLift: pf})
				}
			}
		}
	}
	return out
}

// FindBlocks returns the EMI blocks of the program: conditionals of the
// §5 shape if (dead[r1] < dead[r2]) {...} with literal indices r2 < r1.
func FindBlocks(prog *ast.Program) []*ast.If {
	var blocks []*ast.If
	for _, f := range prog.Funcs {
		if f.Body == nil {
			continue
		}
		walkStmts(f.Body, func(s ast.Stmt) {
			if ifs, ok := s.(*ast.If); ok && IsEMIGuard(ifs.Cond) {
				blocks = append(blocks, ifs)
			}
		})
	}
	return blocks
}

// IsEMIGuard reports whether the expression is a dead-by-construction EMI
// guard: dead[r1] < dead[r2] with literal r2 < r1.
func IsEMIGuard(e ast.Expr) bool {
	bin, ok := e.(*ast.Binary)
	if !ok || bin.Op != ast.LT {
		return false
	}
	r1, ok1 := emiIndex(bin.L)
	r2, ok2 := emiIndex(bin.R)
	return ok1 && ok2 && r2 < r1
}

func emiIndex(e ast.Expr) (uint64, bool) {
	idx, ok := e.(*ast.Index)
	if !ok {
		return 0, false
	}
	vr, ok := idx.Base.(*ast.VarRef)
	if !ok || vr.Name != "dead" {
		return 0, false
	}
	l, ok := idx.Idx.(*ast.IntLit)
	if !ok {
		return 0, false
	}
	return l.Val, true
}

// Prune derives an EMI variant: a deep copy of the program with the
// contents of every EMI block pruned according to opts. The original
// program is left untouched.
func Prune(prog *ast.Program, opts PruneOpts) (*ast.Program, error) {
	if opts.PCompound+opts.PLift > 1 {
		return nil, fmt.Errorf("emi: pcompound+plift = %v > 1", opts.PCompound+opts.PLift)
	}
	cp := ast.CloneProgram(prog)
	rng := rand.New(rand.NewSource(opts.Seed))
	p := &pruner{opts: opts, rng: rng}
	for _, b := range FindBlocks(cp) {
		p.pruneBlock(b.Then)
	}
	return cp, nil
}

// PruneAll returns the variant with every EMI block emptied (the paper's
// "empty EMI block" used to compute expected outputs for the benchmarks,
// §7.2).
func PruneAll(prog *ast.Program) *ast.Program {
	cp := ast.CloneProgram(prog)
	for _, b := range FindBlocks(cp) {
		b.Then.Stmts = nil
	}
	return cp
}

type pruner struct {
	opts PruneOpts
	rng  *rand.Rand
}

func (p *pruner) chance(prob float64) bool {
	if prob <= 0 {
		return false
	}
	return p.rng.Float64() < prob
}

// pruneBlock prunes the statements of an EMI block in place. For each
// statement: compound statements are deleted with PCompound, then lifted
// with the adjusted probability PLift/(1-PCompound); leaf statements
// (other than declarations, whose deletion would break later uses) are
// deleted with PLeaf; surviving compound statements recurse.
func (p *pruner) pruneBlock(b *ast.Block) {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		out = append(out, p.pruneStmt(s)...)
	}
	b.Stmts = out
}

func (p *pruner) pruneStmt(s ast.Stmt) []ast.Stmt {
	adjLift := p.opts.PLift
	if p.opts.PCompound < 1 {
		adjLift = p.opts.PLift / (1 - p.opts.PCompound)
	}
	switch st := s.(type) {
	case *ast.If:
		if p.chance(p.opts.PCompound) {
			return nil
		}
		if p.chance(adjLift) {
			// Lift: the conditional's children replace it — then-block
			// statements followed by else-block statements (§5).
			var out []ast.Stmt
			p.pruneBlock(st.Then)
			out = append(out, st.Then.Stmts...)
			if eb, ok := st.Else.(*ast.Block); ok {
				p.pruneBlock(eb)
				out = append(out, eb.Stmts...)
			} else if st.Else != nil {
				out = append(out, p.pruneStmt(st.Else)...)
			}
			return out
		}
		p.pruneBlock(st.Then)
		if eb, ok := st.Else.(*ast.Block); ok {
			p.pruneBlock(eb)
		}
		return []ast.Stmt{st}
	case *ast.For:
		if p.chance(p.opts.PCompound) {
			return nil
		}
		if p.chance(adjLift) {
			// Lift: initializer then body, with outermost break/continue
			// removed so the result remains syntactically valid (§5).
			var out []ast.Stmt
			if st.Init != nil {
				out = append(out, st.Init)
			}
			p.pruneBlock(st.Body)
			stripLoopJumps(st.Body)
			out = append(out, st.Body.Stmts...)
			return out
		}
		p.pruneBlock(st.Body)
		return []ast.Stmt{st}
	case *ast.While:
		if p.chance(p.opts.PCompound) {
			return nil
		}
		if p.chance(adjLift) {
			p.pruneBlock(st.Body)
			stripLoopJumps(st.Body)
			return st.Body.Stmts
		}
		p.pruneBlock(st.Body)
		return []ast.Stmt{st}
	case *ast.DoWhile:
		if p.chance(p.opts.PCompound) {
			return nil
		}
		if p.chance(adjLift) {
			p.pruneBlock(st.Body)
			stripLoopJumps(st.Body)
			return st.Body.Stmts
		}
		p.pruneBlock(st.Body)
		return []ast.Stmt{st}
	case *ast.Block:
		if p.chance(p.opts.PCompound) {
			return nil
		}
		p.pruneBlock(st)
		return []ast.Stmt{st}
	case *ast.DeclStmt:
		// Declarations are not prunable leaves: deleting one would leave
		// dangling references in later statements.
		return []ast.Stmt{st}
	default:
		// Leaf statement: assignment, call, break, continue, empty.
		if p.chance(p.opts.PLeaf) {
			return nil
		}
		return []ast.Stmt{st}
	}
}

// stripLoopJumps removes outermost break and continue statements from a
// lifted loop body (nested loops keep theirs: those still bind correctly).
func stripLoopJumps(b *ast.Block) {
	var out []ast.Stmt
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *ast.Break, *ast.Continue:
			continue
		case *ast.If:
			stripLoopJumps(st.Then)
			if eb, ok := st.Else.(*ast.Block); ok {
				stripLoopJumps(eb)
			}
			out = append(out, st)
		case *ast.Block:
			stripLoopJumps(st)
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	b.Stmts = out
}

func walkStmts(s ast.Stmt, fn func(ast.Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch st := s.(type) {
	case *ast.Block:
		for _, inner := range st.Stmts {
			walkStmts(inner, fn)
		}
	case *ast.If:
		walkStmts(st.Then, fn)
		walkStmts(st.Else, fn)
	case *ast.For:
		walkStmts(st.Init, fn)
		walkStmts(st.Body, fn)
	case *ast.While:
		walkStmts(st.Body, fn)
	case *ast.DoWhile:
		walkStmts(st.Body, fn)
	}
}

// ---- injection into existing kernels (§5 "Injecting into real-world
// kernels", §7.2) ----

// InjectOptions configures EMI injection into an existing kernel.
type InjectOptions struct {
	Seed int64
	// Blocks is the number of EMI blocks to insert (the paper used one or
	// two per benchmark).
	Blocks int
	// Substitute aliases free variables of the block to variables of the
	// host kernel instead of declaring them locally (§5: substitutions
	// give the compiler the opportunity to optimize across the block
	// boundary).
	Substitute bool
	// DeadLen is the length of the dead array parameter (default 16).
	DeadLen int
}

// Inject adds a `global int *dead` parameter to the kernel of prog and
// inserts randomly generated EMI blocks at random top-level positions of
// the kernel body. It returns the number of substitutions performed.
func Inject(prog *ast.Program, opts InjectOptions) (int, error) {
	k := prog.Kernel()
	if k == nil || k.Body == nil {
		return 0, fmt.Errorf("emi: program has no kernel to inject into")
	}
	if opts.DeadLen <= 1 {
		opts.DeadLen = 16
	}
	if opts.Blocks <= 0 {
		opts.Blocks = 1
	}
	hasDead := false
	for _, p := range k.Params {
		if p.Name == "dead" {
			hasDead = true
		}
	}
	if !hasDead {
		k.Params = append(k.Params, ast.Param{
			Name: "dead",
			Type: &cltypes.Pointer{Elem: cltypes.TInt, Space: cltypes.Global},
		})
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	subs := 0
	for i := 0; i < opts.Blocks; i++ {
		pos := rng.Intn(len(k.Body.Stmts) + 1)
		// Substitution candidates: scalar variables declared at the top
		// level of the kernel body before the insertion point, plus
		// scalar parameters.
		var hosts []hostVar
		if opts.Substitute {
			for _, p := range k.Params {
				if st, ok := p.Type.(*cltypes.Scalar); ok {
					hosts = append(hosts, hostVar{p.Name, st})
				}
			}
			for _, s := range k.Body.Stmts[:pos] {
				if ds, ok := s.(*ast.DeclStmt); ok && ds.Decl.Space == cltypes.Private {
					if st, ok := ds.Decl.Type.(*cltypes.Scalar); ok {
						hosts = append(hosts, hostVar{ds.Decl.Name, st})
					}
				}
			}
		}
		blk, n := buildBlock(rng, opts.DeadLen, hosts)
		subs += n
		k.Body.Stmts = append(k.Body.Stmts[:pos],
			append([]ast.Stmt{blk}, k.Body.Stmts[pos:]...)...)
	}
	return subs, nil
}

type hostVar struct {
	name string
	typ  *cltypes.Scalar
}
