// Package emi implements equivalence-modulo-inputs testing for OpenCL
// (paper §5): locating dead-by-construction EMI blocks, deriving program
// variants by pruning them with the leaf, compound and (novel) lift
// strategies, and injecting EMI blocks into existing kernels with
// optional free-variable substitution.
//
// An EMI block is guarded by a host-controlled predicate over the dead
// array (dead[j] = j keeps every block dead), so any pruning of its body
// preserves the program's meaning for the standard inputs — yet real
// compilers were provoked into miscompiling the surrounding live code.
//
// Entry points: Inject adds EMI blocks to a parsed kernel (the Table 3
// protocol over the benchmark ports), Prune derives a variant under
// PruneOpts probabilities, and Grid returns the 40-combination pruning
// grid the Table 5 campaign runs per base program. File map: emi.go
// (options and grid), block.go (block discovery, injection and pruning).
package emi
