package emi_test

import (
	"strings"
	"testing"

	"clfuzz/internal/ast"
	"clfuzz/internal/device"
	"clfuzz/internal/emi"
	"clfuzz/internal/generator"
	"clfuzz/internal/oracle"
	"clfuzz/internal/parser"
)

// TestGridShape reproduces the §7.4 sweep shape: every combination of
// pleaf, pcompound, plift over {0, 0.3, 0.6, 1} with pcompound+plift <= 1
// — 40 combinations (the paper's 40 variants per base).
func TestGridShape(t *testing.T) {
	grid := emi.Grid()
	if len(grid) != 40 {
		t.Fatalf("grid has %d combinations, the paper uses 40", len(grid))
	}
	seen := map[[3]float64]bool{}
	for _, po := range grid {
		if po.PCompound+po.PLift > 1 {
			t.Errorf("combination %+v violates pcompound+plift <= 1", po)
		}
		key := [3]float64{po.PLeaf, po.PCompound, po.PLift}
		if seen[key] {
			t.Errorf("duplicate combination %+v", po)
		}
		seen[key] = true
	}
}

// TestEquivalenceModuloInputs is the defining EMI property (§5): every
// pruned variant of a kernel with dead-by-construction blocks computes the
// same output as the base on the defect-free reference, for every grid
// combination.
func TestEquivalenceModuloInputs(t *testing.T) {
	ref := device.Reference()
	for seed := int64(0); seed < 4; seed++ {
		k := generator.Generate(generator.Options{
			Mode: generator.ModeAll, Seed: 7000 + seed, MaxTotalThreads: 32, EMIBlocks: 3,
		})
		base := runRef(t, ref, k.Src, k)
		prog, err := parser.Parse(k.Src)
		if err != nil {
			t.Fatal(err)
		}
		if len(emi.FindBlocks(prog)) == 0 {
			t.Fatalf("seed %d: generated kernel has no recognizable EMI blocks", seed)
		}
		for gi, po := range emi.Grid() {
			po.Seed = seed*100 + int64(gi)
			variant, err := emi.Prune(prog, po)
			if err != nil {
				t.Fatal(err)
			}
			got := runRef(t, ref, ast.Print(variant), k)
			if !oracle.Equal(base, got) {
				t.Fatalf("seed %d grid %d (%+v): EMI variant changed the result on a defect-free compiler",
					seed, gi, po)
			}
		}
	}
}

func runRef(t *testing.T, ref *device.Config, src string, k *generator.Kernel) []uint64 {
	t.Helper()
	cr := ref.Compile(src, true)
	if cr.Outcome != device.OK {
		t.Fatalf("compile: %s\n%s", cr.Msg, src)
	}
	args, result := k.Buffers()
	rr := cr.Kernel.Run(k.ND, args, result, device.RunOptions{})
	if rr.Outcome != device.OK {
		t.Fatalf("run: %s", rr.Msg)
	}
	return rr.Output
}

// TestPruneAllEmpties: PruneAll leaves the guards but no contents.
func TestPruneAllEmpties(t *testing.T) {
	k := generator.Generate(generator.Options{
		Mode: generator.ModeBasic, Seed: 42, MaxTotalThreads: 16, EMIBlocks: 2,
	})
	prog, err := parser.Parse(k.Src)
	if err != nil {
		t.Fatal(err)
	}
	emptied := emi.PruneAll(prog)
	for _, b := range emi.FindBlocks(emptied) {
		if len(b.Then.Stmts) != 0 {
			t.Error("PruneAll left statements inside an EMI block")
		}
	}
	// The original is untouched.
	hadContent := false
	for _, b := range emi.FindBlocks(prog) {
		if len(b.Then.Stmts) > 0 {
			hadContent = true
		}
	}
	if !hadContent {
		t.Error("original program was modified by PruneAll")
	}
}

// TestFullPruning: pleaf=pcompound=1 removes every statement except
// declarations (which anchor later uses).
func TestFullPruning(t *testing.T) {
	k := generator.Generate(generator.Options{
		Mode: generator.ModeBasic, Seed: 4, MaxTotalThreads: 16, EMIBlocks: 2,
	})
	prog, err := parser.Parse(k.Src)
	if err != nil {
		t.Fatal(err)
	}
	v, err := emi.Prune(prog, emi.PruneOpts{PLeaf: 1, PCompound: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range emi.FindBlocks(v) {
		for _, s := range b.Then.Stmts {
			if _, ok := s.(*ast.DeclStmt); !ok {
				t.Errorf("full pruning left a %T", s)
			}
		}
	}
}

// TestLiftStripsJumps: lifting a loop must remove its outermost break and
// continue statements (§5) so the variant stays compilable.
func TestLiftStripsJumps(t *testing.T) {
	src := `
kernel void entry(global ulong *result, global int *dead) {
    int acc = 0;
    if (dead[5] < dead[2]) {
        for (int i = 0; i < 8; i++) {
            acc += i;
            if (i > 3) { break; }
            for (int j = 0; j < 3; j++) {
                if (j > 1) { continue; }
                acc += j;
            }
        }
    }
    result[get_linear_global_id()] = (ulong)(uint)acc;
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Force lifting of every compound node.
	v, err := emi.Prune(prog, emi.PruneOpts{PLift: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.Print(v)
	if strings.Contains(printed, "break") {
		t.Errorf("lift left a dangling break:\n%s", printed)
	}
	// The lifted variant must still compile and agree with the base.
	ref := device.Reference()
	if cr := ref.Compile(printed, true); cr.Outcome != device.OK {
		t.Fatalf("lifted variant does not compile: %s\n%s", cr.Msg, printed)
	}
}

// TestAdjustedLiftProbability: with pcompound=0.6 and plift=0.4 the
// effective lift probability is 1 (0.4/(1-0.6)), so every surviving
// compound node must be lifted: no if/for may remain inside EMI blocks.
func TestAdjustedLiftProbability(t *testing.T) {
	k := generator.Generate(generator.Options{
		Mode: generator.ModeBasic, Seed: 77, MaxTotalThreads: 16, EMIBlocks: 3,
	})
	prog, err := parser.Parse(k.Src)
	if err != nil {
		t.Fatal(err)
	}
	v, err := emi.Prune(prog, emi.PruneOpts{PCompound: 0.6, PLift: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range emi.FindBlocks(v) {
		for _, s := range b.Then.Stmts {
			switch s.(type) {
			case *ast.If, *ast.For, *ast.While, *ast.DoWhile:
				t.Errorf("compound statement survived p'lift = 1: %T", s)
			}
		}
	}
	// And the constraint violation is reported.
	if _, err := emi.Prune(prog, emi.PruneOpts{PCompound: 0.7, PLift: 0.5}); err == nil {
		t.Error("pcompound+plift > 1 accepted")
	}
}

// TestInjectSubstitution: injection with substitutions aliases free
// variables to host-kernel variables; without, all variables are local.
func TestInjectSubstitution(t *testing.T) {
	src := `
kernel void entry(global ulong *out) {
    int hostvar = 3;
    int other = 4;
    out[get_linear_global_id()] = (ulong)(uint)(hostvar + other);
}
`
	totalSubs := 0
	for seed := int64(0); seed < 10; seed++ {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		n, err := emi.Inject(prog, emi.InjectOptions{Seed: seed, Blocks: 2, Substitute: true})
		if err != nil {
			t.Fatal(err)
		}
		totalSubs += n
		if len(emi.FindBlocks(prog)) == 0 {
			t.Fatal("no EMI blocks after injection")
		}
		// The injected program must still compile on the reference.
		if cr := device.Reference().Compile(ast.Print(prog), true); cr.Outcome != device.OK {
			t.Fatalf("seed %d: injected kernel does not compile: %s", seed, cr.Msg)
		}
	}
	if totalSubs == 0 {
		t.Error("substitutions never happened across 10 seeds")
	}
	// Without substitution: zero substitutions, still compiles.
	prog, _ := parser.Parse(src)
	n, err := emi.Inject(prog, emi.InjectOptions{Seed: 5, Blocks: 1, Substitute: false})
	if err != nil || n != 0 {
		t.Errorf("subs-off injection reported %d substitutions (err %v)", n, err)
	}
}

// TestGuardRecognition: only the §5 guard shape is treated as an EMI
// block.
func TestGuardRecognition(t *testing.T) {
	src := `
kernel void entry(global ulong *result, global int *dead) {
    if (dead[3] < dead[1]) { result[0] = 1UL; }
    if (dead[1] < dead[3]) { result[0] = 2UL; }
    if (dead[3] > dead[1]) { result[0] = 3UL; }
    result[get_linear_global_id()] = 0UL;
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	blocks := emi.FindBlocks(prog)
	if len(blocks) != 1 {
		t.Fatalf("found %d EMI blocks, want exactly the dead[3] < dead[1] guard", len(blocks))
	}
}
