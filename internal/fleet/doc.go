// Package fleet is the fault-tolerant campaign supervisor: it
// partitions a table campaign into clfuzz-shard/v1 slices, dispatches
// each slice to an isolated worker process, and merges the results into
// output byte-identical to a direct unsharded run.
//
// Process isolation is the containment boundary the in-process
// campaign engine cannot provide: a worker that panics, deadlocks, is
// OOM-killed or SIGKILLed costs one attempt of one shard, never the
// campaign. The supervisor's lifecycle per shard is
//
//	dispatch → (success | failure) → retry with exponential backoff
//	        → … → quarantine after 1+Retries failures
//
// with a per-attempt wall-clock timeout, speculative re-dispatch of the
// last straggling shard (first valid result wins), and a checkpoint
// directory from which both the supervisor (complete shards are skipped)
// and the workers themselves (partial shards re-run only missing cases)
// resume after an interruption.
//
// Quarantined shards surface in the merged table as failed cases — a
// crash on every observation — so a partially-lost campaign still
// renders, visibly degraded, instead of aborting.
//
// The deterministic executor makes all of this safe: every worker
// computes bit-identical records for its cases, so retries, speculation
// races and resumed partial files can never disagree about a result.
package fleet
