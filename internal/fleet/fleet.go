package fleet

import (
	"context"
	"fmt"
	"os"
	osexec "os/exec"
	"path/filepath"
	"sort"
	"time"

	"clfuzz/internal/harness"
)

// WorkerFactory builds the worker process for one shard attempt: a
// command that, when run, executes shard `shard` of `of` and writes the
// clfuzz-shard/v1 file to outPath (atomically — partial writes must
// never be visible under outPath). The command must be bound to ctx
// (osexec.CommandContext), which the supervisor cancels on timeout,
// speculation loss and shutdown; factories may set Cancel/WaitDelay for
// a graceful SIGINT drain before the kill.
//
// cltables re-execs itself here; tests substitute shell scripts.
type WorkerFactory func(ctx context.Context, shard, of int, outPath string) *osexec.Cmd

// Config tunes the supervisor.
type Config struct {
	// Shards is the partition width (and the worker process count: every
	// shard gets its own process, restarted independently on failure).
	Shards int
	// ShardTimeout is the per-attempt wall-clock budget; a worker still
	// running when it expires is killed and the attempt counts as a
	// failure. Zero disables the timeout.
	ShardTimeout time.Duration
	// Retries is the number of re-dispatches a failing shard gets beyond
	// its first attempt before it is quarantined.
	Retries int
	// Backoff is the delay before a shard's first retry; each subsequent
	// retry doubles it, capped at MaxBackoff, with deterministic
	// per-(shard, attempt) jitter so a fleet of failing workers does not
	// relaunch in lockstep. Defaults: 250ms and 5s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// NoSpeculate disables straggler re-dispatch (the speculative
	// duplicate of the last unfinished shard).
	NoSpeculate bool
	// CheckpointDir holds the per-shard result files. A re-run over the
	// same directory resumes: shards whose files are already complete are
	// not re-executed, and workers of partial files re-run only their
	// missing cases. Required.
	CheckpointDir string
	// Worker spawns shard attempts. Required.
	Worker WorkerFactory
	// Log, when non-nil, receives supervision events (printf-style).
	Log func(format string, args ...any)
}

// Report is the outcome of a supervised campaign.
type Report struct {
	// Output is the merged rendered table — byte-identical to a direct
	// unsharded run when no shard was quarantined.
	Output string
	// Launches counts worker processes started (retries and speculative
	// duplicates included; checkpointed shards excluded).
	Launches int
	// Resumed counts shards whose checkpoint file was already complete
	// when the supervisor started, so no worker ran for them.
	Resumed int
	// Quarantined lists the shards that exhausted their retry budget;
	// their cases appear in Output as failed (crash) observations.
	Quarantined []int
	// FailedCases is the total case count across quarantined shards.
	FailedCases int
}

type attemptResult struct {
	shard   int
	attempt int
	err     error
}

type supervisor struct {
	p   harness.Params
	cfg Config

	resCh   chan attemptResult
	retryCh chan int
	// cancels tracks every live attempt's cancel func, keyed by a unique
	// attempt id, grouped per shard so a winning result can kill its
	// shard's other attempts.
	cancels  map[int]map[int]context.CancelFunc
	nextID   int
	inflight map[int]int
}

// Run executes the campaign named by p under supervision: the case list
// is partitioned into cfg.Shards interleaved slices, each dispatched to
// an isolated worker process with retry, backoff, timeout, straggler
// re-dispatch and checkpoint/resume, and the shard files merged into the
// rendered table. A worker crash — including an evaluator panic or an
// OS-level kill — costs one attempt, never the campaign.
func Run(ctx context.Context, p harness.Params, cfg Config) (*Report, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 shard, have %d", cfg.Shards)
	}
	if cfg.Worker == nil {
		return nil, fmt.Errorf("fleet: no worker factory")
	}
	if cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("fleet: no checkpoint directory")
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &supervisor{
		p: p, cfg: cfg,
		resCh:    make(chan attemptResult),
		retryCh:  make(chan int),
		cancels:  map[int]map[int]context.CancelFunc{},
		inflight: map[int]int{},
	}
	rep := &Report{}

	// Checkpoint scan: shards with a complete, matching file need no
	// worker at all; anything else (absent, partial, stale, corrupt) is
	// dispatched — the worker itself resumes from a valid partial file.
	remaining := map[int]bool{}
	for i := 0; i < cfg.Shards; i++ {
		if s.checkpointed(i) {
			rep.Resumed++
			cfg.Log("fleet: shard %d/%d already complete in checkpoint, skipping", i, cfg.Shards)
			continue
		}
		remaining[i] = true
	}

	fails := map[int]int{}
	speculated := map[int]bool{}
	quarantined := map[int]bool{}
	for shard := range remaining {
		s.launch(ctx, shard, 1, rep)
	}
	// Speculation exists to outrun a straggler's slow node, which is only
	// evidenced by siblings finishing first; a run that dispatched a
	// single shard (everything else checkpointed) has no siblings, and a
	// duplicate would be pure waste.
	canSpeculate := !cfg.NoSpeculate && len(remaining) > 1
	for len(remaining) > 0 {
		// Straggler re-dispatch: when exactly one shard is still running
		// and every sibling has finished, launch one speculative
		// duplicate; the first attempt to produce a valid file wins and
		// the loser is killed. Both write the same deterministic bytes,
		// so the rename race is benign.
		if canSpeculate && len(remaining) == 1 {
			for shard := range remaining {
				if !speculated[shard] && s.inflight[shard] == 1 {
					speculated[shard] = true
					cfg.Log("fleet: speculatively re-dispatching straggler shard %d", shard)
					s.launch(ctx, shard, fails[shard]+1, rep)
				}
			}
		}
		select {
		case r := <-s.resCh:
			s.inflight[r.shard]--
			delete(s.cancels[r.shard], r.attempt)
			if !remaining[r.shard] {
				continue // a sibling attempt already settled this shard
			}
			if r.err == nil {
				delete(remaining, r.shard)
				s.killShard(r.shard) // speculation loser, if any
				cfg.Log("fleet: shard %d complete", r.shard)
				continue
			}
			fails[r.shard]++
			cfg.Log("fleet: shard %d attempt failed (%d/%d): %v", r.shard, fails[r.shard], 1+cfg.Retries, r.err)
			if s.inflight[r.shard] > 0 {
				continue // a duplicate is still running; let it race the verdict
			}
			if fails[r.shard] > cfg.Retries {
				delete(remaining, r.shard)
				quarantined[r.shard] = true
				cfg.Log("fleet: shard %d quarantined after %d failures", r.shard, fails[r.shard])
				continue
			}
			delay := backoffFor(cfg.Backoff, cfg.MaxBackoff, r.shard, fails[r.shard])
			cfg.Log("fleet: retrying shard %d in %v", r.shard, delay)
			go func(shard int) {
				select {
				case <-time.After(delay):
					select {
					case s.retryCh <- shard:
					case <-ctx.Done():
					}
				case <-ctx.Done():
				}
			}(r.shard)
		case shard := <-s.retryCh:
			if remaining[shard] && s.inflight[shard] == 0 {
				s.launch(ctx, shard, fails[shard]+1, rep)
			}
		case <-ctx.Done():
			s.shutdown()
			return nil, ctx.Err()
		}
	}
	s.shutdown()

	// Merge: completed shards from their checkpoint files, quarantined
	// shards from synthesized all-crash records, so the table always
	// renders and the loss is visible in it.
	var files []*harness.ShardFile
	var names []string
	for i := 0; i < cfg.Shards; i++ {
		if quarantined[i] {
			sf, err := harness.QuarantineShard(p, i, cfg.Shards)
			if err != nil {
				return nil, fmt.Errorf("fleet: quarantine shard %d: %w", i, err)
			}
			files = append(files, sf)
			names = append(names, fmt.Sprintf("quarantined shard %d", i))
			rep.Quarantined = append(rep.Quarantined, i)
			rep.FailedCases += len(sf.Records)
			continue
		}
		path := s.shardPath(i)
		sf, err := harness.LoadShardFile(path)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		files = append(files, sf)
		names = append(names, path)
	}
	sort.Ints(rep.Quarantined)
	out, err := harness.MergeShardsNamed(files, names)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	rep.Output = out
	return rep, nil
}

func (s *supervisor) shardPath(i int) string {
	return filepath.Join(s.cfg.CheckpointDir, fmt.Sprintf("shard-%d-of-%d.json", i, s.cfg.Shards))
}

// checkpointed reports whether shard i's file is already a complete,
// matching result.
func (s *supervisor) checkpointed(i int) bool {
	sf, err := harness.LoadShardFile(s.shardPath(i))
	if err != nil {
		return false
	}
	return sf.Params == s.p && sf.Shard == i && sf.Of == s.cfg.Shards && sf.Complete()
}

// launch starts one worker attempt for the shard.
func (s *supervisor) launch(ctx context.Context, shard, attempt int, rep *Report) {
	actx, cancel := context.WithCancel(ctx)
	if s.cfg.ShardTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, s.cfg.ShardTimeout)
	}
	id := s.nextID
	s.nextID++
	if s.cancels[shard] == nil {
		s.cancels[shard] = map[int]context.CancelFunc{}
	}
	s.cancels[shard][id] = cancel
	s.inflight[shard]++
	rep.Launches++
	s.cfg.Log("fleet: launching shard %d/%d (attempt %d)", shard, s.cfg.Shards, attempt)
	go func() {
		defer cancel()
		err := s.attempt(actx, shard)
		if err != nil && actx.Err() == context.DeadlineExceeded {
			err = fmt.Errorf("shard %d: timed out after %v", shard, s.cfg.ShardTimeout)
		}
		s.resCh <- attemptResult{shard: shard, attempt: id, err: err}
	}()
}

// attempt runs one worker process to completion and validates its
// output file. Any failure — spawn error, nonzero exit, kill, missing,
// truncated, mismatched or incomplete output — is one failed attempt.
func (s *supervisor) attempt(ctx context.Context, shard int) error {
	out := s.shardPath(shard)
	cmd := s.cfg.Worker(ctx, shard, s.cfg.Shards, out)
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("shard %d: worker: %w", shard, err)
	}
	sf, err := harness.LoadShardFile(out)
	if err != nil {
		return fmt.Errorf("shard %d: %w", shard, err)
	}
	if sf.Params != s.p || sf.Shard != shard || sf.Of != s.cfg.Shards {
		return fmt.Errorf("shard %d: %s holds shard %d/%d of another campaign", shard, out, sf.Shard, sf.Of)
	}
	if !sf.Complete() {
		return fmt.Errorf("shard %d: %s is incomplete (%d records)", shard, out, len(sf.Records))
	}
	return nil
}

// killShard cancels every live attempt of the shard.
func (s *supervisor) killShard(shard int) {
	for id, cancel := range s.cancels[shard] {
		cancel()
		delete(s.cancels[shard], id)
	}
}

// shutdown kills all live attempts and drains their results so no
// goroutine is left blocked on the result channel.
func (s *supervisor) shutdown() {
	for _, m := range s.cancels {
		for id, cancel := range m {
			cancel()
			delete(m, id)
		}
	}
	live := 0
	for _, n := range s.inflight {
		live += n
	}
	for live > 0 {
		r := <-s.resCh
		s.inflight[r.shard]--
		live--
	}
}

// backoffFor returns the delay before the shard's next retry: Backoff
// doubled per prior failure, capped at max, with deterministic
// per-(shard, attempt) jitter in [d/2, d) so repeated runs are
// reproducible but a failing fleet does not retry in lockstep.
func backoffFor(base, max time.Duration, shard, fails int) time.Duration {
	d := base
	for i := 1; i < fails && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := uint64(shard+1)*0x9E3779B97F4A7C15 ^ uint64(fails)*0xBF58476D1CE4E5B9
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	frac := float64(h%1024) / 1024
	return d/2 + time.Duration(float64(d/2)*frac)
}
