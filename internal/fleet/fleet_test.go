package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	osexec "os/exec"
	"path/filepath"
	"testing"
	"time"

	"clfuzz/internal/harness"
)

// Fleet mechanics are tested against scripted fake workers: the
// supervisor only contracts for "a process that leaves a valid
// clfuzz-shard/v1 file at outPath", so the tests precompute payload
// files (empty-record shards of a real Table 1 parameterization, which
// merge and render fine) and drive them through sh scripts that copy,
// fail, hang or race as each scenario needs. The real worker binary is
// exercised end to end by the CI fleet job.

func testParams() harness.Params {
	return harness.Params{Table: 1, Scale: 1, Seed: 7, Threads: 8, Fuel: harness.DefaultFuelParam()}
}

// writePayloads writes one complete synthetic shard file per shard into
// dir and returns their paths, indexed by shard.
func writePayloads(t *testing.T, dir string, p harness.Params, of int) []string {
	t.Helper()
	cases, err := harness.CampaignCases(p)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, of)
	for shard := 0; shard < of; shard++ {
		sf := &harness.ShardFile{Schema: harness.ShardSchema, Params: p, Cases: cases, Shard: shard, Of: of}
		for i := shard; i < cases; i += of {
			sf.Records = append(sf.Records, harness.ShardRecord{Index: i, Data: json.RawMessage(`{"results":[]}`)})
		}
		b, err := json.Marshal(sf)
		if err != nil {
			t.Fatal(err)
		}
		paths[shard] = filepath.Join(dir, fmt.Sprintf("payload-%d.json", shard))
		if err := os.WriteFile(paths[shard], b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// scriptWorker runs the sh script for each attempt with $1=shard,
// $2=of, $3=outPath and $4=a scratch dir for latches.
func scriptWorker(script, scratch string) WorkerFactory {
	return func(ctx context.Context, shard, of int, outPath string) *osexec.Cmd {
		return osexec.CommandContext(ctx, "sh", "-c", script, "worker",
			fmt.Sprint(shard), fmt.Sprint(of), outPath, scratch)
	}
}

// copyScript atomically installs the shard's payload at the out path.
const copyScript = `cp "$4/payload-$1.json" "$3.tmp.$$" && mv "$3.tmp.$$" "$3"`

func TestRunHappyPath(t *testing.T) {
	p := testParams()
	scratch := t.TempDir()
	writePayloads(t, scratch, p, 3)
	rep, err := Run(context.Background(), p, Config{
		Shards:        3,
		CheckpointDir: t.TempDir(),
		Worker:        scriptWorker(copyScript, scratch),
		NoSpeculate:   true,
		Log:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launches != 3 || rep.Resumed != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("report = %+v, want 3 launches, 0 resumed, 0 quarantined", rep)
	}
	if rep.Output == "" {
		t.Fatal("empty merged output")
	}

	// The partition width must not affect the merged bytes.
	scratch1 := t.TempDir()
	writePayloads(t, scratch1, p, 1)
	rep1, err := Run(context.Background(), p, Config{
		Shards:        1,
		CheckpointDir: t.TempDir(),
		Worker:        scriptWorker(copyScript, scratch1),
		NoSpeculate:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Output != rep.Output {
		t.Fatalf("1-shard output differs from 3-shard output:\n%s\nvs\n%s", rep1.Output, rep.Output)
	}
}

func TestRetryAfterWorkerDeath(t *testing.T) {
	p := testParams()
	scratch := t.TempDir()
	writePayloads(t, scratch, p, 3)
	// Shard 1's first attempt dies before writing anything; the retry
	// succeeds. Other shards succeed immediately.
	script := `
if [ "$1" = 1 ] && [ ! -e "$4/latch" ]; then touch "$4/latch"; exit 1; fi
` + copyScript
	rep, err := Run(context.Background(), p, Config{
		Shards:        3,
		Retries:       2,
		Backoff:       5 * time.Millisecond,
		CheckpointDir: t.TempDir(),
		Worker:        scriptWorker(script, scratch),
		NoSpeculate:   true,
		Log:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launches != 4 {
		t.Fatalf("launches = %d, want 4 (3 shards + 1 retry)", rep.Launches)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("quarantined = %v, want none", rep.Quarantined)
	}
}

func TestTimeoutKillsHungWorker(t *testing.T) {
	p := testParams()
	scratch := t.TempDir()
	writePayloads(t, scratch, p, 2)
	// Shard 0's first attempt hangs; the shard timeout must kill it and
	// the retry succeeds.
	script := `
if [ "$1" = 0 ] && [ ! -e "$4/latch" ]; then touch "$4/latch"; sleep 300; fi
` + copyScript
	rep, err := Run(context.Background(), p, Config{
		Shards:        2,
		Retries:       1,
		ShardTimeout:  300 * time.Millisecond,
		Backoff:       5 * time.Millisecond,
		CheckpointDir: t.TempDir(),
		Worker:        scriptWorker(script, scratch),
		NoSpeculate:   true,
		Log:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launches != 3 {
		t.Fatalf("launches = %d, want 3 (2 shards + 1 retry of the hung one)", rep.Launches)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("quarantined = %v, want none", rep.Quarantined)
	}
}

func TestQuarantineAfterRetriesExhausted(t *testing.T) {
	p := testParams()
	scratch := t.TempDir()
	writePayloads(t, scratch, p, 3)
	// Shard 2 never succeeds; the campaign must still complete, with the
	// shard quarantined and its cases surfaced as failures.
	script := `if [ "$1" = 2 ]; then exit 1; fi
` + copyScript
	rep, err := Run(context.Background(), p, Config{
		Shards:        3,
		Retries:       2,
		Backoff:       5 * time.Millisecond,
		CheckpointDir: t.TempDir(),
		Worker:        scriptWorker(script, scratch),
		NoSpeculate:   true,
		Log:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Quarantined; len(got) != 1 || got[0] != 2 {
		t.Fatalf("quarantined = %v, want [2]", got)
	}
	if rep.Launches != 5 {
		t.Fatalf("launches = %d, want 5 (2 good shards + 3 attempts at shard 2)", rep.Launches)
	}
	if rep.FailedCases == 0 {
		t.Fatal("no failed cases counted for the quarantined shard")
	}
	if rep.Output == "" {
		t.Fatal("quarantine aborted the merge")
	}
}

func TestCheckpointResume(t *testing.T) {
	p := testParams()
	scratch := t.TempDir()
	payloads := writePayloads(t, scratch, p, 3)
	ckpt := t.TempDir()
	// Shards 0 and 1 are already complete in the checkpoint directory;
	// only shard 2 may launch a worker.
	for i := 0; i < 2; i++ {
		b, err := os.ReadFile(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(ckpt, fmt.Sprintf("shard-%d-of-3.json", i)), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Speculation stays enabled: a run whose only dispatched shard has no
	// siblings to race must not speculatively duplicate it.
	rep, err := Run(context.Background(), p, Config{
		Shards:        3,
		CheckpointDir: ckpt,
		Worker:        scriptWorker(copyScript, scratch),
		Log:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 2 || rep.Launches != 1 {
		t.Fatalf("report = %+v, want 2 resumed and exactly 1 launch", rep)
	}
}

func TestCorruptCheckpointIsRedispatched(t *testing.T) {
	p := testParams()
	scratch := t.TempDir()
	writePayloads(t, scratch, p, 2)
	ckpt := t.TempDir()
	// A worker killed mid-write without the atomic rename would leave
	// garbage; the supervisor must treat it as absent, not crash on it.
	if err := os.WriteFile(filepath.Join(ckpt, "shard-0-of-2.json"), []byte(`{"schema":"clfuzz-sh`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), p, Config{
		Shards:        2,
		CheckpointDir: ckpt,
		Worker:        scriptWorker(copyScript, scratch),
		NoSpeculate:   true,
		Log:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != 0 || rep.Launches != 2 {
		t.Fatalf("report = %+v, want 0 resumed and 2 launches", rep)
	}
}

func TestSpeculativeRedispatchOfStraggler(t *testing.T) {
	p := testParams()
	scratch := t.TempDir()
	writePayloads(t, scratch, p, 2)
	// Shard 1's first attempt latches then hangs. With no shard timeout,
	// only the speculative duplicate — dispatched once shard 0 finishes
	// and seeing the latch — can complete the campaign.
	script := `
if [ "$1" = 1 ] && [ ! -e "$4/latch" ]; then touch "$4/latch"; sleep 300; fi
` + copyScript
	rep, err := Run(context.Background(), p, Config{
		Shards:        2,
		CheckpointDir: t.TempDir(),
		Worker:        scriptWorker(script, scratch),
		Log:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Launches != 3 {
		t.Fatalf("launches = %d, want 3 (2 shards + 1 speculative duplicate)", rep.Launches)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("quarantined = %v, want none", rep.Quarantined)
	}
}

func TestRunCanceled(t *testing.T) {
	p := testParams()
	scratch := t.TempDir()
	writePayloads(t, scratch, p, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, p, Config{
		Shards:        2,
		CheckpointDir: t.TempDir(),
		Worker:        scriptWorker(`sleep 300`, scratch),
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	for shard := 0; shard < 4; shard++ {
		for fails := 1; fails <= 6; fails++ {
			d1 := backoffFor(base, max, shard, fails)
			d2 := backoffFor(base, max, shard, fails)
			if d1 != d2 {
				t.Fatalf("backoffFor(%d, %d) not deterministic: %v vs %v", shard, fails, d1, d2)
			}
			if d1 < base/2 || d1 > max {
				t.Fatalf("backoffFor(%d, %d) = %v outside [%v, %v]", shard, fails, d1, base/2, max)
			}
		}
	}
	if a, b := backoffFor(base, max, 0, 1), backoffFor(base, max, 1, 1); a == b {
		t.Fatalf("expected distinct jitter for different shards, both %v", a)
	}
}
