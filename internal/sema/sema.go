package sema

import (
	"fmt"

	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
)

// BuildError is a front-end diagnostic: the kernel is rejected at build
// time. In campaign terms it is a "build failure" outcome.
type BuildError struct{ Msg string }

// Error implements the error interface.
func (e *BuildError) Error() string { return e.Msg }

// HangError reports that the compiler would not terminate on this input
// (Figure 1(e)); the harness classifies it as a timeout.
type HangError struct{ Msg string }

// Error implements the error interface.
func (e *HangError) Error() string { return e.Msg }

// Info summarizes program features that the defect model and the campaign
// statistics consult.
type Info struct {
	HasBarrier     bool
	BarrierCount   int
	HasAtomic      bool
	HasFwdDecl     bool // a forward declaration with a later definition
	MaxStructBytes int
	UsesGroupID    bool
	UsesVector     bool
	HasComma       bool
	HasHangPattern bool // constant-bound >=197 for loop guarding while(1)
	HasVolatile    bool
	FuncCount      int
	StmtCount      int
}

// Check type-checks the program under the given defect set and returns a
// freshly built, fully annotated program: every expression carries its
// type and vector member accesses are rewritten into swizzles. The input
// program is never written to — checking rebuilds nodes instead of
// mutating them (copy-on-write: nodes that need no annotation, such as
// already-typed literals, are shared) — so one pristine parse may be
// checked concurrently under any number of defect sets. It also returns
// program feature information used by the defect model.
func Check(prog *ast.Program, defects bugs.Set) (*ast.Program, *Info, error) {
	c := &checker{
		prog:    prog,
		defects: defects,
		info:    &Info{},
		funcs:   map[string]*ast.FuncDecl{},
	}
	out, err := c.check()
	return out, c.info, err
}

// sym is a resolved name.
type sym struct {
	typ      cltypes.Type
	space    cltypes.AddrSpace
	isConst  bool
	volatile bool
}

type scope struct {
	parent *scope
	names  map[string]*sym
}

func (s *scope) lookup(name string) *sym {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.names[name]; ok {
			return v
		}
	}
	return nil
}

func (s *scope) define(name string, v *sym) { s.names[name] = v }

func newScope(parent *scope) *scope { return &scope{parent: parent, names: map[string]*sym{}} }

type checker struct {
	prog    *ast.Program
	defects bugs.Set
	info    *Info
	funcs   map[string]*ast.FuncDecl
	globals *scope
	cur     *ast.FuncDecl
	scope   *scope
	loop    int // loop nesting depth, for break/continue checking
	a       nodeArena
}

func (c *checker) errf(format string, args ...any) error {
	return &BuildError{Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) check() (*ast.Program, error) {
	// Struct definitions: the Altera vector-in-struct internal error
	// (Figure 1(c)) fires here, during IR generation for the type.
	for _, st := range c.prog.Structs {
		for _, f := range st.Fields {
			if containsVector(f.Type) && c.defects.Has(bugs.FEVectorInStructICE) {
				return nil, c.errf("internal error: LLVM IR generation failed for %s (vector in aggregate)", st.String())
			}
			if sz := st.Size(); sz > c.info.MaxStructBytes {
				c.info.MaxStructBytes = sz
			}
		}
	}
	out := &ast.Program{Structs: c.prog.Structs}
	c.globals = newScope(nil)
	for _, g := range c.prog.Globals {
		if g.Space != cltypes.Constant {
			return nil, c.errf("program-scope variable %s must be in constant address space", g.Name)
		}
		ng := *g
		if g.Init != nil {
			init, err := c.checkInit(g.Type, g.Init)
			if err != nil {
				return nil, err
			}
			ng.Init = init
		}
		c.globals.define(g.Name, &sym{typ: g.Type, space: cltypes.Constant, isConst: true})
		out.Globals = append(out.Globals, &ng)
	}
	// Collect function declarations in order, checking redeclarations.
	kernels := 0
	for _, f := range c.prog.Funcs {
		prev, seen := c.funcs[f.Name]
		if seen {
			if prev.Body != nil && f.Body != nil {
				return nil, c.errf("redefinition of function %s", f.Name)
			}
			if !sameSignature(prev, f) {
				return nil, c.errf("conflicting declarations of function %s", f.Name)
			}
			if prev.Body == nil && f.Body != nil {
				c.info.HasFwdDecl = true
			}
		}
		if f.Body != nil || !seen {
			c.funcs[f.Name] = f
		}
		if f.IsKernel && f.Body != nil {
			kernels++
			if !f.Ret.Equal(cltypes.TVoid) {
				return nil, c.errf("kernel %s must return void", f.Name)
			}
		}
		if f.Body != nil {
			c.info.FuncCount++
		}
	}
	if kernels == 0 {
		return nil, c.errf("no kernel function defined")
	}
	// Check bodies in order, rebuilding each definition. OpenCL C (like C)
	// requires declaration before use; the collection pass above already
	// registered all names, so we enforce order only loosely (CLsmith emits
	// forward declarations). Bodiless forward declarations carry no
	// annotations and are shared with the input program.
	for _, f := range c.prog.Funcs {
		if f.Body == nil {
			out.Funcs = append(out.Funcs, f)
			continue
		}
		nf, err := c.checkFunc(f)
		if err != nil {
			return nil, err
		}
		out.Funcs = append(out.Funcs, nf)
	}
	return out, nil
}

func sameSignature(a, b *ast.FuncDecl) bool {
	if !a.Ret.Equal(b.Ret) || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if !a.Params[i].Type.Equal(b.Params[i].Type) {
			return false
		}
	}
	return true
}

func containsVector(t cltypes.Type) bool {
	switch tt := t.(type) {
	case *cltypes.Vector:
		return true
	case *cltypes.Array:
		return containsVector(tt.Elem)
	case *cltypes.StructT:
		for _, f := range tt.Fields {
			if containsVector(f.Type) {
				return true
			}
		}
	}
	return false
}

func (c *checker) checkFunc(f *ast.FuncDecl) (*ast.FuncDecl, error) {
	c.cur = f
	c.scope = newScope(c.globals)
	for _, p := range f.Params {
		space := cltypes.Private
		if pt, ok := p.Type.(*cltypes.Pointer); ok {
			space = pt.Space
		}
		c.scope.define(p.Name, &sym{typ: p.Type, space: space})
	}
	body, err := c.checkBlock(f.Body)
	if err != nil {
		return nil, err
	}
	nf := *f
	nf.Body = body
	return &nf, nil
}

func (c *checker) checkBlock(b *ast.Block) (*ast.Block, error) {
	outer := c.scope
	c.scope = newScope(outer)
	defer func() { c.scope = outer }()
	out := &ast.Block{Stmts: grabSlice(&c.a.stmts, len(b.Stmts))}
	for i, s := range b.Stmts {
		ns, err := c.checkStmt(s)
		if err != nil {
			return nil, err
		}
		out.Stmts[i] = ns
	}
	return out, nil
}

func (c *checker) checkStmt(s ast.Stmt) (ast.Stmt, error) {
	c.info.StmtCount++
	switch st := s.(type) {
	case *ast.DeclStmt:
		nd, err := c.checkVarDecl(st.Decl)
		if err != nil {
			return nil, err
		}
		return &ast.DeclStmt{Decl: nd}, nil
	case *ast.ExprStmt:
		x, err := c.checkExpr(st.X)
		if err != nil {
			return nil, err
		}
		return &ast.ExprStmt{X: x}, nil
	case *ast.Block:
		return c.checkBlock(st)
	case *ast.If:
		cond, err := c.checkScalarCond(st.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.checkBlock(st.Then)
		if err != nil {
			return nil, err
		}
		ns := &ast.If{Cond: cond, Then: then}
		if st.Else != nil {
			els, err := c.checkStmt(st.Else)
			if err != nil {
				return nil, err
			}
			ns.Else = els
		}
		return ns, nil
	case *ast.For:
		outer := c.scope
		c.scope = newScope(outer)
		defer func() { c.scope = outer }()
		ns := &ast.For{}
		if st.Init != nil {
			init, err := c.checkStmt(st.Init)
			if err != nil {
				return nil, err
			}
			c.info.StmtCount-- // init was counted by the recursive call
			ns.Init = init
		}
		if st.Cond != nil {
			cond, err := c.checkScalarCond(st.Cond)
			if err != nil {
				return nil, err
			}
			ns.Cond = cond
		}
		if st.Post != nil {
			post, err := c.checkExpr(st.Post)
			if err != nil {
				return nil, err
			}
			ns.Post = post
		}
		c.detectHangPattern(st)
		c.loop++
		defer func() { c.loop-- }()
		body, err := c.checkBlock(st.Body)
		if err != nil {
			return nil, err
		}
		ns.Body = body
		return ns, nil
	case *ast.While:
		cond, err := c.checkScalarCond(st.Cond)
		if err != nil {
			return nil, err
		}
		c.loop++
		defer func() { c.loop-- }()
		body, err := c.checkBlock(st.Body)
		if err != nil {
			return nil, err
		}
		return &ast.While{Cond: cond, Body: body}, nil
	case *ast.DoWhile:
		c.loop++
		body, err := c.checkBlock(st.Body)
		c.loop--
		if err != nil {
			return nil, err
		}
		cond, err := c.checkScalarCond(st.Cond)
		if err != nil {
			return nil, err
		}
		return &ast.DoWhile{Body: body, Cond: cond}, nil
	case *ast.Break:
		if c.loop == 0 {
			return nil, c.errf("break outside of loop")
		}
		return st, nil
	case *ast.Continue:
		if c.loop == 0 {
			return nil, c.errf("continue outside of loop")
		}
		return st, nil
	case *ast.Return:
		if st.X == nil {
			if !c.cur.Ret.Equal(cltypes.TVoid) {
				return nil, c.errf("return without value in function %s returning %s", c.cur.Name, c.cur.Ret)
			}
			return st, nil
		}
		x, err := c.checkExpr(st.X)
		if err != nil {
			return nil, err
		}
		if !c.convertibleTo(x.Type(), c.cur.Ret) {
			return nil, c.errf("cannot return %s from function %s returning %s", x.Type(), c.cur.Name, c.cur.Ret)
		}
		return &ast.Return{X: x}, nil
	case *ast.Empty:
		return st, nil
	}
	return nil, c.errf("unknown statement %T", s)
}

// detectHangPattern checks for the Figure 1(e) shape: a for loop with a
// constant bound of at least 197 whose body conditionally reaches an
// unbounded while loop. When the FECompileHangLoop defect is armed this
// pattern records itself in Info; the compile driver turns it into a hang.
func (c *checker) detectHangPattern(f *ast.For) {
	bin, ok := f.Cond.(*ast.Binary)
	if !ok || (bin.Op != ast.LT && bin.Op != ast.LE) {
		return
	}
	lit, ok := bin.R.(*ast.IntLit)
	if !ok || lit.Val < 197 {
		return
	}
	found := false
	walkStmt(f.Body, func(s ast.Stmt) {
		if w, ok := s.(*ast.While); ok {
			if cl, ok := w.Cond.(*ast.IntLit); ok && cl.Val != 0 {
				found = true
			}
		}
	})
	if found {
		c.info.HasHangPattern = true
	}
}

func (c *checker) checkVarDecl(d *ast.VarDecl) (*ast.VarDecl, error) {
	if d.Space == cltypes.Constant {
		return nil, c.errf("constant address space variables must be program scope")
	}
	if d.Volatile {
		c.info.HasVolatile = true
	}
	if at, ok := d.Type.(*cltypes.Array); ok && at.Len <= 0 {
		return nil, c.errf("array %s has non-positive length", d.Name)
	}
	nd := *d
	if d.Init != nil {
		init, err := c.checkInit(d.Type, d.Init)
		if err != nil {
			return nil, err
		}
		nd.Init = init
	} else if d.Const {
		return nil, c.errf("const variable %s lacks initializer", d.Name)
	}
	c.scope.define(d.Name, &sym{typ: d.Type, space: d.Space, isConst: d.Const, volatile: d.Volatile})
	return &nd, nil
}

// checkInit checks an initializer against the declared type, handling
// braced aggregate initializers. It returns a rebuilt initializer — the
// input node is left untouched — with checked elements and, for braced
// lists, the declared type recorded.
func (c *checker) checkInit(t cltypes.Type, init ast.Expr) (ast.Expr, error) {
	if il, ok := init.(*ast.InitList); ok {
		nl := &ast.InitList{Elems: grabSlice(&c.a.exprs, len(il.Elems))}
		nl.SetType(t)
		switch tt := t.(type) {
		case *cltypes.Array:
			if len(il.Elems) > tt.Len {
				return nil, c.errf("too many initializers for %s", t)
			}
			for i, e := range il.Elems {
				ce, err := c.checkInit(tt.Elem, e)
				if err != nil {
					return nil, err
				}
				nl.Elems[i] = ce
			}
			return nl, nil
		case *cltypes.StructT:
			if tt.IsUnion {
				// C99: a braced union initializer initializes the first
				// member.
				if len(il.Elems) > 1 {
					return nil, c.errf("too many initializers for %s", t)
				}
				if len(il.Elems) == 1 {
					ce, err := c.checkInit(tt.Fields[0].Type, il.Elems[0])
					if err != nil {
						return nil, err
					}
					nl.Elems[0] = ce
				}
				return nl, nil
			}
			if len(il.Elems) > len(tt.Fields) {
				return nil, c.errf("too many initializers for %s", t)
			}
			for i, e := range il.Elems {
				ce, err := c.checkInit(tt.Fields[i].Type, e)
				if err != nil {
					return nil, err
				}
				nl.Elems[i] = ce
			}
			return nl, nil
		default:
			// Scalar braced initializer {x} is legal C.
			if len(il.Elems) != 1 {
				return nil, c.errf("invalid braced initializer for %s", t)
			}
			ce, err := c.checkInit(t, il.Elems[0])
			if err != nil {
				return nil, err
			}
			nl.Elems[0] = ce
			return nl, nil
		}
	}
	x, err := c.checkExpr(init)
	if err != nil {
		return nil, err
	}
	if !c.convertibleTo(x.Type(), t) {
		return nil, c.errf("cannot initialize %s with %s", t, x.Type())
	}
	return x, nil
}

// convertibleTo reports whether a value of type from may implicitly
// initialize/assign to type to.
func (c *checker) convertibleTo(from, to cltypes.Type) bool {
	if from.Equal(to) {
		return true
	}
	_, fs := from.(*cltypes.Scalar)
	_, ts := to.(*cltypes.Scalar)
	if fs && ts {
		return true // scalar conversions are implicit in C
	}
	// Null pointer constant: the literal 0 initializes any pointer.
	if _, ok := to.(*cltypes.Pointer); ok && fs {
		return true // checked by caller context; 0 is the only generated case
	}
	return false
}

func (c *checker) checkScalarCond(e ast.Expr) (ast.Expr, error) {
	x, err := c.checkExpr(e)
	if err != nil {
		return nil, err
	}
	switch x.Type().(type) {
	case *cltypes.Scalar:
		return x, nil
	case *cltypes.Pointer:
		return x, nil // pointers test against null
	}
	return nil, c.errf("condition must have scalar type, found %s", x.Type())
}
