// Package sema implements semantic analysis for the OpenCL C subset:
// symbol resolution, type checking with C99 usual arithmetic conversions,
// OpenCL vector operation typing, builtin signature checking, lvalue and
// const checking, and struct/union initializer checking.
//
// The front end is also the hook point for the injected front-end defects
// (package bugs): the Intel size_t rejection, the Altera vector
// rejections and the compile-hang pattern, mirroring where those bugs
// lived in the real implementations the paper tested.
//
// Check never writes to the program it is handed: it rebuilds the tree
// into a fresh, fully annotated program (sharing already-typed literals
// and bodiless declarations), so one pristine parse can be checked
// concurrently under any number of defect sets and the checked result
// can be published as an immutable artifact (device.BackCache). Node
// allocation is slab-batched (alloc.go): a checked program's nodes live
// and die together with the program.
//
// Check also returns an Info summary of program features — HasBarrier,
// HasAtomic, HasFwdDecl, vector usage, struct sizes — that the defect
// models key on and that the device layer converts into the executor's
// static guarantees (exec.Options.NoBarrier and NoAtomics, which gate the
// sequential fast path and the parallel work-group path respectively).
// The annotations themselves never depend on the defect set (defects only
// gate rejections), which is what lets the device layer share one checked
// program across defect models.
package sema
