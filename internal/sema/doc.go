// Package sema implements semantic analysis for the OpenCL C subset:
// symbol resolution, type checking with C99 usual arithmetic conversions,
// OpenCL vector operation typing, builtin signature checking, lvalue and
// const checking, and struct/union initializer checking.
//
// The front end is also the hook point for the injected front-end defects
// (package bugs): the Intel size_t rejection, the Altera vector
// rejections and the compile-hang pattern, mirroring where those bugs
// lived in the real implementations the paper tested.
//
// Check returns an Info summary of program features — HasBarrier,
// HasAtomic, HasFwdDecl, vector usage, struct sizes — that the defect
// models key on and that the device layer converts into the executor's
// static guarantees (exec.Options.NoBarrier and NoAtomics, which gate the
// sequential fast path and the parallel work-group path respectively).
package sema
