package sema_test

import (
	"strings"
	"testing"

	"clfuzz/internal/bugs"
	"clfuzz/internal/parser"
	"clfuzz/internal/sema"
)

func check(t *testing.T, src string, defects bugs.Set) (*sema.Info, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, info, err := sema.Check(prog, defects)
	return info, err
}

// TestRejections: each program violates one typing rule and must be
// rejected with a build error mentioning the right concept.
func TestRejections(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"undeclared", `kernel void k(global ulong *out) { out[0] = (ulong)x; }`, "undeclared"},
		{"no kernel", `int f(void) { return 1; }`, "no kernel"},
		{"kernel returns value", `kernel int k(void) { return 1; }`, "must return void"},
		{"vector cast", `kernel void k(global ulong *out) { int4 v = (int4)(1,2,3,4); uint4 w = (uint4)v; out[0] = 0UL; }`, "invalid cast"},
		{"vector arity", `kernel void k(global ulong *out) { int4 v = (int4)(1, 2); out[0] = 0UL; }`, "components"},
		{"bad swizzle", `kernel void k(global ulong *out) { int2 v = (int2)(1,2); out[0] = (ulong)(uint)(v).z; }`, "out of range"},
		{"break outside loop", `kernel void k(global ulong *out) { break; }`, "break"},
		{"assign to const global", `constant int c[2] = {1,2};
			kernel void k(global ulong *out) { c[0] = 3; out[0] = 0UL; }`, "const"},
		{"call arity", `int f(int a) { return a; }
			kernel void k(global ulong *out) { out[0] = (ulong)f(1, 2); }`, "expects 1 arguments"},
		{"redefinition", `int f(void) { return 1; }
			int f(void) { return 2; }
			kernel void k(global ulong *out) { out[0] = 0UL; }`, "redefinition"},
		{"conflicting decl", `int f(int x);
			long f(int x) { return 1L; }
			kernel void k(global ulong *out) { out[0] = 0UL; }`, "conflicting"},
		{"aggregate condition", `struct S { int a; };
			kernel void k(global ulong *out) { struct S s = {1}; if (s) { out[0] = 0UL; } }`, "scalar"},
		{"unknown member", `struct S { int a; };
			kernel void k(global ulong *out) { struct S s = {1}; out[0] = (ulong)s.b; }`, "no member"},
		{"atomic space", `kernel void k(global ulong *out) { int x = 0; atomic_inc(&x); out[0] = 0UL; }`, "global or local"},
		{"local initializer", `kernel void k(global ulong *out) { out[0] = 0UL; int q = f_missing(); }`, "undeclared"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := check(t, c.src, 0)
			if err == nil {
				t.Fatalf("accepted invalid program")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestSizeTMixDefect: the config-15 front end rejects int|size_t mixing
// only when the defect is armed.
func TestSizeTMixDefect(t *testing.T) {
	src := `kernel void k(global ulong *out) {
		int x = 0;
		x |= get_group_id(0);
		out[0] = (ulong)x;
	}`
	if _, err := check(t, src, 0); err != nil {
		t.Fatalf("healthy front end rejected legal OpenCL C: %v", err)
	}
	_, err := check(t, src, bugs.FEIntSizeTMix)
	if err == nil || !strings.Contains(err.Error(), "invalid operands") {
		t.Errorf("config-15 defect did not fire: %v", err)
	}
}

// TestVectorLogicalDefect: the Altera front end rejects logical operators
// on vectors; conformant front ends accept them (§6).
func TestVectorLogicalDefect(t *testing.T) {
	src := `kernel void k(global ulong *out) {
		int2 a = (int2)(1, 0);
		int2 b = (int2)(1, 1);
		int2 c = a && b;
		out[0] = (ulong)(uint)c.x;
	}`
	if _, err := check(t, src, 0); err != nil {
		t.Fatalf("conformant front end rejected vector logical op: %v", err)
	}
	if _, err := check(t, src, bugs.FEVectorLogicalReject); err == nil {
		t.Error("Altera defect did not reject vector logical op")
	}
}

// TestVectorInStructDefect is the Figure 1(c) front-end trigger.
func TestVectorInStructDefect(t *testing.T) {
	src := `struct S { int4 x; };
	kernel void k(global ulong *out) { struct S s = {(int4)(1,1,1,1)}; out[0] = (ulong)s.x.x; }`
	if _, err := check(t, src, 0); err != nil {
		t.Fatalf("conformant front end rejected vector-in-struct: %v", err)
	}
	if _, err := check(t, src, bugs.FEVectorInStructICE); err == nil {
		t.Error("Altera ICE did not fire on vector-in-struct")
	}
}

// TestInfoFeatures checks the program-feature summary the defect model
// consumes.
func TestInfoFeatures(t *testing.T) {
	src := `
int helper(int *p);

struct Big { ulong c[9][9][3]; };

int helper(int *p) { return *p; }

kernel void k(global ulong *out) {
	struct Big b;
	b.c[0][0][0] = 1UL;
	barrier(CLK_LOCAL_MEM_FENCE);
	int x = 2;
	atomic_inc(&out[0]);
	out[0] = (ulong)((x , 3) + helper(&x)) + b.c[0][0][0] + (ulong)get_group_id(0);
	for (int i = 0; i < 197; i++) {
		if (x) {
			while (1) { }
		}
	}
}`
	// atomic_inc needs a 32-bit pointer; out is ulong, so adjust: use a
	// separate int buffer parameter.
	src = strings.Replace(src, "atomic_inc(&out[0]);", "", 1)
	info, err := check(t, src, 0)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	if !info.HasBarrier || info.BarrierCount != 1 {
		t.Error("barrier not recorded")
	}
	if !info.HasFwdDecl {
		t.Error("forward declaration with later definition not recorded")
	}
	if !info.HasComma {
		t.Error("comma operator not recorded")
	}
	if !info.UsesGroupID {
		t.Error("group id use not recorded")
	}
	if info.MaxStructBytes < 9*9*3*8 {
		t.Errorf("MaxStructBytes = %d, want >= %d", info.MaxStructBytes, 9*9*3*8)
	}
	if !info.HasHangPattern {
		t.Error("Figure 1(e) hang pattern not detected")
	}
}

// TestGeneratedAlwaysChecks: programs from every generator mode pass a
// defect-free sema (redundant with the generator tests but kept here as
// the package's own contract).
func TestPointerEquality(t *testing.T) {
	src := `kernel void k(global ulong *out) {
		int a = 1;
		int *p = &a;
		int *q = &a;
		out[0] = (p == q) ? 1UL : 0UL;
		out[0] += (p != 0) ? 2UL : 0UL;
	}`
	if _, err := check(t, src, 0); err != nil {
		t.Fatalf("pointer comparisons rejected: %v", err)
	}
}
