package sema

import "clfuzz/internal/ast"

// nodeArena batches the checker's node allocations. A rebuild-style
// checker allocates one node per input node; individually those small
// allocations dominate the compile profile, and since every node of one
// checked program is retained (or discarded) together with the program —
// the back cache holds programs whole — chunked slabs waste nothing.
// Nodes handed out are zeroed: grab never recycles memory.
type nodeArena struct {
	varRefs  []ast.VarRef
	intLits  []ast.IntLit
	unaries  []ast.Unary
	binaries []ast.Binary
	assigns  []ast.AssignExpr
	conds    []ast.Cond
	calls    []ast.Call
	indexes  []ast.Index
	members  []ast.Member
	swizzles []ast.Swizzle
	casts    []ast.Cast
	exprs    []ast.Expr
	stmts    []ast.Stmt
}

const arenaChunk = 128

// grab hands out one zeroed slot from a chunked slab.
func grab[T any](buf *[]T) *T {
	if len(*buf) == 0 {
		*buf = make([]T, arenaChunk)
	}
	p := &(*buf)[0]
	*buf = (*buf)[1:]
	return p
}

// grabSlice hands out a zeroed slice of length n from a chunked slab.
// Slices never overlap: each call consumes its span.
func grabSlice[T any](buf *[]T, n int) []T {
	if n == 0 {
		return nil
	}
	if len(*buf) < n {
		c := arenaChunk
		if c < n {
			c = n
		}
		*buf = make([]T, c)
	}
	s := (*buf)[:n:n]
	*buf = (*buf)[n:]
	return s
}
