package sema

import (
	"strings"

	"clfuzz/internal/ast"
	"clfuzz/internal/cltypes"
)

// Builtin classification, shared with the executor.

// IsIDBuiltin reports whether name is a work-item identification builtin.
func IsIDBuiltin(name string) bool {
	switch name {
	case "get_global_id", "get_local_id", "get_group_id",
		"get_global_size", "get_local_size", "get_num_groups",
		"get_work_dim",
		"get_linear_global_id", "get_linear_local_id", "get_linear_group_id":
		return true
	}
	return false
}

// IsAtomicBuiltin reports whether name is a read-modify-write atomic.
func IsAtomicBuiltin(name string) bool {
	switch name {
	case "atomic_add", "atomic_sub", "atomic_min", "atomic_max",
		"atomic_and", "atomic_or", "atomic_xor", "atomic_xchg",
		"atomic_inc", "atomic_dec", "atomic_cmpxchg":
		return true
	}
	return false
}

// IsSafeMathBuiltin reports whether name is one of the total "safe math"
// wrappers the generator emits in place of raw C operators (the Csmith
// safe-math approach lifted to OpenCL, paper §4.1).
func IsSafeMathBuiltin(name string) bool {
	switch name {
	case "safe_add", "safe_sub", "safe_mul", "safe_div", "safe_mod",
		"safe_lshift", "safe_rshift", "safe_unary_minus", "safe_clamp":
		return true
	}
	return false
}

// checkCall types a function or builtin call. The input node is left
// untouched: arguments are checked into a freshly built call node, which
// the per-builtin checkers below annotate and return.
func (c *checker) checkCall(call *ast.Call) (ast.Expr, error) {
	ex := grab(&c.a.calls)
	ex.Name, ex.Args = call.Name, grabSlice(&c.a.exprs, len(call.Args))
	for i, a := range call.Args {
		ca, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		ex.Args[i] = ca
	}
	switch {
	case IsIDBuiltin(ex.Name):
		return c.checkIDBuiltin(ex)
	case ex.Name == "barrier":
		c.info.HasBarrier = true
		c.info.BarrierCount++
		if len(ex.Args) != 1 || !cltypes.IsScalarInt(ex.Args[0].Type()) {
			return nil, c.errf("barrier expects one integer fence argument")
		}
		ex.SetType(cltypes.TVoid)
		return ex, nil
	case IsAtomicBuiltin(ex.Name):
		return c.checkAtomic(ex)
	case IsSafeMathBuiltin(ex.Name):
		return c.checkSafeMath(ex)
	case ex.Name == "clamp":
		return c.checkTernaryElementwise(ex)
	case ex.Name == "rotate" || ex.Name == "add_sat" || ex.Name == "sub_sat" ||
		ex.Name == "hadd" || ex.Name == "mul_hi" || ex.Name == "min" || ex.Name == "max":
		return c.checkBinaryElementwise(ex)
	case ex.Name == "abs" || ex.Name == "popcount" || ex.Name == "clz":
		return c.checkUnaryElementwise(ex)
	case strings.HasPrefix(ex.Name, "convert_"):
		return c.checkConvert(ex)
	case ex.Name == "crc64":
		if len(ex.Args) != 2 || !cltypes.IsScalarInt(ex.Args[0].Type()) || !cltypes.IsScalarInt(ex.Args[1].Type()) {
			return nil, c.errf("crc64 expects (ulong, integer)")
		}
		ex.SetType(cltypes.TULong)
		return ex, nil
	case ex.Name == "vcrc":
		if len(ex.Args) != 2 || !cltypes.IsScalarInt(ex.Args[0].Type()) || !cltypes.IsVector(ex.Args[1].Type()) {
			return nil, c.errf("vcrc expects (ulong, vector)")
		}
		ex.SetType(cltypes.TULong)
		return ex, nil
	}
	// User function.
	f, ok := c.funcs[ex.Name]
	if !ok {
		return nil, c.errf("call to undeclared function %q", ex.Name)
	}
	if len(ex.Args) != len(f.Params) {
		return nil, c.errf("function %s expects %d arguments, got %d", ex.Name, len(f.Params), len(ex.Args))
	}
	for i, a := range ex.Args {
		pt := f.Params[i].Type
		at := a.Type()
		if at.Equal(pt) {
			continue
		}
		if cltypes.IsScalarInt(at) && cltypes.IsScalarInt(pt) {
			continue
		}
		if _, isPtr := pt.(*cltypes.Pointer); isPtr {
			if lit, ok := a.(*ast.IntLit); ok && lit.Val == 0 {
				continue
			}
		}
		return nil, c.errf("argument %d to %s has type %s, expected %s", i+1, ex.Name, at, pt)
	}
	ex.SetType(f.Ret)
	return ex, nil
}

func (c *checker) checkIDBuiltin(ex *ast.Call) (ast.Expr, error) {
	dimArg := strings.HasPrefix(ex.Name, "get_") && !strings.HasPrefix(ex.Name, "get_linear") && ex.Name != "get_work_dim"
	if dimArg {
		if len(ex.Args) != 1 || !cltypes.IsScalarInt(ex.Args[0].Type()) {
			return nil, c.errf("%s expects one integer dimension argument", ex.Name)
		}
	} else if len(ex.Args) != 0 {
		return nil, c.errf("%s expects no arguments", ex.Name)
	}
	if strings.Contains(ex.Name, "group") || strings.Contains(ex.Name, "num_groups") {
		c.info.UsesGroupID = true
	}
	if ex.Name == "get_work_dim" {
		ex.SetType(cltypes.TUInt)
	} else {
		ex.SetType(cltypes.TSizeT)
	}
	return ex, nil
}

func (c *checker) checkAtomic(ex *ast.Call) (ast.Expr, error) {
	c.info.HasAtomic = true
	nargs := 2
	switch ex.Name {
	case "atomic_inc", "atomic_dec":
		nargs = 1
	case "atomic_cmpxchg":
		nargs = 3
	}
	if len(ex.Args) != nargs {
		return nil, c.errf("%s expects %d arguments", ex.Name, nargs)
	}
	pt, ok := ex.Args[0].Type().(*cltypes.Pointer)
	if !ok {
		return nil, c.errf("%s expects a pointer first argument", ex.Name)
	}
	et, ok := pt.Elem.(*cltypes.Scalar)
	if !ok || et.Bits != 32 {
		return nil, c.errf("%s requires a pointer to a 32-bit integer", ex.Name)
	}
	if pt.Space != cltypes.Global && pt.Space != cltypes.Local {
		return nil, c.errf("%s requires a global or local pointer", ex.Name)
	}
	for _, a := range ex.Args[1:] {
		if !cltypes.IsScalarInt(a.Type()) {
			return nil, c.errf("%s operand must be an integer", ex.Name)
		}
	}
	ex.SetType(et)
	return ex, nil
}

// checkSafeMath types the generator's total arithmetic wrappers. They follow
// the typing of the underlying operator.
func (c *checker) checkSafeMath(ex *ast.Call) (ast.Expr, error) {
	switch ex.Name {
	case "safe_unary_minus":
		if len(ex.Args) != 1 {
			return nil, c.errf("%s expects 1 argument", ex.Name)
		}
		switch t := ex.Args[0].Type().(type) {
		case *cltypes.Scalar:
			ex.SetType(cltypes.Promote(t))
		case *cltypes.Vector:
			ex.SetType(t)
		default:
			return nil, c.errf("invalid operand %s to %s", ex.Args[0].Type(), ex.Name)
		}
		return ex, nil
	case "safe_clamp":
		return c.checkTernaryElementwise(ex)
	case "safe_lshift", "safe_rshift":
		if len(ex.Args) != 2 {
			return nil, c.errf("%s expects 2 arguments", ex.Name)
		}
		switch t := ex.Args[0].Type().(type) {
		case *cltypes.Scalar:
			if !cltypes.IsScalarInt(ex.Args[1].Type()) {
				return nil, c.errf("shift amount must be an integer scalar")
			}
			ex.SetType(cltypes.Promote(t))
		case *cltypes.Vector:
			if at, ok := ex.Args[1].Type().(*cltypes.Vector); ok && at.Len != t.Len {
				return nil, c.errf("vector shift operands must have the same length")
			} else if !ok && !cltypes.IsScalarInt(ex.Args[1].Type()) {
				return nil, c.errf("shift amount must be an integer")
			}
			ex.SetType(t)
		default:
			return nil, c.errf("invalid operand %s to %s", ex.Args[0].Type(), ex.Name)
		}
		return ex, nil
	default: // safe_add, safe_sub, safe_mul, safe_div, safe_mod
		if len(ex.Args) != 2 {
			return nil, c.errf("%s expects 2 arguments", ex.Name)
		}
		lt, rt := ex.Args[0].Type(), ex.Args[1].Type()
		ls, lok := lt.(*cltypes.Scalar)
		rs, rok := rt.(*cltypes.Scalar)
		switch {
		case lok && rok:
			ex.SetType(cltypes.UsualArith(ls, rs))
		case cltypes.IsVector(lt) && lt.Equal(rt):
			ex.SetType(lt)
		case cltypes.IsVector(lt) && rok:
			ex.SetType(lt)
		case lok && cltypes.IsVector(rt):
			ex.SetType(rt)
		default:
			return nil, c.errf("invalid operands %s and %s to %s", lt, rt, ex.Name)
		}
		return ex, nil
	}
}

// checkBinaryElementwise types two-argument element-wise builtins that
// require both operands to have the same type (scalar or vector), per the
// OpenCL specification for rotate, min, max, etc.
func (c *checker) checkBinaryElementwise(ex *ast.Call) (ast.Expr, error) {
	if len(ex.Args) != 2 {
		return nil, c.errf("%s expects 2 arguments", ex.Name)
	}
	lt, rt := ex.Args[0].Type(), ex.Args[1].Type()
	switch t := lt.(type) {
	case *cltypes.Scalar:
		if !cltypes.IsScalarInt(rt) {
			return nil, c.errf("operands to %s must both be integers", ex.Name)
		}
		rs := rt.(*cltypes.Scalar)
		ex.SetType(cltypes.UsualArith(t, rs))
		return ex, nil
	case *cltypes.Vector:
		c.info.UsesVector = true
		if !lt.Equal(rt) {
			return nil, c.errf("operands to %s must have the same vector type", ex.Name)
		}
		ex.SetType(t)
		return ex, nil
	}
	return nil, c.errf("invalid operand %s to %s", lt, ex.Name)
}

func (c *checker) checkUnaryElementwise(ex *ast.Call) (ast.Expr, error) {
	if len(ex.Args) != 1 {
		return nil, c.errf("%s expects 1 argument", ex.Name)
	}
	switch t := ex.Args[0].Type().(type) {
	case *cltypes.Scalar:
		ex.SetType(t)
		return ex, nil
	case *cltypes.Vector:
		c.info.UsesVector = true
		ex.SetType(t)
		return ex, nil
	}
	return nil, c.errf("invalid operand %s to %s", ex.Args[0].Type(), ex.Name)
}

// checkTernaryElementwise types clamp/safe_clamp: three operands of the
// same shape.
func (c *checker) checkTernaryElementwise(ex *ast.Call) (ast.Expr, error) {
	if len(ex.Args) != 3 {
		return nil, c.errf("%s expects 3 arguments", ex.Name)
	}
	xt := ex.Args[0].Type()
	switch t := xt.(type) {
	case *cltypes.Scalar:
		for _, a := range ex.Args[1:] {
			if !cltypes.IsScalarInt(a.Type()) {
				return nil, c.errf("operands to %s must all be integers", ex.Name)
			}
		}
		ex.SetType(t)
		return ex, nil
	case *cltypes.Vector:
		c.info.UsesVector = true
		for _, a := range ex.Args[1:] {
			if !a.Type().Equal(xt) {
				return nil, c.errf("operands to %s must have the same vector type", ex.Name)
			}
		}
		ex.SetType(t)
		return ex, nil
	}
	return nil, c.errf("invalid operand %s to %s", xt, ex.Name)
}

// checkConvert types convert_<T>(x) explicit conversions: scalar to scalar
// or vector to vector of the same length.
func (c *checker) checkConvert(ex *ast.Call) (ast.Expr, error) {
	name := strings.TrimPrefix(ex.Name, "convert_")
	if len(ex.Args) != 1 {
		return nil, c.errf("%s expects 1 argument", ex.Name)
	}
	at := ex.Args[0].Type()
	if v, ok := cltypes.VectorByName(name); ok {
		av, ok := at.(*cltypes.Vector)
		if !ok || av.Len != v.Len {
			return nil, c.errf("%s requires a vector of length %d, found %s", ex.Name, v.Len, at)
		}
		c.info.UsesVector = true
		ex.SetType(v)
		return ex, nil
	}
	if s, ok := cltypes.ScalarByName(name); ok {
		if !cltypes.IsScalarInt(at) {
			return nil, c.errf("%s requires a scalar operand, found %s", ex.Name, at)
		}
		ex.SetType(s)
		return ex, nil
	}
	return nil, c.errf("unknown conversion %s", ex.Name)
}
