package sema

import (
	"clfuzz/internal/ast"
	"clfuzz/internal/bugs"
	"clfuzz/internal/cltypes"
)

// Predefined constants visible to every kernel (the barrier fence flags).
var predefined = map[string]uint64{
	"CLK_LOCAL_MEM_FENCE":  1,
	"CLK_GLOBAL_MEM_FENCE": 2,
}

// PredefinedConst returns the value of a predefined constant name.
func PredefinedConst(name string) (uint64, bool) {
	v, ok := predefined[name]
	return v, ok
}

// checkExpr type-checks an expression and returns a freshly built,
// annotated node (vector member accesses become swizzles). The input node
// is never written to; already-typed literals are shared as-is.
func (c *checker) checkExpr(e ast.Expr) (ast.Expr, error) {
	switch ex := e.(type) {
	case *ast.IntLit:
		if ex.Type() != nil {
			return ex, nil // immutable once typed; share with the input
		}
		nl := grab(&c.a.intLits)
		nl.Val = ex.Val
		nl.SetType(cltypes.TInt)
		return nl, nil

	case *ast.VarRef:
		if s := c.scope.lookup(ex.Name); s != nil {
			nv := grab(&c.a.varRefs)
			nv.Name = ex.Name
			nv.SetType(s.typ)
			return nv, nil
		}
		if _, ok := predefined[ex.Name]; ok {
			nv := grab(&c.a.varRefs)
			nv.Name = ex.Name
			nv.SetType(cltypes.TUInt)
			return nv, nil
		}
		return nil, c.errf("use of undeclared identifier %q", ex.Name)

	case *ast.Unary:
		return c.checkUnary(ex)

	case *ast.Binary:
		return c.checkBinary(ex)

	case *ast.AssignExpr:
		return c.checkAssign(ex)

	case *ast.Cond:
		cond, err := c.checkScalarCond(ex.C)
		if err != nil {
			return nil, err
		}
		t, err := c.checkExpr(ex.T)
		if err != nil {
			return nil, err
		}
		f, err := c.checkExpr(ex.F)
		if err != nil {
			return nil, err
		}
		rt, err := c.commonType(t.Type(), f.Type())
		if err != nil {
			return nil, err
		}
		nc := grab(&c.a.conds)
		nc.C, nc.T, nc.F = cond, t, f
		nc.SetType(rt)
		return nc, nil

	case *ast.Call:
		return c.checkCall(ex)

	case *ast.Index:
		base, err := c.checkExpr(ex.Base)
		if err != nil {
			return nil, err
		}
		idx, err := c.checkExpr(ex.Idx)
		if err != nil {
			return nil, err
		}
		if !cltypes.IsScalarInt(idx.Type()) {
			return nil, c.errf("array subscript must be an integer, found %s", idx.Type())
		}
		ni := grab(&c.a.indexes)
		ni.Base, ni.Idx = base, idx
		switch bt := base.Type().(type) {
		case *cltypes.Array:
			ni.SetType(bt.Elem)
		case *cltypes.Pointer:
			ni.SetType(bt.Elem)
		default:
			return nil, c.errf("subscripted value is not an array or pointer (%s)", base.Type())
		}
		return ni, nil

	case *ast.Member:
		return c.checkMember(ex)

	case *ast.Swizzle:
		base, err := c.checkExpr(ex.Base)
		if err != nil {
			return nil, err
		}
		sw := grab(&c.a.swizzles)
		sw.Base, sw.Sel = base, ex.Sel
		return c.typeSwizzle(sw)

	case *ast.VecLit:
		nv := &ast.VecLit{VT: ex.VT, Elems: grabSlice(&c.a.exprs, len(ex.Elems))}
		total := 0
		for i, el := range ex.Elems {
			ce, err := c.checkExpr(el)
			if err != nil {
				return nil, err
			}
			nv.Elems[i] = ce
			switch et := ce.Type().(type) {
			case *cltypes.Scalar:
				total++
			case *cltypes.Vector:
				if !et.Elem.Equal(ex.VT.Elem) {
					return nil, c.errf("vector literal element type %s does not match %s", et, ex.VT)
				}
				total += et.Len
			default:
				return nil, c.errf("invalid vector literal element type %s", ce.Type())
			}
		}
		// OpenCL: a single scalar element splats; otherwise the element
		// count must match exactly.
		if !(len(ex.Elems) == 1 && total == 1) && total != ex.VT.Len {
			return nil, c.errf("vector literal for %s has %d components", ex.VT, total)
		}
		nv.SetType(ex.VT)
		return nv, nil

	case *ast.Cast:
		x, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		from, to := x.Type(), ex.To
		nc := grab(&c.a.casts)
		nc.To, nc.X = to, x
		if _, ok := to.(*cltypes.Vector); ok {
			// OpenCL prohibits vector-to-vector casts between distinct
			// types (paper §4.1); a scalar cast to a vector splats.
			if vf, isVec := from.(*cltypes.Vector); isVec {
				if !vf.Equal(to) {
					return nil, c.errf("invalid cast from %s to %s (use convert_%s)", from, to, to)
				}
			} else if !cltypes.IsScalarInt(from) {
				return nil, c.errf("invalid cast from %s to %s", from, to)
			}
			nc.SetType(to)
			return nc, nil
		}
		if _, ok := to.(*cltypes.Scalar); ok {
			if !cltypes.IsScalarInt(from) {
				return nil, c.errf("invalid cast from %s to %s", from, to)
			}
			nc.SetType(to)
			return nc, nil
		}
		if pt, ok := to.(*cltypes.Pointer); ok {
			if _, ok := from.(*cltypes.Pointer); ok {
				nc.SetType(pt)
				return nc, nil
			}
			if lit, ok := x.(*ast.IntLit); ok && lit.Val == 0 {
				nc.SetType(pt)
				return nc, nil
			}
		}
		return nil, c.errf("invalid cast from %s to %s", from, to)

	case *ast.InitList:
		return nil, c.errf("braced initializer used outside declaration")
	}
	return nil, c.errf("unknown expression %T", e)
}

func (c *checker) checkUnary(ex *ast.Unary) (ast.Expr, error) {
	x, err := c.checkExpr(ex.X)
	if err != nil {
		return nil, err
	}
	nu := grab(&c.a.unaries)
	nu.Op, nu.X = ex.Op, x
	t := x.Type()
	switch ex.Op {
	case ast.Neg, ast.Pos, ast.BitNot:
		switch tt := t.(type) {
		case *cltypes.Scalar:
			nu.SetType(cltypes.Promote(tt))
			return nu, nil
		case *cltypes.Vector:
			nu.SetType(tt)
			return nu, nil
		}
		return nil, c.errf("invalid operand %s to unary %s", t, ex.Op)
	case ast.LogNot:
		switch tt := t.(type) {
		case *cltypes.Scalar:
			nu.SetType(cltypes.TInt)
			return nu, nil
		case *cltypes.Vector:
			if c.defects.Has(bugs.FEVectorLogicalReject) {
				return nil, c.errf("error: logical operator ! not supported on vector type %s", tt)
			}
			nu.SetType(signedVec(tt))
			return nu, nil
		case *cltypes.Pointer:
			nu.SetType(cltypes.TInt)
			return nu, nil
		}
		return nil, c.errf("invalid operand %s to unary !", t)
	case ast.AddrOf:
		if !c.isLvalue(x) {
			return nil, c.errf("cannot take the address of an rvalue")
		}
		nu.SetType(&cltypes.Pointer{Elem: t, Space: c.exprSpace(x)})
		return nu, nil
	case ast.Deref:
		pt, ok := t.(*cltypes.Pointer)
		if !ok {
			return nil, c.errf("cannot dereference non-pointer type %s", t)
		}
		nu.SetType(pt.Elem)
		return nu, nil
	case ast.PreInc, ast.PreDec, ast.PostInc, ast.PostDec:
		if err := c.checkAssignable(x); err != nil {
			return nil, err
		}
		if !cltypes.IsScalarInt(t) {
			return nil, c.errf("invalid operand %s to %s", t, ex.Op)
		}
		nu.SetType(t)
		return nu, nil
	}
	return nil, c.errf("unknown unary operator")
}

func (c *checker) checkBinary(ex *ast.Binary) (ast.Expr, error) {
	l, err := c.checkExpr(ex.L)
	if err != nil {
		return nil, err
	}
	r, err := c.checkExpr(ex.R)
	if err != nil {
		return nil, err
	}
	nb := grab(&c.a.binaries)
	nb.Op, nb.L, nb.R = ex.Op, l, r
	lt, rt := l.Type(), r.Type()

	if ex.Op == ast.Comma {
		c.info.HasComma = true
		nb.SetType(rt)
		return nb, nil
	}

	// Pointer equality comparisons.
	if _, lp := lt.(*cltypes.Pointer); lp {
		if ex.Op == ast.EQ || ex.Op == ast.NE {
			if _, rp := rt.(*cltypes.Pointer); rp {
				nb.SetType(cltypes.TInt)
				return nb, nil
			}
			if lit, ok := r.(*ast.IntLit); ok && lit.Val == 0 {
				nb.SetType(cltypes.TInt)
				return nb, nil
			}
		}
		return nil, c.errf("invalid pointer operands to binary %s", ex.Op)
	}

	ls, lIsScalar := lt.(*cltypes.Scalar)
	rs, rIsScalar := rt.(*cltypes.Scalar)
	lv, lIsVec := lt.(*cltypes.Vector)
	rv, rIsVec := rt.(*cltypes.Vector)

	// The Intel Xeon front-end defect: reject mixing size_t with signed
	// scalar types (§6 "Build failures", config 15).
	if c.defects.Has(bugs.FEIntSizeTMix) && lIsScalar && rIsScalar {
		if (ls.K == cltypes.KindSizeT && rs.Signed) || (rs.K == cltypes.KindSizeT && ls.Signed) {
			return nil, c.errf("error: invalid operands to binary expression ('%s' and '%s')", lt, rt)
		}
	}

	switch {
	case lIsScalar && rIsScalar:
		if ex.Op.IsComparison() || ex.Op.IsLogical() {
			nb.SetType(cltypes.TInt)
			return nb, nil
		}
		if ex.Op == ast.Shl || ex.Op == ast.Shr {
			nb.SetType(cltypes.Promote(ls))
			return nb, nil
		}
		nb.SetType(cltypes.UsualArith(ls, rs))
		return nb, nil
	case lIsVec && rIsVec:
		if !lv.Equal(rv) {
			return nil, c.errf("invalid operands to binary %s (%s and %s)", ex.Op, lt, rt)
		}
		return c.vecBinResult(nb, lv)
	case lIsVec && rIsScalar:
		return c.vecBinResult(nb, lv)
	case lIsScalar && rIsVec:
		return c.vecBinResult(nb, rv)
	}
	return nil, c.errf("invalid operands to binary %s (%s and %s)", ex.Op, lt, rt)
}

// vecBinResult types a component-wise vector operation (on the freshly
// built node): comparisons and logical operators yield a signed vector
// mask of the same shape; other operators yield the vector type itself.
func (c *checker) vecBinResult(ex *ast.Binary, v *cltypes.Vector) (ast.Expr, error) {
	if ex.Op.IsLogical() {
		c.info.UsesVector = true
		if c.defects.Has(bugs.FEVectorLogicalReject) {
			return nil, c.errf("error: logical operator %s not supported on vector type %s", ex.Op, v)
		}
		ex.SetType(signedVec(v))
		return ex, nil
	}
	c.info.UsesVector = true
	if ex.Op.IsComparison() {
		ex.SetType(signedVec(v))
		return ex, nil
	}
	ex.SetType(v)
	return ex, nil
}

// signedVec returns the signed vector type with the same shape as v (the
// OpenCL result type of vector comparisons).
func signedVec(v *cltypes.Vector) *cltypes.Vector {
	var e *cltypes.Scalar
	switch v.Elem.Bits {
	case 8:
		e = cltypes.TChar
	case 16:
		e = cltypes.TShort
	case 32:
		e = cltypes.TInt
	default:
		e = cltypes.TLong
	}
	return cltypes.VecOf(e, v.Len)
}

func (c *checker) checkAssign(ex *ast.AssignExpr) (ast.Expr, error) {
	lhs, err := c.checkExpr(ex.LHS)
	if err != nil {
		return nil, err
	}
	if err := c.checkAssignable(lhs); err != nil {
		return nil, err
	}
	rhs, err := c.checkExpr(ex.RHS)
	if err != nil {
		return nil, err
	}
	na := grab(&c.a.assigns)
	na.Op, na.LHS, na.RHS = ex.Op, lhs, rhs
	lt, rt := lhs.Type(), rhs.Type()
	if ex.Op != ast.Assign {
		// Compound assignment requires an arithmetic LHS.
		switch lt.(type) {
		case *cltypes.Scalar, *cltypes.Vector:
		default:
			return nil, c.errf("invalid operand %s to compound assignment", lt)
		}
		if vt, ok := lt.(*cltypes.Vector); ok {
			if rvt, ok := rt.(*cltypes.Vector); ok && !vt.Equal(rvt) {
				return nil, c.errf("invalid operands to compound assignment (%s and %s)", lt, rt)
			}
			if !cltypes.IsScalarInt(rt) && !cltypes.IsVector(rt) {
				return nil, c.errf("invalid operands to compound assignment (%s and %s)", lt, rt)
			}
		} else if !cltypes.IsScalarInt(rt) {
			return nil, c.errf("invalid operands to compound assignment (%s and %s)", lt, rt)
		}
		// The size_t mixing defect also fires on compound assignments.
		if c.defects.Has(bugs.FEIntSizeTMix) {
			if ls, ok := lt.(*cltypes.Scalar); ok {
				if rs, ok := rt.(*cltypes.Scalar); ok {
					if (ls.K == cltypes.KindSizeT && rs.Signed) || (rs.K == cltypes.KindSizeT && ls.Signed) {
						return nil, c.errf("error: invalid operands to binary expression ('%s' and '%s')", lt, rt)
					}
				}
			}
		}
	} else if !c.convertibleTo(rt, lt) {
		return nil, c.errf("cannot assign %s to %s", rt, lt)
	}
	na.SetType(lt)
	return na, nil
}

// checkAssignable verifies that e is a modifiable lvalue.
func (c *checker) checkAssignable(e ast.Expr) error {
	if !c.isLvalue(e) {
		return c.errf("expression is not assignable")
	}
	if c.isConstLvalue(e) {
		return c.errf("cannot assign to a const or constant-space object")
	}
	return nil
}

func (c *checker) isLvalue(e ast.Expr) bool {
	switch ex := e.(type) {
	case *ast.VarRef:
		return c.scope.lookup(ex.Name) != nil
	case *ast.Unary:
		return ex.Op == ast.Deref
	case *ast.Index:
		return true
	case *ast.Member:
		return true
	case *ast.Swizzle:
		return len(cltypes.SwizzleIndices(ex.Sel)) == 1 && c.isLvalue(ex.Base)
	}
	return false
}

func (c *checker) isConstLvalue(e ast.Expr) bool {
	switch ex := e.(type) {
	case *ast.VarRef:
		if s := c.scope.lookup(ex.Name); s != nil {
			return s.isConst || s.space == cltypes.Constant
		}
		return true
	case *ast.Unary:
		if ex.Op == ast.Deref {
			if pt, ok := ex.X.Type().(*cltypes.Pointer); ok {
				return pt.Space == cltypes.Constant
			}
		}
		return false
	case *ast.Index:
		return c.isConstLvalue(ex.Base)
	case *ast.Member:
		if ex.Arrow {
			if pt, ok := ex.Base.Type().(*cltypes.Pointer); ok {
				return pt.Space == cltypes.Constant
			}
			return false
		}
		return c.isConstLvalue(ex.Base)
	case *ast.Swizzle:
		return c.isConstLvalue(ex.Base)
	}
	return false
}

// exprSpace computes the address space of an lvalue, for typing AddrOf.
func (c *checker) exprSpace(e ast.Expr) cltypes.AddrSpace {
	switch ex := e.(type) {
	case *ast.VarRef:
		if s := c.scope.lookup(ex.Name); s != nil {
			return s.space
		}
	case *ast.Unary:
		if ex.Op == ast.Deref {
			if pt, ok := ex.X.Type().(*cltypes.Pointer); ok {
				return pt.Space
			}
		}
	case *ast.Index:
		if pt, ok := ex.Base.Type().(*cltypes.Pointer); ok {
			return pt.Space
		}
		return c.exprSpace(ex.Base)
	case *ast.Member:
		if ex.Arrow {
			if pt, ok := ex.Base.Type().(*cltypes.Pointer); ok {
				return pt.Space
			}
			return cltypes.Private
		}
		return c.exprSpace(ex.Base)
	}
	return cltypes.Private
}

// checkMember types a member access; on vector bases it rewrites the node
// into a swizzle.
func (c *checker) checkMember(ex *ast.Member) (ast.Expr, error) {
	base, err := c.checkExpr(ex.Base)
	if err != nil {
		return nil, err
	}
	bt := base.Type()
	if ex.Arrow {
		pt, ok := bt.(*cltypes.Pointer)
		if !ok {
			return nil, c.errf("-> applied to non-pointer type %s", bt)
		}
		bt = pt.Elem
	}
	switch t := bt.(type) {
	case *cltypes.StructT:
		i := t.FieldIndex(ex.Name)
		if i < 0 {
			return nil, c.errf("no member %q in %s", ex.Name, t)
		}
		nm := grab(&c.a.members)
		nm.Base, nm.Name, nm.Arrow, nm.FieldIdx = base, ex.Name, ex.Arrow, i+1
		nm.SetType(t.Fields[i].Type)
		if t.Fields[i].Volatile {
			c.info.HasVolatile = true
		}
		return nm, nil
	case *cltypes.Vector:
		if ex.Arrow {
			return nil, c.errf("-> applied to vector type")
		}
		sw := grab(&c.a.swizzles)
		sw.Base, sw.Sel = base, ex.Name
		return c.typeSwizzle(sw)
	}
	return nil, c.errf("member access on non-aggregate type %s", bt)
}

// typeSwizzle annotates a freshly built swizzle node (its base is already
// checked; the node is owned by the checker, so writing its type is safe).
func (c *checker) typeSwizzle(sw *ast.Swizzle) (ast.Expr, error) {
	vt, ok := sw.Base.Type().(*cltypes.Vector)
	if !ok {
		return nil, c.errf("swizzle applied to non-vector type %s", sw.Base.Type())
	}
	idx := cltypes.SwizzleIndices(sw.Sel)
	if idx == nil {
		return nil, c.errf("invalid vector component selector %q", sw.Sel)
	}
	for _, i := range idx {
		if i >= vt.Len {
			return nil, c.errf("component %d out of range for %s", i, vt)
		}
	}
	c.info.UsesVector = true
	switch len(idx) {
	case 1:
		sw.SetType(vt.Elem)
	case 2, 4, 8, 16:
		sw.SetType(cltypes.VecOf(vt.Elem, len(idx)))
	default:
		return nil, c.errf("invalid swizzle length %d", len(idx))
	}
	return sw, nil
}

// commonType computes the ternary result type.
func (c *checker) commonType(a, b cltypes.Type) (cltypes.Type, error) {
	if a.Equal(b) {
		return a, nil
	}
	as, aok := a.(*cltypes.Scalar)
	bs, bok := b.(*cltypes.Scalar)
	if aok && bok {
		return cltypes.UsualArith(as, bs), nil
	}
	return nil, c.errf("incompatible operand types %s and %s in conditional", a, b)
}

// walkStmt calls fn for s and every statement nested within it. It never
// writes to the tree.
func walkStmt(s ast.Stmt, fn func(ast.Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch st := s.(type) {
	case *ast.Block:
		for _, inner := range st.Stmts {
			walkStmt(inner, fn)
		}
	case *ast.If:
		walkStmt(st.Then, fn)
		walkStmt(st.Else, fn)
	case *ast.For:
		walkStmt(st.Init, fn)
		walkStmt(st.Body, fn)
	case *ast.While:
		walkStmt(st.Body, fn)
	case *ast.DoWhile:
		walkStmt(st.Body, fn)
	}
}
