package cltypes

import "math/bits"

// This file implements the well-defined two's complement integer semantics
// of the OpenCL C subset. All scalar values are represented as uint64 bit
// patterns truncated to the width of their type; signed values use two's
// complement within that width (paper §3.1: widths are fixed and two's
// complement is mandated, so bit-level operations are well-defined even on
// signed data).

// Trunc truncates v to the width of t (for bool, normalizes to 0/1).
func Trunc(v uint64, t *Scalar) uint64 {
	if t.K == KindBool {
		if v != 0 {
			return 1
		}
		return 0
	}
	if t.Bits >= 64 {
		return v
	}
	return v & ((1 << uint(t.Bits)) - 1)
}

// SExt sign- or zero-extends the truncated value v of type t to a full
// 64-bit pattern suitable for arithmetic at 64-bit width. The signed case
// uses the branch-free shift pair so the function stays small enough for
// the compiler to inline into the arithmetic helpers (it sits on the
// interpreter's hottest path).
func SExt(v uint64, t *Scalar) uint64 {
	if t.Bits >= 64 || !t.Signed {
		return Trunc(v, t)
	}
	sh := uint(64 - t.Bits)
	return uint64(int64(v<<sh) >> sh)
}

// AsInt64 interprets the value v of type t as a Go int64.
func AsInt64(v uint64, t *Scalar) int64 { return int64(SExt(v, t)) }

// Convert converts value v of type from to type to, following the C
// conversion rules (truncation for narrowing; sign/zero extension for
// widening; bool normalization).
func Convert(v uint64, from, to *Scalar) uint64 {
	if from == to {
		// Same-type conversion: the dominant case on the interpreter's hot
		// path (usual-arithmetic operands usually already match). Trunc
		// alone suffices, and it also normalizes bool.
		return Trunc(v, to)
	}
	if to.K == KindBool {
		if Trunc(v, from) != 0 {
			return 1
		}
		return 0
	}
	return Trunc(SExt(v, from), to)
}

// Neg returns -v in type t (wrapping).
func Neg(v uint64, t *Scalar) uint64 { return Trunc(-SExt(v, t), t) }

// Not returns ~v in type t.
func Not(v uint64, t *Scalar) uint64 { return Trunc(^SExt(v, t), t) }

// LNot returns !v (1 if v is zero, else 0).
func LNot(v uint64, t *Scalar) uint64 {
	if Trunc(v, t) == 0 {
		return 1
	}
	return 0
}

// Add returns a+b in type t (wrapping two's complement).
func Add(a, b uint64, t *Scalar) uint64 { return Trunc(SExt(a, t)+SExt(b, t), t) }

// Sub returns a-b in type t.
func Sub(a, b uint64, t *Scalar) uint64 { return Trunc(SExt(a, t)-SExt(b, t), t) }

// Mul returns a*b in type t.
func Mul(a, b uint64, t *Scalar) uint64 { return Trunc(SExt(a, t)*SExt(b, t), t) }

// DivDefined reports whether a/b is defined in type t (b nonzero, and not
// MIN/-1 overflow for signed types).
func DivDefined(a, b uint64, t *Scalar) bool {
	if Trunc(b, t) == 0 {
		return false
	}
	if t.Signed {
		min := uint64(1) << uint(t.Bits-1)
		if Trunc(a, t) == min && AsInt64(b, t) == -1 {
			return false
		}
	}
	return true
}

// Div returns a/b in type t. The caller must ensure DivDefined; safe
// wrappers in the generated programs guard division (Csmith "safe math").
// When undefined it returns a, matching the safe_div macro semantics.
func Div(a, b uint64, t *Scalar) uint64 {
	if !DivDefined(a, b, t) {
		return Trunc(a, t)
	}
	if t.Signed {
		return Trunc(uint64(AsInt64(a, t)/AsInt64(b, t)), t)
	}
	return Trunc(Trunc(a, t)/Trunc(b, t), t)
}

// Mod returns a%b in type t with the same safe-math fallback as Div.
func Mod(a, b uint64, t *Scalar) uint64 {
	if !DivDefined(a, b, t) {
		return Trunc(a, t)
	}
	if t.Signed {
		return Trunc(uint64(AsInt64(a, t)%AsInt64(b, t)), t)
	}
	return Trunc(Trunc(a, t)%Trunc(b, t), t)
}

// ShlDefined reports whether a<<b is defined for type t under C99 rules.
func ShlDefined(a, b uint64, t, bt *Scalar) bool {
	sb := AsInt64(b, bt)
	if sb < 0 || sb >= int64(t.Bits) {
		return false
	}
	if t.Signed && AsInt64(a, t) < 0 {
		return false
	}
	return true
}

// Shl returns a<<b in type t; when undefined it returns a (safe_lshift
// semantics).
func Shl(a, b uint64, t, bt *Scalar) uint64 {
	if !ShlDefined(a, b, t, bt) {
		return Trunc(a, t)
	}
	return Trunc(Trunc(a, t)<<uint(Trunc(b, bt)), t)
}

// ShrDefined reports whether a>>b is defined for type t.
func ShrDefined(b uint64, t, bt *Scalar) bool {
	sb := AsInt64(b, bt)
	return sb >= 0 && sb < int64(t.Bits)
}

// Shr returns a>>b in type t (arithmetic shift for signed types); when
// undefined it returns a.
func Shr(a, b uint64, t, bt *Scalar) uint64 {
	if !ShrDefined(b, t, bt) {
		return Trunc(a, t)
	}
	sh := uint(Trunc(b, bt))
	if t.Signed {
		return Trunc(uint64(AsInt64(a, t)>>sh), t)
	}
	return Trunc(Trunc(a, t)>>sh, t)
}

// And returns a&b in type t.
func And(a, b uint64, t *Scalar) uint64 { return Trunc(a&b, t) }

// Or returns a|b in type t.
func Or(a, b uint64, t *Scalar) uint64 { return Trunc(a|b, t) }

// Xor returns a^b in type t.
func Xor(a, b uint64, t *Scalar) uint64 { return Trunc(a^b, t) }

// CmpLT returns 1 if a<b in type t, else 0.
func CmpLT(a, b uint64, t *Scalar) uint64 {
	if t.Signed {
		if AsInt64(a, t) < AsInt64(b, t) {
			return 1
		}
		return 0
	}
	if Trunc(a, t) < Trunc(b, t) {
		return 1
	}
	return 0
}

// CmpLE returns 1 if a<=b in type t, else 0.
func CmpLE(a, b uint64, t *Scalar) uint64 {
	if Trunc(a, t) == Trunc(b, t) {
		return 1
	}
	return CmpLT(a, b, t)
}

// CmpEQ returns 1 if a==b in type t, else 0.
func CmpEQ(a, b uint64, t *Scalar) uint64 {
	if Trunc(a, t) == Trunc(b, t) {
		return 1
	}
	return 0
}

// Rotate implements the OpenCL rotate builtin: left-rotate the bits of a by
// b places, modulo the width (paper §3.1: well-defined on signed data due to
// two's complement).
func Rotate(a, b uint64, t *Scalar) uint64 {
	w := uint(t.Bits)
	sh := uint(Trunc(b, t)) % w
	av := Trunc(a, t)
	if sh == 0 {
		return av
	}
	return Trunc(av<<sh|av>>(w-sh), t)
}

// Clamp implements the OpenCL clamp builtin with defined inputs (min<=max);
// the generator wraps it in safe_clamp which falls back to x when min>max
// (the paper's safe_clamp macro).
func Clamp(x, lo, hi uint64, t *Scalar) uint64 {
	if CmpLT(x, lo, t) == 1 {
		return Trunc(lo, t)
	}
	if CmpLT(hi, x, t) == 1 {
		return Trunc(hi, t)
	}
	return Trunc(x, t)
}

// Min returns the smaller of a and b in type t.
func Min(a, b uint64, t *Scalar) uint64 {
	if CmpLT(a, b, t) == 1 {
		return Trunc(a, t)
	}
	return Trunc(b, t)
}

// Max returns the larger of a and b in type t.
func Max(a, b uint64, t *Scalar) uint64 {
	if CmpLT(a, b, t) == 1 {
		return Trunc(b, t)
	}
	return Trunc(a, t)
}

// Abs implements the OpenCL abs builtin: |x| returned as the unsigned type
// of the same width, total even at MIN.
func Abs(a uint64, t *Scalar) uint64 {
	if !t.Signed {
		return Trunc(a, t)
	}
	s := AsInt64(a, t)
	if s < 0 {
		return Trunc(uint64(-s), t)
	}
	return Trunc(a, t)
}

// AddSat implements the OpenCL add_sat builtin (saturating addition).
func AddSat(a, b uint64, t *Scalar) uint64 {
	if t.Signed {
		sa, sb := AsInt64(a, t), AsInt64(b, t)
		max := int64(1)<<uint(t.Bits-1) - 1
		min := -int64(1) << uint(t.Bits-1)
		sum := sa + sb
		if t.Bits == 64 {
			// Detect 64-bit overflow explicitly.
			if sa > 0 && sb > 0 && sum < 0 {
				return Trunc(uint64(max), t)
			}
			if sa < 0 && sb < 0 && sum >= 0 {
				return Trunc(uint64(min), t)
			}
			return uint64(sum)
		}
		if sum > max {
			sum = max
		}
		if sum < min {
			sum = min
		}
		return Trunc(uint64(sum), t)
	}
	ua, ub := Trunc(a, t), Trunc(b, t)
	sum, carry := bits.Add64(ua, ub, 0)
	if t.Bits == 64 {
		if carry != 0 {
			return ^uint64(0)
		}
		return sum
	}
	lim := uint64(1)<<uint(t.Bits) - 1
	if sum > lim {
		return lim
	}
	return sum
}

// SubSat implements the OpenCL sub_sat builtin (saturating subtraction).
func SubSat(a, b uint64, t *Scalar) uint64 {
	if t.Signed {
		return AddSat(a, Neg(b, t), t)
	}
	ua, ub := Trunc(a, t), Trunc(b, t)
	if ub > ua {
		return 0
	}
	return ua - ub
}

// HAdd implements the OpenCL hadd builtin: (a+b)>>1 without overflow.
func HAdd(a, b uint64, t *Scalar) uint64 {
	if t.Signed {
		sa, sb := AsInt64(a, t), AsInt64(b, t)
		return Trunc(uint64((sa>>1)+(sb>>1)+(sa&sb&1)), t)
	}
	ua, ub := Trunc(a, t), Trunc(b, t)
	return Trunc((ua>>1)+(ub>>1)+(ua&ub&1), t)
}

// MulHi implements the OpenCL mul_hi builtin: the high half of the full
// product of a and b.
func MulHi(a, b uint64, t *Scalar) uint64 {
	if t.Bits < 64 {
		if t.Signed {
			p := AsInt64(a, t) * AsInt64(b, t)
			return Trunc(uint64(p>>uint(t.Bits)), t)
		}
		p := Trunc(a, t) * Trunc(b, t)
		return Trunc(p>>uint(t.Bits), t)
	}
	if t.Signed {
		hi, _ := bits.Mul64(SExt(a, t), SExt(b, t))
		// Adjust for signedness (two's complement high multiply).
		sa, sb := AsInt64(a, t), AsInt64(b, t)
		if sa < 0 {
			hi -= SExt(b, t)
		}
		if sb < 0 {
			hi -= SExt(a, t)
		}
		return hi
	}
	hi, _ := bits.Mul64(a, b)
	return hi
}

// Popcount implements the OpenCL popcount builtin.
func Popcount(a uint64, t *Scalar) uint64 {
	return uint64(bits.OnesCount64(Trunc(a, t)))
}

// Clz implements the OpenCL clz builtin (leading zeros within the width).
func Clz(a uint64, t *Scalar) uint64 {
	v := Trunc(a, t)
	return uint64(bits.LeadingZeros64(v) - (64 - t.Bits))
}
