package cltypes_test

import (
	"testing"
	"testing/quick"

	"clfuzz/internal/cltypes"
)

var scalarTypes = []*cltypes.Scalar{
	cltypes.TChar, cltypes.TUChar, cltypes.TShort, cltypes.TUShort,
	cltypes.TInt, cltypes.TUInt, cltypes.TLong, cltypes.TULong,
}

// TestTruncSExtRoundTrip: Trunc(SExt(v)) is the identity on truncated
// values, for every scalar type.
func TestTruncSExtRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		for _, ty := range scalarTypes {
			tv := cltypes.Trunc(v, ty)
			if cltypes.Trunc(cltypes.SExt(tv, ty), ty) != tv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAddCommutes: wrapping addition commutes and associates in every
// type.
func TestAddCommutes(t *testing.T) {
	f := func(a, b, c uint64) bool {
		for _, ty := range scalarTypes {
			if cltypes.Add(a, b, ty) != cltypes.Add(b, a, ty) {
				return false
			}
			if cltypes.Add(cltypes.Add(a, b, ty), c, ty) != cltypes.Add(a, cltypes.Add(b, c, ty), ty) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSubInverse: a - b + b == a (wrapping).
func TestSubInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		for _, ty := range scalarTypes {
			if cltypes.Add(cltypes.Sub(a, b, ty), b, ty) != cltypes.Trunc(a, ty) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNegDouble: -(-a) == a.
func TestNegDouble(t *testing.T) {
	f := func(a uint64) bool {
		for _, ty := range scalarTypes {
			if cltypes.Neg(cltypes.Neg(a, ty), ty) != cltypes.Trunc(a, ty) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDivSafeTotal: Div never panics and is the safe-math fallback (the
// first operand) exactly when C division would be undefined.
func TestDivSafeTotal(t *testing.T) {
	f := func(a, b uint64) bool {
		for _, ty := range scalarTypes {
			got := cltypes.Div(a, b, ty)
			if !cltypes.DivDefined(a, b, ty) {
				if got != cltypes.Trunc(a, ty) {
					return false
				}
			}
			_ = cltypes.Mod(a, b, ty)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRotateInverse: rotating left by k then by width-k restores the
// value; rotate is total for any shift amount.
func TestRotateInverse(t *testing.T) {
	f := func(a uint64, k uint8) bool {
		for _, ty := range scalarTypes {
			w := uint64(ty.Bits)
			sh := uint64(k) % w
			r1 := cltypes.Rotate(a, sh, ty)
			r2 := cltypes.Rotate(r1, w-sh, ty)
			if r2 != cltypes.Trunc(a, ty) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRotateIdentity is the Figure 2(b) fact: rotate(x, 0) == x.
func TestRotateIdentity(t *testing.T) {
	if got := cltypes.Rotate(1, 0, cltypes.TUInt); got != 1 {
		t.Errorf("rotate(1,0) = %d, want 1 (Figure 2(b) expected value)", got)
	}
}

// TestClampProperties: the result is always within [lo, hi] when lo <= hi.
func TestClampProperties(t *testing.T) {
	f := func(x, a, b uint64) bool {
		for _, ty := range scalarTypes {
			lo, hi := a, b
			if cltypes.CmpLT(hi, lo, ty) == 1 {
				lo, hi = hi, lo
			}
			c := cltypes.Clamp(x, lo, hi, ty)
			if cltypes.CmpLT(c, lo, ty) == 1 || cltypes.CmpLT(hi, c, ty) == 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMinMax: min/max select an operand and order correctly.
func TestMinMax(t *testing.T) {
	f := func(a, b uint64) bool {
		for _, ty := range scalarTypes {
			mn, mx := cltypes.Min(a, b, ty), cltypes.Max(a, b, ty)
			ta, tb := cltypes.Trunc(a, ty), cltypes.Trunc(b, ty)
			if (mn != ta && mn != tb) || (mx != ta && mx != tb) {
				return false
			}
			if cltypes.CmpLT(mx, mn, ty) == 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAddSatSaturates: saturating addition never wraps: for unsigned
// types the result is >= both operands.
func TestAddSatSaturates(t *testing.T) {
	f := func(a, b uint64) bool {
		for _, ty := range scalarTypes {
			if ty.Signed {
				continue
			}
			s := cltypes.AddSat(a, b, ty)
			if cltypes.CmpLT(s, a, ty) == 1 || cltypes.CmpLT(s, b, ty) == 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHAddAverage: hadd(a,b) == floor((a+b)/2) computed without overflow,
// verified against 128-bit-free arithmetic for unsigned types.
func TestHAddAverage(t *testing.T) {
	f := func(a, b uint64) bool {
		ty := cltypes.TUInt
		ta, tb := cltypes.Trunc(a, ty), cltypes.Trunc(b, ty)
		want := (ta + tb) / 2 // fits in uint64 for 32-bit operands
		return cltypes.HAdd(a, b, ty) == cltypes.Trunc(want, ty)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMulHi32 cross-checks mul_hi against the full 64-bit product for
// 32-bit types.
func TestMulHi32(t *testing.T) {
	f := func(a, b uint32) bool {
		got := cltypes.MulHi(uint64(a), uint64(b), cltypes.TUInt)
		want := (uint64(a) * uint64(b)) >> 32
		if got != want {
			return false
		}
		sg := cltypes.MulHi(uint64(a), uint64(b), cltypes.TInt)
		sw := uint64(int64(int32(a))*int64(int32(b))>>32) & 0xffffffff
		return sg == sw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestShiftsSafe: shifts are total and match plain shifts on defined
// inputs.
func TestShiftsSafe(t *testing.T) {
	f := func(a uint64, k uint8) bool {
		ty := cltypes.TUInt
		sh := uint64(k)
		got := cltypes.Shl(a, sh, ty, cltypes.TUInt)
		if sh < 32 {
			want := cltypes.Trunc(cltypes.Trunc(a, ty)<<sh, ty)
			if got != want {
				return false
			}
		} else if got != cltypes.Trunc(a, ty) {
			return false // safe fallback
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestUsualArith spot-checks C99 usual arithmetic conversions.
func TestUsualArith(t *testing.T) {
	cases := []struct {
		a, b, want *cltypes.Scalar
	}{
		{cltypes.TChar, cltypes.TChar, cltypes.TInt},     // promotion
		{cltypes.TShort, cltypes.TUShort, cltypes.TInt},  // both promote to int
		{cltypes.TInt, cltypes.TUInt, cltypes.TUInt},     // unsigned wins at equal rank
		{cltypes.TUInt, cltypes.TLong, cltypes.TLong},    // long covers uint
		{cltypes.TLong, cltypes.TULong, cltypes.TULong},  // unsigned wins
		{cltypes.TInt, cltypes.TSizeT, cltypes.TSizeT},   // the config-15 mixing shape
		{cltypes.TULong, cltypes.TSizeT, cltypes.TULong}, // same rank unsigned
	}
	for _, c := range cases {
		if got := cltypes.UsualArith(c.a, c.b); got.Kind() != c.want.Kind() {
			t.Errorf("UsualArith(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

// TestStructLayout checks padding-sensitive sizes (the layout the AMD and
// NVIDIA defect models depend on).
func TestStructLayout(t *testing.T) {
	s := &cltypes.StructT{Name: "S", Fields: []cltypes.Field{
		{Name: "a", Type: cltypes.TChar},
		{Name: "b", Type: cltypes.TShort},
	}}
	if s.Size() != 4 {
		t.Errorf("struct{char;short} size = %d, want 4 (1 pad byte + alignment)", s.Size())
	}
	u := &cltypes.StructT{Name: "U", IsUnion: true, Fields: []cltypes.Field{
		{Name: "a", Type: cltypes.TUInt},
		{Name: "b", Type: s},
	}}
	if u.Size() != 4 {
		t.Errorf("union size = %d, want 4", u.Size())
	}
	arr := cltypes.ArrayOf(cltypes.ArrayOf(cltypes.TULong, 3), 2)
	if arr.Size() != 48 {
		t.Errorf("ulong[2][3] size = %d, want 48", arr.Size())
	}
	dims, elem := arr.Dims()
	if len(dims) != 2 || dims[0] != 2 || dims[1] != 3 || !elem.Equal(cltypes.TULong) {
		t.Errorf("Dims = %v %s", dims, elem)
	}
}

// TestSwizzleIndices checks both selector syntaxes.
func TestSwizzleIndices(t *testing.T) {
	cases := []struct {
		sel  string
		want []int
	}{
		{"x", []int{0}}, {"y", []int{1}}, {"w", []int{3}},
		{"xyzw", []int{0, 1, 2, 3}},
		{"s0", []int{0}}, {"sf", []int{15}}, {"s03", []int{0, 3}},
		{"q", nil}, {"", nil}, {"s", nil}, {"xq", nil},
	}
	for _, c := range cases {
		got := cltypes.SwizzleIndices(c.sel)
		if len(got) != len(c.want) {
			t.Errorf("SwizzleIndices(%q) = %v, want %v", c.sel, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SwizzleIndices(%q) = %v, want %v", c.sel, got, c.want)
			}
		}
	}
}

// TestVectorByName checks vector type name parsing.
func TestVectorByName(t *testing.T) {
	v, ok := cltypes.VectorByName("ushort8")
	if !ok || v.Len != 8 || v.Elem.Kind() != cltypes.KindUShort {
		t.Errorf("VectorByName(ushort8) = %v %v", v, ok)
	}
	if _, ok := cltypes.VectorByName("int3"); ok {
		t.Error("int3 should be rejected (OpenCL 1.0 subset)")
	}
	if _, ok := cltypes.VectorByName("float4"); ok {
		t.Error("float4 should be rejected (integer subset)")
	}
}
