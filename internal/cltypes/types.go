package cltypes

import (
	"fmt"
	"strings"
)

// Kind discriminates the categories of types in the subset.
type Kind int

// The type kinds.
const (
	KindBool Kind = iota
	KindChar
	KindUChar
	KindShort
	KindUShort
	KindInt
	KindUInt
	KindLong
	KindULong
	KindSizeT
	KindVector
	KindStruct
	KindUnion
	KindArray
	KindPointer
	KindVoid
)

// AddrSpace is an OpenCL address space qualifier.
type AddrSpace int

// The four OpenCL memory spaces (paper §3.1). Private is the default.
const (
	Private AddrSpace = iota
	Global
	Local
	Constant
)

// String returns the OpenCL C keyword for the address space, or the empty
// string for the default (private) space.
func (s AddrSpace) String() string {
	switch s {
	case Global:
		return "global"
	case Local:
		return "local"
	case Constant:
		return "constant"
	default:
		return ""
	}
}

// Type is the interface implemented by all types in the subset.
type Type interface {
	Kind() Kind
	// String renders the type as OpenCL C source.
	String() string
	// Size returns the storage size in bytes (used for layout-sensitive
	// bug models such as struct padding miscompilations).
	Size() int
	// Equal reports structural type equality.
	Equal(Type) bool
}

// Scalar is a fixed-width integer type. Bool is modeled as a 1-bit unsigned
// scalar that stores 0 or 1.
type Scalar struct {
	K      Kind
	Bits   int
	Signed bool
}

// The singleton scalar types.
var (
	TBool   = &Scalar{KindBool, 1, false}
	TChar   = &Scalar{KindChar, 8, true}
	TUChar  = &Scalar{KindUChar, 8, false}
	TShort  = &Scalar{KindShort, 16, true}
	TUShort = &Scalar{KindUShort, 16, false}
	TInt    = &Scalar{KindInt, 32, true}
	TUInt   = &Scalar{KindUInt, 32, false}
	TLong   = &Scalar{KindLong, 64, true}
	TULong  = &Scalar{KindULong, 64, false}
	TSizeT  = &Scalar{KindSizeT, 64, false}
)

// Kind implements Type.
func (s *Scalar) Kind() Kind { return s.K }

// String implements Type.
func (s *Scalar) String() string {
	switch s.K {
	case KindBool:
		return "bool"
	case KindChar:
		return "char"
	case KindUChar:
		return "uchar"
	case KindShort:
		return "short"
	case KindUShort:
		return "ushort"
	case KindInt:
		return "int"
	case KindUInt:
		return "uint"
	case KindLong:
		return "long"
	case KindULong:
		return "ulong"
	case KindSizeT:
		return "size_t"
	}
	return "?"
}

// Size implements Type.
func (s *Scalar) Size() int {
	if s.K == KindBool {
		return 1
	}
	return s.Bits / 8
}

// Equal implements Type.
func (s *Scalar) Equal(o Type) bool {
	os, ok := o.(*Scalar)
	return ok && os.K == s.K
}

// Vector is an OpenCL vector type such as int4 or ushort8.
type Vector struct {
	Elem *Scalar
	Len  int
}

// VectorLens lists the vector lengths supported by the subset. OpenCL 1.0
// supports 2, 4, 8 and 16 (length-3 vectors arrived in 1.1 and are omitted,
// matching CLsmith).
var VectorLens = []int{2, 4, 8, 16}

// VecOf returns the vector type with the given element type and length.
func VecOf(elem *Scalar, n int) *Vector { return &Vector{Elem: elem, Len: n} }

// Kind implements Type.
func (v *Vector) Kind() Kind { return KindVector }

// String implements Type.
func (v *Vector) String() string { return fmt.Sprintf("%s%d", v.Elem.String(), v.Len) }

// Size implements Type.
func (v *Vector) Size() int { return v.Elem.Size() * v.Len }

// Equal implements Type.
func (v *Vector) Equal(o Type) bool {
	ov, ok := o.(*Vector)
	return ok && ov.Len == v.Len && ov.Elem.Equal(v.Elem)
}

// Field is a struct or union member.
type Field struct {
	Name     string
	Type     Type
	Volatile bool
}

// StructT is a struct or union type. Union types set IsUnion.
type StructT struct {
	Name    string
	Fields  []Field
	IsUnion bool
}

// Kind implements Type.
func (s *StructT) Kind() Kind {
	if s.IsUnion {
		return KindUnion
	}
	return KindStruct
}

// String implements Type.
func (s *StructT) String() string {
	if s.IsUnion {
		return "union " + s.Name
	}
	return "struct " + s.Name
}

// Size implements Type. Struct layout uses natural alignment, matching the
// OpenCL ABI rules closely enough for the padding-sensitive bug models.
func (s *StructT) Size() int {
	if s.IsUnion {
		max := 0
		for _, f := range s.Fields {
			if sz := f.Type.Size(); sz > max {
				max = sz
			}
		}
		return max
	}
	off, maxAlign := 0, 1
	for _, f := range s.Fields {
		a := alignOf(f.Type)
		if a > maxAlign {
			maxAlign = a
		}
		off = roundUp(off, a)
		off += f.Type.Size()
	}
	return roundUp(off, maxAlign)
}

// FieldIndex returns the index of the named field, or -1.
func (s *StructT) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Equal implements Type. Struct types use name equality (the subset has no
// anonymous struct types outside definitions).
func (s *StructT) Equal(o Type) bool {
	os, ok := o.(*StructT)
	return ok && os.Name == s.Name && os.IsUnion == s.IsUnion
}

// Array is a constant-length array type. Multi-dimensional arrays are
// arrays of arrays.
type Array struct {
	Elem Type
	Len  int
}

// ArrayOf returns the array type [n]elem.
func ArrayOf(elem Type, n int) *Array { return &Array{Elem: elem, Len: n} }

// Kind implements Type.
func (a *Array) Kind() Kind { return KindArray }

// String implements Type.
func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem.String(), a.Len) }

// Size implements Type.
func (a *Array) Size() int { return a.Elem.Size() * a.Len }

// Equal implements Type.
func (a *Array) Equal(o Type) bool {
	oa, ok := o.(*Array)
	return ok && oa.Len == a.Len && oa.Elem.Equal(a.Elem)
}

// Dims flattens a possibly multi-dimensional array type into its dimension
// list and ultimate element type.
func (a *Array) Dims() (dims []int, elem Type) {
	t := Type(a)
	for {
		at, ok := t.(*Array)
		if !ok {
			return dims, t
		}
		dims = append(dims, at.Len)
		t = at.Elem
	}
}

// Pointer is an address-space qualified pointer type.
type Pointer struct {
	Elem  Type
	Space AddrSpace
}

// PtrTo returns a private-space pointer to elem.
func PtrTo(elem Type) *Pointer { return &Pointer{Elem: elem, Space: Private} }

// Kind implements Type.
func (p *Pointer) Kind() Kind { return KindPointer }

// String implements Type.
func (p *Pointer) String() string {
	var b strings.Builder
	if s := p.Space.String(); s != "" {
		b.WriteString(s)
		b.WriteByte(' ')
	}
	b.WriteString(p.Elem.String())
	b.WriteByte('*')
	return b.String()
}

// Size implements Type. Pointers are modeled as 8 bytes.
func (p *Pointer) Size() int { return 8 }

// Equal implements Type. Address spaces must match: OpenCL 1.x pointers to
// distinct address spaces are distinct types.
func (p *Pointer) Equal(o Type) bool {
	op, ok := o.(*Pointer)
	return ok && op.Space == p.Space && op.Elem.Equal(p.Elem)
}

// Void is the void type (function returns only).
type Void struct{}

// TVoid is the singleton void type.
var TVoid = &Void{}

// Kind implements Type.
func (*Void) Kind() Kind { return KindVoid }

// String implements Type.
func (*Void) String() string { return "void" }

// Size implements Type.
func (*Void) Size() int { return 0 }

// Equal implements Type.
func (*Void) Equal(o Type) bool { _, ok := o.(*Void); return ok }

func alignOf(t Type) int {
	switch tt := t.(type) {
	case *Scalar:
		return tt.Size()
	case *Vector:
		return tt.Size()
	case *StructT:
		a := 1
		for _, f := range tt.Fields {
			if fa := alignOf(f.Type); fa > a {
				a = fa
			}
		}
		return a
	case *Array:
		return alignOf(tt.Elem)
	case *Pointer:
		return 8
	}
	return 1
}

func roundUp(x, a int) int { return (x + a - 1) / a * a }

// IsScalarInt reports whether t is an integer scalar (including bool and
// size_t).
func IsScalarInt(t Type) bool {
	_, ok := t.(*Scalar)
	return ok
}

// IsVector reports whether t is a vector type.
func IsVector(t Type) bool {
	_, ok := t.(*Vector)
	return ok
}

// ScalarByName resolves an OpenCL C scalar type keyword.
func ScalarByName(name string) (*Scalar, bool) {
	switch name {
	case "bool":
		return TBool, true
	case "char":
		return TChar, true
	case "uchar":
		return TUChar, true
	case "short":
		return TShort, true
	case "ushort":
		return TUShort, true
	case "int":
		return TInt, true
	case "uint":
		return TUInt, true
	case "long":
		return TLong, true
	case "ulong":
		return TULong, true
	case "size_t":
		return TSizeT, true
	}
	return nil, false
}

// VectorByName resolves an OpenCL C vector type name such as "int4".
func VectorByName(name string) (*Vector, bool) {
	for _, base := range []string{"uchar", "ushort", "uint", "ulong", "char", "short", "int", "long"} {
		if strings.HasPrefix(name, base) {
			suffix := name[len(base):]
			switch suffix {
			case "2", "4", "8", "16":
				elem, _ := ScalarByName(base)
				n := 2
				switch suffix {
				case "4":
					n = 4
				case "8":
					n = 8
				case "16":
					n = 16
				}
				return VecOf(elem, n), true
			}
		}
	}
	return nil, false
}

// UsualArith implements the C99 usual arithmetic conversions restricted to
// the OpenCL integer scalar types: both operands are converted to a common
// type which is returned. Operands of rank below int are promoted to int.
func UsualArith(a, b *Scalar) *Scalar {
	a = Promote(a)
	b = Promote(b)
	if a.K == b.K {
		return a
	}
	ra, rb := rank(a), rank(b)
	if a.Signed == b.Signed {
		if ra >= rb {
			return a
		}
		return b
	}
	// Opposite signedness: unsigned wins at equal or higher rank.
	us, ss := a, b
	ru, rs := ra, rb
	if b.Signed == false {
		us, ss = b, a
		ru, rs = rb, ra
	}
	if ru >= rs {
		return us
	}
	// The signed type has higher rank and can represent all values of the
	// unsigned type (true for our widths since rank gap implies width gap).
	return ss
}

// Promote applies the C integer promotions: types narrower than int are
// promoted to int; bool promotes to int.
func Promote(s *Scalar) *Scalar {
	if s.Bits < 32 || s.K == KindBool {
		return TInt
	}
	return s
}

func rank(s *Scalar) int {
	switch s.Bits {
	case 1, 8:
		return 1
	case 16:
		return 2
	case 32:
		return 3
	default:
		return 4
	}
}

// SwizzleIndices decodes an OpenCL vector component selector (x/y/z/w or
// s0..sf numeric form) into component indices, or nil if malformed.
func SwizzleIndices(sel string) []int {
	if sel == "" {
		return nil
	}
	if sel[0] == 's' || sel[0] == 'S' {
		var out []int
		for _, ch := range strings.ToLower(sel[1:]) {
			switch {
			case ch >= '0' && ch <= '9':
				out = append(out, int(ch-'0'))
			case ch >= 'a' && ch <= 'f':
				out = append(out, int(ch-'a')+10)
			default:
				return nil
			}
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
	var out []int
	for _, ch := range sel {
		switch ch {
		case 'x':
			out = append(out, 0)
		case 'y':
			out = append(out, 1)
		case 'z':
			out = append(out, 2)
		case 'w':
			out = append(out, 3)
		default:
			return nil
		}
	}
	return out
}
