// Package cltypes implements the OpenCL C subset type system used
// throughout the fuzzer: the fixed-width integer scalar types mandated by
// the OpenCL specification, vector types of lengths 2/4/8/16, structs,
// unions, arrays and address-space-qualified pointers.
//
// OpenCL fixes the widths of the primitive types and mandates two's
// complement representation for signed integers (paper §3.1), so all
// integer values in this code base are carried as uint64 bit patterns
// truncated to the width of their type; package cltypes also provides the
// arithmetic helpers that implement the wrapping, well-defined semantics
// (intops.go: Add/Sub/Mul, saturating and safe-math variants, shifts,
// comparisons, conversions).
package cltypes
