package harness

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"clfuzz/internal/benchmarks"
	"clfuzz/internal/campaign"
	"clfuzz/internal/device"
	"clfuzz/internal/generator"
)

// ShardSchema identifies the partial-results file format.
const ShardSchema = "clfuzz-shard/v1"

// Params fixes the campaign inputs every shard of one campaign must
// share: the table, its size, and the generation seeds. Two shard files
// with differing Params cannot be merged.
type Params struct {
	// Table selects the campaign: 1, 3, 4 or 5.
	Table int `json:"table"`
	// Scale is the campaign size per unit (kernels per mode for Tables
	// 1/4, EMI bases for Table 5, variants-per-benchmark ÷2+1 input for
	// Table 3 — the same value cltables -scale passes).
	Scale int   `json:"scale"`
	Seed  int64 `json:"seed"`
	// Threads caps generated-kernel thread counts (unused by Table 3).
	Threads  int   `json:"threads"`
	BaseFuel int64 `json:"base_fuel,omitempty"`
}

// ShardRecord is one case's serialized campaign record.
type ShardRecord struct {
	Index int             `json:"index"`
	Data  json.RawMessage `json:"data"`
}

// ShardFile is the machine-readable partial-results file `cltables
// -shard i/n` emits: the campaign parameters, the total case count, and
// this shard's records (cases with index % n == i).
type ShardFile struct {
	Schema string `json:"schema"`
	Params
	Cases   int           `json:"cases"`
	Shard   int           `json:"shard"`
	Of      int           `json:"of"`
	Records []ShardRecord `json:"records"`
}

// shardCampaign adapts one table's case list, per-case runner and fold
// to the shard driver. run returns the case's JSON-serializable record;
// render folds records (complete, in case order) into the rendered
// output.
type shardCampaign struct {
	cases  int
	run    func(i int) any
	render func(records []json.RawMessage) (string, error)
}

// campaignFor builds the shard adapter for the table named by p,
// regenerating the deterministic case list (including any
// execution-backed acceptance filtering, which every shard must repeat —
// the result cache makes the campaign proper reuse those runs).
func campaignFor(eng *campaign.Engine, p Params) (*shardCampaign, error) {
	switch p.Table {
	case 1:
		cfgs := device.All()
		n := table1Cases(p.Scale)
		return &shardCampaign{
			cases: n,
			run: func(i int) any {
				return table1Record(eng, cfgs, p.Scale, p.Seed, p.Threads, p.BaseFuel, i, n)
			},
			render: func(records []json.RawMessage) (string, error) {
				recs, err := decodeRecords[t1Record](records)
				if err != nil {
					return "", err
				}
				return RenderTable1(foldTable1(cfgs, recs)), nil
			},
		}, nil
	case 3:
		testCfgs := table3Configs()
		clean := benchmarks.Clean()
		variants := p.Scale/2 + 1
		return &shardCampaign{
			cases: len(clean),
			run: func(i int) any {
				return table3Record(eng, testCfgs, clean[i], variants, p.Seed, p.BaseFuel, len(clean))
			},
			render: func(records []json.RawMessage) (string, error) {
				recs, err := decodeRecords[t3Record](records)
				if err != nil {
					return "", err
				}
				return RenderTable3(foldTable3(recs)), nil
			},
		}, nil
	case 4:
		cfgs := AboveThresholdConfigs()
		// The accepted kernel list is regenerated lazily: a merge only
		// folds records and must not pay for (or require) the acceptance
		// executions.
		kernels := sync.OnceValue(func() [][]*generator.Kernel {
			return table4Kernels(eng, p.Scale, p.Seed, p.Threads, p.BaseFuel)
		})
		n := len(generator.Modes) * p.Scale
		return &shardCampaign{
			cases: n,
			run: func(i int) any {
				return table4Record(eng, cfgs, kernels(), p.Scale, p.BaseFuel, i, n)
			},
			render: func(records []json.RawMessage) (string, error) {
				recs, err := decodeRecords[t4Record](records)
				if err != nil {
					return "", err
				}
				return RenderTable4(foldTable4(cfgs, p.Scale, recs)), nil
			},
		}, nil
	case 5:
		cfgs := AboveThresholdConfigs()
		keys := table5Keys(cfgs)
		// generateEMIBases returns exactly Scale bases; regenerate them
		// lazily so a merge folds without re-running the keep-filter.
		bases := sync.OnceValue(func() []*generator.Kernel {
			return generateEMIBases(eng, p.Scale, p.Seed, p.Threads, p.BaseFuel)
		})
		return &shardCampaign{
			cases: p.Scale,
			run: func(i int) any {
				return table5Record(eng, cfgs, keys, bases()[i], p.BaseFuel, p.Scale)
			},
			render: func(records []json.RawMessage) (string, error) {
				recs, err := decodeRecords[t5Record](records)
				if err != nil {
					return "", err
				}
				t5 := foldTable5(keys, p.Scale, recs)
				return RenderTable5(t5) + "\n" + RenderPruningComparison(t5), nil
			},
		}, nil
	default:
		return nil, fmt.Errorf("harness: table %d is not a shardable campaign (1, 3, 4 or 5)", p.Table)
	}
}

func decodeRecords[R any](records []json.RawMessage) ([]R, error) {
	out := make([]R, len(records))
	for i, raw := range records {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("harness: record %d: %w", i, err)
		}
	}
	return out, nil
}

// RunShard executes shard `shard` of `of` interleaved campaign slices
// (cases with index % of == shard) and returns the partial-results file.
// The case list itself — including execution-backed acceptance filtering
// — is deterministic in Params, so every shard sees the identical list
// and the merged output is byte-identical to an unsharded run.
func RunShard(p Params, shard, of int) (*ShardFile, error) {
	return runShard(campaign.Default, p, shard, of)
}

func runShard(eng *campaign.Engine, p Params, shard, of int) (*ShardFile, error) {
	if of < 1 || shard < 0 || shard >= of {
		return nil, fmt.Errorf("harness: bad shard %d/%d", shard, of)
	}
	sc, err := campaignFor(eng, p)
	if err != nil {
		return nil, err
	}
	var indices []int
	for i := shard; i < sc.cases; i += of {
		indices = append(indices, i)
	}
	sf := &ShardFile{
		Schema: ShardSchema, Params: p,
		Cases: sc.cases, Shard: shard, Of: of,
		Records: make([]ShardRecord, len(indices)),
	}
	type encoded struct {
		raw json.RawMessage
		err error
	}
	var encodeErr error
	campaign.Stream(len(indices), func(i, _ int) encoded {
		raw, err := json.Marshal(sc.run(indices[i]))
		return encoded{raw, err}
	}, func(i int, e encoded) {
		// The sink runs on this goroutine; error collection needs no lock.
		if e.err != nil && encodeErr == nil {
			encodeErr = e.err
		}
		sf.Records[i] = ShardRecord{Index: indices[i], Data: e.raw}
	})
	if encodeErr != nil {
		return nil, encodeErr
	}
	return sf, nil
}

// MergeShards validates that the shard files cover every case of one
// campaign exactly once, folds their records in case order, and renders
// the output — byte-identical to the unsharded run.
func MergeShards(files []*ShardFile) (string, error) {
	return mergeShards(campaign.Default, files)
}

func mergeShards(eng *campaign.Engine, files []*ShardFile) (string, error) {
	if len(files) == 0 {
		return "", fmt.Errorf("harness: no shard files to merge")
	}
	first := files[0]
	byIndex := map[int]json.RawMessage{}
	for _, f := range files {
		if f.Schema != ShardSchema {
			return "", fmt.Errorf("harness: unknown shard schema %q", f.Schema)
		}
		if f.Params != first.Params || f.Cases != first.Cases {
			return "", fmt.Errorf("harness: shard parameters disagree: %+v (%d cases) vs %+v (%d cases)",
				f.Params, f.Cases, first.Params, first.Cases)
		}
		for _, r := range f.Records {
			if r.Index < 0 || r.Index >= f.Cases {
				return "", fmt.Errorf("harness: record index %d out of range (%d cases)", r.Index, f.Cases)
			}
			if _, dup := byIndex[r.Index]; dup {
				return "", fmt.Errorf("harness: case %d appears in more than one shard", r.Index)
			}
			byIndex[r.Index] = r.Data
		}
	}
	if len(byIndex) != first.Cases {
		var missing []int
		for i := 0; i < first.Cases; i++ {
			if _, ok := byIndex[i]; !ok {
				missing = append(missing, i)
			}
		}
		sort.Ints(missing)
		return "", fmt.Errorf("harness: incomplete shard set: missing cases %v", missing)
	}
	// The fold stage never re-executes; only the render adapter (which
	// may regenerate the deterministic case list for sizing) needs the
	// engine.
	sc, err := campaignFor(eng, first.Params)
	if err != nil {
		return "", err
	}
	if sc.cases != first.Cases {
		return "", fmt.Errorf("harness: shard files claim %d cases, campaign has %d", first.Cases, sc.cases)
	}
	records := make([]json.RawMessage, first.Cases)
	for i := range records {
		records[i] = byIndex[i]
	}
	return sc.render(records)
}

// RenderCampaign runs the whole campaign unsharded and renders its
// output. It is literally a one-shard run followed by a merge, so the
// sharded and unsharded paths cannot diverge.
func RenderCampaign(p Params) (string, error) {
	return renderCampaign(campaign.Default, p)
}

func renderCampaign(eng *campaign.Engine, p Params) (string, error) {
	sf, err := runShard(eng, p, 0, 1)
	if err != nil {
		return "", err
	}
	return mergeShards(eng, []*ShardFile{sf})
}
