package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"clfuzz/internal/benchmarks"
	"clfuzz/internal/campaign"
	"clfuzz/internal/device"
	"clfuzz/internal/exec"
	"clfuzz/internal/generator"
)

// ShardSchema identifies the partial-results file format.
const ShardSchema = "clfuzz-shard/v1"

// Params fixes the campaign inputs every shard of one campaign must
// share: the table, its size, and the generation seeds. Two shard files
// with differing Params cannot be merged.
type Params struct {
	// Table selects the campaign: 1, 3, 4 or 5.
	Table int `json:"table"`
	// Scale is the campaign size per unit (kernels per mode for Tables
	// 1/4, EMI bases for Table 5, variants-per-benchmark ÷2+1 input for
	// Table 3 — the same value cltables -scale passes).
	Scale int   `json:"scale"`
	Seed  int64 `json:"seed"`
	// Threads caps generated-kernel thread counts (unused by Table 3).
	Threads  int   `json:"threads"`
	BaseFuel int64 `json:"base_fuel,omitempty"`
	// Chains is the number of independent fuzzing chains of the
	// coverage-guided campaign (Table 6 / cltables -fuzz); 0 means the
	// default of 4. Ignored by the paper tables.
	Chains int `json:"chains,omitempty"`
	// Fresh disables the fuzz campaign's feedback: every step generates a
	// fresh swarm-random kernel and the corpus is never consulted. This is
	// the equal-budget pure-random baseline the coverage-over-time series
	// compares against. Ignored by the paper tables.
	Fresh bool `json:"fresh,omitempty"`
	// Fuel records the fuel-accounting model the campaign ran under
	// ("v2", or empty for the default fuel/v1 — omitted so fuel/v1 shard
	// files are byte-identical to earlier schema revisions). Campaign
	// results are only byte-identical within one model, so the Params
	// struct-equality checks in resume and merge reject mixing, and
	// runShard refuses to execute a shard whose recorded model disagrees
	// with the process default (see device.DefaultFuelModel).
	Fuel string `json:"fuel,omitempty"`
}

// DefaultFuelParam returns the Params.Fuel record matching the process
// default fuel model: "v2" under fuel/v2, empty under fuel/v1 so that
// fuel/v1 shard files stay byte-identical to earlier schema revisions.
func DefaultFuelParam() string {
	if device.DefaultFuelModel == exec.FuelV2 {
		return "v2"
	}
	return ""
}

// fuelModel parses the recorded fuel model; empty means fuel/v1.
func (p Params) fuelModel() (exec.FuelModel, error) {
	fm, err := exec.ParseFuelModel(p.Fuel)
	if err != nil {
		return exec.FuelAuto, err
	}
	if fm == exec.FuelAuto {
		fm = exec.FuelV1
	}
	return fm, nil
}

// chainCount resolves the fuzz campaign's chain count.
func (p Params) chainCount() int {
	if p.Chains > 0 {
		return p.Chains
	}
	return 4
}

// ShardRecord is one case's serialized campaign record.
type ShardRecord struct {
	Index int             `json:"index"`
	Data  json.RawMessage `json:"data"`
}

// ShardFile is the machine-readable partial-results file `cltables
// -shard i/n` emits: the campaign parameters, the total case count, and
// this shard's records (cases with index % n == i). A shard file may be
// partial — an interrupted worker flushes whatever cases completed — and
// the resume path (ShardRunOptions.Prior) re-runs only the missing ones.
type ShardFile struct {
	Schema string `json:"schema"`
	Params
	Cases   int           `json:"cases"`
	Shard   int           `json:"shard"`
	Of      int           `json:"of"`
	Records []ShardRecord `json:"records"`
}

// Complete reports whether the file holds every case of its slice.
func (sf *ShardFile) Complete() bool {
	n := 0
	for i := sf.Shard; i < sf.Cases; i += sf.Of {
		n++
	}
	return len(sf.Records) == n
}

// shardCampaign adapts one table's case list, per-case runner and fold
// to the shard driver. run returns the case's JSON-serializable record;
// failed synthesizes the record of a case whose worker was quarantined
// (every observation a crash); render folds records (complete, in case
// order) into the rendered output.
type shardCampaign struct {
	cases  int
	run    func(ctx context.Context, i int) any
	failed func() any
	render func(records []json.RawMessage) (string, error)
}

// campaignFor builds the shard adapter for the table named by p,
// regenerating the deterministic case list (including any
// execution-backed acceptance filtering, which every shard must repeat —
// the result cache makes the campaign proper reuse those runs).
func campaignFor(eng *campaign.Engine, p Params) (*shardCampaign, error) {
	switch p.Table {
	case 1:
		cfgs := device.All()
		n := table1Cases(p.Scale)
		return &shardCampaign{
			cases: n,
			run: func(ctx context.Context, i int) any {
				return table1Record(ctx, eng, cfgs, p.Scale, p.Seed, p.Threads, p.BaseFuel, i, n)
			},
			failed: func() any { return table1Failed(cfgs) },
			render: func(records []json.RawMessage) (string, error) {
				recs, err := decodeRecords[t1Record](records)
				if err != nil {
					return "", err
				}
				return RenderTable1(foldTable1(cfgs, recs)), nil
			},
		}, nil
	case 3:
		testCfgs := table3Configs()
		clean := benchmarks.Clean()
		variants := p.Scale/2 + 1
		return &shardCampaign{
			cases: len(clean),
			run: func(ctx context.Context, i int) any {
				return table3Record(ctx, eng, testCfgs, clean[i], variants, p.Seed, p.BaseFuel, len(clean))
			},
			failed: func() any { return table3Failed(testCfgs) },
			render: func(records []json.RawMessage) (string, error) {
				recs, err := decodeRecords[t3Record](records)
				if err != nil {
					return "", err
				}
				return RenderTable3(foldTable3(recs)), nil
			},
		}, nil
	case 4:
		cfgs := AboveThresholdConfigs()
		// The accepted kernel list is regenerated lazily: a merge only
		// folds records and must not pay for (or require) the acceptance
		// executions.
		kernels := sync.OnceValue(func() [][]*generator.Kernel {
			return table4Kernels(eng, p.Scale, p.Seed, p.Threads, p.BaseFuel)
		})
		n := len(generator.Modes) * p.Scale
		return &shardCampaign{
			cases: n,
			run: func(ctx context.Context, i int) any {
				return table4Record(ctx, eng, cfgs, kernels(), p.Scale, p.BaseFuel, i, n)
			},
			failed: func() any { return table4Failed(cfgs) },
			render: func(records []json.RawMessage) (string, error) {
				recs, err := decodeRecords[t4Record](records)
				if err != nil {
					return "", err
				}
				return RenderTable4(foldTable4(cfgs, p.Scale, recs)), nil
			},
		}, nil
	case 5:
		cfgs := AboveThresholdConfigs()
		keys := table5Keys(cfgs)
		// generateEMIBases returns exactly Scale bases; regenerate them
		// lazily so a merge folds without re-running the keep-filter.
		bases := sync.OnceValue(func() []*generator.Kernel {
			return generateEMIBases(eng, p.Scale, p.Seed, p.Threads, p.BaseFuel)
		})
		return &shardCampaign{
			cases: p.Scale,
			run: func(ctx context.Context, i int) any {
				return table5Record(ctx, eng, cfgs, keys, bases()[i], p.BaseFuel, p.Scale)
			},
			failed: func() any { return table5Failed(keys) },
			render: func(records []json.RawMessage) (string, error) {
				recs, err := decodeRecords[t5Record](records)
				if err != nil {
					return "", err
				}
				t5 := foldTable5(keys, p.Scale, recs)
				return RenderTable5(t5) + "\n" + RenderPruningComparison(t5), nil
			},
		}, nil
	case FuzzTable:
		return fuzzCampaign(eng, p), nil
	default:
		return nil, fmt.Errorf("harness: table %d is not a shardable campaign (1, 3, 4, 5 or %d)", p.Table, FuzzTable)
	}
}

func decodeRecords[R any](records []json.RawMessage) ([]R, error) {
	out := make([]R, len(records))
	for i, raw := range records {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("harness: record %d: %w", i, err)
		}
	}
	return out, nil
}

// CampaignCases returns the total case count of the campaign named by p
// without executing anything — the shard supervisor sizes its partition
// with it.
func CampaignCases(p Params) (int, error) {
	sc, err := campaignFor(campaign.Default, p)
	if err != nil {
		return 0, err
	}
	return sc.cases, nil
}

// ShardRunOptions tunes RunShard beyond the defaults.
type ShardRunOptions struct {
	// Prior resumes a partial shard file from an earlier, interrupted run
	// of the identical slice: its records are reused and only the missing
	// cases execute. Must match Params/Shard/Of exactly.
	Prior *ShardFile
	// OnCase, when non-nil, runs on the driver goroutine after each case
	// completes (including reused prior cases, counted up front), with
	// the completed and total case counts of this slice. The fault-
	// injection knob and progress reporting hang off it.
	OnCase func(done, total int)
}

// RunShard executes shard `shard` of `of` interleaved campaign slices
// (cases with index % of == shard) and returns the partial-results file.
// The case list itself — including execution-backed acceptance filtering
// — is deterministic in Params, so every shard sees the identical list
// and the merged output is byte-identical to an unsharded run.
//
// Cancelling ctx stops dispatch cooperatively; RunShard then returns the
// valid partial file holding every case that completed before the
// cancellation, together with ctx's error. Feed that file back through
// ShardRunOptions.Prior to resume.
func RunShard(ctx context.Context, p Params, shard, of int) (*ShardFile, error) {
	return runShard(ctx, campaign.Default, p, shard, of, ShardRunOptions{})
}

// RunShardOpts is RunShard with resume and progress options.
func RunShardOpts(ctx context.Context, p Params, shard, of int, o ShardRunOptions) (*ShardFile, error) {
	return runShard(ctx, campaign.Default, p, shard, of, o)
}

func runShard(ctx context.Context, eng *campaign.Engine, p Params, shard, of int, o ShardRunOptions) (*ShardFile, error) {
	if of < 1 || shard < 0 || shard >= of {
		return nil, fmt.Errorf("harness: bad shard %d/%d", shard, of)
	}
	// Launches run under the process-wide fuel model; the recorded
	// Params.Fuel must agree, or this shard's records would silently
	// disagree with siblings run elsewhere (merge checks Params equality,
	// but only this check ties the record to what actually executed).
	if fm, err := p.fuelModel(); err != nil {
		return nil, err
	} else if fm != device.DefaultFuelModel {
		return nil, fmt.Errorf("harness: shard params record fuel model %s but the process runs %s (set -fuel or CLFUZZ_FUEL)",
			fm, device.DefaultFuelModel)
	}
	sc, err := campaignFor(eng, p)
	if err != nil {
		return nil, err
	}
	prior := map[int]json.RawMessage{}
	if o.Prior != nil {
		pf := o.Prior
		if pf.Params != p || pf.Shard != shard || pf.Of != of || pf.Cases != sc.cases {
			return nil, fmt.Errorf("harness: prior shard file is for %d/%d of a %d-case campaign %+v, not %d/%d of %d cases",
				pf.Shard, pf.Of, pf.Cases, pf.Params, shard, of, sc.cases)
		}
		for _, r := range pf.Records {
			prior[r.Index] = r.Data
		}
	}
	var indices []int
	var records []ShardRecord
	for i := shard; i < sc.cases; i += of {
		if raw, ok := prior[i]; ok {
			records = append(records, ShardRecord{Index: i, Data: raw})
		} else {
			indices = append(indices, i)
		}
	}
	total := len(indices) + len(records)
	done := len(records)
	type encoded struct {
		raw json.RawMessage
		err error
	}
	var encodeErr error
	canceled := false
	campaign.Stream(ctx, len(indices), func(i, _ int) encoded {
		raw, err := json.Marshal(sc.run(ctx, indices[i]))
		return encoded{raw, err}
	}, func(i int, e encoded) {
		// The sink runs on this goroutine; error collection needs no lock.
		// Once the context has fired, any record still arriving may fold a
		// matrix that was cancelled mid-launch (device.Canceled units) —
		// drop it; the resume pass re-runs those cases. The Done-channel
		// happens-before guarantees every poisoned record arrives after
		// ctx.Err() is observable here, so none can slip into the file.
		if canceled {
			return
		}
		if ctx != nil && ctx.Err() != nil {
			canceled = true
			return
		}
		if e.err != nil && encodeErr == nil {
			encodeErr = e.err
		}
		records = append(records, ShardRecord{Index: indices[i], Data: e.raw})
		done++
		if o.OnCase != nil {
			o.OnCase(done, total)
		}
	})
	if encodeErr != nil {
		return nil, encodeErr
	}
	sort.Slice(records, func(a, b int) bool { return records[a].Index < records[b].Index })
	sf := &ShardFile{
		Schema: ShardSchema, Params: p,
		Cases: sc.cases, Shard: shard, Of: of,
		Records: records,
	}
	if ctx != nil && ctx.Err() != nil {
		return sf, ctx.Err()
	}
	return sf, nil
}

// QuarantineShard synthesizes the shard file of a slice whose worker the
// fleet supervisor quarantined after exhausting its retries: every case
// of the slice reports the campaign's failed-case record (a crash on
// every observation), so the merged table still covers the full
// campaign and surfaces the loss instead of aborting.
func QuarantineShard(p Params, shard, of int) (*ShardFile, error) {
	if of < 1 || shard < 0 || shard >= of {
		return nil, fmt.Errorf("harness: bad shard %d/%d", shard, of)
	}
	sc, err := campaignFor(campaign.Default, p)
	if err != nil {
		return nil, err
	}
	sf := &ShardFile{
		Schema: ShardSchema, Params: p,
		Cases: sc.cases, Shard: shard, Of: of,
	}
	for i := shard; i < sc.cases; i += of {
		raw, err := json.Marshal(sc.failed())
		if err != nil {
			return nil, err
		}
		sf.Records = append(sf.Records, ShardRecord{Index: i, Data: raw})
	}
	return sf, nil
}

// ValidateShardFile checks a shard file's internal consistency: schema,
// shard/of sanity, every record index in range and in the file's slice,
// no duplicate indices, and well-formed record payloads. name labels the
// file in errors (typically its path).
func ValidateShardFile(sf *ShardFile, name string) error {
	if sf.Schema != ShardSchema {
		return fmt.Errorf("harness: %s: unknown shard schema %q (want %q)", name, sf.Schema, ShardSchema)
	}
	if sf.Of < 1 || sf.Shard < 0 || sf.Shard >= sf.Of {
		return fmt.Errorf("harness: %s: bad shard %d/%d", name, sf.Shard, sf.Of)
	}
	if sf.Cases < 0 {
		return fmt.Errorf("harness: %s: negative case count %d", name, sf.Cases)
	}
	seen := map[int]bool{}
	for ri, r := range sf.Records {
		if r.Index < 0 || r.Index >= sf.Cases {
			return fmt.Errorf("harness: %s: record %d: index %d out of range (%d cases)", name, ri, r.Index, sf.Cases)
		}
		if r.Index%sf.Of != sf.Shard {
			return fmt.Errorf("harness: %s: record %d: case %d does not belong to shard %d/%d", name, ri, r.Index, sf.Shard, sf.Of)
		}
		if seen[r.Index] {
			return fmt.Errorf("harness: %s: case %d appears twice", name, r.Index)
		}
		seen[r.Index] = true
		if len(r.Data) == 0 || !json.Valid(r.Data) {
			return fmt.Errorf("harness: %s: record %d (case %d): truncated or corrupt payload", name, ri, r.Index)
		}
	}
	return nil
}

// LoadShardFile reads and validates one shard file from disk. Errors
// name the file: a truncated or corrupt file (a worker killed mid-write
// without the atomic-rename discipline) is reported precisely rather
// than surfacing as a confusing downstream merge failure.
func LoadShardFile(path string) (*ShardFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sf ShardFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("harness: %s: truncated or corrupt shard file: %w", path, err)
	}
	if err := ValidateShardFile(&sf, path); err != nil {
		return nil, err
	}
	return &sf, nil
}

// MergeShards validates that the shard files cover every case of one
// campaign exactly once, folds their records in case order, and renders
// the output — byte-identical to the unsharded run.
func MergeShards(files []*ShardFile) (string, error) {
	return mergeShards(campaign.Default, files, nil)
}

// MergeShardsNamed is MergeShards with per-file labels (paths, shard
// descriptions) for error messages.
func MergeShardsNamed(files []*ShardFile, names []string) (string, error) {
	return mergeShards(campaign.Default, files, names)
}

// MergeShardPaths loads every named shard file and merges them; errors
// identify the offending file (and case index) by name.
func MergeShardPaths(paths []string) (string, error) {
	files := make([]*ShardFile, len(paths))
	for i, p := range paths {
		sf, err := LoadShardFile(p)
		if err != nil {
			return "", err
		}
		files[i] = sf
	}
	return mergeShards(campaign.Default, files, paths)
}

// mergeShards folds the shard set. names labels the files in errors,
// parallel to files; nil synthesizes positional labels.
func mergeShards(eng *campaign.Engine, files []*ShardFile, names []string) (string, error) {
	if len(files) == 0 {
		return "", fmt.Errorf("harness: no shard files to merge")
	}
	name := func(i int) string {
		if names != nil {
			return names[i]
		}
		return fmt.Sprintf("shard[%d]", i)
	}
	first := files[0]
	type origin struct {
		data json.RawMessage
		file int
	}
	byIndex := map[int]origin{}
	for fi, f := range files {
		if f.Schema != ShardSchema {
			return "", fmt.Errorf("harness: %s: unknown shard schema %q", name(fi), f.Schema)
		}
		if f.Params != first.Params || f.Cases != first.Cases {
			return "", fmt.Errorf("harness: shard parameters disagree: %s has %+v (%d cases), %s has %+v (%d cases)",
				name(fi), f.Params, f.Cases, name(0), first.Params, first.Cases)
		}
		for _, r := range f.Records {
			if r.Index < 0 || r.Index >= f.Cases {
				return "", fmt.Errorf("harness: %s: record index %d out of range (%d cases)", name(fi), r.Index, f.Cases)
			}
			if prev, dup := byIndex[r.Index]; dup {
				return "", fmt.Errorf("harness: case %d appears in both %s and %s", r.Index, name(prev.file), name(fi))
			}
			byIndex[r.Index] = origin{r.Data, fi}
		}
	}
	if len(byIndex) != first.Cases {
		var missing []int
		for i := 0; i < first.Cases; i++ {
			if _, ok := byIndex[i]; !ok {
				missing = append(missing, i)
			}
		}
		sort.Ints(missing)
		return "", fmt.Errorf("harness: incomplete shard set: missing cases %v", missing)
	}
	// The fold stage never re-executes; only the render adapter (which
	// may regenerate the deterministic case list for sizing) needs the
	// engine.
	sc, err := campaignFor(eng, first.Params)
	if err != nil {
		return "", err
	}
	if sc.cases != first.Cases {
		return "", fmt.Errorf("harness: shard files claim %d cases, campaign has %d", first.Cases, sc.cases)
	}
	records := make([]json.RawMessage, first.Cases)
	for i := range records {
		records[i] = byIndex[i].data
	}
	return sc.render(records)
}

// RenderCampaign runs the whole campaign unsharded and renders its
// output. It is literally a one-shard run followed by a merge, so the
// sharded and unsharded paths cannot diverge.
func RenderCampaign(ctx context.Context, p Params) (string, error) {
	return renderCampaign(ctx, campaign.Default, p)
}

func renderCampaign(ctx context.Context, eng *campaign.Engine, p Params) (string, error) {
	sf, err := runShard(ctx, eng, p, 0, 1, ShardRunOptions{})
	if err != nil {
		return "", err
	}
	return mergeShards(eng, []*ShardFile{sf}, nil)
}
